// Seeded deterministic property/fuzz harness. Three properties:
//
//   1. Random INI app configs through parse -> validate -> canonical
//      round-trip: every input either yields a valid spec or throws a clean
//      std::runtime_error naming the problem ("app config: ...") — never a
//      crash, assert, or foreign exception type.
//   2. Random byte corruption (flips, truncation, insertion, deletion) of a
//      recorded binary v2 shard: the reader either drains the stream or
//      throws std::runtime_error — never UB (the CI job runs this under
//      ASan+UBSan), unbounded allocation, or a non-contract exception.
//   3. Generator parameter sweeps: every (pattern, size, seed, params)
//      triple stays in range, replays bit-identically, and covers
//      permutation/cycle patterns exactly; the alias-table sampler's
//      *implemented* distribution (implied_probability) matches the
//      cumulative-weights interpreter it replaced within the documented
//      quantization bound.
//   4. Kernel IR defect injection: random single-field mutations of valid
//      compiled-access programs either fail verify_program with a message
//      or still execute safely through the bytecode VM — the verifier is
//      the only bounds check the executors have, so a mutation that slips
//      past it into UB is exactly what this property (under the CI
//      ASan+UBSan job) exists to catch.
//   5. Truncation salvage: a checksummed binary shard cut at every chunk
//      boundary (and at random mid-chunk offsets) always salvages an
//      *exact prefix* of the original event sequence, never throws, and
//      reports the damage unless the cut fell precisely on a boundary
//      (which is indistinguishable from a short, intact shard).
//   6. Incremental prefix property: for random recorded streams (profiled
//      runs of random valid app configs, and k-way merged synthetic
//      multi-rank streams) and random cut points k, the
//      IncrementalAggregator's snapshot after the first k events equals a
//      fresh batch AggregateVisitor fed the same k events then finished —
//      every field, phase slices included.
//
// Every property runs HMEM_FUZZ_ITERS iterations (default 400; CI sets 500
// per property for >= 1000 total), seeded per iteration — a failure report
// names the iteration, and re-running reproduces it exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/aggregator.hpp"
#include "analysis/incremental.hpp"
#include "apps/app_config.hpp"
#include "apps/generator.hpp"
#include "apps/workload_gen.hpp"
#include "common/alias.hpp"
#include "common/prng.hpp"
#include "engine/execution.hpp"
#include "engine/kernel/ir.hpp"
#include "trace/format.hpp"
#include "trace/merge.hpp"
#include "trace/salvage.hpp"
#include "trace/visitor.hpp"

namespace hmem {
namespace {

int fuzz_iters() {
  if (const char* env = std::getenv("HMEM_FUZZ_ITERS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 400;
}

// ---------------------------------------------- 1. random app configs ----

/// A config that is valid by construction: random geometry, patterns and
/// parameters, but every cross-reference resolves and every validate()
/// invariant holds.
std::string valid_config(Xoshiro256& rng) {
  std::ostringstream out;
  out << "[app]\nname = fuzz" << rng.below(4) << "\n";
  if (rng.below(2) != 0) out << "iterations = " << 1 + rng.below(40) << "\n";
  if (rng.below(2) != 0) out << "ranks = " << 1 + rng.below(8) << "\n";
  if (rng.below(3) == 0)
    out << "access_scale = " << 1 + rng.below(400) << "\n";
  const std::uint64_t n_objects = 1 + rng.below(3);
  const std::uint64_t n_phases = 1 + rng.below(2);
  for (std::uint64_t o = 0; o < n_objects; ++o) {
    out << "\n[object obj" << o << "]\n";
    out << "size = " << (1 + rng.below(64)) * 4096 << "\n";
    const char* kPatterns[] = {"seq",  "random",        "stride",
                               "zipf", "random-permute", "pointer-chase",
                               "bursty"};
    const char* pattern = kPatterns[rng.below(std::size(kPatterns))];
    out << "pattern = " << pattern << "\n";
    if (std::string(pattern) == "zipf")
      out << "zipf_alpha = 0." << 1 + rng.below(9) << rng.below(10) << "\n";
    if (rng.below(4) == 0) out << "stride_lines = " << rng.below(150) << "\n";
    if (rng.below(4) == 0) out << "burst_lines = " << 1 + rng.below(96) << "\n";
    if (rng.below(6) == 0) out << "instances = " << 1 + rng.below(4) << "\n";
    switch (rng.below(8)) {
      case 0: out << "static = true\n"; break;
      case 1: out << "churn = true\n"; break;
      case 2: out << "transient_phase = p0\n"; break;  // p0 always exists
      default: break;
    }
  }
  for (std::uint64_t p = 0; p < n_phases; ++p) {
    out << "\n[phase p" << p << "]\n";
    out << "access_share = " << (n_phases == 1 ? "1" : "0.5") << "\n";
    out << "stack_weight = 0." << rng.below(5) << "\n";
    out << "weights =";
    for (std::uint64_t o = 0; o < n_objects; ++o) {
      out << " obj" << o << ":0." << 1 + rng.below(9);
    }
    out << "\n";
  }
  return out.str();
}

/// Injects one random defect into a valid config: the reject paths a user
/// typo hits (duplicate sections, broken references, zero sizes, garbage
/// patterns) rather than wholesale noise.
std::string inject_defect(Xoshiro256& rng, std::string text) {
  switch (rng.below(7)) {
    case 0:
      return text + "\n[object obj0]\nsize = 4096\n";       // duplicate
    case 1:
      return text + "\n[phase p0]\naccess_share = 1\n";     // duplicate
    case 2:
      return text + "\n[phase extra]\naccess_share = 1\n";  // shares > 1
    case 3: {
      const auto pos = text.find("size = ");
      if (pos != std::string::npos) text.replace(pos, 9, "size = 0\n");
      return text;
    }
    case 4: {
      const auto pos = text.find("pattern = ");
      if (pos != std::string::npos) text.replace(pos + 10, 3, "zzz");
      return text;
    }
    case 5:
      return text + "\n[object ghostless]\nsize = 4096\n"
                    "transient_phase = ghost\n";            // bad reference
    default:
      return text + "\n[mystery section]\nkey = 1\n";       // unknown kind
  }
}

/// Assembles a config from hostile random fragments: well-formed material
/// with seeded defects (zero sizes, bogus patterns, duplicate sections,
/// malformed weights, stray sections) mixed freely.
std::string chaotic_config(Xoshiro256& rng) {
  const auto pick = [&](const std::vector<std::string>& options) {
    return options[rng.below(options.size())];
  };
  std::ostringstream out;
  if (rng.below(16) != 0) {
    out << "[app]\n";
    if (rng.below(16) != 0) out << "name = fuzz" << rng.below(3) << "\n";
    if (rng.below(2) != 0)
      out << "iterations = " << pick({"1", "10", "0", "-3", "junk"}) << "\n";
    if (rng.below(3) == 0)
      out << "access_scale = " << pick({"1", "250", "0.5", "nan"}) << "\n";
    if (rng.below(4) == 0) out << "ranks = " << rng.below(70) << "\n";
  }
  const std::uint64_t n_objects = rng.below(4);
  for (std::uint64_t o = 0; o < n_objects; ++o) {
    // A repeated index produces a duplicate [object] header.
    out << "\n[object obj" << rng.below(3) << "]\n";
    if (rng.below(16) != 0)
      out << "size = "
          << pick({"4096", "1M", "64K", "0", "-1", "1E", "blob", "2G"})
          << "\n";
    if (rng.below(2) != 0)
      out << "pattern = "
          << pick({"seq", "random", "stride", "random-permute", "zipf",
                   "pointer-chase", "bursty", "warp", ""})
          << "\n";
    if (rng.below(4) == 0)
      out << "zipf_alpha = " << pick({"0.8", "1", "2.5", "0", "-1", "inf"})
          << "\n";
    if (rng.below(4) == 0)
      out << "stride_lines = " << rng.below(200) << "\n";
    if (rng.below(4) == 0)
      out << "burst_lines = " << rng.below(3) * 33 << "\n";
    if (rng.below(6) == 0) out << "static = true\n";
    if (rng.below(6) == 0) out << "churn = true\n";
    if (rng.below(6) == 0)
      out << "transient_phase = " << pick({"main", "solve", "nope", "1"})
          << "\n";
  }
  const std::uint64_t n_phases = rng.below(3);
  for (std::uint64_t p = 0; p < n_phases; ++p) {
    out << "\n[phase phase" << rng.below(2) << "]\n";
    out << "access_share = "
        << pick({"1", "0.5", "0", "-0.25", "x"}) << "\n";
    if (rng.below(2) != 0) {
      out << "weights =";
      const std::uint64_t n_weights = rng.below(4);
      for (std::uint64_t w = 0; w < n_weights; ++w) {
        out << ' '
            << pick({"obj0:1", "obj1:0.5", "obj2:0.1", "ghost:1", "obj0:x",
                     "loner", ":3", "obj1:"});
      }
      out << "\n";
    }
    if (rng.below(4) == 0) out << "stack_weight = 0.2\n";
  }
  if (rng.below(8) == 0) out << "\n[mystery]\nkey = value\n";
  if (rng.below(12) == 0) out << "\nstray = outside\n";
  return out.str();
}

TEST(Fuzz, RandomConfigsParseCleanlyOrThrowCleanly) {
  const int iters = fuzz_iters();
  int accepted = 0;
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0xC0FF33ULL + static_cast<std::uint64_t>(i));
    // Three populations: valid-by-construction (accept path), valid with one
    // injected defect (targeted reject paths), and fully chaotic (parser
    // robustness). The chaotic pool alone almost never satisfies the full
    // validity conjunction, which would starve the round-trip property.
    std::string text;
    switch (rng.below(3)) {
      case 0: text = valid_config(rng); break;
      case 1: text = inject_defect(rng, valid_config(rng)); break;
      default: text = chaotic_config(rng); break;
    }
    try {
      const apps::AppSpec spec = apps::from_config_text(text);
      // Accepted: must be valid and survive a canonical round-trip.
      EXPECT_EQ(apps::validate(spec), "") << "iteration " << i;
      const apps::AppSpec again =
          apps::from_config_text(apps::to_config_text(spec));
      EXPECT_TRUE(again == spec) << "iteration " << i << " config:\n" << text;
      ++accepted;
    } catch (const std::runtime_error& e) {
      // Rejected: the contract is a clean app-config/parse error. Anything
      // else (assert, bad_alloc, segfault) escapes and fails the test.
      EXPECT_NE(std::string(e.what()).find("config"), std::string::npos)
          << "iteration " << i << ": " << e.what();
    }
  }
  // The generator is tuned to exercise both paths; guard against drifting
  // into all-reject (which would silently gut the round-trip property).
  EXPECT_GT(accepted, iters / 20);
}

// ---------------------------------------------- 2. shard corruption ------

/// One small, real recording shared by every corruption iteration.
const std::string& reference_shard() {
  static const std::string shard = [] {
    apps::AppSpec app;
    app.name = "fuzz-src";
    app.fom_unit = "it/s";
    app.ranks = 1;
    app.threads_per_rank = 2;
    app.iterations = 3;
    app.accesses_per_iteration = 4000;
    app.access_scale = 2.0;
    app.objects = {
        apps::ObjectSpec{.name = "a", .size_bytes = 64ULL << 10},
        apps::ObjectSpec{.name = "b",
                         .size_bytes = 256ULL << 10,
                         .pattern = apps::AccessPattern::kRandom},
    };
    apps::PhaseSpec phase;
    phase.name = "main";
    phase.object_weights = {0.5, 0.5};
    app.phases = {phase};

    std::ostringstream out(std::ios::binary);
    callstack::SiteDb sites;
    const auto writer =
        trace::make_trace_writer(out, sites, trace::TraceFormat::kBinary);
    engine::RunOptions opts;
    opts.profile = true;
    opts.sampler.period = 5;
    opts.sites = &sites;
    opts.trace_sink = writer.get();
    (void)engine::run_app(app, opts);
    writer->finish();
    return out.str();
  }();
  return shard;
}

TEST(Fuzz, CorruptedShardsNeverEscapeTheReaderContract) {
  const std::string& reference = reference_shard();
  ASSERT_GT(reference.size(), 64u);
  const int iters = fuzz_iters();
  int survived = 0, rejected = 0;
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0xBADC0DEULL + static_cast<std::uint64_t>(i));
    std::string shard = reference;
    switch (rng.below(4)) {
      case 0:  // flip 1-8 bytes anywhere (header, tables, events)
        for (std::uint64_t f = rng.below(8) + 1; f > 0; --f) {
          shard[rng.below(shard.size())] ^=
              static_cast<char>(rng.below(255) + 1);
        }
        break;
      case 1:  // truncate mid-stream
        shard.resize(rng.below(shard.size()));
        break;
      case 2:  // insert a random byte (shifts every later field)
        shard.insert(shard.begin() + static_cast<std::ptrdiff_t>(
                                         rng.below(shard.size())),
                     static_cast<char>(rng.below(256)));
        break;
      default:  // delete a byte
        shard.erase(rng.below(shard.size()), 1);
        break;
    }
    try {
      std::istringstream in(shard, std::ios::binary);
      callstack::SiteDb sites;
      const auto reader = trace::open_trace_reader(in, sites);
      trace::Event event;
      std::size_t events = 0;
      while (reader->next(event)) ++events;
      ++survived;  // corruption landed in a don't-care byte — also fine
    } catch (const std::runtime_error&) {
      ++rejected;  // the contract: malformed input throws, never UB
    }
  }
  // Random single-byte damage to a delta-coded stream must usually be
  // detected; all-survive would mean the checks are not running at all.
  EXPECT_GT(rejected, 0) << "no corruption was ever detected across "
                         << iters << " iterations";
  (void)survived;
}

// ------------------------------- 3. generator sweeps + alias oracle ------

TEST(Fuzz, GeneratorSweepsStayInRangeAndReplayExactly) {
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0x5EEDULL + static_cast<std::uint64_t>(i));
    apps::ObjectSpec object;
    object.name = "fuzzed";
    const std::uint64_t lines = rng.below(5000) + 1;
    object.size_bytes = lines * 64 - rng.below(64);  // exercise rounding
    constexpr apps::AccessPattern kPatterns[] = {
        apps::AccessPattern::kStream,        apps::AccessPattern::kRandom,
        apps::AccessPattern::kStrided,       apps::AccessPattern::kRandomPermute,
        apps::AccessPattern::kZipf,          apps::AccessPattern::kPointerChase,
        apps::AccessPattern::kBursty};
    object.pattern = kPatterns[rng.below(std::size(kPatterns))];
    object.zipf_alpha = 0.05 + static_cast<double>(rng.below(300)) / 100.0;
    object.stride_lines = rng.below(200);
    object.burst_lines = rng.below(128) + 1;
    const std::uint64_t seed = rng.next();

    const auto gen = apps::make_workload_gen(object, lines, seed);
    const auto replay = apps::make_workload_gen(object, lines, seed);
    const std::uint64_t draws = std::min<std::uint64_t>(4 * lines, 512);
    std::vector<std::uint64_t> stream;
    stream.reserve(draws);
    for (std::uint64_t d = 0; d < draws; ++d) {
      const std::uint64_t line = gen->next_line();
      ASSERT_LT(line, lines) << "iteration " << i;
      ASSERT_EQ(line, replay->next_line())
          << "iteration " << i << ": same (pattern,size,seed) diverged";
      stream.push_back(line);
    }

    // Table-backed patterns visit every line exactly once per cycle.
    if ((object.pattern == apps::AccessPattern::kRandomPermute ||
         object.pattern == apps::AccessPattern::kPointerChase) &&
        draws >= lines) {
      std::vector<int> visits(lines, 0);
      for (std::uint64_t d = 0; d < lines; ++d) ++visits[stream[d]];
      for (std::uint64_t l = 0; l < lines; ++l) {
        ASSERT_EQ(visits[l], 1) << "iteration " << i << " line " << l;
      }
    }
  }
}

TEST(Fuzz, AliasTableMatchesCumulativeInterpreterWithinQuantization) {
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0xA11A5ULL + static_cast<std::uint64_t>(i));
    const std::size_t n = rng.below(64) + 1;
    std::vector<double> weights(n);
    double total = 0;
    for (auto& w : weights) {
      // Mix of zero, small and large weights; at least one positive below.
      const std::uint64_t kind = rng.below(4);
      w = kind == 0 ? 0.0
                    : static_cast<double>(rng.below(1000) + 1) *
                          (kind == 3 ? 1e-6 : 1.0);
      total += w;
    }
    if (total == 0) {
      weights[rng.below(n)] = 1.0;
      total = 1.0;
    }
    constexpr int kCoinBits[] = {8, 16, 21, 32};
    const int coin_bits = kCoinBits[rng.below(std::size(kCoinBits))];
    const AliasTable table(weights, coin_bits);

    // The cumulative-weights interpreter the alias table replaced assigns
    // slot i probability w[i]/total exactly. The table quantizes each
    // column's coin threshold to 2^-coin_bits and a slot collects error
    // from every column aliasing to it, so the bound scales with n (plus
    // the 2^-32 column-pick granularity).
    const double bound = static_cast<double>(n + 1) *
                             std::ldexp(1.0, -coin_bits) +
                         static_cast<double>(n) * std::ldexp(1.0, -32) +
                         1e-9;
    double implied_total = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const double implied = table.implied_probability(s);
      implied_total += implied;
      const double reference = weights[s] / total;
      EXPECT_NEAR(implied, reference, bound)
          << "iteration " << i << " slot " << s << " of " << n << " (coin "
          << coin_bits << ")";
      if (weights[s] == 0) {
        EXPECT_EQ(implied, 0.0)
            << "iteration " << i << ": zero-weight slot is reachable";
      }
    }
    EXPECT_NEAR(implied_total, 1.0, 1e-9) << "iteration " << i;
  }
}

// ------------------------------------ 4. kernel IR defect injection ------

/// A random valid kernel program plus the generators keeping its gens
/// pointers alive. Thresholds/aliases need not form a true distribution —
/// the property is structural safety, not statistics.
struct FuzzKernelProgram {
  engine::kernel::Program p;
  std::vector<std::unique_ptr<apps::AccessGenerator>> owned_gens;

  void add_gen(const apps::ObjectSpec& spec, std::uint64_t seed) {
    owned_gens.push_back(std::make_unique<apps::AccessGenerator>(spec, seed));
    p.gens.push_back(owned_gens.back().get());
  }
};

FuzzKernelProgram random_kernel_program(Xoshiro256& rng) {
  using engine::kernel::Insn;
  using engine::kernel::InstanceSlot;
  using engine::kernel::Op;
  FuzzKernelProgram out;
  engine::kernel::Program& p = out.p;
  const std::size_t n = rng.below(6) + 1;
  constexpr int kCoinBits[] = {1, 8, 16, 21};
  p.coin_mask = (1ULL << kCoinBits[rng.below(std::size(kCoinBits))]) - 1;
  p.write_shift = 40 + rng.below(24);  // [40, 64)
  p.write_threshold = rng.below((1ULL << (64 - p.write_shift)) + 1);
  p.n_tiers = static_cast<std::uint32_t>(rng.below(3) + 1);
  p.llc_latency_ns = 5.0 + static_cast<double>(rng.below(20));
  for (std::size_t s = 0; s < n; ++s) {
    p.threshold.push_back(rng.below(p.coin_mask + 2));
    p.alias.push_back(static_cast<std::uint32_t>(rng.below(n)));
  }
  for (std::size_t s = 0; s < n; ++s) {
    p.block_start.push_back(static_cast<std::uint32_t>(p.code.size()));
    const std::uint64_t tier = rng.below(p.n_tiers);
    const double latency = 80.0 + static_cast<double>(rng.below(200));
    switch (rng.below(3)) {
      case 0: {  // stack block
        Insn stack;
        stack.op = Op::kStackAddr;
        stack.imm0 = (rng.below(1024) + 1) << 12;
        stack.imm1 = rng.below(256) + 1;
        Insn serve;
        serve.op = Op::kServeFixed;
        serve.a = static_cast<std::uint32_t>(tier);
        serve.f = latency;
        p.code.push_back(stack);
        p.code.push_back(serve);
        break;
      }
      case 1: {  // single-instance object block
        apps::ObjectSpec spec;
        spec.name = "fuzz";
        spec.size_bytes = (rng.below(512) + 1) * 64;
        Insn fixed;
        fixed.op = Op::kFixedAddr;
        fixed.imm0 = (rng.below(4096) + 1) << 12;
        Insn gen;
        gen.op = Op::kAddGenOffset;
        gen.a = static_cast<std::uint32_t>(p.gens.size());
        gen.imm0 = spec.size_bytes;
        Insn serve;
        serve.op = Op::kServeFixed;
        serve.a = static_cast<std::uint32_t>(tier);
        serve.f = latency;
        out.add_gen(spec, rng.next());
        p.code.push_back(fixed);
        p.code.push_back(gen);
        p.code.push_back(serve);
        break;
      }
      default: {  // multi-instance pick block
        apps::ObjectSpec spec;
        spec.name = "fuzz";
        spec.size_bytes = (rng.below(512) + 1) * 64;
        const std::uint64_t count = rng.below(4) + 2;
        Insn pick;
        pick.op = Op::kPickAddr;
        pick.imm0 = p.instances.size();
        pick.a = static_cast<std::uint32_t>(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          InstanceSlot slot;
          slot.base = (rng.below(4096) + 1) << 12;
          slot.latency_ns = latency;
          slot.tier = rng.below(p.n_tiers);
          p.instances.push_back(slot);
        }
        Insn gen;
        gen.op = Op::kAddGenOffset;
        gen.a = static_cast<std::uint32_t>(p.gens.size());
        gen.imm0 = spec.size_bytes;
        Insn serve;
        serve.op = Op::kServePicked;
        out.add_gen(spec, rng.next());
        p.code.push_back(pick);
        p.code.push_back(gen);
        p.code.push_back(serve);
        break;
      }
    }
  }
  return out;
}

/// One random single-point mutation: indices, masks, shifts, op codes and
/// immediates each get hit, with values biased toward boundaries.
void mutate_kernel_program(Xoshiro256& rng, engine::kernel::Program& p) {
  const auto wild = [&]() -> std::uint64_t {
    switch (rng.below(4)) {
      case 0: return 0;
      case 1: return rng.below(8);
      case 2: return rng.below(1ULL << 32);
      default: return rng.next();
    }
  };
  switch (rng.below(12)) {
    case 0:
      p.threshold[rng.below(p.threshold.size())] = wild();
      break;
    case 1:
      p.alias[rng.below(p.alias.size())] =
          static_cast<std::uint32_t>(wild());
      break;
    case 2:
      p.coin_mask = wild();
      break;
    case 3:
      p.write_threshold = wild();
      break;
    case 4:
      p.write_shift = wild();
      break;
    case 5:
      p.n_tiers = static_cast<std::uint32_t>(wild());
      break;
    case 6:
      p.block_start[rng.below(p.block_start.size())] =
          static_cast<std::uint32_t>(wild());
      break;
    case 7:
      // An earlier mutation in the same round may have emptied `code`.
      if (!p.code.empty()) {
        p.code[rng.below(p.code.size())].op =
            static_cast<engine::kernel::Op>(rng.below(8));
      }
      break;
    case 8:
      if (!p.code.empty()) {
        engine::kernel::Insn& in = p.code[rng.below(p.code.size())];
        switch (rng.below(3)) {
          case 0: in.a = static_cast<std::uint32_t>(wild()); break;
          case 1: in.imm0 = wild(); break;
          default: in.imm1 = wild(); break;
        }
      }
      break;
    case 9:
      if (!p.instances.empty()) {
        p.instances[rng.below(p.instances.size())].tier = wild();
      }
      break;
    case 10:
      if (!p.gens.empty()) p.gens[rng.below(p.gens.size())] = nullptr;
      break;
    default:
      p.code.resize(rng.below(p.code.size() + 1));
      break;
  }
}

TEST(Fuzz, MutatedKernelProgramsAreRejectedOrRunSafely) {
  using engine::kernel::Frame;
  const int iters = fuzz_iters();
  int rejected = 0, executed = 0;
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0x12E4ULL + static_cast<std::uint64_t>(i));
    FuzzKernelProgram fuzz = random_kernel_program(rng);
    ASSERT_EQ(engine::kernel::verify_program(fuzz.p), "")
        << "iteration " << i << ": generator produced an invalid program";
    for (std::uint64_t m = rng.below(3) + 1; m > 0; --m) {
      mutate_kernel_program(rng, fuzz.p);
    }
    const std::string problem = engine::kernel::verify_program(fuzz.p);
    if (!problem.empty()) {
      ++rejected;  // the contract: a message, never a crash
      continue;
    }
    // The verifier accepted the mutant, so executing it must be safe: the
    // VM runs with no per-access bounds checks, trusting exactly what the
    // verifier established. ASan/UBSan (the CI fuzz job) police this.
    // (A frame needs one accumulator per tier, so an absurdly inflated
    // n_tiers — valid but unexecutable within test memory — is skipped.)
    if (fuzz.p.n_tiers > 4096) continue;
    const std::uint64_t sets = 1ULL << rng.below(5);
    const std::uint64_t ways = rng.below(4) + 1;
    std::vector<memsim::Address> tags(sets * ways, ~0ULL);
    std::vector<std::uint64_t> lru(sets * ways, 0);
    std::vector<std::uint64_t> tier_sim(fuzz.p.n_tiers, 0);
    Frame frame;
    frame.n_accesses = 128;
    frame.tier_sim = tier_sim.data();
    frame.tags = tags.data();
    frame.lru = lru.data();
    frame.ways = ways;
    frame.line_shift = 6;
    frame.set_mask = sets - 1;
    Xoshiro256 access_rng(0xACCE55ULL + static_cast<std::uint64_t>(i));
    std::pmr::vector<engine::kernel::MissRecord> records;
    engine::kernel::run_bytecode(fuzz.p, frame, access_rng,
                                 rng.below(2) != 0 ? &records : nullptr);
    EXPECT_EQ(frame.tick, 128u) << "iteration " << i;
    EXPECT_LE(frame.misses, 128u) << "iteration " << i;
    ++executed;
  }
  // Both arms must stay populated or the property degenerates.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(executed, 0);
}

// ---------------------------------- 5. salvage truncation property -------

TEST(Fuzz, TruncatedShardsSalvageAnExactPrefix) {
  // A multi-chunk checksummed shard of synthetic samples. tellp snapshots
  // after each event expose the writer's flush points — the chunk
  // boundaries a truncation can legally land on.
  constexpr std::size_t kEvents = 3 * 4096 + 57;
  std::ostringstream out(std::ios::binary);
  callstack::SiteDb sites;
  std::vector<std::size_t> boundaries = {0};
  {
    trace::WriterOptions options;
    options.checksums = true;
    const auto writer = trace::make_trace_writer(
        out, sites, trace::TraceFormat::kBinary, options);
    boundaries.push_back(static_cast<std::size_t>(out.tellp()));
    Xoshiro256 rng(0x7A0BCULL);
    double time_ns = 0;
    std::size_t last = boundaries.back();
    for (std::size_t e = 0; e < kEvents; ++e) {
      time_ns += static_cast<double>(rng.below(50));
      trace::SampleEvent sample;
      sample.time_ns = time_ns;
      sample.addr = 0x10000 + rng.below(1ULL << 20) * 64;
      sample.is_write = rng.below(4) == 0;
      sample.weight = 1 + rng.below(8);
      writer->on_event(sample);
      const auto now = static_cast<std::size_t>(out.tellp());
      if (now != last) {
        boundaries.push_back(now);
        last = now;
      }
    }
    writer->finish();
    boundaries.push_back(static_cast<std::size_t>(out.tellp()));
  }
  const std::string shard = out.str();
  const auto is_boundary = [&](std::size_t cut) {
    return std::find(boundaries.begin(), boundaries.end(), cut) !=
           boundaries.end();
  };

  // Oracle: the intact shard, decoded strictly.
  std::vector<trace::Event> full;
  {
    std::istringstream in(shard, std::ios::binary);
    callstack::SiteDb oracle_sites;
    const auto reader = trace::open_trace_reader(in, oracle_sites);
    trace::Event event;
    while (reader->next(event)) full.push_back(event);
  }
  ASSERT_EQ(full.size(), kEvents);

  int clean_short = 0, damaged = 0;
  const auto check_cut = [&](std::size_t cut) {
    std::istringstream in(shard.substr(0, cut), std::ios::binary);
    callstack::SiteDb cut_sites;
    trace::ReaderOptions options;
    options.source = "fuzz-cut";
    trace::RecoveringTraceReader reader(in, cut_sites, options);
    trace::Event event;
    std::size_t n = 0;
    while (reader.next(event)) {
      ASSERT_LT(n, full.size()) << "cut " << cut;
      ASSERT_TRUE(event == full[n])
          << "cut " << cut << ": event " << n << " is not the original";
      ++n;
    }
    if (cut >= shard.size()) {
      EXPECT_EQ(n, full.size());
      EXPECT_TRUE(reader.report().clean());
    } else if (n < full.size() && reader.report().clean()) {
      // Silent loss is permitted only when the cut fell exactly on a
      // chunk boundary — a prefix indistinguishable from a short shard.
      EXPECT_TRUE(is_boundary(cut))
          << "cut " << cut << " lost " << (full.size() - n)
          << " event(s) without any salvage incident";
      ++clean_short;
    } else if (!reader.report().clean()) {
      ++damaged;
    }
  };

  for (const std::size_t cut : boundaries) {
    check_cut(cut);
    if (cut > 0) check_cut(cut - 1);
    if (cut + 1 < shard.size()) check_cut(cut + 1);
  }
  Xoshiro256 rng(0x5A1CA6EULL);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    check_cut(rng.below(shard.size() + 1));
  }
  // Both arms must appear across the sweep: boundary cuts read as clean
  // short shards, mid-chunk cuts as reported damage.
  EXPECT_GT(clean_short, 0);
  EXPECT_GT(damaged, 0);
}

// ------------------------------- 6. incremental prefix property ----------

/// Every-field equality of batch vs incremental aggregation, phase slices
/// included (the incremental convergence contract covers them).
void expect_same_aggregate(const analysis::AggregateResult& batch,
                           const analysis::AggregateResult& inc,
                           const std::string& label) {
  EXPECT_EQ(batch.total_samples, inc.total_samples) << label;
  EXPECT_EQ(batch.total_weighted_misses, inc.total_weighted_misses) << label;
  EXPECT_EQ(batch.unattributed_samples, inc.unattributed_samples) << label;
  EXPECT_EQ(batch.unattributed_misses, inc.unattributed_misses) << label;
  ASSERT_EQ(batch.objects.size(), inc.objects.size()) << label;
  for (std::size_t i = 0; i < batch.objects.size(); ++i) {
    EXPECT_EQ(batch.objects[i].site, inc.objects[i].site) << label;
    EXPECT_EQ(batch.objects[i].name, inc.objects[i].name) << label;
    EXPECT_EQ(batch.objects[i].max_size_bytes, inc.objects[i].max_size_bytes)
        << label;
    EXPECT_EQ(batch.objects[i].llc_misses, inc.objects[i].llc_misses)
        << label;
    EXPECT_EQ(batch.objects[i].is_dynamic, inc.objects[i].is_dynamic)
        << label;
  }
  ASSERT_EQ(batch.phases.size(), inc.phases.size()) << label;
  for (std::size_t p = 0; p < batch.phases.size(); ++p) {
    EXPECT_EQ(batch.phases[p].name, inc.phases[p].name) << label;
    ASSERT_EQ(batch.phases[p].objects.size(), inc.phases[p].objects.size())
        << label << " phase " << batch.phases[p].name;
    for (std::size_t i = 0; i < batch.phases[p].objects.size(); ++i) {
      EXPECT_EQ(batch.phases[p].objects[i].site,
                inc.phases[p].objects[i].site)
          << label << " phase " << batch.phases[p].name;
      EXPECT_EQ(batch.phases[p].objects[i].llc_misses,
                inc.phases[p].objects[i].llc_misses)
          << label << " phase " << batch.phases[p].name;
    }
  }
}

/// The property itself: random ascending cuts over one event sequence. The
/// incremental aggregator is fed once, forward; each cut re-runs a fresh
/// batch visitor over the prefix — the oracle never sees the suffix.
void check_prefix_property(const std::vector<trace::Event>& events,
                           const callstack::SiteDb& sites, Xoshiro256& rng,
                           const std::string& label) {
  std::vector<std::size_t> cuts;
  for (int c = 0; c < 3; ++c) cuts.push_back(rng.below(events.size() + 1));
  cuts.push_back(events.size());  // always include full convergence
  std::sort(cuts.begin(), cuts.end());

  analysis::IncrementalAggregator inc(sites);
  std::size_t fed = 0;
  for (const std::size_t cut : cuts) {
    for (; fed < cut; ++fed) trace::dispatch_event(events[fed], inc);
    analysis::AggregateVisitor batch(sites);
    for (std::size_t i = 0; i < cut; ++i) {
      trace::dispatch_event(events[i], batch);
    }
    expect_same_aggregate(batch.finish(), inc.snapshot(),
                          label + " cut " + std::to_string(cut));
  }
}

TEST(Fuzz, IncrementalPrefixMatchesBatchOnRandomRecordedStreams) {
  // Profiled runs are the expensive part; a handful of random apps with a
  // few random cuts each still exercises every accumulator path.
  const int iters = std::max(4, fuzz_iters() / 25);
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0x14C0ULL + static_cast<std::uint64_t>(i));
    apps::AppSpec app = apps::from_config_text(valid_config(rng));
    app.ranks = 1;
    app.iterations = 1 + rng.below(3);
    app.accesses_per_iteration = 2000 + rng.below(4000);
    engine::RunOptions opts;
    opts.profile = true;
    opts.sampler.period = 50 + rng.below(200);
    opts.seed = rng.next();
    const engine::RunResult run = engine::run_app(app, opts);
    ASSERT_NE(run.trace, nullptr);
    check_prefix_property(run.trace->events(), *run.sites, rng,
                          "app " + app.name + " iter " + std::to_string(i));
  }
}

TEST(Fuzz, IncrementalPrefixMatchesBatchOnMergedMultiRankStreams) {
  // Synthetic per-rank shards k-way merged by timestamp: overlapping phase
  // begin/end interleavings across ranks are exactly the regime where the
  // open-phase stack rules are easiest to get subtly wrong.
  const int iters = std::max(8, fuzz_iters() / 10);
  for (int i = 0; i < iters; ++i) {
    Xoshiro256 rng(0xD157ULL * 65537 + static_cast<std::uint64_t>(i));
    callstack::SiteDb sites;
    const std::size_t ranks = 2 + rng.below(2);
    std::vector<trace::TraceBuffer> shards(ranks);
    const char* kPhases[] = {"build", "solve", "refine"};
    for (std::size_t r = 0; r < ranks; ++r) {
      double t = static_cast<double>(rng.below(50));
      // Per-rank allocations in globally disjoint 1 MiB slots (the live
      // registry rejects overlapping allocations, as the real profiler
      // never produces them).
      std::vector<trace::Address> bases;
      const std::size_t objects = 1 + rng.below(3);
      for (std::size_t o = 0; o < objects; ++o) {
        callstack::SymbolicCallStack stack;
        stack.frames.push_back(callstack::CodeLocation{
            "fuzz.x", "alloc_" + std::to_string(o % 2),
            static_cast<std::uint32_t>(10 + o)});
        const auto site = sites.intern("obj" + std::to_string(o), stack);
        const trace::Address base =
            0x100000 + (static_cast<trace::Address>(r * 8 + o) << 20);
        const std::uint64_t size = 4096 * (1 + rng.below(16));
        shards[r].add(trace::AllocEvent{t, site, base, size});
        bases.push_back(base);
        t += 1 + static_cast<double>(rng.below(5));
      }
      std::size_t open = 0;
      const std::size_t samples = 50 + rng.below(200);
      for (std::size_t s = 0; s < samples; ++s) {
        switch (rng.below(12)) {
          case 0:  // open a phase (possibly the same name as a peer rank's)
            shards[r].add(trace::PhaseEvent{
                t, kPhases[rng.below(std::size(kPhases))], true});
            ++open;
            break;
          case 1:  // close one (sometimes unmatched — must be ignored)
            shards[r].add(trace::PhaseEvent{
                t, kPhases[rng.below(std::size(kPhases))], false});
            open = open > 0 ? open - 1 : 0;
            break;
          case 2:  // a sample no live object owns (unattributed path)
            shards[r].add(trace::SampleEvent{t, 0xDEAD0000 + rng.below(256),
                                             false, 1 + rng.below(8)});
            break;
          default: {
            const trace::Address base = bases[rng.below(bases.size())];
            shards[r].add(trace::SampleEvent{t, base + rng.below(4096),
                                             rng.below(4) == 0,
                                             1 + rng.below(8)});
            break;
          }
        }
        t += static_cast<double>(rng.below(4));
      }
    }
    std::vector<std::unique_ptr<trace::TraceReader>> inputs;
    for (const auto& shard : shards) {
      inputs.push_back(std::make_unique<trace::BufferTraceReader>(shard));
    }
    trace::MergeTraceReader merged(std::move(inputs));
    std::vector<trace::Event> events;
    trace::Event event;
    while (merged.next(event)) events.push_back(event);
    check_prefix_property(events, sites, rng,
                          "merged iter " + std::to_string(i));
  }
}

}  // namespace
}  // namespace hmem
