// Unit tests for the common utility substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/alias.hpp"
#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace hmem {
namespace {

// ---------------------------------------------------------------- prng ----

TEST(Prng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Prng, BelowCoversSmallRangeUniformly) {
  Xoshiro256 rng(11);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 8 * 0.1);
  }
}

TEST(Prng, UniformIsInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// --------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Percentile, EdgesAndInterpolation) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);
  EXPECT_DOUBLE_EQ(percentile({7}, 99), 7);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps to bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(42);   // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(4), 2);
  EXPECT_DOUBLE_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4);
}

// ----------------------------------------------------------------- csv ----

TEST(Csv, RoundTripWithQuoting) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  w.write_row({"", "second"});
  const auto rows = CsvReader::parse(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "multi\nline");
  EXPECT_EQ(rows[1][0], "");
  EXPECT_EQ(rows[1][1], "second");
}

TEST(Csv, ParsesCrlfAndTrailingNewline) {
  const auto rows = CsvReader::parse("a,b\r\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

// -------------------------------------------------------------- config ----

TEST(Config, ParsesSectionsKeysAndComments) {
  const auto cfg = Config::parse(
      "top = 1\n"
      "[tier mcdram]  # fast\n"
      "capacity = 16G\n"
      "relative_performance = 5.0\n"
      "; full-line comment\n"
      "[flags]\n"
      "verbose = true\n");
  EXPECT_EQ(cfg.get_int("", "top", -1), 1);
  EXPECT_EQ(cfg.get_bytes("tier mcdram", "capacity", 0), 16ULL * kGiB);
  EXPECT_DOUBLE_EQ(
      cfg.get_double("tier mcdram", "relative_performance", 0), 5.0);
  EXPECT_TRUE(cfg.get_bool("flags", "verbose", false));
  EXPECT_FALSE(cfg.get("flags", "missing").has_value());
}

TEST(Config, FallbacksOnMalformedValues) {
  const auto cfg = Config::parse("[s]\nx = notanumber\n");
  EXPECT_EQ(cfg.get_int("s", "x", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("s", "x", 1.5), 1.5);
  EXPECT_EQ(cfg.get_bytes("s", "x", 9), 9u);
}

TEST(Config, SectionOrderPreserved) {
  const auto cfg = Config::parse("[b]\nk=1\n[a]\nk=2\n");
  ASSERT_EQ(cfg.sections().size(), 2u);
  EXPECT_EQ(cfg.sections()[0], "b");
  EXPECT_EQ(cfg.sections()[1], "a");
}

// --------------------------------------------------------------- units ----

TEST(Units, ParseVariants) {
  EXPECT_EQ(parse_bytes("4096").value(), 4096u);
  EXPECT_EQ(parse_bytes("4K").value(), 4096u);
  EXPECT_EQ(parse_bytes("4k").value(), 4096u);
  EXPECT_EQ(parse_bytes("256M").value(), 256ULL * kMiB);
  EXPECT_EQ(parse_bytes("256 MiB").value(), 256ULL * kMiB);
  EXPECT_EQ(parse_bytes("16G").value(), 16ULL * kGiB);
  EXPECT_EQ(parse_bytes("1.5G").value(), kGiB + kGiB / 2);
  EXPECT_FALSE(parse_bytes("oops").has_value());
  EXPECT_FALSE(parse_bytes("-3K").has_value());
  EXPECT_FALSE(parse_bytes("").has_value());
}

TEST(Units, FormatTrimsZeros) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4 KiB");
  EXPECT_EQ(format_bytes(256ULL * kMiB), "256 MiB");
  EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.5 GiB");
}

TEST(Units, RoundTrip) {
  for (std::uint64_t v : {1ULL, 4096ULL, 32ULL * kMiB, 16ULL * kGiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)).value(), v);
  }
}

// ------------------------------------------------------------- strings ----

TEST(Strings, TrimSplitJoin) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b", "c"}, " < "), "a < b < c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Predicates) {
  EXPECT_TRUE(starts_with("tier mcdram", "tier"));
  EXPECT_FALSE(starts_with("tie", "tier"));
  EXPECT_TRUE(ends_with("report.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "report.csv"));
  EXPECT_EQ(to_lower("AbC1"), "abc1");
}

// --------------------------------------------------------------- alias ----

/// Empirical distribution of `draws` samples through the table.
std::vector<double> sampled_shares(const AliasTable& table, int draws,
                                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> counts(table.size(), 0);
  for (int i = 0; i < draws; ++i) ++counts[table.sample(rng.next())];
  std::vector<double> shares(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    shares[i] = static_cast<double>(counts[i]) / draws;
  }
  return shares;
}

TEST(AliasTable, MatchesTheTargetDistribution) {
  const std::vector<double> weights = {5.0, 1.0, 0.25, 3.75, 10.0};
  double total = 0;
  for (const double w : weights) total += w;
  const AliasTable table(weights);
  const int draws = 400000;
  const auto shares = sampled_shares(table, draws, 0xa11a5);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    // ~4 sigma of a binomial at these counts.
    const double sigma =
        std::sqrt(expected * (1 - expected) / draws);
    EXPECT_NEAR(shares[i], expected, 4 * sigma + 1e-9) << "slot " << i;
  }
}

TEST(AliasTable, ZeroWeightSlotsAreNeverSampled) {
  const AliasTable table({0.0, 2.0, 0.0, 1.0, 0.0});
  Xoshiro256 rng(99);
  for (int i = 0; i < 100000; ++i) {
    const std::size_t s = table.sample(rng.next());
    EXPECT_TRUE(s == 1 || s == 3) << s;
  }
}

TEST(AliasTable, SingleAndUniformWeights) {
  const AliasTable one({7.0});
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(one.sample(rng.next()), 0u);

  const AliasTable uniform(std::vector<double>(8, 1.0));
  const auto shares = sampled_shares(uniform, 200000, 0xbeef);
  for (const double s : shares) EXPECT_NEAR(s, 0.125, 0.005);
}

TEST(AliasTable, ReducedCoinBitsKeepTheDistribution) {
  // The engine packs the coin into 21 bits; the quantization must stay
  // invisible at simulation sample counts.
  const std::vector<double> weights = {0.7, 0.2, 0.05, 0.05};
  const AliasTable table(weights, /*coin_bits=*/21);
  EXPECT_EQ(table.coin_bits(), 21);
  const auto shares = sampled_shares(table, 400000, 0x5eed);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(shares[i], weights[i], 0.004) << "slot " << i;
  }
}

TEST(AliasTable, SamplingIsDeterministic) {
  const AliasTable table({1.0, 2.0, 3.0});
  Xoshiro256 a(11), b(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.sample(a.next()), table.sample(b.next()));
  }
}

}  // namespace
}  // namespace hmem
