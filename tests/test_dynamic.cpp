// Tests for the phase-aware placement subsystem: per-phase profiles out of
// the aggregator, PhaseAdvisor schedules and their migration diffs, the
// schedule report round trip, runtime retargeting (FCFS cascade), and the
// engine's dynamic condition — including the two acceptance properties:
// bit-identity with the static framework on single-phase workloads and a
// dFOM win on phase-shifting ones.
#include <gtest/gtest.h>

#include <algorithm>

#include "advisor/phase_advisor.hpp"
#include "advisor/placement_report.hpp"
#include "advisor/schedule_report.hpp"
#include "alloc/allocators.hpp"
#include "analysis/aggregator.hpp"
#include "apps/workloads.hpp"
#include "common/units.hpp"
#include "engine/experiment.hpp"
#include "engine/pipeline.hpp"
#include "runtime/policy.hpp"

namespace hmem {
namespace {

using advisor::ObjectInfo;
using advisor::PhaseObjects;

ObjectInfo obj(const std::string& name, std::uint64_t size,
               std::uint64_t misses, bool dynamic = true) {
  ObjectInfo o;
  o.name = name;
  o.max_size_bytes = size;
  o.llc_misses = misses;
  o.is_dynamic = dynamic;
  o.stack.frames.push_back(
      callstack::CodeLocation{"app.x", "alloc_" + name, 1});
  return o;
}

// ------------------------------------------------------------ advisor ----

TEST(PhaseAdvisor, SinglePhaseScheduleEqualsStaticPlacement) {
  const std::vector<ObjectInfo> objects = {
      obj("hot", 4 * kMiB, 1000),
      obj("warm", 4 * kMiB, 100),
      obj("cold", 64 * kMiB, 10),
  };
  const advisor::MemorySpec spec =
      advisor::MemorySpec::two_tier(8 * kMiB, 1 * kGiB);
  const advisor::Options options;

  const advisor::HmemAdvisor static_adv(spec, options);
  const advisor::Placement static_placement = static_adv.advise(objects);

  const advisor::PhaseAdvisor phase_adv(spec, options);
  const advisor::PlacementSchedule schedule =
      phase_adv.advise({PhaseObjects{"only_phase", objects}});

  ASSERT_EQ(schedule.phases.size(), 1u);
  EXPECT_EQ(advisor::write_placement_report(schedule.phases[0].placement),
            advisor::write_placement_report(static_placement));
  ASSERT_EQ(schedule.migrations.size(), 1u);
  EXPECT_TRUE(schedule.migrations[0].empty());
  EXPECT_EQ(schedule.migration_bytes_per_cycle(), 0u);
}

TEST(PhaseAdvisor, MigrationDiffDemotionsBeforePromotions) {
  // Budget fits exactly one of the two alternating hot objects.
  const std::vector<ObjectInfo> phase_a = {
      obj("ping", 4 * kMiB, 1000),
      obj("pong", 4 * kMiB, 10),
  };
  const std::vector<ObjectInfo> phase_b = {
      obj("ping", 4 * kMiB, 10),
      obj("pong", 4 * kMiB, 1000),
  };
  const advisor::MemorySpec spec =
      advisor::MemorySpec::two_tier(5 * kMiB, 1 * kGiB);
  const advisor::PhaseAdvisor phase_adv(spec, {});
  const advisor::PlacementSchedule schedule = phase_adv.advise(
      {PhaseObjects{"a", phase_a}, PhaseObjects{"b", phase_b}});

  ASSERT_EQ(schedule.phases.size(), 2u);
  ASSERT_EQ(schedule.migrations.size(), 2u);
  // Entering b from a: ping demotes (listed first), pong promotes.
  ASSERT_EQ(schedule.migrations[1].size(), 2u);
  EXPECT_EQ(schedule.migrations[1][0].object_name, "ping");
  EXPECT_TRUE(schedule.migrations[1][0].is_demotion());
  EXPECT_EQ(schedule.migrations[1][0].from_tier, 0u);
  EXPECT_EQ(schedule.migrations[1][0].to_tier, 1u);
  EXPECT_EQ(schedule.migrations[1][1].object_name, "pong");
  EXPECT_FALSE(schedule.migrations[1][1].is_demotion());
  // Wrap-around entering a from b: the mirror image.
  ASSERT_EQ(schedule.migrations[0].size(), 2u);
  EXPECT_EQ(schedule.migrations[0][0].object_name, "pong");
  EXPECT_TRUE(schedule.migrations[0][0].is_demotion());
  EXPECT_EQ(schedule.migrations[0][1].object_name, "ping");
  EXPECT_EQ(schedule.migration_bytes_per_cycle(), 4u * 4 * kMiB);
}

TEST(PhaseAdvisor, StaticObjectsNeverMigrate) {
  const std::vector<ObjectInfo> phase_a = {
      obj("fixed", 4 * kMiB, 1000, /*dynamic=*/false),
      obj("dyn", 4 * kMiB, 500),
  };
  const std::vector<ObjectInfo> phase_b = {
      obj("fixed", 4 * kMiB, 1, /*dynamic=*/false),
      obj("dyn", 4 * kMiB, 1),
  };
  const advisor::MemorySpec spec =
      advisor::MemorySpec::two_tier(5 * kMiB, 1 * kGiB);
  const advisor::PhaseAdvisor phase_adv(spec, {});
  const advisor::PlacementSchedule schedule = phase_adv.advise(
      {PhaseObjects{"a", phase_a}, PhaseObjects{"b", phase_b}});
  for (const auto& list : schedule.migrations) {
    for (const auto& m : list) EXPECT_NE(m.object_name, "fixed");
  }
}

TEST(ScheduleReport, RoundTripIsIdentical) {
  const std::vector<ObjectInfo> phase_a = {obj("ping", 4 * kMiB, 1000),
                                           obj("pong", 4 * kMiB, 10)};
  const std::vector<ObjectInfo> phase_b = {obj("ping", 4 * kMiB, 10),
                                           obj("pong", 4 * kMiB, 1000)};
  const advisor::MemorySpec spec =
      advisor::MemorySpec::two_tier(5 * kMiB, 1 * kGiB);
  const advisor::PhaseAdvisor phase_adv(spec, {});
  const advisor::PlacementSchedule schedule = phase_adv.advise(
      {PhaseObjects{"a", phase_a}, PhaseObjects{"b", phase_b}});

  const std::string text = advisor::write_schedule_report(schedule);
  EXPECT_TRUE(advisor::is_schedule_report(text));
  const advisor::PlacementSchedule parsed =
      advisor::read_schedule_report(text);
  EXPECT_EQ(advisor::write_schedule_report(parsed), text);
  ASSERT_EQ(parsed.phases.size(), 2u);
  EXPECT_EQ(parsed.phases[0].phase, "a");
  EXPECT_EQ(parsed.migrations[1].size(), 2u);  // recomputed on read

  // A plain placement report is not a schedule.
  EXPECT_FALSE(advisor::is_schedule_report(
      advisor::write_placement_report(schedule.phases[0].placement)));
  EXPECT_THROW(advisor::read_schedule_report("garbage"), std::runtime_error);
}

// --------------------------------------------------------- aggregator ----

TEST(PhaseProfiles, SinglePhaseSliceEqualsWholeRunProfile) {
  apps::AppSpec app = apps::make_hpcg();
  app.iterations = 3;
  app.accesses_per_iteration = 4000;
  engine::RunOptions options;
  options.profile = true;
  options.sampler.period = 2000;
  const engine::RunResult run = engine::run_app(app, options);
  const analysis::AggregateResult report =
      analysis::aggregate_trace(*run.trace, *run.sites);

  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].name, "cg_iteration");
  ASSERT_EQ(report.phases[0].objects.size(), report.objects.size());
  for (std::size_t i = 0; i < report.objects.size(); ++i) {
    EXPECT_EQ(report.phases[0].objects[i].site, report.objects[i].site);
    EXPECT_EQ(report.phases[0].objects[i].llc_misses,
              report.objects[i].llc_misses);
    EXPECT_EQ(report.phases[0].objects[i].max_size_bytes,
              report.objects[i].max_size_bytes);
  }
}

TEST(PhaseProfiles, MissesSliceByPhaseAndSumToWholeRun) {
  apps::AppSpec app = apps::make_transient();
  app.iterations = 4;
  app.accesses_per_iteration = 6000;
  engine::RunOptions options;
  options.profile = true;
  options.sampler.period = 1500;
  const engine::RunResult run = engine::run_app(app, options);
  const analysis::AggregateResult report =
      analysis::aggregate_trace(*run.trace, *run.sites);

  ASSERT_EQ(report.phases.size(), 3u);
  EXPECT_EQ(report.phases[0].name, "build");
  EXPECT_EQ(report.phases[1].name, "solve");
  EXPECT_EQ(report.phases[2].name, "refine");

  auto misses_of = [](const std::vector<ObjectInfo>& objects,
                      const std::string& name) -> std::uint64_t {
    for (const auto& o : objects) {
      if (o.name == name) return o.llc_misses;
    }
    return 0;
  };
  // Each transient is hot in exactly its own phase, untouched elsewhere.
  EXPECT_GT(misses_of(report.phases[0].objects, "work_build"), 0u);
  EXPECT_EQ(misses_of(report.phases[0].objects, "work_solve"), 0u);
  EXPECT_GT(misses_of(report.phases[1].objects, "work_solve"), 0u);
  EXPECT_EQ(misses_of(report.phases[1].objects, "work_refine"), 0u);
  EXPECT_GT(misses_of(report.phases[2].objects, "work_refine"), 0u);
  // Per-phase misses partition the whole-run misses per object.
  for (const auto& whole : report.objects) {
    std::uint64_t sum = 0;
    for (const auto& phase : report.phases) {
      sum += misses_of(phase.objects, whole.name);
    }
    EXPECT_EQ(sum, whole.llc_misses) << whole.name;
  }
}

// ------------------------------------------------------------ runtime ----

TEST(Retarget, CascadesFcfsWhenTargetTierIsFull) {
  // Three tiny tiers: fast (1 MiB), mid (4 MiB), slow fallback.
  alloc::MemkindAllocator fast(1ULL << 30, 1 * kMiB);
  alloc::MemkindAllocator mid(2ULL << 30, 4 * kMiB);
  alloc::PosixAllocator slow(3ULL << 30, 64 * kMiB);
  runtime::NumactlPolicy policy({&fast, &mid, &slow});

  // Fill the fast tier completely.
  const auto filler = fast.allocate(1 * kMiB);
  ASSERT_TRUE(filler.has_value());

  const auto victim = slow.allocate(2 * kMiB);
  ASSERT_TRUE(victim.has_value());

  // Retarget into the full fast tier: must cascade FCFS into mid.
  const runtime::AllocOutcome moved = policy.retarget(*victim, 0);
  ASSERT_NE(moved.addr, 0u);
  EXPECT_EQ(moved.tier, 1u);
  EXPECT_TRUE(mid.owns(moved.addr));
  EXPECT_FALSE(slow.owns(moved.addr) && slow.allocation_size(moved.addr));

  // Retargeting to where it already lives is a free no-op.
  const runtime::AllocOutcome stay = policy.retarget(moved.addr, 1);
  EXPECT_EQ(stay.addr, moved.addr);
  EXPECT_EQ(stay.tier, 1u);
  EXPECT_EQ(stay.cost_ns, 0.0);

  // Demotion to the fallback always succeeds.
  const runtime::AllocOutcome demoted = policy.retarget(moved.addr, 2);
  ASSERT_NE(demoted.addr, 0u);
  EXPECT_EQ(demoted.tier, 2u);
  EXPECT_TRUE(slow.owns(demoted.addr));
}

// --------------------------------------------- auto-hbwmalloc retarget ----

callstack::SymbolicCallStack stack_of(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  s.frames.push_back(callstack::CodeLocation{"app.x", "main", 2});
  return s;
}

struct HbwFixture {
  explicit HbwFixture(std::vector<ObjectInfo> selected,
                      std::uint64_t budget,
                      std::uint64_t hbw_capacity = 1ULL << 30)
      : posix(0x100000000ULL, 1ULL << 30),
        hbw(0x4000000000ULL, hbw_capacity) {
    modules.add_module("app.x", 0x400000, 1 << 20);
    modules.randomize_slides(1234);
    placement.tiers.push_back(advisor::TierPlacement{
        "mcdram", budget, std::move(selected), 0, 0});
    placement.tiers.push_back(
        advisor::TierPlacement{"ddr", 1ULL << 40, {}, 0, 0});
    std::uint64_t lb = ~0ULL, ub = 0;
    for (const auto& o : placement.tiers[0].objects) {
      lb = std::min(lb, o.max_size_bytes);
      ub = std::max(ub, o.max_size_bytes);
    }
    placement.lb_size = ub == 0 ? 0 : lb;
    placement.ub_size = ub;
    placement.enforced_fast_budget_bytes = budget;
    unwinder = std::make_unique<callstack::Unwinder>(modules);
    translator = std::make_unique<callstack::Translator>(modules);
    lib = std::make_unique<runtime::AutoHbwMalloc>(
        placement, posix, hbw, *unwinder, *translator);
  }

  alloc::PosixAllocator posix;
  alloc::MemkindAllocator hbw;
  callstack::ModuleMap modules;
  advisor::Placement placement;
  std::unique_ptr<callstack::Unwinder> unwinder;
  std::unique_ptr<callstack::Translator> translator;
  std::unique_ptr<runtime::AutoHbwMalloc> lib;
};

ObjectInfo selected(const std::string& name, std::uint64_t size) {
  ObjectInfo o = obj(name, size, 1000);
  o.stack = stack_of("alloc_" + name);
  return o;
}

TEST(AutoHbwRetarget, MoveKeepsAccountingAndFreeRoutingCoherent) {
  HbwFixture f({selected("a", kMiB)}, 4 * kMiB);
  const auto out = f.lib->allocate(kMiB, stack_of("alloc_a"));
  ASSERT_TRUE(out.promoted);
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, kMiB);

  // Demote to the default tier: fast accounting drains.
  const auto demoted = f.lib->retarget(out.addr, 1);
  ASSERT_NE(demoted.addr, 0u);
  EXPECT_EQ(demoted.tier, 1u);
  EXPECT_TRUE(f.posix.owns(demoted.addr));
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, 0u);

  // Promote back: accounting refills, migration counters tick.
  const auto promoted = f.lib->retarget(demoted.addr, 0);
  ASSERT_NE(promoted.addr, 0u);
  EXPECT_EQ(promoted.tier, 0u);
  EXPECT_TRUE(f.hbw.owns(promoted.addr));
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, kMiB);
  EXPECT_EQ(f.lib->stats().migrations, 2u);
  EXPECT_EQ(f.lib->stats().migrated_bytes, 2 * kMiB);

  // The matching free is routed via the (updated) region annotation.
  EXPECT_GT(f.lib->deallocate(promoted.addr), 0.0);
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, 0u);
}

TEST(AutoHbwRetarget, OverBudgetPromotionFallsBackWithoutMoving) {
  // The advisor budget (not just physical capacity) gates migration
  // promotions, exactly as it gates allocation-time promotions.
  HbwFixture f({selected("a", kMiB)}, kMiB);
  const auto fast = f.lib->allocate(kMiB, stack_of("alloc_a"));
  ASSERT_TRUE(fast.promoted);  // budget now exhausted

  const auto slow = f.lib->allocate(kMiB, stack_of("alloc_other"));
  ASSERT_FALSE(slow.promoted);
  const auto attempt = f.lib->retarget(slow.addr, 0);
  EXPECT_EQ(attempt.addr, slow.addr);  // cascaded home: stayed put
  EXPECT_EQ(attempt.tier, 1u);
  EXPECT_EQ(f.lib->stats().migrations, 0u);
}

TEST(AutoHbwSetPlacement, SwapsSelectionKeepsLiveAccounting) {
  HbwFixture f({selected("a", kMiB)}, 4 * kMiB);
  const auto a = f.lib->allocate(kMiB, stack_of("alloc_a"));
  ASSERT_TRUE(a.promoted);

  // Next phase selects b instead of a.
  advisor::Placement next = f.placement;
  next.tiers[0].objects = {selected("b", kMiB)};
  f.lib->set_placement(next);

  const auto a2 = f.lib->allocate(kMiB, stack_of("alloc_a"));
  EXPECT_FALSE(a2.promoted);
  const auto b = f.lib->allocate(kMiB, stack_of("alloc_b"));
  EXPECT_TRUE(b.promoted);
  // a's live region still counts against the fast tier until it moves out.
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, 2 * kMiB);
  EXPECT_GT(f.lib->deallocate(a.addr), 0.0);
  EXPECT_EQ(f.lib->stats().fast_bytes_in_use, kMiB);
}

// ------------------------------------------------------------- engine ----

apps::AppSpec shrunk(apps::AppSpec app, std::uint64_t iterations = 4,
                     std::uint64_t accesses = 4000) {
  app.iterations = std::min(app.iterations, iterations);
  app.accesses_per_iteration =
      std::min(app.accesses_per_iteration, accesses);
  return app;
}

TEST(DynamicCondition, BitIdenticalToFrameworkOnSinglePhaseWorkload) {
  engine::PipelineOptions options;
  options.per_phase = true;
  options.sampler.period = 4000;
  const engine::PipelineResult result =
      engine::run_pipeline(shrunk(apps::make_hpcg()), options);

  const engine::RunResult& s = result.production_run;
  const engine::RunResult& d = result.dynamic_run;
  EXPECT_EQ(s.fom, d.fom);        // bit-identical, not approximately
  EXPECT_EQ(s.time_s, d.time_s);
  EXPECT_EQ(s.llc_misses, d.llc_misses);
  EXPECT_EQ(s.fast_hwm_bytes, d.fast_hwm_bytes);
  EXPECT_EQ(s.alloc_calls, d.alloc_calls);
  ASSERT_EQ(s.tier_traffic.size(), d.tier_traffic.size());
  for (std::size_t t = 0; t < s.tier_traffic.size(); ++t) {
    EXPECT_EQ(s.tier_traffic[t].bytes, d.tier_traffic[t].bytes);
    EXPECT_EQ(d.tier_traffic[t].migration_bytes, 0u);
  }
  EXPECT_EQ(d.migration_bytes, 0u);
  EXPECT_EQ(d.migration_count, 0u);
  EXPECT_EQ(d.migration_cost_s, 0.0);
  ASSERT_EQ(result.schedule.phases.size(), 1u);
}

TEST(DynamicCondition, BeatsStaticDfomOnChurnUnderKnl) {
  // The acceptance scenario: the two alternating 64 MiB hot arrays do not
  // both fit a 96 MiB/rank budget, so the static placement leaves one slow
  // forever while the schedule time-multiplexes the fast tier.
  apps::AppSpec app = apps::make_churn();
  app.iterations = 8;  // per-iteration structure is what matters

  engine::PipelineOptions options;
  options.per_phase = true;
  options.fast_budget_per_rank = 96 * kMiB;
  const engine::PipelineResult result = engine::run_pipeline(app, options);

  engine::RunOptions ddr;
  ddr.condition = engine::Condition::kDdr;
  ddr.seed = options.production_seed;
  const engine::RunResult ddr_run = engine::run_app(app, ddr);

  const double static_dfom = engine::dfom_per_mb(
      result.production_run.fom, ddr_run.fom, options.fast_budget_per_rank);
  const double dynamic_dfom = engine::dfom_per_mb(
      result.dynamic_run.fom, ddr_run.fom, options.fast_budget_per_rank);
  EXPECT_GT(dynamic_dfom, static_dfom);
  EXPECT_GT(result.dynamic_run.fom, result.production_run.fom);

  // Migration traffic is real, per tier, and charged to simulated time.
  EXPECT_GT(result.dynamic_run.migration_bytes, 0u);
  EXPECT_GT(result.dynamic_run.migration_count, 0u);
  EXPECT_GT(result.dynamic_run.migration_cost_s, 0.0);
  std::uint64_t per_tier_migration = 0;
  for (const auto& t : result.dynamic_run.tier_traffic) {
    EXPECT_GE(t.bytes, t.migration_bytes);
    per_tier_migration += t.migration_bytes;
  }
  // Every move is one source-tier read plus one destination-tier write.
  EXPECT_EQ(per_tier_migration, 2 * result.dynamic_run.migration_bytes);
  EXPECT_EQ(result.production_run.migration_bytes, 0u);
}

TEST(DynamicCondition, FreedTransientsAreSkippedNotMigrated) {
  // The transient workload's hot sets are phase-scoped: by the time a
  // boundary's migration list mentions them they are either freed (demotion
  // side) or not yet allocated (promotion side). The win comes purely from
  // allocation-time routing; the engine must skip the dead objects.
  apps::AppSpec app = apps::make_transient();
  app.iterations = 6;

  engine::PipelineOptions options;
  options.per_phase = true;
  options.fast_budget_per_rank = 96 * kMiB;
  const engine::PipelineResult result = engine::run_pipeline(app, options);

  ASSERT_EQ(result.schedule.phases.size(), 3u);
  // The schedule's diff does list the transient swaps...
  EXPECT_GT(result.schedule.migration_bytes_per_cycle(), 0u);
  // ...but nothing is live to move at the boundaries.
  EXPECT_EQ(result.dynamic_run.migration_bytes, 0u);
  EXPECT_GT(result.dynamic_run.fom, result.production_run.fom);
}

TEST(ClampFastBudget, ClampsToFastestTierCapacity) {
  const memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  bool clamped = false;
  EXPECT_EQ(engine::clamp_fast_budget(node, 256 * kMiB, &clamped),
            256 * kMiB);
  EXPECT_FALSE(clamped);
  EXPECT_EQ(engine::clamp_fast_budget(node, 64ULL * kGiB, &clamped),
            16ULL * kGiB);
  EXPECT_TRUE(clamped);
}

}  // namespace
}  // namespace hmem
