// Tests for the workload model: spec validation, the eight paper apps'
// invariants, and the access generators.
#include <gtest/gtest.h>

#include <set>

#include "apps/app.hpp"
#include "apps/generator.hpp"
#include "apps/workloads.hpp"
#include "common/units.hpp"

namespace hmem::apps {
namespace {

AppSpec minimal_app() {
  AppSpec app;
  app.name = "mini";
  app.fom_unit = "it/s";
  app.objects = {ObjectSpec{.name = "a", .size_bytes = 4096}};
  PhaseSpec phase;
  phase.name = "main";
  phase.object_weights = {1.0};
  app.phases = {phase};
  return app;
}

TEST(Validate, AcceptsMinimalApp) {
  EXPECT_EQ(validate(minimal_app()), "");
}

TEST(Validate, RejectsBrokenSpecs) {
  {
    auto a = minimal_app();
    a.objects.clear();
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.phases[0].object_weights = {1.0, 2.0};  // size mismatch
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.phases[0].access_share = 0.5;  // shares must sum to 1
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.objects[0].size_bytes = 0;
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.objects[0].is_static = true;
    a.objects[0].churn = true;
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.objects[0].transient_phase = 3;  // no such phase
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.objects[0].instances = 0;
    EXPECT_NE(validate(a), "");
  }
  {
    auto a = minimal_app();
    a.phases[0].object_weights = {0.0};
    a.phases[0].stack_weight = 0.0;  // all-zero weights
    EXPECT_NE(validate(a), "");
  }
}

TEST(AppSpec, AllPaperAppsValidate) {
  const auto apps = all_apps();
  ASSERT_EQ(apps.size(), 8u);
  for (const auto& app : apps) {
    EXPECT_EQ(validate(app), "") << app.name;
  }
}

TEST(AppSpec, PaperAppsHaveExpectedGeometry) {
  // Table I: BT is the only OpenMP-only app; the rest run 64 ranks.
  for (const auto& app : all_apps()) {
    if (app.name == "bt") {
      EXPECT_EQ(app.ranks, 1);
      EXPECT_GT(app.threads_per_rank, 32);
    } else {
      EXPECT_EQ(app.ranks, 64) << app.name;
    }
  }
}

TEST(AppSpec, BtWorkingSetFitsMcdram) {
  // The reason numactl wins BT: ~11 GiB working set, 16 GiB MCDRAM.
  const auto bt = make_nas_bt();
  EXPECT_GT(bt.total_footprint(), 8ULL * kGiB);
  EXPECT_LT(bt.total_footprint(), 16ULL * kGiB);
}

TEST(AppSpec, CgpopCriticalSetFitsSmallestBudget) {
  // CGPOP's dynamic critical set fits 32 MiB/rank (flat FOM across budgets).
  const auto cgpop = make_cgpop();
  std::uint64_t critical = 0;
  for (std::size_t i = 0; i < cgpop.objects.size(); ++i) {
    const auto& obj = cgpop.objects[i];
    if (!obj.is_static && cgpop.phases[0].object_weights[i] >= 0.15) {
      critical += obj.total_bytes();
    }
  }
  EXPECT_LE(critical, 32ULL << 20);
}

TEST(AppSpec, LuleshAllocatesDuringMainLoop) {
  // The paper stresses Lulesh "allocates and deallocates many objects
  // during the application run": phase-scoped transients, including a
  // multi-instance 1-2 MiB site (the memkind anomaly window).
  const auto lulesh = make_lulesh();
  bool has_transient = false, has_anomaly_window_site = false;
  for (const auto& obj : lulesh.objects) {
    has_transient |= obj.transient_phase >= 0;
    if (obj.transient_phase >= 0 && obj.instances > 1 &&
        obj.size_bytes >= (1ULL << 20) && obj.size_bytes <= (2ULL << 20)) {
      has_anomaly_window_site = true;
    }
  }
  EXPECT_TRUE(has_transient);
  EXPECT_TRUE(has_anomaly_window_site);
}

TEST(AppSpec, MaxwHasAllocationChurn) {
  // Table I: MAXW-DGTD's 15,854 allocations/process/second.
  const auto maxw = make_maxw_dgtd();
  bool has_churn = false;
  for (const auto& obj : maxw.objects) has_churn |= obj.churn;
  EXPECT_TRUE(has_churn);
}

TEST(AppSpec, SnapHasStackHeavyOuterPhase) {
  const auto snap = make_snap();
  ASSERT_EQ(snap.phases.size(), 2u);
  const auto& outer = snap.phases[1];
  EXPECT_EQ(outer.name, "outer_src_calc");
  EXPECT_GT(outer.stack_weight, 0.4);  // the register-spill phase
  EXPECT_LT(snap.phases[0].stack_weight, 0.1);
}

TEST(AppSpec, HpcgHasLoopingSmallBufferSite) {
  const auto hpcg = make_hpcg();
  bool found = false;
  for (const auto& obj : hpcg.objects) {
    if (obj.instances > 1 && !obj.is_static) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AppSpec, AllocStackShapes) {
  const auto app = make_hpcg();
  const auto stack = app.alloc_stack(0);
  EXPECT_EQ(stack.depth(),
            static_cast<std::size_t>(app.objects[0].callstack_depth));
  // Innermost frame identifies the object; outermost is main.
  EXPECT_NE(stack.frames.front().function.find("alloc_"), std::string::npos);
  EXPECT_EQ(stack.frames.back().function, "main");
  // Distinct objects get distinct stacks.
  EXPECT_NE(app.alloc_stack(0), app.alloc_stack(1));
  // Same object: stable stack (churn loops share one call-stack).
  EXPECT_EQ(app.alloc_stack(2), app.alloc_stack(2));
}

TEST(AppSpec, ObjectIndexLookup) {
  const auto app = make_minife();
  EXPECT_EQ(app.objects[app.object_index("A_vals")].name, "A_vals");
}

TEST(AppSpec, AppByNameFindsAll) {
  for (const char* name : {"hpcg", "lulesh", "bt", "minife", "cgpop", "snap",
                           "maxw-dgtd", "gtc-p"}) {
    EXPECT_EQ(app_by_name(name).name, name);
  }
}

TEST(StreamTriad, ThreeEqualArrays) {
  const auto stream = make_stream_triad(68);
  ASSERT_EQ(stream.objects.size(), 3u);
  EXPECT_EQ(stream.objects[0].size_bytes, stream.objects[1].size_bytes);
  EXPECT_EQ(stream.threads_per_rank, 68);
  EXPECT_EQ(validate(stream), "");
}

// ----------------------------------------------------------- generator ----

TEST(AccessGenerator, StreamCoversObjectSequentially) {
  const std::uint64_t size = 64 * 100;
  AccessGenerator gen(AccessPattern::kStream, size, 42);
  std::set<std::uint64_t> seen;
  std::uint64_t prev = gen.next_offset();
  seen.insert(prev);
  for (int i = 1; i < 100; ++i) {
    const auto off = gen.next_offset();
    EXPECT_EQ(off % 64, 0u);
    EXPECT_LT(off, size);
    EXPECT_EQ(off, (prev + 64) % size);  // strictly sequential with wrap
    prev = off;
    seen.insert(off);
  }
  EXPECT_EQ(seen.size(), 100u);  // full coverage after size/64 steps
}

TEST(AccessGenerator, RandomStaysInRange) {
  const std::uint64_t size = 1 << 20;
  AccessGenerator gen(AccessPattern::kRandom, size, 7);
  for (int i = 0; i < 1000; ++i) {
    const auto off = gen.next_offset();
    EXPECT_LT(off, size);
    EXPECT_EQ(off % 64, 0u);
  }
}

TEST(AccessGenerator, StridedVisitsManyDistinctLines) {
  const std::uint64_t size = 64 * 1024;
  AccessGenerator gen(AccessPattern::kStrided, size, 3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 512; ++i) seen.insert(gen.next_offset());
  EXPECT_GT(seen.size(), 400u);  // near-full coverage, no short cycle
}

TEST(AccessGenerator, DeterministicPerSeed) {
  AccessGenerator a(AccessPattern::kRandom, 1 << 20, 5);
  AccessGenerator b(AccessPattern::kRandom, 1 << 20, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_offset(), b.next_offset());
  AccessGenerator c(AccessPattern::kRandom, 1 << 20, 6);
  bool any_diff = false;
  AccessGenerator a2(AccessPattern::kRandom, 1 << 20, 5);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_offset() != c.next_offset()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AccessGenerator, TinyObjectSingleLine) {
  AccessGenerator gen(AccessPattern::kStream, 1, 9);
  EXPECT_EQ(gen.next_offset(), 0u);
  EXPECT_EQ(gen.next_offset(), 0u);
}

}  // namespace
}  // namespace hmem::apps
