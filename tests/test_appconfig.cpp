// Tests for the app-config DSL (apps/app_config.hpp): error paths with the
// offending key named, canonical round-trips, and the golden guarantee that
// the shipped configs/apps/*.ini are bit-identical to the C++ tables — in
// text, in parsed spec, in profile aggregate and in a Figure-4 dFOM row.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/aggregator.hpp"
#include "apps/app_config.hpp"
#include "apps/workloads.hpp"
#include "engine/experiment.hpp"
#include "engine/pipeline.hpp"
#include "trace/visitor.hpp"

namespace hmem::apps {
namespace {

std::vector<AppSpec> bundled_apps() {
  auto apps = all_apps();
  for (auto& app : phase_shift_apps()) apps.push_back(std::move(app));
  return apps;
}

std::string shipped_config_path(const std::string& name) {
  return std::string(HMEM_REPO_DIR) + "/configs/apps/" + name + ".ini";
}

/// Minimal valid config the error-path tests mutate.
constexpr const char* kValidConfig = R"(
[app]
name = demo

[object hot]
size = 1M
pattern = zipf
zipf_alpha = 1.1

[object cold]
size = 4M

[phase main]
access_share = 1
weights = hot:0.7 cold:0.3
)";

/// The parse must throw std::runtime_error whose message contains every
/// given needle (the offending section/key), per the DSL's error contract.
void expect_error(const std::string& text,
                  const std::vector<std::string>& needles) {
  try {
    from_config_text(text);
    FAIL() << "config parsed but should have been rejected:\n" << text;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("app config:"), std::string::npos) << what;
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "error message '" << what << "' does not name '" << needle << "'";
    }
  }
}

TEST(AppConfig, ParsesMinimalValidConfig) {
  const AppSpec spec = from_config_text(kValidConfig);
  EXPECT_EQ(spec.name, "demo");
  ASSERT_EQ(spec.objects.size(), 2u);
  EXPECT_EQ(spec.objects[0].pattern, AccessPattern::kZipf);
  EXPECT_DOUBLE_EQ(spec.objects[0].zipf_alpha, 1.1);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.phases[0].object_weights[0], 0.7);
  EXPECT_EQ(validate(spec), "");
}

// --------------------------------------------------------- error paths ----
// One test per malformed-INI path the tools surface as exit 2: hmem_run /
// hmem_profile / hmem_advise print exactly these load_app_file errors, so
// the contract tested here is the contract the CLI reports.

TEST(AppConfigErrors, DuplicatePhaseSection) {
  expect_error(std::string(kValidConfig) + "\n[phase main]\naccess_share = 1\n",
               {"[phase main]", "declared twice"});
}

TEST(AppConfigErrors, DuplicateObjectSection) {
  expect_error(std::string(kValidConfig) + "\n[object hot]\nsize = 2M\n",
               {"[object hot]", "declared twice"});
}

TEST(AppConfigErrors, ZeroSizeObject) {
  std::string text = kValidConfig;
  const auto pos = text.find("size = 4M");
  text.replace(pos, 9, "size = 0 ");
  expect_error(text, {"[object cold]", "size must be a positive byte count"});
}

TEST(AppConfigErrors, MissingObjectSize) {
  expect_error("[app]\nname = x\n[object a]\npattern = seq\n"
               "[phase p]\naccess_share = 1\nweights = a:1\n",
               {"[object a]", "size missing"});
}

TEST(AppConfigErrors, UnknownGeneratorKind) {
  std::string text = kValidConfig;
  const auto pos = text.find("pattern = zipf");
  text.replace(pos, 14, "pattern = warp");
  expect_error(text, {"[object hot]", "unknown pattern 'warp'"});
}

TEST(AppConfigErrors, MissingAppSection) {
  expect_error("[object a]\nsize = 1M\n[phase p]\naccess_share = 1\n",
               {"missing [app] section"});
}

TEST(AppConfigErrors, MissingAppName) {
  expect_error("[app]\nfom_unit = z\n[object a]\nsize = 1M\n"
               "[phase p]\naccess_share = 1\nweights = a:1\n",
               {"[app] name missing"});
}

TEST(AppConfigErrors, WeightsReferenceUnknownObject) {
  std::string text = kValidConfig;
  const auto pos = text.find("weights = hot:0.7 cold:0.3");
  text.replace(pos, 26, "weights = hot:0.7 warm:0.3");
  expect_error(text, {"[phase main]", "unknown object 'warm'"});
}

TEST(AppConfigErrors, WeightsListObjectTwice) {
  std::string text = kValidConfig;
  const auto pos = text.find("weights = hot:0.7 cold:0.3");
  text.replace(pos, 26, "weights = hot:0.7 hot:0.30");
  expect_error(text, {"[phase main]", "'hot' twice"});
}

TEST(AppConfigErrors, MalformedWeightToken) {
  std::string text = kValidConfig;
  const auto pos = text.find("weights = hot:0.7 cold:0.3");
  text.replace(pos, 26, "weights = hot:0.7 cold:x.3");
  expect_error(text, {"[phase main]", "malformed weight"});
}

TEST(AppConfigErrors, WeightTokenWithoutColon) {
  std::string text = kValidConfig;
  const auto pos = text.find("weights = hot:0.7 cold:0.3");
  text.replace(pos, 26, "weights = hot:0.7 cold    ");
  expect_error(text, {"[phase main]", "must be object:weight"});
}

TEST(AppConfigErrors, UnknownTransientPhase) {
  expect_error(std::string(kValidConfig) + "\n[object tmp]\nsize = 1M\n"
                                           "transient_phase = solve\n",
               {"[object tmp]", "unknown phase 'solve'"});
}

TEST(AppConfigErrors, UnnamedObjectSection) {
  expect_error("[app]\nname = x\n[object]\nsize = 1M\n",
               {"[object] section needs a name"});
}

TEST(AppConfigErrors, UnrecognisedSection) {
  expect_error(std::string(kValidConfig) + "\n[objects typo]\nsize = 1M\n",
               {"unrecognised section [objects typo]"});
}

TEST(AppConfigErrors, ValidationFailureIsWrapped) {
  std::string text = kValidConfig;
  const auto pos = text.find("access_share = 1");
  text.replace(pos, 16, "access_share = .5");
  expect_error(text, {});  // validate()'s message, wrapped as app config:
}

// ---------------------------------------------------------- round trips ---

TEST(AppConfig, CanonicalTextRoundTripsEveryBundledApp) {
  for (const auto& app : bundled_apps()) {
    const std::string text = to_config_text(app);
    const AppSpec reparsed = from_config_text(text);
    EXPECT_TRUE(reparsed == app) << app.name << " config:\n" << text;
  }
}

TEST(AppConfig, LoadAppResolvesBundledNamesAndReportsUnknown) {
  std::string error;
  const auto hpcg = load_app("hpcg", &error);
  ASSERT_TRUE(hpcg.has_value());
  EXPECT_TRUE(*hpcg == make_hpcg());
  EXPECT_FALSE(load_app("no-such-app", &error).has_value());
  EXPECT_NE(error.find("no-such-app"), std::string::npos);
  EXPECT_NE(error.find("hpcg"), std::string::npos);  // lists bundled names
}

// ------------------------------------------------------------- goldens ----
// The shipped configs/apps/*.ini are generated by `hmem_workload dump-all`;
// these tests pin them to the C++ tables in the strongest available order:
// byte-identical text, operator==-identical parsed spec, bit-identical
// profile aggregate, and a bit-identical Figure-4 dFOM row sample.

TEST(AppConfigGolden, ShippedConfigsAreByteIdenticalToGeneratedText) {
  for (const auto& app : bundled_apps()) {
    std::ifstream in(shipped_config_path(app.name));
    ASSERT_TRUE(in) << "missing shipped config for " << app.name
                    << " (regenerate with: hmem_workload dump-all configs/apps)";
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_EQ(text.str(), to_config_text(app)) << app.name;
  }
}

TEST(AppConfigGolden, ShippedConfigsParseToIdenticalSpecs) {
  for (const auto& app : bundled_apps()) {
    std::string error;
    const auto loaded = load_app_file(shipped_config_path(app.name), &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(*loaded == app) << app.name;
  }
}

TEST(AppConfigGolden, ShippedConfigsProfileToBitIdenticalAggregates) {
  // Profile both specs on the knl preset and compare the stage-2 aggregate
  // field by field. The engine is deterministic, so any divergence means a
  // config drifted from its table.
  const auto aggregate_of = [](const AppSpec& app) {
    callstack::SiteDb sites;
    analysis::AggregateVisitor visitor(sites);
    trace::VisitorSink sink(visitor);
    engine::RunOptions opts;
    opts.profile = true;
    opts.sites = &sites;
    opts.trace_sink = &sink;
    (void)engine::run_app(app, opts);
    return visitor.finish();
  };
  for (const auto& app : bundled_apps()) {
    std::string error;
    const auto loaded = load_app_file(shipped_config_path(app.name), &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    const auto expect = aggregate_of(app);
    const auto got = aggregate_of(*loaded);
    EXPECT_EQ(got.total_samples, expect.total_samples) << app.name;
    EXPECT_EQ(got.total_weighted_misses, expect.total_weighted_misses)
        << app.name;
    EXPECT_EQ(got.unattributed_samples, expect.unattributed_samples)
        << app.name;
    ASSERT_EQ(got.objects.size(), expect.objects.size()) << app.name;
    for (std::size_t i = 0; i < expect.objects.size(); ++i) {
      EXPECT_EQ(got.objects[i].name, expect.objects[i].name) << app.name;
      EXPECT_EQ(got.objects[i].max_size_bytes, expect.objects[i].max_size_bytes)
          << app.name << "/" << expect.objects[i].name;
      EXPECT_EQ(got.objects[i].llc_misses, expect.objects[i].llc_misses)
          << app.name << "/" << expect.objects[i].name;
      EXPECT_EQ(got.objects[i].is_dynamic, expect.objects[i].is_dynamic)
          << app.name << "/" << expect.objects[i].name;
    }
    ASSERT_EQ(got.phases.size(), expect.phases.size()) << app.name;
    for (std::size_t p = 0; p < expect.phases.size(); ++p) {
      EXPECT_EQ(got.phases[p].name, expect.phases[p].name) << app.name;
    }
  }
}

TEST(AppConfigGolden, ShippedHpcgProducesBitIdenticalFig4Row) {
  // One full Figure-4 row sample on knl: same baselines, same cell FOMs,
  // same dFOM/MByte, from the table spec and from the shipped INI.
  std::string error;
  const auto loaded = load_app_file(shipped_config_path("hpcg"), &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  const std::vector<std::uint64_t> budgets = {64ULL << 20, 256ULL << 20};
  const std::vector<engine::StrategyConfig> strategies = {
      engine::paper_strategies().front()};
  const auto row_of = [&](const AppSpec& app) {
    engine::Fig4Runner runner(app, engine::PipelineOptions{});
    return runner.run(budgets, strategies);
  };
  const auto expect = row_of(make_hpcg());
  const auto got = row_of(*loaded);

  EXPECT_EQ(got.ddr.fom, expect.ddr.fom);
  EXPECT_EQ(got.numactl.fom, expect.numactl.fom);
  EXPECT_EQ(got.autohbw.fom, expect.autohbw.fom);
  EXPECT_EQ(got.cache.fom, expect.cache.fom);
  ASSERT_EQ(got.cells.size(), expect.cells.size());
  for (std::size_t i = 0; i < expect.cells.size(); ++i) {
    EXPECT_EQ(got.cells[i].fom, expect.cells[i].fom) << i;
    EXPECT_EQ(got.cells[i].hwm_bytes, expect.cells[i].hwm_bytes) << i;
    EXPECT_EQ(got.cells[i].dfom_per_mb, expect.cells[i].dfom_per_mb) << i;
  }
}

}  // namespace
}  // namespace hmem::apps
