// Tests for trace events, the sink/visitor interfaces, both trace formats
// (text v1 with field quoting, binary v2), the format-sniffing front and
// the k-way merge reader.
#include <gtest/gtest.h>

#include <sstream>

#include "common/prng.hpp"
#include "trace/event.hpp"
#include "trace/format.hpp"
#include "trace/merge.hpp"
#include "trace/tracefile.hpp"
#include "trace/visitor.hpp"

namespace hmem::trace {
namespace {

callstack::SymbolicCallStack stack_of(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  return s;
}

/// Serializes a buffer in the given format and reads it back.
void round_trip(const callstack::SiteDb& sites, const TraceBuffer& buf,
                TraceFormat format, callstack::SiteDb& sites_out,
                TraceBuffer& buf_out) {
  std::ostringstream os;
  const auto writer = make_trace_writer(os, sites, format);
  for (const auto& event : buf.events()) writer->on_event(event);
  writer->finish();
  std::istringstream is(os.str());
  const auto reader = open_trace_reader(is, sites_out);
  pump(*reader, buf_out);
}

TEST(TraceBuffer, AccumulatesEvents) {
  TraceBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.add(AllocEvent{1.0, 0, 0x1000, 64});
  buf.add(FreeEvent{2.0, 0x1000});
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(EventTime, VisitsAllVariants) {
  EXPECT_DOUBLE_EQ(event_time_ns(Event{AllocEvent{1.5, 0, 0, 1}}), 1.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{FreeEvent{2.5, 0}}), 2.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{SampleEvent{3.5, 0, false, 1}}), 3.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{PhaseEvent{4.5, "p", true}}), 4.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{CounterEvent{5.5, "c", 9}}), 5.5);
}

TEST(TraceFile, RoundTripAllEventKinds) {
  callstack::SiteDb sites;
  const auto site = sites.intern("A", stack_of("alloc_A"));
  TraceBuffer buf;
  buf.add(AllocEvent{10.0, site, 0x100001000, 4096});
  buf.add(PhaseEvent{11.0, "solve", true});
  buf.add(SampleEvent{12.5, 0x100001040, true, 37589});
  buf.add(CounterEvent{13.0, "instructions", 1e6});
  buf.add(PhaseEvent{14.0, "solve", false});
  buf.add(FreeEvent{15.0, 0x100001000});

  std::ostringstream os;
  EXPECT_EQ(write_trace(os, sites, buf), 6u);

  callstack::SiteDb sites2;
  TraceBuffer buf2;
  std::istringstream is(os.str());
  read_trace(is, sites2, buf2);
  ASSERT_EQ(buf2.size(), 6u);
  EXPECT_EQ(sites2.size(), 1u);

  const auto* alloc = std::get_if<AllocEvent>(&buf2.events()[0]);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->addr, 0x100001000u);
  EXPECT_EQ(alloc->size, 4096u);
  EXPECT_EQ(sites2.get(alloc->site).object_name, "A");

  const auto* sample = std::get_if<SampleEvent>(&buf2.events()[2]);
  ASSERT_NE(sample, nullptr);
  EXPECT_TRUE(sample->is_write);
  EXPECT_EQ(sample->weight, 37589u);

  const auto* counter = std::get_if<CounterEvent>(&buf2.events()[3]);
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->value, 1e6);
}

TEST(TraceFile, SiteIdsRemappedOnMerge) {
  // Reader must remap site ids into a SiteDb that already has entries.
  callstack::SiteDb sites_a;
  const auto site_a = sites_a.intern("A", stack_of("alloc_A"));
  TraceBuffer buf_a;
  buf_a.add(AllocEvent{1.0, site_a, 0x1000, 64});
  std::ostringstream os;
  write_trace(os, sites_a, buf_a);

  callstack::SiteDb merged;
  merged.intern("Zero", stack_of("alloc_zero"));  // occupies id 0
  TraceBuffer buf_b;
  std::istringstream is(os.str());
  read_trace(is, merged, buf_b);
  const auto* alloc = std::get_if<AllocEvent>(&buf_b.events()[0]);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(merged.get(alloc->site).object_name, "A");
  EXPECT_EQ(alloc->site, 1u);  // remapped past the existing entry
}

TEST(TraceFile, MalformedLinesThrow) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  for (const char* bad : {
           "X|1.0|what",                 // unknown kind
           "A|1.0|0|1000",               // too few fields
           "A|abc|0|1000|64",            // bad time
           "M|1.0|zzz|0|1",              // bad address... (hex ok, zzz not)
           "P|1.0|Q|phase",              // bad begin/end flag
           "A|1.0|7|1000|64",            // site never defined
       }) {
    std::istringstream is(bad);
    callstack::SiteDb s2;
    TraceBuffer b2;
    EXPECT_THROW(read_trace(is, s2, b2), std::runtime_error) << bad;
  }
}

TEST(TraceFile, IgnoresCommentsAndBlankLines) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  std::istringstream is("# comment\n\nF|1.0|1000\n");
  read_trace(is, sites, buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(EventSink, TraceBufferIsASink) {
  TraceBuffer buf;
  EventSink& sink = buf;
  sink.on_event(Event{AllocEvent{1.0, 0, 0x1000, 64}});
  sink.on_event(Event{FreeEvent{2.0, 0x1000}});
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<FreeEvent>(buf.events()[1]));
}

TEST(EventVisitor, DispatchesByKind) {
  struct Counting : EventVisitor {
    int allocs = 0, frees = 0, samples = 0, phases = 0, counters = 0;
    void on_alloc(const AllocEvent&) override { ++allocs; }
    void on_free(const FreeEvent&) override { ++frees; }
    void on_sample(const SampleEvent&) override { ++samples; }
    void on_phase(const PhaseEvent&) override { ++phases; }
    void on_counter(const CounterEvent&) override { ++counters; }
  } counting;
  TraceBuffer buf;
  buf.add(AllocEvent{1, 0, 0x1000, 64});
  buf.add(PhaseEvent{2, "p", true});
  buf.add(SampleEvent{3, 0x1000, false, 1});
  buf.add(CounterEvent{4, "c", 1});
  buf.add(PhaseEvent{5, "p", false});
  buf.add(FreeEvent{6, 0x1000});
  visit_buffer(buf, counting);
  EXPECT_EQ(counting.allocs, 1);
  EXPECT_EQ(counting.frees, 1);
  EXPECT_EQ(counting.samples, 1);
  EXPECT_EQ(counting.phases, 2);
  EXPECT_EQ(counting.counters, 1);

  // VisitorSink: the same dispatch behind the push interface.
  VisitorSink sink(counting);
  sink.on_event(Event{SampleEvent{7, 0x2000, true, 5}});
  EXPECT_EQ(counting.samples, 2);
}

TEST(FieldQuoting, PlainNamesPassVerbatim) {
  EXPECT_EQ(escape_field("solve_phase.1"), "solve_phase.1");
  EXPECT_EQ(unescape_field("solve_phase.1"), "solve_phase.1");
}

TEST(FieldQuoting, HostileNamesRoundTrip) {
  for (const std::string name :
       {"with space", "pipe|inside", "quote\"inside", "back\\slash",
        "new\nline", "tab\tand\rcr", "", " leading", "trailing ",
        "\"quoted\""}) {
    const std::string escaped = escape_field(name);
    // The escaped form must be safe for the line-oriented format.
    EXPECT_EQ(escaped.find('|'), std::string::npos) << name;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << name;
    EXPECT_EQ(unescape_field(escaped), name) << name;
  }
}

TEST(FieldQuoting, RejectsMalformedQuoting) {
  for (const std::string bad : {"\"unterminated", "\"", "\"bad\\q\"",
                                "\"trailing\\\"", "\"inner\"quote\""}) {
    EXPECT_THROW(unescape_field(bad), std::runtime_error) << bad;
  }
}

TEST(TraceFile, HostileNamesSurviveTextRoundTrip) {
  callstack::SiteDb sites;
  const auto site = sites.intern("matrix A|piv\not", stack_of("alloc \"A\""));
  TraceBuffer buf;
  buf.add(AllocEvent{1.0, site, 0x1000, 4096});
  buf.add(PhaseEvent{2.0, "solve|forward pass", true});
  buf.add(CounterEvent{3.0, "instructions\nretired", 42.5});
  buf.add(PhaseEvent{4.0, "solve|forward pass", false});

  std::ostringstream os;
  write_trace(os, sites, buf);
  callstack::SiteDb sites2;
  TraceBuffer buf2;
  std::istringstream is(os.str());
  read_trace(is, sites2, buf2);

  ASSERT_EQ(buf2.size(), buf.size());
  EXPECT_EQ(sites2.get(0).object_name, "matrix A|piv\not");
  EXPECT_EQ(sites2.get(0).stack.frames[0].function, "alloc \"A\"");
  const auto* phase = std::get_if<PhaseEvent>(&buf2.events()[1]);
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->name, "solve|forward pass");
  const auto* counter = std::get_if<CounterEvent>(&buf2.events()[2]);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->name, "instructions\nretired");
  EXPECT_DOUBLE_EQ(counter->value, 42.5);
}

TEST(TraceFile, UnterminatedQuoteInTraceThrows) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  std::istringstream is("P|1.0|B|\"unterminated phase\n");
  EXPECT_THROW(read_trace(is, sites, buf), std::runtime_error);
}

TEST(BinaryFormat, RoundTripAllEventKinds) {
  callstack::SiteDb sites;
  const auto site = sites.intern("A", stack_of("alloc_A"));
  TraceBuffer buf;
  buf.add(AllocEvent{10.0, site, 0x100001000, 4096});
  buf.add(PhaseEvent{11.0, "solve", true});
  buf.add(SampleEvent{12.5, 0x100001040, true, 37589});
  buf.add(CounterEvent{13.0, "instructions", 0.1});  // not text-exact
  buf.add(PhaseEvent{14.0, "solve", false});
  buf.add(FreeEvent{15.0, 0x100001000});

  callstack::SiteDb sites2;
  TraceBuffer buf2;
  round_trip(sites, buf, TraceFormat::kBinary, sites2, buf2);
  ASSERT_EQ(buf2.size(), buf.size());
  EXPECT_EQ(sites2.size(), 1u);
  EXPECT_EQ(sites2.get(0).object_name, "A");
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(buf2.events()[i], buf.events()[i]) << "event " << i;
}

TEST(BinaryFormat, SiteIdsRemappedOnMerge) {
  callstack::SiteDb sites_a;
  const auto site_a = sites_a.intern("A", stack_of("alloc_A"));
  TraceBuffer buf_a;
  buf_a.add(AllocEvent{1.0, site_a, 0x1000, 64});

  callstack::SiteDb merged;
  merged.intern("Zero", stack_of("alloc_zero"));  // occupies id 0
  TraceBuffer buf_b;
  round_trip(sites_a, buf_a, TraceFormat::kBinary, merged, buf_b);
  const auto* alloc = std::get_if<AllocEvent>(&buf_b.events()[0]);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(merged.get(alloc->site).object_name, "A");
  EXPECT_EQ(alloc->site, 1u);  // remapped past the existing entry
}

TEST(BinaryFormat, SpansMultipleChunksWithLateSites) {
  // More events than one chunk holds, with a second site interned (and a
  // new phase name introduced) mid-stream: exercises chunk flushing and
  // incremental string/site tables.
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  std::ostringstream os;
  const auto writer = make_trace_writer(os, sites, TraceFormat::kBinary);
  double t = 0;
  for (int i = 0; i < 6000; ++i)
    writer->on_event(SampleEvent{t += 0.5, 0x1000u + i * 64u, false, 1});
  writer->on_event(AllocEvent{t += 1, a, 0x10000000, 4096});
  const auto b = sites.intern("B", stack_of("alloc_B"));
  writer->on_event(AllocEvent{t += 1, b, 0x20000000, 8192});
  writer->on_event(PhaseEvent{t += 1, "late phase", true});
  writer->finish();
  EXPECT_EQ(writer->events_written(), 6003u);

  callstack::SiteDb sites2;
  TraceBuffer buf;
  std::istringstream is(os.str());
  pump(*open_trace_reader(is, sites2), buf);
  ASSERT_EQ(buf.size(), 6003u);
  EXPECT_EQ(sites2.size(), 2u);
  const auto* late = std::get_if<PhaseEvent>(&buf.events().back());
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->name, "late phase");
}

TEST(BinaryFormat, RejectsCorruptStreams) {
  callstack::SiteDb sites;
  const std::vector<std::string> corrupt_streams = {
      std::string("HMT9\x02", 5),             // wrong magic
      std::string("HMT2\x07", 5),             // wrong version
      std::string("HMT2\x02X", 6),            // unknown chunk tag
      std::string("HMT2\x02T\x01\x05zz", 9),  // truncated string table
      // Corruption-controlled sizes must be rejected before allocating
      // (std::runtime_error, not bad_alloc): huge event count, huge chunk
      // payload, huge string length.
      std::string("HMT2\x02E\xff\xff\xff\xff\x7f", 11),
      std::string("HMT2\x02E\x01\xff\xff\xff\xff\x7f", 12),
      std::string("HMT2\x02T\x01\xff\xff\xff\xff\x7f", 11),
  };
  for (const std::string& bad : corrupt_streams) {
    std::istringstream is(bad);
    TraceBuffer buf;
    EXPECT_THROW(
        {
          const auto reader = detail::open_binary_reader(is, sites);
          pump(*reader, buf);
        },
        std::runtime_error);
  }
}

TEST(FormatFront, SniffsTextAndBinary) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  buf.add(FreeEvent{1.0, 0x1000});
  for (const auto format : {TraceFormat::kText, TraceFormat::kBinary}) {
    std::ostringstream os;
    const auto writer = make_trace_writer(os, sites, format);
    writer->on_event(buf.events()[0]);
    writer->finish();
    std::istringstream is(os.str());
    EXPECT_EQ(sniff_trace_format(is), format);
    callstack::SiteDb s2;
    TraceBuffer b2;
    pump(*open_trace_reader(is, s2), b2);
    ASSERT_EQ(b2.size(), 1u);
    EXPECT_EQ(b2.events()[0], buf.events()[0]);
  }
}

TEST(PropertyTest, RandomStreamsRoundTripTextAndBinaryIdentically) {
  // Random event streams, each pushed through text -> binary -> text; all
  // three decoded sequences must be identical, event for event. Times are
  // drawn on the 1 ps grid both formats quantize to; counter values are
  // arbitrary doubles (text uses %.17g, binary raw bits — both lossless).
  Xoshiro256 rng(20260728);
  for (int round = 0; round < 25; ++round) {
    callstack::SiteDb sites;
    std::vector<callstack::SiteId> ids;
    const int n_sites = 1 + static_cast<int>(rng.below(4));
    for (int s = 0; s < n_sites; ++s)
      ids.push_back(sites.intern("obj" + std::to_string(s),
                                 stack_of("fn" + std::to_string(s)),
                                 rng.below(2) == 0));
    TraceBuffer buf;
    std::uint64_t ticks = 0;  // picoseconds — the grid both formats encode
    const int n_events = 50 + static_cast<int>(rng.below(200));
    for (int i = 0; i < n_events; ++i) {
      ticks += rng.below(2'000'000'000);
      const double t = static_cast<double>(ticks) / 1000.0;
      switch (rng.below(5)) {
        case 0:
          buf.add(AllocEvent{t, ids[rng.below(ids.size())],
                             rng.below(1ULL << 48), 1 + rng.below(1u << 20)});
          break;
        case 1:
          buf.add(FreeEvent{t, rng.below(1ULL << 48)});
          break;
        case 2:
          buf.add(SampleEvent{t, rng.below(1ULL << 48), rng.below(2) == 1,
                              1 + rng.below(100000)});
          break;
        case 3:
          buf.add(PhaseEvent{t, "phase " + std::to_string(rng.below(3)),
                             rng.below(2) == 0});
          break;
        default:
          buf.add(CounterEvent{t, "ctr|" + std::to_string(rng.below(2)),
                               rng.uniform() * 1e12});
      }
    }

    callstack::SiteDb s1, s2, s3;
    TraceBuffer t1, b1, t2;
    round_trip(sites, buf, TraceFormat::kText, s1, t1);     // text
    round_trip(s1, t1, TraceFormat::kBinary, s2, b1);       // -> binary
    round_trip(s2, b1, TraceFormat::kText, s3, t2);         // -> text
    ASSERT_EQ(t1.size(), buf.size()) << "round " << round;
    ASSERT_EQ(b1.size(), buf.size()) << "round " << round;
    ASSERT_EQ(t2.size(), buf.size()) << "round " << round;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      EXPECT_EQ(t1.events()[i], buf.events()[i])
          << "round " << round << " event " << i << " (text)";
      EXPECT_EQ(b1.events()[i], t1.events()[i])
          << "round " << round << " event " << i << " (binary)";
      EXPECT_EQ(t2.events()[i], b1.events()[i])
          << "round " << round << " event " << i << " (text again)";
    }
  }
}

TEST(PropertyTest, HalfTickTimestampsRoundIdenticallyInBothFormats) {
  // 0.0625 ns is exactly representable and sits on a .5 ps tie: %.3f
  // rounds ties to even ("0.062"), and the binary encoder must agree
  // (llrint, not llround — which would give 63 ticks).
  TraceBuffer buf;
  buf.add(FreeEvent{0.0625, 0x1000});
  buf.add(FreeEvent{0.1875, 0x1000});  // the other tie direction: -> 0.188
  callstack::SiteDb sites, st, sb;
  TraceBuffer from_text, from_binary;
  round_trip(sites, buf, TraceFormat::kText, st, from_text);
  round_trip(sites, buf, TraceFormat::kBinary, sb, from_binary);
  ASSERT_EQ(from_text.size(), 2u);
  ASSERT_EQ(from_binary.size(), 2u);
  EXPECT_EQ(from_text.events()[0], from_binary.events()[0]);
  EXPECT_EQ(from_text.events()[1], from_binary.events()[1]);
  EXPECT_DOUBLE_EQ(event_time_ns(from_binary.events()[0]), 0.062);
  EXPECT_DOUBLE_EQ(event_time_ns(from_binary.events()[1]), 0.188);
}

TEST(MergeReader, OrdersEventsAcrossShards) {
  TraceBuffer a, b, c;
  a.add(SampleEvent{1.0, 0xa1, false, 1});
  a.add(SampleEvent{4.0, 0xa2, false, 1});
  b.add(SampleEvent{2.0, 0xb1, false, 1});
  b.add(SampleEvent{2.0, 0xb2, false, 1});  // equal times keep shard order
  c.add(SampleEvent{3.0, 0xc1, false, 1});

  std::vector<std::unique_ptr<TraceReader>> inputs;
  inputs.push_back(std::make_unique<BufferTraceReader>(a));
  inputs.push_back(std::make_unique<BufferTraceReader>(b));
  inputs.push_back(std::make_unique<BufferTraceReader>(c));
  MergeTraceReader merged(std::move(inputs));

  std::vector<Address> order;
  Event e;
  double last = -1;
  while (merged.next(e)) {
    EXPECT_GE(event_time_ns(e), last);
    last = event_time_ns(e);
    order.push_back(std::get<SampleEvent>(e).addr);
  }
  EXPECT_EQ(order, (std::vector<Address>{0xa1, 0xb1, 0xb2, 0xc1, 0xa2}));
}

TEST(MergeReader, TiesBreakTowardLowerShardIndex) {
  TraceBuffer a, b;
  a.add(SampleEvent{1.0, 0xa, false, 1});
  b.add(SampleEvent{1.0, 0xb, false, 1});
  std::vector<std::unique_ptr<TraceReader>> inputs;
  inputs.push_back(std::make_unique<BufferTraceReader>(a));
  inputs.push_back(std::make_unique<BufferTraceReader>(b));
  MergeTraceReader merged(std::move(inputs));
  Event e;
  ASSERT_TRUE(merged.next(e));
  EXPECT_EQ(std::get<SampleEvent>(e).addr, 0xau);
  ASSERT_TRUE(merged.next(e));
  EXPECT_EQ(std::get<SampleEvent>(e).addr, 0xbu);
  EXPECT_FALSE(merged.next(e));
}

TEST(MergeReader, OffsetReaderRebasesAddressCarryingEvents) {
  TraceBuffer buf;
  buf.add(AllocEvent{1.0, 0, 0x1000, 64});
  buf.add(SampleEvent{2.0, 0x1010, false, 1});
  buf.add(PhaseEvent{3.0, "p", true});
  buf.add(FreeEvent{4.0, 0x1000});
  OffsetTraceReader reader(std::make_unique<BufferTraceReader>(buf),
                           kRankAddressStride);
  Event e;
  ASSERT_TRUE(reader.next(e));
  EXPECT_EQ(std::get<AllocEvent>(e).addr, 0x1000 + kRankAddressStride);
  ASSERT_TRUE(reader.next(e));
  EXPECT_EQ(std::get<SampleEvent>(e).addr, 0x1010 + kRankAddressStride);
  ASSERT_TRUE(reader.next(e));
  EXPECT_EQ(std::get<PhaseEvent>(e).name, "p");  // untouched
  ASSERT_TRUE(reader.next(e));
  EXPECT_EQ(std::get<FreeEvent>(e).addr, 0x1000 + kRankAddressStride);
}

}  // namespace
}  // namespace hmem::trace
