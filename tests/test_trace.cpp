// Tests for trace events and the trace-file round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/event.hpp"
#include "trace/tracefile.hpp"

namespace hmem::trace {
namespace {

callstack::SymbolicCallStack stack_of(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  return s;
}

TEST(TraceBuffer, AccumulatesEvents) {
  TraceBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.add(AllocEvent{1.0, 0, 0x1000, 64});
  buf.add(FreeEvent{2.0, 0x1000});
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(EventTime, VisitsAllVariants) {
  EXPECT_DOUBLE_EQ(event_time_ns(Event{AllocEvent{1.5, 0, 0, 1}}), 1.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{FreeEvent{2.5, 0}}), 2.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{SampleEvent{3.5, 0, false, 1}}), 3.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{PhaseEvent{4.5, "p", true}}), 4.5);
  EXPECT_DOUBLE_EQ(event_time_ns(Event{CounterEvent{5.5, "c", 9}}), 5.5);
}

TEST(TraceFile, RoundTripAllEventKinds) {
  callstack::SiteDb sites;
  const auto site = sites.intern("A", stack_of("alloc_A"));
  TraceBuffer buf;
  buf.add(AllocEvent{10.0, site, 0x100001000, 4096});
  buf.add(PhaseEvent{11.0, "solve", true});
  buf.add(SampleEvent{12.5, 0x100001040, true, 37589});
  buf.add(CounterEvent{13.0, "instructions", 1e6});
  buf.add(PhaseEvent{14.0, "solve", false});
  buf.add(FreeEvent{15.0, 0x100001000});

  std::ostringstream os;
  EXPECT_EQ(write_trace(os, sites, buf), 6u);

  callstack::SiteDb sites2;
  TraceBuffer buf2;
  std::istringstream is(os.str());
  read_trace(is, sites2, buf2);
  ASSERT_EQ(buf2.size(), 6u);
  EXPECT_EQ(sites2.size(), 1u);

  const auto* alloc = std::get_if<AllocEvent>(&buf2.events()[0]);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->addr, 0x100001000u);
  EXPECT_EQ(alloc->size, 4096u);
  EXPECT_EQ(sites2.get(alloc->site).object_name, "A");

  const auto* sample = std::get_if<SampleEvent>(&buf2.events()[2]);
  ASSERT_NE(sample, nullptr);
  EXPECT_TRUE(sample->is_write);
  EXPECT_EQ(sample->weight, 37589u);

  const auto* counter = std::get_if<CounterEvent>(&buf2.events()[3]);
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->value, 1e6);
}

TEST(TraceFile, SiteIdsRemappedOnMerge) {
  // Reader must remap site ids into a SiteDb that already has entries.
  callstack::SiteDb sites_a;
  const auto site_a = sites_a.intern("A", stack_of("alloc_A"));
  TraceBuffer buf_a;
  buf_a.add(AllocEvent{1.0, site_a, 0x1000, 64});
  std::ostringstream os;
  write_trace(os, sites_a, buf_a);

  callstack::SiteDb merged;
  merged.intern("Zero", stack_of("alloc_zero"));  // occupies id 0
  TraceBuffer buf_b;
  std::istringstream is(os.str());
  read_trace(is, merged, buf_b);
  const auto* alloc = std::get_if<AllocEvent>(&buf_b.events()[0]);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(merged.get(alloc->site).object_name, "A");
  EXPECT_EQ(alloc->site, 1u);  // remapped past the existing entry
}

TEST(TraceFile, MalformedLinesThrow) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  for (const char* bad : {
           "X|1.0|what",                 // unknown kind
           "A|1.0|0|1000",               // too few fields
           "A|abc|0|1000|64",            // bad time
           "M|1.0|zzz|0|1",              // bad address... (hex ok, zzz not)
           "P|1.0|Q|phase",              // bad begin/end flag
           "A|1.0|7|1000|64",            // site never defined
       }) {
    std::istringstream is(bad);
    callstack::SiteDb s2;
    TraceBuffer b2;
    EXPECT_THROW(read_trace(is, s2, b2), std::runtime_error) << bad;
  }
}

TEST(TraceFile, IgnoresCommentsAndBlankLines) {
  callstack::SiteDb sites;
  TraceBuffer buf;
  std::istringstream is("# comment\n\nF|1.0|1000\n");
  read_trace(is, sites, buf);
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
}  // namespace hmem::trace
