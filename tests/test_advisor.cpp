// Tests for hmem_advisor: knapsack strategies, the exact-DP oracle, the
// multi-tier cascade, and the placement-report round trip.
#include <gtest/gtest.h>

#include <stdexcept>

#include "advisor/advisor.hpp"
#include "advisor/knapsack.hpp"
#include "advisor/memory_spec.hpp"
#include "advisor/placement_report.hpp"
#include "common/prng.hpp"
#include "common/units.hpp"
#include "engine/pipeline.hpp"
#include "memsim/machine.hpp"

namespace hmem::advisor {
namespace {

ObjectInfo obj(const std::string& name, std::uint64_t size,
               std::uint64_t misses, bool dynamic = true) {
  static callstack::SiteId next_site = 0;
  ObjectInfo o;
  o.site = next_site++;
  o.name = name;
  o.max_size_bytes = size;
  o.llc_misses = misses;
  o.is_dynamic = dynamic;
  callstack::CodeLocation loc{"app.x", "alloc_" + name, 1};
  o.stack.frames.push_back(loc);
  return o;
}

// ------------------------------------------------------------ greedies ----

TEST(GreedyMisses, PicksDescendingAndSkipsOversized) {
  const std::vector<ObjectInfo> objects = {
      obj("big", 3 * memsim::kPageBytes, 100),
      obj("mid", 2 * memsim::kPageBytes, 60),
      obj("small", 1 * memsim::kPageBytes, 50),
  };
  const auto sel = greedy_misses(objects, 3 * memsim::kPageBytes);
  // big (100) fills the budget; mid doesn't fit; small doesn't either
  // (3 pages used of 3).
  ASSERT_EQ(sel.chosen.size(), 1u);
  EXPECT_EQ(sel.chosen[0], 0u);
  EXPECT_EQ(sel.profit_misses, 100u);
}

TEST(GreedyMisses, LaterSmallerObjectFitsResidual) {
  const std::vector<ObjectInfo> objects = {
      obj("a", 2 * memsim::kPageBytes, 100),
      obj("b", 3 * memsim::kPageBytes, 90),
      obj("c", 1 * memsim::kPageBytes, 10),
  };
  const auto sel = greedy_misses(objects, 3 * memsim::kPageBytes);
  // a (2 pages) then b skipped (3 > 1 left), then c fits.
  ASSERT_EQ(sel.chosen.size(), 2u);
  EXPECT_EQ(sel.chosen[0], 0u);
  EXPECT_EQ(sel.chosen[1], 2u);
}

TEST(GreedyMisses, ThresholdFiltersRarelyReferenced) {
  const std::vector<ObjectInfo> objects = {
      obj("hot", memsim::kPageBytes, 960),
      obj("warm", memsim::kPageBytes, 30),
      obj("cold", memsim::kPageBytes, 10),
  };
  // Total = 1000. 5% threshold cuts warm (3%) and cold (1%).
  const auto sel5 = greedy_misses(objects, 100 * memsim::kPageBytes, 5.0);
  ASSERT_EQ(sel5.chosen.size(), 1u);
  EXPECT_EQ(sel5.chosen[0], 0u);
  const auto sel0 = greedy_misses(objects, 100 * memsim::kPageBytes, 0.0);
  EXPECT_EQ(sel0.chosen.size(), 3u);
  const auto sel2 = greedy_misses(objects, 100 * memsim::kPageBytes, 2.0);
  EXPECT_EQ(sel2.chosen.size(), 2u);
}

TEST(GreedyMisses, ZeroMissObjectsNeverPromoted) {
  const std::vector<ObjectInfo> objects = {obj("dead", 4096, 0)};
  EXPECT_TRUE(greedy_misses(objects, 1 << 20).chosen.empty());
  EXPECT_TRUE(greedy_density(objects, 1 << 20).chosen.empty());
}

TEST(GreedyDensity, PrefersMissesPerByte) {
  const std::vector<ObjectInfo> objects = {
      obj("bulky", 100 * memsim::kPageBytes, 1000),  // 10/page
      obj("dense", 1 * memsim::kPageBytes, 500),     // 500/page
      obj("mid", 10 * memsim::kPageBytes, 2000),     // 200/page
  };
  const auto sel = greedy_density(objects, 11 * memsim::kPageBytes);
  ASSERT_EQ(sel.chosen.size(), 2u);
  EXPECT_EQ(sel.chosen[0], 1u);  // dense first
  EXPECT_EQ(sel.chosen[1], 2u);  // then mid; bulky does not fit
}

TEST(Greedy, PageGranularityCharging) {
  // 1-byte object is charged a full page.
  const std::vector<ObjectInfo> objects = {obj("tiny", 1, 10),
                                           obj("tiny2", 1, 9)};
  const auto sel = greedy_misses(objects, memsim::kPageBytes);
  ASSERT_EQ(sel.chosen.size(), 1u);
  EXPECT_EQ(sel.footprint_bytes, memsim::kPageBytes);
}

// ------------------------------------------------------------ exact DP ----

std::uint64_t brute_force_best(const std::vector<ObjectInfo>& objects,
                               std::uint64_t capacity) {
  const std::size_t n = objects.size();
  std::uint64_t best = 0;
  for (std::size_t mask = 0; mask < (1ULL << n); ++mask) {
    std::uint64_t weight = 0, profit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        weight += objects[i].footprint_bytes();
        profit += objects[i].llc_misses;
      }
    }
    if (weight <= capacity) best = std::max(best, profit);
  }
  return best;
}

class ExactKnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExactKnapsackProperty, MatchesBruteForceAndBeatsGreedy) {
  Xoshiro256 rng(GetParam());
  std::vector<ObjectInfo> objects;
  for (int i = 0; i < 12; ++i) {
    // Two-step concat: `"o" + std::to_string(i)` trips GCC 12's -Wrestrict
    // false positive (libstdc++ PR105329) when inlined.
    std::string name = "o";
    name += std::to_string(i);
    objects.push_back(obj(name,
                          (1 + rng.below(8)) * memsim::kPageBytes,
                          1 + rng.below(1000)));
  }
  const std::uint64_t capacity = (5 + rng.below(20)) * memsim::kPageBytes;
  const auto exact = exact_knapsack(objects, capacity);
  EXPECT_EQ(exact.profit_misses, brute_force_best(objects, capacity));
  EXPECT_LE(exact.footprint_bytes, capacity);
  // The optimum dominates both greedy relaxations.
  EXPECT_GE(exact.profit_misses,
            greedy_misses(objects, capacity).profit_misses);
  EXPECT_GE(exact.profit_misses,
            greedy_density(objects, capacity).profit_misses);
  // Selection internally consistent.
  std::uint64_t fp = 0, profit = 0;
  for (auto i : exact.chosen) {
    fp += objects[i].footprint_bytes();
    profit += objects[i].llc_misses;
  }
  EXPECT_EQ(fp, exact.footprint_bytes);
  EXPECT_EQ(profit, exact.profit_misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactKnapsackProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --------------------------------------------------------- memory spec ----

TEST(MemorySpec, FromConfigSortsByPerformance) {
  const auto cfg = Config::parse(
      "[tier ddr]\ncapacity = 96G\nrelative_performance = 1\n"
      "[tier mcdram]\ncapacity = 16G\nrelative_performance = 5\n");
  const auto spec = MemorySpec::from_config(cfg);
  ASSERT_EQ(spec.tier_count(), 2u);
  EXPECT_EQ(spec.fastest().name, "mcdram");
  EXPECT_EQ(spec.fastest().capacity_bytes, 16ULL * kGiB);
  EXPECT_EQ(spec.slowest().name, "ddr");
}

TEST(MemorySpec, FromConfigRejectsNoTiers) {
  EXPECT_THROW(MemorySpec::from_config(Config::parse("")),
               std::runtime_error);
  EXPECT_THROW(
      MemorySpec::from_config(Config::parse("[runtime]\nfoo = 1\n")),
      std::runtime_error);
}

TEST(MemorySpec, FromConfigRejectsDuplicateTierNames) {
  // "[tier hbm]" and "[tier  hbm]" are distinct sections that trim to the
  // same tier name — a silent duplicate before the hardening.
  EXPECT_THROW(MemorySpec::from_config(Config::parse(
                   "[tier hbm]\ncapacity = 1G\n"
                   "[tier  hbm]\ncapacity = 2G\n")),
               std::runtime_error);
}

TEST(MemorySpec, FromConfigRejectsZeroCapacity) {
  EXPECT_THROW(
      MemorySpec::from_config(Config::parse("[tier ddr]\ncapacity = 0\n")),
      std::runtime_error);
  EXPECT_THROW(MemorySpec::from_config(
                   Config::parse("[tier ddr]\nrelative_performance = 2\n")),
               std::runtime_error);  // capacity missing entirely
}

TEST(MemorySpec, FromConfigRejectsNonPositivePerformance) {
  EXPECT_THROW(MemorySpec::from_config(Config::parse(
                   "[tier ddr]\ncapacity = 1G\n"
                   "relative_performance = 0\n")),
               std::runtime_error);
  EXPECT_THROW(MemorySpec::from_config(Config::parse(
                   "[tier ddr]\ncapacity = 1G\n"
                   "relative_performance = -1.5\n")),
               std::runtime_error);
}

TEST(MemorySpec, ConfigTextRoundTrip) {
  const auto spec = MemorySpec::two_tier(256ULL << 20, 96ULL * kGiB);
  const auto again =
      MemorySpec::from_config(Config::parse(spec.to_config_text()));
  EXPECT_EQ(again.fastest().capacity_bytes, 256ULL << 20);
  EXPECT_EQ(again.slowest().capacity_bytes, 96ULL * kGiB);
}

// -------------------------------------------------------------- advisor ----

TEST(Advisor, CascadesAcrossTiersFastFirst) {
  const std::vector<ObjectInfo> objects = {
      obj("hot", 2 * memsim::kPageBytes, 100),
      obj("warm", 2 * memsim::kPageBytes, 50),
      obj("cold", 2 * memsim::kPageBytes, 1),
  };
  MemorySpec spec({TierBudget{"hbm", 2 * memsim::kPageBytes, 5.0},
                   TierBudget{"ddr", 1ULL << 30, 1.0}});
  HmemAdvisor adv(spec, Options{});
  const auto placement = adv.advise(objects);
  ASSERT_EQ(placement.tiers.size(), 2u);
  ASSERT_EQ(placement.tiers[0].objects.size(), 1u);
  EXPECT_EQ(placement.tiers[0].objects[0].name, "hot");
  EXPECT_EQ(placement.tiers[1].objects.size(), 2u);  // fallback holds rest
}

TEST(Advisor, ThreeTierCascade) {
  const std::vector<ObjectInfo> objects = {
      obj("a", memsim::kPageBytes, 100), obj("b", memsim::kPageBytes, 90),
      obj("c", memsim::kPageBytes, 80), obj("d", memsim::kPageBytes, 70)};
  MemorySpec spec({TierBudget{"hbm", memsim::kPageBytes, 5.0},
                   TierBudget{"ddr", memsim::kPageBytes, 2.0},
                   TierBudget{"pmem", 1ULL << 30, 1.0}});
  HmemAdvisor adv(spec, Options{});
  const auto placement = adv.advise(objects);
  ASSERT_EQ(placement.tiers.size(), 3u);
  EXPECT_EQ(placement.tiers[0].objects[0].name, "a");
  EXPECT_EQ(placement.tiers[1].objects[0].name, "b");
  EXPECT_EQ(placement.tiers[2].objects.size(), 2u);
  EXPECT_EQ(placement.tier_of(objects[1].site).value_or(99), 1u);
}

TEST(Advisor, MiddleTierFillsAndOverflowCascadesToSlowest) {
  // Middle tier holds exactly two pages: once "b" and "c" fill it, "d" and
  // "e" must cascade past it into the unbounded slowest tier.
  const std::vector<ObjectInfo> objects = {
      obj("a", memsim::kPageBytes, 100), obj("b", memsim::kPageBytes, 90),
      obj("c", memsim::kPageBytes, 80), obj("d", memsim::kPageBytes, 70),
      obj("e", memsim::kPageBytes, 60)};
  MemorySpec spec({TierBudget{"hbm", memsim::kPageBytes, 6.0},
                   TierBudget{"ddr", 2 * memsim::kPageBytes, 3.0},
                   TierBudget{"pmem", 1ULL << 30, 1.0}});
  HmemAdvisor adv(spec, Options{});
  const auto placement = adv.advise(objects);
  ASSERT_EQ(placement.tiers.size(), 3u);
  ASSERT_EQ(placement.tiers[0].objects.size(), 1u);
  EXPECT_EQ(placement.tiers[0].objects[0].name, "a");
  ASSERT_EQ(placement.tiers[1].objects.size(), 2u);  // middle tier full
  EXPECT_EQ(placement.tiers[1].objects[0].name, "b");
  EXPECT_EQ(placement.tiers[1].objects[1].name, "c");
  EXPECT_EQ(placement.tiers[1].footprint_bytes, 2 * memsim::kPageBytes);
  ASSERT_EQ(placement.tiers[2].objects.size(), 2u);  // overflow cascaded
  EXPECT_EQ(placement.tiers[2].objects[0].name, "d");
  EXPECT_EQ(placement.tiers[2].objects[1].name, "e");
  // The size pre-filter must span the middle tier's selections too.
  EXPECT_EQ(placement.lb_size, memsim::kPageBytes);
  EXPECT_EQ(placement.ub_size, memsim::kPageBytes);
  // Report round-trip preserves all three tiers.
  const auto parsed = read_placement_report(write_placement_report(placement));
  ASSERT_EQ(parsed.tiers.size(), 3u);
  EXPECT_EQ(parsed.tiers[1].objects.size(), 2u);
  EXPECT_EQ(parsed.tiers[1].budget_bytes, 2 * memsim::kPageBytes);
}

TEST(Advisor, StaticObjectsReportedNotPlaced) {
  const std::vector<ObjectInfo> objects = {
      obj("dyn", memsim::kPageBytes, 10),
      obj("stat", memsim::kPageBytes, 1000, /*dynamic=*/false),
  };
  HmemAdvisor adv(MemorySpec::two_tier(1ULL << 20, 1ULL << 30), Options{});
  const auto placement = adv.advise(objects);
  ASSERT_EQ(placement.tiers[0].objects.size(), 1u);
  EXPECT_EQ(placement.tiers[0].objects[0].name, "dyn");
  ASSERT_EQ(placement.static_recommendations.size(), 1u);
  EXPECT_EQ(placement.static_recommendations[0].name, "stat");
}

TEST(Advisor, LbUbSizeBounds) {
  const std::vector<ObjectInfo> objects = {
      obj("small", 5000, 100), obj("large", 200000, 90),
      obj("unselected", 1ULL << 30, 80)};
  HmemAdvisor adv(MemorySpec::two_tier(1ULL << 20, 1ULL << 40), Options{});
  const auto placement = adv.advise(objects);
  EXPECT_EQ(placement.lb_size, 5000u);
  EXPECT_EQ(placement.ub_size, 200000u);
}

TEST(Advisor, EmptySelectionZeroBounds) {
  HmemAdvisor adv(MemorySpec::two_tier(1ULL << 20, 1ULL << 30), Options{});
  const auto placement = adv.advise({});
  EXPECT_EQ(placement.lb_size, 0u);
  EXPECT_EQ(placement.ub_size, 0u);
  EXPECT_TRUE(placement.tiers[0].objects.empty());
}

TEST(Advisor, VirtualBudgetSelectsMoreButEnforcesReal) {
  // Two 3-page objects, real budget 4 pages: only one selectable normally.
  const std::vector<ObjectInfo> objects = {
      obj("a", 3 * memsim::kPageBytes, 100),
      obj("b", 3 * memsim::kPageBytes, 90),
  };
  Options opts;
  opts.virtual_budget_bytes = 8 * memsim::kPageBytes;
  HmemAdvisor adv(
      MemorySpec::two_tier(4 * memsim::kPageBytes, 1ULL << 30), opts);
  const auto placement = adv.advise(objects);
  EXPECT_EQ(placement.tiers[0].objects.size(), 2u);  // both selected
  EXPECT_EQ(placement.enforced_fast_budget_bytes,
            4 * memsim::kPageBytes);  // runtime still limited
}

TEST(Advisor, ClampedMachineBudgetIsEnforcedOnSinglePlacementPath) {
  // hmem_advise --machine clamps an over-ask fast budget once, before
  // either output path (single placement or --per-phase) builds its spec,
  // so the clamp warning applies to both — this pins the single-placement
  // guarantee: the placement enforces the fastest tier's capacity, never
  // the raw ask.
  const auto node = memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  const std::uint64_t capacity =
      node.tiers[node.fastest_tier()].capacity_bytes;

  bool clamped = false;
  const std::uint64_t usable =
      engine::clamp_fast_budget(node, capacity * 4, &clamped);
  EXPECT_TRUE(clamped);
  EXPECT_EQ(usable, capacity);

  const MemorySpec spec = engine::machine_memory_spec(node, usable, 1);
  EXPECT_EQ(spec.fastest().capacity_bytes, capacity);
  const HmemAdvisor adv(spec, Options{});
  const Placement placement =
      adv.advise({obj("hot", 8 * memsim::kPageBytes, 100)});
  EXPECT_EQ(placement.enforced_fast_budget_bytes, capacity);

  // A budget the machine can host passes through untouched.
  clamped = true;
  EXPECT_EQ(engine::clamp_fast_budget(node, capacity / 2, &clamped),
            capacity / 2);
  EXPECT_FALSE(clamped);
}

TEST(Advisor, StrategyNamesRoundTrip) {
  for (auto s : {Strategy::kMisses, Strategy::kDensity, Strategy::kExact}) {
    EXPECT_EQ(parse_strategy(strategy_name(s)).value(), s);
  }
  EXPECT_FALSE(parse_strategy("bogus").has_value());
}

// ----------------------------------------------------- placement report ----

TEST(PlacementReport, RoundTrip) {
  const std::vector<ObjectInfo> objects = {
      obj("hot", 123456, 999), obj("warm", 4096, 100),
      obj("stat", 777, 5000, false)};
  Options opts;
  opts.strategy = Strategy::kDensity;
  HmemAdvisor adv(MemorySpec::two_tier(1ULL << 20, 1ULL << 30), opts);
  const auto placement = adv.advise(objects);
  const auto text = write_placement_report(placement);
  const auto parsed = read_placement_report(text);

  EXPECT_EQ(parsed.strategy, Strategy::kDensity);
  EXPECT_EQ(parsed.lb_size, placement.lb_size);
  EXPECT_EQ(parsed.ub_size, placement.ub_size);
  EXPECT_EQ(parsed.enforced_fast_budget_bytes,
            placement.enforced_fast_budget_bytes);
  ASSERT_EQ(parsed.tiers.size(), placement.tiers.size());
  ASSERT_EQ(parsed.tiers[0].objects.size(),
            placement.tiers[0].objects.size());
  EXPECT_EQ(parsed.tiers[0].objects[0].name,
            placement.tiers[0].objects[0].name);
  EXPECT_EQ(parsed.tiers[0].objects[0].stack,
            placement.tiers[0].objects[0].stack);
  ASSERT_EQ(parsed.static_recommendations.size(), 1u);
  EXPECT_EQ(parsed.static_recommendations[0].name, "stat");
  EXPECT_FALSE(parsed.static_recommendations[0].is_dynamic);
}

TEST(PlacementReport, MalformedInputsThrow) {
  EXPECT_THROW(read_placement_report(""), std::runtime_error);
  EXPECT_THROW(read_placement_report("name | 1 | 2 | app.x!f:1\n"),
               std::runtime_error);  // object before any tier header
  EXPECT_THROW(read_placement_report("[tier x]\n"), std::runtime_error)
      << "tier header without budget";
  EXPECT_THROW(
      read_placement_report("[tier x budget=100]\nname | z | 2 | app.x!f:1\n"),
      std::runtime_error);
}

TEST(PlacementReport, IsHumanReadable) {
  // The format must carry the object name, size, misses and call-stack in
  // clear text (the paper's rationale for a human-readable report).
  const std::vector<ObjectInfo> objects = {obj("my_matrix", 4096, 42)};
  HmemAdvisor adv(MemorySpec::two_tier(1ULL << 20, 1ULL << 30), Options{});
  const auto text = write_placement_report(adv.advise(objects));
  EXPECT_NE(text.find("my_matrix"), std::string::npos);
  EXPECT_NE(text.find("4096"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("alloc_my_matrix"), std::string::npos);
}

}  // namespace
}  // namespace hmem::advisor
