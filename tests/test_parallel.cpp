// Tests for the work-queue thread pool and — the property the parallel
// execution engine stands on — bit-identical results between serial and
// parallel runs of the pipeline and the experiment sweep, for all nine
// bundled workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "apps/workloads.hpp"
#include "common/parallel.hpp"
#include "engine/experiment.hpp"
#include "engine/pipeline.hpp"

namespace hmem {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitBlocksUntilTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 8);
  // The pool is reusable after a wait().
  pool.submit([&done] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 9);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::mutex mutex;
  std::multiset<std::size_t> seen;
  parallel_for(4, 57, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 57u);
  for (std::size_t i = 0; i < 57; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(ParallelFor, SerialFastPathRunsInOrderOnCallerThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesTheFirstException) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(3, 12,
                   [&](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                     ++completed;
                   }),
      std::runtime_error);
  // Every non-throwing task still ran to completion.
  EXPECT_EQ(completed.load(), 11);
}

TEST(HardwareJobs, IsAtLeastOne) { EXPECT_GE(hardware_jobs(), 1); }

// ---------------------------------------------- engine determinism suite --

/// Shrinks a workload so the full nine-app sweep stays fast while keeping
/// its object/phase structure (what the live-set epochs and sampling tables
/// actually exercise).
apps::AppSpec shrunk(apps::AppSpec app) {
  app.iterations = std::min<std::uint64_t>(app.iterations, 4);
  app.accesses_per_iteration =
      std::min<std::uint64_t>(app.accesses_per_iteration, 4000);
  return app;
}

std::vector<apps::AppSpec> nine_workloads() {
  std::vector<apps::AppSpec> apps = apps::all_apps();
  apps.push_back(apps::make_stream_triad(16));
  return apps;
}

void expect_identical(const engine::RunResult& a, const engine::RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.fom, b.fom) << label;
  EXPECT_EQ(a.time_s, b.time_s) << label;
  ASSERT_EQ(a.tier_traffic.size(), b.tier_traffic.size()) << label;
  for (std::size_t t = 0; t < a.tier_traffic.size(); ++t) {
    EXPECT_EQ(a.tier_traffic[t].bytes, b.tier_traffic[t].bytes) << label;
  }
  EXPECT_EQ(a.llc_misses, b.llc_misses) << label;
  EXPECT_EQ(a.samples, b.samples) << label;
  EXPECT_EQ(a.fast_hwm_bytes, b.fast_hwm_bytes) << label;
  EXPECT_EQ(a.alloc_calls, b.alloc_calls) << label;
}

TEST(ParallelDeterminism, PipelineBitIdenticalForAllNineWorkloads) {
  for (const auto& app : nine_workloads()) {
    engine::PipelineOptions serial;
    serial.profile_ranks = 3;
    serial.sampler.period = 4000;
    serial.jobs = 1;
    engine::PipelineOptions parallel = serial;
    parallel.jobs = 4;

    const auto spec = shrunk(app);
    const auto a = engine::run_pipeline(spec, serial);
    const auto b = engine::run_pipeline(spec, parallel);

    // Stage 1: every rank's run and serialized shard, byte for byte.
    ASSERT_EQ(a.rank_profile_runs.size(), b.rank_profile_runs.size())
        << app.name;
    ASSERT_EQ(a.shard_bytes, b.shard_bytes) << app.name;
    ASSERT_EQ(a.shards.size(), b.shards.size()) << app.name;
    for (std::size_t r = 0; r < a.shards.size(); ++r) {
      EXPECT_EQ(a.shards[r], b.shards[r])
          << app.name << " shard " << r << " content differs";
    }
    for (std::size_t r = 0; r < a.rank_profile_runs.size(); ++r) {
      expect_identical(a.rank_profile_runs[r], b.rank_profile_runs[r],
                       app.name + " rank " + std::to_string(r));
    }
    // Stage 2: identical aggregation.
    EXPECT_EQ(a.merged_events, b.merged_events) << app.name;
    ASSERT_EQ(a.report.objects.size(), b.report.objects.size()) << app.name;
    for (std::size_t i = 0; i < a.report.objects.size(); ++i) {
      EXPECT_EQ(a.report.objects[i].name, b.report.objects[i].name)
          << app.name;
      EXPECT_EQ(a.report.objects[i].llc_misses,
                b.report.objects[i].llc_misses)
          << app.name;
      EXPECT_EQ(a.report.objects[i].max_size_bytes,
                b.report.objects[i].max_size_bytes)
          << app.name;
    }
    // Stages 3-4: identical placement text and production run.
    EXPECT_EQ(a.placement_report_text, b.placement_report_text) << app.name;
    expect_identical(a.production_run, b.production_run,
                     app.name + " production");
  }
}

TEST(ParallelDeterminism, ExperimentSweepBitIdenticalToSerial) {
  // One full Figure-4 row (the 4-baseline + strategy x budget task space)
  // on a representative workload, serial vs parallel.
  const auto app = shrunk(apps::make_snap());
  engine::PipelineOptions serial;
  serial.sampler.period = 4000;
  serial.jobs = 1;
  engine::PipelineOptions parallel = serial;
  parallel.jobs = 4;

  const std::vector<std::uint64_t> budgets = {32ULL << 20, 128ULL << 20};
  const auto strategies = engine::paper_strategies();
  auto a = engine::Fig4Runner(app, serial).run(budgets, strategies);
  auto b = engine::Fig4Runner(app, parallel).run(budgets, strategies);

  const auto expect_baseline = [](const engine::BaselineResult& x,
                                  const engine::BaselineResult& y) {
    EXPECT_EQ(x.condition, y.condition);
    EXPECT_EQ(x.fom, y.fom);
    EXPECT_EQ(x.fast_hwm_bytes, y.fast_hwm_bytes);
    EXPECT_EQ(x.dfom_per_mb, y.dfom_per_mb);
  };
  expect_baseline(a.ddr, b.ddr);
  expect_baseline(a.numactl, b.numactl);
  expect_baseline(a.autohbw, b.autohbw);
  expect_baseline(a.cache, b.cache);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].strategy, b.cells[i].strategy);
    EXPECT_EQ(a.cells[i].budget_bytes, b.cells[i].budget_bytes);
    EXPECT_EQ(a.cells[i].fom, b.cells[i].fom);
    EXPECT_EQ(a.cells[i].hwm_bytes, b.cells[i].hwm_bytes);
    EXPECT_EQ(a.cells[i].dfom_per_mb, b.cells[i].dfom_per_mb);
    EXPECT_EQ(a.cells[i].any_overflow, b.cells[i].any_overflow);
  }
}

}  // namespace
}  // namespace hmem
