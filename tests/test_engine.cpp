// Tests for the execution engine, the four-stage pipeline and the
// experiment driver.
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "common/units.hpp"
#include "engine/experiment.hpp"
#include "engine/pipeline.hpp"

namespace hmem::engine {
namespace {

/// Small, fast app with one clearly-hot object for engine-level checks.
apps::AppSpec tiny_app() {
  apps::AppSpec app;
  app.name = "tiny";
  app.fom_unit = "it/s";
  app.ranks = 4;
  app.threads_per_rank = 8;
  app.iterations = 10;
  app.accesses_per_iteration = 4000;
  app.access_scale = 100.0;
  app.work_per_iteration = 1.0;
  app.stack_bytes = 1ULL << 20;
  app.objects = {
      apps::ObjectSpec{.name = "hot", .size_bytes = 8ULL << 20,
                       .pattern = apps::AccessPattern::kRandom},
      apps::ObjectSpec{.name = "cold", .size_bytes = 64ULL << 20,
                       .pattern = apps::AccessPattern::kStream},
      apps::ObjectSpec{.name = "tables", .size_bytes = 1ULL << 20,
                       .pattern = apps::AccessPattern::kRandom,
                       .is_static = true},
  };
  apps::PhaseSpec phase;
  phase.name = "main";
  phase.object_weights = {0.7, 0.2, 0.05};
  phase.stack_weight = 0.05;
  phase.insts_per_access = 20.0;
  app.phases = {phase};
  return app;
}

TEST(RunApp, DeterministicForSameSeed) {
  const auto app = tiny_app();
  RunOptions opts;
  const auto a = run_app(app, opts);
  const auto b = run_app(app, opts);
  EXPECT_DOUBLE_EQ(a.fom, b.fom);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.slow_bytes(), b.slow_bytes());
}

TEST(RunApp, DdrBaselineTouchesNoMcdram) {
  RunOptions opts;
  opts.condition = Condition::kDdr;
  const auto r = run_app(tiny_app(), opts);
  ASSERT_EQ(r.tier_traffic.size(), 2u);  // knl: MCDRAM fast, DDR slow
  EXPECT_EQ(r.tier_traffic.front().name, "MCDRAM");
  EXPECT_EQ(r.tier_traffic.back().name, "DDR");
  EXPECT_EQ(r.fast_bytes(), 0u);
  EXPECT_EQ(r.fast_hwm_bytes, 0u);
  EXPECT_GT(r.slow_bytes(), 0u);
  EXPECT_GT(r.fom, 0.0);
}

TEST(RunApp, NumactlPromotesAndSpeedsUp) {
  RunOptions ddr_opts;
  const auto ddr = run_app(tiny_app(), ddr_opts);
  RunOptions numactl_opts;
  numactl_opts.condition = Condition::kNumactl;
  const auto numactl = run_app(tiny_app(), numactl_opts);
  // tiny app fits the per-rank MCDRAM share entirely -> clear speedup.
  EXPECT_GT(numactl.fom, ddr.fom * 1.1);
  EXPECT_GT(numactl.fast_hwm_bytes, 0u);
  EXPECT_GT(numactl.fast_bytes(), 0u);
}

TEST(RunApp, CacheModeBetweenDdrAndFlat) {
  RunOptions opts;
  const auto ddr = run_app(tiny_app(), opts);
  opts.condition = Condition::kCacheMode;
  const auto cache = run_app(tiny_app(), opts);
  opts.condition = Condition::kNumactl;
  const auto flat = run_app(tiny_app(), opts);
  EXPECT_GT(cache.fom, ddr.fom);
  EXPECT_LT(cache.fom, flat.fom * 1.02);
}

TEST(RunApp, ProfiledRunProducesArtifacts) {
  RunOptions opts;
  opts.profile = true;
  opts.sampler.period = 1000;  // dense sampling for a short run
  const auto r = run_app(tiny_app(), opts);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_NE(r.sites, nullptr);
  EXPECT_GT(r.samples, 0u);
  EXPECT_GT(r.monitoring_overhead, 0.0);
  EXPECT_LT(r.monitoring_overhead, 0.6);  // dense sampling, tiny run
  EXPECT_EQ(r.sites->size(), 3u);  // hot, cold, tables
  EXPECT_GT(r.trace->size(), 0u);
}

TEST(RunApp, FrameworkPromotesSelectedObjectOnly) {
  // Hand-build a placement selecting only "hot".
  const auto app = tiny_app();
  advisor::Placement placement;
  advisor::TierPlacement fast;
  fast.tier_name = "mcdram";
  fast.budget_bytes = 16ULL << 20;
  advisor::ObjectInfo hot;
  hot.name = "hot";
  hot.max_size_bytes = 8ULL << 20;
  hot.llc_misses = 1000;
  hot.stack = app.alloc_stack(0);
  fast.objects.push_back(hot);
  placement.tiers.push_back(fast);
  placement.tiers.push_back(advisor::TierPlacement{"ddr", 1ULL << 40, {},
                                                   0, 0});
  placement.lb_size = 8ULL << 20;
  placement.ub_size = 8ULL << 20;
  placement.enforced_fast_budget_bytes = 16ULL << 20;

  RunOptions opts;
  opts.condition = Condition::kFramework;
  opts.placement = &placement;
  const auto r = run_app(app, opts);
  ASSERT_TRUE(r.autohbw.has_value());
  EXPECT_EQ(r.autohbw->promoted, 1u);
  EXPECT_EQ(r.fast_hwm_bytes, 8ULL << 20);
  EXPECT_GT(r.fast_bytes(), 0u);

  RunOptions ddr_opts;
  const auto ddr = run_app(app, ddr_opts);
  EXPECT_GT(r.fom, ddr.fom);  // promoting the hot object pays off
}

TEST(Pipeline, EndToEndImprovesOnDdr) {
  PipelineOptions opts;
  opts.fast_budget_per_rank = 16ULL << 20;
  opts.sampler.period = 2000;
  const auto result = run_pipeline(tiny_app(), opts);
  // Stage 2 found the objects and attributed misses.
  ASSERT_GE(result.report.objects.size(), 2u);
  EXPECT_EQ(result.report.objects[0].name, "hot");  // most misses first
  // Stage 3 selected the hot object.
  ASSERT_FALSE(result.placement.fast().objects.empty());
  EXPECT_EQ(result.placement.fast().objects[0].name, "hot");
  // Report text is parseable and the production run beats the profile run
  // (which itself carries monitoring overhead on top of DDR placement).
  EXPECT_FALSE(result.placement_report_text.empty());
  EXPECT_GT(result.production_run.fom, result.profile_run.fom);
}

TEST(Pipeline, MultiRankShardsMergeIntoOneReport) {
  PipelineOptions single;
  single.fast_budget_per_rank = 16ULL << 20;
  single.sampler.period = 2000;
  PipelineOptions sharded = single;
  sharded.profile_ranks = 3;
  const auto one = run_pipeline(tiny_app(), single);
  const auto multi = run_pipeline(tiny_app(), sharded);

  // One profiled execution per rank, each serialized as a non-empty shard,
  // all events flowing through the merged aggregation.
  ASSERT_EQ(multi.rank_profile_runs.size(), 3u);
  ASSERT_EQ(multi.shard_bytes.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GT(multi.shard_bytes[r], 0u);
    EXPECT_GT(multi.rank_profile_runs[r].samples, 0u);
    // Streamed runs never buffer the trace.
    EXPECT_EQ(multi.rank_profile_runs[r].trace, nullptr);
  }
  EXPECT_GT(multi.merged_events, 0u);

  // The merged report covers the same objects as the single-rank one, with
  // roughly 3 ranks' worth of samples, and stage 3/4 still work: the hot
  // object is selected and the production run beats the profiled one.
  ASSERT_EQ(multi.report.objects.size(), one.report.objects.size());
  EXPECT_EQ(multi.report.objects[0].name, "hot");
  EXPECT_GT(multi.report.total_samples, one.report.total_samples * 2);
  ASSERT_FALSE(multi.placement.fast().objects.empty());
  EXPECT_EQ(multi.placement.fast().objects[0].name, "hot");
  EXPECT_GT(multi.production_run.fom, multi.profile_run.fom);
}

TEST(Pipeline, MultiRankTextShardsMatchBinaryShards) {
  // The shard format must not change the aggregation at all.
  PipelineOptions binary;
  binary.fast_budget_per_rank = 16ULL << 20;
  binary.sampler.period = 2000;
  binary.profile_ranks = 2;
  PipelineOptions text = binary;
  text.shard_format = trace::TraceFormat::kText;
  const auto from_binary = run_pipeline(tiny_app(), binary);
  const auto from_text = run_pipeline(tiny_app(), text);
  EXPECT_EQ(from_binary.merged_events, from_text.merged_events);
  ASSERT_EQ(from_binary.report.objects.size(),
            from_text.report.objects.size());
  for (std::size_t i = 0; i < from_binary.report.objects.size(); ++i) {
    EXPECT_EQ(from_binary.report.objects[i].name,
              from_text.report.objects[i].name);
    EXPECT_EQ(from_binary.report.objects[i].llc_misses,
              from_text.report.objects[i].llc_misses);
    EXPECT_EQ(from_binary.report.objects[i].max_size_bytes,
              from_text.report.objects[i].max_size_bytes);
  }
  // Binary shards are materially smaller than text ones.
  EXPECT_LT(from_binary.shard_bytes[0], from_text.shard_bytes[0]);
}

TEST(Pipeline, ProductionRunUsesDifferentAslrImage) {
  PipelineOptions opts;
  opts.fast_budget_per_rank = 16ULL << 20;
  opts.sampler.period = 2000;
  opts.profile_seed = 1;
  opts.production_seed = 999;  // different ASLR slides
  const auto result = run_pipeline(tiny_app(), opts);
  // Promotion still works because matching is symbolic, not raw-address.
  ASSERT_TRUE(result.production_run.autohbw.has_value());
  EXPECT_GT(result.production_run.autohbw->promoted, 0u);
}

TEST(Experiment, DfomMetricMatchesDefinition) {
  EXPECT_DOUBLE_EQ(dfom_per_mb(150.0, 100.0, 100ULL << 20), 0.5);
  EXPECT_DOUBLE_EQ(dfom_per_mb(100.0, 100.0, 256ULL << 20), 0.0);
  EXPECT_LT(dfom_per_mb(90.0, 100.0, 256ULL << 20), 0.0);
}

TEST(Experiment, PaperStrategiesAndBudgets) {
  const auto strategies = paper_strategies();
  ASSERT_EQ(strategies.size(), 4u);
  EXPECT_EQ(strategies[0].label, "Density");
  EXPECT_EQ(strategies[3].label, "Misses(5%)");
  EXPECT_DOUBLE_EQ(strategies[3].options.threshold_pct, 5.0);
  const auto budgets = paper_budgets_mpi();
  ASSERT_EQ(budgets.size(), 4u);
  EXPECT_EQ(budgets.front(), 32ULL << 20);
  EXPECT_EQ(budgets.back(), 256ULL << 20);
  EXPECT_EQ(paper_budgets_openmp().back(), 16ULL << 30);
}

TEST(Experiment, Fig4RunnerProducesFullGrid) {
  PipelineOptions base;
  base.sampler.period = 2000;
  Fig4Runner runner(tiny_app(), base);
  const std::vector<std::uint64_t> budgets = {4ULL << 20, 16ULL << 20};
  const auto strategies = paper_strategies();
  const auto row = runner.run(budgets, strategies);
  EXPECT_EQ(row.cells.size(), budgets.size() * strategies.size());
  EXPECT_GT(row.ddr.fom, 0.0);
  EXPECT_GT(row.numactl.fom, row.ddr.fom);
  // Larger budget never hurts for this single-hot-object app.
  for (const auto& s : strategies) {
    EXPECT_GE(row.cell(s.label, 16ULL << 20).fom,
              row.cell(s.label, 4ULL << 20).fom * 0.99);
  }
  // Formatting includes every strategy label and the baselines.
  const auto text = format_fig4_row(row, budgets, strategies);
  for (const auto& s : strategies) {
    EXPECT_NE(text.find(s.label), std::string::npos);
  }
  EXPECT_NE(text.find("DDR="), std::string::npos);
  const auto csv = fig4_row_to_csv(row);
  EXPECT_NE(csv.find("baseline"), std::string::npos);
  EXPECT_NE(csv.find("framework"), std::string::npos);
}

TEST(StreamTriad, BandwidthOrderingMatchesFigure1) {
  // At high core counts: flat MCDRAM > cache mode > DDR.
  const auto app = apps::make_stream_triad(68);
  RunOptions opts;
  const auto ddr = run_app(app, opts);
  opts.condition = Condition::kCacheMode;
  const auto cache = run_app(app, opts);
  opts.condition = Condition::kNumactl;
  const auto flat = run_app(app, opts);
  EXPECT_GT(flat.achieved_bw_gbs, 400.0);
  EXPECT_LT(ddr.achieved_bw_gbs, 100.0);
  EXPECT_GT(cache.achieved_bw_gbs, ddr.achieved_bw_gbs * 1.5);
  EXPECT_LT(cache.achieved_bw_gbs, flat.achieved_bw_gbs);
}

TEST(StreamTriad, DdrSaturatesWithCores) {
  const auto bw = [](int cores) {
    RunOptions opts;
    return run_app(apps::make_stream_triad(cores), opts).achieved_bw_gbs;
  };
  const double one = bw(1);
  const double sixteen = bw(16);
  const double sixtyeight = bw(68);
  EXPECT_GT(sixteen, one * 8);          // scales at low counts
  EXPECT_NEAR(sixtyeight, sixteen, 5);  // saturated past ~16 cores
}

// ------------------------------------------------------------- N tiers ----

/// Three-tier machine scaled so tiny workloads hit its capacity edges:
/// 16 MiB HBM (fastest), 10 MiB DDR (middle), 256 MiB PMEM (fallback).
memsim::MachineConfig three_tier_node() {
  memsim::MachineConfig node =
      memsim::MachineConfig::test_node3(memsim::MemMode::kFlat);
  node.tiers[0].capacity_bytes = 256ULL << 20;  // PMEM
  node.tiers[1].capacity_bytes = 10ULL << 20;   // DDR
  node.tiers[2].capacity_bytes = 16ULL << 20;   // HBM
  return node;
}

/// Single-rank app whose objects straddle the three-tier node's budgets:
/// "a" (2 MiB, hottest) fits the HBM budget, "b" (6 MiB, warm) only the
/// middle tier, "c" (30 MiB, cold) nothing but the fallback.
apps::AppSpec three_tier_app() {
  apps::AppSpec app;
  app.name = "tritier";
  app.fom_unit = "it/s";
  app.ranks = 1;
  app.threads_per_rank = 4;
  app.iterations = 10;
  app.accesses_per_iteration = 4000;
  app.access_scale = 100.0;
  app.work_per_iteration = 1.0;
  app.stack_bytes = 1ULL << 20;
  app.objects = {
      apps::ObjectSpec{.name = "a", .size_bytes = 2ULL << 20,
                       .pattern = apps::AccessPattern::kRandom},
      apps::ObjectSpec{.name = "b", .size_bytes = 6ULL << 20,
                       .pattern = apps::AccessPattern::kRandom},
      apps::ObjectSpec{.name = "c", .size_bytes = 30ULL << 20,
                       .pattern = apps::AccessPattern::kStream},
  };
  apps::PhaseSpec phase;
  phase.name = "main";
  phase.object_weights = {0.6, 0.3, 0.08};
  phase.stack_weight = 0.02;
  phase.insts_per_access = 20.0;
  app.phases = {phase};
  return app;
}

TEST(ThreeTier, PipelineCascadesAcrossAllTiers) {
  // End-to-end profile -> advise -> run on a three-tier preset-style node:
  // the knapsack cascade must spread the objects across all three tiers
  // and the runtime must promote into *both* non-fallback tiers.
  PipelineOptions opts;
  opts.node = three_tier_node();
  opts.fast_budget_per_rank = 4ULL << 20;
  opts.sampler.period = 2000;
  const auto result = run_pipeline(three_tier_app(), opts);

  ASSERT_EQ(result.placement.tiers.size(), 3u);
  ASSERT_EQ(result.placement.tiers[0].objects.size(), 1u);
  EXPECT_EQ(result.placement.tiers[0].objects[0].name, "a");
  ASSERT_EQ(result.placement.tiers[1].objects.size(), 1u);  // overflow
  EXPECT_EQ(result.placement.tiers[1].objects[0].name, "b");
  ASSERT_EQ(result.placement.tiers[2].objects.size(), 1u);  // fallback
  EXPECT_EQ(result.placement.tiers[2].objects[0].name, "c");

  // The production run promoted into both the HBM and the DDR tier.
  ASSERT_TRUE(result.production_run.autohbw.has_value());
  const auto& stats = *result.production_run.autohbw;
  ASSERT_EQ(stats.tier_promoted.size(), 2u);
  EXPECT_GE(stats.tier_promoted[0], 1u);
  EXPECT_GE(stats.tier_promoted[1], 1u);
  EXPECT_EQ(stats.promoted, stats.tier_promoted[0] + stats.tier_promoted[1]);

  // Traffic lands on all three tiers (fast -> slow order in the result).
  ASSERT_EQ(result.production_run.tier_traffic.size(), 3u);
  EXPECT_EQ(result.production_run.tier_traffic[0].name, "HBM");
  EXPECT_EQ(result.production_run.tier_traffic[1].name, "DDR");
  EXPECT_EQ(result.production_run.tier_traffic[2].name, "PMEM");
  for (const auto& traffic : result.production_run.tier_traffic) {
    EXPECT_GT(traffic.bytes, 0u) << traffic.name;
  }

  // Spreading the hot data off the 300 ns PMEM pays off vs everything-slow.
  RunOptions ddr_opts;
  ddr_opts.node = opts.node;
  const auto slow_only = run_app(three_tier_app(), ddr_opts);
  EXPECT_GT(result.production_run.fom, slow_only.fom * 1.2);
}

TEST(ThreeTier, NumactlCascadesFcfsAcrossTiers) {
  // FCFS preference order on three tiers: the 16 MiB HBM takes what fits
  // first, the rest spills to DDR, then PMEM.
  RunOptions opts;
  opts.node = three_tier_node();
  opts.condition = Condition::kNumactl;
  const auto r = run_app(three_tier_app(), opts);
  EXPECT_GT(r.fast_hwm_bytes, 0u);
  ASSERT_EQ(r.tier_traffic.size(), 3u);
  EXPECT_GT(r.tier_traffic[0].bytes, 0u);  // HBM saw traffic

  RunOptions slow_opts;
  slow_opts.node = opts.node;
  const auto slow_only = run_app(three_tier_app(), slow_opts);
  EXPECT_GT(r.fom, slow_only.fom);
}

TEST(ThreeTier, HandBuiltConfigWithoutBasesRoutesCorrectly) {
  // A caller-supplied node whose tiers were never laid out (all bases
  // zero) must still route traffic per tier: run_app assigns the bases
  // before building allocators, so the Machine and the allocators agree.
  memsim::MachineConfig node = three_tier_node();
  for (auto& tier : node.tiers) tier.base = 0;
  RunOptions opts;
  opts.node = node;
  opts.condition = Condition::kNumactl;
  const auto r = run_app(three_tier_app(), opts);
  EXPECT_GT(r.fast_bytes(), 0u);  // HBM saw traffic, not just the fallback
  EXPECT_GT(r.fast_hwm_bytes, 0u);
}

TEST(ThreeTier, CacheModeFrontsFastestOverSlowest) {
  RunOptions opts;
  opts.node = three_tier_node();
  opts.condition = Condition::kCacheMode;
  const auto cache = run_app(three_tier_app(), opts);
  RunOptions slow_opts;
  slow_opts.node = opts.node;
  const auto slow_only = run_app(three_tier_app(), slow_opts);
  // HBM fronting PMEM beats everything-in-PMEM.
  EXPECT_GT(cache.fom, slow_only.fom);
  EXPECT_GT(cache.fast_bytes(), 0u);  // fill + hit traffic on the front
}

TEST(ConditionNames, Stable) {
  EXPECT_STREQ(condition_name(Condition::kDdr), "ddr");
  EXPECT_STREQ(condition_name(Condition::kNumactl), "numactl");
  EXPECT_STREQ(condition_name(Condition::kAutoHbw), "autohbw");
  EXPECT_STREQ(condition_name(Condition::kCacheMode), "cache");
  EXPECT_STREQ(condition_name(Condition::kFramework), "framework");
}

}  // namespace
}  // namespace hmem::engine
