// Parameterized cross-application sweep: engine-level invariants that must
// hold for every one of the paper's eight workloads under every execution
// condition. These are the properties the evaluation takes for granted —
// determinism, conservation of traffic, HWM consistency, baseline sanity.
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "engine/execution.hpp"

namespace hmem::engine {
namespace {

class AppSweep : public ::testing::TestWithParam<std::string> {
 protected:
  apps::AppSpec app() const { return apps::app_by_name(GetParam()); }

  RunResult run(Condition condition, std::uint64_t seed = 42) const {
    RunOptions opts;
    opts.condition = condition;
    opts.seed = seed;
    return run_app(app(), opts);
  }
};

TEST_P(AppSweep, DeterministicAcrossRepeats) {
  const auto a = run(Condition::kNumactl);
  const auto b = run(Condition::kNumactl);
  EXPECT_DOUBLE_EQ(a.fom, b.fom);
  ASSERT_EQ(a.tier_traffic.size(), b.tier_traffic.size());
  for (std::size_t t = 0; t < a.tier_traffic.size(); ++t) {
    EXPECT_EQ(a.tier_traffic[t].bytes, b.tier_traffic[t].bytes)
        << a.tier_traffic[t].name;
  }
  EXPECT_EQ(a.llc_misses, b.llc_misses);
}

TEST_P(AppSweep, SeedChangesAslrNotPhysics) {
  // A different seed permutes addresses and sampling but the performance
  // model must stay within a tight band (same signature, same machine).
  const auto a = run(Condition::kDdr, 42);
  const auto b = run(Condition::kDdr, 4242);
  EXPECT_NEAR(a.fom, b.fom, a.fom * 0.02);
}

TEST_P(AppSweep, DdrRunTouchesOnlyTheSlowestTier) {
  const auto r = run(Condition::kDdr);
  EXPECT_GT(r.slow_bytes(), 0u);
  // Every faster tier stays untouched under the reference condition.
  for (std::size_t t = 0; t + 1 < r.tier_traffic.size(); ++t) {
    EXPECT_EQ(r.tier_traffic[t].bytes, 0u) << r.tier_traffic[t].name;
  }
  EXPECT_EQ(r.fast_hwm_bytes, 0u);
}

TEST_P(AppSweep, EveryConditionBeatsOrMatchesDdr) {
  // No placement regime should lose more than the known autohbw/Lulesh
  // pathology (a few percent); most should gain.
  const double ddr = run(Condition::kDdr).fom;
  for (const auto condition : {Condition::kNumactl, Condition::kCacheMode}) {
    EXPECT_GT(run(condition).fom, ddr * 0.99)
        << condition_name(condition);
  }
  EXPECT_GT(run(Condition::kAutoHbw).fom, ddr * 0.90);
}

TEST_P(AppSweep, NumactlHwmBoundedByMcdramShare) {
  const auto r = run(Condition::kNumactl);
  const auto spec = app();
  const std::uint64_t share = (16ULL << 30) / spec.ranks;
  EXPECT_LE(r.fast_hwm_bytes, share);
  EXPECT_GT(r.fast_hwm_bytes, 0u);
}

TEST_P(AppSweep, TrafficConservation) {
  // Promoting data moves traffic between tiers; it must not create or
  // destroy much of it (cache mode adds fill traffic, flat modes do not).
  const auto ddr = run(Condition::kDdr);
  const auto numactl = run(Condition::kNumactl);
  const double total_ddr = static_cast<double>(ddr.slow_bytes());
  const double total_numactl = static_cast<double>(numactl.dram_bytes());
  EXPECT_NEAR(total_numactl, total_ddr, total_ddr * 0.15);
}

TEST_P(AppSweep, ProfiledRunMatchesUnprofiledPlacement) {
  // Profiling must observe, not perturb: same placement, same traffic,
  // only the monitoring overhead added to time.
  RunOptions plain;
  const auto a = run_app(app(), plain);
  RunOptions profiled;
  profiled.profile = true;
  const auto b = run_app(app(), profiled);
  EXPECT_EQ(a.slow_bytes(), b.slow_bytes());
  EXPECT_GE(b.time_s, a.time_s);  // overhead only adds
  EXPECT_GT(b.samples, 0u);
}

TEST_P(AppSweep, SamplesScaleWithPeriodInverse) {
  RunOptions coarse;
  coarse.profile = true;
  coarse.sampler.period = 80000;
  RunOptions fine = coarse;
  fine.sampler.period = 20000;
  const auto nc = run_app(app(), coarse).samples;
  const auto nf = run_app(app(), fine).samples;
  EXPECT_NEAR(static_cast<double>(nf), static_cast<double>(nc) * 4.0,
              static_cast<double>(nc));
}

INSTANTIATE_TEST_SUITE_P(
    PaperApps, AppSweep,
    ::testing::Values("hpcg", "lulesh", "bt", "minife", "cgpop", "snap",
                      "maxw-dgtd", "gtc-p"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hmem::engine
