// Differential suite for the incremental streaming advisor: the batch
// aggregation/advisor path is the bit-exact oracle (the same pattern that
// made the compiled kernels trustworthy), and the incremental path must
// converge to it exactly — on every bundled app, on every machine preset.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "advisor/incremental_advisor.hpp"
#include "advisor/placement_report.hpp"
#include "advisor/schedule_report.hpp"
#include "analysis/aggregator.hpp"
#include "analysis/incremental.hpp"
#include "apps/workloads.hpp"
#include "engine/execution.hpp"
#include "engine/pipeline.hpp"
#include "memsim/machine.hpp"
#include "trace/visitor.hpp"

namespace hmem {
namespace {

using analysis::AggregateResult;
using analysis::IncrementalAggregator;

/// The full 10-app roster: the 8 paper workloads plus the phase-shifting
/// pair introduced for the dynamic condition.
std::vector<apps::AppSpec> all_ten_apps() {
  auto apps = apps::all_apps();
  for (auto& app : apps::phase_shift_apps()) apps.push_back(app);
  return apps;
}

std::vector<memsim::MachineConfig> all_presets() {
  using memsim::MachineConfig;
  using memsim::MemMode;
  return {MachineConfig::knl7250(MemMode::kFlat),
          MachineConfig::spr_hbm(MemMode::kFlat),
          MachineConfig::ddr_cxl(MemMode::kFlat),
          MachineConfig::hbm_ddr_pmem(MemMode::kFlat)};
}

engine::RunResult profiled_run(const apps::AppSpec& app,
                               const memsim::MachineConfig& node) {
  engine::RunOptions opts;
  opts.profile = true;
  opts.node = node;
  return engine::run_app(app, opts);
}

/// Field-by-field equality of the whole AggregateResult, phase slices
/// included (test_analysis' helper predates phases; the incremental
/// contract covers them too).
void expect_identical_results(const AggregateResult& a,
                              const AggregateResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.total_samples, b.total_samples) << label;
  EXPECT_EQ(a.total_weighted_misses, b.total_weighted_misses) << label;
  EXPECT_EQ(a.unattributed_samples, b.unattributed_samples) << label;
  EXPECT_EQ(a.unattributed_misses, b.unattributed_misses) << label;
  ASSERT_EQ(a.objects.size(), b.objects.size()) << label;
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].site, b.objects[i].site) << label << " obj " << i;
    EXPECT_EQ(a.objects[i].name, b.objects[i].name) << label << " obj " << i;
    EXPECT_EQ(a.objects[i].stack, b.objects[i].stack) << label;
    EXPECT_EQ(a.objects[i].max_size_bytes, b.objects[i].max_size_bytes)
        << label;
    EXPECT_EQ(a.objects[i].llc_misses, b.objects[i].llc_misses) << label;
    EXPECT_EQ(a.objects[i].is_dynamic, b.objects[i].is_dynamic) << label;
  }
  ASSERT_EQ(a.phases.size(), b.phases.size()) << label;
  for (std::size_t p = 0; p < a.phases.size(); ++p) {
    EXPECT_EQ(a.phases[p].name, b.phases[p].name) << label;
    ASSERT_EQ(a.phases[p].objects.size(), b.phases[p].objects.size())
        << label << " phase " << a.phases[p].name;
    for (std::size_t i = 0; i < a.phases[p].objects.size(); ++i) {
      EXPECT_EQ(a.phases[p].objects[i].site, b.phases[p].objects[i].site)
          << label << " phase " << a.phases[p].name << " obj " << i;
      EXPECT_EQ(a.phases[p].objects[i].llc_misses,
                b.phases[p].objects[i].llc_misses)
          << label << " phase " << a.phases[p].name << " obj " << i;
      EXPECT_EQ(a.phases[p].objects[i].max_size_bytes,
                b.phases[p].objects[i].max_size_bytes)
          << label;
    }
  }
}

advisor::MemorySpec spec_for(const memsim::MachineConfig& node) {
  // A quarter GiB ask, clamped to what the preset's fastest tier can
  // physically host — the same derivation hmem_advise --machine performs.
  const std::uint64_t budget = engine::clamp_fast_budget(
      node, 256ull << 20, nullptr);
  return engine::machine_memory_spec(node, budget, /*ranks=*/1);
}

// ---- Aggregator: converged snapshot == batch finish() ---------------------

TEST(IncrementalAggregator, ConvergedSnapshotMatchesBatchOnAllAppsPresets) {
  for (const auto& node : all_presets()) {
    for (const auto& app : all_ten_apps()) {
      const std::string label = app.name + " @ " + node.name;
      const auto run = profiled_run(app, node);
      ASSERT_NE(run.trace, nullptr) << label;

      const AggregateResult batch =
          analysis::aggregate_trace(*run.trace, *run.sites);

      IncrementalAggregator inc(*run.sites);
      trace::visit_buffer(*run.trace, inc);
      expect_identical_results(batch, inc.snapshot(), label);
      // snapshot() is non-destructive: a second one is identical too.
      expect_identical_results(batch, inc.snapshot(), label + " (again)");
    }
  }
}

TEST(IncrementalAggregator, MidStreamSnapshotMatchesBatchOverPrefix) {
  const auto run = profiled_run(apps::make_lulesh(), all_presets().front());
  const auto& events = run.trace->events();
  const std::size_t cuts[] = {0, 1, events.size() / 3, events.size() / 2,
                              events.size() - 1, events.size()};

  IncrementalAggregator inc(*run.sites);
  std::size_t fed = 0;
  for (const std::size_t cut : cuts) {
    for (; fed < cut; ++fed) trace::dispatch_event(events[fed], inc);
    analysis::AggregateVisitor batch(*run.sites);
    for (std::size_t i = 0; i < cut; ++i) {
      trace::dispatch_event(events[i], batch);
    }
    expect_identical_results(batch.finish(), inc.snapshot(),
                             "lulesh prefix " + std::to_string(cut));
  }
}

TEST(IncrementalAggregator, ViewsMatchSnapshotSlices) {
  const auto run = profiled_run(apps::make_snap(), all_presets().front());
  IncrementalAggregator inc(*run.sites);
  trace::visit_buffer(*run.trace, inc);
  const AggregateResult snap = inc.snapshot();

  const analysis::ObjectsView whole = inc.objects_view();
  ASSERT_EQ(whole.objects.size(), snap.objects.size());
  for (std::size_t i = 0; i < whole.objects.size(); ++i) {
    EXPECT_EQ(whole.objects[i].site, snap.objects[i].site);
    EXPECT_EQ(whole.objects[i].llc_misses, snap.objects[i].llc_misses);
  }
  ASSERT_EQ(inc.phase_count(), snap.phases.size());
  for (std::size_t p = 0; p < snap.phases.size(); ++p) {
    const analysis::PhaseView view = inc.phase_view(p);
    EXPECT_EQ(view.objects.name, snap.phases[p].name);
    ASSERT_EQ(view.objects.objects.size(), snap.phases[p].objects.size());
    for (std::size_t i = 0; i < view.objects.objects.size(); ++i) {
      EXPECT_EQ(view.objects.objects[i].site,
                snap.phases[p].objects[i].site);
      EXPECT_EQ(view.objects.objects[i].llc_misses,
                snap.phases[p].objects[i].llc_misses);
    }
  }
}

// ---- Advisor: converged schedule bit-identical to batch PhaseAdvisor ------

TEST(IncrementalAdvisor, ConvergedScheduleBitIdenticalOnAllAppsPresets) {
  const advisor::Options options;
  for (const auto& node : all_presets()) {
    const advisor::MemorySpec spec = spec_for(node);
    for (const auto& app : all_ten_apps()) {
      const std::string label = app.name + " @ " + node.name;
      const auto run = profiled_run(app, node);
      const AggregateResult batch =
          analysis::aggregate_trace(*run.trace, *run.sites);
      ASSERT_FALSE(batch.phases.empty()) << label;

      const advisor::PhaseAdvisor batch_advisor(spec, options);
      const advisor::PlacementSchedule oracle =
          batch_advisor.advise(batch.phases);
      const advisor::HmemAdvisor whole_advisor(spec, options);
      const advisor::Placement oracle_placement =
          whole_advisor.advise(batch.objects);

      // Stream the trace in slices, refreshing as a live client would.
      IncrementalAggregator agg(*run.sites);
      advisor::IncrementalAdvisor inc(spec, options);
      const auto& events = run.trace->events();
      for (std::size_t i = 0; i < events.size(); ++i) {
        trace::dispatch_event(events[i], agg);
        if (i % 500 == 499) inc.refresh(agg);
      }
      inc.refresh(agg, /*finalize=*/true);

      // Bit-identical: the serialized reports are byte-equal, which is the
      // strongest equality the tool chain can observe.
      EXPECT_EQ(advisor::write_schedule_report(oracle),
                advisor::write_schedule_report(inc.schedule()))
          << label;
      EXPECT_EQ(advisor::write_placement_report(oracle_placement),
                advisor::write_placement_report(inc.placement()))
          << label;
    }
  }
}

TEST(IncrementalAdvisor, CleanPhasesAreNotResolved) {
  const auto node = all_presets().front();
  const auto run = profiled_run(apps::make_lulesh(), node);
  IncrementalAggregator agg(*run.sites);
  trace::visit_buffer(*run.trace, agg);

  advisor::IncrementalAdvisor inc(spec_for(node), advisor::Options{});
  const advisor::RefreshStats first = inc.refresh(agg, /*finalize=*/true);
  EXPECT_GT(first.phases_resolved, 0u);
  const std::uint64_t solves = inc.total_resolves();

  // Nothing moved: the refresh must be a no-op (two integer compares per
  // phase), not a re-solve.
  const advisor::RefreshStats second = inc.refresh(agg);
  EXPECT_EQ(second.phases_dirty, 0u);
  EXPECT_EQ(second.phases_resolved, 0u);
  EXPECT_FALSE(second.whole_run_resolved);
  EXPECT_FALSE(second.schedule_changed);
  EXPECT_EQ(inc.total_resolves(), solves);
}

TEST(IncrementalAdvisor, GenerationMovesExactlyWhenTheScheduleChanges) {
  // The engine detects an in-place refresh by PlacementSchedule::generation;
  // the advisor must bump it on every content change and leave it (and the
  // object) untouched when a refresh was a no-op.
  const auto node = all_presets().front();
  const auto run = profiled_run(apps::make_lulesh(), node);
  IncrementalAggregator agg(*run.sites);
  trace::visit_buffer(*run.trace, agg);

  advisor::IncrementalAdvisor inc(spec_for(node), advisor::Options{});
  EXPECT_EQ(inc.schedule().generation, 0u);
  const advisor::RefreshStats first = inc.refresh(agg, /*finalize=*/true);
  ASSERT_TRUE(first.schedule_changed);
  const std::uint64_t gen = inc.schedule().generation;
  EXPECT_GT(gen, 0u);

  const advisor::RefreshStats second = inc.refresh(agg, /*finalize=*/true);
  EXPECT_FALSE(second.schedule_changed);
  EXPECT_EQ(inc.schedule().generation, gen);
}

TEST(IncrementalAdvisor, DriftThresholdDefersButFinalizeConverges) {
  const auto node = all_presets().front();
  const auto run = profiled_run(apps::make_churn(), node);
  const advisor::MemorySpec spec = spec_for(node);
  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);

  // An absurd threshold: every mid-stream refresh defers miss-only drift.
  advisor::IncrementalAdvisorOptions lazy;
  lazy.resolve_threshold = 1e9;
  IncrementalAggregator agg(*run.sites);
  advisor::IncrementalAdvisor inc(spec, advisor::Options{}, lazy);
  const auto& events = run.trace->events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    trace::dispatch_event(events[i], agg);
    if (i % 200 == 199) inc.refresh(agg);
  }
  inc.refresh(agg, /*finalize=*/true);

  const advisor::PhaseAdvisor batch_advisor(spec, advisor::Options{});
  EXPECT_EQ(advisor::write_schedule_report(batch_advisor.advise(batch.phases)),
            advisor::write_schedule_report(inc.schedule()));
}

// ---- Concurrency: snapshot is a reader racing the writer -----------------
// The serving pattern: one thread feeds events, others take snapshots.
// Run under TSan in CI; the final convergence check keeps it meaningful
// without a sanitizer too.

TEST(IncrementalAggregator, SnapshotConcurrentWithWriter) {
  const auto run = profiled_run(apps::make_minife(), all_presets().front());
  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);

  analysis::IncrementalOptions opts;
  opts.decay_half_life_samples = 64;
  IncrementalAggregator inc(*run.sites, opts);
  std::atomic<bool> done{false};

  std::thread reader([&] {
    std::uint64_t last_events = 0;
    while (!done.load(std::memory_order_acquire)) {
      const AggregateResult snap = inc.snapshot();
      // Monotone progress: a later snapshot can never report fewer events.
      EXPECT_GE(snap.total_samples + inc.events_seen(), last_events);
      last_events = inc.events_seen();
      for (std::size_t p = 0; p < inc.phase_count(); ++p) {
        (void)inc.phase_view(p);
      }
      (void)inc.objects_view();
      (void)inc.decayed_misses(0);
    }
  });
  trace::visit_buffer(*run.trace, inc);
  done.store(true, std::memory_order_release);
  reader.join();

  expect_identical_results(batch, inc.snapshot(), "minife concurrent");
}

TEST(IncrementalAdvisor, RefreshConcurrentWithWriter) {
  const auto node = all_presets().front();
  const auto run = profiled_run(apps::make_hpcg(), node);
  const advisor::MemorySpec spec = spec_for(node);

  IncrementalAggregator agg(*run.sites);
  advisor::IncrementalAdvisor inc(spec, advisor::Options{});
  std::atomic<bool> done{false};
  std::thread refresher([&] {
    while (!done.load(std::memory_order_acquire)) inc.refresh(agg);
  });
  trace::visit_buffer(*run.trace, agg);
  done.store(true, std::memory_order_release);
  refresher.join();
  inc.refresh(agg, /*finalize=*/true);

  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);
  const advisor::PhaseAdvisor batch_advisor(spec, advisor::Options{});
  EXPECT_EQ(advisor::write_schedule_report(batch_advisor.advise(batch.phases)),
            advisor::write_schedule_report(inc.schedule()));
}

// ---- Decayed / live views -------------------------------------------------

callstack::SymbolicCallStack stack_of(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  return s;
}

TEST(IncrementalAggregator, DecayedCountersFavorRecency) {
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  const auto b = sites.intern("B", stack_of("alloc_B"));
  analysis::IncrementalOptions opts;
  opts.decay_half_life_samples = 4;
  IncrementalAggregator inc(sites, opts);
  inc.on_alloc(trace::AllocEvent{0, a, 0x1000, 4096});
  inc.on_alloc(trace::AllocEvent{1, b, 0x8000, 4096});
  // A dominates early, then B takes over: 40 samples on A, then 20 on B.
  double t = 2;
  for (int i = 0; i < 40; ++i) {
    inc.on_sample(trace::SampleEvent{t++, 0x1000, false, 10});
  }
  for (int i = 0; i < 20; ++i) {
    inc.on_sample(trace::SampleEvent{t++, 0x8000, false, 10});
  }
  // Cumulative (what snapshot/batch see): A still leads.
  const AggregateResult snap = inc.snapshot();
  EXPECT_EQ(snap.objects[0].name, "A");
  EXPECT_EQ(snap.objects[0].llc_misses, 400u);
  // Decayed recency view: B leads — 20 half-lives since A was last touched.
  EXPECT_GT(inc.decayed_misses(b), inc.decayed_misses(a));
}

TEST(IncrementalAggregator, LiveBytesTrackAllocFree) {
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  IncrementalAggregator inc(sites);
  inc.on_alloc(trace::AllocEvent{0, a, 0x1000, 4096});
  inc.on_alloc(trace::AllocEvent{1, a, 0x8000, 8192});
  EXPECT_EQ(inc.live_bytes(a), 12288u);
  inc.on_free(trace::FreeEvent{2, 0x1000});
  EXPECT_EQ(inc.live_bytes(a), 8192u);
  inc.on_free(trace::FreeEvent{3, 0x8000});
  EXPECT_EQ(inc.live_bytes(a), 0u);
}

// ---- Engine: the mid-stream advisor hook ----------------------------------

TEST(AdvisorHook, NullReturningHookIsBitIdenticalToStaticSchedule) {
  const auto node = all_presets().front();
  const auto app = apps::make_lulesh();
  const auto run = profiled_run(app, node);
  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);
  const advisor::PhaseAdvisor batch_advisor(spec_for(node),
                                            advisor::Options{});
  const advisor::PlacementSchedule schedule =
      batch_advisor.advise(batch.phases);

  engine::RunOptions base;
  base.condition = engine::Condition::kDynamic;
  base.schedule = &schedule;
  base.node = node;
  const engine::RunResult reference = engine::run_app(app, base);

  engine::RunOptions hooked = base;
  std::uint64_t consultations = 0;
  hooked.advisor_hook = [&](const std::string&, std::uint64_t)
      -> const advisor::PlacementSchedule* {
    ++consultations;
    return nullptr;  // keep the current schedule: must change nothing
  };
  const engine::RunResult got = engine::run_app(app, hooked);
  EXPECT_GT(consultations, 0u);
  EXPECT_EQ(reference.fom, got.fom);
  EXPECT_EQ(reference.time_s, got.time_s);
  EXPECT_EQ(reference.llc_misses, got.llc_misses);
  EXPECT_EQ(reference.migration_bytes, got.migration_bytes);
  EXPECT_EQ(reference.migration_count, got.migration_count);
}

TEST(AdvisorHook, ScheduleCanGrowMidRunFromASinglePhase) {
  // The dynamic condition used to assert when the schedule missed an app
  // phase; with a hook the schedule may start with one phase (all the
  // advisor has seen) and grow as the advisor catches up mid-run.
  const auto node = all_presets().front();
  const auto app = apps::make_churn();  // built to shift its hot set
  const auto run = profiled_run(app, node);
  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);

  // A machine-sized budget hosts every phase's hot set at once, so no
  // schedule migrates. Tighten the fast tier until consecutive phases pick
  // different working sets — that is the regime the hook exists for.
  std::uint64_t total_bytes = 0;
  for (const auto& o : batch.objects) total_bytes += o.max_size_bytes;
  advisor::PlacementSchedule full;
  for (double frac : {0.5, 0.35, 0.25, 0.15, 0.1}) {
    const auto budget =
        static_cast<std::uint64_t>(static_cast<double>(total_bytes) * frac);
    const advisor::PhaseAdvisor tight(
        advisor::MemorySpec::two_tier(budget, 64ull << 30),
        advisor::Options{});
    full = tight.advise(batch.phases);
    if (full.migration_bytes_per_cycle() > 0) break;
  }
  ASSERT_GT(full.phases.size(), 1u);
  ASSERT_GT(full.migration_bytes_per_cycle(), 0u)
      << "precondition: the full schedule must actually migrate";

  advisor::PlacementSchedule partial;
  partial.phases.push_back(full.phases.front());
  advisor::compute_migrations(partial);

  engine::RunOptions opts;
  opts.condition = engine::Condition::kDynamic;
  opts.schedule = &partial;
  opts.node = node;
  opts.advisor_hook = [&](const std::string&, std::uint64_t iteration)
      -> const advisor::PlacementSchedule* {
    // The "advisor" converges after the first iteration.
    return iteration >= 1 ? &full : nullptr;
  };
  const engine::RunResult got = engine::run_app(app, opts);
  EXPECT_GT(got.fom, 0.0);
  // Once the full schedule was adopted, phase transitions migrate again.
  EXPECT_GT(got.migration_count, 0u);
  EXPECT_GT(got.migration_bytes, 0u);
}

TEST(AdvisorHook, InPlaceMutationWithGenerationBumpIsAdopted) {
  // An IncrementalAdvisor refreshes by rewriting its single schedule object
  // and bumping PlacementSchedule::generation — the hook returns the same
  // pointer on every consultation. The engine must detect the refresh by
  // generation (pointer identity never changes, and the mutation can
  // reallocate the phases storage the previously applied placement lived
  // in) and behave bit-identically to a hook that swaps between two stable
  // schedule objects.
  const auto node = all_presets().front();
  const auto app = apps::make_churn();
  const auto run = profiled_run(app, node);
  const AggregateResult batch =
      analysis::aggregate_trace(*run.trace, *run.sites);

  std::uint64_t total_bytes = 0;
  for (const auto& o : batch.objects) total_bytes += o.max_size_bytes;
  advisor::PlacementSchedule full;
  for (double frac : {0.5, 0.35, 0.25, 0.15, 0.1}) {
    const auto budget =
        static_cast<std::uint64_t>(static_cast<double>(total_bytes) * frac);
    const advisor::PhaseAdvisor tight(
        advisor::MemorySpec::two_tier(budget, 64ull << 30),
        advisor::Options{});
    full = tight.advise(batch.phases);
    if (full.migration_bytes_per_cycle() > 0) break;
  }
  ASSERT_GT(full.phases.size(), 1u);
  ASSERT_GT(full.migration_bytes_per_cycle(), 0u)
      << "precondition: the full schedule must actually migrate";

  advisor::PlacementSchedule partial;
  partial.phases.push_back(full.phases.front());
  advisor::compute_migrations(partial);

  engine::RunOptions opts;
  opts.condition = engine::Condition::kDynamic;
  opts.node = node;

  // Reference: a double-buffered hook swapping between two stable objects.
  engine::RunOptions swap = opts;
  swap.schedule = &partial;
  swap.advisor_hook = [&](const std::string&, std::uint64_t iteration)
      -> const advisor::PlacementSchedule* {
    return iteration >= 1 ? &full : nullptr;
  };
  const engine::RunResult reference = engine::run_app(app, swap);
  ASSERT_GT(reference.migration_count, 0u);

  // Same answers, served by mutating ONE object in place.
  advisor::PlacementSchedule live = partial;
  engine::RunOptions inplace = opts;
  inplace.schedule = &live;
  inplace.advisor_hook = [&](const std::string&, std::uint64_t iteration)
      -> const advisor::PlacementSchedule* {
    if (iteration >= 1 && live.phases.size() != full.phases.size()) {
      live.phases = full.phases;  // reallocates the phases storage
      live.migrations = full.migrations;
      ++live.generation;  // the contract: bump on every content change
    }
    return &live;  // same pointer, every consultation
  };
  const engine::RunResult got = engine::run_app(app, inplace);
  EXPECT_EQ(reference.fom, got.fom);
  EXPECT_EQ(reference.time_s, got.time_s);
  EXPECT_EQ(reference.llc_misses, got.llc_misses);
  EXPECT_EQ(reference.migration_bytes, got.migration_bytes);
  EXPECT_EQ(reference.migration_count, got.migration_count);
}

}  // namespace
}  // namespace hmem
