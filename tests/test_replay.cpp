// Tests for trace replay (trace/replay.hpp + engine/replay.hpp): the
// round-trip guarantee — profile at period 1, replay the shard, get the
// source run's tier traffic and miss counts back exactly — plus multi-shard
// per-rank means, cross-condition replays and the clean rejection paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "analysis/aggregator.hpp"
#include "apps/app.hpp"
#include "engine/pipeline.hpp"
#include "engine/replay.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"

namespace hmem::engine {
namespace {

/// Small two-object app with an *integral* access scale: at sampling period
/// 1 every simulated miss becomes one sample of integral weight, so replayed
/// traffic (sum of weights x 64 B) must equal the source run's
/// scale-corrected traffic bit for bit.
apps::AppSpec replay_app() {
  apps::AppSpec app;
  app.name = "replay-mini";
  app.fom_unit = "it/s";
  app.ranks = 1;
  app.threads_per_rank = 4;
  app.iterations = 8;
  app.accesses_per_iteration = 20000;
  app.access_scale = 4.0;
  app.objects = {
      apps::ObjectSpec{.name = "hot", .size_bytes = 1ULL << 20},
      apps::ObjectSpec{.name = "cold",
                       .size_bytes = 8ULL << 20,
                       .pattern = apps::AccessPattern::kRandom},
  };
  apps::PhaseSpec phase;
  phase.name = "main";
  phase.object_weights = {0.6, 0.4};
  phase.stack_weight = 0.1;
  app.phases = {phase};
  return app;
}

struct Recording {
  RunResult run;
  std::string shard;  ///< serialized binary (format v2) trace
};

Recording profile(const apps::AppSpec& app, std::uint64_t seed = 42) {
  std::ostringstream out(std::ios::binary);
  callstack::SiteDb sites;
  const auto writer =
      trace::make_trace_writer(out, sites, trace::TraceFormat::kBinary);
  RunOptions opts;
  opts.profile = true;
  opts.sampler.period = 1;  // every miss sampled: lossless recording
  opts.seed = seed;
  opts.sites = &sites;
  opts.trace_sink = writer.get();
  Recording rec;
  rec.run = run_app(app, opts);
  writer->finish();
  rec.shard = out.str();
  return rec;
}

RunResult replay_string(const std::string& shard, const ReplayOptions& opts) {
  std::istringstream in(shard, std::ios::binary);
  callstack::SiteDb sites;
  const auto reader = trace::open_trace_reader(in, sites);
  return replay_run(*reader, sites, opts);
}

TEST(Replay, DdrRoundTripReproducesTrafficExactly) {
  const auto app = replay_app();
  const Recording rec = profile(app);
  ReplayOptions opts;  // kDdr, ranks = shards = 1
  const RunResult replayed = replay_string(rec.shard, opts);

  ASSERT_EQ(replayed.tier_traffic.size(), rec.run.tier_traffic.size());
  for (std::size_t t = 0; t < rec.run.tier_traffic.size(); ++t) {
    EXPECT_EQ(replayed.tier_traffic[t].name, rec.run.tier_traffic[t].name);
    EXPECT_EQ(replayed.tier_traffic[t].bytes, rec.run.tier_traffic[t].bytes)
        << rec.run.tier_traffic[t].name;
  }
  EXPECT_EQ(replayed.llc_misses, rec.run.llc_misses);
  EXPECT_EQ(replayed.alloc_calls, rec.run.alloc_calls);
  // Everything lands on the slowest tier under ddr.
  EXPECT_EQ(replayed.fast_bytes(), 0u);
  EXPECT_GT(replayed.slow_bytes(), 0u);
  EXPECT_EQ(replayed.fom, 0.0);  // a recording carries no work model
  EXPECT_EQ(replayed.fom_unit, "n/a");
}

TEST(Replay, NumactlConservesTotalTrafficAndFillsFastTier) {
  const auto app = replay_app();
  const Recording rec = profile(app);
  ReplayOptions ddr;
  ReplayOptions numactl;
  numactl.condition = Condition::kNumactl;
  const RunResult as_ddr = replay_string(rec.shard, ddr);
  const RunResult as_numactl = replay_string(rec.shard, numactl);

  // Same recorded accesses, different hosting: totals are conserved, and
  // the 9 MiB footprint fits MCDRAM so object traffic moves to the fast
  // tier (only unattributed stack samples stay on DDR).
  EXPECT_EQ(as_numactl.dram_bytes(), as_ddr.dram_bytes());
  EXPECT_GT(as_numactl.fast_bytes(), 0u);
  EXPECT_LT(as_numactl.slow_bytes(), as_ddr.slow_bytes());
  EXPECT_GT(as_numactl.fast_hwm_bytes, 0u);
}

TEST(Replay, FrameworkReplayHonoursAdvisedPlacement) {
  const auto app = replay_app();
  const Recording rec = profile(app);

  // Stage 2 + 3 from the same recording: aggregate, then advise with a
  // budget that fits the hot object but not the cold one.
  advisor::Placement placement;
  {
    std::istringstream in(rec.shard, std::ios::binary);
    callstack::SiteDb sites;
    const auto reader = trace::open_trace_reader(in, sites);
    const auto report = analysis::aggregate_stream(*reader, sites);
    const auto spec = machine_memory_spec(
        memsim::MachineConfig::knl7250(memsim::MemMode::kFlat), 2ULL << 20,
        app.ranks);
    placement = advisor::HmemAdvisor(spec, advisor::Options{})
                    .advise(report.objects);
  }

  ReplayOptions opts;
  opts.condition = Condition::kFramework;
  opts.placement = &placement;
  const RunResult replayed = replay_string(rec.shard, opts);
  EXPECT_GT(replayed.fast_bytes(), 0u);
  EXPECT_GT(replayed.slow_bytes(), 0u);
  ReplayOptions ddr;
  EXPECT_EQ(replayed.dram_bytes(), replay_string(rec.shard, ddr).dram_bytes());
}

TEST(Replay, MultiShardReplayReportsPerRankMeans) {
  const auto app = replay_app();
  const Recording r0 = profile(app, 42);
  const Recording r1 = profile(app, 42 + kRankSeedStride);

  const std::string dir = testing::TempDir();
  const std::string p0 = dir + "/replay_shard.rank0";
  const std::string p1 = dir + "/replay_shard.rank1";
  for (const auto& [path, shard] :
       {std::pair{p0, r0.shard}, std::pair{p1, r1.shard}}) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.write(shard.data(),
                          static_cast<std::streamsize>(shard.size())));
  }

  trace::ReplayReader recording({p0, p1});
  EXPECT_EQ(recording.shard_count(), 2u);
  ReplayOptions opts;
  opts.ranks = 2;
  opts.shards = 2;
  const RunResult replayed =
      replay_run(recording.reader(), recording.sites(), opts);

  EXPECT_EQ(replayed.llc_misses,
            (r0.run.llc_misses + r1.run.llc_misses) / 2);
  EXPECT_EQ(replayed.slow_bytes(),
            (r0.run.slow_bytes() + r1.run.slow_bytes()) / 2);
  EXPECT_EQ(replayed.fast_bytes(), 0u);
}

TEST(Replay, ReaderRejectsMissingAndEmptyInputs) {
  EXPECT_THROW(trace::ReplayReader({}), std::runtime_error);
  EXPECT_THROW(trace::ReplayReader({"/nonexistent/shard.rank0"}),
               std::runtime_error);
}

TEST(Replay, RejectsCacheAndDynamicConditions) {
  const Recording rec = profile(replay_app());
  for (const Condition c : {Condition::kCacheMode, Condition::kDynamic}) {
    ReplayOptions opts;
    opts.condition = c;
    EXPECT_THROW(replay_string(rec.shard, opts), std::runtime_error);
  }
}

TEST(Replay, FrameworkWithoutPlacementThrows) {
  const Recording rec = profile(replay_app());
  ReplayOptions opts;
  opts.condition = Condition::kFramework;
  EXPECT_THROW(replay_string(rec.shard, opts), std::runtime_error);
}

}  // namespace
}  // namespace hmem::engine
