// Unit and property tests for the memory-system simulator.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/units.hpp"
#include "memsim/cache.hpp"
#include "memsim/machine.hpp"
#include "memsim/mcdram_cache.hpp"
#include "memsim/tier.hpp"

namespace hmem::memsim {
namespace {

// ------------------------------------------------------------- address ----

TEST(Address, LineAndPageHelpers) {
  EXPECT_EQ(line_of(0x1234), 0x1200u & ~0x3fULL);
  EXPECT_EQ(line_of(64), 64u);
  EXPECT_EQ(line_of(65), 64u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 4096u);
  EXPECT_EQ(round_up_pages(1), kPageBytes);
  EXPECT_EQ(round_up_pages(4096), 4096u);
  EXPECT_EQ(round_up_pages(4097), 8192u);
  EXPECT_EQ(round_up_pages(0), 0u);
  EXPECT_EQ(round_up_lines(1), 64u);
  EXPECT_EQ(round_up_lines(64), 64u);
}

// --------------------------------------------------------------- cache ----

TEST(Cache, HitAfterFill) {
  Cache c(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 1 set: size = 2 lines.
  Cache c(CacheConfig{128, 64, 2});
  c.access(0 * 128);           // A
  c.access(1 * 128);           // B (same set: stride = set count * line)
  EXPECT_TRUE(c.access(0));    // touch A -> B becomes LRU
  c.access(2 * 128);           // C evicts B
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
  EXPECT_TRUE(c.contains(256));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, ContainsDoesNotDisturbState) {
  Cache c(CacheConfig{128, 64, 2});
  c.access(0);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4096));
  EXPECT_EQ(c.stats().accesses, before);
}

TEST(Cache, FlushEmptiesEverything) {
  Cache c(CacheConfig{4096, 64, 4});
  for (Address a = 0; a < 4096; a += 64) c.access(a);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.access(0));  // miss again after flush
}

TEST(Cache, WorkingSetLargerThanCacheMostlyMisses) {
  Cache c(CacheConfig{16 * 1024, 64, 4});
  // Stream 1 MiB twice: capacity evictions mean the second pass misses too.
  for (int pass = 0; pass < 2; ++pass) {
    for (Address a = 0; a < kMiB; a += 64) c.access(a);
  }
  EXPECT_GT(c.stats().miss_rate(), 0.95);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass) {
  Cache c(CacheConfig{64 * 1024, 64, 4});
  for (Address a = 0; a < 32 * 1024; a += 64) c.access(a);
  std::uint64_t hits = 0;
  for (Address a = 0; a < 32 * 1024; a += 64) hits += c.access(a) ? 1 : 0;
  EXPECT_EQ(hits, 32u * 1024 / 64);
}

// Set/tag math after the division-to-shift rewrite: tags are line indices,
// sets wrap with a mask, and both follow the configured line size.
TEST(Cache, SetAndTagMathMatchesLineGeometry) {
  // 64 KiB, 64 B lines, 4 ways -> 256 sets.
  Cache c(CacheConfig{64 * 1024, 64, 4});
  EXPECT_EQ(c.num_sets(), 256u);
  // The tag is the line index: constant within a line, +1 per line.
  EXPECT_EQ(c.tag_of(0), 0u);
  EXPECT_EQ(c.tag_of(63), 0u);
  EXPECT_EQ(c.tag_of(64), 1u);
  EXPECT_EQ(c.tag_of(0xabcdef), 0xabcdefull / 64);
  // Consecutive lines map to consecutive sets, wrapping at num_sets.
  for (const Address base : {Address{0}, Address{1} << 33}) {
    for (std::uint64_t line = 0; line < 600; ++line) {
      EXPECT_EQ(c.set_of(base + line * 64),
                (c.set_of(base) + line) % c.num_sets());
    }
  }
  // Offsets within one line never change the set.
  EXPECT_EQ(c.set_of(4096), c.set_of(4096 + 63));
}

TEST(Cache, NonDefaultLineSizeShiftsCorrectly) {
  // 128 B lines: 32 KiB / (128 * 2) = 128 sets.
  Cache c(CacheConfig{32 * 1024, 128, 2});
  EXPECT_EQ(c.num_sets(), 128u);
  EXPECT_EQ(c.tag_of(127), 0u);
  EXPECT_EQ(c.tag_of(128), 1u);
  EXPECT_EQ(c.set_of(0), c.set_of(127));
  EXPECT_NE(c.set_of(0), c.set_of(128));
  // Same line-sized stride wraps after 128 sets.
  EXPECT_EQ(c.set_of(0), c.set_of(128ull * 128));
  // The model behaves: distinct tags mapping to one set conflict.
  const Address stride = 128ull * 128;  // same set, different tag
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(stride));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(stride));
  EXPECT_FALSE(c.access(3 * stride));  // evicts LRU way (tag 0)
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, HighAddressBitsStayInTheTag) {
  // Two addresses in the same set whose tags differ only above the set
  // bits must not alias (a truncated-tag bug would hit here).
  Cache c(CacheConfig{4096, 64, 1});  // 64 sets, direct-mapped
  const Address a = 0x100;
  const Address b = a + 64ull * 64 * (1ull << 40);  // same set, huge tag gap
  EXPECT_EQ(c.set_of(a), c.set_of(b));
  EXPECT_NE(c.tag_of(a), c.tag_of(b));
  EXPECT_FALSE(c.access(a));
  EXPECT_FALSE(c.access(b));  // must not be reported as a hit on a's line
  EXPECT_TRUE(c.contains(b));
  EXPECT_FALSE(c.contains(a));  // direct-mapped: b evicted a
}

struct CacheParam {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheInvariants : public ::testing::TestWithParam<CacheParam> {};

TEST_P(CacheInvariants, StatsAreConsistentUnderRandomAccess) {
  const auto p = GetParam();
  Cache c(CacheConfig{p.size, 64, p.ways});
  Xoshiro256 rng(p.size ^ p.ways);
  for (int i = 0; i < 20000; ++i) {
    const Address a = rng.below(4 * p.size);
    const bool hit = c.access(a);
    if (hit) {
      EXPECT_TRUE(c.contains(a));
    }
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(s.evictions, s.misses);
  // Re-access of every resident line must hit.
  EXPECT_TRUE(c.access(0) || true);  // state machine still functional
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheInvariants,
    ::testing::Values(CacheParam{4096, 1}, CacheParam{4096, 4},
                      CacheParam{16384, 2}, CacheParam{65536, 16},
                      CacheParam{262144, 8}));

// -------------------------------------------------------- mcdram cache ----

TEST(McdramCache, DirectMappedConflicts) {
  DirectMappedMemCache mc(8 * kPageBytes, kPageBytes);
  EXPECT_FALSE(mc.access(kDdrBase));
  EXPECT_TRUE(mc.access(kDdrBase));
  // Aliasing address 8 pages away evicts the first.
  EXPECT_FALSE(mc.access(kDdrBase + 8 * kPageBytes));
  EXPECT_FALSE(mc.access(kDdrBase));
  EXPECT_EQ(mc.stats().conflict_evictions, 2u);
}

TEST(McdramCache, HitRateForFittingSetIsPerfectAfterWarmup) {
  DirectMappedMemCache mc(64 * kPageBytes, kPageBytes);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t p = 0; p < 32; ++p) {
      mc.access(kDdrBase + p * kPageBytes);
    }
  }
  // Second pass: all hits (no aliasing within 32 consecutive pages of 64).
  EXPECT_EQ(mc.stats().hits, 32u);
}

TEST(McdramCache, FlushClears) {
  DirectMappedMemCache mc(4 * kPageBytes, kPageBytes);
  mc.access(kDdrBase);
  mc.flush();
  EXPECT_FALSE(mc.contains(kDdrBase));
}

// ---------------------------------------------------------------- tier ----

TEST(Tier, EffectiveBandwidthSaturates) {
  TierSpec ddr{.name = "DDR",
               .kind = TierKind::kDdr,
               .capacity_bytes = kGiB,
               .latency_ns = 100,
               .per_core_bw_gbs = 6.5,
               .peak_bw_gbs = 90,
               .relative_performance = 1};
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 1), 6.5);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 8), 52.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 16), 90.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 68), 90.0);
}

TEST(Tier, StatsAccumulate) {
  MemoryTier t(TierSpec{.name = "x", .capacity_bytes = kMiB});
  t.record_read(64);
  t.record_read(64);
  t.record_write(64);
  EXPECT_EQ(t.stats().reads, 2u);
  EXPECT_EQ(t.stats().writes, 1u);
  EXPECT_EQ(t.stats().bytes(), 192u);
  t.reset_stats();
  EXPECT_EQ(t.stats().accesses(), 0u);
}

// ------------------------------------------------------------- machine ----

TEST(Machine, FlatModeRoutesByAddressRange) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  const auto ddr = m.access(kDdrBase + 12345, false);
  EXPECT_FALSE(ddr.llc_hit);
  EXPECT_EQ(ddr.served_by, ServedBy::kDdr);
  EXPECT_EQ(ddr.ddr_bytes, kCacheLineBytes);
  EXPECT_EQ(ddr.mcdram_bytes, 0u);

  const auto mc = m.access(kMcdramBase + 512, true);
  EXPECT_EQ(mc.served_by, ServedBy::kMcdram);
  EXPECT_EQ(mc.mcdram_bytes, kCacheLineBytes);
  EXPECT_EQ(m.mcdram().stats().writes, 1u);
}

TEST(Machine, LlcHitCostsLess) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  const auto miss = m.access(kDdrBase, false);
  const auto hit = m.access(kDdrBase, false);
  EXPECT_FALSE(miss.llc_hit);
  EXPECT_TRUE(hit.llc_hit);
  EXPECT_LT(hit.latency_ns, miss.latency_ns);
  EXPECT_EQ(hit.ddr_bytes, 0u);
}

TEST(Machine, CacheModeFillsAndHits) {
  Machine m(MachineConfig::test_node(MemMode::kCache));
  ASSERT_NE(m.mem_cache(), nullptr);
  const auto first = m.access(kDdrBase, false);
  EXPECT_EQ(first.served_by, ServedBy::kMcdramCacheMiss);
  EXPECT_EQ(first.ddr_bytes, kCacheLineBytes);
  EXPECT_EQ(first.mcdram_bytes, kCacheLineBytes);  // fill

  // Different line, same memory-side page: tag already present.
  const auto second = m.access(kDdrBase + 512, false);
  EXPECT_EQ(second.served_by, ServedBy::kMcdramCacheHit);
  EXPECT_EQ(second.ddr_bytes, 0u);
}

TEST(Machine, OwningTierAndRangeChecks) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  EXPECT_TRUE(m.in_ddr(kDdrBase));
  EXPECT_FALSE(m.in_mcdram(kDdrBase));
  EXPECT_TRUE(m.in_mcdram(kMcdramBase + 1));
  EXPECT_EQ(m.owning_tier(kDdrBase), TierKind::kDdr);
  EXPECT_EQ(m.owning_tier(kMcdramBase), TierKind::kMcdram);
}

TEST(Machine, ResetClearsCachesAndStats) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  m.access(kDdrBase, false);
  m.access(kDdrBase, false);
  m.reset();
  EXPECT_EQ(m.ddr().stats().accesses(), 0u);
  EXPECT_FALSE(m.llc().contains(kDdrBase));
}

TEST(Machine, Knl7250MatchesPaperPlatform) {
  const auto cfg = MachineConfig::knl7250(MemMode::kFlat);
  EXPECT_EQ(cfg.cores, 68);
  EXPECT_DOUBLE_EQ(cfg.freq_ghz, 1.40);
  EXPECT_EQ(cfg.ddr.capacity_bytes, 96ULL * kGiB);
  EXPECT_EQ(cfg.mcdram.capacity_bytes, 16ULL * kGiB);
  EXPECT_GT(cfg.mcdram.peak_bw_gbs, 4 * cfg.ddr.peak_bw_gbs);
}

}  // namespace
}  // namespace hmem::memsim
