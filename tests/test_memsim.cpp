// Unit and property tests for the memory-system simulator.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/prng.hpp"
#include "common/units.hpp"
#include "memsim/cache.hpp"
#include "memsim/machine.hpp"
#include "memsim/mcdram_cache.hpp"
#include "memsim/tier.hpp"

namespace hmem::memsim {
namespace {

// ------------------------------------------------------------- address ----

TEST(Address, LineAndPageHelpers) {
  EXPECT_EQ(line_of(0x1234), 0x1200u & ~0x3fULL);
  EXPECT_EQ(line_of(64), 64u);
  EXPECT_EQ(line_of(65), 64u);
  EXPECT_EQ(page_of(4095), 0u);
  EXPECT_EQ(page_of(4096), 4096u);
  EXPECT_EQ(round_up_pages(1), kPageBytes);
  EXPECT_EQ(round_up_pages(4096), 4096u);
  EXPECT_EQ(round_up_pages(4097), 8192u);
  EXPECT_EQ(round_up_pages(0), 0u);
  EXPECT_EQ(round_up_lines(1), 64u);
  EXPECT_EQ(round_up_lines(64), 64u);
}

// --------------------------------------------------------------- cache ----

TEST(Cache, HitAfterFill) {
  Cache c(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 1 set: size = 2 lines.
  Cache c(CacheConfig{128, 64, 2});
  c.access(0 * 128);           // A
  c.access(1 * 128);           // B (same set: stride = set count * line)
  EXPECT_TRUE(c.access(0));    // touch A -> B becomes LRU
  c.access(2 * 128);           // C evicts B
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(128));
  EXPECT_TRUE(c.contains(256));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, ContainsDoesNotDisturbState) {
  Cache c(CacheConfig{128, 64, 2});
  c.access(0);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4096));
  EXPECT_EQ(c.stats().accesses, before);
}

TEST(Cache, FlushEmptiesEverything) {
  Cache c(CacheConfig{4096, 64, 4});
  for (Address a = 0; a < 4096; a += 64) c.access(a);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.access(0));  // miss again after flush
}

TEST(Cache, WorkingSetLargerThanCacheMostlyMisses) {
  Cache c(CacheConfig{16 * 1024, 64, 4});
  // Stream 1 MiB twice: capacity evictions mean the second pass misses too.
  for (int pass = 0; pass < 2; ++pass) {
    for (Address a = 0; a < kMiB; a += 64) c.access(a);
  }
  EXPECT_GT(c.stats().miss_rate(), 0.95);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsOnSecondPass) {
  Cache c(CacheConfig{64 * 1024, 64, 4});
  for (Address a = 0; a < 32 * 1024; a += 64) c.access(a);
  std::uint64_t hits = 0;
  for (Address a = 0; a < 32 * 1024; a += 64) hits += c.access(a) ? 1 : 0;
  EXPECT_EQ(hits, 32u * 1024 / 64);
}

// Set/tag math after the division-to-shift rewrite: tags are line indices,
// sets wrap with a mask, and both follow the configured line size.
TEST(Cache, SetAndTagMathMatchesLineGeometry) {
  // 64 KiB, 64 B lines, 4 ways -> 256 sets.
  Cache c(CacheConfig{64 * 1024, 64, 4});
  EXPECT_EQ(c.num_sets(), 256u);
  // The tag is the line index: constant within a line, +1 per line.
  EXPECT_EQ(c.tag_of(0), 0u);
  EXPECT_EQ(c.tag_of(63), 0u);
  EXPECT_EQ(c.tag_of(64), 1u);
  EXPECT_EQ(c.tag_of(0xabcdef), 0xabcdefull / 64);
  // Consecutive lines map to consecutive sets, wrapping at num_sets.
  for (const Address base : {Address{0}, Address{1} << 33}) {
    for (std::uint64_t line = 0; line < 600; ++line) {
      EXPECT_EQ(c.set_of(base + line * 64),
                (c.set_of(base) + line) % c.num_sets());
    }
  }
  // Offsets within one line never change the set.
  EXPECT_EQ(c.set_of(4096), c.set_of(4096 + 63));
}

TEST(Cache, NonDefaultLineSizeShiftsCorrectly) {
  // 128 B lines: 32 KiB / (128 * 2) = 128 sets.
  Cache c(CacheConfig{32 * 1024, 128, 2});
  EXPECT_EQ(c.num_sets(), 128u);
  EXPECT_EQ(c.tag_of(127), 0u);
  EXPECT_EQ(c.tag_of(128), 1u);
  EXPECT_EQ(c.set_of(0), c.set_of(127));
  EXPECT_NE(c.set_of(0), c.set_of(128));
  // Same line-sized stride wraps after 128 sets.
  EXPECT_EQ(c.set_of(0), c.set_of(128ull * 128));
  // The model behaves: distinct tags mapping to one set conflict.
  const Address stride = 128ull * 128;  // same set, different tag
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(stride));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(stride));
  EXPECT_FALSE(c.access(3 * stride));  // evicts LRU way (tag 0)
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, HighAddressBitsStayInTheTag) {
  // Two addresses in the same set whose tags differ only above the set
  // bits must not alias (a truncated-tag bug would hit here).
  Cache c(CacheConfig{4096, 64, 1});  // 64 sets, direct-mapped
  const Address a = 0x100;
  const Address b = a + 64ull * 64 * (1ull << 40);  // same set, huge tag gap
  EXPECT_EQ(c.set_of(a), c.set_of(b));
  EXPECT_NE(c.tag_of(a), c.tag_of(b));
  EXPECT_FALSE(c.access(a));
  EXPECT_FALSE(c.access(b));  // must not be reported as a hit on a's line
  EXPECT_TRUE(c.contains(b));
  EXPECT_FALSE(c.contains(a));  // direct-mapped: b evicted a
}

struct CacheParam {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheInvariants : public ::testing::TestWithParam<CacheParam> {};

TEST_P(CacheInvariants, StatsAreConsistentUnderRandomAccess) {
  const auto p = GetParam();
  Cache c(CacheConfig{p.size, 64, p.ways});
  Xoshiro256 rng(p.size ^ p.ways);
  for (int i = 0; i < 20000; ++i) {
    const Address a = rng.below(4 * p.size);
    const bool hit = c.access(a);
    if (hit) {
      EXPECT_TRUE(c.contains(a));
    }
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(s.evictions, s.misses);
  // Re-access of every resident line must hit.
  EXPECT_TRUE(c.access(0) || true);  // state machine still functional
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheInvariants,
    ::testing::Values(CacheParam{4096, 1}, CacheParam{4096, 4},
                      CacheParam{16384, 2}, CacheParam{65536, 16},
                      CacheParam{262144, 8}));

// -------------------------------------------------------- mcdram cache ----

TEST(McdramCache, DirectMappedConflicts) {
  DirectMappedMemCache mc(8 * kPageBytes, kPageBytes);
  EXPECT_FALSE(mc.access(kDdrBase));
  EXPECT_TRUE(mc.access(kDdrBase));
  // Aliasing address 8 pages away evicts the first.
  EXPECT_FALSE(mc.access(kDdrBase + 8 * kPageBytes));
  EXPECT_FALSE(mc.access(kDdrBase));
  EXPECT_EQ(mc.stats().conflict_evictions, 2u);
}

TEST(McdramCache, HitRateForFittingSetIsPerfectAfterWarmup) {
  DirectMappedMemCache mc(64 * kPageBytes, kPageBytes);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t p = 0; p < 32; ++p) {
      mc.access(kDdrBase + p * kPageBytes);
    }
  }
  // Second pass: all hits (no aliasing within 32 consecutive pages of 64).
  EXPECT_EQ(mc.stats().hits, 32u);
}

TEST(McdramCache, FlushClears) {
  DirectMappedMemCache mc(4 * kPageBytes, kPageBytes);
  mc.access(kDdrBase);
  mc.flush();
  EXPECT_FALSE(mc.contains(kDdrBase));
}

// ---------------------------------------------------------------- tier ----

TEST(Tier, EffectiveBandwidthSaturates) {
  TierSpec ddr{.name = "DDR",
               .capacity_bytes = kGiB,
               .latency_ns = 100,
               .per_core_bw_gbs = 6.5,
               .peak_bw_gbs = 90,
               .relative_performance = 1};
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 1), 6.5);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 8), 52.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 16), 90.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbs(ddr, 68), 90.0);
}

TEST(Tier, StatsAccumulate) {
  MemoryTier t(TierSpec{.name = "x", .capacity_bytes = kMiB});
  t.record_read(64);
  t.record_read(64);
  t.record_write(64);
  EXPECT_EQ(t.stats().reads, 2u);
  EXPECT_EQ(t.stats().writes, 1u);
  EXPECT_EQ(t.stats().bytes(), 192u);
  t.reset_stats();
  EXPECT_EQ(t.stats().accesses(), 0u);
}

// ------------------------------------------------------------- machine ----

TEST(Machine, FlatModeRoutesByAddressRange) {
  // test_node tier 0 = DDR, tier 1 = MCDRAM (address-map order).
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  const auto ddr = m.access(kDdrBase + 12345, false);
  EXPECT_FALSE(ddr.llc_hit);
  EXPECT_EQ(ddr.served_by, ServedBy::kTier);
  EXPECT_EQ(ddr.tier, 0u);
  EXPECT_EQ(ddr.tier_bytes, kCacheLineBytes);
  EXPECT_EQ(ddr.fill_bytes, 0u);

  const auto mc = m.access(kMcdramBase + 512, true);
  EXPECT_EQ(mc.served_by, ServedBy::kTier);
  EXPECT_EQ(mc.tier, 1u);
  EXPECT_EQ(mc.tier_bytes, kCacheLineBytes);
  EXPECT_EQ(m.tier(1).stats().writes, 1u);
  EXPECT_EQ(m.tier(0).stats().writes, 0u);
}

TEST(Machine, LlcHitCostsLess) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  const auto miss = m.access(kDdrBase, false);
  const auto hit = m.access(kDdrBase, false);
  EXPECT_FALSE(miss.llc_hit);
  EXPECT_TRUE(hit.llc_hit);
  EXPECT_LT(hit.latency_ns, miss.latency_ns);
  EXPECT_EQ(hit.tier_bytes, 0u);
}

TEST(Machine, CacheModeFillsAndHits) {
  // MCDRAM (tier 1, the fastest) fronts DDR (tier 0, the slowest).
  Machine m(MachineConfig::test_node(MemMode::kCache));
  ASSERT_NE(m.mem_cache(), nullptr);
  const auto first = m.access(kDdrBase, false);
  EXPECT_EQ(first.served_by, ServedBy::kMemCacheMiss);
  EXPECT_EQ(first.tier, 0u);  // served by the backing tier
  EXPECT_EQ(first.tier_bytes, kCacheLineBytes);
  EXPECT_EQ(first.fill_tier, 1u);  // memory-side fill into the front
  EXPECT_EQ(first.fill_bytes, kCacheLineBytes);

  // Different line, same memory-side page: tag already present.
  const auto second = m.access(kDdrBase + 512, false);
  EXPECT_EQ(second.served_by, ServedBy::kMemCacheHit);
  EXPECT_EQ(second.tier, 1u);
  EXPECT_EQ(second.fill_bytes, 0u);
}

TEST(Machine, OwningTierAndRangeChecks) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  EXPECT_TRUE(m.in_tier(kDdrBase, 0));
  EXPECT_FALSE(m.in_tier(kDdrBase, 1));
  EXPECT_TRUE(m.in_tier(kMcdramBase + 1, 1));
  EXPECT_EQ(m.owning_tier(kDdrBase), 0u);
  EXPECT_EQ(m.owning_tier(kMcdramBase), 1u);
  // Addresses outside every range fall back to the slowest tier.
  EXPECT_EQ(m.owning_tier(0), m.slowest_tier());
  EXPECT_EQ(m.fastest_tier(), 1u);
  EXPECT_EQ(m.slowest_tier(), 0u);
}

TEST(Machine, ResetClearsCachesAndStats) {
  Machine m(MachineConfig::test_node(MemMode::kFlat));
  m.access(kDdrBase, false);
  m.access(kDdrBase, false);
  m.reset();
  EXPECT_EQ(m.tier(0).stats().accesses(), 0u);
  EXPECT_FALSE(m.llc().contains(kDdrBase));
}

TEST(Machine, Knl7250MatchesPaperPlatform) {
  const auto cfg = MachineConfig::knl7250(MemMode::kFlat);
  EXPECT_EQ(cfg.cores, 68);
  EXPECT_DOUBLE_EQ(cfg.freq_ghz, 1.40);
  ASSERT_EQ(cfg.tier_count(), 2u);
  const TierSpec& ddr = cfg.tiers[0];
  const TierSpec& mcdram = cfg.tiers[1];
  EXPECT_EQ(ddr.name, "DDR");
  EXPECT_EQ(mcdram.name, "MCDRAM");
  EXPECT_EQ(ddr.capacity_bytes, 96ULL * kGiB);
  EXPECT_EQ(mcdram.capacity_bytes, 16ULL * kGiB);
  EXPECT_GT(mcdram.peak_bw_gbs, 4 * ddr.peak_bw_gbs);
  // The historical physical layout is reproduced by assign_tier_bases.
  EXPECT_EQ(ddr.base, kDdrBase);
  EXPECT_EQ(mcdram.base, kMcdramBase);
  EXPECT_EQ(cfg.fastest_tier(), 1u);
  EXPECT_EQ(cfg.slowest_tier(), 0u);
}

// ------------------------------------------------------------- N tiers ----

TEST(Machine, ThreeTierRoutingAcrossAddressRanges) {
  // test_node3: PMEM (0, slowest), DDR (1), HBM (2, fastest) — three
  // disjoint ranges; flat-mode misses route by range.
  const auto cfg = MachineConfig::test_node3(MemMode::kFlat);
  ASSERT_EQ(cfg.tier_count(), 3u);
  Machine m(cfg);
  EXPECT_EQ(m.fastest_tier(), 2u);
  EXPECT_EQ(m.slowest_tier(), 0u);

  for (TierIndex t = 0; t < 3; ++t) {
    const Address addr = cfg.tiers[t].base + 3 * kCacheLineBytes;
    const auto res = m.access(addr, t == 1);
    EXPECT_FALSE(res.llc_hit);
    EXPECT_EQ(res.served_by, ServedBy::kTier);
    EXPECT_EQ(res.tier, t);
    EXPECT_EQ(res.tier_bytes, kCacheLineBytes);
    EXPECT_DOUBLE_EQ(res.latency_ns, cfg.tiers[t].latency_ns);
    EXPECT_EQ(m.owning_tier(addr), t);
  }
  EXPECT_EQ(m.tier(0).stats().reads, 1u);
  EXPECT_EQ(m.tier(1).stats().writes, 1u);
  EXPECT_EQ(m.tier(2).stats().reads, 1u);
  // The per-tier counters saw exactly one access each.
  for (TierIndex t = 0; t < 3; ++t) {
    EXPECT_EQ(m.tier(t).stats().accesses(), 1u);
    EXPECT_EQ(m.tier(t).stats().bytes(), kCacheLineBytes);
  }
}

TEST(Tier, BaseAssignmentIsDisjointAndAligned) {
  std::vector<TierSpec> tiers(3);
  tiers[0].capacity_bytes = 96ULL * kGiB;
  tiers[1].capacity_bytes = 16ULL * kGiB;
  tiers[2].capacity_bytes = 512ULL * kGiB;
  assign_tier_bases(tiers);
  EXPECT_EQ(tiers[0].base, kTierFirstBase);
  EXPECT_EQ(tiers[1].base, kTierBaseAlign);  // the historical MCDRAM base
  // Ranges are disjoint with guard gaps between them.
  for (std::size_t i = 0; i + 1 < tiers.size(); ++i) {
    EXPECT_GT(tiers[i + 1].base, tiers[i].base + tiers[i].capacity_bytes);
    EXPECT_EQ(tiers[i + 1].base % kTierBaseAlign, 0u);
  }
  // Pre-assigned bases survive.
  std::vector<TierSpec> pinned(1);
  pinned[0].capacity_bytes = kGiB;
  pinned[0].base = 0x1234000;
  assign_tier_bases(pinned);
  EXPECT_EQ(pinned[0].base, 0x1234000u);
}

TEST(Machine, CacheModePairResolvesToFastestFrontingSlowest) {
  const auto cfg = MachineConfig::test_node3(MemMode::kCache);
  EXPECT_EQ(cfg.resolved_cache_front(), 2u);    // HBM
  EXPECT_EQ(cfg.resolved_cache_backing(), 0u);  // PMEM
  Machine m(cfg);
  ASSERT_NE(m.mem_cache(), nullptr);
  const auto first = m.access(cfg.tiers[0].base, false);
  EXPECT_EQ(first.served_by, ServedBy::kMemCacheMiss);
  EXPECT_EQ(first.tier, 0u);
  EXPECT_EQ(first.fill_tier, 2u);
}

TEST(MachineConfig, PresetLookup) {
  for (const auto& name : MachineConfig::preset_names()) {
    const auto cfg = MachineConfig::preset(name);
    ASSERT_TRUE(cfg.has_value()) << name;
    EXPECT_GE(cfg->tier_count(), 2u) << name;
    // Every preset has disjoint, assigned tier ranges.
    for (std::size_t i = 0; i + 1 < cfg->tiers.size(); ++i) {
      EXPECT_GT(cfg->tiers[i + 1].base,
                cfg->tiers[i].base + cfg->tiers[i].capacity_bytes)
          << name;
    }
  }
  EXPECT_EQ(MachineConfig::preset("hbm-ddr-pmem")->tier_count(), 3u);
  EXPECT_FALSE(MachineConfig::preset("no-such-machine").has_value());
}

TEST(MachineConfig, FromConfigParsesTiers) {
  const auto cfg = MachineConfig::from_config(Config::parse(
      "[machine]\nname = custom\ncores = 8\nfreq_ghz = 2.0\nipc = 2\n"
      "mode = flat\n"
      "[llc]\nsize = 1M\nline = 64\nways = 8\n"
      "[tier SLOW]\ncapacity = 4G\nlatency_ns = 200\n"
      "relative_performance = 1\n"
      "[tier FAST]\ncapacity = 1G\nlatency_ns = 90\n"
      "relative_performance = 4\n"));
  EXPECT_EQ(cfg.name, "custom");
  EXPECT_EQ(cfg.cores, 8);
  ASSERT_EQ(cfg.tier_count(), 2u);
  EXPECT_EQ(cfg.tiers[0].name, "SLOW");
  EXPECT_EQ(cfg.fastest_tier(), 1u);
  EXPECT_EQ(cfg.llc.size_bytes, 1ULL << 20);
  EXPECT_GT(cfg.tiers[1].base, cfg.tiers[0].base);
}

TEST(MachineConfig, FromConfigRejectsDegenerateInput) {
  EXPECT_THROW(MachineConfig::from_config(Config::parse("[machine]\n")),
               std::runtime_error);  // no tiers
  // "[tier a]" and "[tier  a]" are distinct sections naming the same tier.
  EXPECT_THROW(MachineConfig::from_config(Config::parse(
                   "[tier a]\ncapacity = 1G\n[tier  a]\ncapacity = 2G\n")),
               std::runtime_error);  // duplicate name
  EXPECT_THROW(MachineConfig::from_config(
                   Config::parse("[tier a]\ncapacity = 0\n")),
               std::runtime_error);  // zero capacity
  EXPECT_THROW(MachineConfig::from_config(Config::parse(
                   "[tier a]\ncapacity = 1G\nrelative_performance = -2\n")),
               std::runtime_error);  // non-positive performance
}

}  // namespace
}  // namespace hmem::memsim
