// Tests for the object registry and the Extrae-substitute profiler.
#include <gtest/gtest.h>

#include "profiler/object_registry.hpp"
#include "profiler/profiler.hpp"

namespace hmem::profiler {
namespace {

// ----------------------------------------------------- object registry ----

TEST(ObjectRegistry, LookupInsideRange) {
  ObjectRegistry reg;
  reg.on_alloc(0x1000, 256, 3);
  EXPECT_EQ(reg.lookup(0x1000)->site, 3u);
  EXPECT_EQ(reg.lookup(0x10ff)->site, 3u);
  EXPECT_FALSE(reg.lookup(0x1100).has_value());
  EXPECT_FALSE(reg.lookup(0xfff).has_value());
}

TEST(ObjectRegistry, FreeRemovesAndReturns) {
  ObjectRegistry reg;
  reg.on_alloc(0x1000, 256, 3);
  const auto removed = reg.on_free(0x1000);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->size, 256u);
  EXPECT_FALSE(reg.lookup(0x1000).has_value());
  EXPECT_FALSE(reg.on_free(0x1000).has_value());
  EXPECT_EQ(reg.live_bytes(), 0u);
}

TEST(ObjectRegistry, ManyDisjointObjects) {
  ObjectRegistry reg;
  for (std::uint32_t i = 0; i < 100; ++i) {
    reg.on_alloc(0x10000 + i * 0x1000, 0x800, i);
  }
  EXPECT_EQ(reg.live_count(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(reg.lookup(0x10000 + i * 0x1000 + 0x7ff)->site, i);
    EXPECT_FALSE(reg.lookup(0x10000 + i * 0x1000 + 0x800).has_value());
  }
}

TEST(ObjectRegistry, AddressReuseAfterFree) {
  ObjectRegistry reg;
  reg.on_alloc(0x1000, 64, 1);
  reg.on_free(0x1000);
  reg.on_alloc(0x1000, 128, 2);  // same base, new object
  EXPECT_EQ(reg.lookup(0x1040)->site, 2u);
}

TEST(ObjectRegistryDeathTest, OverlapAsserts) {
  ObjectRegistry reg;
  reg.on_alloc(0x1000, 256, 1);
  EXPECT_DEATH(reg.on_alloc(0x1080, 16, 2), "overlap");
}

// ------------------------------------------------------------ profiler ----

ProfilerConfig test_config(std::uint64_t period = 10) {
  ProfilerConfig cfg;
  cfg.min_alloc_bytes = 4096;
  cfg.sampler.period = period;
  cfg.sampler.jitter = 0.0;
  return cfg;
}

TEST(Profiler, SmallAllocationsUnmonitored) {
  Profiler prof(test_config());
  prof.on_alloc(0, 0, 0x1000, 1024);   // below 4 KiB: skipped
  prof.on_alloc(1, 0, 0x8000, 8192);   // monitored
  EXPECT_EQ(prof.skipped_small_allocs(), 1u);
  EXPECT_EQ(prof.monitored_allocs(), 1u);
  EXPECT_EQ(prof.trace().size(), 1u);
  EXPECT_FALSE(prof.registry().lookup(0x1000).has_value());
  EXPECT_TRUE(prof.registry().lookup(0x8000).has_value());
}

TEST(Profiler, SamplesEveryPeriodMisses) {
  Profiler prof(test_config(10));
  for (int i = 0; i < 100; ++i) {
    prof.on_llc_miss(static_cast<double>(i), 0x1000, false);
  }
  EXPECT_EQ(prof.sampler().samples_taken(), 10u);
  // 10 sample events in the trace, each weighted by the period.
  std::uint64_t weight = 0;
  for (const auto& ev : prof.trace().events()) {
    if (const auto* s = std::get_if<trace::SampleEvent>(&ev)) {
      weight += s->weight;
    }
  }
  EXPECT_EQ(weight, 100u);
}

TEST(Profiler, WeightedMissFeedAggregatesWeight) {
  Profiler prof(test_config(100));
  prof.on_llc_miss(0, 0x1000, false, 1000);  // 10 overflows at once
  ASSERT_EQ(prof.trace().size(), 1u);
  const auto* s = std::get_if<trace::SampleEvent>(&prof.trace().events()[0]);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->weight, 1000u);
  EXPECT_EQ(prof.sampler().samples_taken(), 10u);
}

TEST(Profiler, OverheadGrowsWithActivity) {
  Profiler prof(test_config(10));
  EXPECT_DOUBLE_EQ(prof.overhead_ns(), 0.0);
  prof.on_alloc(0, 0, 0x8000, 8192);
  const double after_alloc = prof.overhead_ns();
  EXPECT_GT(after_alloc, 0.0);
  for (int i = 0; i < 10; ++i) prof.on_llc_miss(1, 0x8000, false);
  EXPECT_GT(prof.overhead_ns(), after_alloc);
  prof.on_free(2, 0x8000);
  EXPECT_EQ(prof.registry().live_count(), 0u);
}

TEST(Profiler, FreeOfUnmonitoredAllocationIsSilent) {
  Profiler prof(test_config());
  prof.on_alloc(0, 0, 0x1000, 100);  // unmonitored
  prof.on_free(1, 0x1000);           // must not add a Free event
  EXPECT_EQ(prof.trace().size(), 0u);
}

TEST(Profiler, PhaseAndCounterEventsRecorded) {
  Profiler prof(test_config());
  prof.on_phase(1.0, "solve", true);
  prof.on_counter(2.0, "instructions", 123.0);
  prof.on_phase(3.0, "solve", false);
  ASSERT_EQ(prof.trace().size(), 3u);
  const auto* p = std::get_if<trace::PhaseEvent>(&prof.trace().events()[0]);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->begin);
  EXPECT_EQ(p->name, "solve");
}

TEST(Profiler, TakeTraceMoves) {
  Profiler prof(test_config());
  prof.on_phase(1.0, "p", true);
  auto taken = prof.take_trace();
  EXPECT_EQ(taken.size(), 1u);
}

TEST(Profiler, EmitsIntoExternalSink) {
  // With an external sink, events stream out as they happen and the
  // internal buffer stays empty — the streaming stage-1 path.
  trace::TraceBuffer external;
  Profiler prof(test_config(), &external);
  prof.on_alloc(0, 0, 0x8000, 8192);
  prof.on_phase(1.0, "solve", true);
  prof.on_free(2.0, 0x8000);
  EXPECT_EQ(prof.trace().size(), 0u);
  ASSERT_EQ(external.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<trace::AllocEvent>(external.events()[0]));
  EXPECT_TRUE(std::holds_alternative<trace::PhaseEvent>(external.events()[1]));
  EXPECT_TRUE(std::holds_alternative<trace::FreeEvent>(external.events()[2]));
  // Monitoring accounting is sink-independent.
  EXPECT_EQ(prof.monitored_allocs(), 1u);
  EXPECT_GT(prof.overhead_ns(), 0.0);
}

}  // namespace
}  // namespace hmem::profiler
