// Tests for the full auto-hbwmalloc wrapper surface (footnote 5 of the
// paper): malloc / free / realloc / posix_memalign / kmp_*.
#include <gtest/gtest.h>

#include "alloc/allocators.hpp"
#include "runtime/interpose.hpp"
#include "runtime/policy.hpp"

namespace hmem::runtime {
namespace {

callstack::SymbolicCallStack ctx(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  return s;
}

struct Fixture {
  Fixture()
      : posix(0x100000000ULL, 64ULL << 20),
        hbw(0x4000000000ULL, 16ULL << 20),
        policy(posix, hbw, 1 << 20),
        interposer(policy) {}

  alloc::PosixAllocator posix;
  alloc::MemkindAllocator hbw;
  AutoHbwLibPolicy policy;  // any policy works; autohbw exercises both tiers
  MallocInterposer interposer;
};

TEST(Interposer, MallocFreeLifecycle) {
  Fixture f;
  const auto p = f.interposer.malloc(1000, ctx("a"));
  ASSERT_NE(p, 0u);
  EXPECT_EQ(f.interposer.allocation_size(p).value(), 1000u);
  EXPECT_EQ(f.interposer.live_allocations(), 1u);
  f.interposer.free(p);
  EXPECT_EQ(f.interposer.live_allocations(), 0u);
  EXPECT_EQ(f.interposer.stats().malloc_calls, 1u);
  EXPECT_EQ(f.interposer.stats().free_calls, 1u);
}

TEST(Interposer, FreeNullIsNoop) {
  Fixture f;
  f.interposer.free(0);
  EXPECT_EQ(f.interposer.stats().free_calls, 0u);
}

TEST(InterposerDeathTest, FreeUnknownPointerAsserts) {
  Fixture f;
  EXPECT_DEATH(f.interposer.free(0xdeadbeef), "unknown pointer");
}

TEST(Interposer, ReallocGrowCopiesAndMoves) {
  Fixture f;
  const auto p = f.interposer.malloc(100, ctx("a"));
  const auto q = f.interposer.realloc(p, 5000, ctx("a"));
  ASSERT_NE(q, 0u);
  EXPECT_EQ(f.interposer.allocation_size(q).value(), 5000u);
  EXPECT_FALSE(f.interposer.allocation_size(p).has_value());  // old gone
  EXPECT_EQ(f.interposer.stats().realloc_copied_bytes, 100u);
  EXPECT_EQ(f.interposer.live_allocations(), 1u);
}

TEST(Interposer, ReallocShrinkCopiesNewSize) {
  Fixture f;
  const auto p = f.interposer.malloc(5000, ctx("a"));
  const auto q = f.interposer.realloc(p, 100, ctx("a"));
  ASSERT_NE(q, 0u);
  EXPECT_EQ(f.interposer.stats().realloc_copied_bytes, 100u);
}

TEST(Interposer, ReallocNullActsAsMalloc) {
  Fixture f;
  const auto p = f.interposer.realloc(0, 64, ctx("a"));
  ASSERT_NE(p, 0u);
  EXPECT_EQ(f.interposer.allocation_size(p).value(), 64u);
}

TEST(Interposer, ReallocZeroActsAsFree) {
  Fixture f;
  const auto p = f.interposer.malloc(64, ctx("a"));
  EXPECT_EQ(f.interposer.realloc(p, 0, ctx("a")), 0u);
  EXPECT_EQ(f.interposer.live_allocations(), 0u);
}

TEST(Interposer, ReallocCanMigrateTiers) {
  // Under the autohbw policy, growing past the 1 MiB threshold moves the
  // block into the fast tier — a realloc is a fresh placement decision.
  Fixture f;
  const auto small = f.interposer.malloc(1000, ctx("a"));
  EXPECT_TRUE(f.posix.owns(small));
  const auto big = f.interposer.realloc(small, 2 << 20, ctx("a"));
  ASSERT_NE(big, 0u);
  EXPECT_TRUE(f.hbw.owns(big));
}

TEST(Interposer, PosixMemalignAlignment) {
  Fixture f;
  for (std::uint64_t alignment : {16ULL, 64ULL, 256ULL, 4096ULL, 65536ULL}) {
    const auto p = f.interposer.posix_memalign(alignment, 1000, ctx("a"));
    ASSERT_NE(p, 0u) << alignment;
    EXPECT_EQ(p % alignment, 0u) << alignment;
    f.interposer.free(p);
  }
}

TEST(Interposer, PosixMemalignRejectsBadAlignment) {
  Fixture f;
  EXPECT_EQ(f.interposer.posix_memalign(3, 100, ctx("a")), 0u);
  EXPECT_EQ(f.interposer.posix_memalign(0, 100, ctx("a")), 0u);
  EXPECT_EQ(f.interposer.posix_memalign(4, 100, ctx("a")), 0u);  // < ptr
}

TEST(Interposer, AlignedFreeReleasesBackingBlock) {
  Fixture f;
  const auto p = f.interposer.posix_memalign(65536, 1000, ctx("a"));
  ASSERT_NE(p, 0u);
  f.interposer.free(p);
  EXPECT_EQ(f.posix.stats().bytes_in_use, 0u);
  EXPECT_EQ(f.hbw.stats().bytes_in_use, 0u);
}

TEST(Interposer, KmpEntryPointsRouteAndCount) {
  Fixture f;
  const auto p = f.interposer.kmp_malloc(100, ctx("a"));
  const auto q = f.interposer.kmp_aligned_malloc(256, 100, ctx("a"));
  ASSERT_NE(p, 0u);
  ASSERT_NE(q, 0u);
  EXPECT_EQ(q % 256, 0u);
  const auto r = f.interposer.kmp_realloc(p, 500, ctx("a"));
  ASSERT_NE(r, 0u);
  f.interposer.kmp_free(r);
  f.interposer.kmp_free(q);
  EXPECT_EQ(f.interposer.stats().kmp_calls, 5u);
  EXPECT_EQ(f.interposer.live_allocations(), 0u);
}

TEST(Interposer, CostAccumulates) {
  Fixture f;
  const auto p = f.interposer.malloc(4 << 20, ctx("a"));
  const double after_malloc = f.interposer.stats().total_cost_ns;
  EXPECT_GT(after_malloc, 0.0);
  const auto q = f.interposer.realloc(p, 8 << 20, ctx("a"));
  // Realloc pays allocation + copy + free: strictly more than the malloc.
  EXPECT_GT(f.interposer.stats().total_cost_ns, after_malloc * 2);
  f.interposer.free(q);
}

TEST(Interposer, ManyLiveAllocationsTracked) {
  Fixture f;
  std::vector<alloc::Address> ptrs;
  for (int i = 0; i < 200; ++i) {
    ptrs.push_back(f.interposer.malloc(1024 + i, ctx("a")));
  }
  EXPECT_EQ(f.interposer.live_allocations(), 200u);
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(f.interposer.allocation_size(ptrs[i]).value(), 1024 + i);
  }
  for (auto p : ptrs) f.interposer.free(p);
  EXPECT_EQ(f.posix.stats().bytes_in_use, 0u);
}

}  // namespace
}  // namespace hmem::runtime
