// Tests for the placement policies and the auto-hbwmalloc interposer
// (Algorithm 1 mechanics: size filter, decision cache, budget enforcement,
// alternate-region free routing).
#include <gtest/gtest.h>

#include "advisor/advisor.hpp"
#include "alloc/allocators.hpp"
#include "callstack/modulemap.hpp"
#include "callstack/unwind.hpp"
#include "common/units.hpp"
#include "runtime/auto_hbwmalloc.hpp"
#include "runtime/policy.hpp"

namespace hmem::runtime {
namespace {

using advisor::ObjectInfo;

constexpr alloc::Address kDdr = 0x100000000ULL;
constexpr alloc::Address kHbm = 0x4000000000ULL;

callstack::SymbolicCallStack stack_of(const std::string& fn, int depth = 3) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  for (int i = 1; i < depth; ++i) {
    s.frames.push_back(
        callstack::CodeLocation{"app.x", "caller" + std::to_string(i),
                                static_cast<std::uint32_t>(i)});
  }
  return s;
}

ObjectInfo selected_object(const std::string& name, std::uint64_t size,
                           std::uint64_t misses) {
  ObjectInfo o;
  o.name = name;
  o.max_size_bytes = size;
  o.llc_misses = misses;
  o.stack = stack_of("alloc_" + name);
  return o;
}

// ------------------------------------------------------------ baselines ----

TEST(DdrPolicy, EverythingInSlow) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  DdrPolicy policy(posix);
  const auto out = policy.allocate(1 << 20, stack_of("x"));
  EXPECT_NE(out.addr, 0u);
  EXPECT_FALSE(out.promoted);
  EXPECT_TRUE(posix.owns(out.addr));
  EXPECT_GT(policy.deallocate(out.addr), 0.0);
}

TEST(NumactlPolicy, FcfsUntilExhaustedThenFallback) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  alloc::MemkindAllocator hbw(kHbm, 3ULL << 20);
  NumactlPolicy policy(posix, hbw);
  // Three 1 MiB allocations fill the fast tier; the fourth falls to DDR.
  for (int i = 0; i < 3; ++i) {
    const auto out = policy.allocate(1 << 20, stack_of("x"));
    EXPECT_TRUE(out.promoted) << i;
  }
  const auto spill = policy.allocate(1 << 20, stack_of("x"));
  EXPECT_NE(spill.addr, 0u);
  EXPECT_FALSE(spill.promoted);
  EXPECT_TRUE(posix.owns(spill.addr));
}

TEST(NumactlPolicy, StaticsPreferredToo) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  alloc::MemkindAllocator hbw(kHbm, 1ULL << 20);
  NumactlPolicy policy(posix, hbw);
  const auto out = policy.allocate_static(4096);
  EXPECT_TRUE(out.promoted);
}

TEST(NumactlPolicy, SkipsOversizedButKeepsFilling) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  alloc::MemkindAllocator hbw(kHbm, 2ULL << 20);
  NumactlPolicy policy(posix, hbw);
  // Oversized object falls through, smaller one still lands fast.
  EXPECT_FALSE(policy.allocate(4 << 20, stack_of("big")).promoted);
  EXPECT_TRUE(policy.allocate(1 << 20, stack_of("small")).promoted);
}

TEST(AutoHbwLibPolicy, SizeThresholdRouting) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  alloc::MemkindAllocator hbw(kHbm, 1ULL << 30);
  AutoHbwLibPolicy policy(posix, hbw, 1 << 20);
  EXPECT_FALSE(policy.allocate((1 << 20) - 1, stack_of("s")).promoted);
  EXPECT_TRUE(policy.allocate(1 << 20, stack_of("s")).promoted);
  EXPECT_TRUE(policy.allocate(64 << 20, stack_of("s")).promoted);
}

TEST(Policies, FreeRoutesToOwningAllocator) {
  alloc::PosixAllocator posix(kDdr, 1ULL << 30);
  alloc::MemkindAllocator hbw(kHbm, 1ULL << 30);
  AutoHbwLibPolicy policy(posix, hbw, 1 << 20);
  const auto fast = policy.allocate(2 << 20, stack_of("s"));
  const auto slow = policy.allocate(100, stack_of("s"));
  policy.deallocate(fast.addr);
  policy.deallocate(slow.addr);
  EXPECT_EQ(hbw.stats().bytes_in_use, 0u);
  EXPECT_EQ(posix.stats().bytes_in_use, 0u);
}

// ------------------------------------------------------- auto-hbwmalloc ----

struct Fixture {
  Fixture(std::vector<ObjectInfo> selected, std::uint64_t budget,
          AutoHbwOptions options = {}, std::uint64_t hbw_capacity = 1ULL << 30)
      : posix(kDdr, 1ULL << 30), hbw(kHbm, hbw_capacity) {
    modules.add_module("app.x", 0x400000, 1 << 20);
    modules.randomize_slides(1234);
    advisor::Placement placement;
    advisor::TierPlacement fast_tier;
    fast_tier.tier_name = "mcdram";
    fast_tier.budget_bytes = budget;
    fast_tier.objects = std::move(selected);
    placement.tiers.push_back(fast_tier);
    placement.tiers.push_back(advisor::TierPlacement{"ddr", 1ULL << 40, {},
                                                     0, 0});
    std::uint64_t lb = ~0ULL, ub = 0;
    for (const auto& o : placement.tiers[0].objects) {
      lb = std::min(lb, o.max_size_bytes);
      ub = std::max(ub, o.max_size_bytes);
    }
    placement.lb_size = ub == 0 ? 0 : lb;
    placement.ub_size = ub;
    placement.enforced_fast_budget_bytes = budget;
    unwinder = std::make_unique<callstack::Unwinder>(modules);
    translator = std::make_unique<callstack::Translator>(modules);
    malloc_lib = std::make_unique<AutoHbwMalloc>(placement, posix, hbw,
                                                 *unwinder, *translator,
                                                 options);
  }

  alloc::PosixAllocator posix;
  alloc::MemkindAllocator hbw;
  callstack::ModuleMap modules;
  std::unique_ptr<callstack::Unwinder> unwinder;
  std::unique_ptr<callstack::Translator> translator;
  std::unique_ptr<AutoHbwMalloc> malloc_lib;
};

TEST(AutoHbwMalloc, SelectedSitePromotedOthersNot) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  const auto hot = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  EXPECT_TRUE(hot.promoted);
  EXPECT_TRUE(f.hbw.owns(hot.addr));
  const auto cold = f.malloc_lib->allocate(1 << 20, stack_of("alloc_cold"));
  EXPECT_FALSE(cold.promoted);
  EXPECT_TRUE(f.posix.owns(cold.addr));
  EXPECT_EQ(f.malloc_lib->stats().matched, 1u);
  EXPECT_EQ(f.malloc_lib->stats().promoted, 1u);
}

TEST(AutoHbwMalloc, SizeFilterShortCircuits) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  // Outside [lb, ub]: no unwind performed.
  f.malloc_lib->allocate(100, stack_of("alloc_hot"));
  EXPECT_EQ(f.unwinder->calls(), 0u);
  EXPECT_EQ(f.malloc_lib->stats().size_filtered_out, 1u);
  // Inside: unwind happens.
  f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  EXPECT_EQ(f.unwinder->calls(), 1u);
}

TEST(AutoHbwMalloc, SizeFilterCanBeDisabled) {
  AutoHbwOptions options;
  options.use_size_filter = false;
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20, options);
  f.malloc_lib->allocate(100, stack_of("alloc_hot"));
  EXPECT_EQ(f.unwinder->calls(), 1u);
  EXPECT_EQ(f.malloc_lib->stats().size_filtered_out, 0u);
}

TEST(AutoHbwMalloc, DecisionCacheSkipsTranslation) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  for (int i = 0; i < 5; ++i) {
    const auto out = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
    f.malloc_lib->deallocate(out.addr);
  }
  EXPECT_EQ(f.translator->calls(), 1u);  // only the first allocation
  EXPECT_EQ(f.malloc_lib->stats().cache_hits, 4u);
  EXPECT_EQ(f.malloc_lib->stats().cache_misses, 1u);
}

TEST(AutoHbwMalloc, CacheDisabledTranslatesEveryTime) {
  AutoHbwOptions options;
  options.use_decision_cache = false;
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20, options);
  for (int i = 0; i < 5; ++i) {
    const auto out = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
    f.malloc_lib->deallocate(out.addr);
  }
  EXPECT_EQ(f.translator->calls(), 5u);
}

TEST(AutoHbwMalloc, BudgetEnforcedAtRuntime) {
  // Advisor saw max_size = 1 MiB, but the site allocates repeatedly: the
  // runtime must stop at the budget, not at the advisor's estimate.
  Fixture f({selected_object("loop", 1 << 20, 1000)}, 3 << 20);
  int promoted = 0;
  std::vector<alloc::Address> ptrs;
  for (int i = 0; i < 5; ++i) {
    const auto out = f.malloc_lib->allocate(1 << 20, stack_of("alloc_loop"));
    ptrs.push_back(out.addr);
    if (out.promoted) ++promoted;
  }
  EXPECT_EQ(promoted, 3);
  EXPECT_TRUE(f.malloc_lib->stats().any_overflow);
  EXPECT_EQ(f.malloc_lib->stats().budget_rejections, 2u);
  EXPECT_EQ(f.malloc_lib->stats().fast_hwm, 3u << 20);
  // Freeing releases budget for later allocations.
  for (auto p : ptrs) f.malloc_lib->deallocate(p);
  EXPECT_EQ(f.malloc_lib->stats().fast_bytes_in_use, 0u);
  EXPECT_TRUE(
      f.malloc_lib->allocate(1 << 20, stack_of("alloc_loop")).promoted);
}

TEST(AutoHbwMalloc, PhysicalCapacityAlsoChecked) {
  // Budget larger than the physical arena: FITS must fail on the arena.
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 1ULL << 30,
            AutoHbwOptions{}, /*hbw_capacity=*/2 << 20);
  EXPECT_TRUE(f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot")).promoted);
  EXPECT_TRUE(f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot")).promoted);
  const auto third = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  EXPECT_FALSE(third.promoted);
  EXPECT_NE(third.addr, 0u);  // fell back to the default allocator
}

TEST(AutoHbwMalloc, FreeRoutedViaRegionAnnotation) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  const auto fast = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  const auto slow = f.malloc_lib->allocate(1 << 20, stack_of("alloc_other"));
  f.malloc_lib->deallocate(fast.addr);
  f.malloc_lib->deallocate(slow.addr);
  EXPECT_EQ(f.hbw.stats().bytes_in_use, 0u);
  EXPECT_EQ(f.posix.stats().bytes_in_use, 0u);
  EXPECT_EQ(f.malloc_lib->stats().fast_bytes_in_use, 0u);
}

TEST(AutoHbwMalloc, PerSiteStatsAccumulate) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  ASSERT_EQ(f.malloc_lib->site_stats().size(), 1u);
  EXPECT_EQ(f.malloc_lib->site_stats()[0].allocations, 2u);
  EXPECT_EQ(f.malloc_lib->site_stats()[0].bytes, 2u << 20);
}

TEST(AutoHbwMalloc, OverheadChargedInOutcome) {
  Fixture f({selected_object("hot", 1 << 20, 1000)}, 64 << 20);
  const auto out = f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot"));
  // Must include at least the unwind + translate cost for depth-3 stacks.
  const auto& cost = f.unwinder->cost_model();
  EXPECT_GT(out.cost_ns, cost.unwind_ns(3));
}

TEST(AutoHbwMalloc, DifferentCallPathsSameLeafDistinct) {
  // Same innermost function but different callers: distinct call-stacks, so
  // only the exact selected path is promoted.
  auto sel = selected_object("hot", 1 << 20, 1000);
  sel.stack = stack_of("alloc_hot", 4);
  Fixture f({sel}, 64 << 20);
  EXPECT_TRUE(
      f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot", 4)).promoted);
  EXPECT_FALSE(
      f.malloc_lib->allocate(1 << 20, stack_of("alloc_hot", 5)).promoted);
}

}  // namespace
}  // namespace hmem::runtime
