// Cross-module integration tests: the full four-stage framework on the
// paper's workloads, checking the headline behaviours the evaluation
// section reports (who wins where, and why).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/aggregator.hpp"
#include "apps/workloads.hpp"
#include "common/units.hpp"
#include "engine/experiment.hpp"
#include "engine/pipeline.hpp"
#include "trace/tracefile.hpp"

namespace hmem::engine {
namespace {

RunResult run_condition(const apps::AppSpec& app, Condition condition) {
  RunOptions opts;
  opts.condition = condition;
  return run_app(app, opts);
}

TEST(Integration, HpcgFrameworkBeatsEveryBaseline) {
  // Paper: "Our framework provides best results for HPCG", ~+79% over DDR
  // and ~+25% over the second best (cache mode).
  const auto app = apps::make_hpcg();
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  base.advisor.strategy = advisor::Strategy::kMisses;
  base.advisor.threshold_pct = 5.0;
  const auto pipeline = run_pipeline(app, base);

  const auto ddr = run_condition(app, Condition::kDdr);
  const auto cache = run_condition(app, Condition::kCacheMode);
  const auto numactl = run_condition(app, Condition::kNumactl);

  const double framework = pipeline.production_run.fom;
  EXPECT_GT(framework, ddr.fom * 1.5);    // large gain over DDR
  EXPECT_GT(framework, cache.fom * 1.1);  // clearly above cache mode
  EXPECT_GT(cache.fom, numactl.fom);      // cache is HPCG's second best
}

TEST(Integration, HpcgTopTwoObjectsCarryTheGain) {
  // Paper: "the fastest cases of HPCG ... reach their maximum performance by
  // placing 2 ... data objects into fast memory".
  const auto app = apps::make_hpcg();
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  base.advisor.threshold_pct = 5.0;
  const auto pipeline = run_pipeline(app, base);
  EXPECT_LE(pipeline.placement.fast().objects.size(), 3u);
  EXPECT_GE(pipeline.placement.fast().objects.size(), 1u);
}

TEST(Integration, LuleshCacheModeWins) {
  // Paper: cache mode is superior for Lulesh; autohbw *hurts* (-8%).
  const auto app = apps::make_lulesh();
  const auto ddr = run_condition(app, Condition::kDdr);
  const auto cache = run_condition(app, Condition::kCacheMode);
  const auto autohbw = run_condition(app, Condition::kAutoHbw);

  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  base.advisor.strategy = advisor::Strategy::kDensity;
  const auto pipeline = run_pipeline(app, base);

  EXPECT_GT(cache.fom, ddr.fom * 1.2);
  EXPECT_GT(cache.fom, pipeline.production_run.fom);  // cache beats framework
  EXPECT_LT(autohbw.fom, ddr.fom * 1.01);  // autohbw at or below DDR
}

TEST(Integration, LuleshVirtualBudgetMitigation) {
  // Paper: pretending 512 MiB while enforcing 256 MiB shortens the gap —
  // the advisor's static-address-space assumption under-commits on
  // phase-scoped transients.
  const auto app = apps::make_lulesh();
  PipelineOptions plain;
  plain.fast_budget_per_rank = 256ULL << 20;
  plain.advisor.strategy = advisor::Strategy::kDensity;
  const auto without = run_pipeline(app, plain);

  PipelineOptions mitigated = plain;
  mitigated.advisor.virtual_budget_bytes = 512ULL << 20;
  const auto with = run_pipeline(app, mitigated);

  EXPECT_GT(with.production_run.fom, without.production_run.fom * 0.98);
  // The virtual budget must select at least as many objects.
  EXPECT_GE(with.placement.fast().objects.size(),
            without.placement.fast().objects.size());
}

TEST(Integration, BtNumactlWinsBecauseItFits) {
  // Paper: BT's working set fits MCDRAM, so numactl -p 1 carries statics
  // and stack too and wins marginally.
  const auto app = apps::make_nas_bt();
  const auto ddr = run_condition(app, Condition::kDdr);
  const auto numactl = run_condition(app, Condition::kNumactl);
  const auto cache = run_condition(app, Condition::kCacheMode);
  EXPECT_GT(numactl.fom, ddr.fom * 2.5);  // huge gain: everything promoted
  EXPECT_GT(numactl.fom, cache.fom);      // flat beats cache mode
}

TEST(Integration, CgpopFlatAcrossBudgets) {
  // Paper: CGPOP's critical set already fits at 32 MiB/rank, "so adding
  // more memory does not provide any benefit".
  const auto app = apps::make_cgpop();
  PipelineOptions base;
  base.advisor.strategy = advisor::Strategy::kMisses;
  std::vector<double> foms;
  for (const std::uint64_t budget : {32ULL << 20, 256ULL << 20}) {
    PipelineOptions opts = base;
    opts.fast_budget_per_rank = budget;
    foms.push_back(run_pipeline(app, opts).production_run.fom);
  }
  EXPECT_NEAR(foms[0], foms[1], foms[0] * 0.03);
}

TEST(Integration, SnapStackTrafficKeepsFrameworkBehindNumactl) {
  // Paper: SNAP's outer_src_calc spills registers to the stack; the
  // framework cannot promote stack data, numactl can.
  const auto app = apps::make_snap();
  const auto numactl = run_condition(app, Condition::kNumactl);
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  const auto pipeline = run_pipeline(app, base);
  EXPECT_GT(numactl.fom, pipeline.production_run.fom);
  // And the profile shows unattributed (stack) samples.
  EXPECT_GT(pipeline.report.unattributed_fraction(), 0.1);
}

TEST(Integration, SnapDensityHwmAnomaly) {
  // Paper: with 256 MiB budgets the density strategy promotes the small
  // chunks and the large flux buffer no longer fits: far less MCDRAM used
  // than under the misses strategy.
  const auto app = apps::make_snap();
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;

  PipelineOptions density = base;
  density.advisor.strategy = advisor::Strategy::kDensity;
  const auto density_run = run_pipeline(app, density);

  PipelineOptions misses = base;
  misses.advisor.strategy = advisor::Strategy::kMisses;
  const auto misses_run = run_pipeline(app, misses);

  EXPECT_LT(density_run.production_run.fast_hwm_bytes, 100ULL << 20);
  EXPECT_GT(misses_run.production_run.fast_hwm_bytes, 150ULL << 20);
}

TEST(Integration, GtcpDensityBeatsMissesAtSmallBudgets) {
  // Paper: GTC-P is one of the cases where the density strategy behaves
  // better (small dense grid arrays vs large particle arrays).
  const auto app = apps::make_gtcp();
  PipelineOptions base;
  base.fast_budget_per_rank = 128ULL << 20;
  PipelineOptions density = base;
  density.advisor.strategy = advisor::Strategy::kDensity;
  PipelineOptions misses = base;
  misses.advisor.strategy = advisor::Strategy::kMisses;
  EXPECT_GT(run_pipeline(app, density).production_run.fom,
            run_pipeline(app, misses).production_run.fom * 1.05);
}

TEST(Integration, MaxwCacheSlightlySuperior) {
  const auto app = apps::make_maxw_dgtd();
  const auto cache = run_condition(app, Condition::kCacheMode);
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  base.advisor.threshold_pct = 5.0;
  const auto pipeline = run_pipeline(app, base);
  EXPECT_GT(cache.fom, pipeline.production_run.fom * 0.99);
  EXPECT_LT(cache.fom, pipeline.production_run.fom * 1.15);  // "slightly"
}

TEST(Integration, TraceFileRoundTripPreservesAggregation) {
  // Serialise the stage-1 trace to text, read it back, and verify stage 2
  // produces identical per-object statistics.
  const auto app = apps::make_minife();
  RunOptions opts;
  opts.profile = true;
  const auto profiled = run_app(app, opts);
  ASSERT_NE(profiled.trace, nullptr);

  std::ostringstream os;
  trace::write_trace(os, *profiled.sites, *profiled.trace);
  callstack::SiteDb sites2;
  trace::TraceBuffer buf2;
  std::istringstream is(os.str());
  trace::read_trace(is, sites2, buf2);

  const auto direct = analysis::aggregate_trace(*profiled.trace,
                                                *profiled.sites);
  const auto roundtrip = analysis::aggregate_trace(buf2, sites2);
  ASSERT_EQ(direct.objects.size(), roundtrip.objects.size());
  for (std::size_t i = 0; i < direct.objects.size(); ++i) {
    EXPECT_EQ(direct.objects[i].name, roundtrip.objects[i].name);
    EXPECT_EQ(direct.objects[i].llc_misses, roundtrip.objects[i].llc_misses);
    EXPECT_EQ(direct.objects[i].max_size_bytes,
              roundtrip.objects[i].max_size_bytes);
  }
}

TEST(Integration, MonitoringOverheadStaysSmall) {
  // Table I: monitoring overhead between 0.15% and 4.1%.
  for (const auto& app : {apps::make_hpcg(), apps::make_snap()}) {
    RunOptions opts;
    opts.profile = true;
    const auto r = run_app(app, opts);
    EXPECT_GT(r.monitoring_overhead, 0.0) << app.name;
    EXPECT_LT(r.monitoring_overhead, 0.06) << app.name;
  }
}

TEST(Integration, StaticRecommendationsSurfaceForCgpop) {
  // CGPOP's remaining statics should appear as advisory output (they can
  // only be migrated by editing the code).
  const auto app = apps::make_cgpop();
  PipelineOptions base;
  base.fast_budget_per_rank = 256ULL << 20;
  const auto pipeline = run_pipeline(app, base);
  bool found = false;
  for (const auto& rec : pipeline.placement.static_recommendations) {
    if (rec.name == "halo_tables") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hmem::engine
