// Tests for the PEBS-style sampler.
#include <gtest/gtest.h>

#include "pebs/sampler.hpp"

namespace hmem::pebs {
namespace {

TEST(PebsSampler, StrictPeriodWithoutJitter) {
  SamplerConfig cfg;
  cfg.period = 100;
  cfg.jitter = 0.0;
  PebsSampler sampler(cfg);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (sampler.on_llc_miss(static_cast<double>(i), 0x1000, false)) ++fired;
  }
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sampler.samples_taken(), 10u);
  EXPECT_EQ(sampler.misses_seen(), 1000u);
}

TEST(PebsSampler, SampleCarriesAddressAndWeight) {
  SamplerConfig cfg;
  cfg.period = 3;
  cfg.jitter = 0.0;
  PebsSampler sampler(cfg);
  sampler.on_llc_miss(0, 0xa, false);
  sampler.on_llc_miss(1, 0xb, false);
  const auto rec = sampler.on_llc_miss(2, 0xc, true);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->addr, 0xcu);
  EXPECT_TRUE(rec->is_write);
  EXPECT_EQ(rec->weight, 3u);
}

TEST(PebsSampler, JitterStaysBounded) {
  SamplerConfig cfg;
  cfg.period = 1000;
  cfg.jitter = 0.10;
  PebsSampler sampler(cfg);
  std::uint64_t last_fire = 0;
  std::uint64_t n = 0;
  for (std::uint64_t i = 1; i <= 200000; ++i) {
    if (sampler.on_llc_miss(0, 0, false)) {
      if (last_fire != 0) {
        const std::uint64_t gap = i - last_fire;
        EXPECT_GE(gap, 900u);
        EXPECT_LE(gap, 1100u);
      }
      last_fire = i;
      ++n;
    }
  }
  EXPECT_NEAR(static_cast<double>(n), 200.0, 6.0);
}

TEST(PebsSampler, DeterministicForSameSeed) {
  SamplerConfig cfg;
  cfg.period = 37589;
  cfg.seed = 99;
  PebsSampler a(cfg), b(cfg);
  for (int i = 0; i < 200000; ++i) {
    EXPECT_EQ(a.on_llc_miss(0, 0, false).has_value(),
              b.on_llc_miss(0, 0, false).has_value());
  }
}

TEST(PebsSampler, WeightedFeedMatchesUnitFeed) {
  SamplerConfig cfg;
  cfg.period = 500;
  cfg.jitter = 0.0;
  PebsSampler unit(cfg), bulk(cfg);
  std::uint64_t unit_fires = 0;
  for (int i = 0; i < 10000; ++i) {
    if (unit.on_llc_miss(0, 0, false)) ++unit_fires;
  }
  std::uint64_t bulk_fires = 0;
  for (int i = 0; i < 100; ++i) {
    bulk_fires += bulk.on_llc_misses(0, 0, false, 100);
  }
  EXPECT_EQ(unit_fires, bulk_fires);
  EXPECT_EQ(unit.misses_seen(), bulk.misses_seen());
}

TEST(PebsSampler, BulkFeedLargerThanPeriodFiresMultiple) {
  SamplerConfig cfg;
  cfg.period = 100;
  cfg.jitter = 0.0;
  PebsSampler sampler(cfg);
  EXPECT_EQ(sampler.on_llc_misses(0, 0, false, 1000), 10u);
}

TEST(PebsSampler, PaperPeriodSamplesAtPaperRate) {
  // 1.5e8 misses at 1/37589 -> ~3990 samples (Table I's order of magnitude).
  SamplerConfig cfg;  // default period 37589
  PebsSampler sampler(cfg);
  std::uint64_t fires = 0;
  for (int i = 0; i < 1500; ++i) {
    fires += sampler.on_llc_misses(0, 0, false, 100000);
  }
  EXPECT_NEAR(static_cast<double>(fires), 1.5e8 / 37589.0, 50.0);
}

TEST(PebsSampler, ResetRestartsCounters) {
  SamplerConfig cfg;
  cfg.period = 10;
  cfg.jitter = 0.0;
  PebsSampler sampler(cfg);
  sampler.on_llc_misses(0, 0, false, 95);
  sampler.reset();
  EXPECT_EQ(sampler.misses_seen(), 0u);
  EXPECT_EQ(sampler.samples_taken(), 0u);
  // After reset the countdown is re-armed to the full period.
  std::uint64_t fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += sampler.on_llc_miss(0, 0, false).has_value() ? 1 : 0;
  }
  EXPECT_EQ(fires, 1u);
}

}  // namespace
}  // namespace hmem::pebs
