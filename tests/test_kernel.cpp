// The compiled access kernels (engine/kernel/): selection ladder, IR
// verifier, W^X executable allocator, and — the load-bearing property —
// differential bit-identity of every backend against the interpreter
// oracle across the bundled workloads, machine presets and placement
// conditions. The kernels exist purely as a faster execution strategy for
// the same semantics; any observable divergence is a bug here, never a
// tolerance.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/generator.hpp"
#include "apps/workloads.hpp"
#include "common/exec_alloc.hpp"
#include "engine/execution.hpp"
#include "engine/kernel/ir.hpp"
#include "engine/kernel/kernel.hpp"
#include "engine/kernel/native.hpp"
#include "engine/pipeline.hpp"
#include "memsim/machine.hpp"

namespace hmem {
namespace {

using engine::kernel::KernelKind;

// ---- selection ladder ------------------------------------------------------

TEST(KernelSelect, ParseAndNameRoundTrip) {
  for (const char* name : {"auto", "interp", "bytecode", "native"}) {
    const auto kind = engine::kernel::parse_kernel(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_STREQ(engine::kernel::kernel_name(*kind), name);
  }
  EXPECT_FALSE(engine::kernel::parse_kernel("jit").has_value());
  EXPECT_FALSE(engine::kernel::parse_kernel("").has_value());
  EXPECT_FALSE(engine::kernel::parse_kernel("Native").has_value());
  EXPECT_NE(engine::kernel::kernel_list().find("bytecode"),
            std::string::npos);
}

TEST(KernelSelect, LadderNeverFailsAndNeverReturnsAuto) {
  unsetenv("HMEM_KERNEL");
  // auto defaults to bytecode; interp is always honoured.
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kAuto, false, false),
            KernelKind::kBytecode);
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kInterp, false, false),
            KernelKind::kInterp);
  // Cache mode runs the interpreter regardless of the request.
  for (const KernelKind k : {KernelKind::kAuto, KernelKind::kInterp,
                             KernelKind::kBytecode, KernelKind::kNative}) {
    EXPECT_EQ(engine::kernel::resolve_kernel(k, true, false),
              KernelKind::kInterp);
  }
  // Profiled runs cap at bytecode (miss-record collection).
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kNative, false, true),
            KernelKind::kBytecode);
  // An explicit native request degrades to bytecode when the backend is
  // compiled out or the host refuses executable pages — never an error.
  const KernelKind native =
      engine::kernel::resolve_kernel(KernelKind::kNative, false, false);
  if (engine::kernel::native_available()) {
    EXPECT_EQ(native, KernelKind::kNative);
  } else {
    EXPECT_EQ(native, KernelKind::kBytecode);
  }
}

TEST(KernelSelect, EnvVarSteersAutoOnly) {
  setenv("HMEM_KERNEL", "interp", 1);
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kAuto, false, false),
            KernelKind::kInterp);
  // Explicit requests ignore the env var.
  EXPECT_EQ(
      engine::kernel::resolve_kernel(KernelKind::kBytecode, false, false),
      KernelKind::kBytecode);
  // A typo'd value keeps the default instead of aborting the run.
  setenv("HMEM_KERNEL", "turbo", 1);
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kAuto, false, false),
            KernelKind::kBytecode);
  // "auto" in the env cannot recurse.
  setenv("HMEM_KERNEL", "auto", 1);
  EXPECT_EQ(engine::kernel::resolve_kernel(KernelKind::kAuto, false, false),
            KernelKind::kBytecode);
  unsetenv("HMEM_KERNEL");
}

// ---- IR verifier -----------------------------------------------------------

/// A minimal valid two-slot program (two stack blocks), no machine needed.
engine::kernel::Program valid_program() {
  using engine::kernel::Insn;
  using engine::kernel::Op;
  engine::kernel::Program p;
  p.threshold = {1, 2};
  p.alias = {1, 0};
  p.coin_mask = 1;
  p.write_threshold = 512;
  p.write_shift = 53;
  p.n_tiers = 2;
  p.llc_latency_ns = 10.0;
  Insn stack0;
  stack0.op = Op::kStackAddr;
  stack0.imm0 = 1ULL << 16;
  stack0.imm1 = 96;
  Insn serve0;
  serve0.op = Op::kServeFixed;
  serve0.a = 0;
  serve0.f = 130.0;
  Insn stack1 = stack0;
  stack1.imm0 = 1ULL << 30;
  stack1.imm1 = 64;
  Insn serve1 = serve0;
  serve1.a = 1;
  serve1.f = 155.0;
  p.code = {stack0, serve0, stack1, serve1};
  p.block_start = {0, 2};
  return p;
}

TEST(KernelVerifier, AcceptsTheValidProgram) {
  EXPECT_EQ(engine::kernel::verify_program(valid_program()), "");
}

TEST(KernelVerifier, RejectsEveryStructuralDefect) {
  using engine::kernel::Op;
  using engine::kernel::Program;
  const Program good = valid_program();
  const auto reject = [](Program p, const char* what) {
    const std::string problem = engine::kernel::verify_program(p);
    EXPECT_FALSE(problem.empty()) << "defect not caught: " << what;
  };
  reject(Program{}, "empty program");
  {
    Program p = good;
    p.alias.pop_back();
    reject(p, "threshold/alias size mismatch");
  }
  {
    Program p = good;
    p.block_start.pop_back();
    reject(p, "missing block");
  }
  {
    Program p = good;
    p.coin_mask = 2;  // not a low-bit mask
    reject(p, "bad coin mask");
  }
  {
    Program p = good;
    p.write_shift = 64;
    reject(p, "write shift out of range");
  }
  {
    Program p = good;
    p.write_threshold = 1ULL << 12;  // > 2^(64-53)
    reject(p, "write threshold above coin range");
  }
  {
    Program p = good;
    p.n_tiers = 0;
    reject(p, "no tiers");
  }
  {
    Program p = good;
    p.threshold[0] = 3;  // > coin_mask + 1
    reject(p, "threshold above coin range");
  }
  {
    Program p = good;
    p.alias[1] = 9;
    reject(p, "alias column out of range");
  }
  {
    Program p = good;
    p.block_start[1] = 99;
    reject(p, "block start out of range");
  }
  {
    Program p = good;
    p.block_start[1] = 3;  // starts at a serve op
    reject(p, "block starts mid-block");
  }
  {
    Program p = good;
    p.code[0].imm1 = 0;
    reject(p, "stack with zero lines");
  }
  {
    Program p = good;
    p.code[1].op = Op::kServePicked;
    reject(p, "stack block must end in serve_fixed");
  }
  {
    Program p = good;
    p.code[1].a = 7;
    reject(p, "serve tier out of range");
  }
  {
    Program p = good;
    p.code.resize(3);  // truncates slot 1's serve
    reject(p, "truncated block");
  }
}

TEST(KernelVerifier, RejectsObjectBlockDefects) {
  using engine::kernel::Insn;
  using engine::kernel::InstanceSlot;
  using engine::kernel::Op;
  using engine::kernel::Program;
  apps::ObjectSpec spec;
  spec.name = "obj";
  spec.size_bytes = 64 * 64;
  apps::AccessGenerator gen(spec, 7);

  Program p = valid_program();
  // Replace slot 1 with a pick block over a two-instance pool.
  InstanceSlot a;
  a.base = 1ULL << 20;
  a.latency_ns = 130.0;
  a.tier = 0;
  InstanceSlot b = a;
  b.base = 1ULL << 21;
  b.tier = 1;
  p.instances = {a, b};
  p.gens = {&gen};
  Insn pick;
  pick.op = Op::kPickAddr;
  pick.imm0 = 0;
  pick.a = 2;
  Insn off;
  off.op = Op::kAddGenOffset;
  off.a = 0;
  off.imm0 = spec.size_bytes;
  Insn serve;
  serve.op = Op::kServePicked;
  p.code.resize(2);
  p.code.push_back(pick);
  p.code.push_back(off);
  p.code.push_back(serve);
  ASSERT_EQ(engine::kernel::verify_program(p), "");

  const auto reject = [](Program bad, const char* what) {
    EXPECT_FALSE(engine::kernel::verify_program(bad).empty())
        << "defect not caught: " << what;
  };
  {
    Program q = p;
    q.code[2].a = 0;
    reject(q, "pick with zero instances");
  }
  {
    Program q = p;
    q.code[2].imm0 = 1;  // 1 + 2 > pool of 2
    reject(q, "instance range out of pool");
  }
  {
    Program q = p;
    q.instances[1].tier = 5;
    reject(q, "instance tier out of range");
  }
  {
    Program q = p;
    q.code[3].a = 3;
    reject(q, "generator out of range");
  }
  {
    Program q = p;
    q.code[3].imm0 = 0;
    reject(q, "zero-size offset clamp");
  }
  {
    Program q = p;
    q.gens[0] = nullptr;
    reject(q, "null generator");
  }
  {
    Program q = p;
    q.code[4].op = Op::kServeFixed;
    reject(q, "pick block must end in serve_picked");
  }
}

// ---- executable allocator --------------------------------------------------

TEST(ExecAlloc, AllocateSealExecuteRelease) {
  if (!ExecutableAllocator::supported()) {
    GTEST_SKIP() << "no executable mappings on this platform";
  }
  ExecutableAllocator alloc;
  EXPECT_EQ(alloc.allocate(0), nullptr);
  void* p = alloc.allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(alloc.region_count(), 1u);
#if defined(__x86_64__)
  // mov eax, 42; ret
  const unsigned char code[] = {0xB8, 0x2A, 0x00, 0x00, 0x00, 0xC3};
  std::memcpy(p, code, sizeof(code));
  if (alloc.seal(p)) {
    const auto fn = reinterpret_cast<int (*)()>(p);
    EXPECT_EQ(fn(), 42);
  }
#else
  // Sealing must still flip protections without corrupting the region.
  std::memset(p, 0, 64);
  (void)alloc.seal(p);
#endif
  alloc.release(p);
  EXPECT_EQ(alloc.region_count(), 0u);
  // Foreign pointers are ignored, not unmapped.
  int local = 0;
  alloc.release(&local);
}

TEST(ExecAlloc, RegionsAreIndependent) {
  if (!ExecutableAllocator::supported()) {
    GTEST_SKIP() << "no executable mappings on this platform";
  }
  ExecutableAllocator alloc;
  void* a = alloc.allocate(4096);
  void* b = alloc.allocate(1);  // rounds up to a whole page
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.region_count(), 2u);
  alloc.release(a);
  EXPECT_EQ(alloc.region_count(), 1u);
  std::memset(b, 0xCC, 1);  // b stays writable until sealed
  // The destructor unmaps b.
}

// ---- differential bit-identity ---------------------------------------------

void expect_same_run(const engine::RunResult& oracle,
                     const engine::RunResult& got, const std::string& label) {
  EXPECT_EQ(got.fom, oracle.fom) << label;
  EXPECT_EQ(got.time_s, oracle.time_s) << label;
  EXPECT_EQ(got.llc_misses, oracle.llc_misses) << label;
  EXPECT_EQ(got.fast_hwm_bytes, oracle.fast_hwm_bytes) << label;
  EXPECT_EQ(got.total_hwm_bytes, oracle.total_hwm_bytes) << label;
  EXPECT_EQ(got.achieved_bw_gbs, oracle.achieved_bw_gbs) << label;
  EXPECT_EQ(got.migration_bytes, oracle.migration_bytes) << label;
  EXPECT_EQ(got.migration_count, oracle.migration_count) << label;
  EXPECT_EQ(got.migration_cost_s, oracle.migration_cost_s) << label;
  EXPECT_EQ(got.alloc_calls, oracle.alloc_calls) << label;
  ASSERT_EQ(got.tier_traffic.size(), oracle.tier_traffic.size()) << label;
  for (std::size_t t = 0; t < oracle.tier_traffic.size(); ++t) {
    EXPECT_EQ(got.tier_traffic[t].name, oracle.tier_traffic[t].name) << label;
    EXPECT_EQ(got.tier_traffic[t].bytes, oracle.tier_traffic[t].bytes)
        << label << " tier " << t;
    EXPECT_EQ(got.tier_traffic[t].migration_bytes,
              oracle.tier_traffic[t].migration_bytes)
        << label << " tier " << t;
  }
}

/// Kernels actually distinct on this build: interp and bytecode always,
/// native only where available (elsewhere it resolves to bytecode, which
/// the ladder test covers).
std::vector<KernelKind> compiled_kernels() {
  std::vector<KernelKind> kernels = {KernelKind::kBytecode};
  if (engine::kernel::native_available()) {
    kernels.push_back(KernelKind::kNative);
  }
  return kernels;
}

/// Shrinks a bundled app so the full differential matrix stays fast while
/// still crossing several phase boundaries (epoch-driven recompiles).
apps::AppSpec shrink(apps::AppSpec app) {
  app.iterations = std::min<std::uint64_t>(app.iterations, 2);
  app.accesses_per_iteration =
      std::min<std::uint64_t>(app.accesses_per_iteration, 30000);
  return app;
}

std::vector<apps::AppSpec> differential_apps() {
  std::vector<apps::AppSpec> specs = apps::all_apps();
  for (apps::AppSpec& app : apps::phase_shift_apps()) {
    specs.push_back(app);
  }
  for (apps::AppSpec& app : specs) app = shrink(app);
  return specs;
}

TEST(KernelDifferential, BaselineConditionsOnKnl) {
  const memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  for (const apps::AppSpec& app : differential_apps()) {
    for (const engine::Condition condition :
         {engine::Condition::kDdr, engine::Condition::kNumactl,
          engine::Condition::kAutoHbw}) {
      engine::RunOptions opts;
      opts.condition = condition;
      opts.node = node;
      opts.kernel = KernelKind::kInterp;
      const engine::RunResult oracle = engine::run_app(app, opts);
      for (const KernelKind k : compiled_kernels()) {
        opts.kernel = k;
        expect_same_run(oracle, engine::run_app(app, opts),
                        app.name + "/" +
                            engine::condition_name(condition) + "/" +
                            engine::kernel::kernel_name(k));
      }
    }
  }
}

TEST(KernelDifferential, FrameworkAndDynamicAcrossAllPresets) {
  const std::pair<const char*, memsim::MachineConfig> presets[] = {
      {"knl", memsim::MachineConfig::knl7250(memsim::MemMode::kFlat)},
      {"spr-hbm", memsim::MachineConfig::spr_hbm(memsim::MemMode::kFlat)},
      {"ddr-cxl", memsim::MachineConfig::ddr_cxl(memsim::MemMode::kFlat)},
      {"hbm-ddr-pmem",
       memsim::MachineConfig::hbm_ddr_pmem(memsim::MemMode::kFlat)},
  };
  for (const apps::AppSpec& app : differential_apps()) {
    for (const auto& [preset_name, node] : presets) {
      // One pipeline per (app, preset) produces the placement and the
      // per-phase schedule both conditions consume.
      engine::PipelineOptions popts;
      popts.node = node;
      popts.per_phase = true;
      popts.sampler.period = 197;  // shrunk runs still need samples
      const engine::PipelineResult pipe = engine::run_pipeline(app, popts);

      for (const engine::Condition condition :
           {engine::Condition::kFramework, engine::Condition::kDynamic}) {
        engine::RunOptions opts;
        opts.condition = condition;
        opts.node = node;
        if (condition == engine::Condition::kFramework) {
          opts.placement = &pipe.placement;
        } else {
          opts.schedule = &pipe.schedule;
        }
        opts.kernel = KernelKind::kInterp;
        const engine::RunResult oracle = engine::run_app(app, opts);
        for (const KernelKind k : compiled_kernels()) {
          opts.kernel = k;
          expect_same_run(oracle, engine::run_app(app, opts),
                          app.name + "/" + preset_name + "/" +
                              engine::condition_name(condition) + "/" +
                              engine::kernel::kernel_name(k));
        }
      }
    }
  }
}

TEST(KernelDifferential, ProfiledRunsMatchTheOracle) {
  const memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  for (const char* name : {"hpcg", "churn"}) {
    const apps::AppSpec app = shrink(apps::app_by_name(name));
    engine::RunOptions opts;
    opts.condition = engine::Condition::kNumactl;
    opts.node = node;
    opts.profile = true;
    opts.sampler.period = 53;
    opts.kernel = KernelKind::kInterp;
    const engine::RunResult oracle = engine::run_app(app, opts);
    // Native resolves to bytecode when profiled; request it anyway so the
    // fallback is what actually executes.
    for (const KernelKind k : {KernelKind::kBytecode, KernelKind::kNative}) {
      opts.kernel = k;
      const engine::RunResult got = engine::run_app(app, opts);
      const std::string label =
          std::string(name) + "/profiled/" + engine::kernel::kernel_name(k);
      expect_same_run(oracle, got, label);
      EXPECT_EQ(got.samples, oracle.samples) << label;
      EXPECT_EQ(got.monitoring_overhead, oracle.monitoring_overhead) << label;
      ASSERT_NE(got.trace, nullptr) << label;
      ASSERT_NE(oracle.trace, nullptr) << label;
      EXPECT_EQ(got.trace->size(), oracle.trace->size()) << label;
    }
    EXPECT_GT(oracle.samples, 0u) << name;
  }
}

TEST(KernelDifferential, CacheModeIsKernelInvariant) {
  const apps::AppSpec app = shrink(apps::make_hpcg());
  engine::RunOptions opts;
  opts.condition = engine::Condition::kCacheMode;
  opts.node = memsim::MachineConfig::knl7250(memsim::MemMode::kCache);
  opts.kernel = KernelKind::kInterp;
  const engine::RunResult oracle = engine::run_app(app, opts);
  // The ladder forces the interpreter for the analytic cache model, so any
  // requested kernel must reproduce it exactly.
  for (const KernelKind k : {KernelKind::kBytecode, KernelKind::kNative}) {
    opts.kernel = k;
    expect_same_run(oracle, engine::run_app(app, opts),
                    std::string("cache-mode/") +
                        engine::kernel::kernel_name(k));
  }
}

}  // namespace
}  // namespace hmem
