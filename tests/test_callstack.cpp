// Unit tests for call-stack representation, ASLR module map, unwinder and
// translator cost model (Figure 3), and the allocation-site registry.
#include <gtest/gtest.h>

#include "callstack/callstack.hpp"
#include "callstack/modulemap.hpp"
#include "callstack/sitedb.hpp"
#include "callstack/unwind.hpp"

namespace hmem::callstack {
namespace {

SymbolicCallStack make_stack(int depth) {
  SymbolicCallStack s;
  for (int i = 0; i < depth; ++i) {
    s.frames.push_back(
        CodeLocation{"app.x", "fn" + std::to_string(i),
                     static_cast<std::uint32_t>(10 + i)});
  }
  return s;
}

// ------------------------------------------------------------ encoding ----

TEST(CodeLocation, RoundTrip) {
  CodeLocation loc{"libm.so", "do_work", 42};
  CodeLocation parsed;
  ASSERT_TRUE(CodeLocation::from_string(loc.to_string(), parsed));
  EXPECT_EQ(parsed, loc);
}

TEST(CodeLocation, RejectsMalformed) {
  CodeLocation out;
  EXPECT_FALSE(CodeLocation::from_string("", out));
  EXPECT_FALSE(CodeLocation::from_string("no-bang:12", out));
  EXPECT_FALSE(CodeLocation::from_string("mod!fn", out));
  EXPECT_FALSE(CodeLocation::from_string("mod!fn:abc", out));
  EXPECT_FALSE(CodeLocation::from_string("!fn:1", out));
}

TEST(SymbolicCallStack, RoundTripMultiFrame) {
  const auto stack = make_stack(4);
  SymbolicCallStack parsed;
  ASSERT_TRUE(SymbolicCallStack::from_string(stack.to_string(), parsed));
  EXPECT_EQ(parsed, stack);
}

TEST(SymbolicCallStack, HashDistinguishesFrames) {
  EXPECT_NE(make_stack(3).hash(), make_stack(4).hash());
  auto a = make_stack(3);
  auto b = make_stack(3);
  b.frames[1].line += 1;
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), make_stack(3).hash());
}

TEST(CallStack, HashOrderSensitivity) {
  CallStack a{{1, 2, 3}};
  CallStack b{{3, 2, 1}};
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), (CallStack{{1, 2, 3}}).hash());
}

// ----------------------------------------------------------- modulemap ----

TEST(ModuleMap, MaterializeTranslateRoundTrip) {
  ModuleMap mm;
  mm.add_module("app.x", 0x400000, 1 << 20);
  mm.randomize_slides(7);
  const auto stack = make_stack(5);
  const CallStack raw = mm.materialize(stack);
  ASSERT_EQ(raw.depth(), 5u);
  const auto back = mm.translate(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, stack);
}

TEST(ModuleMap, AslrChangesAddressesNotSymbols) {
  const auto stack = make_stack(3);
  ModuleMap run1, run2;
  run1.add_module("app.x", 0x400000, 1 << 20);
  run2.add_module("app.x", 0x400000, 1 << 20);
  run1.randomize_slides(1);
  run2.randomize_slides(2);
  const CallStack raw1 = run1.materialize(stack);
  const CallStack raw2 = run2.materialize(stack);
  EXPECT_NE(raw1, raw2);  // ASLR: raw addresses differ across runs
  EXPECT_EQ(run1.translate(raw1).value(), run2.translate(raw2).value());
  // A raw stack from run 1 does not translate correctly in run 2's image:
  // either it falls outside the module or yields different symbols.
  const auto cross = run2.translate(raw1);
  if (cross.has_value()) {
    EXPECT_NE(*cross, stack);
  }
}

TEST(ModuleMap, StableAddressesWithinOneRun) {
  ModuleMap mm;
  mm.add_module("app.x", 0x400000, 1 << 20);
  const auto stack = make_stack(2);
  EXPECT_EQ(mm.materialize(stack), mm.materialize(stack));
}

TEST(ModuleMap, UnknownAddressFailsTranslation) {
  ModuleMap mm;
  mm.add_module("app.x", 0x400000, 1 << 20);
  EXPECT_FALSE(mm.translate(Address{0xdeadbeef00ULL}).has_value());
}

TEST(ModuleMap, MultipleModulesDisjoint) {
  ModuleMap mm;
  mm.add_module("a.so", 0x400000, 1 << 20);
  mm.add_module("b.so", 0x40000000, 1 << 20);
  const Address a = mm.runtime_address(CodeLocation{"a.so", "f", 1});
  const Address b = mm.runtime_address(CodeLocation{"b.so", "f", 1});
  EXPECT_NE(a, b);
  EXPECT_EQ(mm.translate(a)->module, "a.so");
  EXPECT_EQ(mm.translate(b)->module, "b.so");
}

// ------------------------------------------------- unwinder/translator ----

TEST(CostModel, Figure3CrossoverNearDepthSix) {
  const CostModel cost;
  EXPECT_NEAR(cost.crossover_depth(), 6.0, 0.5);
  // Short stacks: unwinding dominates.
  EXPECT_GT(cost.unwind_ns(1), cost.translate_ns(1));
  EXPECT_GT(cost.unwind_ns(5), cost.translate_ns(5));
  // Deep stacks: translation dominates (Figure 3's message).
  EXPECT_LT(cost.unwind_ns(8), cost.translate_ns(8));
  EXPECT_LT(cost.unwind_ns(9), cost.translate_ns(9));
}

TEST(CostModel, TranslateSlopeSteeper) {
  const CostModel cost;
  const double unwind_slope = cost.unwind_ns(9) - cost.unwind_ns(8);
  const double translate_slope = cost.translate_ns(9) - cost.translate_ns(8);
  EXPECT_GT(translate_slope, unwind_slope);
}

TEST(UnwinderTranslator, AccumulateCostsAndCounts) {
  ModuleMap mm;
  mm.add_module("app.x", 0x400000, 1 << 20);
  Unwinder unwinder(mm);
  Translator translator(mm);
  const auto stack = make_stack(4);
  const CallStack raw = unwinder.unwind(stack);
  EXPECT_EQ(unwinder.calls(), 1u);
  EXPECT_DOUBLE_EQ(unwinder.total_cost_ns(),
                   unwinder.cost_model().unwind_ns(4));
  const auto sym = translator.translate(raw);
  ASSERT_TRUE(sym.has_value());
  EXPECT_EQ(*sym, stack);
  EXPECT_DOUBLE_EQ(translator.total_cost_ns(),
                   translator.cost_model().translate_ns(4));
  unwinder.reset_stats();
  EXPECT_EQ(unwinder.calls(), 0u);
}

// -------------------------------------------------------------- sitedb ----

TEST(SiteDb, InternIsIdempotent) {
  SiteDb db;
  const auto s1 = db.intern("obj", make_stack(3));
  const auto s2 = db.intern("other-name-ignored", make_stack(3));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.get(s1).object_name, "obj");  // first registration wins
}

TEST(SiteDb, DistinctStacksDistinctIds) {
  SiteDb db;
  const auto a = db.intern("a", make_stack(2));
  const auto b = db.intern("b", make_stack(3));
  EXPECT_NE(a, b);
  EXPECT_EQ(db.find(make_stack(2)).value(), a);
  EXPECT_FALSE(db.find(make_stack(9)).has_value());
}

TEST(SiteDb, TracksStaticFlag) {
  SiteDb db;
  const auto id = db.intern("static_x", make_stack(1), /*is_dynamic=*/false);
  EXPECT_FALSE(db.get(id).is_dynamic);
}

}  // namespace
}  // namespace hmem::callstack
