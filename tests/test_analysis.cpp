// Tests for the Paramedir-substitute aggregator and the Folding analysis,
// including the streaming-visitor paths' equivalence with the buffered ones.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/aggregator.hpp"
#include "analysis/folding.hpp"
#include "apps/workloads.hpp"
#include "engine/execution.hpp"
#include "trace/merge.hpp"

namespace hmem::analysis {
namespace {

using trace::AllocEvent;
using trace::CounterEvent;
using trace::FreeEvent;
using trace::PhaseEvent;
using trace::SampleEvent;

callstack::SymbolicCallStack stack_of(const std::string& fn) {
  callstack::SymbolicCallStack s;
  s.frames.push_back(callstack::CodeLocation{"app.x", fn, 1});
  return s;
}

TEST(Aggregator, AttributesSamplesToLiveObjects) {
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  const auto b = sites.intern("B", stack_of("alloc_B"));
  trace::TraceBuffer buf;
  buf.add(AllocEvent{0, a, 0x1000, 0x1000});
  buf.add(AllocEvent{1, b, 0x8000, 0x1000});
  buf.add(SampleEvent{2, 0x1100, false, 100});
  buf.add(SampleEvent{3, 0x8000, false, 100});
  buf.add(SampleEvent{4, 0x1fff, false, 100});

  const auto result = aggregate_trace(buf, sites);
  ASSERT_EQ(result.objects.size(), 2u);
  // Sorted descending by misses: A (200) then B (100).
  EXPECT_EQ(result.objects[0].name, "A");
  EXPECT_EQ(result.objects[0].llc_misses, 200u);
  EXPECT_EQ(result.objects[1].llc_misses, 100u);
  EXPECT_EQ(result.unattributed_samples, 0u);
  EXPECT_EQ(result.total_weighted_misses, 300u);
}

TEST(Aggregator, UnattributedSamplesCounted) {
  callstack::SiteDb sites;
  sites.intern("A", stack_of("alloc_A"));
  trace::TraceBuffer buf;
  buf.add(AllocEvent{0, 0, 0x1000, 0x100});
  buf.add(SampleEvent{1, 0xdead0000, false, 50});  // stack/static reference
  const auto result = aggregate_trace(buf, sites);
  EXPECT_EQ(result.unattributed_samples, 1u);
  EXPECT_EQ(result.unattributed_misses, 50u);
  EXPECT_GT(result.unattributed_fraction(), 0.99);
}

TEST(Aggregator, FreedObjectsStopAccumulating) {
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  trace::TraceBuffer buf;
  buf.add(AllocEvent{0, a, 0x1000, 0x100});
  buf.add(SampleEvent{1, 0x1000, false, 10});
  buf.add(FreeEvent{2, 0x1000});
  buf.add(SampleEvent{3, 0x1000, false, 10});  // dangling: unattributed
  const auto result = aggregate_trace(buf, sites);
  EXPECT_EQ(result.objects[0].llc_misses, 10u);
  EXPECT_EQ(result.unattributed_samples, 1u);
}

TEST(Aggregator, LoopingSiteReportsMaxSize) {
  // "we report the maximum requested size observed for each repeated
  // allocation site"
  callstack::SiteDb sites;
  const auto a = sites.intern("A", stack_of("alloc_A"));
  trace::TraceBuffer buf;
  buf.add(AllocEvent{0, a, 0x1000, 4096});
  buf.add(FreeEvent{1, 0x1000});
  buf.add(AllocEvent{2, a, 0x2000, 16384});
  buf.add(FreeEvent{3, 0x2000});
  buf.add(AllocEvent{4, a, 0x3000, 8192});
  const auto result = aggregate_trace(buf, sites);
  ASSERT_EQ(result.objects.size(), 1u);
  EXPECT_EQ(result.objects[0].max_size_bytes, 16384u);
}

TEST(Aggregator, PropagatesStaticFlag) {
  callstack::SiteDb sites;
  const auto s = sites.intern("st", stack_of("static_st"), false);
  trace::TraceBuffer buf;
  buf.add(AllocEvent{0, s, 0x1000, 4096});
  const auto result = aggregate_trace(buf, sites);
  EXPECT_FALSE(result.objects[0].is_dynamic);
}

TEST(AggregatorDeathTest, OutOfOrderTraceAsserts) {
  callstack::SiteDb sites;
  sites.intern("A", stack_of("alloc_A"));
  trace::TraceBuffer buf;
  buf.add(AllocEvent{5, 0, 0x1000, 64});
  buf.add(AllocEvent{1, 0, 0x2000, 64});
  EXPECT_DEATH(aggregate_trace(buf, sites), "time order");
}

TEST(ObjectsCsv, RoundTrip) {
  std::vector<advisor::ObjectInfo> objects(2);
  objects[0].name = "A";
  objects[0].site = 0;
  objects[0].max_size_bytes = 4096;
  objects[0].llc_misses = 1000;
  objects[1].name = "B, with comma";
  objects[1].site = 1;
  objects[1].is_dynamic = false;
  objects[1].max_size_bytes = 100;
  objects[1].llc_misses = 5;
  const auto csv = objects_to_csv(objects);
  const auto parsed = objects_from_csv(csv);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "A");
  EXPECT_EQ(parsed[0].llc_misses, 1000u);
  EXPECT_EQ(parsed[1].name, "B, with comma");
  EXPECT_FALSE(parsed[1].is_dynamic);
}

TEST(ObjectsCsv, MalformedRowsAreSkippedNotThrown) {
  // A corrupt/truncated file must never escape as an exception: bad rows
  // are dropped with a warning, intact rows still parse.
  const std::string csv =
      "name,site,dynamic,max_size_bytes,llc_misses,misses_per_kib\n"
      "good,3,1,4096,1000,244.141\n"
      "bad_site,junk,1,4096,1000,1.0\n"
      "bad_size,4,1,notanumber,1000,1.0\n"
      "bad_misses,5,1,4096,12tail,1.0\n"
      "negative,6,1,-4096,1000,1.0\n"
      "spacey_negative,6,1, -4096,1000,1.0\n"
      "plus_sign,6,1,+4096,1000,1.0\n"
      "overflow,7,1,99999999999999999999999999,1,1.0\n"
      "short,8\n"
      "also_good,9,0,100,5,51.2\n"
      "trunca";  // mid-row EOF
  std::vector<advisor::ObjectInfo> parsed;
  ASSERT_NO_THROW(parsed = objects_from_csv(csv));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "good");
  EXPECT_EQ(parsed[0].site, 3u);
  EXPECT_EQ(parsed[0].max_size_bytes, 4096u);
  EXPECT_EQ(parsed[1].name, "also_good");
  EXPECT_FALSE(parsed[1].is_dynamic);
}

TEST(ObjectsCsv, MissingHeaderIsTolerated) {
  // Without the expected header row every line is tried as data; the
  // file's actual rows survive.
  const auto parsed = objects_from_csv("solo,2,1,64,7,112.0\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "solo");
  EXPECT_EQ(parsed[0].llc_misses, 7u);
}

TEST(ObjectsCsv, EmptyAndHeaderOnlyInputs) {
  EXPECT_TRUE(objects_from_csv("").empty());
  EXPECT_TRUE(objects_from_csv(
                  "name,site,dynamic,max_size_bytes,llc_misses,"
                  "misses_per_kib\n")
                  .empty());
}

// ------------------------------------------------------------- folding ----

trace::TraceBuffer folding_trace() {
  trace::TraceBuffer buf;
  // Two alternating routines over [0, 1000) ns with samples and counters.
  buf.add(PhaseEvent{0, "octsweep", true});
  buf.add(SampleEvent{100, 0x1000, false, 1});
  buf.add(SampleEvent{400, 0x2000, false, 1});
  buf.add(CounterEvent{0, "instructions", 0});
  buf.add(PhaseEvent{500, "octsweep", false});
  buf.add(PhaseEvent{500, "outer_src_calc", true});
  buf.add(CounterEvent{500, "instructions", 1000});
  buf.add(SampleEvent{700, 0xf000, false, 1});
  buf.add(CounterEvent{1000, "instructions", 1100});
  buf.add(PhaseEvent{1000, "outer_src_calc", false});
  return buf;
}

TEST(Folding, DominantPhasePerBin) {
  const auto result = fold(folding_trace(), 0, 1000, 4);
  ASSERT_EQ(result.bins.size(), 4u);
  EXPECT_EQ(result.bins[0].dominant_phase, "octsweep");
  EXPECT_EQ(result.bins[1].dominant_phase, "octsweep");
  EXPECT_EQ(result.bins[2].dominant_phase, "outer_src_calc");
  EXPECT_EQ(result.bins[3].dominant_phase, "outer_src_calc");
}

TEST(Folding, SamplesLandInBins) {
  const auto result = fold(folding_trace(), 0, 1000, 4);
  EXPECT_EQ(result.bins[0].sample_count, 1u);
  EXPECT_EQ(result.bins[1].sample_count, 1u);
  EXPECT_EQ(result.bins[2].sample_count, 1u);
  EXPECT_EQ(result.bins[0].min_addr, 0x1000u);
  EXPECT_EQ(result.bins[2].min_addr, 0xf000u);
}

TEST(Folding, MipsReflectsCounterDeltas) {
  const auto result = fold(folding_trace(), 0, 1000, 2);
  // First half: 1000 instructions in 500 ns -> 2e9 IPS = 2000 MIPS.
  EXPECT_NEAR(result.bins[0].mips, 2000.0, 1.0);
  // Second half: 100 instructions in 500 ns -> 200 MIPS (the dip).
  EXPECT_NEAR(result.bins[1].mips, 200.0, 1.0);
  EXPECT_GT(result.bins[0].mips, result.bins[1].mips * 5);
}

TEST(Folding, CsvHasHeaderAndRows) {
  const auto result = fold(folding_trace(), 0, 1000, 4);
  const auto csv = folding_to_csv(result);
  EXPECT_NE(csv.find("bin,t_mid_ms,phase"), std::string::npos);
  EXPECT_NE(csv.find("octsweep"), std::string::npos);
  EXPECT_NE(csv.find("outer_src_calc"), std::string::npos);
}

// ------------------------------------- streaming / buffered equivalence ----

void expect_identical_reports(const AggregateResult& a,
                              const AggregateResult& b,
                              const std::string& label) {
  EXPECT_EQ(a.total_samples, b.total_samples) << label;
  EXPECT_EQ(a.total_weighted_misses, b.total_weighted_misses) << label;
  EXPECT_EQ(a.unattributed_samples, b.unattributed_samples) << label;
  EXPECT_EQ(a.unattributed_misses, b.unattributed_misses) << label;
  ASSERT_EQ(a.objects.size(), b.objects.size()) << label;
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].site, b.objects[i].site) << label;
    EXPECT_EQ(a.objects[i].name, b.objects[i].name) << label;
    EXPECT_EQ(a.objects[i].stack, b.objects[i].stack) << label;
    EXPECT_EQ(a.objects[i].max_size_bytes, b.objects[i].max_size_bytes)
        << label;
    EXPECT_EQ(a.objects[i].llc_misses, b.objects[i].llc_misses) << label;
    EXPECT_EQ(a.objects[i].is_dynamic, b.objects[i].is_dynamic) << label;
  }
}

void expect_identical_foldings(const FoldingResult& a, const FoldingResult& b,
                               const std::string& label) {
  ASSERT_EQ(a.bins.size(), b.bins.size()) << label;
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_EQ(a.bins[i].dominant_phase, b.bins[i].dominant_phase) << label;
    EXPECT_EQ(a.bins[i].sample_count, b.bins[i].sample_count) << label;
    EXPECT_EQ(a.bins[i].min_addr, b.bins[i].min_addr) << label;
    EXPECT_EQ(a.bins[i].max_addr, b.bins[i].max_addr) << label;
    // Bit-identical: the streaming path performs the same float ops in the
    // same order as the buffered one.
    EXPECT_EQ(a.bins[i].instructions, b.bins[i].instructions) << label;
    EXPECT_EQ(a.bins[i].mips, b.bins[i].mips) << label;
  }
}

/// The nine built-in workloads: the paper's eight applications plus the
/// Stream Triad kernel.
std::vector<apps::AppSpec> nine_workloads() {
  auto workloads = apps::all_apps();
  workloads.push_back(apps::make_stream_triad(16));
  return workloads;
}

TEST(StreamingEquivalence, AggregateAndFoldMatchBufferedOnAllWorkloads) {
  for (const auto& app : nine_workloads()) {
    engine::RunOptions opts;
    opts.profile = true;
    const auto run = engine::run_app(app, opts);
    ASSERT_NE(run.trace, nullptr) << app.name;
    const auto& buf = *run.trace;
    const auto& sites = *run.sites;

    // Aggregation: buffered adapter vs pull-stream over the same events.
    const auto buffered = aggregate_trace(buf, sites);
    trace::BufferTraceReader stream_reader(buf);
    const auto streamed = aggregate_stream(stream_reader, sites);
    expect_identical_reports(buffered, streamed, app.name + " (stream)");

    // And through a serialized binary round trip (fresh SiteDb, remapped
    // ids — names and statistics must still match exactly).
    std::ostringstream os;
    const auto writer =
        trace::make_trace_writer(os, sites, trace::TraceFormat::kBinary);
    for (const auto& event : buf.events()) writer->on_event(event);
    writer->finish();
    callstack::SiteDb sites2;
    std::istringstream is(os.str());
    const auto reader = trace::open_trace_reader(is, sites2);
    const auto serialized = aggregate_stream(*reader, sites2);
    expect_identical_reports(buffered, serialized, app.name + " (binary)");

    // Folding: buffered adapter vs the streaming visitor.
    const double t_end = run.time_s * 1e9;
    const auto folded = fold(buf, 0, t_end, 16);
    trace::BufferTraceReader fold_reader(buf);
    const auto folded_stream = fold_stream(fold_reader, 0, t_end, 16);
    expect_identical_foldings(folded, folded_stream, app.name);
  }
}

TEST(StreamingEquivalence, MergedSingleShardMatchesDirectAggregation) {
  // A 1-way merge must be a no-op wrapper.
  const auto app = apps::make_snap();
  engine::RunOptions opts;
  opts.profile = true;
  const auto run = engine::run_app(app, opts);
  const auto direct = aggregate_trace(*run.trace, *run.sites);

  std::vector<std::unique_ptr<trace::TraceReader>> inputs;
  inputs.push_back(std::make_unique<trace::BufferTraceReader>(*run.trace));
  trace::MergeTraceReader merged(std::move(inputs));
  const auto via_merge = aggregate_stream(merged, *run.sites);
  expect_identical_reports(direct, via_merge, "snap via 1-way merge");
}

}  // namespace
}  // namespace hmem::analysis
