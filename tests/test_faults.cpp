// Fault-injection framework + salvage/checkpoint recovery, end to end:
//
//  * the HMEM_FAULTS/--faults schedule grammar and the deterministic
//    firing of probabilistic / nth / every schedules;
//  * degradation ladders — injected fast-tier allocation failures cascade
//    to slower tiers, injected kernel-compile failures fall through
//    native -> bytecode -> interp with bit-identical results;
//  * chunk-level salvage — a corrupted middle chunk of a checksummed
//    binary shard costs exactly that chunk's events, the SalvageReport
//    says so, and --strict (the library default) throws a FormatError
//    naming the file and chunk;
//  * the k-way merge dropping dead shards instead of dying with them;
//  * crash-safe outputs — AtomicFile commit/abort semantics and the
//    SweepStore's append/fsync/torn-tail-truncate resume contract;
//  * the tools' exit-code convention (0 ok, 2 usage/config, 3 data/IO),
//    driven through the real binaries when the build provides them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include "apps/app_config.hpp"
#include "apps/workloads.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "engine/execution.hpp"
#include "engine/sweep_store.hpp"
#include "trace/format.hpp"
#include "trace/merge.hpp"
#include "trace/replay.hpp"
#include "trace/salvage.hpp"

namespace hmem {
namespace {

/// Every test leaves the process disarmed: the schedule and its counters
/// are global, and a leaked schedule would silently degrade whichever
/// suite runs next.
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "hmem_faults_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A small-but-real profiled app shared by the engine-level tests.
apps::AppSpec tiny_app() {
  apps::AppSpec app;
  app.name = "faults-src";
  app.fom_unit = "it/s";
  app.ranks = 1;
  app.threads_per_rank = 2;
  app.iterations = 3;
  app.accesses_per_iteration = 4000;
  app.objects = {
      apps::ObjectSpec{.name = "a", .size_bytes = 64ULL << 10},
      apps::ObjectSpec{.name = "b",
                       .size_bytes = 256ULL << 10,
                       .pattern = apps::AccessPattern::kRandom},
  };
  apps::PhaseSpec phase;
  phase.name = "main";
  phase.object_weights = {0.5, 0.5};
  app.phases = {phase};
  return app;
}

// ------------------------------------------------- schedule grammar ------

TEST_F(FaultsTest, FaultSpecParses) {
  EXPECT_EQ(fault::configure("io_read:p=0.5,seed=7"), "");
  EXPECT_TRUE(fault::armed());
  EXPECT_NE(fault::describe().find("io_read"), std::string::npos);

  EXPECT_EQ(fault::configure("alloc:nth=3;io_write:every=100"), "");
  EXPECT_NE(fault::describe().find("alloc"), std::string::npos);
  EXPECT_NE(fault::describe().find("io_write"), std::string::npos);

  // An empty spec disarms everything.
  EXPECT_EQ(fault::configure(""), "");
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::describe(), "");

  // Malformed specs are rejected with a message and keep the previous
  // schedule (here: disarmed stays disarmed, a valid one stays valid).
  EXPECT_NE(fault::configure("bogus_site:p=0.1"), "");
  EXPECT_NE(fault::configure("io_read:p=1.5"), "");
  EXPECT_NE(fault::configure("io_read:p=-0.1"), "");
  EXPECT_NE(fault::configure("io_read:nth=0"), "");
  EXPECT_NE(fault::configure("io_read:every=0"), "");
  EXPECT_NE(fault::configure("io_read:p=0.1,nth=2"), "");  // mixed triggers
  EXPECT_NE(fault::configure("io_read"), "");              // no trigger
  EXPECT_FALSE(fault::armed());

  ASSERT_EQ(fault::configure("kernel_compile:nth=1"), "");
  const std::string before = fault::describe();
  EXPECT_NE(fault::configure("io_read:p=junk"), "");
  EXPECT_EQ(fault::describe(), before);
}

TEST_F(FaultsTest, InjectorSchedules) {
  // Disarmed: no hit is recorded, nothing fires.
  EXPECT_FALSE(fault::inject(fault::Site::kIoRead));
  EXPECT_EQ(fault::counters(fault::Site::kIoRead).hits, 0u);

  // nth=3 fires exactly once, on the third hit.
  ASSERT_EQ(fault::configure("alloc:nth=3"), "");
  EXPECT_FALSE(fault::inject(fault::Site::kAlloc));
  EXPECT_FALSE(fault::inject(fault::Site::kAlloc));
  EXPECT_TRUE(fault::inject(fault::Site::kAlloc));
  EXPECT_FALSE(fault::inject(fault::Site::kAlloc));
  EXPECT_EQ(fault::counters(fault::Site::kAlloc).hits, 4u);
  EXPECT_EQ(fault::counters(fault::Site::kAlloc).fires, 1u);
  // A site with no schedule never fires even while another is armed.
  EXPECT_FALSE(fault::inject(fault::Site::kIoWrite));
  EXPECT_EQ(fault::counters(fault::Site::kIoWrite).fires, 0u);

  // every=2 fires on hits 2, 4, 6, ...
  ASSERT_EQ(fault::configure("io_write:every=2"), "");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(fault::inject(fault::Site::kIoWrite));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));

  // p=1 always fires, p=0 never; both count hits. The p=0.5 stream is
  // deterministic in (seed, hit index): two runs see the same pattern.
  ASSERT_EQ(fault::configure("io_read:p=1,seed=1"), "");
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fault::inject(fault::Site::kIoRead));
  ASSERT_EQ(fault::configure("io_read:p=0,seed=1"), "");
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(fault::inject(fault::Site::kIoRead));
  EXPECT_EQ(fault::counters(fault::Site::kIoRead).hits, 8u);

  std::vector<bool> first, second;
  ASSERT_EQ(fault::configure("io_read:p=0.5,seed=42"), "");
  for (int i = 0; i < 64; ++i) first.push_back(fault::inject(fault::Site::kIoRead));
  ASSERT_EQ(fault::configure("io_read:p=0.5,seed=42"), "");
  for (int i = 0; i < 64; ++i) second.push_back(fault::inject(fault::Site::kIoRead));
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

// --------------------------------------------- degradation ladders -------

TEST_F(FaultsTest, AllocFaultsCascadeToSlowerTiers) {
  const apps::AppSpec app = tiny_app();
  engine::RunOptions options;
  options.condition = engine::Condition::kNumactl;
  const engine::RunResult healthy = engine::run_app(app, options);

  // Every fast-tier allocation attempt fails: the numactl cascade must
  // still complete every allocation (the catch-all tier is never
  // injected), just slower.
  ASSERT_EQ(fault::configure("alloc:p=1,seed=1"), "");
  const engine::RunResult degraded = engine::run_app(app, options);
  EXPECT_GT(fault::counters(fault::Site::kAlloc).fires, 0u);
  EXPECT_GT(degraded.time_s, 0.0);
  EXPECT_EQ(degraded.alloc_calls, healthy.alloc_calls);
  // With the fast tier unreachable, nothing is promoted: the fast-tier
  // high-water mark collapses to zero.
  EXPECT_GT(healthy.fast_hwm_bytes, 0u);
  EXPECT_EQ(degraded.fast_hwm_bytes, 0u);
}

TEST_F(FaultsTest, KernelCompileFaultsFallThroughBitIdentical) {
  const apps::AppSpec app = tiny_app();
  engine::RunOptions options;
  options.kernel = engine::kernel::KernelKind::kInterp;
  const engine::RunResult interp = engine::run_app(app, options);

  // Every compile attempt fails: the ladder walks native -> bytecode ->
  // interp, and every rung computes identical results, so the run is
  // bit-identical to asking for the interpreter outright.
  ASSERT_EQ(fault::configure("kernel_compile:p=1,seed=3"), "");
  options.kernel = engine::kernel::KernelKind::kNative;
  const engine::RunResult faulted = engine::run_app(app, options);
  EXPECT_GT(fault::counters(fault::Site::kKernelCompile).hits, 0u);
  EXPECT_EQ(faulted.fom, interp.fom);
  EXPECT_EQ(faulted.time_s, interp.time_s);
  EXPECT_EQ(faulted.llc_misses, interp.llc_misses);
  EXPECT_EQ(faulted.samples, interp.samples);
}

// ------------------------------------------------ chunk-level salvage ----

/// A multi-chunk checksummed shard of synthetic samples plus the flush
/// offsets (used to aim corruption at a specific chunk's payload).
struct ChecksummedShard {
  std::string bytes;
  std::vector<std::size_t> flush_offsets;  ///< stream size after each flush
  std::vector<trace::Event> events;        ///< the full decoded sequence
};

ChecksummedShard make_checksummed_shard(std::size_t n_events) {
  ChecksummedShard shard;
  std::ostringstream out(std::ios::binary);
  callstack::SiteDb sites;
  trace::WriterOptions options;
  options.checksums = true;
  const auto writer = trace::make_trace_writer(
      out, sites, trace::TraceFormat::kBinary, options);
  Xoshiro256 rng(0xFA017ULL);
  double time_ns = 0;
  auto last = static_cast<std::size_t>(out.tellp());
  for (std::size_t e = 0; e < n_events; ++e) {
    time_ns += static_cast<double>(rng.below(20));
    trace::SampleEvent sample;
    sample.time_ns = time_ns;
    sample.addr = 0x10000 + rng.below(1ULL << 18) * 64;
    sample.weight = 1 + rng.below(4);
    writer->on_event(sample);
    const auto now = static_cast<std::size_t>(out.tellp());
    if (now != last) {
      shard.flush_offsets.push_back(now);
      last = now;
    }
  }
  writer->finish();
  shard.flush_offsets.push_back(static_cast<std::size_t>(out.tellp()));
  shard.bytes = out.str();

  std::istringstream in(shard.bytes, std::ios::binary);
  callstack::SiteDb read_sites;
  const auto reader = trace::open_trace_reader(in, read_sites);
  trace::Event event;
  while (reader->next(event)) shard.events.push_back(event);
  return shard;
}

TEST_F(FaultsTest, CorruptedMiddleChunkCostsExactlyThatChunk) {
  // Three full event chunks (kChunkEvents = 4096) plus a partial tail.
  constexpr std::size_t kChunk = 4096;
  const ChecksummedShard shard = make_checksummed_shard(3 * kChunk + 100);
  ASSERT_EQ(shard.events.size(), 3 * kChunk + 100);
  ASSERT_GE(shard.flush_offsets.size(), 4u);

  // Flip one byte deep inside the second event chunk's payload. The flush
  // region (flush_offsets[0], flush_offsets[1]] holds that chunk's 'K'
  // checksum + 'E' header + payload; the midpoint is well past the header.
  std::string corrupted = shard.bytes;
  const std::size_t mid =
      (shard.flush_offsets[0] + shard.flush_offsets[1]) / 2;
  corrupted[mid] = static_cast<char>(corrupted[mid] ^ 0x5A);

  // Salvage: the stream is the original minus exactly the damaged chunk.
  {
    std::istringstream in(corrupted, std::ios::binary);
    callstack::SiteDb sites;
    trace::SalvageReport report;
    trace::ReaderOptions options;
    options.salvage = true;
    options.report = &report;
    options.source = "shard.bin";
    const auto reader = trace::open_trace_reader(in, sites, options);
    trace::Event event;
    std::vector<trace::Event> salvaged;
    while (reader->next(event)) salvaged.push_back(event);

    ASSERT_EQ(salvaged.size(), shard.events.size() - kChunk);
    for (std::size_t i = 0; i < salvaged.size(); ++i) {
      const std::size_t original = i < kChunk ? i : i + kChunk;
      ASSERT_TRUE(salvaged[i] == shard.events[original])
          << "event " << i << " diverges from the undamaged stream";
    }
    EXPECT_EQ(report.chunks_dropped, 1u);
    EXPECT_EQ(report.events_dropped, kChunk);
    EXPECT_GT(report.bytes_dropped, 0u);
    EXPECT_EQ(report.tails_abandoned, 0u);
    ASSERT_EQ(report.incidents_total, 1u);
    EXPECT_EQ(report.incidents[0].file, "shard.bin");
    EXPECT_TRUE(report.incidents[0].chunk.has_value());
  }

  // Strict (the default): FormatError naming the file and chunk.
  {
    std::istringstream in(corrupted, std::ios::binary);
    callstack::SiteDb sites;
    trace::ReaderOptions options;
    options.source = "shard.bin";
    options.shard = 0;
    const auto reader = trace::open_trace_reader(in, sites, options);
    trace::Event event;
    try {
      while (reader->next(event)) {
      }
      FAIL() << "strict reader accepted a checksum-corrupted chunk";
    } catch (const FormatError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
      EXPECT_NE(what.find("shard.bin"), std::string::npos) << what;
      EXPECT_NE(what.find("chunk"), std::string::npos) << what;
    }
  }
}

TEST_F(FaultsTest, MergeDropsDeadShardsAndKeepsGoing) {
  // One healthy shard, one with a valid header and a garbage body (its
  // reader constructs fine and throws on the first next()).
  const ChecksummedShard good = make_checksummed_shard(200);
  std::string bad(trace::kBinaryMagic, sizeof(trace::kBinaryMagic));
  bad.push_back(static_cast<char>(trace::kBinaryVersion));
  bad += "this is not a chunk stream";

  callstack::SiteDb sites;
  std::istringstream good_in(good.bytes, std::ios::binary);
  std::istringstream bad_in(bad, std::ios::binary);
  std::vector<std::unique_ptr<trace::TraceReader>> inputs;
  inputs.push_back(trace::open_trace_reader(good_in, sites));
  inputs.push_back(trace::open_trace_reader(bad_in, sites));

  trace::SalvageReport report;
  trace::MergeOptions options;
  options.drop_failed_inputs = true;
  options.report = &report;
  options.labels = {"good.bin", "bad.bin"};
  trace::MergeTraceReader merge(std::move(inputs), std::move(options));

  trace::Event event;
  std::size_t n = 0;
  while (merge.next(event)) {
    ASSERT_TRUE(event == good.events[n]);
    ++n;
  }
  EXPECT_EQ(n, good.events.size());
  EXPECT_EQ(report.shards_dropped, 1u);
  ASSERT_EQ(report.incidents_total, 1u);
  EXPECT_EQ(report.incidents[0].file, "bad.bin");
}

TEST_F(FaultsTest, ReplayFrontRefusesAllDeadShards) {
  trace::ReplayReaderOptions salvage;
  salvage.salvage = true;
  // One unreadable shard of one: salvage must not degrade into an empty
  // (plausible-looking) recording.
  EXPECT_THROW(trace::ReplayReader({temp_path("does_not_exist.bin")}, salvage),
               IoError);
  EXPECT_THROW(trace::ReplayReader({}, salvage), ConfigError);
}

// ------------------------------------------------ crash-safe outputs -----

TEST_F(FaultsTest, AtomicFileCommitAndAbort) {
  const std::string path = temp_path("atomic.txt");
  std::remove(path.c_str());

  {
    AtomicFile file(path);
    file.stream() << "first";
    file.commit();
  }
  EXPECT_EQ(slurp(path), "first");

  // An abandoned write (destructor without commit) leaves the previous
  // content untouched and no temp file behind.
  {
    AtomicFile file(path);
    file.stream() << "torn half-wri";
  }
  EXPECT_EQ(slurp(path), "first");

  // An injected io_write fault at commit behaves like the crash: IoError,
  // target untouched.
  ASSERT_EQ(fault::configure("io_write:nth=1"), "");
  {
    AtomicFile file(path);
    file.stream() << "doomed";
    EXPECT_THROW(file.commit(), IoError);
  }
  fault::disarm();
  EXPECT_EQ(slurp(path), "first");

  std::string error;
  EXPECT_TRUE(write_file_atomic(path, "second", &error)) << error;
  EXPECT_EQ(slurp(path), "second");
  std::remove(path.c_str());
}

TEST_F(FaultsTest, SweepStoreResumesAcrossReopenAndTornTail) {
  const std::string path = temp_path("sweep.dat");
  std::remove(path.c_str());

  {
    engine::SweepStore store(path);
    EXPECT_EQ(store.size(), 0u);
    store.put("app1|knl", "1.5|2.5");
    store.put("key with space", "line1\nline2\tand\\slash");
    store.put("app1|knl", "3.5|4.5");  // last write wins
    EXPECT_EQ(store.size(), 2u);
  }
  {
    engine::SweepStore store(path);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.dropped_records(), 0u);
    EXPECT_EQ(store.find("app1|knl").value_or(""), "3.5|4.5");
    EXPECT_EQ(store.find("key with space").value_or(""),
              "line1\nline2\tand\\slash");
    EXPECT_FALSE(store.contains("missing"));
  }

  // Simulate the crash: a torn half-record at the tail plus a record with
  // a bad checksum. Both are dropped at load; the first put truncates the
  // file back to the valid prefix, after which a reload is clean again.
  {
    std::ofstream tail(path, std::ios::app | std::ios::binary);
    tail << "deadbeef bogus record\n";
    tail << "12ab";  // the torn write itself
  }
  {
    engine::SweepStore store(path);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_GE(store.dropped_records(), 1u);
    store.put("app2|knl", "9|9");
  }
  {
    engine::SweepStore store(path);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.dropped_records(), 0u);
    EXPECT_EQ(store.find("app2|knl").value_or(""), "9|9");
  }

  // An injected io_write fault makes put() throw and leaves the in-memory
  // view unchanged.
  {
    engine::SweepStore store(path);
    ASSERT_EQ(fault::configure("io_write:nth=1"), "");
    EXPECT_THROW(store.put("app3|knl", "1|1"), IoError);
    fault::disarm();
    EXPECT_FALSE(store.contains("app3|knl"));
  }
  std::remove(path.c_str());
}

// ------------------------------------------------ CLI exit codes ---------

#ifdef HMEM_TOOLS_DIR

/// Runs a tool through the shell with HMEM_FAULTS scrubbed (the suite may
/// run under a CI fault preset; the exit-code contract is about the
/// arguments, not the ambient schedule). Returns the exit status.
int run_tool(const std::string& command_tail) {
  const std::string command =
      "HMEM_FAULTS= " + std::string(HMEM_TOOLS_DIR) + "/" + command_tail +
      " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

bool tools_present() {
  const std::string probe = std::string(HMEM_TOOLS_DIR) + "/hmem_advise";
  std::ifstream in(probe);
  return in.good();
}

TEST_F(FaultsTest, CliExitCodes) {
  if (!tools_present()) {
    GTEST_SKIP() << "tool binaries not built in " << HMEM_TOOLS_DIR;
  }
  const std::string shard = temp_path("cli_shard.bin");
  const std::string out = temp_path("cli_out.bin");

  // 2: usage and configuration errors.
  EXPECT_EQ(run_tool("hmem_advise --bogus-flag"), 2);
  EXPECT_EQ(run_tool("hmem_advise"), 2);
  EXPECT_EQ(run_tool("hmem_profile no-such-app " + out), 2);
  EXPECT_EQ(run_tool("hmem_run hpcg --faults io_read:p=9"), 2);
  EXPECT_EQ(run_tool("hmem_run hpcg --condition warp"), 2);
  EXPECT_EQ(run_tool("hmem_workload check /nonexistent.ini"), 2);

  // 3: data and I/O errors, in both strict and (all-dead) salvage mode.
  EXPECT_EQ(run_tool("hmem_advise /nonexistent.trace 64M"), 3);
  EXPECT_EQ(run_tool("hmem_advise /nonexistent.trace 64M --strict"), 3);
  {
    std::ofstream garbage(shard, std::ios::binary);
    garbage << "HMT2";
    garbage << static_cast<char>(2);
    garbage << "garbage body that is not a chunk stream";
  }
  EXPECT_EQ(run_tool("hmem_advise " + shard + " 64M --strict"), 3);

  // 0: a real profile -> advise round trip, with checksums on.
  const std::string config = temp_path("cli_app.ini");
  {
    std::ofstream ini(config);
    ini << apps::to_config_text(tiny_app());
  }
  EXPECT_EQ(run_tool("hmem_profile " + shard + " --app-config " + config +
                     " --checksums --period 50"),
            0);
  EXPECT_EQ(run_tool("hmem_advise " + shard + " 64M"), 0);
  std::remove(shard.c_str());
  std::remove(config.c_str());
  std::remove(out.c_str());
}

#endif  // HMEM_TOOLS_DIR

// ------------------------------------------------ env preset pipeline ----

TEST_F(FaultsTest, FaultPresetPipelineSurvives) {
  // The CI fault-matrix presets keep read, alloc and compile faults armed
  // through a whole profile -> salvage-read -> aggregate-shaped pass; the
  // pipeline must degrade (fewer events, slower tiers, lower kernels), not
  // die. Writes are excluded: an injected write fault is *supposed* to
  // abort a writer, which is its own test above.
  const ChecksummedShard shard = make_checksummed_shard(2 * 4096);
  ASSERT_EQ(fault::configure("io_read:p=0.05,seed=1;alloc:p=0.2,seed=9;"
                             "kernel_compile:p=0.5,seed=3"),
            "");

  std::istringstream in(shard.bytes, std::ios::binary);
  callstack::SiteDb sites;
  trace::ReaderOptions options;
  options.source = "preset.bin";
  trace::RecoveringTraceReader reader(in, sites, options);
  trace::Event event;
  std::size_t n = 0;
  std::size_t checked = 0;
  while (reader.next(event)) {
    // Whatever survives is an in-order subsequence of the original; spot
    // checking the prefix (io_read faults abandon the tail, they never
    // reorder) keeps this cheap.
    if (checked < 64) {
      ASSERT_TRUE(event == shard.events[n]);
      ++checked;
    }
    ++n;
  }
  EXPECT_LE(n, shard.events.size());
  EXPECT_GT(fault::counters(fault::Site::kIoRead).hits, 0u);

  const engine::RunResult run =
      engine::run_app(tiny_app(), engine::RunOptions{});
  EXPECT_GT(run.time_s, 0.0);
  EXPECT_GT(run.fom, 0.0);
}

}  // namespace
}  // namespace hmem
