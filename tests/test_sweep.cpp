// Sweep engine: the three perf layers and their contracts.
//
//  * common/arena.hpp — bump-allocator mechanics: chunk growth, reset
//    reuse, per-cell high-water marks, over-aligned requests;
//  * bit-identity — arena-backed, program-cached cells reproduce the
//    plain-allocator path exactly, on every bundled workload (allocator
//    choice can move bytes, never change them; compilation is
//    deterministic);
//  * shared state — stage-1 profiles computed once per (app, machine) and
//    warm engine runs identical to cold ones with nonzero hit rates;
//  * sharding — disjoint/complete cell partition, and a 2-shard merged
//    store byte-identical to the unsharded store, including after a torn
//    shard tail is resumed;
//  * dynamic cells — equal to the run_pipeline(per_phase) reference, so
//    the rebased dynamic bench cannot drift from the pipeline semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/aggregator.hpp"
#include "apps/workloads.hpp"
#include "common/arena.hpp"
#include "common/units.hpp"
#include "engine/pipeline.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_store.hpp"

namespace {

using namespace hmem;

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  if (!path.empty() && path.back() != '/') path += '/';
  path += "hmem_sweep_test_" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Every bundled workload (the paper's eight plus the two phase-shift
/// stress apps), shrunk to smoke size.
std::vector<apps::AppSpec> smoke_apps() {
  std::vector<apps::AppSpec> apps = apps::all_apps();
  for (apps::AppSpec& app : apps::phase_shift_apps()) {
    apps.push_back(std::move(app));
  }
  for (apps::AppSpec& app : apps) {
    app.iterations = std::min<std::uint64_t>(app.iterations, 3);
    app.accesses_per_iteration =
        std::min<std::uint64_t>(app.accesses_per_iteration, 3000);
  }
  return apps;
}

void expect_same_run(const engine::RunResult& a, const engine::RunResult& b) {
  EXPECT_EQ(a.fom, b.fom);
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.fast_hwm_bytes, b.fast_hwm_bytes);
  EXPECT_EQ(a.total_hwm_bytes, b.total_hwm_bytes);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.alloc_calls, b.alloc_calls);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
  EXPECT_EQ(a.migration_count, b.migration_count);
  EXPECT_EQ(a.migration_cost_s, b.migration_cost_s);
  ASSERT_EQ(a.tier_traffic.size(), b.tier_traffic.size());
  for (std::size_t t = 0; t < a.tier_traffic.size(); ++t) {
    EXPECT_EQ(a.tier_traffic[t].bytes, b.tier_traffic[t].bytes);
    EXPECT_EQ(a.tier_traffic[t].migration_bytes,
              b.tier_traffic[t].migration_bytes);
  }
}

void expect_same_outcomes(const std::vector<engine::SweepOutcome>& a,
                          const std::vector<engine::SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].has_result());
    ASSERT_TRUE(b[i].has_result());
    EXPECT_EQ(a[i].result.fom, b[i].result.fom) << "cell " << i;
    EXPECT_EQ(a[i].result.fast_hwm_bytes, b[i].result.fast_hwm_bytes);
    EXPECT_EQ(a[i].result.any_overflow, b[i].result.any_overflow);
    EXPECT_EQ(a[i].result.static_fom, b[i].result.static_fom);
    EXPECT_EQ(a[i].result.phases, b[i].result.phases);
    EXPECT_EQ(a[i].result.migration_bytes, b[i].result.migration_bytes);
    EXPECT_EQ(a[i].result.migration_cost_s, b[i].result.migration_cost_s);
  }
}

engine::SweepSpec small_grid(int jobs = 2) {
  engine::SweepSpec spec;
  spec.apps = {smoke_apps()[0], smoke_apps()[8]};  // hpcg + churn
  spec.machines = {
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat),
      *memsim::MachineConfig::preset("spr-hbm", memsim::MemMode::kFlat)};
  spec.baselines = {engine::Condition::kDdr, engine::Condition::kNumactl};
  spec.strategies = engine::paper_strategies();
  spec.budgets_for = [](const apps::AppSpec&) {
    return std::vector<std::uint64_t>{64 * kMiB, 256 * kMiB};
  };
  spec.dynamic_cells = true;
  spec.jobs = jobs;
  return spec;
}

TEST(Arena, BumpsResetsAndTracksPeaks) {
  Arena arena(4096);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 8);
  EXPECT_NE(a, b);
  EXPECT_GE(arena.bytes_in_use(), 200u);
  EXPECT_EQ(arena.allocation_count(), 2u);
  const std::size_t peak1 = arena.peak_since_reset();
  EXPECT_EQ(peak1, arena.bytes_in_use());

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.peak_since_reset(), 0u);
  // Chunks are retained: the same first pointer comes back after reset.
  void* c = arena.allocate(100, 8);
  EXPECT_EQ(a, c);
  // peak_bytes is the lifetime high-water mark, peak_since_reset per cell.
  EXPECT_GE(arena.peak_bytes(), peak1);
  EXPECT_LT(arena.peak_since_reset(), peak1);
}

TEST(Arena, GrowsAndServesOversizedRequests) {
  Arena arena(4096);
  const std::size_t reserved0 = arena.reserved_bytes();
  EXPECT_EQ(reserved0, 0u);
  // Force growth past the first chunk.
  for (int i = 0; i < 100; ++i) arena.allocate(1000, 8);
  EXPECT_GT(arena.chunk_count(), 1u);
  // An oversized request gets its own exact chunk.
  const std::size_t huge = Arena::kMaxChunkBytes + 4096;
  void* p = arena.allocate(huge, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.reserved_bytes(), huge);
  // All of it is reusable after reset without new reservations.
  const std::size_t reserved = arena.reserved_bytes();
  arena.reset();
  for (int i = 0; i < 100; ++i) arena.allocate(1000, 8);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(Arena, HonoursOverAlignedRequests) {
  Arena arena(4096);
  for (const std::size_t alignment : {64u, 128u, 4096u}) {
    void* p = arena.allocate(100, alignment);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u)
        << alignment;
  }
}

TEST(Arena, BacksPmrContainers) {
  Arena arena;
  std::pmr::vector<std::uint64_t> v(&arena);
  for (std::uint64_t i = 0; i < 10000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(arena.bytes_in_use(), 10000u * sizeof(std::uint64_t) / 2);
}

TEST(Sweep, EnumerationIsShardPartitioned) {
  engine::SweepSpec spec = small_grid();
  const engine::SweepEngine whole(small_grid());
  const std::size_t total = whole.cells().size();
  // 2 apps x 2 machines x (2 baselines + 4 strategies x 2 budgets + 2
  // dynamic) = 48 cells.
  EXPECT_EQ(total, 48u);

  std::vector<int> owners(total, 0);
  for (int shard = 0; shard < 3; ++shard) {
    engine::SweepSpec shard_spec = small_grid();
    shard_spec.shard_index = shard;
    shard_spec.shard_count = 3;
    const engine::SweepEngine engine(std::move(shard_spec));
    for (const engine::SweepCell& cell : engine.cells()) {
      EXPECT_EQ(cell.index % 3, static_cast<std::size_t>(cell.index % 3));
      if (cell.index % 3 == static_cast<std::size_t>(shard)) {
        ++owners[cell.index];
      }
    }
  }
  for (const int n : owners) EXPECT_EQ(n, 1);  // disjoint and complete
}

TEST(Sweep, CellKeysSortInEnumerationOrder) {
  const engine::SweepEngine engine(small_grid());
  std::string prev;
  for (const engine::SweepCell& cell : engine.cells()) {
    const std::string key = engine::sweep_cell_key(engine.spec(), cell);
    EXPECT_LT(prev, key);
    prev = key;
  }
}

TEST(Sweep, ResultSerializationRoundTripsExactly) {
  engine::SweepCellResult r;
  r.fom = 1234.5678901234567;
  r.fast_hwm_bytes = 987654321;
  r.any_overflow = true;
  r.static_fom = 0.1 + 0.2;  // not representable: %.17g must round-trip it
  r.phases = 7;
  r.migration_bytes = 1ULL << 40;
  r.migration_cost_s = 3.0000000000000004;
  engine::SweepCellResult parsed;
  ASSERT_TRUE(
      engine::parse_sweep_result(engine::serialize_sweep_result(r), parsed));
  EXPECT_EQ(parsed.fom, r.fom);
  EXPECT_EQ(parsed.fast_hwm_bytes, r.fast_hwm_bytes);
  EXPECT_EQ(parsed.any_overflow, r.any_overflow);
  EXPECT_EQ(parsed.static_fom, r.static_fom);
  EXPECT_EQ(parsed.phases, r.phases);
  EXPECT_EQ(parsed.migration_bytes, r.migration_bytes);
  EXPECT_EQ(parsed.migration_cost_s, r.migration_cost_s);
  engine::SweepCellResult bad;
  EXPECT_FALSE(engine::parse_sweep_result("1|2|3", bad));
}

// The heart of the arena contract: for every bundled workload, a run whose
// scratch state lives in an arena (and whose programs come from a shared
// cache, including on the warm second pass over a reset arena) is
// bit-identical to the plain global-allocator run.
TEST(Sweep, ArenaAndProgramCacheAreBitIdenticalOnAllApps) {
  const auto node = memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  for (const apps::AppSpec& app : smoke_apps()) {
    SCOPED_TRACE(app.name);
    // Stage 1+2 reference artefacts, shared by both paths.
    engine::RunOptions profile_opts;
    profile_opts.condition = engine::Condition::kDdr;
    profile_opts.profile = true;
    profile_opts.node = node;
    const engine::RunResult profile = engine::run_app(app, profile_opts);
    const analysis::AggregateResult report =
        analysis::aggregate_trace(*profile.trace, *profile.sites);
    const advisor::MemorySpec spec =
        engine::machine_memory_spec(node, 96 * kMiB, app.ranks);
    advisor::HmemAdvisor adv(spec, advisor::Options{});
    const advisor::Placement placement = adv.advise(report.objects);

    engine::RunOptions opts;
    opts.condition = engine::Condition::kFramework;
    opts.placement = &placement;
    opts.seed = 1042;
    opts.node = node;
    const engine::RunResult ref = engine::run_app(app, opts);

    Arena arena;
    engine::kernel::ProgramCache cache;
    engine::RunOptions arena_opts = opts;
    arena_opts.scratch = &arena;
    arena_opts.program_cache = &cache;
    arena_opts.program_cache_prefix = "t|" + app.name;
    const engine::RunResult cold = engine::run_app(app, arena_opts);
    EXPECT_GT(arena.peak_since_reset(), 0u);
    EXPECT_GT(cache.misses(), 0u);
    expect_same_run(ref, cold);

    // Warm pass: same arena after reset, every program now cache-resident.
    arena.reset();
    const std::uint64_t misses_before = cache.misses();
    const engine::RunResult warm = engine::run_app(app, arena_opts);
    EXPECT_EQ(cache.misses(), misses_before);
    EXPECT_GT(cache.hits(), 0u);
    expect_same_run(ref, warm);

    // A profiled run routes its miss records through the arena too.
    Arena profile_arena;
    engine::RunOptions profiled = profile_opts;
    profiled.scratch = &profile_arena;
    const engine::RunResult profiled_arena = engine::run_app(app, profiled);
    expect_same_run(profile, profiled_arena);
  }
}

TEST(Sweep, WarmEngineRunIsIdenticalWithCacheHits) {
  engine::SweepEngine engine(small_grid());
  const auto cold = engine.run();
  const engine::SweepStats cold_stats = engine.stats();
  EXPECT_EQ(cold_stats.cells_computed, 48u);
  EXPECT_GT(cold_stats.profile_hits, 0u);  // budgets/strategies share
  EXPECT_EQ(cold_stats.profile_misses, 4u);  // one per (app, machine)
  EXPECT_GT(cold_stats.cells_per_second, 0.0);
  EXPECT_GT(cold_stats.arena_peak_cell_bytes, 0u);

  const auto warm = engine.run();
  const engine::SweepStats warm_stats = engine.stats();
  // Profiles and programs survive across run() calls: the second pass
  // computes no new profiles and compiles nothing new.
  EXPECT_EQ(warm_stats.profile_misses, 4u);
  EXPECT_EQ(warm_stats.program_misses, cold_stats.program_misses);
  EXPECT_GT(warm_stats.program_hits, cold_stats.program_hits);
  expect_same_outcomes(cold, warm);
}

TEST(Sweep, JobsDoNotChangeOutcomes) {
  engine::SweepEngine serial(small_grid(/*jobs=*/1));
  engine::SweepEngine parallel(small_grid(/*jobs=*/4));
  expect_same_outcomes(serial.run(), parallel.run());
}

TEST(Sweep, ShardedStoresMergeByteIdenticalToUnsharded) {
  const std::string gold_path = temp_path("gold.dat");
  const std::string s1_path = temp_path("s1.dat");
  const std::string s2_path = temp_path("s2.dat");
  const std::string merged_path = temp_path("merged.dat");

  std::vector<engine::SweepOutcome> gold;
  {
    engine::SweepStore store(gold_path);
    engine::SweepEngine engine(small_grid());
    gold = engine.run(&store);
    EXPECT_EQ(store.size(), 48u);
  }
  for (int shard = 0; shard < 2; ++shard) {
    engine::SweepSpec spec = small_grid();
    spec.shard_index = shard;
    spec.shard_count = 2;
    engine::SweepStore store(shard == 0 ? s1_path : s2_path);
    engine::SweepEngine engine(std::move(spec));
    engine.run(&store);
    EXPECT_EQ(store.size(), 24u);
    EXPECT_EQ(engine.stats().cells_in_shard, 24u);
  }
  engine::merge_sweep_stores({s1_path, s2_path}, merged_path);
  EXPECT_EQ(slurp(merged_path), slurp(gold_path));

  // Tear shard 1's tail (a half-written record plus the records after it
  // are indistinguishable from a SIGKILL mid-append), resume it, re-merge:
  // still byte-identical to the unsharded store.
  {
    std::string bytes = slurp(s1_path);
    bytes.resize(bytes.size() / 2);
    bytes += "damaged-tail-without-checksum";
    std::ofstream out(s1_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  {
    engine::SweepStore store(s1_path);
    EXPECT_GT(store.dropped_records(), 0u);
    const std::size_t salvaged = store.size();
    EXPECT_LT(salvaged, 24u);
    engine::SweepSpec spec = small_grid();
    spec.shard_index = 0;
    spec.shard_count = 2;
    engine::SweepEngine engine(std::move(spec));
    const auto resumed = engine.run(&store, /*resume=*/true);
    EXPECT_EQ(engine.stats().cells_resumed, salvaged);
    EXPECT_EQ(engine.stats().cells_computed, 24u - salvaged);
    EXPECT_EQ(store.size(), 24u);
    // Resumed outcomes reproduce the gold values exactly (%.17g).
    for (std::size_t i = 0; i < resumed.size(); ++i) {
      if (!resumed[i].has_result()) continue;
      EXPECT_EQ(resumed[i].result.fom, gold[i].result.fom) << i;
    }
  }
  engine::merge_sweep_stores({s1_path, s2_path}, merged_path);
  EXPECT_EQ(slurp(merged_path), slurp(gold_path));

  for (const auto& p : {gold_path, s1_path, s2_path, merged_path}) {
    std::remove(p.c_str());
  }
}

TEST(Sweep, DynamicCellMatchesRunPipeline) {
  apps::AppSpec churn = apps::make_churn();
  churn.iterations = std::min<std::uint64_t>(churn.iterations, 3);
  churn.accesses_per_iteration =
      std::min<std::uint64_t>(churn.accesses_per_iteration, 3000);

  engine::PipelineOptions options;
  options.per_phase = true;
  options.fast_budget_per_rank = 96 * kMiB;
  const engine::PipelineResult ref = engine::run_pipeline(churn, options);

  engine::SweepSpec spec;
  spec.apps = {churn};
  spec.machines = {options.node};
  spec.budgets_for = [](const apps::AppSpec&) {
    return std::vector<std::uint64_t>{96 * kMiB};
  };
  spec.dynamic_cells = true;
  engine::SweepEngine engine(std::move(spec));
  const auto outcomes = engine.run();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].cell.kind, engine::CellKind::kDynamic);
  EXPECT_EQ(outcomes[0].result.fom, ref.dynamic_run.fom);
  EXPECT_EQ(outcomes[0].result.static_fom, ref.production_run.fom);
  EXPECT_EQ(outcomes[0].result.phases, ref.schedule.phases.size());
  EXPECT_EQ(outcomes[0].result.migration_bytes,
            ref.dynamic_run.migration_bytes);
  EXPECT_EQ(outcomes[0].result.migration_cost_s,
            ref.dynamic_run.migration_cost_s);
}

TEST(ProgramCacheTest, CountsHitsAndClearsGeneratorBindings) {
  engine::kernel::ProgramCache cache;
  EXPECT_EQ(cache.find("k"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  engine::kernel::Program program;
  program.gens.push_back(reinterpret_cast<apps::AccessGenerator*>(0x1234));
  cache.insert("k", std::move(program));
  const auto hit = cache.find("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  // Run-local pointers never live in the cache.
  ASSERT_EQ(hit->gens.size(), 1u);
  EXPECT_EQ(hit->gens[0], nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.hit_rate(), 0.0);
}

}  // namespace
