// Tests for the arena allocator and the backing allocators, including a
// randomized property sweep over the arena invariants.
#include <gtest/gtest.h>

#include <map>

#include "alloc/allocators.hpp"
#include "alloc/arena.hpp"
#include "common/prng.hpp"
#include "common/units.hpp"

namespace hmem::alloc {
namespace {

constexpr Address kBase = 0x100000000ULL;

TEST(Arena, AllocatesDisjointRanges) {
  Arena arena(kBase, 1 << 20);
  const auto a = arena.allocate(1000);
  const auto b = arena.allocate(1000);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
  EXPECT_GE(*b, *a + 1000);
  EXPECT_TRUE(arena.check_invariants());
}

TEST(Arena, AlignmentRespected) {
  Arena arena(kBase, 1 << 20, 64);
  for (int i = 0; i < 10; ++i) {
    const auto p = arena.allocate(33);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p % 64, 0u);
  }
}

TEST(Arena, FreeAndCoalesce) {
  Arena arena(kBase, 1 << 20);
  const auto a = arena.allocate(1000);
  const auto b = arena.allocate(1000);
  const auto c = arena.allocate(1000);
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(arena.deallocate(*a).has_value());
  EXPECT_TRUE(arena.deallocate(*c).has_value());
  EXPECT_TRUE(arena.deallocate(*b).has_value());
  EXPECT_TRUE(arena.check_invariants());
  EXPECT_EQ(arena.free_blocks(), 1u);  // fully coalesced
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Whole capacity available again.
  EXPECT_TRUE(arena.allocate((1 << 20) - 64).has_value());
}

TEST(Arena, ExhaustionReturnsNullopt) {
  Arena arena(kBase, 4096);
  EXPECT_TRUE(arena.allocate(4096).has_value());
  EXPECT_FALSE(arena.allocate(1).has_value());
}

TEST(Arena, ReusesFreedSpaceFirstFit) {
  Arena arena(kBase, 1 << 20);
  const auto a = arena.allocate(4096);
  arena.allocate(4096);
  arena.deallocate(*a);
  const auto c = arena.allocate(4096);
  EXPECT_EQ(*c, *a);  // first-fit reuses the lowest hole
}

TEST(Arena, DoubleFreeAndForeignFreeRejected) {
  Arena arena(kBase, 1 << 20);
  const auto a = arena.allocate(64);
  EXPECT_TRUE(arena.deallocate(*a).has_value());
  EXPECT_FALSE(arena.deallocate(*a).has_value());
  EXPECT_FALSE(arena.deallocate(kBase + 999999).has_value());
}

TEST(Arena, ZeroSizeAllocationStillDistinct) {
  Arena arena(kBase, 1 << 20);
  const auto a = arena.allocate(0);
  const auto b = arena.allocate(0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
}

TEST(Arena, LargestFreeBlockTracksFragmentation) {
  Arena arena(kBase, 64 * 1024);
  std::vector<Address> ptrs;
  for (int i = 0; i < 8; ++i) ptrs.push_back(*arena.allocate(8 * 1024));
  // Free alternating blocks: largest hole stays 8 KiB.
  for (int i = 0; i < 8; i += 2) arena.deallocate(ptrs[i]);
  EXPECT_EQ(arena.largest_free_block(), 8u * 1024);
  EXPECT_FALSE(arena.allocate(16 * 1024).has_value());  // fragmented
  EXPECT_TRUE(arena.allocate(8 * 1024).has_value());
}

class ArenaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaProperty, RandomOpsPreserveInvariants) {
  const std::uint64_t seed = GetParam();
  Arena arena(kBase, 1 << 20);
  Xoshiro256 rng(seed);
  std::map<Address, std::uint64_t> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.uniform() < 0.6) {
      const std::uint64_t size = 1 + rng.below(8192);
      const auto p = arena.allocate(size);
      if (p) {
        // Returned range must not overlap any live allocation.
        for (const auto& [addr, len] : live) {
          EXPECT_TRUE(*p + size <= addr || addr + len <= *p);
        }
        live[*p] = size;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.below(live.size()));
      EXPECT_TRUE(arena.deallocate(it->first).has_value());
      live.erase(it);
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(arena.check_invariants());
    }
  }
  ASSERT_TRUE(arena.check_invariants());
  for (const auto& [addr, len] : live) {
    (void)len;
    EXPECT_TRUE(arena.deallocate(addr).has_value());
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_TRUE(arena.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------- allocators ----

TEST(PosixAllocator, StatsAndHwm) {
  PosixAllocator posix(kBase, 1 << 20);
  const auto a = posix.allocate(100 * 1024);
  const auto b = posix.allocate(200 * 1024);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(posix.stats().alloc_calls, 2u);
  const auto hwm = posix.stats().high_water_mark;
  EXPECT_GE(hwm, 300u * 1024);
  posix.deallocate(*a);
  posix.deallocate(*b);
  EXPECT_EQ(posix.stats().bytes_in_use, 0u);
  EXPECT_EQ(posix.stats().high_water_mark, hwm);  // HWM sticks
  EXPECT_EQ(posix.stats().free_calls, 2u);
}

TEST(PosixAllocator, FailedAllocCounted) {
  PosixAllocator posix(kBase, 4096);
  EXPECT_TRUE(posix.allocate(4096).has_value());
  EXPECT_FALSE(posix.allocate(64).has_value());
  EXPECT_EQ(posix.stats().failed_allocs, 1u);
}

TEST(MemkindAllocator, AnomalyCostWindow) {
  MemkindAllocator hbw(kBase, 64ULL * kMiB);
  const double below = hbw.alloc_cost_ns(512 * 1024);
  const double inside = hbw.alloc_cost_ns(1536 * 1024);
  const double above = hbw.alloc_cost_ns(4 * 1024 * 1024);
  // The paper's 1-2 MiB memkind anomaly: far more expensive than neighbours.
  EXPECT_GT(inside, below + MemkindAllocator::kAnomalyExtraNs * 0.9);
  EXPECT_GT(inside, above);
  EXPECT_GT(hbw.alloc_cost_ns(MemkindAllocator::kAnomalyLo),
            below + MemkindAllocator::kAnomalyExtraNs * 0.9);
}

TEST(MemkindAllocator, FitsReflectsFreeSpace) {
  MemkindAllocator hbw(kBase, 1 << 20);
  EXPECT_TRUE(hbw.fits(1 << 20));
  const auto a = hbw.allocate(900 * 1024);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(hbw.fits(512 * 1024));
  EXPECT_TRUE(hbw.fits(64 * 1024));
}

TEST(Allocators, OwnershipIsRangeBased) {
  PosixAllocator posix(kBase, 1 << 20);
  MemkindAllocator hbw(kBase + (1ULL << 30), 1 << 20);
  const auto p = posix.allocate(64);
  const auto h = hbw.allocate(64);
  EXPECT_TRUE(posix.owns(*p));
  EXPECT_FALSE(posix.owns(*h));
  EXPECT_TRUE(hbw.owns(*h));
  EXPECT_FALSE(hbw.deallocate(*p));
  EXPECT_EQ(hbw.allocation_size(*h).value(), 64u);
  EXPECT_FALSE(hbw.allocation_size(*p).has_value());
}

TEST(Allocators, AverageAllocSize) {
  PosixAllocator posix(kBase, 1 << 20);
  posix.allocate(100);
  posix.allocate(300);
  EXPECT_DOUBLE_EQ(posix.stats().average_alloc_size(), 200.0);
}

}  // namespace
}  // namespace hmem::alloc
