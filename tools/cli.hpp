// Tiny argv helpers shared by the hmem_* tools so their flag handling
// cannot drift apart.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "memsim/machine.hpp"

namespace hmem::tools {

/// Shared exit-code convention (common/error.hpp): 0 success, 2 usage or
/// configuration error, 3 data/IO error, 4 resource exhaustion.
using hmem::kExitData;
using hmem::kExitOk;
using hmem::kExitResource;
using hmem::kExitUsage;

/// Returns the value of the flag at argv[i], advancing i past it. Exits
/// with the usage status when the value is missing.
inline const char* cli_value(int argc, char** argv, int& i,
                             const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

/// True for "--something" tokens: an unknown one is a user error, not a
/// positional argument.
inline bool cli_is_flag(const char* arg) {
  return std::strncmp(arg, "--", 2) == 0;
}

/// Comma-separated preset list for usage texts: "knl, spr-hbm, ...".
inline std::string machine_preset_list() {
  return memsim::machine_preset_list();
}

/// Resolves a --machine argument (preset name or machine config file);
/// prints the error and returns nullopt on failure.
inline std::optional<memsim::MachineConfig> load_machine(
    const std::string& arg) {
  std::string error;
  auto machine = memsim::load_machine_config(arg, &error);
  if (!machine) std::fprintf(stderr, "--machine: %s\n", error.c_str());
  return machine;
}

/// Validates the HMEM_FAULTS environment schedule at tool startup. A typo
/// disarms injection (library behavior) — but a tool should say so rather
/// than silently run fault-free.
inline void cli_init_faults() {
  const std::string err = fault::configure_from_env();
  if (!err.empty())
    std::fprintf(stderr, "warning: HMEM_FAULTS ignored: %s\n", err.c_str());
}

/// Installs a --faults schedule (overriding HMEM_FAULTS). Exits with the
/// usage status on a malformed spec.
inline void cli_configure_faults(const char* spec) {
  const std::string err = fault::configure(spec);
  if (!err.empty()) {
    std::fprintf(stderr, "--faults: %s\n", err.c_str());
    std::exit(kExitUsage);
  }
}

/// Standard tail of a tool's catch(const std::exception&) block: print the
/// error, return the taxonomy's exit code for it.
inline int cli_fail(const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return exit_code_for(e);
}

}  // namespace hmem::tools
