// Tiny argv helpers shared by the hmem_* tools so their flag handling
// cannot drift apart.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "memsim/machine.hpp"

namespace hmem::tools {

/// Returns the value of the flag at argv[i], advancing i past it. Exits
/// with the usage status when the value is missing.
inline const char* cli_value(int argc, char** argv, int& i,
                             const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

/// True for "--something" tokens: an unknown one is a user error, not a
/// positional argument.
inline bool cli_is_flag(const char* arg) {
  return std::strncmp(arg, "--", 2) == 0;
}

/// Comma-separated preset list for usage texts: "knl, spr-hbm, ...".
inline std::string machine_preset_list() {
  return memsim::machine_preset_list();
}

/// Resolves a --machine argument (preset name or machine config file);
/// prints the error and returns nullopt on failure.
inline std::optional<memsim::MachineConfig> load_machine(
    const std::string& arg) {
  std::string error;
  auto machine = memsim::load_machine_config(arg, &error);
  if (!machine) std::fprintf(stderr, "--machine: %s\n", error.c_str());
  return machine;
}

}  // namespace hmem::tools
