// Tiny argv helpers shared by the hmem_* tools so their flag handling
// cannot drift apart.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hmem::tools {

/// Returns the value of the flag at argv[i], advancing i past it. Exits
/// with the usage status when the value is missing.
inline const char* cli_value(int argc, char** argv, int& i,
                             const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

/// True for "--something" tokens: an unknown one is a user error, not a
/// positional argument.
inline bool cli_is_flag(const char* arg) {
  return std::strncmp(arg, "--", 2) == 0;
}

}  // namespace hmem::tools
