// hmem_workload — the app-config DSL's companion tool.
//
// The bundled workloads ship both as C++ tables (apps/workloads.cpp) and as
// INI configs (configs/apps/*.ini); this tool converts between the two and
// validates hand-written configs, so the shipped files are generated — not
// hand-copied — and a config error is caught before a long profile run.
//
//   usage: hmem_workload <command> [args]
//     list               bundled app names, one per line
//     dump <app>         canonical INI of an app (bundled name or config
//                        file — dumping a file canonicalises it) to stdout
//     check <app.ini>    parse + validate a config; prints a one-line
//                        summary, exits 2 with the offending key on error
//     dump-all <dir>     write <dir>/<name>.ini for every bundled app
//                        (regenerates configs/apps/); files are written
//                        atomically (temp + fsync + rename)
//
// Exit codes: 0 success, 2 usage/config error, 3 data or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/app_config.hpp"
#include "apps/workloads.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list | dump <app> | check <app.ini> | "
               "dump-all <dir>\n",
               argv0);
  std::exit(2);
}

std::vector<hmem::apps::AppSpec> bundled() {
  auto apps = hmem::apps::all_apps();
  for (auto& app : hmem::apps::phase_shift_apps()) {
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmem;
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];

  if (command == "list") {
    if (argc != 2) usage(argv[0]);
    for (const auto& app : bundled()) std::printf("%s\n", app.name.c_str());
    return 0;
  }

  if (command == "dump") {
    if (argc != 3) usage(argv[0]);
    std::string error;
    const auto app = apps::load_app(argv[2], &error);
    if (!app) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::fputs(apps::to_config_text(*app).c_str(), stdout);
    return 0;
  }

  if (command == "check") {
    if (argc != 3) usage(argv[0]);
    std::string error;
    const auto app = apps::load_app_file(argv[2], &error);
    if (!app) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    std::printf("%s: ok — app '%s', %zu object(s), %zu phase(s), %s/rank\n",
                argv[2], app->name.c_str(), app->objects.size(),
                app->phases.size(),
                format_bytes(app->total_footprint()).c_str());
    return 0;
  }

  if (command == "dump-all") {
    if (argc != 3) usage(argv[0]);
    const std::string dir = argv[2];
    for (const auto& app : bundled()) {
      const std::string path = dir + "/" + app.name + ".ini";
      try {
        AtomicFile out(path);
        out.stream() << apps::to_config_text(app);
        out.commit();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return exit_code_for(e);
      }
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
    return kExitOk;
  }

  usage(argv[0]);
}
