#!/usr/bin/env python3
"""Benchmark trend tracking: append BENCH_*.json runs to a history CSV and
gate on regressions.

Usage:
    tools/bench_trend.py --history BENCH_history.csv [--label ci] \
        [--max-regression 0.10] BENCH_engine.json BENCH_sweep.json ...

Each input JSON is flattened into one history row:
    date,label,bench,context,metric,value
where `metric` is every numeric scalar in the file and `context` pins the
measurement conditions (app, machine, kernel, jobs, smoke, ...) so that
only like-for-like rows are ever compared. A run on a new context is
recorded without gating — there is nothing to compare it against.

Three gates, all applied before the new rows are appended:

  * kernel ordering — an engine_throughput record must show
    native >= bytecode >= interp accesses/sec (small tolerance for timing
    noise). A compiled kernel slower than the interpreter is a defect, not
    a trend.
  * throughput regression — for the headline rate metric of each bench
    (cells_per_second, *_accesses_per_sec, *_eps), the new value must be
    within --max-regression (default 10%) of the most recent history row
    with the same (bench, context, metric).
  * latency regression — for latency metrics (*_latency_us, lower is
    better), the new value must not *rise* more than --max-regression over
    the most recent like-for-like history row. This is what gates the
    incremental advisor's refresh latency (BENCH_advisor.json).

Exit codes follow the repo convention: 0 ok, 2 usage, 3 gate failure.
"""

import argparse
import csv
import datetime
import json
import os
import sys

# Keys that pin a measurement's conditions rather than measure anything.
CONTEXT_KEYS = (
    "bench", "app", "machine", "kernel", "ranks", "jobs", "cores",
    "smoke", "reps", "events", "accesses_per_run", "cells_total",
    "cells_in_shard", "shards",
)

# Metrics gated against history (higher is better for all of them).
RATE_SUFFIXES = ("_accesses_per_sec", "_eps")
RATE_METRICS = ("cells_per_second",)

# Latency metrics gated the other way around (lower is better). Only the
# mean carries the suffix on purpose: p95/max of a handful of refreshes
# are too noisy for a hard 10% gate and are recorded as plain metrics.
LATENCY_SUFFIXES = ("_latency_us",)

# Allow 2% noise on the kernel ordering: the ladder must hold, but two
# kernels within measurement jitter of each other are not a violation.
ORDERING_TOLERANCE = 0.98


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for key, item in value.items():
            flatten(prefix + key + "." if isinstance(item, dict)
                    else prefix + key, item, out)
    elif isinstance(value, bool):
        out[prefix] = str(value).lower()
    elif isinstance(value, (int, float, str)):
        out[prefix] = value


def load_record(path):
    with open(path) as f:
        data = json.load(f)
    flat = {}
    flatten("", data, flat)
    bench = str(flat.get("bench", os.path.basename(path)))
    context = ";".join(
        f"{k}={flat[k]}" for k in CONTEXT_KEYS if k in flat and k != "bench")
    metrics = {
        k: v for k, v in flat.items()
        if isinstance(v, (int, float)) and k not in CONTEXT_KEYS
    }
    return bench, context, metrics


def is_rate_metric(name):
    return name in RATE_METRICS or name.endswith(RATE_SUFFIXES)


def is_latency_metric(name):
    return name.endswith(LATENCY_SUFFIXES)


def check_kernel_ordering(bench, metrics, errors):
    """native >= bytecode >= interp (each rung only when measured)."""
    interp = metrics.get("interp_accesses_per_sec")
    bytecode = metrics.get("bytecode_accesses_per_sec")
    native = metrics.get("native_accesses_per_sec")
    if bytecode is not None and interp is not None:
        if bytecode < interp * ORDERING_TOLERANCE:
            errors.append(
                f"{bench}: kernel ordering violated: bytecode "
                f"{bytecode:.0f} < interp {interp:.0f} accesses/sec")
    if native is not None and bytecode is not None:
        if native < bytecode * ORDERING_TOLERANCE:
            errors.append(
                f"{bench}: kernel ordering violated: native "
                f"{native:.0f} < bytecode {bytecode:.0f} accesses/sec")


def read_history(path):
    """(bench, context, metric) -> latest value, in file order."""
    latest = {}
    if not os.path.exists(path):
        return latest
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            try:
                value = float(row["value"])
            except (KeyError, ValueError):
                continue
            latest[(row["bench"], row["context"], row["metric"])] = value
    return latest


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--history", default="BENCH_history.csv")
    parser.add_argument("--label", default="local",
                        help="row label (e.g. ci, local)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="max fractional rate drop vs history")
    parser.add_argument("--no-append", action="store_true",
                        help="gate only; do not extend the history")
    args = parser.parse_args()

    latest = read_history(args.history)
    errors = []
    new_rows = []
    date = datetime.date.today().isoformat()

    for path in args.inputs:
        try:
            bench, context, metrics = load_record(path)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
        check_kernel_ordering(bench, metrics, errors)
        for metric, value in sorted(metrics.items()):
            key = (bench, context, metric)
            if is_rate_metric(metric) and key in latest and latest[key] > 0:
                drop = (latest[key] - value) / latest[key]
                if drop > args.max_regression:
                    errors.append(
                        f"{bench}: {metric} regressed {100 * drop:.1f}% "
                        f"({latest[key]:.2f} -> {value:.2f}) "
                        f"[context: {context or '-'}]")
                else:
                    status = "ok" if drop >= 0 else "improved"
                    print(f"{bench}: {metric} {latest[key]:.2f} -> "
                          f"{value:.2f} ({status})")
            elif is_latency_metric(metric) and key in latest \
                    and latest[key] > 0:
                rise = (value - latest[key]) / latest[key]
                if rise > args.max_regression:
                    errors.append(
                        f"{bench}: {metric} regressed {100 * rise:.1f}% "
                        f"({latest[key]:.2f} -> {value:.2f} us) "
                        f"[context: {context or '-'}]")
                else:
                    status = "ok" if rise >= 0 else "improved"
                    print(f"{bench}: {metric} {latest[key]:.2f} -> "
                          f"{value:.2f} ({status})")
            elif is_rate_metric(metric) or is_latency_metric(metric):
                print(f"{bench}: {metric} {value:.2f} (new context, "
                      f"recorded as baseline)")
            new_rows.append([date, args.label, bench, context, metric,
                             repr(value) if isinstance(value, float)
                             else str(value)])

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if errors:
        return 3

    if not args.no_append:
        fresh = not os.path.exists(args.history)
        with open(args.history, "a", newline="") as f:
            writer = csv.writer(f)
            if fresh:
                writer.writerow(
                    ["date", "label", "bench", "context", "metric", "value"])
            writer.writerows(new_rows)
        print(f"appended {len(new_rows)} row(s) to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
