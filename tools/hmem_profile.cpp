// hmem_profile — stage 1 as a standalone tool (the Extrae role).
//
// Profiles one of the bundled applications and writes the trace that
// hmem_advise consumes. The trace is streamed to disk as the run executes
// (the profiler pushes into the format writer; nothing is buffered), in
// either the line-oriented text format or the compact binary format v2.
//
// With --ranks N the tool simulates an N-rank job: one profiled execution
// per rank, each with its own ASLR image and sampling phase, writing one
// shard per rank as <trace-out>.rank<k>. Feed all shards to hmem_advise,
// which k-way merges them by timestamp. Ranks are independent simulations;
// --jobs N runs up to N of them concurrently with bit-identical shards
// (each rank's seed derives from its index, each shard is private).
//
//   usage: hmem_profile <app> <trace-out> [period] [min-alloc-bytes]
//                       [--format text|binary] [--ranks N] [--jobs J]
//                       [--machine preset|config.ini]
//                       [--period P] [--min-alloc B]
//                       [--kernel k] [--app-config app.ini]
//                       [--checksums] [--faults spec]
//     app              hpcg | lulesh | bt | minife | cgpop | snap |
//                      maxw-dgtd | gtc-p | churn | transient — or the path
//                      of an app config file (INI workload DSL); with
//                      --app-config the app argument is dropped entirely
//     trace-out        output trace path (suffix .rank<k> when --ranks > 1)
//     --format f       trace encoding (default text)
//     --ranks N        simulated ranks -> N shards (default: app default)
//     --jobs J         profile up to J ranks concurrently (default 1)
//     --machine m      machine preset (knl, spr-hbm, ddr-cxl,
//                      hbm-ddr-pmem) or a machine config file (default knl)
//     --kernel k       access-loop backend: interp | bytecode | native |
//                      auto (default auto = HMEM_KERNEL, then bytecode);
//                      traces are bit-identical across kernels, and a
//                      profiled native request falls back to bytecode
//     --checksums      binary format only: guard every event chunk with a
//                      CRC-32 so later salvage can drop exactly the
//                      damaged chunks (off by default; adds 5 bytes per
//                      4096 events)
//     --faults spec    fault-injection schedule (overrides HMEM_FAULTS),
//                      e.g. "io_write:nth=3" or "alloc:p=0.01,seed=7"
//     period           PEBS sampling period (default 37589)
//     min-alloc-bytes  allocation monitoring threshold (default 4096)
//
// Shards are written atomically (temp file + fsync + rename): a crashed or
// faulted run never leaves a torn shard at the output path.
//
// Exit codes: 0 success, 2 usage/config error, 3 data or I/O error,
// 4 resource exhaustion.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_config.hpp"
#include "apps/workloads.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "engine/execution.hpp"
#include "engine/pipeline.hpp"
#include "cli.hpp"
#include "trace/format.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <app> <trace-out> [period] [min-alloc-bytes]\n"
               "          [--format text|binary] [--ranks N] [--jobs J]\n"
               "          [--machine preset|config.ini] [--period P] "
               "[--min-alloc B]\n"
               "          [--kernel interp|bytecode|native|auto] "
               "[--app-config app.ini]\n"
               "          [--checksums] [--faults spec]\n"
               "  app: a bundled app name or an app config file; with\n"
               "  --app-config the <app> argument is dropped\n"
               "  machine presets: %s\n",
               argv0, hmem::tools::machine_preset_list().c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmem;

  tools::cli_init_faults();
  std::vector<std::string> positional;
  trace::TraceFormat format = trace::TraceFormat::kText;
  trace::WriterOptions writer_options;
  int ranks = 0;  // 0 = single run with the app's default rank count
  int jobs = 1;
  memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  std::optional<std::uint64_t> period;     // 0 is a valid value for both:
  std::optional<std::uint64_t> min_alloc;  // "every miss" / "every alloc"
  std::optional<std::string> app_config;
  engine::kernel::KernelKind kern = engine::kernel::KernelKind::kAuto;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0) {
      const auto f = trace::parse_trace_format(
          tools::cli_value(argc, argv, i, "--format"));
      if (!f) {
        std::fprintf(stderr, "unknown format (expected text or binary)\n");
        return 2;
      }
      format = *f;
    } else if (std::strcmp(argv[i], "--ranks") == 0) {
      ranks = std::atoi(tools::cli_value(argc, argv, i, "--ranks"));
      if (ranks < 1) {
        std::fprintf(stderr, "--ranks must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(tools::cli_value(argc, argv, i, "--jobs"));
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--machine") == 0) {
      const auto machine =
          tools::load_machine(tools::cli_value(argc, argv, i, "--machine"));
      if (!machine) return 2;
      node = *machine;
    } else if (std::strcmp(argv[i], "--period") == 0) {
      period = std::strtoull(tools::cli_value(argc, argv, i, "--period"),
                             nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-alloc") == 0) {
      min_alloc = std::strtoull(
          tools::cli_value(argc, argv, i, "--min-alloc"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      const auto k = engine::kernel::parse_kernel(
          tools::cli_value(argc, argv, i, "--kernel"));
      if (!k) {
        std::fprintf(stderr, "--kernel: expected one of %s\n",
                     engine::kernel::kernel_list().c_str());
        return 2;
      }
      kern = *k;
    } else if (std::strcmp(argv[i], "--app-config") == 0) {
      app_config = tools::cli_value(argc, argv, i, "--app-config");
    } else if (std::strcmp(argv[i], "--checksums") == 0) {
      writer_options.checksums = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      tools::cli_configure_faults(tools::cli_value(argc, argv, i, "--faults"));
    } else if (tools::cli_is_flag(argv[i])) {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  // With --app-config the <app> positional disappears; trace-out shifts
  // into its slot.
  const std::size_t skip = app_config ? 0 : 1;
  if (positional.size() < skip + 1 || positional.size() > skip + 3)
    usage(argv[0]);
  // Positional period/min-alloc keep the original CLI working; an explicit
  // flag wins over a positional given on the same command line.
  if (positional.size() > skip + 1 && !period)
    period = std::strtoull(positional[skip + 1].c_str(), nullptr, 10);
  if (positional.size() > skip + 2 && !min_alloc)
    min_alloc = std::strtoull(positional[skip + 2].c_str(), nullptr, 10);
  const std::string trace_out = positional[skip];

  std::string app_error;
  auto app = app_config ? apps::load_app_file(*app_config, &app_error)
                        : apps::load_app(positional[0], &app_error);
  if (!app) {
    std::fprintf(stderr, "%s\n", app_error.c_str());
    return tools::kExitUsage;
  }
  if (ranks > 0) app->ranks = ranks;
  const int shard_count = ranks > 0 ? ranks : 1;

  engine::RunOptions base;
  base.profile = true;
  base.node = node;
  base.kernel = kern;
  if (period) base.sampler.period = *period;
  if (min_alloc) base.min_alloc_bytes = *min_alloc;

  // Each rank is an independent simulation writing its own shard file, so
  // up to --jobs of them run concurrently; per-rank status lines are
  // buffered and printed in rank order once all ranks finished. A failed
  // rank flips the abort flag: ranks not yet started return immediately
  // instead of burning minutes of simulation the error already doomed.
  std::vector<std::string> status(static_cast<std::size_t>(shard_count));
  std::vector<std::string> errors(static_cast<std::size_t>(shard_count));
  std::vector<int> codes(static_cast<std::size_t>(shard_count), 0);
  std::atomic<bool> abort_remaining{false};
  parallel_for(jobs, static_cast<std::size_t>(shard_count),
               [&](std::size_t r) {
    if (abort_remaining.load(std::memory_order_relaxed)) return;
    const std::string path =
        shard_count == 1 ? trace_out
                         : trace_out + ".rank" + std::to_string(r);
    try {
      // Atomic shard output: the destination path only ever holds a
      // complete shard; a crash or fault mid-run leaves no torn file.
      AtomicFile out(path);
      callstack::SiteDb sites;
      const auto writer =
          trace::make_trace_writer(out.stream(), sites, format,
                                   writer_options);
      engine::RunOptions opts = base;
      opts.seed += static_cast<std::uint64_t>(r) * engine::kRankSeedStride;
      opts.sites = &sites;
      opts.trace_sink = writer.get();
      const auto run = engine::run_app(*app, opts);
      writer->finish();
      out.commit();
      char line[512];
      std::snprintf(line, sizeof(line),
                    "profiled %s rank %zu/%d: %zu trace events (%s), "
                    "%llu samples, %.2f%% monitoring overhead -> %s",
                    app->name.c_str(), r, shard_count,
                    writer->events_written(),
                    trace::trace_format_name(format),
                    static_cast<unsigned long long>(run.samples),
                    run.monitoring_overhead * 100.0, path.c_str());
      status[r] = line;
    } catch (const std::exception& e) {
      errors[r] = path + ": " + e.what();
      codes[r] = exit_code_for(e);
      abort_remaining.store(true, std::memory_order_relaxed);
    }
  });
  for (int r = 0; r < shard_count; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (!errors[idx].empty()) {
      std::fprintf(stderr, "error: %s\n", errors[idx].c_str());
      return codes[idx] != 0 ? codes[idx] : tools::kExitData;
    }
    // Ranks skipped by the abort flag have neither status nor error.
    if (!status[idx].empty()) {
      std::fprintf(stderr, "%s\n", status[idx].c_str());
    }
  }
  return tools::kExitOk;
}
