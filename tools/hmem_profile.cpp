// hmem_profile — stage 1 as a standalone tool (the Extrae role).
//
// Profiles one of the bundled applications and writes the trace file that
// hmem_advise consumes.
//
//   usage: hmem_profile <app> <trace-out> [period] [min-alloc-bytes]
//     app              hpcg | lulesh | bt | minife | cgpop | snap |
//                      maxw-dgtd | gtc-p
//     trace-out        output trace path
//     period           PEBS sampling period (default 37589)
//     min-alloc-bytes  allocation monitoring threshold (default 4096)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/workloads.hpp"
#include "engine/execution.hpp"
#include "trace/tracefile.hpp"

int main(int argc, char** argv) {
  using namespace hmem;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <app> <trace-out> [period] [min-alloc-bytes]\n",
                 argv[0]);
    return 2;
  }
  const auto app = apps::find_app(argv[1]);
  if (!app) {
    std::string known;
    for (const auto& a : apps::all_apps()) {
      if (!known.empty()) known += ", ";
      known += a.name;
    }
    std::fprintf(stderr, "unknown app %s (expected one of: %s)\n", argv[1],
                 known.c_str());
    return 2;
  }

  engine::RunOptions opts;
  opts.profile = true;
  if (argc > 3) opts.sampler.period = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) opts.min_alloc_bytes = std::strtoull(argv[4], nullptr, 10);

  const auto run = engine::run_app(*app, opts);
  std::ofstream out(argv[2]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", argv[2]);
    return 1;
  }
  const std::size_t lines = trace::write_trace(out, *run.sites, *run.trace);
  std::fprintf(stderr,
               "profiled %s: %zu trace events, %llu samples, "
               "%.2f%% monitoring overhead -> %s\n",
               app->name.c_str(), lines,
               static_cast<unsigned long long>(run.samples),
               run.monitoring_overhead * 100.0, argv[2]);
  return 0;
}
