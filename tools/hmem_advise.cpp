// hmem_advise — stages 2+3 as a standalone tool (the Paramedir +
// hmem_advisor roles).
//
// Reads a trace produced by hmem_profile, aggregates per-object statistics,
// and writes the placement report for a given memory specification and
// strategy. The per-object CSV (Paramedir's view) goes to stderr or a file.
//
//   usage: hmem_advise <trace> <fast-budget> [options] > placement.txt
//     fast-budget      e.g. 256M, 16G (per process)
//     --strategy s     misses | density | exact      (default misses)
//     --threshold t    Misses(t%) threshold          (default 0)
//     --virtual b      virtual selection budget (e.g. 512M)
//     --slow b         fallback tier capacity        (default 1.5G)
//     --csv file       write the per-object CSV here
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "advisor/advisor.hpp"
#include "advisor/placement_report.hpp"
#include "analysis/aggregator.hpp"
#include "common/units.hpp"
#include "trace/tracefile.hpp"

int main(int argc, char** argv) {
  using namespace hmem;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <trace> <fast-budget> [--strategy s] "
                 "[--threshold t] [--virtual b] [--slow b] [--csv file]\n",
                 argv[0]);
    return 2;
  }
  const auto budget = parse_bytes(argv[2]);
  if (!budget) {
    std::fprintf(stderr, "bad budget: %s\n", argv[2]);
    return 2;
  }

  advisor::Options options;
  std::uint64_t slow = parse_bytes("1.5G").value();
  const char* csv_path = nullptr;
  for (int i = 3; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--strategy") == 0) {
      const auto s = advisor::parse_strategy(need_value("--strategy"));
      if (!s) {
        std::fprintf(stderr, "unknown strategy\n");
        return 2;
      }
      options.strategy = *s;
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      options.threshold_pct = std::strtod(need_value("--threshold"), nullptr);
    } else if (std::strcmp(argv[i], "--virtual") == 0) {
      const auto v = parse_bytes(need_value("--virtual"));
      if (!v) {
        std::fprintf(stderr, "bad virtual budget\n");
        return 2;
      }
      options.virtual_budget_bytes = *v;
    } else if (std::strcmp(argv[i], "--slow") == 0) {
      const auto v = parse_bytes(need_value("--slow"));
      if (!v) {
        std::fprintf(stderr, "bad slow capacity\n");
        return 2;
      }
      slow = *v;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = need_value("--csv");
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  callstack::SiteDb sites;
  trace::TraceBuffer buffer;
  try {
    trace::read_trace(in, sites, buffer);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace parse error: %s\n", e.what());
    return 1;
  }

  const auto report = analysis::aggregate_trace(buffer, sites);
  if (csv_path != nullptr) {
    std::ofstream csv(csv_path);
    csv << analysis::objects_to_csv(report.objects);
  }
  std::fprintf(stderr,
               "aggregated %zu objects, %llu samples "
               "(%.1f%% unattributed)\n",
               report.objects.size(),
               static_cast<unsigned long long>(report.total_samples),
               report.unattributed_fraction() * 100.0);

  advisor::HmemAdvisor adv(advisor::MemorySpec::two_tier(*budget, slow),
                           options);
  const auto placement = adv.advise(report.objects);
  std::cout << advisor::write_placement_report(placement);
  return 0;
}
