// hmem_advise — stages 2+3 as a standalone tool (the Paramedir +
// hmem_advisor roles).
//
// Reads one or more trace shards produced by hmem_profile (text or binary;
// the format of each shard is sniffed independently), k-way merges them by
// timestamp into a single ordered stream, aggregates per-object statistics
// in one streaming pass, and writes the placement report for a given memory
// specification and strategy. The per-object CSV (Paramedir's view) goes to
// stderr or a file.
//
//   usage: hmem_advise <trace> [trace...] <fast-budget> [options]
//                      > placement.txt
//     trace            trace file(s); pass every .rank<k> shard of a
//                      multi-rank profile to merge them
//     fast-budget      e.g. 256M, 16G (per process)
//     --strategy s     misses | density | exact      (default misses)
//     --threshold t    Misses(t%) threshold          (default 0)
//     --virtual b      virtual selection budget (e.g. 512M)
//     --slow b         fallback tier capacity        (default 1.5G)
//     --machine m      derive the tier list from a machine preset (knl,
//                      spr-hbm, ddr-cxl, hbm-ddr-pmem) or config file: the
//                      fastest tier gets <fast-budget>, every other tier
//                      its per-process capacity; overrides --slow. A budget
//                      above the fastest tier's capacity is clamped (with a
//                      warning) to what the machine can physically provide
//     --per-phase      emit a placement *schedule* instead: one knapsack
//                      per folded phase plus the migration diff between
//                      consecutive phases (consume with hmem_run
//                      --condition dynamic)
//     --stream         incremental mode: aggregate with the streaming
//                      IncrementalAggregator and keep an IncrementalAdvisor
//                      refreshed while events arrive (amortized re-solve;
//                      progress on stderr). The converged report is
//                      byte-identical to the batch path on the same input
//     --refresh-every n  (--stream) refresh the advisor every n events
//                      (default 8192; 0 = only the final converged refresh)
//     --prefix k       (--stream) answer from the first k events of the
//                      merged stream only — what a live client would have
//                      been told at that point of the run
//     --csv file       write the per-object CSV here (written atomically)
//     --strict         throw on the first malformed trace byte instead of
//                      the default chunk-level salvage (skip damaged
//                      chunks / dead shards with a warning and keep going)
//     --faults spec    fault-injection schedule (overrides HMEM_FAULTS)
//
// Exit codes: 0 success, 2 usage/config error, 3 data or I/O error
// (e.g. --strict hitting a damaged shard), 4 resource exhaustion.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "advisor/advisor.hpp"
#include "advisor/incremental_advisor.hpp"
#include "advisor/phase_advisor.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "advisor/placement_report.hpp"
#include "advisor/schedule_report.hpp"
#include "analysis/aggregator.hpp"
#include "analysis/incremental.hpp"
#include "common/units.hpp"
#include "cli.hpp"
#include "engine/pipeline.hpp"
#include "trace/replay.hpp"
#include "trace/salvage.hpp"

int main(int argc, char** argv) {
  using namespace hmem;

  tools::cli_init_faults();
  std::vector<std::string> positional;
  advisor::Options options;
  bool strict = false;
  std::uint64_t slow = parse_bytes("1.5G").value();
  std::optional<memsim::MachineConfig> machine;
  const char* csv_path = nullptr;
  bool per_phase = false;
  bool stream = false;
  std::uint64_t refresh_every = 8192;
  std::optional<std::uint64_t> prefix_events;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strategy") == 0) {
      const auto s = advisor::parse_strategy(
          tools::cli_value(argc, argv, i, "--strategy"));
      if (!s) {
        std::fprintf(stderr, "unknown strategy\n");
        return 2;
      }
      options.strategy = *s;
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      options.threshold_pct = std::strtod(
          tools::cli_value(argc, argv, i, "--threshold"), nullptr);
    } else if (std::strcmp(argv[i], "--virtual") == 0) {
      const auto v =
          parse_bytes(tools::cli_value(argc, argv, i, "--virtual"));
      if (!v) {
        std::fprintf(stderr, "bad virtual budget\n");
        return 2;
      }
      options.virtual_budget_bytes = *v;
    } else if (std::strcmp(argv[i], "--slow") == 0) {
      const auto v = parse_bytes(tools::cli_value(argc, argv, i, "--slow"));
      if (!v) {
        std::fprintf(stderr, "bad slow capacity\n");
        return 2;
      }
      slow = *v;
    } else if (std::strcmp(argv[i], "--machine") == 0) {
      machine =
          tools::load_machine(tools::cli_value(argc, argv, i, "--machine"));
      if (!machine) return 2;
    } else if (std::strcmp(argv[i], "--per-phase") == 0) {
      per_phase = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(argv[i], "--refresh-every") == 0) {
      char* end = nullptr;
      const char* value = tools::cli_value(argc, argv, i, "--refresh-every");
      refresh_every = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "bad --refresh-every event count: %s\n", value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prefix") == 0) {
      char* end = nullptr;
      const char* value = tools::cli_value(argc, argv, i, "--prefix");
      prefix_events = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "bad --prefix event count: %s\n", value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = tools::cli_value(argc, argv, i, "--csv");
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      tools::cli_configure_faults(tools::cli_value(argc, argv, i, "--faults"));
    } else if (tools::cli_is_flag(argv[i])) {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace> [trace...] <fast-budget> [--strategy s] "
                 "[--threshold t] [--virtual b] [--slow b] "
                 "[--machine preset|config.ini] [--per-phase] [--csv file]\n"
                 "          [--stream] [--refresh-every n] [--prefix k] "
                 "[--strict] [--faults spec]\n"
                 "  machine presets: %s\n",
                 argv[0], tools::machine_preset_list().c_str());
    return 2;
  }
  auto budget = parse_bytes(positional.back());
  if (!budget) {
    std::fprintf(stderr, "bad budget: %s\n", positional.back().c_str());
    return 2;
  }
  positional.pop_back();  // the rest are trace shards
  if (machine) {
    // A budget the machine cannot physically provide would make the advisor
    // select a working set the runtime can never host: clamp and say so.
    bool clamped = false;
    const std::uint64_t usable =
        engine::clamp_fast_budget(*machine, *budget, &clamped);
    if (clamped) {
      std::fprintf(stderr,
                   "warning: budget %s exceeds the %s tier's capacity %s; "
                   "clamping\n",
                   format_bytes(*budget).c_str(),
                   machine->tiers[machine->fastest_tier()].name.c_str(),
                   format_bytes(usable).c_str());
      budget = usable;
    }
  }

  if (prefix_events && !stream) {
    std::fprintf(stderr, "--prefix requires --stream\n");
    return 2;
  }

  // ReplayReader owns the whole multi-shard front: one shared SiteDb every
  // shard's sites are re-interned into, per-shard address rebasing (ranks
  // reuse the same simulated physical layout) and the k-way timestamp
  // merge. hmem_run --replay reads recordings through the same front.
  analysis::AggregateResult report;
  trace::ReplayReaderOptions replay_options;
  replay_options.salvage = !strict;
  std::optional<trace::ReplayReader> recording;
  try {
    recording.emplace(positional, replay_options);
  } catch (const std::exception& e) {
    return tools::cli_fail(e);
  }
  const advisor::MemorySpec spec =
      machine ? engine::machine_memory_spec(*machine, *budget, /*ranks=*/1)
              : advisor::MemorySpec::two_tier(*budget, slow);
  std::optional<advisor::IncrementalAdvisor> inc;
  if (stream) {
    // Incremental path: feed the merged stream event by event, keeping the
    // advisor's answer fresh with amortized re-solves; the final converged
    // refresh makes the report byte-identical to the batch path below.
    analysis::IncrementalAggregator agg(recording->sites());
    inc.emplace(spec, options);
    std::uint64_t seen = 0;
    std::uint64_t refreshes = 0;
    try {
      trace::TraceReader& merged = recording->reader();
      trace::Event event;
      while ((!prefix_events || seen < *prefix_events) &&
             merged.next(event)) {
        trace::dispatch_event(event, agg);
        ++seen;
        if (refresh_every > 0 && seen % refresh_every == 0) {
          inc->refresh(agg);
          ++refreshes;
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace parse error: %s\n", e.what());
      return exit_code_for(e);
    }
    inc->refresh(agg, /*finalize=*/true);
    ++refreshes;
    report = agg.snapshot();
    std::fprintf(
        stderr,
        "stream: %llu events%s, %llu refreshes, %llu knapsack solves\n",
        static_cast<unsigned long long>(seen),
        prefix_events ? " (prefix)" : "",
        static_cast<unsigned long long>(refreshes),
        static_cast<unsigned long long>(inc->total_resolves()));
  } else {
    try {
      report = analysis::aggregate_stream(recording->reader(),
                                          recording->sites());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace parse error: %s\n", e.what());
      return exit_code_for(e);
    }
  }
  const trace::SalvageReport& salvage = recording->salvage_report();
  if (!salvage.clean()) {
    std::fprintf(stderr, "warning: %s\n", salvage.summary().c_str());
  }

  if (csv_path != nullptr) {
    try {
      AtomicFile csv(csv_path);
      csv.stream() << analysis::objects_to_csv(report.objects);
      csv.commit();
    } catch (const std::exception& e) {
      return tools::cli_fail(e);
    }
  }
  std::fprintf(stderr,
               "aggregated %zu objects from %zu shard%s, %llu samples "
               "(%.1f%% unattributed)\n",
               report.objects.size(), positional.size(),
               positional.size() == 1 ? "" : "s",
               static_cast<unsigned long long>(report.total_samples),
               report.unattributed_fraction() * 100.0);

  if (per_phase) {
    if (report.phases.empty()) {
      std::fprintf(stderr,
                   "--per-phase: the trace carries no phase events; "
                   "re-profile or drop the flag\n");
      return tools::kExitData;
    }
    advisor::PlacementSchedule batch_schedule;
    if (!stream) {
      advisor::PhaseAdvisor adv(spec, options);
      batch_schedule = adv.advise(report.phases);
    }
    const advisor::PlacementSchedule& schedule =
        stream ? inc->schedule() : batch_schedule;
    std::fprintf(stderr,
                 "schedule: %zu phase(s), %llu bytes migrated per cycle\n",
                 schedule.phases.size(),
                 static_cast<unsigned long long>(
                     schedule.migration_bytes_per_cycle()));
    std::cout << advisor::write_schedule_report(schedule);
    return tools::kExitOk;
  }
  if (stream) {
    std::cout << advisor::write_placement_report(inc->placement());
    return tools::kExitOk;
  }
  advisor::HmemAdvisor adv(spec, options);
  const auto placement = adv.advise(report.objects);
  std::cout << advisor::write_placement_report(placement);
  return tools::kExitOk;
}
