// hmem_sweep — fleet-scale evaluation sweeps over the (app x machine x
// budget x condition/strategy) grid, on top of the sweep engine
// (engine/sweep.hpp): shared stage-1 profiles, a process-wide compiled
// kernel cache, per-cell arena scratch, resumable checkpoint stores and
// deterministic multi-process sharding.
//
//   usage: hmem_sweep [options]
//     --apps a,b,...        workloads (default: the eight paper apps plus
//                           churn and transient)
//     --machines m1,m2,...  machine presets or config files (default: knl)
//     --budgets 64M,256M    fast-tier budget points, unit suffixes allowed
//                           (default: the paper ladder per app)
//     --baselines c1,c2     baseline conditions: ddr, numactl, autohbw,
//                           cache (default: ddr)
//     --strategies s1,s2    advisor strategies: density, misses:<pct>, or
//                           the shorthand `paper` for the paper's four
//                           (default: none)
//     --dynamic             add one phase-aware (static-vs-dynamic) cell
//                           per (app, machine, budget)
//     --sweep-config f.ini  read the [sweep] section of an INI file for
//                           any of the above; explicit flags win
//     --jobs N              worker threads for independent cells
//     --shards I/N          run shard I of N (1-based): this process
//                           computes cells with (index % N) == I-1
//     --kernel kind         access-loop backend (auto/interp/bytecode/
//                           native)
//     --smoke               shrink every app for CI (structure preserved)
//     --store cells.dat     append finished cells to a checksummed store
//     --resume              (requires --store) skip cells already stored
//     --out results.csv     write the cell CSV to a file (atomic) instead
//                           of only stdout
//     --bench-out f.json    write sweep throughput metrics (cells/sec,
//                           per-cell peak scratch, cache hit rates, peak
//                           RSS) as JSON
//     --faults spec         fault-injection schedule (overrides
//                           HMEM_FAULTS)
//     --merge out.dat --stores a.dat,b.dat,...
//                           no sweep: combine shard stores into one file
//                           byte-identical to an unsharded run's store
//
// Sharding contract: every shard must be launched with the same grid flags.
// Each shard writes its own store; `--merge` rewrites their union in cell
// order, so the merged file is byte-identical to the store of an unsharded
// run over the same grid.
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "cli.hpp"
#include "common/atomic_file.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_store.hpp"

namespace {

using namespace hmem;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--apps a,b,...] [--machines m1,m2,...]\n"
      "       [--budgets 64M,256M,...] [--baselines ddr,numactl,...]\n"
      "       [--strategies density,misses:1,...|paper] [--dynamic]\n"
      "       [--sweep-config file.ini] [--jobs N] [--shards I/N]\n"
      "       [--kernel %s] [--smoke]\n"
      "       [--store cells.dat] [--resume] [--out results.csv]\n"
      "       [--bench-out bench.json] [--faults spec]\n"
      "       [--merge out.dat --stores a.dat,b.dat,...]\n"
      "machine presets: %s\n",
      argv0, engine::kernel::kernel_list().c_str(),
      tools::machine_preset_list().c_str());
  return tools::kExitUsage;
}

std::vector<apps::AppSpec> parse_apps(const std::string& csv) {
  std::vector<apps::AppSpec> result;
  for (const std::string& name : split(csv, ',')) {
    auto app = apps::find_app(trim(name));
    if (!app) {
      std::fprintf(stderr, "--apps: unknown workload '%s'\n",
                   trim(name).c_str());
      std::exit(tools::kExitUsage);
    }
    result.push_back(std::move(*app));
  }
  return result;
}

std::vector<memsim::MachineConfig> parse_machines(const std::string& csv) {
  std::vector<memsim::MachineConfig> result;
  for (const std::string& name : split(csv, ',')) {
    const auto machine = tools::load_machine(trim(name));
    if (!machine) std::exit(tools::kExitUsage);
    result.push_back(*machine);
  }
  return result;
}

std::vector<std::uint64_t> parse_budgets(const std::string& csv) {
  std::vector<std::uint64_t> result;
  for (const std::string& item : split(csv, ',')) {
    const auto bytes = parse_bytes(trim(item));
    if (!bytes || *bytes == 0) {
      std::fprintf(stderr, "--budgets: cannot parse '%s'\n",
                   trim(item).c_str());
      std::exit(tools::kExitUsage);
    }
    result.push_back(*bytes);
  }
  return result;
}

std::vector<engine::Condition> parse_baselines(const std::string& csv) {
  std::vector<engine::Condition> result;
  for (const std::string& item : split(csv, ',')) {
    const std::string name = to_lower(trim(item));
    if (name == "ddr") {
      result.push_back(engine::Condition::kDdr);
    } else if (name == "numactl") {
      result.push_back(engine::Condition::kNumactl);
    } else if (name == "autohbw") {
      result.push_back(engine::Condition::kAutoHbw);
    } else if (name == "cache") {
      result.push_back(engine::Condition::kCacheMode);
    } else {
      std::fprintf(stderr,
                   "--baselines: unknown condition '%s' (one of ddr, "
                   "numactl, autohbw, cache)\n",
                   name.c_str());
      std::exit(tools::kExitUsage);
    }
  }
  return result;
}

std::vector<engine::StrategyConfig> parse_strategies(const std::string& csv) {
  std::vector<engine::StrategyConfig> result;
  for (const std::string& item : split(csv, ',')) {
    const std::string name = to_lower(trim(item));
    if (name == "paper") {
      for (engine::StrategyConfig& s : engine::paper_strategies()) {
        result.push_back(std::move(s));
      }
    } else if (name == "density") {
      engine::StrategyConfig s;
      s.label = "Density";
      s.options.strategy = advisor::Strategy::kDensity;
      result.push_back(std::move(s));
    } else if (name.rfind("misses:", 0) == 0) {
      char* end = nullptr;
      const std::string pct = name.substr(7);
      const double threshold = std::strtod(pct.c_str(), &end);
      if (end != pct.c_str() + pct.size() || threshold < 0) {
        std::fprintf(stderr, "--strategies: bad threshold in '%s'\n",
                     name.c_str());
        std::exit(tools::kExitUsage);
      }
      engine::StrategyConfig s;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "Misses(%g%%)", threshold);
      s.label = buf;
      s.options.strategy = advisor::Strategy::kMisses;
      s.options.threshold_pct = threshold;
      result.push_back(std::move(s));
    } else {
      std::fprintf(stderr,
                   "--strategies: unknown strategy '%s' (density, "
                   "misses:<pct>, or paper)\n",
                   name.c_str());
      std::exit(tools::kExitUsage);
    }
  }
  return result;
}

/// Process-wide peak resident set in bytes (ru_maxrss is KiB on Linux).
std::size_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  tools::cli_init_faults();

  // Grid selection, as raw strings so the INI file and explicit flags can
  // share one parsing path (flags win).
  std::string apps_csv;
  std::string machines_csv;
  std::string budgets_csv;
  std::string baselines_csv;
  std::string strategies_csv;
  bool dynamic_cells = false;
  bool dynamic_set = false;
  std::string sweep_config;
  int jobs = 1;
  int shard_index = 0;
  int shard_count = 1;
  engine::kernel::KernelKind kernel = engine::kernel::KernelKind::kAuto;
  bool smoke = false;
  std::string store_path;
  bool resume = false;
  std::string out_path;
  std::string bench_out;
  std::string merge_out;
  std::string merge_stores_csv;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--apps") == 0) {
      apps_csv = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--machines") == 0) {
      machines_csv = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--budgets") == 0) {
      budgets_csv = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--baselines") == 0) {
      baselines_csv = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--strategies") == 0) {
      strategies_csv = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--dynamic") == 0) {
      dynamic_cells = true;
      dynamic_set = true;
    } else if (std::strcmp(arg, "--sweep-config") == 0) {
      sweep_config = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      jobs = std::atoi(tools::cli_value(argc, argv, i, arg));
      if (jobs < 1) jobs = 1;
    } else if (std::strcmp(arg, "--shards") == 0) {
      const char* value = tools::cli_value(argc, argv, i, arg);
      int index = 0;
      int count = 0;
      if (std::sscanf(value, "%d/%d", &index, &count) != 2 || count < 1 ||
          index < 1 || index > count) {
        std::fprintf(stderr,
                     "--shards: expected I/N with 1 <= I <= N, got '%s'\n",
                     value);
        return tools::kExitUsage;
      }
      shard_index = index - 1;
      shard_count = count;
    } else if (std::strcmp(arg, "--kernel") == 0) {
      const char* value = tools::cli_value(argc, argv, i, arg);
      const auto kind = engine::kernel::parse_kernel(value);
      if (!kind) {
        std::fprintf(stderr, "--kernel: unknown kernel '%s' (one of %s)\n",
                     value, engine::kernel::kernel_list().c_str());
        return tools::kExitUsage;
      }
      kernel = *kind;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--store") == 0) {
      store_path = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--bench-out") == 0) {
      bench_out = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--faults") == 0) {
      tools::cli_configure_faults(tools::cli_value(argc, argv, i, arg));
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge_out = tools::cli_value(argc, argv, i, arg);
    } else if (std::strcmp(arg, "--stores") == 0) {
      merge_stores_csv = tools::cli_value(argc, argv, i, arg);
    } else {
      return usage(argv[0]);
    }
  }

  // Merge mode: no sweep, just rewrite the union of the shard stores.
  if (!merge_out.empty() || !merge_stores_csv.empty()) {
    if (merge_out.empty() || merge_stores_csv.empty()) {
      std::fprintf(stderr, "--merge and --stores go together\n");
      return tools::kExitUsage;
    }
    std::vector<std::string> inputs;
    for (const std::string& path : split(merge_stores_csv, ',')) {
      inputs.push_back(trim(path));
    }
    try {
      engine::merge_sweep_stores(inputs, merge_out);
    } catch (const std::exception& e) {
      return tools::cli_fail(e);
    }
    const engine::SweepStore merged(merge_out);
    std::printf("merged %zu store(s) into %s (%zu cell(s))\n", inputs.size(),
                merge_out.c_str(), merged.size());
    return tools::kExitOk;
  }
  if (resume && store_path.empty()) {
    std::fprintf(stderr, "--resume requires --store\n");
    return tools::kExitUsage;
  }

  // INI sweep config fills whatever the flags left unset.
  if (!sweep_config.empty()) {
    std::ifstream in(sweep_config);
    if (!in) {
      std::fprintf(stderr, "--sweep-config: cannot read %s\n",
                   sweep_config.c_str());
      return tools::kExitData;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const Config config = Config::parse(text.str());
    if (apps_csv.empty()) apps_csv = config.get_string("sweep", "apps", "");
    if (machines_csv.empty()) {
      machines_csv = config.get_string("sweep", "machines", "");
    }
    if (budgets_csv.empty()) {
      budgets_csv = config.get_string("sweep", "budgets", "");
    }
    if (baselines_csv.empty()) {
      baselines_csv = config.get_string("sweep", "baselines", "");
    }
    if (strategies_csv.empty()) {
      strategies_csv = config.get_string("sweep", "strategies", "");
    }
    if (!dynamic_set) {
      dynamic_cells = config.get_bool("sweep", "dynamic", false);
    }
  }

  engine::SweepSpec spec;
  if (apps_csv.empty()) {
    spec.apps = apps::all_apps();
    for (apps::AppSpec& app : apps::phase_shift_apps()) {
      spec.apps.push_back(std::move(app));
    }
  } else {
    spec.apps = parse_apps(apps_csv);
  }
  spec.machines = machines_csv.empty()
                      ? std::vector<memsim::MachineConfig>{
                            memsim::MachineConfig::knl7250(
                                memsim::MemMode::kFlat)}
                      : parse_machines(machines_csv);
  spec.baselines = baselines_csv.empty()
                       ? std::vector<engine::Condition>{
                             engine::Condition::kDdr}
                       : parse_baselines(baselines_csv);
  if (!strategies_csv.empty()) {
    spec.strategies = parse_strategies(strategies_csv);
  }
  if (!budgets_csv.empty()) {
    const std::vector<std::uint64_t> budgets = parse_budgets(budgets_csv);
    spec.budgets_for = [budgets](const apps::AppSpec&) { return budgets; };
  }
  spec.dynamic_cells = dynamic_cells;
  spec.base.kernel = kernel;
  spec.jobs = jobs;
  spec.shard_index = shard_index;
  spec.shard_count = shard_count;
  if (smoke) {
    for (apps::AppSpec& app : spec.apps) {
      app.iterations = std::min<std::uint64_t>(app.iterations, 4);
      app.accesses_per_iteration =
          std::min<std::uint64_t>(app.accesses_per_iteration, 6000);
    }
  }

  std::unique_ptr<engine::SweepStore> store;
  if (!store_path.empty()) {
    try {
      store = std::make_unique<engine::SweepStore>(store_path);
    } catch (const std::exception& e) {
      return tools::cli_fail(e);
    }
    if (store->dropped_records() > 0) {
      std::fprintf(stderr,
                   "warning: %s: dropped %zu damaged record(s) — the torn "
                   "tail of a killed run\n",
                   store->path().c_str(), store->dropped_records());
    }
  }

  engine::SweepEngine sweep_engine(std::move(spec));
  std::vector<engine::SweepOutcome> outcomes;
  try {
    outcomes = sweep_engine.run(store.get(), resume);
  } catch (const std::exception& e) {
    return tools::cli_fail(e);
  }
  const engine::SweepSpec& grid = sweep_engine.spec();
  const engine::SweepStats& stats = sweep_engine.stats();

  std::printf("sweep: %zu cell(s)", stats.cells_total);
  if (shard_count > 1) {
    std::printf(", shard %d/%d owns %zu", shard_index + 1, shard_count,
                stats.cells_in_shard);
  }
  std::printf(
      " — computed %zu, resumed %zu in %.2fs (%.2f cells/s)\n"
      "caches: profile %llu/%llu hits (%.0f%%), programs %llu/%llu hits "
      "(%.0f%%, %zu entries)\n"
      "memory: peak cell scratch %s, arena reserved %s, peak RSS %s\n",
      stats.cells_computed, stats.cells_resumed, stats.wall_seconds,
      stats.cells_per_second,
      static_cast<unsigned long long>(stats.profile_hits),
      static_cast<unsigned long long>(stats.profile_hits +
                                      stats.profile_misses),
      100.0 * stats.profile_hit_rate(),
      static_cast<unsigned long long>(stats.program_hits),
      static_cast<unsigned long long>(stats.program_hits +
                                      stats.program_misses),
      100.0 * stats.program_hit_rate(), stats.program_cache_entries,
      format_bytes(stats.arena_peak_cell_bytes).c_str(),
      format_bytes(stats.arena_reserved_bytes).c_str(),
      format_bytes(peak_rss_bytes()).c_str());

  // Cell results as CSV: one line per cell with a result (the whole grid
  // without sharding; this shard's slice plus resumed cells with it).
  std::string csv =
      "index,app,machine,kind,detail,budget_bytes,fom,fast_hwm_bytes,"
      "any_overflow,static_fom,phases,migration_bytes,migration_cost_s\n";
  for (const engine::SweepOutcome& outcome : outcomes) {
    if (!outcome.has_result()) continue;
    const engine::SweepCell& cell = outcome.cell;
    const engine::SweepCellResult& r = outcome.result;
    std::string detail;
    if (cell.kind == engine::CellKind::kBaseline) {
      detail = engine::condition_name(cell.baseline);
    } else if (cell.kind == engine::CellKind::kFramework) {
      detail = grid.strategies[cell.strategy].label;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%zu,%s,%s,%s,%s,%llu,%.17g,%llu,%d,%.17g,%zu,%llu,%.17g\n",
                  cell.index, grid.apps[cell.app].name.c_str(),
                  grid.machines[cell.machine].name.c_str(),
                  engine::cell_kind_name(cell.kind), detail.c_str(),
                  static_cast<unsigned long long>(cell.budget_bytes), r.fom,
                  static_cast<unsigned long long>(r.fast_hwm_bytes),
                  r.any_overflow ? 1 : 0, r.static_fom, r.phases,
                  static_cast<unsigned long long>(r.migration_bytes),
                  r.migration_cost_s);
    csv += buf;
  }
  if (out_path.empty()) {
    std::printf("\n--- CSV ---\n%s", csv.c_str());
  } else {
    std::string error;
    if (!write_file_atomic(out_path, csv, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   error.c_str());
      return tools::kExitData;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!bench_out.empty()) {
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"bench\": \"sweep\",\n"
        "  \"cells_total\": %zu,\n"
        "  \"cells_in_shard\": %zu,\n"
        "  \"cells_computed\": %zu,\n"
        "  \"cells_resumed\": %zu,\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"cells_per_second\": %.6f,\n"
        "  \"profile_hits\": %llu,\n"
        "  \"profile_misses\": %llu,\n"
        "  \"profile_hit_rate\": %.6f,\n"
        "  \"program_hits\": %llu,\n"
        "  \"program_misses\": %llu,\n"
        "  \"program_hit_rate\": %.6f,\n"
        "  \"program_cache_entries\": %zu,\n"
        "  \"arena_peak_cell_bytes\": %zu,\n"
        "  \"arena_reserved_bytes\": %zu,\n"
        "  \"peak_rss_bytes\": %zu,\n"
        "  \"jobs\": %d,\n"
        "  \"kernel\": \"%s\",\n"
        "  \"smoke\": %s\n"
        "}\n",
        stats.cells_total, stats.cells_in_shard, stats.cells_computed,
        stats.cells_resumed, stats.wall_seconds, stats.cells_per_second,
        static_cast<unsigned long long>(stats.profile_hits),
        static_cast<unsigned long long>(stats.profile_misses),
        stats.profile_hit_rate(),
        static_cast<unsigned long long>(stats.program_hits),
        static_cast<unsigned long long>(stats.program_misses),
        stats.program_hit_rate(), stats.program_cache_entries,
        stats.arena_peak_cell_bytes, stats.arena_reserved_bytes,
        peak_rss_bytes(), jobs, engine::kernel::kernel_name(kernel),
        smoke ? "true" : "false");
    std::string error;
    if (!write_file_atomic(bench_out, buf, &error)) {
      std::fprintf(stderr, "cannot write %s: %s\n", bench_out.c_str(),
                   error.c_str());
      return tools::kExitData;
    }
    std::printf("wrote %s\n", bench_out.c_str());
  }
  return tools::kExitOk;
}
