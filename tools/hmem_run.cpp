// hmem_run — stage 4 (and the baselines) as a standalone tool.
//
// Runs one of the bundled applications under a placement condition. With
// --placement, auto-hbwmalloc honours an hmem_advise report (the framework
// condition); otherwise one of the baseline conditions applies.
//
//   usage: hmem_run <app> [--condition c] [--placement report.txt]
//                   [--ranks N]
//     condition   ddr | numactl | autohbw | cache     (default ddr)
//     ranks       override the app's simulated rank count (scaling studies:
//                 per-rank LLC, capacity and bandwidth shares shrink as N
//                 grows, exactly as in the profiled multi-rank pipeline)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "advisor/placement_report.hpp"
#include "apps/workloads.hpp"
#include "common/units.hpp"
#include "engine/execution.hpp"
#include "cli.hpp"

int main(int argc, char** argv) {
  using namespace hmem;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <app> [--condition ddr|numactl|autohbw|cache] "
                 "[--placement report.txt] [--ranks N]\n",
                 argv[0]);
    return 2;
  }
  auto app = apps::find_app(argv[1]);
  if (!app) {
    std::string known;
    for (const auto& a : apps::all_apps()) {
      if (!known.empty()) known += ", ";
      known += a.name;
    }
    std::fprintf(stderr, "unknown app %s (expected one of: %s)\n", argv[1],
                 known.c_str());
    return 2;
  }

  engine::RunOptions opts;
  advisor::Placement placement;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--condition") == 0) {
      const std::string c = tools::cli_value(argc, argv, i, "--condition");
      if (c == "ddr") {
        opts.condition = engine::Condition::kDdr;
      } else if (c == "numactl") {
        opts.condition = engine::Condition::kNumactl;
      } else if (c == "autohbw") {
        opts.condition = engine::Condition::kAutoHbw;
      } else if (c == "cache") {
        opts.condition = engine::Condition::kCacheMode;
      } else {
        std::fprintf(stderr, "unknown condition %s\n", c.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--placement") == 0) {
      std::ifstream in(tools::cli_value(argc, argv, i, "--placement"));
      if (!in) {
        std::fprintf(stderr, "cannot open placement report\n");
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      try {
        placement = advisor::read_placement_report(text.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "placement parse error: %s\n", e.what());
        return 1;
      }
      opts.condition = engine::Condition::kFramework;
      opts.placement = &placement;
    } else if (std::strcmp(argv[i], "--ranks") == 0) {
      const int ranks = std::atoi(tools::cli_value(argc, argv, i, "--ranks"));
      if (ranks < 1) {
        std::fprintf(stderr, "--ranks must be >= 1\n");
        return 2;
      }
      app->ranks = ranks;
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }

  const auto run = engine::run_app(*app, opts);
  std::printf("app         : %s\n", run.app.c_str());
  std::printf("condition   : %s\n", run.condition.c_str());
  std::printf("FOM         : %.4f %s\n", run.fom, run.fom_unit.c_str());
  std::printf("time        : %.3f s (simulated)\n", run.time_s);
  std::printf("MCDRAM HWM  : %s/rank\n",
              format_bytes(run.mcdram_hwm_bytes).c_str());
  std::printf("DRAM traffic: %s DDR + %s MCDRAM per rank\n",
              format_bytes(run.ddr_bytes).c_str(),
              format_bytes(run.mcdram_bytes).c_str());
  if (run.autohbw.has_value()) {
    std::printf("interposer  : %llu intercepted, %llu promoted, "
                "%llu budget rejections%s\n",
                static_cast<unsigned long long>(
                    run.autohbw->intercepted_allocs),
                static_cast<unsigned long long>(run.autohbw->promoted),
                static_cast<unsigned long long>(
                    run.autohbw->budget_rejections),
                run.autohbw->any_overflow ? " (overflow!)" : "");
  }
  return 0;
}
