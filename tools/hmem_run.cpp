// hmem_run — stage 4 (and the baselines) as a standalone tool.
//
// Runs one of the bundled applications under one or more placement
// conditions. With --placement, auto-hbwmalloc honours an hmem_advise
// report: a static placement runs the framework condition, a per-phase
// schedule (hmem_advise --per-phase; the file format is sniffed) runs the
// dynamic condition, re-placing objects at phase boundaries with migration
// traffic charged and reported. Baseline conditions apply otherwise.
// --condition takes a comma-separated list (e.g. ddr,numactl,cache), and
// --jobs N runs up to N conditions concurrently — each run is an
// independent simulation, so the reports are identical to serial runs and
// printed in the order given.
//
// Instead of a synthetic app, --replay drives the run from recorded trace
// shards (hmem_profile output): each recorded allocation is re-routed
// through the chosen condition's policy and each sample charges its weight
// to whichever tier now hosts the address. Replaying a shard under its
// source condition reproduces that run's tier traffic exactly (profile
// with --period 1); other conditions answer "where would this recorded
// traffic have been served?". Cache and dynamic cannot be replayed.
//
//   usage: hmem_run <app> [--condition c[,c...]] [--placement report.txt]
//                   [--machine preset|config.ini] [--ranks N] [--jobs J]
//                   [--kernel k] [--app-config app.ini] [--replay shard ...]
//     app         bundled app name or an app config file; replaced by
//                 --app-config (explicit file) or --replay (no app at all)
//     condition   ddr | numactl | autohbw | cache | dynamic (default ddr;
//                 dynamic needs a --placement schedule)
//     placement   hmem_advise output: a placement report (framework
//                 condition) or a placement schedule (dynamic condition)
//     machine     machine preset (knl, spr-hbm, ddr-cxl, hbm-ddr-pmem) or
//                 a machine config file                (default knl)
//     ranks       override the app's simulated rank count (scaling studies:
//                 per-rank LLC, capacity and bandwidth shares shrink as N
//                 grows, exactly as in the profiled multi-rank pipeline);
//                 with --replay, the rank count the shards represent
//                 (default: the number of shards)
//     jobs        run conditions concurrently (default 1)
//     kernel      access-loop backend: interp | bytecode | native | auto
//                 (default auto, which honours HMEM_KERNEL then picks
//                 bytecode). All kernels produce bit-identical reports;
//                 unavailable choices fall back down the ladder.
//     replay      recorded trace shard(s); pass every .rank<k> shard of a
//                 multi-rank profile
//     --strict    replay only: throw on the first malformed trace byte
//                 instead of the default chunk-level salvage
//     --faults s  fault-injection schedule (overrides HMEM_FAULTS)
//
// Exit codes: 0 success, 2 usage/config error, 3 data or I/O error,
// 4 resource exhaustion (e.g. the recorded allocation stream exceeding the
// simulated machine's capacities).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/placement_report.hpp"
#include "advisor/schedule_report.hpp"
#include "apps/app_config.hpp"
#include "apps/workloads.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"
#include "common/error.hpp"
#include "engine/execution.hpp"
#include "engine/replay.hpp"
#include "trace/replay.hpp"
#include "trace/salvage.hpp"
#include "cli.hpp"

namespace {

std::string report_text(const hmem::engine::RunResult& run) {
  using hmem::format_bytes;
  std::ostringstream os;
  char buf[256];
  os << "app         : " << run.app << '\n';
  os << "condition   : " << run.condition << '\n';
  std::snprintf(buf, sizeof(buf), "FOM         : %.4f %s\n", run.fom,
                run.fom_unit.c_str());
  os << buf;
  std::snprintf(buf, sizeof(buf), "time        : %.3f s (simulated)\n",
                run.time_s);
  os << buf;
  const std::string fast_name =
      run.tier_traffic.empty() ? "fast" : run.tier_traffic.front().name;
  std::snprintf(buf, sizeof(buf), "%-12s: ", (fast_name + " HWM").c_str());
  os << buf << format_bytes(run.fast_hwm_bytes) << "/rank\n";
  os << "DRAM traffic: ";
  for (std::size_t t = run.tier_traffic.size(); t-- > 0;) {
    // Slowest tier first, mirroring the historical "DDR + MCDRAM" order.
    os << format_bytes(run.tier_traffic[t].bytes) << ' '
       << run.tier_traffic[t].name;
    if (t != 0) os << " + ";
  }
  os << " per rank\n";
  if (run.migration_count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "migration   : %llu moves, %s moved, %.3f s charged (",
                  static_cast<unsigned long long>(run.migration_count),
                  format_bytes(run.migration_bytes).c_str(),
                  run.migration_cost_s);
    os << buf;
    for (std::size_t t = run.tier_traffic.size(); t-- > 0;) {
      os << format_bytes(run.tier_traffic[t].migration_bytes) << ' '
         << run.tier_traffic[t].name;
      if (t != 0) os << " + ";
    }
    os << ")\n";
  }
  if (run.autohbw.has_value()) {
    std::snprintf(buf, sizeof(buf),
                  "interposer  : %llu intercepted, %llu promoted, "
                  "%llu budget rejections%s\n",
                  static_cast<unsigned long long>(
                      run.autohbw->intercepted_allocs),
                  static_cast<unsigned long long>(run.autohbw->promoted),
                  static_cast<unsigned long long>(
                      run.autohbw->budget_rejections),
                  run.autohbw->any_overflow ? " (overflow!)" : "");
    os << buf;
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hmem;
  tools::cli_init_faults();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <app> [--condition ddr|numactl|autohbw|cache"
                 "|dynamic[,...]] [--placement report.txt] "
                 "[--machine preset|config.ini] [--ranks N] [--jobs J] "
                 "[--kernel interp|bytecode|native|auto] "
                 "[--app-config app.ini] [--replay shard ...] "
                 "[--strict] [--faults spec]\n"
                 "  machine presets: %s\n",
                 argv[0], tools::machine_preset_list().c_str());
    return 2;
  }

  std::vector<std::string> positional;
  std::vector<std::string> replay_shards;
  std::optional<std::string> app_config;
  std::vector<engine::Condition> conditions;
  advisor::Placement placement;
  advisor::PlacementSchedule schedule;
  bool use_placement = false;
  bool use_schedule = false;
  bool dynamic_requested = false;
  int ranks = 0;
  int jobs = 1;
  bool strict = false;
  engine::kernel::KernelKind kern = engine::kernel::KernelKind::kAuto;
  memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--condition") == 0) {
      const std::string list = tools::cli_value(argc, argv, i, "--condition");
      for (const std::string& c : split(list, ',')) {
        if (c == "ddr") {
          conditions.push_back(engine::Condition::kDdr);
        } else if (c == "numactl") {
          conditions.push_back(engine::Condition::kNumactl);
        } else if (c == "autohbw") {
          conditions.push_back(engine::Condition::kAutoHbw);
        } else if (c == "cache") {
          conditions.push_back(engine::Condition::kCacheMode);
        } else if (c == "dynamic") {
          // Queued once the schedule is known; order is preserved below by
          // appending it after the baselines, like the framework condition.
          dynamic_requested = true;
        } else {
          std::fprintf(stderr, "unknown condition %s\n", c.c_str());
          return 2;
        }
      }
    } else if (std::strcmp(argv[i], "--placement") == 0) {
      std::ifstream in(tools::cli_value(argc, argv, i, "--placement"));
      if (!in) {
        std::fprintf(stderr, "cannot open placement report\n");
        return tools::kExitData;
      }
      std::ostringstream text;
      text << in.rdbuf();
      try {
        if (advisor::is_schedule_report(text.str())) {
          schedule = advisor::read_schedule_report(text.str());
          use_schedule = true;
        } else {
          placement = advisor::read_placement_report(text.str());
          use_placement = true;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "placement parse error: %s\n", e.what());
        return exit_code_for(e);
      }
    } else if (std::strcmp(argv[i], "--machine") == 0) {
      const auto machine =
          tools::load_machine(tools::cli_value(argc, argv, i, "--machine"));
      if (!machine) return 2;
      node = *machine;
    } else if (std::strcmp(argv[i], "--ranks") == 0) {
      ranks = std::atoi(tools::cli_value(argc, argv, i, "--ranks"));
      if (ranks < 1) {
        std::fprintf(stderr, "--ranks must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = std::atoi(tools::cli_value(argc, argv, i, "--jobs"));
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      const auto k = engine::kernel::parse_kernel(
          tools::cli_value(argc, argv, i, "--kernel"));
      if (!k) {
        std::fprintf(stderr, "--kernel: expected one of %s\n",
                     engine::kernel::kernel_list().c_str());
        return 2;
      }
      kern = *k;
    } else if (std::strcmp(argv[i], "--app-config") == 0) {
      app_config = tools::cli_value(argc, argv, i, "--app-config");
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_shards.emplace_back(
          tools::cli_value(argc, argv, i, "--replay"));
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      tools::cli_configure_faults(tools::cli_value(argc, argv, i, "--faults"));
    } else if (tools::cli_is_flag(argv[i])) {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (dynamic_requested && !use_schedule) {
    std::fprintf(stderr,
                 "--condition dynamic needs a placement *schedule* "
                 "(hmem_advise --per-phase) via --placement\n");
    return 2;
  }
  if (use_placement) {
    // A placement implies the framework condition; it runs alongside any
    // baselines listed via --condition.
    conditions.push_back(engine::Condition::kFramework);
  }
  if (use_schedule) {
    // A schedule implies the dynamic condition (an explicit
    // `--condition dynamic` is accepted but redundant).
    conditions.push_back(engine::Condition::kDynamic);
  }
  if (conditions.empty()) {
    // No explicit condition: honour the machine's own mode — a config
    // file declaring `mode = cache` means "run this machine in cache
    // mode", not the DDR reference.
    conditions.push_back(node.mode == memsim::MemMode::kCache
                             ? engine::Condition::kCacheMode
                             : engine::Condition::kDdr);
  }

  // ---- Replay mode ------------------------------------------------------
  if (!replay_shards.empty()) {
    if (app_config || !positional.empty()) {
      std::fprintf(stderr, "--replay replaces the app argument\n");
      return 2;
    }
    for (const engine::Condition c : conditions) {
      if (c == engine::Condition::kCacheMode ||
          c == engine::Condition::kDynamic) {
        std::fprintf(stderr,
                     "--replay cannot run the %s condition (it needs the "
                     "live object stream, not recorded samples)\n",
                     engine::condition_name(c));
        return 2;
      }
    }
    // Serial: the shard readers are single-pass, so each condition
    // re-opens the recording.
    for (std::size_t c = 0; c < conditions.size(); ++c) {
      engine::ReplayOptions opts;
      opts.condition = conditions[c];
      opts.node = node;
      opts.shards = static_cast<int>(replay_shards.size());
      opts.ranks = ranks > 0 ? ranks : opts.shards;
      if (conditions[c] == engine::Condition::kFramework) {
        opts.placement = &placement;
      }
      try {
        trace::ReplayReaderOptions replay_options;
        replay_options.salvage = !strict;
        trace::ReplayReader recording(replay_shards, replay_options);
        const engine::RunResult result = engine::replay_run(
            recording.reader(), recording.sites(), opts);
        const trace::SalvageReport& salvage = recording.salvage_report();
        if (!salvage.clean()) {
          std::fprintf(stderr, "warning: %s\n", salvage.summary().c_str());
        }
        if (c > 0) std::printf("\n");
        std::printf("%s", report_text(result).c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "replay: %s\n", e.what());
        return exit_code_for(e);
      }
    }
    return tools::kExitOk;
  }

  // ---- App mode ---------------------------------------------------------
  if (positional.size() > 1 ||
      (positional.empty() && !app_config)) {
    std::fprintf(stderr, "expected exactly one app (name, config file, "
                         "--app-config or --replay)\n");
    return 2;
  }
  std::string app_error;
  auto app = app_config ? apps::load_app_file(*app_config, &app_error)
                        : apps::load_app(positional[0], &app_error);
  if (!app) {
    std::fprintf(stderr, "%s\n", app_error.c_str());
    return tools::kExitUsage;
  }
  if (ranks > 0) app->ranks = ranks;

  std::vector<std::string> reports(conditions.size());
  std::vector<std::string> errors(conditions.size());
  std::vector<int> codes(conditions.size(), 0);
  parallel_for(jobs, conditions.size(), [&](std::size_t c) {
    engine::RunOptions opts;
    opts.condition = conditions[c];
    opts.node = node;
    opts.kernel = kern;
    if (conditions[c] == engine::Condition::kFramework) {
      opts.placement = &placement;
    }
    if (conditions[c] == engine::Condition::kDynamic) {
      opts.schedule = &schedule;
    }
    try {
      reports[c] = report_text(engine::run_app(*app, opts));
    } catch (const std::exception& e) {
      errors[c] = e.what();
      codes[c] = exit_code_for(e);
    }
  });
  for (std::size_t c = 0; c < conditions.size(); ++c) {
    if (!errors[c].empty()) {
      std::fprintf(stderr, "error: %s\n", errors[c].c_str());
      return codes[c] != 0 ? codes[c] : tools::kExitData;
    }
    if (c > 0) std::printf("\n");
    std::printf("%s", reports[c].c_str());
  }
  return tools::kExitOk;
}
