#!/bin/sh
# Docs consistency check, run by the CI docs job (and locally from the
# repo root):
#   1. every relative markdown link in README.md / docs/*.md resolves to
#      an existing file or directory;
#   2. every CLI flag the hmem_* tools (and the resumable fig4 sweep
#      bench) accept appears in docs/TOOLS.md, so the reference cannot
#      silently drift from the argv parsers.
# Plain grep/sed — no dependencies beyond POSIX sh.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root" || exit 1
fail=0

# ---- 1. markdown links ----------------------------------------------------
for md in README.md docs/*.md; do
  dir=$(dirname "$md")
  # Extract (target) of every [text](target); one per line.
  for target in $(grep -oE '\]\([^)]+\)' "$md" | sed -e 's/^](//' -e 's/)$//'); do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}   # strip in-page anchors
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done
done

# ---- 2. CLI flags documented ----------------------------------------------
# The tools test argv with string literals ("--machine", "--per-phase",
# ...); every such literal must be mentioned in docs/TOOLS.md.
flags=$(grep -ohE '"--[a-z-]+"' tools/hmem_profile.cpp tools/hmem_advise.cpp \
          tools/hmem_run.cpp tools/hmem_sweep.cpp tools/hmem_workload.cpp \
          bench/fig4_placement_dynamic.cpp | tr -d '"' | sort -u)
for flag in $flags; do
  if ! grep -q -- "$flag" docs/TOOLS.md; then
    echo "UNDOCUMENTED FLAG: $flag (from tools/hmem_*.cpp) missing in docs/TOOLS.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK (links resolve, all CLI flags documented)"
