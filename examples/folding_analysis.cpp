// Folding analysis: reconstructing a workload's time evolution from
// coarse-grained samples (the technique behind the paper's Figure 5).
//
// Profiles SNAP, folds one main iteration into time bins, and prints the
// three-panel view: dominant routine, sampled address range, and MIPS per
// bin. With data placed by the framework, the outer_src_calc routine shows
// a clear MIPS dip (its register spills hit the DDR-resident stack).
//
// Build & run:  ./example_folding_analysis
#include <cstdio>

#include "analysis/folding.hpp"
#include "apps/workloads.hpp"
#include "engine/pipeline.hpp"

int main() {
  using namespace hmem;
  const apps::AppSpec app = apps::make_snap();

  // Stages 1-3 to obtain a placement, then a profiled stage-4 run.
  engine::PipelineOptions popts;
  popts.fast_budget_per_rank = 256ULL << 20;
  const auto pipeline = engine::run_pipeline(app, popts);
  const auto placement =
      advisor::read_placement_report(pipeline.placement_report_text);

  engine::RunOptions opts;
  opts.condition = engine::Condition::kFramework;
  opts.placement = &placement;
  opts.profile = true;
  opts.sampler.period = 8000;
  const auto run = engine::run_app(app, opts);

  // Fold one mid-run iteration (between two consecutive octsweep begins).
  double t0 = 0, t1 = run.time_s * 1e9;
  int seen = 0;
  for (const auto& ev : run.trace->events()) {
    if (const auto* ph = std::get_if<trace::PhaseEvent>(&ev)) {
      if (ph->begin && ph->name == "octsweep") {
        if (++seen == 10) t0 = ph->time_ns;
        if (seen == 11) {
          t1 = ph->time_ns;
          break;
        }
      }
    }
  }
  const auto folding = analysis::fold(*run.trace, t0, t1, 12);

  std::printf("%4s %-16s %8s %10s\n", "bin", "routine", "samples", "MIPS");
  for (std::size_t b = 0; b < folding.bins.size(); ++b) {
    const auto& bin = folding.bins[b];
    std::printf("%4zu %-16s %8llu %10.0f\n", b, bin.dominant_phase.c_str(),
                static_cast<unsigned long long>(bin.sample_count), bin.mips);
  }
  std::printf("\nCSV form:\n%s", analysis::folding_to_csv(folding).c_str());
  return 0;
}
