// Bringing your own application to the framework.
//
// An AppSpec is a declarative memory-object signature: objects (sizes,
// allocation sites, static/dynamic, lifetime) plus per-phase access
// weights. This example builds a small "key-value store" style workload
// from scratch, validates it, and compares all five execution conditions.
//
// Build & run:  ./example_custom_app
#include <cstdio>

#include "apps/app.hpp"
#include "engine/pipeline.hpp"

int main() {
  using namespace hmem;

  apps::AppSpec app;
  app.name = "kvstore";
  app.fom_unit = "Mops/s";
  app.ranks = 16;
  app.threads_per_rank = 4;
  app.iterations = 30;
  app.accesses_per_iteration = 12000;
  app.access_scale = 150.0;
  app.work_per_iteration = 2.0;  // Mops per rank-iteration
  app.stack_bytes = 4ULL << 20;

  // A hot hash index, a warm value log, and a cold snapshot buffer. The
  // index is random-access (latency-hostile), the log streams.
  app.objects = {
      apps::ObjectSpec{.name = "hash_index", .size_bytes = 48ULL << 20,
                       .pattern = apps::AccessPattern::kRandom},
      apps::ObjectSpec{.name = "value_log", .size_bytes = 320ULL << 20,
                       .pattern = apps::AccessPattern::kStream},
      apps::ObjectSpec{.name = "snapshot", .size_bytes = 512ULL << 20,
                       .pattern = apps::AccessPattern::kStream},
      apps::ObjectSpec{.name = "config_tables", .size_bytes = 2ULL << 20,
                       .pattern = apps::AccessPattern::kRandom,
                       .is_static = true},
  };
  apps::PhaseSpec serve;
  serve.name = "serve";
  serve.access_share = 1.0;
  serve.object_weights = {0.55, 0.30, 0.05, 0.04};
  serve.stack_weight = 0.06;
  serve.insts_per_access = 60.0;
  app.phases = {serve};

  // Always validate a hand-built spec: the engine asserts on invalid ones.
  const std::string problem = apps::validate(app);
  if (!problem.empty()) {
    std::fprintf(stderr, "invalid spec: %s\n", problem.c_str());
    return 1;
  }

  // Baselines.
  std::printf("%-12s %10s %12s\n", "condition", "Mops/s", "MCDRAM HWM");
  for (const auto condition :
       {engine::Condition::kDdr, engine::Condition::kNumactl,
        engine::Condition::kAutoHbw, engine::Condition::kCacheMode}) {
    engine::RunOptions opts;
    opts.condition = condition;
    const auto r = engine::run_app(app, opts);
    std::printf("%-12s %10.2f %9.1f MiB\n", r.condition.c_str(), r.fom,
                static_cast<double>(r.fast_hwm_bytes) / (1 << 20));
  }

  // The framework, with a 64 MiB/rank budget — enough for the index, not
  // for the log.
  engine::PipelineOptions options;
  options.fast_budget_per_rank = 64ULL << 20;
  const auto result = engine::run_pipeline(app, options);
  std::printf("%-12s %10.2f %9.1f MiB  (selected:",
              "framework", result.production_run.fom,
              static_cast<double>(result.production_run.fast_hwm_bytes) /
                  (1 << 20));
  for (const auto& obj : result.placement.fast().objects) {
    std::printf(" %s", obj.name.c_str());
  }
  std::printf(")\n");
  return 0;
}
