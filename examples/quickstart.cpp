// Quickstart: the complete four-stage framework on one of the paper's
// workloads, in ~30 lines of user code.
//
//   stage 1  profile the application (Extrae substitute: allocation
//            instrumentation + PEBS sampling of LLC misses);
//   stage 2  aggregate the trace into per-object miss/size statistics
//            (Paramedir substitute);
//   stage 3  compute the MCDRAM placement for a budget (hmem_advisor);
//   stage 4  re-run with auto-hbwmalloc honouring the placement.
//
// Build & run:  ./example_quickstart
#include <cstdio>

#include "apps/workloads.hpp"
#include "engine/pipeline.hpp"

int main() {
  using namespace hmem;

  // The application under study: the paper's HPCG signature (64 ranks x 4
  // threads on the simulated Xeon Phi 7250).
  const apps::AppSpec app = apps::make_hpcg();

  // One call drives all four stages. 256 MiB of MCDRAM per rank, the
  // Misses(5%) selection strategy.
  engine::PipelineOptions options;
  options.fast_budget_per_rank = 256ULL << 20;
  options.advisor.strategy = advisor::Strategy::kMisses;
  options.advisor.threshold_pct = 5.0;
  const engine::PipelineResult result = engine::run_pipeline(app, options);

  // Stage-2 output: the objects Paramedir found, hottest first.
  std::printf("objects by sampled LLC misses:\n");
  for (const auto& obj : result.report.objects) {
    std::printf("  %-16s %10.1f MiB  %12llu misses%s\n", obj.name.c_str(),
                static_cast<double>(obj.max_size_bytes) / (1 << 20),
                static_cast<unsigned long long>(obj.llc_misses),
                obj.is_dynamic ? "" : "  [static]");
  }

  // Stage-3 output: the human-readable placement report auto-hbwmalloc
  // consumes (and a developer could apply by hand instead).
  std::printf("\nplacement report:\n%s\n",
              result.placement_report_text.c_str());

  // Stage 4 vs the DDR reference.
  engine::RunOptions ddr;
  const auto baseline = engine::run_app(app, ddr);
  std::printf("DDR baseline : %8.2f %s\n", baseline.fom,
              baseline.fom_unit.c_str());
  std::printf("framework    : %8.2f %s  (%.1f%% faster)\n",
              result.production_run.fom, result.production_run.fom_unit.c_str(),
              (result.production_run.fom / baseline.fom - 1.0) * 100.0);
  std::printf("MCDRAM HWM   : %8.1f MiB/rank\n",
              static_cast<double>(result.production_run.fast_hwm_bytes) /
                  (1 << 20));
  return 0;
}
