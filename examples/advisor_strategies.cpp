// Comparing hmem_advisor's selection strategies on one profile.
//
// Profiles GTC-P once, then asks the advisor for placements under the
// Density and Misses(t%) strategies across the paper's budget sweep,
// showing how the selections (and their achieved performance) diverge —
// GTC-P is the paper's example of the density strategy winning.
//
// Build & run:  ./example_advisor_strategies
#include <cstdio>

#include "analysis/aggregator.hpp"
#include "apps/workloads.hpp"
#include "engine/execution.hpp"

int main() {
  using namespace hmem;
  const apps::AppSpec app = apps::make_gtcp();

  // Stage 1 + 2 once: one profile serves every advisor configuration.
  engine::RunOptions profile_opts;
  profile_opts.profile = true;
  const auto profile = engine::run_app(app, profile_opts);
  const auto report =
      analysis::aggregate_trace(*profile.trace, *profile.sites);

  const auto ddr = [&] {
    engine::RunOptions opts;
    return engine::run_app(app, opts);
  }();
  std::printf("GTC-P, DDR reference: %.4f %s\n\n", ddr.fom,
              ddr.fom_unit.c_str());

  const std::uint64_t ddr_share = 96ULL << 30 >> 6;  // 96 GiB / 64 ranks
  for (const std::uint64_t budget : {64ULL << 20, 128ULL << 20,
                                     256ULL << 20}) {
    std::printf("budget %3llu MiB/rank:\n",
                static_cast<unsigned long long>(budget >> 20));
    for (const auto strategy :
         {advisor::Strategy::kDensity, advisor::Strategy::kMisses}) {
      advisor::Options adv_opts;
      adv_opts.strategy = strategy;
      advisor::HmemAdvisor adv(advisor::MemorySpec::two_tier(budget,
                                                             ddr_share),
                               adv_opts);
      const auto placement = adv.advise(report.objects);

      engine::RunOptions run_opts;
      run_opts.condition = engine::Condition::kFramework;
      run_opts.placement = &placement;
      const auto run = engine::run_app(app, run_opts);

      std::printf("  %-8s -> %.4f %s (%+5.1f%%), selected:",
                  advisor::strategy_name(strategy), run.fom,
                  run.fom_unit.c_str(), (run.fom / ddr.fom - 1.0) * 100.0);
      for (const auto& obj : placement.fast().objects) {
        std::printf(" %s", obj.name.c_str());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nnote how the misses strategy spends small budgets on the big\n"
      "particle array while density packs the dense grid arrays first.\n");
  return 0;
}
