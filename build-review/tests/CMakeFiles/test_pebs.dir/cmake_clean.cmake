file(REMOVE_RECURSE
  "CMakeFiles/test_pebs.dir/test_pebs.cpp.o"
  "CMakeFiles/test_pebs.dir/test_pebs.cpp.o.d"
  "test_pebs"
  "test_pebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
