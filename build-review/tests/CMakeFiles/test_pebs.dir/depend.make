# Empty dependencies file for test_pebs.
# This may be replaced when dependencies are built.
