file(REMOVE_RECURSE
  "CMakeFiles/test_appsweep.dir/test_appsweep.cpp.o"
  "CMakeFiles/test_appsweep.dir/test_appsweep.cpp.o.d"
  "test_appsweep"
  "test_appsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
