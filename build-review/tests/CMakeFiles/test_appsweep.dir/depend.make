# Empty dependencies file for test_appsweep.
# This may be replaced when dependencies are built.
