# Empty dependencies file for test_alloc.
# This may be replaced when dependencies are built.
