file(REMOVE_RECURSE
  "CMakeFiles/test_alloc.dir/test_alloc.cpp.o"
  "CMakeFiles/test_alloc.dir/test_alloc.cpp.o.d"
  "test_alloc"
  "test_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
