# Empty dependencies file for test_callstack.
# This may be replaced when dependencies are built.
