file(REMOVE_RECURSE
  "CMakeFiles/test_callstack.dir/test_callstack.cpp.o"
  "CMakeFiles/test_callstack.dir/test_callstack.cpp.o.d"
  "test_callstack"
  "test_callstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_callstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
