# Empty compiler generated dependencies file for hmem_advise.
# This may be replaced when dependencies are built.
