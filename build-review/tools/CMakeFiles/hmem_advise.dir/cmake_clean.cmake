file(REMOVE_RECURSE
  "CMakeFiles/hmem_advise.dir/hmem_advise.cpp.o"
  "CMakeFiles/hmem_advise.dir/hmem_advise.cpp.o.d"
  "hmem_advise"
  "hmem_advise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmem_advise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
