# Empty compiler generated dependencies file for hmem_run.
# This may be replaced when dependencies are built.
