file(REMOVE_RECURSE
  "CMakeFiles/hmem_run.dir/hmem_run.cpp.o"
  "CMakeFiles/hmem_run.dir/hmem_run.cpp.o.d"
  "hmem_run"
  "hmem_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmem_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
