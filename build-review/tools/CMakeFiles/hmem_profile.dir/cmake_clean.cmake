file(REMOVE_RECURSE
  "CMakeFiles/hmem_profile.dir/hmem_profile.cpp.o"
  "CMakeFiles/hmem_profile.dir/hmem_profile.cpp.o.d"
  "hmem_profile"
  "hmem_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmem_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
