# Empty compiler generated dependencies file for hmem_profile.
# This may be replaced when dependencies are built.
