# Empty compiler generated dependencies file for example_advisor_strategies.
# This may be replaced when dependencies are built.
