file(REMOVE_RECURSE
  "CMakeFiles/example_advisor_strategies.dir/advisor_strategies.cpp.o"
  "CMakeFiles/example_advisor_strategies.dir/advisor_strategies.cpp.o.d"
  "example_advisor_strategies"
  "example_advisor_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_advisor_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
