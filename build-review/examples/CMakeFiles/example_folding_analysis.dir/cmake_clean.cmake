file(REMOVE_RECURSE
  "CMakeFiles/example_folding_analysis.dir/folding_analysis.cpp.o"
  "CMakeFiles/example_folding_analysis.dir/folding_analysis.cpp.o.d"
  "example_folding_analysis"
  "example_folding_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_folding_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
