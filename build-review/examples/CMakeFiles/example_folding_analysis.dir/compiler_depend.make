# Empty compiler generated dependencies file for example_folding_analysis.
# This may be replaced when dependencies are built.
