# Empty compiler generated dependencies file for example_custom_app.
# This may be replaced when dependencies are built.
