file(REMOVE_RECURSE
  "CMakeFiles/example_custom_app.dir/custom_app.cpp.o"
  "CMakeFiles/example_custom_app.dir/custom_app.cpp.o.d"
  "example_custom_app"
  "example_custom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
