# Empty dependencies file for bench_fig1_stream_bandwidth.
# This may be replaced when dependencies are built.
