file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stream_bandwidth.dir/fig1_stream_bandwidth.cpp.o"
  "CMakeFiles/bench_fig1_stream_bandwidth.dir/fig1_stream_bandwidth.cpp.o.d"
  "bench_fig1_stream_bandwidth"
  "bench_fig1_stream_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stream_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
