# Empty compiler generated dependencies file for bench_fig4_placement_cgpop.
# This may be replaced when dependencies are built.
