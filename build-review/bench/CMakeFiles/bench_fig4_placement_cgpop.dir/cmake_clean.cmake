file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_cgpop.dir/fig4_placement_cgpop.cpp.o"
  "CMakeFiles/bench_fig4_placement_cgpop.dir/fig4_placement_cgpop.cpp.o.d"
  "bench_fig4_placement_cgpop"
  "bench_fig4_placement_cgpop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_cgpop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
