file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_gtcp.dir/fig4_placement_gtcp.cpp.o"
  "CMakeFiles/bench_fig4_placement_gtcp.dir/fig4_placement_gtcp.cpp.o.d"
  "bench_fig4_placement_gtcp"
  "bench_fig4_placement_gtcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_gtcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
