file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_io.dir/trace_io.cpp.o"
  "CMakeFiles/bench_trace_io.dir/trace_io.cpp.o.d"
  "bench_trace_io"
  "bench_trace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
