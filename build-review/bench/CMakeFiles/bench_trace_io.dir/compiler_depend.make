# Empty compiler generated dependencies file for bench_trace_io.
# This may be replaced when dependencies are built.
