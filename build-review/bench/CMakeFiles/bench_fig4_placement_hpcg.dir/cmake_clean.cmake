file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_hpcg.dir/fig4_placement_hpcg.cpp.o"
  "CMakeFiles/bench_fig4_placement_hpcg.dir/fig4_placement_hpcg.cpp.o.d"
  "bench_fig4_placement_hpcg"
  "bench_fig4_placement_hpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
