# Empty dependencies file for bench_fig4_placement_hpcg.
# This may be replaced when dependencies are built.
