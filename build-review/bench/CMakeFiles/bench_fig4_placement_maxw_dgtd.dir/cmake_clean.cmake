file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_maxw_dgtd.dir/fig4_placement_maxw_dgtd.cpp.o"
  "CMakeFiles/bench_fig4_placement_maxw_dgtd.dir/fig4_placement_maxw_dgtd.cpp.o.d"
  "bench_fig4_placement_maxw_dgtd"
  "bench_fig4_placement_maxw_dgtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_maxw_dgtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
