# Empty dependencies file for bench_fig4_placement_maxw_dgtd.
# This may be replaced when dependencies are built.
