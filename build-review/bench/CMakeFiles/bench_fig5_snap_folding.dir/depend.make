# Empty dependencies file for bench_fig5_snap_folding.
# This may be replaced when dependencies are built.
