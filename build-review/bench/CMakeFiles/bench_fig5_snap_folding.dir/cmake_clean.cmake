file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_snap_folding.dir/fig5_snap_folding.cpp.o"
  "CMakeFiles/bench_fig5_snap_folding.dir/fig5_snap_folding.cpp.o.d"
  "bench_fig5_snap_folding"
  "bench_fig5_snap_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_snap_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
