# Empty dependencies file for bench_ablation_sampling_period.
# This may be replaced when dependencies are built.
