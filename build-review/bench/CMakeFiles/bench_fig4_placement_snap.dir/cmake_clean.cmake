file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_snap.dir/fig4_placement_snap.cpp.o"
  "CMakeFiles/bench_fig4_placement_snap.dir/fig4_placement_snap.cpp.o.d"
  "bench_fig4_placement_snap"
  "bench_fig4_placement_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
