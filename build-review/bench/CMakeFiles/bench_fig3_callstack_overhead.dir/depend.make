# Empty dependencies file for bench_fig3_callstack_overhead.
# This may be replaced when dependencies are built.
