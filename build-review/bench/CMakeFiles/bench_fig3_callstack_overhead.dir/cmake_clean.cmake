file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_callstack_overhead.dir/fig3_callstack_overhead.cpp.o"
  "CMakeFiles/bench_fig3_callstack_overhead.dir/fig3_callstack_overhead.cpp.o.d"
  "bench_fig3_callstack_overhead"
  "bench_fig3_callstack_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_callstack_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
