file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_lulesh.dir/fig4_placement_lulesh.cpp.o"
  "CMakeFiles/bench_fig4_placement_lulesh.dir/fig4_placement_lulesh.cpp.o.d"
  "bench_fig4_placement_lulesh"
  "bench_fig4_placement_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
