file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_bt.dir/fig4_placement_bt.cpp.o"
  "CMakeFiles/bench_fig4_placement_bt.dir/fig4_placement_bt.cpp.o.d"
  "bench_fig4_placement_bt"
  "bench_fig4_placement_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
