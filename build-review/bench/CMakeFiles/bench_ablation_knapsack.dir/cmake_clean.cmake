file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knapsack.dir/ablation_knapsack.cpp.o"
  "CMakeFiles/bench_ablation_knapsack.dir/ablation_knapsack.cpp.o.d"
  "bench_ablation_knapsack"
  "bench_ablation_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
