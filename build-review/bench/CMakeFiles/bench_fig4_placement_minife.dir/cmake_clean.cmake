file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_placement_minife.dir/fig4_placement_minife.cpp.o"
  "CMakeFiles/bench_fig4_placement_minife.dir/fig4_placement_minife.cpp.o.d"
  "bench_fig4_placement_minife"
  "bench_fig4_placement_minife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_placement_minife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
