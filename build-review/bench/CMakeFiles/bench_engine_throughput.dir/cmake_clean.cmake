file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_throughput.dir/engine_throughput.cpp.o"
  "CMakeFiles/bench_engine_throughput.dir/engine_throughput.cpp.o.d"
  "bench_engine_throughput"
  "bench_engine_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
