file(REMOVE_RECURSE
  "libhmem.a"
)
