# Empty compiler generated dependencies file for hmem.
# This may be replaced when dependencies are built.
