
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/advisor.cpp" "src/CMakeFiles/hmem.dir/advisor/advisor.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/advisor/advisor.cpp.o.d"
  "/root/repo/src/advisor/knapsack.cpp" "src/CMakeFiles/hmem.dir/advisor/knapsack.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/advisor/knapsack.cpp.o.d"
  "/root/repo/src/advisor/memory_spec.cpp" "src/CMakeFiles/hmem.dir/advisor/memory_spec.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/advisor/memory_spec.cpp.o.d"
  "/root/repo/src/advisor/placement_report.cpp" "src/CMakeFiles/hmem.dir/advisor/placement_report.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/advisor/placement_report.cpp.o.d"
  "/root/repo/src/alloc/allocators.cpp" "src/CMakeFiles/hmem.dir/alloc/allocators.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/alloc/allocators.cpp.o.d"
  "/root/repo/src/alloc/arena.cpp" "src/CMakeFiles/hmem.dir/alloc/arena.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/alloc/arena.cpp.o.d"
  "/root/repo/src/analysis/aggregator.cpp" "src/CMakeFiles/hmem.dir/analysis/aggregator.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/analysis/aggregator.cpp.o.d"
  "/root/repo/src/analysis/folding.cpp" "src/CMakeFiles/hmem.dir/analysis/folding.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/analysis/folding.cpp.o.d"
  "/root/repo/src/apps/app.cpp" "src/CMakeFiles/hmem.dir/apps/app.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/apps/app.cpp.o.d"
  "/root/repo/src/apps/generator.cpp" "src/CMakeFiles/hmem.dir/apps/generator.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/apps/generator.cpp.o.d"
  "/root/repo/src/apps/workloads.cpp" "src/CMakeFiles/hmem.dir/apps/workloads.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/apps/workloads.cpp.o.d"
  "/root/repo/src/callstack/callstack.cpp" "src/CMakeFiles/hmem.dir/callstack/callstack.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/callstack/callstack.cpp.o.d"
  "/root/repo/src/callstack/modulemap.cpp" "src/CMakeFiles/hmem.dir/callstack/modulemap.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/callstack/modulemap.cpp.o.d"
  "/root/repo/src/callstack/sitedb.cpp" "src/CMakeFiles/hmem.dir/callstack/sitedb.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/callstack/sitedb.cpp.o.d"
  "/root/repo/src/callstack/unwind.cpp" "src/CMakeFiles/hmem.dir/callstack/unwind.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/callstack/unwind.cpp.o.d"
  "/root/repo/src/common/alias.cpp" "src/CMakeFiles/hmem.dir/common/alias.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/alias.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/hmem.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/config.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/hmem.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/hmem.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "src/CMakeFiles/hmem.dir/common/parallel.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/parallel.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hmem.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/hmem.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/hmem.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/common/units.cpp.o.d"
  "/root/repo/src/engine/execution.cpp" "src/CMakeFiles/hmem.dir/engine/execution.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/engine/execution.cpp.o.d"
  "/root/repo/src/engine/experiment.cpp" "src/CMakeFiles/hmem.dir/engine/experiment.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/engine/experiment.cpp.o.d"
  "/root/repo/src/engine/pipeline.cpp" "src/CMakeFiles/hmem.dir/engine/pipeline.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/engine/pipeline.cpp.o.d"
  "/root/repo/src/memsim/cache.cpp" "src/CMakeFiles/hmem.dir/memsim/cache.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/memsim/cache.cpp.o.d"
  "/root/repo/src/memsim/machine.cpp" "src/CMakeFiles/hmem.dir/memsim/machine.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/memsim/machine.cpp.o.d"
  "/root/repo/src/memsim/mcdram_cache.cpp" "src/CMakeFiles/hmem.dir/memsim/mcdram_cache.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/memsim/mcdram_cache.cpp.o.d"
  "/root/repo/src/memsim/tier.cpp" "src/CMakeFiles/hmem.dir/memsim/tier.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/memsim/tier.cpp.o.d"
  "/root/repo/src/pebs/sampler.cpp" "src/CMakeFiles/hmem.dir/pebs/sampler.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/pebs/sampler.cpp.o.d"
  "/root/repo/src/profiler/object_registry.cpp" "src/CMakeFiles/hmem.dir/profiler/object_registry.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/profiler/object_registry.cpp.o.d"
  "/root/repo/src/profiler/profiler.cpp" "src/CMakeFiles/hmem.dir/profiler/profiler.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/profiler/profiler.cpp.o.d"
  "/root/repo/src/runtime/auto_hbwmalloc.cpp" "src/CMakeFiles/hmem.dir/runtime/auto_hbwmalloc.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/runtime/auto_hbwmalloc.cpp.o.d"
  "/root/repo/src/runtime/interpose.cpp" "src/CMakeFiles/hmem.dir/runtime/interpose.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/runtime/interpose.cpp.o.d"
  "/root/repo/src/runtime/policy.cpp" "src/CMakeFiles/hmem.dir/runtime/policy.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/runtime/policy.cpp.o.d"
  "/root/repo/src/trace/binary.cpp" "src/CMakeFiles/hmem.dir/trace/binary.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/trace/binary.cpp.o.d"
  "/root/repo/src/trace/format.cpp" "src/CMakeFiles/hmem.dir/trace/format.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/trace/format.cpp.o.d"
  "/root/repo/src/trace/merge.cpp" "src/CMakeFiles/hmem.dir/trace/merge.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/trace/merge.cpp.o.d"
  "/root/repo/src/trace/tracefile.cpp" "src/CMakeFiles/hmem.dir/trace/tracefile.cpp.o" "gcc" "src/CMakeFiles/hmem.dir/trace/tracefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
