// Experiment driver for the paper's evaluation (Figure 4 and Table I).
//
// For one application it reproduces a full Figure 4 row: the four baseline
// execution conditions (DDR, numactl -p 1, autohbw/1m, cache mode) plus the
// framework under every strategy x budget combination — sharing a single
// stage-1 profile across all framework cells, exactly as a user of the
// framework would.
//
// It also computes the paper's novel efficiency metric:
//   dFOM/MByte_x = (FOM_x - FOM_ddr) / MEM_x
// where MEM_x is the per-process MCDRAM budget of experiment x, and 16 GiB
// for the cache / numactl conditions (the paper's convention, since those
// have no budget).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "engine/pipeline.hpp"

namespace hmem::engine {

struct StrategyConfig {
  std::string label;
  advisor::Options options;
};

/// The paper's four selection configurations: Density, Misses(0%),
/// Misses(1%), Misses(5%).
std::vector<StrategyConfig> paper_strategies();

/// The paper's per-rank budget sweep for MPI apps: 32..256 MiB.
std::vector<std::uint64_t> paper_budgets_mpi();
/// The paper's node-wide sweep for the OpenMP-only app (BT): 32 MiB..16 GiB.
std::vector<std::uint64_t> paper_budgets_openmp();

struct Fig4Cell {
  std::string strategy;
  std::uint64_t budget_bytes = 0;  ///< per rank
  double fom = 0;
  std::uint64_t hwm_bytes = 0;     ///< fast-tier HWM per rank (middle column)
  double dfom_per_mb = 0;          ///< right column
  bool any_overflow = false;       ///< advisor-selected object did not fit
};

struct BaselineResult {
  std::string condition;
  double fom = 0;
  std::uint64_t fast_hwm_bytes = 0;
  double dfom_per_mb = 0;
};

struct Fig4Row {
  std::string app;
  std::string fom_unit;
  /// Machine preset the row ran on and its fastest tier's name — the
  /// budget sweep targets that tier ("MCDRAM" on the paper's KNL).
  std::string machine = "knl7250";
  std::string fast_tier_name = "MCDRAM";
  BaselineResult ddr;
  BaselineResult numactl;
  BaselineResult autohbw;
  BaselineResult cache;
  std::vector<Fig4Cell> cells;  ///< strategy-major, budget-minor

  const Fig4Cell& cell(const std::string& strategy,
                       std::uint64_t budget) const;
  /// Best framework FOM across all cells.
  double best_framework_fom() const;
};

class Fig4Runner {
 public:
  Fig4Runner(apps::AppSpec app, PipelineOptions base_options);

  /// Profiles once, then evaluates every baseline and framework cell.
  Fig4Row run(const std::vector<std::uint64_t>& budgets,
              const std::vector<StrategyConfig>& strategies);

  /// The shared stage-2 report (available after run()).
  const analysis::AggregateResult& report() const { return report_; }

 private:
  apps::AppSpec app_;
  PipelineOptions base_;
  analysis::AggregateResult report_;
};

/// dFOM/MByte with the paper's conventions; mem_bytes is per process.
double dfom_per_mb(double fom, double ddr_fom, std::uint64_t mem_bytes);

/// Renders a Figure 4 row as three aligned text tables (FOM / HWM /
/// dFOM-per-MByte), the format the bench binaries print.
std::string format_fig4_row(const Fig4Row& row,
                            const std::vector<std::uint64_t>& budgets,
                            const std::vector<StrategyConfig>& strategies);

/// CSV export (one line per cell + baselines) for plotting.
std::string fig4_row_to_csv(const Fig4Row& row);

}  // namespace hmem::engine
