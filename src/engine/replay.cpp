#include "engine/replay.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <variant>
#include <vector>

#include "alloc/allocators.hpp"
#include "callstack/modulemap.hpp"
#include "callstack/unwind.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "runtime/policy.hpp"

namespace hmem::engine {

namespace {

using memsim::Address;

/// A recorded allocation re-hosted by the replay policy: where the bytes
/// live now, and which policy tier serves samples landing inside it.
struct LiveRange {
  Address end = 0;       ///< recorded [base, end)
  Address new_addr = 0;  ///< address the replay policy assigned
  std::size_t tier = 0;  ///< policy tier (fastest-first index)
};

}  // namespace

RunResult replay_run(trace::TraceReader& events,
                     const callstack::SiteDb& sites,
                     const ReplayOptions& options) {
  if (options.condition == Condition::kCacheMode ||
      options.condition == Condition::kDynamic) {
    throw ConfigError(
        "replay supports the ddr, numactl, autohbw and framework conditions "
        "(cache and dynamic need the live object stream, not samples)");
  }
  if (options.condition == Condition::kFramework &&
      options.placement == nullptr) {
    throw ConfigError("framework replay requires a placement");
  }
  const int ranks = std::max(1, options.ranks);
  const int shards = std::max(1, options.shards);

  // ---- Per-rank machine view (mirrors run_app) --------------------------
  memsim::MachineConfig cfg = options.node;
  if (cfg.tiers.empty()) throw ConfigError("node config has no tiers");
  cfg.mode = memsim::MemMode::kFlat;
  for (memsim::TierSpec& tier : cfg.tiers) {
    tier.capacity_bytes /= static_cast<std::uint64_t>(ranks);
  }
  memsim::assign_tier_bases(cfg.tiers);

  const std::size_t n_tiers = cfg.tiers.size();
  const std::vector<memsim::TierIndex> perf = cfg.tiers_by_performance();
  const memsim::TierIndex slowest = perf.back();

  std::vector<std::unique_ptr<alloc::Allocator>> tier_allocs(n_tiers);
  for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
    const memsim::TierSpec& tier = cfg.tiers[t];
    if (t == slowest) {
      tier_allocs[t] = std::make_unique<alloc::PosixAllocator>(
          tier.base, tier.capacity_bytes);
    } else {
      tier_allocs[t] = std::make_unique<alloc::MemkindAllocator>(
          tier.base, tier.capacity_bytes);
    }
  }
  std::vector<alloc::Allocator*> policy_tiers;
  for (const memsim::TierIndex t : perf) {
    policy_tiers.push_back(tier_allocs[t].get());
  }
  const std::size_t slow_policy_tier = policy_tiers.size() - 1;

  // AllocOutcome::tier indexes the *policy's own* allocator list, which for
  // DdrPolicy holds a single entry — it does not line up with the
  // fastest-first policy_tiers order. The assigned address is unambiguous:
  // tier base ranges partition the simulated address space, so locate the
  // address instead.
  const auto policy_tier_of = [&](Address addr) -> std::size_t {
    for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
      const memsim::TierSpec& tier = cfg.tiers[t];
      if (addr >= tier.base && addr - tier.base < tier.capacity_bytes) {
        for (std::size_t p = 0; p < perf.size(); ++p) {
          if (perf[p] == t) return p;
        }
      }
    }
    return slow_policy_tier;
  };

  // The framework unwinds/translates through a module map; every module a
  // recorded call-stack mentions must be registered (a recording does not
  // say which binary produced it). Trace readers intern sites lazily while
  // events stream, so registration happens on first sight, not up front.
  callstack::ModuleMap modules;
  std::set<std::string> module_names;
  Address module_base = 0x400000;
  const auto ensure_modules = [&](const callstack::SymbolicCallStack& stack) {
    for (const auto& frame : stack.frames) {
      if (!module_names.insert(frame.module).second) continue;
      modules.add_module(frame.module, module_base, 1ULL << 20);
      module_base += 1ULL << 24;
    }
  };
  for (const auto& site : sites.all()) ensure_modules(site.stack);
  callstack::Unwinder unwinder(modules);
  callstack::Translator translator(modules);

  std::unique_ptr<runtime::PlacementPolicy> policy;
  runtime::AutoHbwMalloc* framework = nullptr;
  switch (options.condition) {
    case Condition::kDdr:
      policy = std::make_unique<runtime::DdrPolicy>(*policy_tiers.back());
      break;
    case Condition::kNumactl:
      policy = std::make_unique<runtime::NumactlPolicy>(policy_tiers);
      break;
    case Condition::kAutoHbw:
      policy = std::make_unique<runtime::AutoHbwLibPolicy>(
          policy_tiers, options.autohbw_threshold);
      break;
    case Condition::kFramework: {
      auto fw = std::make_unique<runtime::AutoHbwMalloc>(
          *options.placement, policy_tiers, unwinder, translator,
          options.runtime_options);
      framework = fw.get();
      policy = std::move(fw);
      break;
    }
    default:
      HMEM_ASSERT_MSG(false, "unreachable replay condition");
  }

  // ---- Replay loop ------------------------------------------------------
  // Live map keyed by *recorded* base address (shards arrive pre-rebased by
  // the reader, so bases are unique across ranks). Samples look up the
  // covering range; anything outside every live range — the stack, regions
  // below the profiler's min-alloc threshold, or bytes from a corrupted
  // shard — is unattributed and served by the slowest tier, which is where
  // every replayable policy leaves unmanaged data.
  std::map<Address, LiveRange> live;
  std::vector<std::uint64_t> tier_bytes(policy_tiers.size(), 0);
  std::uint64_t misses = 0;
  std::uint64_t sample_events = 0;
  std::uint64_t alloc_calls = 0;
  double alloc_ns = 0;
  double max_instructions = 0;

  trace::Event event;
  while (events.next(event)) {
    if (const auto* alloc = std::get_if<trace::AllocEvent>(&event)) {
      const bool known_site = alloc->site < sites.size();
      const bool is_dynamic =
          known_site ? sites.get(alloc->site).is_dynamic : true;
      static const callstack::SymbolicCallStack kEmptyStack;
      const callstack::SymbolicCallStack& stack =
          known_site ? sites.get(alloc->site).stack : kEmptyStack;
      ensure_modules(stack);
      const runtime::AllocOutcome out =
          is_dynamic ? policy->allocate(alloc->size, stack)
                     : policy->allocate_static(alloc->size);
      if (out.addr == 0) {
        throw ResourceError(
            "simulated out of memory during replay (the recorded allocation "
            "stream exceeds the machine's per-rank tier capacities)");
      }
      // A recorded base seen twice (possible only in a damaged shard) would
      // make sample lookup ambiguous: drop the stale range first.
      if (const auto stale = live.find(alloc->addr); stale != live.end()) {
        policy->deallocate(stale->second.new_addr);
        live.erase(stale);
      }
      live[alloc->addr] =
          LiveRange{alloc->addr + std::max<std::uint64_t>(1, alloc->size),
                    out.addr, policy_tier_of(out.addr)};
      if (is_dynamic) ++alloc_calls;
      alloc_ns += out.cost_ns;
    } else if (const auto* free = std::get_if<trace::FreeEvent>(&event)) {
      // Frees of never-recorded regions (stack, filtered allocations) are
      // silently ignored, like a malloc registry seeing a foreign pointer.
      const auto it = live.find(free->addr);
      if (it != live.end()) {
        alloc_ns += policy->deallocate(it->second.new_addr);
        live.erase(it);
      }
    } else if (const auto* sample = std::get_if<trace::SampleEvent>(&event)) {
      ++sample_events;
      misses += sample->weight;
      std::size_t tier = slow_policy_tier;
      auto it = live.upper_bound(sample->addr);
      if (it != live.begin()) {
        --it;
        if (sample->addr < it->second.end) tier = it->second.tier;
      }
      tier_bytes[tier] += sample->weight * memsim::kCacheLineBytes;
    } else if (const auto* counter = std::get_if<trace::CounterEvent>(&event)) {
      // Cumulative per rank; after a multi-rank merge the maximum is the
      // per-rank instruction count (ranks execute in parallel).
      if (counter->name == "instructions") {
        max_instructions = std::max(max_instructions, counter->value);
      }
    }
    // Phase markers carry no replayable work (placement is static here).
  }

  // ---- Modeled time (per rank) ------------------------------------------
  const double cores_per_rank =
      std::max(1.0, static_cast<double>(options.node.cores) / ranks);
  const double threads =
      options.threads_per_rank > 0
          ? std::min(static_cast<double>(options.threads_per_rank),
                     cores_per_rank)
          : cores_per_rank;
  const double instr_rate = threads * cfg.ipc * cfg.freq_ghz * 1e9;
  const double compute_s = max_instructions / instr_rate;
  double dominant_s = 0;
  std::size_t dominant = 0;
  std::vector<double> tier_seconds(policy_tiers.size(), 0.0);
  for (std::size_t t = 0; t < policy_tiers.size(); ++t) {
    const memsim::TierSpec& tier = options.node.tiers[perf[t]];
    const double bw_gbs =
        std::min(threads * tier.per_core_bw_gbs, tier.peak_bw_gbs / ranks);
    tier_seconds[t] = static_cast<double>(tier_bytes[t]) / shards /
                      (bw_gbs * 1e9);
    if (tier_seconds[t] > dominant_s) {
      dominant_s = tier_seconds[t];
      dominant = t;
    }
  }
  double overlapped_s = 0;
  for (std::size_t t = 0; t < policy_tiers.size(); ++t) {
    if (t != dominant) overlapped_s += tier_seconds[t];
  }
  const double memory_s = dominant_s + options.tier_mix_penalty * overlapped_s;
  const double time_s = std::max(compute_s, memory_s) +
                        options.overlap_beta * std::min(compute_s, memory_s) +
                        alloc_ns * 1e-9;

  // ---- Result (per-rank means over the merged shards; exact for a
  // single-shard replay) --------------------------------------------------
  RunResult result;
  result.app = "replay";
  result.condition = condition_name(options.condition);
  result.fom_unit = "n/a";
  result.time_s = std::max(time_s, 1e-12);
  result.fom = 0;
  result.tier_traffic.reserve(policy_tiers.size());
  for (std::size_t t = 0; t < policy_tiers.size(); ++t) {
    TierTraffic traffic;
    traffic.name = cfg.tiers[perf[t]].name;
    traffic.bytes = tier_bytes[t] / static_cast<std::uint64_t>(shards);
    result.tier_traffic.push_back(std::move(traffic));
  }
  result.achieved_bw_gbs =
      static_cast<double>(result.dram_bytes()) / result.time_s / 1e9;
  result.llc_misses = misses / static_cast<std::uint64_t>(shards);
  result.samples = sample_events;
  result.alloc_calls = alloc_calls / static_cast<std::uint64_t>(shards);
  result.allocs_per_second =
      static_cast<double>(result.alloc_calls) / result.time_s;
  result.interposition_overhead_ns = alloc_ns;
  result.total_hwm_bytes = 0;
  for (const auto& a : tier_allocs) {
    result.total_hwm_bytes += a->stats().high_water_mark;
  }
  if (framework != nullptr) {
    result.autohbw = framework->stats();
    result.fast_hwm_bytes = framework->stats().fast_hwm;
  } else if (options.condition == Condition::kNumactl ||
             options.condition == Condition::kAutoHbw) {
    result.fast_hwm_bytes = tier_allocs[perf.front()]->stats().high_water_mark;
  }
  return result;
}

}  // namespace hmem::engine
