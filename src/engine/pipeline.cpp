#include "engine/pipeline.hpp"

#include <memory>
#include <sstream>

#include "advisor/advisor.hpp"
#include "advisor/phase_advisor.hpp"
#include "advisor/schedule_report.hpp"
#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "trace/merge.hpp"

namespace hmem::engine {

advisor::MemorySpec machine_memory_spec(const memsim::MachineConfig& node,
                                        std::uint64_t fast_budget_per_rank,
                                        int ranks) {
  HMEM_ASSERT(!node.tiers.empty());
  HMEM_ASSERT(ranks >= 1);
  std::vector<advisor::TierBudget> budgets;
  const auto perf = node.tiers_by_performance();
  for (std::size_t k = 0; k < perf.size(); ++k) {
    const memsim::TierSpec& tier = node.tiers[perf[k]];
    advisor::TierBudget budget;
    budget.name = to_lower(tier.name);
    budget.capacity_bytes =
        k == 0 ? fast_budget_per_rank
               : tier.capacity_bytes / static_cast<std::uint64_t>(ranks);
    budget.relative_performance = tier.relative_performance;
    budgets.push_back(std::move(budget));
  }
  return advisor::MemorySpec(std::move(budgets));
}

std::uint64_t clamp_fast_budget(const memsim::MachineConfig& node,
                                std::uint64_t requested_bytes,
                                bool* clamped) {
  HMEM_ASSERT(!node.tiers.empty());
  const std::uint64_t capacity =
      node.tiers[node.fastest_tier()].capacity_bytes;
  const bool over = requested_bytes > capacity;
  if (clamped != nullptr) *clamped = over;
  return over ? capacity : requested_bytes;
}

namespace {

RunOptions profile_options(const PipelineOptions& options) {
  RunOptions po;
  po.condition = Condition::kDdr;
  po.profile = true;
  po.sampler = options.sampler;
  po.min_alloc_bytes = options.min_alloc_bytes;
  po.seed = options.profile_seed;
  po.node = options.node;
  po.kernel = options.kernel;
  return po;
}

}  // namespace

PipelineResult run_pipeline(const apps::AppSpec& app_in,
                            const PipelineOptions& options) {
  PipelineResult result;

  // Sharded profiling simulates exactly profile_ranks ranks: the per-rank
  // machine shares (LLC, capacity, bandwidth) must reflect that count for
  // every stage, matching the hmem_profile --ranks flow.
  apps::AppSpec app = app_in;
  if (options.profile_ranks > 1) app.ranks = options.profile_ranks;

  if (options.profile_ranks <= 1) {
    // Stage 1: profile the application in its default placement (DDR).
    result.profile_run = run_app(app, profile_options(options));
    HMEM_ASSERT(result.profile_run.trace != nullptr);

    // Stage 2: aggregate the trace into per-object statistics.
    result.report =
        analysis::aggregate_trace(*result.profile_run.trace,
                                  *result.profile_run.sites);
  } else {
    // Stage 1, sharded: one profiled execution per simulated rank, each
    // streaming its trace into a serialized shard as it runs (the run
    // itself never buffers events). The ranks are fully independent — each
    // owns its machine, allocators, profiler, RNG streams and (crucially) a
    // private SiteDb its shard serializes against, with site identity
    // re-merged symbolically in stage 2 — so they execute concurrently
    // under options.jobs workers. Every rank derives its seed from its rank
    // index and writes to its own slot: scheduling order cannot influence
    // any result, and parallel runs are bit-identical to serial ones.
    const int ranks = options.profile_ranks;
    std::vector<std::string>& shards = result.shards;
    shards.resize(static_cast<std::size_t>(ranks));
    result.rank_profile_runs.resize(static_cast<std::size_t>(ranks));
    parallel_for(options.jobs, static_cast<std::size_t>(ranks),
                 [&](std::size_t r) {
                   callstack::SiteDb rank_sites;
                   std::ostringstream shard;
                   const auto writer = trace::make_trace_writer(
                       shard, rank_sites, options.shard_format);
                   RunOptions po = profile_options(options);
                   po.seed = options.profile_seed +
                             static_cast<std::uint64_t>(r) * kRankSeedStride;
                   po.sites = &rank_sites;
                   po.trace_sink = writer.get();
                   RunResult run = run_app(app, po);
                   writer->finish();
                   run.sites.reset();  // rank_sites dies with this scope
                   shards[r] = std::move(shard).str();
                   result.rank_profile_runs[r] = std::move(run);
                 });
    for (const std::string& shard : shards) {
      result.shard_bytes.push_back(shard.size());
    }
    result.profile_run = result.rank_profile_runs.front();

    // Stage 2: k-way timestamp merge of the shards, aggregated in one
    // streaming pass against a shared (re-interned) site database. Each
    // shard is rebased into its own slice of the simulated address space —
    // ranks reuse the same physical layout, and the live-range map needs
    // disjoint ranges.
    callstack::SiteDb merged_sites;
    std::vector<std::unique_ptr<std::istringstream>> streams;
    std::vector<std::unique_ptr<trace::TraceReader>> readers;
    for (std::size_t r = 0; r < shards.size(); ++r) {
      streams.push_back(std::make_unique<std::istringstream>(shards[r]));
      readers.push_back(std::make_unique<trace::OffsetTraceReader>(
          trace::open_trace_reader(*streams.back(), merged_sites),
          static_cast<trace::Address>(r) * trace::kRankAddressStride));
    }
    trace::MergeTraceReader merged(std::move(readers));
    analysis::AggregateVisitor aggregate(merged_sites);
    result.merged_events = trace::pump(merged, aggregate);
    result.report = aggregate.finish();
  }

  // Stage 3: compute the placement for the requested budget. Every tier
  // below the fastest contributes its per-rank capacity share; the slowest
  // is the unbounded fallback.
  advisor::MemorySpec spec = machine_memory_spec(
      options.node, options.fast_budget_per_rank, app.ranks);
  advisor::HmemAdvisor adv(spec, options.advisor);
  result.placement = adv.advise(result.report.objects);
  result.placement_report_text =
      advisor::write_placement_report(result.placement);

  // Stage 4: production run, consuming the *parsed text report* under a
  // fresh ASLR image.
  const advisor::Placement parsed =
      advisor::read_placement_report(result.placement_report_text);
  RunOptions production_opts;
  production_opts.condition = Condition::kFramework;
  production_opts.placement = &parsed;
  production_opts.runtime_options = options.runtime_options;
  production_opts.seed = options.production_seed;
  production_opts.node = options.node;
  production_opts.kernel = options.kernel;
  result.production_run = run_app(app, production_opts);

  // Phase-aware stages: per-phase knapsacks over the folded profiles, then
  // a dynamic production run consuming the parsed schedule report (same
  // text round-trip and ASLR discipline as the static path).
  if (options.per_phase) {
    advisor::PhaseAdvisor phase_adv(spec, options.advisor);
    result.schedule = phase_adv.advise(result.report.phases);
    result.schedule_report_text =
        advisor::write_schedule_report(result.schedule);
    const advisor::PlacementSchedule parsed_schedule =
        advisor::read_schedule_report(result.schedule_report_text);
    RunOptions dynamic_opts;
    dynamic_opts.condition = Condition::kDynamic;
    dynamic_opts.schedule = &parsed_schedule;
    dynamic_opts.runtime_options = options.runtime_options;
    dynamic_opts.seed = options.production_seed;
    dynamic_opts.node = options.node;
    dynamic_opts.kernel = options.kernel;
    result.dynamic_run = run_app(app, dynamic_opts);
  }
  return result;
}

}  // namespace hmem::engine
