#include "engine/pipeline.hpp"

#include "advisor/advisor.hpp"
#include "common/assert.hpp"

namespace hmem::engine {

PipelineResult run_pipeline(const apps::AppSpec& app,
                            const PipelineOptions& options) {
  PipelineResult result;

  // Stage 1: profile the application in its default placement (DDR).
  RunOptions profile_opts;
  profile_opts.condition = Condition::kDdr;
  profile_opts.profile = true;
  profile_opts.sampler = options.sampler;
  profile_opts.min_alloc_bytes = options.min_alloc_bytes;
  profile_opts.seed = options.profile_seed;
  profile_opts.node = options.node;
  result.profile_run = run_app(app, profile_opts);
  HMEM_ASSERT(result.profile_run.trace != nullptr);

  // Stage 2: aggregate the trace into per-object statistics.
  result.report =
      analysis::aggregate_trace(*result.profile_run.trace,
                                *result.profile_run.sites);

  // Stage 3: compute the placement for the requested budget. The DDR tier
  // is the per-rank fallback share.
  const std::uint64_t ddr_share =
      options.node.ddr.capacity_bytes / static_cast<std::uint64_t>(app.ranks);
  advisor::MemorySpec spec = advisor::MemorySpec::two_tier(
      options.fast_budget_per_rank, ddr_share,
      options.node.mcdram.relative_performance);
  advisor::HmemAdvisor adv(spec, options.advisor);
  result.placement = adv.advise(result.report.objects);
  result.placement_report_text =
      advisor::write_placement_report(result.placement);

  // Stage 4: production run, consuming the *parsed text report* under a
  // fresh ASLR image.
  const advisor::Placement parsed =
      advisor::read_placement_report(result.placement_report_text);
  RunOptions production_opts;
  production_opts.condition = Condition::kFramework;
  production_opts.placement = &parsed;
  production_opts.runtime_options = options.runtime_options;
  production_opts.seed = options.production_seed;
  production_opts.node = options.node;
  result.production_run = run_app(app, production_opts);
  return result;
}

}  // namespace hmem::engine
