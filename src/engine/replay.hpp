// Replay-backed execution: drive a simulation from a recorded trace.
//
// Where run_app interprets a synthetic AppSpec, replay_run interprets a
// *recording* — the alloc/free/sample/phase/counter stream hmem_profile
// wrote — against a (possibly different) machine and placement condition.
// Each recorded allocation is re-routed through the chosen policy, and each
// PEBS sample charges its weight in cache lines to whichever tier now hosts
// the recorded address. Because a profiled run emits one sample of weight
// `access_scale` per simulated miss (sampling period 1), replaying a shard
// under the condition it was recorded in reproduces the source run's
// per-tier DRAM traffic and miss counts exactly; replaying under another
// condition answers "where would this recorded traffic have been served?".
//
// What a recording cannot carry over: the figure of merit (work per
// iteration is an AppSpec notion — fom stays 0), the latency roofline term
// (per-access latencies are not recorded), and the cache/dynamic conditions
// (the analytic cache model and phase-aware migration need the live object
// stream, not samples) — replay_run rejects those two with a clean throw.
// Compute time comes from the recorded "instructions" counter when present.
#pragma once

#include <cstdint>

#include "callstack/sitedb.hpp"
#include "engine/execution.hpp"
#include "trace/format.hpp"

namespace hmem::engine {

struct ReplayOptions {
  /// kDdr, kNumactl, kAutoHbw or kFramework; the cache and dynamic
  /// conditions cannot be replayed (see above) and throw.
  Condition condition = Condition::kDdr;
  /// Required when condition == kFramework.
  const advisor::Placement* placement = nullptr;
  runtime::AutoHbwOptions runtime_options;

  /// Node-level machine; per-rank tier capacity and bandwidth shares are
  /// derived exactly as in run_app.
  memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  /// Rank count of the *recorded job*: sizes the per-rank tier capacity
  /// and bandwidth shares exactly as run_app does (a 64-rank app profiled
  /// to one shard still ran against 1/64th of the machine).
  int ranks = 1;
  /// Number of rank shards merged into the event stream being replayed;
  /// per-rank results (traffic, misses, allocations) divide by this.
  int shards = 1;
  /// Threads per rank for the bandwidth/compute shares; 0 = the rank's
  /// full core share (cores / ranks).
  int threads_per_rank = 0;
  double overlap_beta = 0.25;
  double tier_mix_penalty = 0.3;
  std::uint64_t autohbw_threshold = 1ULL << 20;
};

/// Replays one recorded event stream (e.g. trace::ReplayReader::reader())
/// whose sites live in `sites`. Returns per-rank figures like run_app:
/// tier traffic, misses, HWMs and a modeled time; fom stays 0 (no work
/// model in a recording). Throws std::runtime_error on unsupported
/// conditions or when the recorded allocations exceed the simulated
/// machine's capacity.
RunResult replay_run(trace::TraceReader& events,
                     const callstack::SiteDb& sites,
                     const ReplayOptions& options);

}  // namespace hmem::engine
