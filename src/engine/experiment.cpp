#include "engine/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/units.hpp"

namespace hmem::engine {

std::vector<StrategyConfig> paper_strategies() {
  std::vector<StrategyConfig> strategies;
  {
    StrategyConfig s;
    s.label = "Density";
    s.options.strategy = advisor::Strategy::kDensity;
    strategies.push_back(s);
  }
  for (double threshold : {0.0, 1.0, 5.0}) {
    StrategyConfig s;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Misses(%g%%)", threshold);
    s.label = buf;
    s.options.strategy = advisor::Strategy::kMisses;
    s.options.threshold_pct = threshold;
    strategies.push_back(s);
  }
  return strategies;
}

std::vector<std::uint64_t> paper_budgets_mpi() {
  return {32ULL << 20, 64ULL << 20, 128ULL << 20, 256ULL << 20};
}

std::vector<std::uint64_t> paper_budgets_openmp() {
  return {32ULL << 20,  128ULL << 20, 512ULL << 20,
          2ULL << 30,   8ULL << 30,   16ULL << 30};
}

const Fig4Cell& Fig4Row::cell(const std::string& strategy,
                              std::uint64_t budget) const {
  for (const auto& c : cells) {
    if (c.strategy == strategy && c.budget_bytes == budget) return c;
  }
  HMEM_ASSERT_MSG(false, "no such figure-4 cell");
  return cells.front();
}

double Fig4Row::best_framework_fom() const {
  double best = 0;
  for (const auto& c : cells) best = std::max(best, c.fom);
  return best;
}

double dfom_per_mb(double fom, double ddr_fom, std::uint64_t mem_bytes) {
  HMEM_ASSERT(mem_bytes > 0);
  const double mem_mb =
      static_cast<double>(mem_bytes) / static_cast<double>(kMiB);
  return (fom - ddr_fom) / mem_mb;
}

Fig4Runner::Fig4Runner(apps::AppSpec app, PipelineOptions base_options)
    : app_(std::move(app)), base_(std::move(base_options)) {}

Fig4Row Fig4Runner::run(const std::vector<std::uint64_t>& budgets,
                        const std::vector<StrategyConfig>& strategies) {
  Fig4Row row;
  row.app = app_.name;
  row.fom_unit = app_.fom_unit;
  row.machine = base_.node.name;
  row.fast_tier_name = base_.node.tiers[base_.node.fastest_tier()].name;

  // Stage 1 + 2, shared across every framework cell.
  RunOptions profile_opts;
  profile_opts.condition = Condition::kDdr;
  profile_opts.profile = true;
  profile_opts.sampler = base_.sampler;
  profile_opts.min_alloc_bytes = base_.min_alloc_bytes;
  profile_opts.seed = base_.profile_seed;
  profile_opts.node = base_.node;
  const RunResult profile = run_app(app_, profile_opts);
  report_ = analysis::aggregate_trace(*profile.trace, *profile.sites);

  // Baselines and framework cells are mutually independent simulations over
  // the shared (read-only from here on) stage-2 report: sweep them all
  // concurrently under base_.jobs workers. Each task derives everything
  // from its own index and writes only its own slot, so results are
  // bit-identical to the serial sweep regardless of scheduling.
  auto run_baseline = [&](Condition condition) {
    RunOptions opts;
    opts.condition = condition;
    opts.seed = base_.production_seed;
    opts.node = base_.node;
    const RunResult r = run_app(app_, opts);
    BaselineResult b;
    b.condition = r.condition;
    b.fom = r.fom;
    b.fast_hwm_bytes = r.fast_hwm_bytes;
    return b;
  };

  // Task space: 4 baselines then strategy-major, budget-minor cells.
  const Condition baseline_conditions[] = {
      Condition::kDdr, Condition::kNumactl, Condition::kAutoHbw,
      Condition::kCacheMode};
  BaselineResult baselines[4];
  row.cells.resize(strategies.size() * budgets.size());
  parallel_for(
      base_.jobs, 4 + row.cells.size(), [&](std::size_t t) {
        if (t < 4) {
          baselines[t] = run_baseline(baseline_conditions[t]);
          return;
        }
        const std::size_t c = t - 4;
        const StrategyConfig& strategy = strategies[c / budgets.size()];
        const std::uint64_t budget = budgets[c % budgets.size()];
        advisor::MemorySpec spec =
            machine_memory_spec(base_.node, budget, app_.ranks);
        advisor::Options adv_options = strategy.options;
        if (base_.advisor.virtual_budget_bytes > 0) {
          adv_options.virtual_budget_bytes =
              base_.advisor.virtual_budget_bytes;
        }
        advisor::HmemAdvisor adv(spec, adv_options);
        const advisor::Placement placement = adv.advise(report_.objects);
        const advisor::Placement parsed = advisor::read_placement_report(
            advisor::write_placement_report(placement));

        RunOptions opts;
        opts.condition = Condition::kFramework;
        opts.placement = &parsed;
        opts.runtime_options = base_.runtime_options;
        opts.seed = base_.production_seed;
        opts.node = base_.node;
        const RunResult r = run_app(app_, opts);

        Fig4Cell& cell = row.cells[c];
        cell.strategy = strategy.label;
        cell.budget_bytes = budget;
        cell.fom = r.fom;
        cell.hwm_bytes = r.fast_hwm_bytes;
        cell.any_overflow = r.autohbw.has_value() && r.autohbw->any_overflow;
      });
  row.ddr = baselines[0];
  row.numactl = baselines[1];
  row.autohbw = baselines[2];
  row.cache = baselines[3];

  // dFOM/MByte needs the DDR baseline, so it is filled in after the sweep.
  // The paper assigns the full fast-tier capacity (16 GiB MCDRAM on KNL) as
  // MEM_x for the two budget-less conditions; autohbw is excluded from the
  // metric (unknown promoted volume).
  const std::uint64_t budgetless_mem =
      base_.node.tiers[base_.node.fastest_tier()].capacity_bytes;
  row.numactl.dfom_per_mb =
      dfom_per_mb(row.numactl.fom, row.ddr.fom, budgetless_mem);
  row.cache.dfom_per_mb =
      dfom_per_mb(row.cache.fom, row.ddr.fom, budgetless_mem);
  for (Fig4Cell& cell : row.cells) {
    cell.dfom_per_mb = dfom_per_mb(cell.fom, row.ddr.fom, cell.budget_bytes);
  }
  return row;
}

namespace {

std::string fmt_double(double v) {
  char buf[48];
  if (v != 0 && (std::abs(v) < 0.01 || std::abs(v) >= 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string format_fig4_row(const Fig4Row& row,
                            const std::vector<std::uint64_t>& budgets,
                            const std::vector<StrategyConfig>& strategies) {
  std::ostringstream os;
  auto print_table = [&](const std::string& title, auto cell_value,
                         bool with_baselines) {
    os << "== " << row.app << " - " << title << " ==\n";
    os << "  budget";
    for (const auto& s : strategies) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %14s", s.label.c_str());
      os << buf;
    }
    os << '\n';
    for (const std::uint64_t b : budgets) {
      char head[32];
      std::snprintf(head, sizeof(head), "%8s",
                    format_bytes(b).c_str());
      os << head;
      for (const auto& s : strategies) {
        const Fig4Cell& c = row.cell(s.label, b);
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %14s",
                      fmt_double(cell_value(c)).c_str());
        os << buf;
      }
      os << '\n';
    }
    if (with_baselines) {
      os << "  lines: DDR=" << fmt_double(row.ddr.fom) << " "
         << row.fast_tier_name << "*=" << fmt_double(row.numactl.fom)
         << " cache=" << fmt_double(row.cache.fom)
         << " autohbw/1m=" << fmt_double(row.autohbw.fom) << " ("
         << row.fom_unit << ")\n";
    }
    os << '\n';
  };

  print_table("FOM (" + row.fom_unit + ")",
              [](const Fig4Cell& c) { return c.fom; }, true);
  print_table(row.fast_tier_name + " HWM (MiB/rank)",
              [](const Fig4Cell& c) {
                return static_cast<double>(c.hwm_bytes) /
                       static_cast<double>(kMiB);
              },
              false);
  print_table("dFOM/MByte",
              [](const Fig4Cell& c) { return c.dfom_per_mb; }, false);
  os << "  dFOM/MByte lines: " << row.fast_tier_name
     << "*=" << fmt_double(row.numactl.dfom_per_mb)
     << " cache=" << fmt_double(row.cache.dfom_per_mb) << '\n';
  return os.str();
}

std::string fig4_row_to_csv(const Fig4Row& row) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"app", "kind", "strategy", "budget_mib", "fom",
                    "hwm_mib", "dfom_per_mb"});
  auto baseline = [&](const BaselineResult& b) {
    writer.write_row({row.app, "baseline", b.condition, "",
                      fmt_double(b.fom),
                      fmt_double(static_cast<double>(b.fast_hwm_bytes) /
                                 static_cast<double>(kMiB)),
                      fmt_double(b.dfom_per_mb)});
  };
  baseline(row.ddr);
  baseline(row.numactl);
  baseline(row.autohbw);
  baseline(row.cache);
  for (const auto& c : row.cells) {
    writer.write_row(
        {row.app, "framework", c.strategy,
         std::to_string(c.budget_bytes / kMiB), fmt_double(c.fom),
         fmt_double(static_cast<double>(c.hwm_bytes) /
                    static_cast<double>(kMiB)),
         fmt_double(c.dfom_per_mb)});
  }
  return os.str();
}

}  // namespace hmem::engine
