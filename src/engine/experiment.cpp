#include "engine/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/units.hpp"
#include "engine/sweep.hpp"

namespace hmem::engine {

std::vector<StrategyConfig> paper_strategies() {
  std::vector<StrategyConfig> strategies;
  {
    StrategyConfig s;
    s.label = "Density";
    s.options.strategy = advisor::Strategy::kDensity;
    strategies.push_back(s);
  }
  for (double threshold : {0.0, 1.0, 5.0}) {
    StrategyConfig s;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Misses(%g%%)", threshold);
    s.label = buf;
    s.options.strategy = advisor::Strategy::kMisses;
    s.options.threshold_pct = threshold;
    strategies.push_back(s);
  }
  return strategies;
}

std::vector<std::uint64_t> paper_budgets_mpi() {
  return {32ULL << 20, 64ULL << 20, 128ULL << 20, 256ULL << 20};
}

std::vector<std::uint64_t> paper_budgets_openmp() {
  return {32ULL << 20,  128ULL << 20, 512ULL << 20,
          2ULL << 30,   8ULL << 30,   16ULL << 30};
}

const Fig4Cell& Fig4Row::cell(const std::string& strategy,
                              std::uint64_t budget) const {
  for (const auto& c : cells) {
    if (c.strategy == strategy && c.budget_bytes == budget) return c;
  }
  HMEM_ASSERT_MSG(false, "no such figure-4 cell");
  return cells.front();
}

double Fig4Row::best_framework_fom() const {
  double best = 0;
  for (const auto& c : cells) best = std::max(best, c.fom);
  return best;
}

double dfom_per_mb(double fom, double ddr_fom, std::uint64_t mem_bytes) {
  HMEM_ASSERT(mem_bytes > 0);
  const double mem_mb =
      static_cast<double>(mem_bytes) / static_cast<double>(kMiB);
  return (fom - ddr_fom) / mem_mb;
}

Fig4Runner::Fig4Runner(apps::AppSpec app, PipelineOptions base_options)
    : app_(std::move(app)), base_(std::move(base_options)) {}

Fig4Row Fig4Runner::run(const std::vector<std::uint64_t>& budgets,
                        const std::vector<StrategyConfig>& strategies) {
  Fig4Row row;
  row.app = app_.name;
  row.fom_unit = app_.fom_unit;
  row.machine = base_.node.name;
  row.fast_tier_name = base_.node.tiers[base_.node.fastest_tier()].name;

  // One row is a 1x1 slice of the sweep grid: delegate enumeration,
  // shared-profile reuse, program caching and the worker pool to the sweep
  // engine, then reshape its outcomes into the historical Fig4Row.
  SweepSpec sweep;
  sweep.apps = {app_};
  sweep.machines = {base_.node};
  sweep.baselines = {Condition::kDdr, Condition::kNumactl,
                     Condition::kAutoHbw, Condition::kCacheMode};
  sweep.strategies = strategies;
  sweep.budgets_for = [budgets](const apps::AppSpec&) { return budgets; };
  sweep.base = base_;
  sweep.jobs = base_.jobs;
  SweepEngine engine(std::move(sweep));
  const std::vector<SweepOutcome> outcomes = engine.run();
  report_ = engine.profile_report(0, 0);

  // Enumeration order is baselines (in listed order) then strategy-major,
  // budget-minor framework cells — the same order Fig4Row::cells uses.
  row.cells.resize(strategies.size() * budgets.size());
  BaselineResult baselines[4];
  for (const SweepOutcome& outcome : outcomes) {
    const SweepCell& cell = outcome.cell;
    if (cell.kind == CellKind::kBaseline) {
      BaselineResult& b = baselines[cell.index];
      b.condition = condition_name(cell.baseline);
      b.fom = outcome.result.fom;
      b.fast_hwm_bytes = outcome.result.fast_hwm_bytes;
      continue;
    }
    Fig4Cell& out = row.cells[cell.index - 4];
    out.strategy = strategies[cell.strategy].label;
    out.budget_bytes = cell.budget_bytes;
    out.fom = outcome.result.fom;
    out.hwm_bytes = outcome.result.fast_hwm_bytes;
    out.any_overflow = outcome.result.any_overflow;
  }
  row.ddr = baselines[0];
  row.numactl = baselines[1];
  row.autohbw = baselines[2];
  row.cache = baselines[3];

  // dFOM/MByte needs the DDR baseline, so it is filled in after the sweep.
  // The paper assigns the full fast-tier capacity (16 GiB MCDRAM on KNL) as
  // MEM_x for the two budget-less conditions; autohbw is excluded from the
  // metric (unknown promoted volume).
  const std::uint64_t budgetless_mem =
      base_.node.tiers[base_.node.fastest_tier()].capacity_bytes;
  row.numactl.dfom_per_mb =
      dfom_per_mb(row.numactl.fom, row.ddr.fom, budgetless_mem);
  row.cache.dfom_per_mb =
      dfom_per_mb(row.cache.fom, row.ddr.fom, budgetless_mem);
  for (Fig4Cell& cell : row.cells) {
    cell.dfom_per_mb = dfom_per_mb(cell.fom, row.ddr.fom, cell.budget_bytes);
  }
  return row;
}

namespace {

std::string fmt_double(double v) {
  char buf[48];
  if (v != 0 && (std::abs(v) < 0.01 || std::abs(v) >= 1e6)) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string format_fig4_row(const Fig4Row& row,
                            const std::vector<std::uint64_t>& budgets,
                            const std::vector<StrategyConfig>& strategies) {
  std::ostringstream os;
  auto print_table = [&](const std::string& title, auto cell_value,
                         bool with_baselines) {
    os << "== " << row.app << " - " << title << " ==\n";
    os << "  budget";
    for (const auto& s : strategies) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %14s", s.label.c_str());
      os << buf;
    }
    os << '\n';
    for (const std::uint64_t b : budgets) {
      char head[32];
      std::snprintf(head, sizeof(head), "%8s",
                    format_bytes(b).c_str());
      os << head;
      for (const auto& s : strategies) {
        const Fig4Cell& c = row.cell(s.label, b);
        char buf[48];
        std::snprintf(buf, sizeof(buf), " %14s",
                      fmt_double(cell_value(c)).c_str());
        os << buf;
      }
      os << '\n';
    }
    if (with_baselines) {
      os << "  lines: DDR=" << fmt_double(row.ddr.fom) << " "
         << row.fast_tier_name << "*=" << fmt_double(row.numactl.fom)
         << " cache=" << fmt_double(row.cache.fom)
         << " autohbw/1m=" << fmt_double(row.autohbw.fom) << " ("
         << row.fom_unit << ")\n";
    }
    os << '\n';
  };

  print_table("FOM (" + row.fom_unit + ")",
              [](const Fig4Cell& c) { return c.fom; }, true);
  print_table(row.fast_tier_name + " HWM (MiB/rank)",
              [](const Fig4Cell& c) {
                return static_cast<double>(c.hwm_bytes) /
                       static_cast<double>(kMiB);
              },
              false);
  print_table("dFOM/MByte",
              [](const Fig4Cell& c) { return c.dfom_per_mb; }, false);
  os << "  dFOM/MByte lines: " << row.fast_tier_name
     << "*=" << fmt_double(row.numactl.dfom_per_mb)
     << " cache=" << fmt_double(row.cache.dfom_per_mb) << '\n';
  return os.str();
}

std::string fig4_row_to_csv(const Fig4Row& row) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"app", "kind", "strategy", "budget_mib", "fom",
                    "hwm_mib", "dfom_per_mb"});
  auto baseline = [&](const BaselineResult& b) {
    writer.write_row({row.app, "baseline", b.condition, "",
                      fmt_double(b.fom),
                      fmt_double(static_cast<double>(b.fast_hwm_bytes) /
                                 static_cast<double>(kMiB)),
                      fmt_double(b.dfom_per_mb)});
  };
  baseline(row.ddr);
  baseline(row.numactl);
  baseline(row.autohbw);
  baseline(row.cache);
  for (const auto& c : row.cells) {
    writer.write_row(
        {row.app, "framework", c.strategy,
         std::to_string(c.budget_bytes / kMiB), fmt_double(c.fom),
         fmt_double(static_cast<double>(c.hwm_bytes) /
                    static_cast<double>(kMiB)),
         fmt_double(c.dfom_per_mb)});
  }
  return os.str();
}

}  // namespace hmem::engine
