// Execution engine: interprets an AppSpec against the simulated machine
// under one placement condition, producing the run's figure of merit and
// every statistic the evaluation reports.
//
// Timing model (per phase, per rank): the simulated access stream is a
// sampled representation — each simulated access stands for
// `AppSpec::access_scale` real accesses. The phase duration is the roofline
// maximum of
//   * compute:   instructions / (effective cores * IPC * frequency),
//   * bandwidth: per-tier DRAM traffic / the rank's share of the tier's
//                achievable bandwidth,
//   * latency:   total miss latency / (effective cores * MLP),
// plus allocator and interposition costs, which are charged at face value
// (they are real per-call costs, not sampled). The profiler's monitoring
// cost is added the same way when profiling is enabled, which is what the
// Table I overhead column measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <vector>

#include "advisor/phase_advisor.hpp"
#include "advisor/placement_report.hpp"
#include "apps/app.hpp"
#include "callstack/sitedb.hpp"
#include "engine/kernel/kernel.hpp"
#include "memsim/machine.hpp"
#include "pebs/sampler.hpp"
#include "runtime/auto_hbwmalloc.hpp"
#include "trace/event.hpp"

namespace hmem::engine {

enum class Condition {
  kDdr,        ///< everything in DDR (reference)
  kNumactl,    ///< numactl -p 1 (FCFS into MCDRAM, statics and stack too)
  kAutoHbw,    ///< autohbw library, 1 MiB threshold
  kCacheMode,  ///< MCDRAM as direct-mapped memory-side cache
  kFramework,  ///< the paper's framework (requires a Placement)
  kDynamic,    ///< phase-aware framework (requires a PlacementSchedule)
};

const char* condition_name(Condition condition);

struct RunOptions {
  Condition condition = Condition::kDdr;
  /// Placement from hmem_advisor; required when condition == kFramework.
  const advisor::Placement* placement = nullptr;
  /// Per-phase schedule from hmem_advise --per-phase; required when
  /// condition == kDynamic. Phase names must match the app's phase names
  /// (they come from the same app's trace). With a single-phase schedule
  /// the run is bit-identical to kFramework on the same placement.
  const advisor::PlacementSchedule* schedule = nullptr;
  /// Mid-stream advisor hook (dynamic condition only). Consulted at every
  /// schedule decision point — the iteration wrap-around and each phase
  /// entry — with the app phase about to run; returning a schedule adopts
  /// it from that boundary on (an IncrementalAdvisor's latest answer, say),
  /// nullptr keeps the current one. The engine detects a refresh by pointer
  /// OR PlacementSchedule::generation change, so returning the same object
  /// mutated in place is supported — but the mutator MUST bump `generation`
  /// whenever the contents change (IncrementalAdvisor::refresh does; the
  /// engine asserts on a shape change it was not told about). Lifetime: the
  /// engine keeps dereferencing the adopted schedule at every subsequent
  /// boundary, so it must stay alive — and, at an unchanged generation,
  /// unmodified — until a different schedule is adopted or run_app returns;
  /// returning nullptr keeps the previously returned schedule live and in
  /// use. With a hook set the schedule may omit app phases — the engine
  /// keeps the last applied placement for a phase the advisor has not seen
  /// yet instead of asserting — and the dynamic machinery stays armed even
  /// while the schedule has a single phase, so the run can react to phase
  /// shifts the initial answer never saw.
  std::function<const advisor::PlacementSchedule*(const std::string& phase,
                                                  std::uint64_t iteration)>
      advisor_hook;
  runtime::AutoHbwOptions runtime_options;

  /// Attach the profiler (stage-1 run): collect the trace, pay the cost.
  bool profile = false;
  pebs::SamplerConfig sampler;
  std::uint64_t min_alloc_bytes = 4096;
  /// Stream trace events into this sink (e.g. a format writer bound to a
  /// shard file) instead of buffering them; RunResult::trace stays null.
  /// Only meaningful with profile = true. Must outlive the run.
  trace::EventSink* trace_sink = nullptr;
  /// Intern allocation sites into this external database instead of a fresh
  /// one — required when trace_sink serializes against the same SiteDb, and
  /// useful to share one database across ranks. RunResult::sites aliases it
  /// (non-owning); it must outlive every use of the result.
  callstack::SiteDb* sites = nullptr;

  std::uint64_t seed = 42;
  /// Node-level machine; the engine derives the per-rank view (LLC share,
  /// tier capacity shares, bandwidth shares). The memory mode is overridden
  /// to match the condition.
  memsim::MachineConfig node = memsim::MachineConfig::knl7250(
      memsim::MemMode::kFlat);
  /// Outstanding misses per core for the latency roofline term (hardware
  /// prefetchers keep many line fills in flight on KNL).
  double mlp = 30.0;
  /// Compute/memory overlap imperfection: phase time is
  /// max(compute, memory) + overlap_beta * min(compute, memory). Zero means
  /// perfect overlap (pure roofline); one means fully serialised.
  double overlap_beta = 0.25;
  /// Cross-tier contention: tiers stream in parallel, but the shared
  /// mesh/controllers keep the combination short of perfect overlap:
  /// memory time is the dominant tier's time plus tier_mix_penalty times
  /// the sum of every other tier's.
  double tier_mix_penalty = 0.3;
  /// autohbw size threshold (paper: 1 MiB).
  std::uint64_t autohbw_threshold = 1ULL << 20;
  /// Which access-loop backend executes the inner simulation loop. All
  /// kernels are bit-identical on every RunResult field; the request is
  /// resolved through the fallback ladder in engine/kernel/kernel.hpp
  /// (cache mode -> interp, profiled native -> bytecode, missing native
  /// support -> bytecode). kAuto consults HMEM_KERNEL, then bytecode.
  kernel::KernelKind kernel = kernel::KernelKind::kAuto;

  /// Memory resource backing the run's scratch state: the simulated tier
  /// allocators' bookkeeping maps, the profiled miss-record buffer, and the
  /// per-phase accumulator vectors. The sweep engine points this at a
  /// worker-local hmem::Arena reset between cells so steady-state sweeping
  /// does no global-allocator traffic. Null means the default resource.
  /// Every RunResult field is bit-identical regardless of the resource —
  /// allocator choice can move bytes, never change them.
  std::pmr::memory_resource* scratch = nullptr;
  /// Shared cache of compiled kernel programs. When set, the engine looks
  /// up `program_cache_prefix|p<phase>|e<live_epoch>|a<addr_epoch>` before
  /// compiling and re-binds the cached program's generator pointers to the
  /// run's own generators on a hit. The caller owns key uniqueness: two
  /// runs may share a prefix only if they would compile byte-identical
  /// programs for it (same app, machine, placement shape, seeds).
  kernel::ProgramCache* program_cache = nullptr;
  std::string program_cache_prefix;
};

/// Real (scale-corrected) DRAM traffic one tier carried during a run.
struct TierTraffic {
  std::string name;            ///< tier name from the machine config
  std::uint64_t bytes = 0;     ///< per rank, migration traffic included
  /// Portion of `bytes` that is phase-boundary migration traffic (source
  /// tiers carry the read, destination tiers the write). Zero outside the
  /// dynamic condition.
  std::uint64_t migration_bytes = 0;
};

struct RunResult {
  std::string app;
  std::string condition;
  std::string fom_unit;
  double time_s = 0;
  double fom = 0;

  /// Fastest-tier high-water mark, per rank (Figure 4 middle column). For
  /// the framework this is auto-hbwmalloc's accounting; for numactl/autohbw
  /// it is the fast allocator's HWM. Zero under DDR / cache mode.
  std::uint64_t fast_hwm_bytes = 0;
  /// Per-rank resident high-water mark across all allocators (Table I).
  std::uint64_t total_hwm_bytes = 0;

  /// Per-tier real (scale-corrected) DRAM traffic, per rank, ordered
  /// fastest tier first (the machine's performance order).
  std::vector<TierTraffic> tier_traffic;
  double achieved_bw_gbs = 0;

  /// Traffic on the fastest / slowest tier ("MCDRAM" / "DDR" on KNL).
  std::uint64_t fast_bytes() const {
    return tier_traffic.empty() ? 0 : tier_traffic.front().bytes;
  }
  std::uint64_t slow_bytes() const {
    return tier_traffic.empty() ? 0 : tier_traffic.back().bytes;
  }
  std::uint64_t dram_bytes() const {
    std::uint64_t total = 0;
    for (const TierTraffic& t : tier_traffic) total += t.bytes;
    return total;
  }

  /// Dynamic-condition migration accounting (zero elsewhere), per rank:
  /// bytes moved across tiers at phase boundaries (counted once per move),
  /// the number of region moves, and the simulated seconds the moves cost
  /// (source-tier read + destination-tier write at the roofline bandwidths,
  /// plus allocator bookkeeping).
  std::uint64_t migration_bytes = 0;
  std::uint64_t migration_count = 0;
  double migration_cost_s = 0;

  std::uint64_t llc_misses = 0;  ///< real, per rank
  std::uint64_t samples = 0;     ///< PEBS samples captured (profiled runs)
  double monitoring_overhead = 0;  ///< fraction of run time
  std::uint64_t alloc_calls = 0;   ///< dynamic allocations, per rank
  double allocs_per_second = 0;
  double interposition_overhead_ns = 0;  ///< unwind+translate+allocator cost

  /// Stage-1 artefacts (profiled runs only). `trace` is null when the run
  /// streamed into RunOptions::trace_sink instead of buffering.
  std::shared_ptr<trace::TraceBuffer> trace;
  std::shared_ptr<callstack::SiteDb> sites;

  /// Framework-only: the interposer's statistics.
  std::optional<runtime::AutoHbwStats> autohbw;
};

/// Runs one application once under the given options.
RunResult run_app(const apps::AppSpec& app, const RunOptions& options);

}  // namespace hmem::engine
