#include "engine/kernel/kernel.hpp"

#include <cstdlib>
#include <mutex>

#include "common/fault.hpp"
#include "engine/kernel/native.hpp"

namespace hmem::engine::kernel {

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kInterp:
      return "interp";
    case KernelKind::kBytecode:
      return "bytecode";
    case KernelKind::kNative:
      return "native";
  }
  return "?";
}

std::optional<KernelKind> parse_kernel(const std::string& name) {
  if (name == "auto") return KernelKind::kAuto;
  if (name == "interp") return KernelKind::kInterp;
  if (name == "bytecode") return KernelKind::kBytecode;
  if (name == "native") return KernelKind::kNative;
  return std::nullopt;
}

std::string kernel_list() { return "interp, bytecode, native, auto"; }

KernelKind resolve_kernel(KernelKind requested, bool cache_mode,
                          bool profiled) {
  KernelKind kind = requested;
  if (kind == KernelKind::kAuto) {
    kind = KernelKind::kBytecode;
    if (const char* env = std::getenv("HMEM_KERNEL")) {
      // An unknown value keeps the default: the env var is a convenience
      // override, and a typo should not abort an otherwise valid run.
      const auto parsed = parse_kernel(env);
      if (parsed.has_value() && *parsed != KernelKind::kAuto) kind = *parsed;
    }
  }
  if (kind == KernelKind::kInterp) return kind;
  // The analytic cache-mode model interleaves rng.uniform() draws with the
  // access stream; only the interpreter implements it.
  if (cache_mode) return KernelKind::kInterp;
  if (kind == KernelKind::kNative && (profiled || !native_available())) {
    kind = KernelKind::kBytecode;
  }
  // Injected compile failures walk the same ladder a real backend failure
  // would: native falls back to bytecode, bytecode to the interpreter.
  // Every rung computes identical results, so a fault here only changes
  // which engine runs, never what it produces.
  if (kind == KernelKind::kNative &&
      fault::inject(fault::Site::kKernelCompile)) {
    kind = KernelKind::kBytecode;
  }
  if (kind == KernelKind::kBytecode &&
      fault::inject(fault::Site::kKernelCompile)) {
    kind = KernelKind::kInterp;
  }
  return kind;
}

std::shared_ptr<const Program> ProgramCache::find(const std::string& key) {
  {
    std::shared_lock lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const Program> ProgramCache::insert(const std::string& key,
                                                    Program program) {
  // Generator pointers are run-local; a cached program must never carry
  // them across cells. Keep the slot count so consumers can re-bind.
  for (apps::AccessGenerator*& gen : program.gens) gen = nullptr;
  auto entry = std::make_shared<const Program>(std::move(program));
  std::unique_lock lock(mu_);
  const auto [it, inserted] = entries_.emplace(key, std::move(entry));
  (void)inserted;
  return it->second;
}

double ProgramCache::hit_rate() const {
  const double h = static_cast<double>(hits());
  const double m = static_cast<double>(misses());
  return h + m > 0 ? h / (h + m) : 0.0;
}

std::size_t ProgramCache::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

}  // namespace hmem::engine::kernel
