// Kernel selection for the execution engine's access loop.
//
// Three backends execute the per-access simulation, all bit-identical on
// every RunResult field (the differential tests assert it):
//   * interp   — the original loop in engine/execution.cpp; the oracle.
//   * bytecode — the portable compiled IR (engine/kernel/ir.hpp).
//   * native   — the x86-64 emitter (engine/kernel/native.hpp), optional.
// Selection resolves through a fallback ladder, never an error: an explicit
// `native` request on a machine without the backend silently runs bytecode;
// the cache-mode condition always runs the interpreter (its analytic
// memory-side-cache model draws from the main RNG mid-access, which the
// compiled kernels deliberately do not model); profiled runs cap at
// bytecode (miss-record collection). `auto` consults the HMEM_KERNEL
// environment variable, then defaults to bytecode.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "engine/kernel/ir.hpp"

namespace hmem::engine::kernel {

enum class KernelKind {
  kAuto,      ///< HMEM_KERNEL env var, else bytecode
  kInterp,    ///< original interpreter loop (the oracle)
  kBytecode,  ///< compiled IR through the portable VM
  kNative,    ///< compiled IR through the x86-64 emitter
};

const char* kernel_name(KernelKind kind);

/// Parses "auto" / "interp" / "bytecode" / "native"; nullopt otherwise.
std::optional<KernelKind> parse_kernel(const std::string& name);

/// Comma-joined kernel names for --help texts.
std::string kernel_list();

/// Applies the fallback ladder: requested -> what actually runs. Never
/// fails; unsatisfiable requests degrade (native -> bytecode -> interp).
KernelKind resolve_kernel(KernelKind requested, bool cache_mode,
                          bool profiled);

/// Read-mostly cache of compiled Programs, shared across sweep cells.
///
/// Compilation is deterministic, so any two cells that would compile the
/// same (app, phase, machine, placement-shape) produce byte-identical
/// streams — the sweep engine keys on exactly those inputs and reuses the
/// first compile. Cached entries store `gens` cleared: generator pointers
/// are per-run state, and a consumer must re-bind them from its own freshly
/// built SlotTargets before executing (verify_program rejects the program
/// until it does). Thread-safe; lookups take a shared lock, inserts an
/// exclusive one.
class ProgramCache {
 public:
  /// Returns the cached program for `key`, or nullptr. Counts a hit/miss.
  std::shared_ptr<const Program> find(const std::string& key);

  /// Stores `program` under `key` with its generator bindings cleared.
  /// First insert wins (compilation is deterministic, so a racing duplicate
  /// is byte-identical anyway); returns the resident entry.
  std::shared_ptr<const Program> insert(const std::string& key,
                                        Program program);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when no lookups have happened.
  double hit_rate() const;
  std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Program>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hmem::engine::kernel
