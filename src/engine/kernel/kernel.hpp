// Kernel selection for the execution engine's access loop.
//
// Three backends execute the per-access simulation, all bit-identical on
// every RunResult field (the differential tests assert it):
//   * interp   — the original loop in engine/execution.cpp; the oracle.
//   * bytecode — the portable compiled IR (engine/kernel/ir.hpp).
//   * native   — the x86-64 emitter (engine/kernel/native.hpp), optional.
// Selection resolves through a fallback ladder, never an error: an explicit
// `native` request on a machine without the backend silently runs bytecode;
// the cache-mode condition always runs the interpreter (its analytic
// memory-side-cache model draws from the main RNG mid-access, which the
// compiled kernels deliberately do not model); profiled runs cap at
// bytecode (miss-record collection). `auto` consults the HMEM_KERNEL
// environment variable, then defaults to bytecode.
#pragma once

#include <optional>
#include <string>

namespace hmem::engine::kernel {

enum class KernelKind {
  kAuto,      ///< HMEM_KERNEL env var, else bytecode
  kInterp,    ///< original interpreter loop (the oracle)
  kBytecode,  ///< compiled IR through the portable VM
  kNative,    ///< compiled IR through the x86-64 emitter
};

const char* kernel_name(KernelKind kind);

/// Parses "auto" / "interp" / "bytecode" / "native"; nullopt otherwise.
std::optional<KernelKind> parse_kernel(const std::string& name);

/// Comma-joined kernel names for --help texts.
std::string kernel_list();

/// Applies the fallback ladder: requested -> what actually runs. Never
/// fails; unsatisfiable requests degrade (native -> bytecode -> interp).
KernelKind resolve_kernel(KernelKind requested, bool cache_mode,
                          bool profiled);

}  // namespace hmem::engine::kernel
