#include "engine/kernel/ir.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "memsim/machine.hpp"

namespace hmem::engine::kernel {

const char* op_name(Op op) {
  switch (op) {
    case Op::kStackAddr:
      return "stack_addr";
    case Op::kFixedAddr:
      return "fixed_addr";
    case Op::kPickAddr:
      return "pick_addr";
    case Op::kAddGenOffset:
      return "add_gen_offset";
    case Op::kServeFixed:
      return "serve_fixed";
    case Op::kServePicked:
      return "serve_picked";
  }
  return "?";
}

// ---- Compiler --------------------------------------------------------------

Program compile_program(const AliasTable& alias, std::uint64_t write_threshold,
                        std::uint64_t write_shift,
                        const std::vector<SlotTarget>& targets,
                        const memsim::Machine& machine) {
  HMEM_ASSERT_MSG(alias.size() == targets.size(),
                  "one slot target per alias column");
  Program p;
  const std::size_t n = alias.size();
  p.threshold.reserve(n);
  p.alias.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    p.threshold.push_back(alias.slot_threshold(c));
    p.alias.push_back(alias.slot_alias(c));
  }
  p.coin_mask = alias.coin_mask();
  p.write_threshold = write_threshold;
  p.write_shift = write_shift;
  p.llc_latency_ns = machine.config().llc_latency_ns;
  p.n_tiers = static_cast<std::uint32_t>(machine.tier_count());

  const auto tier_latency = [&](memsim::TierIndex t) {
    return machine.config().tiers[t].latency_ns;
  };

  p.block_start.reserve(n);
  for (const SlotTarget& target : targets) {
    p.block_start.push_back(static_cast<std::uint32_t>(p.code.size()));
    if (target.is_stack) {
      // addr = base + below(lines) * line; one fixed serving tier — the
      // stack is a single allocation, so it cannot straddle a tier range.
      const memsim::TierIndex t = machine.owning_tier(target.stack_base);
      Insn pick;
      pick.op = Op::kStackAddr;
      pick.imm0 = target.stack_base;
      pick.imm1 = target.stack_lines;
      p.code.push_back(pick);
      Insn serve;
      serve.op = Op::kServeFixed;
      serve.a = static_cast<std::uint32_t>(t);
      serve.f = tier_latency(t);
      p.code.push_back(serve);
      continue;
    }
    HMEM_ASSERT_MSG(target.instances != nullptr && !target.instances->empty(),
                    "object slot target with no live instances");
    HMEM_ASSERT(target.gen != nullptr);
    const std::uint32_t gen_index = static_cast<std::uint32_t>(p.gens.size());
    p.gens.push_back(target.gen);
    if (target.instances->size() == 1) {
      // Single instance: the interpreter skips the instance draw, so the
      // compiled block must consume no draw either.
      const memsim::Address base = target.instances->front();
      const memsim::TierIndex t = machine.owning_tier(base);
      Insn fixed;
      fixed.op = Op::kFixedAddr;
      fixed.imm0 = base;
      p.code.push_back(fixed);
      Insn gen;
      gen.op = Op::kAddGenOffset;
      gen.a = gen_index;
      gen.imm0 = target.size_bytes;
      p.code.push_back(gen);
      Insn serve;
      serve.op = Op::kServeFixed;
      serve.a = static_cast<std::uint32_t>(t);
      serve.f = tier_latency(t);
      p.code.push_back(serve);
    } else {
      // Instance pick: each instance carries its own baked tier + latency
      // (instances of one object can land in different tiers when a fast
      // tier fills mid-allocation).
      Insn pick;
      pick.op = Op::kPickAddr;
      pick.imm0 = p.instances.size();
      pick.a = static_cast<std::uint32_t>(target.instances->size());
      for (const memsim::Address base : *target.instances) {
        const memsim::TierIndex t = machine.owning_tier(base);
        InstanceSlot slot;
        slot.base = base;
        slot.latency_ns = tier_latency(t);
        slot.tier = t;
        p.instances.push_back(slot);
      }
      p.code.push_back(pick);
      Insn gen;
      gen.op = Op::kAddGenOffset;
      gen.a = gen_index;
      gen.imm0 = target.size_bytes;
      p.code.push_back(gen);
      Insn serve;
      serve.op = Op::kServePicked;
      p.code.push_back(serve);
    }
  }

  const std::string problem = verify_program(p);
  HMEM_ASSERT_MSG(problem.empty(), problem.c_str());
  return p;
}

// ---- Verifier --------------------------------------------------------------

namespace {

std::string defect(const char* what, std::size_t where) {
  std::ostringstream os;
  os << what << " (at " << where << ")";
  return os.str();
}

}  // namespace

std::string verify_program(const Program& p) {
  const std::size_t n = p.threshold.size();
  if (n == 0) return "empty alias table";
  if (n > (1ULL << 32)) return "alias table wider than the 32-bit column draw";
  if (p.alias.size() != n) return "threshold/alias size mismatch";
  if (p.block_start.size() != n) return "one block per alias column required";
  if ((p.coin_mask & (p.coin_mask + 1)) != 0) {
    return "coin_mask is not a low-bit mask";
  }
  if (p.write_shift >= 64) return "write_shift out of range";
  // write_shift == 0 leaves all 64 draw bits as the coin, so any threshold
  // is in range (and 1 << 64 would be UB to compute).
  if (p.write_shift > 0 &&
      p.write_threshold > (1ULL << (64 - p.write_shift))) {
    return "write_threshold exceeds the coin range";
  }
  if (p.n_tiers == 0) return "program with no tiers";
  for (std::size_t c = 0; c < n; ++c) {
    if (p.threshold[c] > p.coin_mask + 1) {
      return defect("alias threshold above coin range", c);
    }
    if (p.alias[c] >= n) return defect("alias column out of range", c);
  }
  for (std::size_t i = 0; i < p.instances.size(); ++i) {
    if (p.instances[i].tier >= p.n_tiers) {
      return defect("instance tier out of range", i);
    }
  }
  for (apps::AccessGenerator* gen : p.gens) {
    if (gen == nullptr) return "null access generator";
  }

  // Every block must be one of the three legal shapes, fully inside `code`,
  // with every operand index in range. The executors rely on this: they run
  // without per-access bounds checks.
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t at = p.block_start[s];
    if (at >= p.code.size()) return defect("block start out of range", s);
    const Insn& head = p.code[at];
    switch (head.op) {
      case Op::kStackAddr: {
        if (at + 1 >= p.code.size()) return defect("truncated block", s);
        if (head.imm1 == 0) return defect("stack with zero lines", s);
        const Insn& serve = p.code[at + 1];
        if (serve.op != Op::kServeFixed) {
          return defect("stack block must end in serve_fixed", s);
        }
        if (serve.a >= p.n_tiers) return defect("serve tier out of range", s);
        break;
      }
      case Op::kFixedAddr:
      case Op::kPickAddr: {
        if (at + 2 >= p.code.size()) return defect("truncated block", s);
        const bool picked = head.op == Op::kPickAddr;
        if (picked) {
          if (head.a == 0) return defect("pick with zero instances", s);
          if (head.imm0 + head.a > p.instances.size()) {
            return defect("instance range out of pool", s);
          }
        }
        const Insn& gen = p.code[at + 1];
        if (gen.op != Op::kAddGenOffset) {
          return defect("object block missing add_gen_offset", s);
        }
        if (gen.a >= p.gens.size()) return defect("generator out of range", s);
        if (gen.imm0 == 0) return defect("zero-size offset clamp", s);
        const Insn& serve = p.code[at + 2];
        if (picked) {
          if (serve.op != Op::kServePicked) {
            return defect("pick block must end in serve_picked", s);
          }
        } else {
          if (serve.op != Op::kServeFixed) {
            return defect("fixed block must end in serve_fixed", s);
          }
          if (serve.a >= p.n_tiers) {
            return defect("serve tier out of range", s);
          }
        }
        break;
      }
      default:
        return defect("block starts with a non-address op", s);
    }
  }
  return "";
}

// ---- Bytecode VM -----------------------------------------------------------

namespace {

/// The executor body, specialized on whether miss records are collected so
/// the steady-state (non-profiled) loop carries no record-keeping at all.
template <bool Profiled>
void run_impl(const Program& p, Frame& f, Xoshiro256& rng,
              std::pmr::vector<MissRecord>* out) {
  const std::uint64_t n_cols = p.threshold.size();
  const std::uint64_t* const thr = p.threshold.data();
  const std::uint32_t* const ali = p.alias.data();
  const std::uint32_t* const blocks = p.block_start.data();
  const Insn* const code = p.code.data();
  const InstanceSlot* const insts = p.instances.data();
  apps::AccessGenerator* const* const gens = p.gens.data();
  memsim::Address* const tags = f.tags;
  std::uint64_t* const lru = f.lru;
  const std::uint64_t ways = f.ways;
  const std::uint64_t line_shift = f.line_shift;
  const std::uint64_t set_mask = f.set_mask;
  std::uint64_t tick = f.tick;
  double latency = f.latency_ns;
  std::uint64_t misses = f.misses;

  for (std::uint64_t k = 0; k < f.n_accesses; ++k) {
    // One structured draw per access, split exactly as the interpreter
    // splits it (column / alias coin / write coin).
    const std::uint64_t draw = rng.next();
    const std::size_t col = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(draw)) *
         n_cols) >>
        32);
    const std::uint64_t coin = (draw >> 32) & p.coin_mask;
    const std::size_t slot = coin < thr[col] ? col : ali[col];

    std::uint64_t addr = 0;
    double miss_latency = 0;
    std::uint64_t miss_tier = 0;
    for (const Insn* in = code + blocks[slot];; ++in) {
      bool served = false;
      switch (in->op) {
        case Op::kStackAddr:
          addr = in->imm0 + rng.below(in->imm1) * memsim::kCacheLineBytes;
          break;
        case Op::kFixedAddr:
          addr = in->imm0;
          break;
        case Op::kPickAddr: {
          const InstanceSlot& rec = insts[in->imm0 + rng.below(in->a)];
          addr = rec.base;
          // Baked serve parameters travel with the pick; the block's
          // serve_picked consumes them.
          miss_latency = rec.latency_ns;
          miss_tier = rec.tier;
          break;
        }
        case Op::kAddGenOffset: {
          std::uint64_t offset = gens[in->a]->next_offset();
          if (offset >= in->imm0) offset = 0;
          addr += offset;
          break;
        }
        case Op::kServeFixed:
          miss_latency = in->f;
          miss_tier = in->a;
          served = true;
          break;
        case Op::kServePicked:
          served = true;
          break;
      }
      if (served) break;
    }

    // Inline LLC probe: the exact Cache::access sequence (tick increment,
    // hit stamp, first-minimal-stamp victim), minus the interpreter-only
    // hit/miss counters.
    ++tick;
    const std::uint64_t tag = addr >> line_shift;
    const std::size_t base =
        static_cast<std::size_t>((tag & set_mask) * ways);
    bool hit = false;
    for (std::uint64_t w = 0; w < ways; ++w) {
      if (tags[base + w] == tag) {
        lru[base + w] = tick;
        hit = true;
        break;
      }
    }
    if (hit) {
      latency += p.llc_latency_ns;
      continue;
    }
    std::uint64_t victim = 0;
    std::uint64_t best = lru[base];
    for (std::uint64_t w = 1; w < ways; ++w) {
      const bool better = lru[base + w] < best;
      best = better ? lru[base + w] : best;
      victim = better ? w : victim;
    }
    tags[base + victim] = tag;
    lru[base + victim] = tick;
    latency += miss_latency;
    f.tier_sim[miss_tier] += memsim::kCacheLineBytes;
    ++misses;
    if constexpr (Profiled) {
      const bool is_write = (draw >> p.write_shift) < p.write_threshold;
      out->push_back(MissRecord{k, addr, is_write});
    }
  }

  f.tick = tick;
  f.latency_ns = latency;
  f.misses = misses;
}

}  // namespace

void run_bytecode(const Program& program, Frame& frame, Xoshiro256& rng,
                  std::pmr::vector<MissRecord>* misses) {
  if (misses != nullptr) {
    run_impl<true>(program, frame, rng, misses);
  } else {
    run_impl<false>(program, frame, rng, nullptr);
  }
}

}  // namespace hmem::engine::kernel
