#include "engine/kernel/native.hpp"

#include <cstddef>
#include <cstring>

#include "apps/generator.hpp"
#include "memsim/cache.hpp"

#if defined(HMEM_NATIVE_KERNEL) && defined(__x86_64__) && \
    (defined(__unix__) || defined(__APPLE__))
#define HMEM_NATIVE_X64 1
#endif

namespace hmem::engine::kernel {

// Out-of-line target for the emitted code's per-object offset draws. The
// generator's stream is independent of the main RNG, so crossing a C call
// boundary here cannot perturb bit-identity.
extern "C" std::uint64_t hmem_kernel_gen_next(void* gen) {
  return static_cast<apps::AccessGenerator*>(gen)->next_offset();
}

#ifndef HMEM_NATIVE_X64

bool native_available() { return false; }
bool NativeKernel::compile(const Program&, std::uint32_t, std::uint32_t,
                           std::uint64_t) {
  return false;
}
void NativeKernel::run(Frame&) const {}

#else  // HMEM_NATIVE_X64

namespace {

// The emitted code addresses the Frame by fixed displacements off rbx;
// these mirror the struct layout and are locked down here.
static_assert(offsetof(Frame, rng_state) == 0);
static_assert(offsetof(Frame, tick) == 32);
static_assert(offsetof(Frame, latency_ns) == 40);
static_assert(offsetof(Frame, misses) == 48);
static_assert(offsetof(Frame, n_accesses) == 56);
static_assert(offsetof(Frame, tier_sim) == 64);
static_assert(offsetof(Frame, scratch) == 72);
static_assert(offsetof(Frame, tags) == 80);
static_assert(offsetof(Frame, lru) == 88);
static_assert(sizeof(memsim::Address) == 8);
static_assert(offsetof(InstanceSlot, base) == 0);
static_assert(offsetof(InstanceSlot, latency_ns) == 8);
static_assert(offsetof(InstanceSlot, tier) == 16);

// Register numbers (SysV). Persistent state sits in callee-saved registers:
// rbx = Frame*, rbp = access counter, r12..r15 = xoshiro s0..s3. Everything
// else is per-access scratch.
constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3;
constexpr int kRbp = 5, kRsi = 6, kRdi = 7;
constexpr int kR8 = 8, kR9 = 9, kR10 = 10, kR11 = 11;
constexpr int kR12 = 12, kR13 = 13, kR14 = 14, kR15 = 15;

std::uint64_t bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Minimal x86-64 emitter: exactly the encodings the kernel needs, with
/// rel32 label fixups. Memory operands never use rsp/r12/r13/rbp as a base
/// (the modrm special cases), which the code below respects by
/// construction.
class Asm {
 public:
  std::vector<std::uint8_t> buf;

  struct Label {
    std::ptrdiff_t target = -1;
    std::vector<std::size_t> fixups;  ///< positions of pending rel32 slots
  };

  std::size_t pos() const { return buf.size(); }
  void byte(std::uint8_t b) { buf.push_back(b); }
  void imm32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void imm64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void bind(Label& l) {
    l.target = static_cast<std::ptrdiff_t>(pos());
    for (const std::size_t at : l.fixups) {
      const std::uint32_t rel =
          static_cast<std::uint32_t>(l.target - static_cast<std::ptrdiff_t>(at + 4));
      for (int i = 0; i < 4; ++i) {
        buf[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rel >> (8 * i));
      }
    }
    l.fixups.clear();
  }

  void rel32(Label& l) {
    if (l.target >= 0) {
      imm32(static_cast<std::uint32_t>(l.target -
                                       static_cast<std::ptrdiff_t>(pos() + 4)));
    } else {
      l.fixups.push_back(pos());
      imm32(0);
    }
  }

  // ---- encoding helpers ----
  void rex(bool w, int reg, int index, int rm) {
    const std::uint8_t r = static_cast<std::uint8_t>(
        0x40 | (w ? 8 : 0) | ((reg >> 3) << 2) | ((index >> 3) << 1) |
        (rm >> 3));
    if (r != 0x40 || w) byte(r);
  }
  void rex_opt(int reg, int index, int rm) {
    // 32-bit op: REX only when a high register is involved.
    const std::uint8_t r = static_cast<std::uint8_t>(
        0x40 | ((reg >> 3) << 2) | ((index >> 3) << 1) | (rm >> 3));
    if (r != 0x40) byte(r);
  }
  void modrm(int mod, int reg, int rm) {
    byte(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  void mem(int reg, int base, int disp) {
    // base is never rsp/r12 (SIB escape) or, with disp 0, rbp/r13.
    if (disp == 0 && (base & 7) != 5) {
      modrm(0, reg, base);
    } else if (disp >= -128 && disp <= 127) {
      modrm(1, reg, base);
      byte(static_cast<std::uint8_t>(disp));
    } else {
      modrm(2, reg, base);
      imm32(static_cast<std::uint32_t>(disp));
    }
  }
  void sib_mem(int reg, int base, int index, int scale_log) {
    // [base + index*scale], disp 0; base never rbp/r13.
    modrm(0, reg, 4);
    byte(static_cast<std::uint8_t>((scale_log << 6) | ((index & 7) << 3) |
                                   (base & 7)));
  }

  // ---- instructions ----
  void push_r(int r) { rex_opt(0, 0, r); byte(0x50 + (r & 7)); }
  void pop_r(int r) { rex_opt(0, 0, r); byte(0x58 + (r & 7)); }
  void mov_rr(int dst, int src) { rex(true, src, 0, dst); byte(0x89); modrm(3, src, dst); }
  void mov_ri64(int r, std::uint64_t v) { rex(true, 0, 0, r); byte(0xB8 + (r & 7)); imm64(v); }
  void mov_ri32(int r, std::uint32_t v) { rex_opt(0, 0, r); byte(0xB8 + (r & 7)); imm32(v); }
  void mov_r_mem(int dst, int base, int disp) { rex(true, dst, 0, base); byte(0x8B); mem(dst, base, disp); }
  void mov_mem_r(int base, int disp, int src) { rex(true, src, 0, base); byte(0x89); mem(src, base, disp); }
  void mov_r_sib(int dst, int base, int index, int scale_log) {
    rex(true, dst, index, base); byte(0x8B); sib_mem(dst, base, index, scale_log);
  }
  void mov32_r_sib(int dst, int base, int index, int scale_log) {
    rex_opt(dst, index, base); byte(0x8B); sib_mem(dst, base, index, scale_log);
  }
  void mov_sib_r(int base, int index, int scale_log, int src) {
    rex(true, src, index, base); byte(0x89); sib_mem(src, base, index, scale_log);
  }
  void mov32_rr(int dst, int src) { rex_opt(src, 0, dst); byte(0x89); modrm(3, src, dst); }
  void lea_sib(int dst, int base, int index, int scale_log) {
    rex(true, dst, index, base); byte(0x8D); sib_mem(dst, base, index, scale_log);
  }
  void lea_mem(int dst, int base, int disp) { rex(true, dst, 0, base); byte(0x8D); mem(dst, base, disp); }
  void lea_r13x5(int dst) {
    // lea dst, [r13 + r13*4]: rbp-class base forces a disp8 of zero.
    rex(true, dst, kR13, kR13);
    byte(0x8D);
    modrm(1, dst, 4);
    byte(static_cast<std::uint8_t>((2 << 6) | ((kR13 & 7) << 3) | (kR13 & 7)));
    byte(0);
  }
  void add_rr(int dst, int src) { rex(true, src, 0, dst); byte(0x01); modrm(3, src, dst); }
  void and_rr(int dst, int src) { rex(true, src, 0, dst); byte(0x21); modrm(3, src, dst); }
  void xor_rr(int dst, int src) { rex(true, src, 0, dst); byte(0x31); modrm(3, src, dst); }
  void xor32_rr(int dst, int src) { rex_opt(src, 0, dst); byte(0x31); modrm(3, src, dst); }
  void cmp_rr(int a, int b) { rex(true, a, 0, b); byte(0x3B); modrm(3, a, b); }  // flags(a - b)
  void cmp_r_mem(int a, int base, int disp) { rex(true, a, 0, base); byte(0x3B); mem(a, base, disp); }
  void cmp_mem_r(int base, int disp, int r) { rex(true, r, 0, base); byte(0x39); mem(r, base, disp); }
  void shl_ri(int r, int n) { rex(true, 0, 0, r); byte(0xC1); modrm(3, 4, r); byte(static_cast<std::uint8_t>(n)); }
  void shr_ri(int r, int n) { rex(true, 0, 0, r); byte(0xC1); modrm(3, 5, r); byte(static_cast<std::uint8_t>(n)); }
  void rol_ri(int r, int n) { rex(true, 0, 0, r); byte(0xC1); modrm(3, 0, r); byte(static_cast<std::uint8_t>(n)); }
  void imul_rri(int dst, int src, std::uint32_t v) {
    rex(true, dst, 0, src); byte(0x69); modrm(3, dst, src); imm32(v);
  }
  void mul_r(int r) { rex(true, 0, 0, r); byte(0xF7); modrm(3, 4, r); }
  void cmovb_rr(int dst, int src) { rex(true, dst, 0, src); byte(0x0F); byte(0x42); modrm(3, dst, src); }
  void cmovae_rr(int dst, int src) { rex(true, dst, 0, src); byte(0x0F); byte(0x43); modrm(3, dst, src); }
  void inc_r(int r) { rex(true, 0, 0, r); byte(0xFF); modrm(3, 0, r); }
  void inc_mem(int base, int disp) { rex(true, 0, 0, base); byte(0xFF); mem(0, base, disp); }
  void add_sib_imm8(int base, int index, std::uint8_t v) {
    rex(true, 0, index, base); byte(0x83); sib_mem(0, base, index, 3); byte(v);
  }
  void sub_rsp8() { byte(0x48); byte(0x83); byte(0xEC); byte(0x08); }
  void add_rsp8() { byte(0x48); byte(0x83); byte(0xC4); byte(0x08); }
  void call_r(int r) { rex_opt(0, 0, r); byte(0xFF); modrm(3, 2, r); }
  void call_label(Label& l) { byte(0xE8); rel32(l); }
  void jmp_label(Label& l) { byte(0xE9); rel32(l); }
  void jb_label(Label& l) { byte(0x0F); byte(0x82); rel32(l); }
  void jae_label(Label& l) { byte(0x0F); byte(0x83); rel32(l); }
  void jmp_sib(int base, int index) { rex_opt(4, index, base); byte(0xFF); sib_mem(4, base, index, 3); }
  void ret() { byte(0xC3); }
  void cmp_mem0(int base, int disp) {
    rex(true, 0, 0, base); byte(0x83); mem(7, base, disp); byte(0);
  }
  void je_label(Label& l) { byte(0x0F); byte(0x84); rel32(l); }
  /// jne over a stub of unknown length: returns the rel8 patch position.
  std::size_t jne_short() { byte(0x75); byte(0); return pos() - 1; }
  void patch_short(std::size_t at) {
    buf[at] = static_cast<std::uint8_t>(pos() - (at + 1));
  }
  // SSE2 scalar double ops (xmm0..xmm7, low bases only — no REX needed).
  void movsd_x_mem(int x, int base, int disp) { byte(0xF2); byte(0x0F); byte(0x10); mem(x, base, disp); }
  void movsd_mem_x(int base, int disp, int x) { byte(0xF2); byte(0x0F); byte(0x11); mem(x, base, disp); }
  void addsd(int x, int x2) { byte(0xF2); byte(0x0F); byte(0x58); modrm(3, x, x2); }
  void movq_x_r(int x, int r) {
    byte(0x66); rex(true, x, 0, r); byte(0x0F); byte(0x6E); modrm(3, x, r);
  }
};

}  // namespace

bool NativeKernel::compile(const Program& p, std::uint32_t ways,
                           std::uint32_t line_shift, std::uint64_t set_mask) {
  if (!ExecutableAllocator::supported()) return false;
  if (entry_ != nullptr) {
    alloc_.release(entry_);
    entry_ = nullptr;
  }
  const std::uint64_t n_cols = p.threshold.size();
  if (n_cols == 0 || n_cols > 0x7FFFFFFFULL) return false;
  if (ways == 0 || ways > 0x7FFFFFFFU) return false;

  jump_table_.assign(p.slot_count(), 0);
  std::vector<std::size_t> block_offset(p.slot_count(), 0);

  Asm a;
  Asm::Label loop, serve, hit, next, done, rng_next;

  // ---- prologue: 6 pushes + sub 8 leaves rsp 16-aligned at call sites.
  a.push_r(kRbx);
  a.push_r(kRbp);
  a.push_r(kR12);
  a.push_r(kR13);
  a.push_r(kR14);
  a.push_r(kR15);
  a.sub_rsp8();
  a.mov_rr(kRbx, kRdi);  // frame
  a.mov_r_mem(kR12, kRbx, 0);
  a.mov_r_mem(kR13, kRbx, 8);
  a.mov_r_mem(kR14, kRbx, 16);
  a.mov_r_mem(kR15, kRbx, 24);
  a.xor32_rr(kRbp, kRbp);  // k = 0
  a.cmp_mem0(kRbx, 56);    // n_accesses == 0?
  a.je_label(done);

  // ---- per-access prelude: draw, alias sample, dispatch.
  a.bind(loop);
  a.call_label(rng_next);  // rax = draw (clobbers rdi)
  a.mov32_rr(kRcx, kRax);  // zero-extended low 32 bits
  a.imul_rri(kRcx, kRcx, static_cast<std::uint32_t>(n_cols));
  a.shr_ri(kRcx, 32);      // column
  a.mov_rr(kRdx, kRax);
  a.shr_ri(kRdx, 32);
  a.mov_ri64(kRdi, p.coin_mask);
  a.and_rr(kRdx, kRdi);    // coin
  a.mov_ri64(kRsi, reinterpret_cast<std::uint64_t>(p.threshold.data()));
  a.mov_r_sib(kRdi, kRsi, kRcx, 3);   // thr[col]
  a.mov_ri64(kRsi, reinterpret_cast<std::uint64_t>(p.alias.data()));
  a.mov32_r_sib(kR8, kRsi, kRcx, 2);  // alias[col], zero-extended
  a.cmp_rr(kRdx, kRdi);               // coin - thr
  a.cmovae_rr(kRcx, kR8);             // slot = coin < thr ? col : alias
  a.mov_ri64(kRsi, reinterpret_cast<std::uint64_t>(jump_table_.data()));
  a.jmp_sib(kRsi, kRcx);

  // Inline Lemire below(bound) with the rejection threshold precomputed;
  // result in rdx. rng_next preserves rcx/rsi, so the loop re-multiplies
  // without reloading the constants.
  const auto emit_below = [&](std::uint64_t bound) {
    Asm::Label ok, retry;
    a.call_label(rng_next);
    a.mov_ri64(kRcx, bound);
    a.mul_r(kRcx);           // rdx:rax = draw * bound
    a.cmp_rr(kRax, kRcx);
    a.jae_label(ok);
    a.mov_ri64(kRsi, (0 - bound) % bound);
    a.bind(retry);
    a.cmp_rr(kRax, kRsi);
    a.jae_label(ok);
    a.call_label(rng_next);
    a.mul_r(kRcx);
    a.jmp_label(retry);
    a.bind(ok);
  };
  // Call the AccessGenerator shim; returns the raw offset in rax, which is
  // then clamped to [0, size) exactly as the interpreter does.
  const auto emit_gen_offset = [&](apps::AccessGenerator* gen,
                                   std::uint64_t size) {
    a.mov_ri64(kRdi, reinterpret_cast<std::uint64_t>(gen));
    a.mov_ri64(kRax, reinterpret_cast<std::uint64_t>(&hmem_kernel_gen_next));
    a.call_r(kRax);
    a.mov_ri64(kRcx, size);
    a.xor32_rr(kRdx, kRdx);
    a.cmp_rr(kRax, kRcx);
    a.cmovae_rr(kRax, kRdx);
  };
  const auto emit_serve_const = [&](std::uint32_t tier, double latency) {
    a.mov_ri32(kR11, tier);
    a.mov_ri64(kRax, bits_of(latency));
    a.movq_x_r(1, kRax);  // xmm1 = miss latency
    a.jmp_label(serve);
  };

  // ---- per-slot blocks. Contract with .serve: r10 = addr, r11 = serving
  // tier, xmm1 = miss latency.
  for (std::size_t s = 0; s < p.slot_count(); ++s) {
    block_offset[s] = a.pos();
    const Insn* in = &p.code[p.block_start[s]];
    switch (in->op) {
      case Op::kStackAddr: {
        emit_below(in->imm1);
        a.shl_ri(kRdx, 6);  // * kCacheLineBytes
        a.mov_ri64(kR10, in->imm0);
        a.add_rr(kR10, kRdx);
        const Insn& sv = p.code[p.block_start[s] + 1];
        emit_serve_const(sv.a, sv.f);
        break;
      }
      case Op::kFixedAddr: {
        const Insn& gen = p.code[p.block_start[s] + 1];
        emit_gen_offset(p.gens[gen.a], gen.imm0);
        a.mov_ri64(kR10, in->imm0);
        a.add_rr(kR10, kRax);
        const Insn& sv = p.code[p.block_start[s] + 2];
        emit_serve_const(sv.a, sv.f);
        break;
      }
      case Op::kPickAddr: {
        emit_below(in->a);
        a.shl_ri(kRdx, 5);  // InstanceSlot stride
        a.mov_ri64(kRax,
                   reinterpret_cast<std::uint64_t>(p.instances.data() +
                                                   in->imm0));
        a.add_rr(kRax, kRdx);
        a.mov_mem_r(kRbx, 72, kRax);  // spill rec* across the C call
        const Insn& gen = p.code[p.block_start[s] + 1];
        emit_gen_offset(p.gens[gen.a], gen.imm0);
        a.mov_r_mem(kRsi, kRbx, 72);
        a.mov_r_mem(kR10, kRsi, 0);   // rec.base
        a.add_rr(kR10, kRax);
        a.mov_r_mem(kR11, kRsi, 16);  // rec.tier
        a.movsd_x_mem(1, kRsi, 8);    // rec.latency_ns
        a.jmp_label(serve);
        break;
      }
      default:
        return false;  // verify_program rejects these shapes already
    }
  }

  // ---- shared LLC probe: the exact Cache::access sequence with geometry
  // baked in and the hit scan unrolled.
  a.bind(serve);
  a.inc_mem(kRbx, 32);  // ++tick
  a.mov_rr(kRax, kR10);
  a.shr_ri(kRax, static_cast<int>(line_shift));  // tag
  a.mov_rr(kRcx, kRax);
  a.mov_ri64(kRdi, set_mask);
  a.and_rr(kRcx, kRdi);
  a.imul_rri(kRcx, kRcx, ways);
  a.mov_r_mem(kRsi, kRbx, 80);  // tags
  a.lea_sib(kRsi, kRsi, kRcx, 3);
  a.mov_r_mem(kRdx, kRbx, 88);  // lru
  a.lea_sib(kRdx, kRdx, kRcx, 3);
  for (std::uint32_t w = 0; w < ways; ++w) {
    a.cmp_mem_r(kRsi, static_cast<int>(w) * 8, kRax);
    const std::size_t skip = a.jne_short();
    a.lea_mem(kRcx, kRdx, static_cast<int>(w) * 8);  // &lru[way]
    a.jmp_label(hit);
    a.patch_short(skip);
  }
  // Miss: first-minimal-stamp victim via cmov (matches the interpreter's
  // branch-free argmin), then install and account.
  a.mov_r_mem(kRcx, kRdx, 0);  // best
  a.xor32_rr(kR8, kR8);        // victim
  for (std::uint32_t w = 1; w < ways; ++w) {
    a.mov_r_mem(kR9, kRdx, static_cast<int>(w) * 8);
    a.mov_ri32(kRdi, w);
    a.cmp_rr(kR9, kRcx);
    a.cmovb_rr(kRcx, kR9);
    a.cmovb_rr(kR8, kRdi);
  }
  a.mov_r_mem(kR9, kRbx, 32);       // tick
  a.mov_sib_r(kRsi, kR8, 3, kRax);  // tags[victim] = tag
  a.mov_sib_r(kRdx, kR8, 3, kR9);   // lru[victim] = tick
  a.movsd_x_mem(0, kRbx, 40);
  a.addsd(0, 1);                    // latency += miss latency
  a.movsd_mem_x(kRbx, 40, 0);
  a.mov_r_mem(kRcx, kRbx, 64);      // tier_sim
  a.add_sib_imm8(kRcx, kR11, 64);   // [tier] += kCacheLineBytes
  a.inc_mem(kRbx, 48);              // ++misses
  a.jmp_label(next);

  a.bind(hit);  // rcx = &lru[way]
  a.mov_r_mem(kR9, kRbx, 32);
  a.mov_mem_r(kRcx, 0, kR9);  // lru[way] = tick
  a.movsd_x_mem(0, kRbx, 40);
  a.mov_ri64(kRax, bits_of(p.llc_latency_ns));
  a.movq_x_r(1, kRax);
  a.addsd(0, 1);
  a.movsd_mem_x(kRbx, 40, 0);

  a.bind(next);
  a.inc_r(kRbp);
  a.cmp_r_mem(kRbp, kRbx, 56);
  a.jb_label(loop);

  a.bind(done);
  a.mov_mem_r(kRbx, 0, kR12);
  a.mov_mem_r(kRbx, 8, kR13);
  a.mov_mem_r(kRbx, 16, kR14);
  a.mov_mem_r(kRbx, 24, kR15);
  a.add_rsp8();
  a.pop_r(kR15);
  a.pop_r(kR14);
  a.pop_r(kR13);
  a.pop_r(kR12);
  a.pop_r(kRbp);
  a.pop_r(kRbx);
  a.ret();

  // ---- xoshiro256** step: draw in rax, state advanced in r12..r15.
  // Clobbers rax and rdi only — below()'s constants survive in rcx/rsi.
  a.bind(rng_next);
  a.lea_r13x5(kRax);   // s1 * 5
  a.rol_ri(kRax, 7);
  a.lea_sib(kRax, kRax, kRax, 3);  // * 9
  a.mov_rr(kRdi, kR13);
  a.shl_ri(kRdi, 17);  // t
  a.xor_rr(kR14, kR12);
  a.xor_rr(kR15, kR13);
  a.xor_rr(kR13, kR14);
  a.xor_rr(kR12, kR15);
  a.xor_rr(kR14, kRdi);
  a.rol_ri(kR15, 45);
  a.ret();

  // ---- map, resolve the dispatch table, seal W^X.
  void* base = alloc_.allocate(a.buf.size());
  if (base == nullptr) return false;
  std::memcpy(base, a.buf.data(), a.buf.size());
  for (std::size_t s = 0; s < block_offset.size(); ++s) {
    jump_table_[s] = reinterpret_cast<std::uint64_t>(base) + block_offset[s];
  }
  if (!alloc_.seal(base)) {
    alloc_.release(base);
    return false;
  }
  entry_ = base;
  return true;
}

void NativeKernel::run(Frame& frame) const {
  HMEM_ASSERT(entry_ != nullptr);
  reinterpret_cast<void (*)(Frame*)>(entry_)(&frame);
}

namespace {

/// One-time emit-and-execute check: a small synthetic program run through
/// both backends from identical state must agree on every output bit. A
/// failure (broken mmap policy, emitter regression on an exotic toolchain)
/// downgrades the process to the bytecode VM.
bool native_self_test() {
  Program p;
  p.threshold = {1, 2};  // col 0 diverts half its coins to col 1
  p.alias = {1, 0};
  p.coin_mask = 1;
  p.write_threshold = 0;
  p.write_shift = 63;
  p.block_start = {0, 2};
  Insn stack0;
  stack0.op = Op::kStackAddr;
  stack0.imm0 = 1ULL << 20;
  stack0.imm1 = 96;  // non-power-of-two: exercises the rejection path
  Insn serve0;
  serve0.op = Op::kServeFixed;
  serve0.a = 0;
  serve0.f = 130.0;
  Insn stack1;
  stack1.op = Op::kStackAddr;
  stack1.imm0 = 1ULL << 21;
  stack1.imm1 = 64;
  Insn serve1;
  serve1.op = Op::kServeFixed;
  serve1.a = 1;
  serve1.f = 155.0;
  p.code = {stack0, serve0, stack1, serve1};
  p.llc_latency_ns = 10.0;
  p.n_tiers = 2;
  if (!verify_program(p).empty()) return false;

  constexpr std::uint32_t kWays = 4;
  constexpr std::uint64_t kSets = 8;
  const auto run = [&](bool native, double* latency, std::uint64_t* misses,
                       std::uint64_t* tick, std::uint64_t rng_out[4],
                       std::vector<memsim::Address>* tags,
                       std::vector<std::uint64_t>* lru,
                       std::uint64_t tier_sim[2]) {
    tags->assign(kSets * kWays, memsim::Cache::kInvalidTag);
    lru->assign(kSets * kWays, 0);
    tier_sim[0] = tier_sim[1] = 0;
    Frame f;
    f.tags = tags->data();
    f.lru = lru->data();
    f.ways = kWays;
    f.line_shift = 6;
    f.set_mask = kSets - 1;
    f.n_accesses = 512;
    f.tier_sim = tier_sim;
    Xoshiro256 rng(0x5e1f7e57ULL);
    if (native) {
      NativeKernel kern;
      if (!kern.compile(p, kWays, 6, kSets - 1)) return false;
      rng.save_state(f.rng_state);
      kern.run(f);
      for (int i = 0; i < 4; ++i) rng_out[i] = f.rng_state[i];
    } else {
      run_bytecode(p, f, rng, nullptr);
      rng.save_state(rng_out);
    }
    *latency = f.latency_ns;
    *misses = f.misses;
    *tick = f.tick;
    return true;
  };

  double lat_b = 0, lat_n = 0;
  std::uint64_t miss_b = 0, miss_n = 0, tick_b = 0, tick_n = 0;
  std::uint64_t rng_b[4], rng_n[4], sim_b[2], sim_n[2];
  std::vector<memsim::Address> tags_b, tags_n;
  std::vector<std::uint64_t> lru_b, lru_n;
  if (!run(false, &lat_b, &miss_b, &tick_b, rng_b, &tags_b, &lru_b, sim_b)) {
    return false;
  }
  if (!run(true, &lat_n, &miss_n, &tick_n, rng_n, &tags_n, &lru_n, sim_n)) {
    return false;
  }
  return bits_of(lat_b) == bits_of(lat_n) && miss_b == miss_n &&
         tick_b == tick_n && std::memcmp(rng_b, rng_n, sizeof(rng_b)) == 0 &&
         tags_b == tags_n && lru_b == lru_n && sim_b[0] == sim_n[0] &&
         sim_b[1] == sim_n[1];
}

}  // namespace

bool native_available() {
  static const bool ok =
      ExecutableAllocator::supported() && native_self_test();
  return ok;
}

#endif  // HMEM_NATIVE_X64

}  // namespace hmem::engine::kernel
