// Bytecode IR for the compiled access kernel.
//
// The execution engine's inner loop (engine/execution.cpp, run_app) decides
// per access: which object the access targets (alias-table sample), which
// address it touches (instance pick + per-object offset generator), whether
// the LLC holds the line, and which tier serves a miss at what latency. The
// interpreter answers the last two by indirecting through Machine — a range
// scan over tier specs — and the first through PerPhase tables rebuilt on
// demand.
//
// This IR flattens one phase of one app on one machine into a verified,
// straight-line instruction stream with every constant baked in:
//   * the alias table's per-column thresholds/aliases and the write coin,
//   * each live instance's base address, owning tier and miss latency
//     (instances never straddle tiers — allocations are tier-contiguous —
//     so the flat-mode range scan disappears entirely),
//   * the LLC's set/tag shift+mask geometry (memsim/cache.hpp Tables).
// A program is valid for one (live-set epoch, address epoch) pair: the
// engine recompiles exactly when an object transitions live<->dead or a
// dynamic-schedule migration moves an instance, and never in between.
//
// Per access the executor runs: one structured 64-bit draw (layout shared
// with the interpreter — see kAliasCoinBits in execution.cpp), an alias
// sample selecting a slot, then that slot's block:
//   (kStackAddr | kFixedAddr kAddGenOffset | kPickAddr kAddGenOffset)
//   (kServeFixed | kServePicked)
// The serve op probes the LLC in place and accounts the miss. Two backends
// execute the same program: the portable bytecode VM here and the optional
// x86-64 native emitter (native.hpp). The interpreter remains the oracle:
// all backends are bit-identical on every RunResult field.
//
// verify() checks every structural invariant before a program may run, and
// is the contract the fuzz harness drives: a defect-injected stream must be
// rejected with a message, never executed into UB.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <string>
#include <vector>

#include "apps/generator.hpp"
#include "common/alias.hpp"
#include "common/prng.hpp"
#include "memsim/address.hpp"

namespace hmem::memsim {
class Machine;
}

namespace hmem::engine::kernel {

enum class Op : std::uint8_t {
  kStackAddr,     ///< addr = imm0 + below(imm1) * line;  a unused
  kFixedAddr,     ///< addr = imm0 (single-instance object base)
  kPickAddr,      ///< rec = instances[imm0 + below(a)]; addr = rec.base
  kAddGenOffset,  ///< off = gens[a]->next_offset(); off >= imm0 -> 0; addr += off
  kServeFixed,    ///< LLC probe; miss served by tier a at latency f
  kServePicked,   ///< LLC probe; miss served by rec.tier at rec.latency_ns
};

const char* op_name(Op op);

struct Insn {
  Op op = Op::kServeFixed;
  std::uint32_t a = 0;     ///< count / generator index / tier
  std::uint64_t imm0 = 0;  ///< base address / clamp size / first instance
  std::uint64_t imm1 = 0;  ///< stack lines
  double f = 0.0;          ///< baked miss latency (kServeFixed)
};

/// One live instance in the kPickAddr operand pool. 32-byte stride so the
/// native backend indexes it with a shift instead of a multiply.
struct InstanceSlot {
  std::uint64_t base = 0;
  double latency_ns = 0.0;
  std::uint64_t tier = 0;
  std::uint64_t pad = 0;
};
static_assert(sizeof(InstanceSlot) == 32, "native backend bakes the stride");

struct Program {
  // Alias sampling, flattened from the phase's AliasTable.
  std::vector<std::uint64_t> threshold;  ///< accept-own-column, per column
  std::vector<std::uint32_t> alias;      ///< divert target, per column
  std::uint64_t coin_mask = 0;           ///< (1 << coin_bits) - 1
  std::uint64_t write_threshold = 0;     ///< write coin, 2^-kWriteCoinBits units
  std::uint64_t write_shift = 63;        ///< draw bits [write_shift, 64) = coin

  std::vector<std::uint32_t> block_start;  ///< slot -> first insn in code
  std::vector<Insn> code;                  ///< flat instruction stream
  std::vector<InstanceSlot> instances;     ///< kPickAddr pool
  std::vector<apps::AccessGenerator*> gens;

  // Machine constants.
  double llc_latency_ns = 0.0;
  std::uint32_t n_tiers = 0;

  // Validity stamps maintained by the engine (compile leaves them unset).
  std::uint64_t live_epoch = ~0ULL;
  std::uint64_t addr_epoch = ~0ULL;

  std::size_t slot_count() const { return block_start.size(); }
};

/// What one slot of the phase's alias table targets. The compiler turns
/// each into one instruction block.
struct SlotTarget {
  bool is_stack = false;
  // Stack targets.
  std::uint64_t stack_base = 0;
  std::uint64_t stack_lines = 0;
  // Object targets.
  const std::vector<memsim::Address>* instances = nullptr;
  apps::AccessGenerator* gen = nullptr;
  std::uint64_t size_bytes = 0;
};

/// Compiles one phase: bakes the alias table, the targets' addresses and
/// their owning tiers/latencies (resolved through `machine`), and the write
/// coin. Asserts the result verifies — a compile that emits an invalid
/// stream is a bug, not an input error.
Program compile_program(const AliasTable& alias, std::uint64_t write_threshold,
                        std::uint64_t write_shift,
                        const std::vector<SlotTarget>& targets,
                        const memsim::Machine& machine);

/// Structural verifier. Returns an empty string when the program is safe to
/// execute against a frame with `n_tiers` accumulators, or a description of
/// the first defect. Every index an instruction can carry is range-checked
/// here so the executors can run without per-access bounds checks.
std::string verify_program(const Program& program);

/// Mutable per-burst state shared by both backends. The engine fills it
/// from the live run (cache tables, tier accumulators, RNG state), executes
/// one phase burst, and reads the accumulated results back. Field layout is
/// part of the native backend's ABI — it addresses the frame by offset.
struct Frame {
  std::uint64_t rng_state[4] = {0, 0, 0, 0};  ///< xoshiro256** state in/out
  std::uint64_t tick = 0;           ///< LLC LRU tick in/out
  double latency_ns = 0.0;          ///< out: summed in access order
  std::uint64_t misses = 0;         ///< out: LLC misses this burst
  std::uint64_t n_accesses = 0;     ///< in: burst length
  std::uint64_t* tier_sim = nullptr;  ///< [n_tiers] simulated bytes served
  std::uint64_t scratch = 0;        ///< native spill slot
  // LLC geometry + way state (memsim::Cache::Tables, flattened).
  memsim::Address* tags = nullptr;
  std::uint64_t* lru = nullptr;
  std::uint64_t ways = 0;
  std::uint64_t line_shift = 0;
  std::uint64_t set_mask = 0;
};

/// LLC-miss record emitted for profiled runs, in access order. Mirrors the
/// interpreter's records exactly (same order index, address, write coin).
struct MissRecord {
  std::uint64_t order = 0;  ///< access index within the phase burst
  memsim::Address addr = 0;
  bool is_write = false;
};

/// Executes one phase burst through the bytecode VM. The program must have
/// passed verify_program. `rng` is consumed exactly as the interpreter
/// would (frame.rng_state is ignored by this backend). When `misses` is
/// non-null every LLC miss is recorded (profiled runs). The record vector
/// is pmr so profiled sweep cells can collect into a per-cell arena; a
/// default-constructed pmr::vector behaves exactly like std::vector.
void run_bytecode(const Program& program, Frame& frame, Xoshiro256& rng,
                  std::pmr::vector<MissRecord>* misses);

}  // namespace hmem::engine::kernel
