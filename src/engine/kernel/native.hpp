// Optional x86-64 native backend for the access kernel.
//
// Emits the same program the bytecode VM executes (engine/kernel/ir.hpp)
// as a straight-line System V x86-64 function: the xoshiro256** generator
// lives in callee-saved registers for the whole burst, the alias table and
// every per-slot constant (addresses, tiers, miss latencies, Lemire
// rejection thresholds) are baked as immediates, the LLC probe is an
// unrolled tag scan against geometry baked at compile time, and per-object
// offset generators are reached through one extern "C" shim (their streams
// are independent, so a C call is bit-identity-safe). Code is placed in W^X
// pages through common/exec_alloc.hpp: mapped writable, sealed read-execute
// before the first call.
//
// The backend is compiled in only on x86-64 POSIX builds with the
// HMEM_NATIVE_KERNEL CMake option on; everywhere else native_available()
// returns false and compile() fails, which the kernel resolver turns into
// a silent fallback to the bytecode VM. Availability includes a one-time
// emit-and-execute self-test differenced against run_bytecode, so a
// mis-assembling toolchain or a hardened-kernel mmap policy degrades to
// the portable path instead of corrupting results.
#pragma once

#include <cstdint>
#include <vector>

#include "common/exec_alloc.hpp"
#include "engine/kernel/ir.hpp"

namespace hmem::engine::kernel {

/// True when the native backend can be used at all: compiled in, executable
/// pages available, and the one-time self-test against the bytecode VM
/// passed. Evaluated once per process.
bool native_available();

class NativeKernel {
 public:
  NativeKernel() = default;
  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;

  /// Emits machine code for `program` against the given LLC geometry (the
  /// constants from memsim::Cache::tables()). The program must have passed
  /// verify_program and must stay alive and unmodified for the lifetime of
  /// the emitted code — its table buffers are baked in by address. Returns
  /// false (kernel left empty) when the backend is unavailable or a
  /// constant does not fit the emitted encoding; the caller falls back to
  /// the bytecode VM.
  bool compile(const Program& program, std::uint32_t ways,
               std::uint32_t line_shift, std::uint64_t set_mask);

  bool ok() const { return entry_ != nullptr; }

  /// Executes one burst. frame.rng_state carries the xoshiro256** state in
  /// and out; tick / latency_ns / misses / tier_sim accumulate exactly as
  /// run_bytecode would. Only unprofiled bursts: the resolver never routes
  /// a profiled run here (miss records stay a bytecode/interpreter job).
  void run(Frame& frame) const;

 private:
  ExecutableAllocator alloc_;
  void* entry_ = nullptr;
  /// Per-slot entry addresses, indexed by the alias sample; the dispatch
  /// `jmp [table + slot*8]` bakes this vector's address.
  std::vector<std::uint64_t> jump_table_;
};

}  // namespace hmem::engine::kernel
