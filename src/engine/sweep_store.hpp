// Append-only checksummed result store for resumable sweeps.
//
// A Figure-4 sweep is a grid of independent cells, each minutes of
// simulation; a crash near the end used to mean starting over. The store
// persists one record per completed cell:
//
//   <crc32-hex8> <escaped-key> <escaped-value>\n
//
// where the CRC covers the unescaped "key\tvalue" pair and the escaping
// (\\ \n \t and space as \s) keeps records one-line and splittable on the
// two separator spaces. Appends are durable (single write + fsync) before
// put() returns, so every record in the file represents a cell whose
// result really was computed.
//
// Loading tolerates a torn tail — the half-written record of the crash —
// by verifying each line's checksum and truncating the file back to the
// last valid record (on the first subsequent put). A --resume run then
// recomputes only the cells past the tear.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace hmem::engine {

class SweepStore {
 public:
  /// Opens (or prepares to create) the store and loads every intact
  /// record. A missing file is an empty store, not an error; an unreadable
  /// one throws IoError.
  explicit SweepStore(std::string path);
  ~SweepStore();

  SweepStore(const SweepStore&) = delete;
  SweepStore& operator=(const SweepStore&) = delete;

  /// The stored value for a key, if a valid record exists (last one wins).
  std::optional<std::string> find(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Durably appends a record: when this returns, the record has been
  /// written and fsynced. Throws IoError on failure (including an injected
  /// io_write fault), in which case the store's in-memory view is
  /// unchanged. Thread-safe.
  void put(const std::string& key, const std::string& value);

  /// Every valid record, sorted by key (the sweep merge rewrites shard
  /// stores in this order). Thread-safe copy.
  std::map<std::string, std::string> snapshot() const;

  std::size_t size() const;
  /// Records discarded at load time because their checksum or framing was
  /// damaged (the torn tail of a crashed run).
  std::size_t dropped_records() const { return dropped_; }
  const std::string& path() const { return path_; }

 private:
  void open_for_append_locked();

  std::string path_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> records_;
  std::size_t dropped_ = 0;
  /// Byte length of the verified prefix; the file is truncated back to
  /// this before the first append.
  long long valid_bytes_ = 0;
  int fd_ = -1;
};

}  // namespace hmem::engine
