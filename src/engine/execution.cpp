#include "engine/execution.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <memory_resource>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/allocators.hpp"
#include "apps/generator.hpp"
#include "callstack/modulemap.hpp"
#include "callstack/unwind.hpp"
#include "common/alias.hpp"
#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "engine/kernel/ir.hpp"
#include "engine/kernel/native.hpp"
#include "profiler/profiler.hpp"
#include "runtime/policy.hpp"

namespace hmem::engine {

namespace {

using apps::AppSpec;
using apps::ObjectSpec;
using memsim::Address;

std::uint64_t floor_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

/// Per-object live state during a run.
struct ObjectState {
  std::vector<Address> instances;  ///< live instance base addresses
  /// Policy tier currently hosting each instance (parallel to instances);
  /// only maintained — and only needed — under the dynamic condition.
  std::vector<std::size_t> tiers;
  std::unique_ptr<apps::AccessGenerator> generator;
};

// LLC-miss records share the kernel layer's type so a compiled-kernel burst
// can append to the same buffer the interpreter fills.
using MissRecord = kernel::MissRecord;

/// Compiled form of one phase plus the epochs it was compiled against. The
/// program bakes live-instance addresses, so it is stale the moment the
/// live set changes (live_epoch) OR a dynamic-schedule migration moves an
/// instance without any alloc/free (addr_epoch — the case live_epoch alone
/// cannot see).
struct PhaseKernel {
  kernel::Program program;
  kernel::NativeKernel native;
  bool use_native = false;
  std::uint64_t live_epoch = ~0ULL;
  std::uint64_t addr_epoch = ~0ULL;
};

// ---- Per-access randomness ------------------------------------------------
// Every access consumes exactly ONE 64-bit generator draw, split into three
// documented fields (the alias method leaves the high bits free; see
// common/alias.hpp):
//   bits [0,32)  target column   (multiply-shift over the phase's slots)
//   bits [32,53) alias coin      (21-bit fixed point vs the slot threshold)
//   bits [53,64) write/read coin (11-bit fixed point vs write_fraction)
// Address-level draws (instance pick, stack line) still draw separately when
// needed, and per-object offset generators keep their own streams. The
// quantization this packing introduces — 2^-21 on the target distribution,
// 2^-11 on the write fraction — is orders of magnitude below the sampling
// noise of the simulated stream, and the stream stays deterministic: the
// draw sequence is a pure function of the seed.
constexpr int kAliasCoinBits = 21;
constexpr int kWriteCoinBits = 11;
constexpr int kWriteCoinShift = 64 - kWriteCoinBits;

/// Access-target sampling table for one phase, cached across iterations.
/// Valid for a given live-set epoch: it only depends on which objects are
/// live (weights are static per phase), so it is rebuilt exactly when an
/// object transitions between live and dead — not once per iteration.
struct PhaseTable {
  std::vector<std::size_t> target;  ///< slot -> object index; SIZE_MAX = stack
  AliasTable alias;                 ///< O(1) sampler over the slots
  std::uint64_t write_threshold = 0;  ///< write_fraction in 2^11 units
  std::uint64_t epoch = ~0ULL;        ///< live-set epoch at build time
};

void rebuild_phase_table(PhaseTable& table, const apps::PhaseSpec& phase,
                         const std::vector<ObjectState>& state,
                         std::uint64_t live_epoch) {
  table.target.clear();
  std::vector<double> weights;
  for (std::size_t i = 0; i < phase.object_weights.size(); ++i) {
    const double w = phase.object_weights[i];
    if (w <= 0 || state[i].instances.empty()) continue;
    weights.push_back(w);
    table.target.push_back(i);
  }
  if (phase.stack_weight > 0) {
    weights.push_back(phase.stack_weight);
    table.target.push_back(SIZE_MAX);
  }
  HMEM_ASSERT_MSG(!weights.empty(), "phase with no live access targets");
  table.alias = AliasTable(weights, kAliasCoinBits);
  table.write_threshold = std::min<std::uint64_t>(
      1ULL << kWriteCoinBits,
      static_cast<std::uint64_t>(std::llround(
          phase.write_fraction * static_cast<double>(1ULL << kWriteCoinBits))));
  table.epoch = live_epoch;
}

/// Analytic MCDRAM-as-cache model. Residency is built up by miss traffic
/// (the steady state of an LRU-like replacement at memory-side granularity);
/// the hit probability of a target is its resident fraction, derated by a
/// direct-mapped conflict factor once demand exceeds capacity. Operating on
/// *real* footprints keeps the capacity behaviour faithful even though the
/// simulated stream is a scaled-down sample.
class CacheModeModel {
 public:
  CacheModeModel(double capacity_bytes, std::vector<double> footprints,
                 double chunk_bytes, double conflict_k)
      : capacity_(capacity_bytes),
        footprints_(std::move(footprints)),
        resident_(footprints_.size(), 0.0),
        chunk_(chunk_bytes) {
    double demand = 0;
    for (double f : footprints_) demand += f;
    const double pressure =
        std::max(0.0, demand / std::max(1.0, capacity_) - 1.0);
    conflict_factor_ = 1.0 / (1.0 + conflict_k * pressure);
  }

  double hit_probability(std::size_t target) const {
    const double f = footprints_[target];
    if (f <= 0) return 0;
    double p = std::min(1.0, resident_[target] / f);
    if (total_ >= capacity_ * 0.999) p *= conflict_factor_;
    return p;
  }

  void on_miss(std::size_t target) {
    const double gain =
        std::min(chunk_, footprints_[target] - resident_[target]);
    if (gain <= 0) return;
    resident_[target] += gain;
    total_ += gain;
    if (total_ > capacity_) {
      const double shrink = capacity_ / total_;
      for (double& r : resident_) r *= shrink;
      total_ = capacity_;
    }
  }

  double resident_bytes(std::size_t target) const {
    return resident_[target];
  }

 private:
  double capacity_;
  std::vector<double> footprints_;
  std::vector<double> resident_;
  double total_ = 0;
  double chunk_;
  double conflict_factor_;
};

}  // namespace

const char* condition_name(Condition condition) {
  switch (condition) {
    case Condition::kDdr:
      return "ddr";
    case Condition::kNumactl:
      return "numactl";
    case Condition::kAutoHbw:
      return "autohbw";
    case Condition::kCacheMode:
      return "cache";
    case Condition::kFramework:
      return "framework";
    case Condition::kDynamic:
      return "dynamic";
  }
  return "?";
}

RunResult run_app(const AppSpec& app, const RunOptions& options) {
  const std::string problem = apps::validate(app);
  HMEM_ASSERT_MSG(problem.empty(), problem.c_str());

  const int ranks = app.ranks;
  const bool cache_mode = options.condition == Condition::kCacheMode;

  // ---- Per-rank machine view -------------------------------------------
  // The Machine always runs flat here: the engine models cache mode with an
  // analytic residency model (below) because the sampled access stream's
  // touched footprint is a scaled-down image of the real working set — a
  // literal tag simulation at line granularity would see a working set
  // `access_scale` times too small and overestimate the hit rate. The
  // DirectMappedMemCache component remains available for line-level studies.
  memsim::MachineConfig cfg = options.node;
  HMEM_ASSERT_MSG(!cfg.tiers.empty(), "node config has no memory tiers");
  cfg.mode = memsim::MemMode::kFlat;
  cfg.llc.size_bytes = std::max<std::uint64_t>(
      16ULL * 1024, floor_pow2(cfg.llc.size_bytes / ranks));
  for (memsim::TierSpec& tier : cfg.tiers) {
    tier.capacity_bytes /= static_cast<std::uint64_t>(ranks);
  }
  // Hand-built configs may come in with unassigned (zero) bases; lay the
  // tiers out *here* so the allocators below and the Machine (which would
  // otherwise assign bases only on its private copy) agree on the map.
  memsim::assign_tier_bases(cfg.tiers);
  memsim::Machine machine(cfg);

  const std::size_t n_tiers = cfg.tiers.size();
  // Machine-tier indices in descending performance: perf[0] is the fastest
  // tier, perf.back() the slowest (the unbounded default).
  const std::vector<memsim::TierIndex> perf = cfg.tiers_by_performance();
  const memsim::TierIndex slowest = perf.back();
  const memsim::TierIndex cache_front = cfg.resolved_cache_front();
  const memsim::TierIndex cache_backing = cfg.resolved_cache_backing();

  // Scratch resource for run-local state (allocator bookkeeping, miss
  // records, per-phase accumulators). Everything allocated from it is a
  // local of this function, so a sweep worker may reset its arena the
  // moment run_app returns.
  std::pmr::memory_resource* const scratch =
      options.scratch != nullptr ? options.scratch
                                 : std::pmr::get_default_resource();

  // ---- Allocators, modules, policy -------------------------------------
  // One allocator per tier: the slowest (or, in cache mode, the backing)
  // tier gets the glibc-malloc stand-in; every faster tier a memkind-style
  // one. Cache mode addresses only the backing tier.
  std::vector<std::unique_ptr<alloc::Allocator>> tier_allocs(n_tiers);
  auto make_alloc = [&](memsim::TierIndex t) {
    const memsim::TierSpec& tier = cfg.tiers[t];
    if (t == slowest || (cache_mode && t == cache_backing)) {
      tier_allocs[t] = std::make_unique<alloc::PosixAllocator>(
          tier.base, tier.capacity_bytes, scratch);
    } else {
      tier_allocs[t] = std::make_unique<alloc::MemkindAllocator>(
          tier.base, tier.capacity_bytes, scratch);
    }
  };
  if (cache_mode) {
    make_alloc(cache_backing);
  } else {
    for (memsim::TierIndex t = 0; t < n_tiers; ++t) make_alloc(t);
  }
  // Policy view: allocators fastest first, default last.
  std::vector<alloc::Allocator*> policy_tiers;
  if (cache_mode) {
    policy_tiers.push_back(tier_allocs[cache_backing].get());
  } else {
    for (const memsim::TierIndex t : perf) {
      policy_tiers.push_back(tier_allocs[t].get());
    }
  }

  callstack::ModuleMap modules;
  modules.add_module(app.name + ".x", 0x400000, 1ULL << 20);
  modules.randomize_slides(options.seed * 0x9e3779b97f4a7c15ULL + 1);
  callstack::Unwinder unwinder(modules);
  callstack::Translator translator(modules);

  std::unique_ptr<runtime::PlacementPolicy> policy;
  runtime::AutoHbwMalloc* framework = nullptr;
  switch (options.condition) {
    case Condition::kDdr:
    case Condition::kCacheMode:
      policy = std::make_unique<runtime::DdrPolicy>(*policy_tiers.back());
      break;
    case Condition::kNumactl:
      HMEM_ASSERT(policy_tiers.size() >= 2);
      policy = std::make_unique<runtime::NumactlPolicy>(policy_tiers);
      break;
    case Condition::kAutoHbw:
      HMEM_ASSERT(policy_tiers.size() >= 2);
      policy = std::make_unique<runtime::AutoHbwLibPolicy>(
          policy_tiers, options.autohbw_threshold);
      break;
    case Condition::kFramework: {
      HMEM_ASSERT_MSG(options.placement != nullptr,
                      "framework condition requires a Placement");
      HMEM_ASSERT(policy_tiers.size() >= 2);
      auto fw = std::make_unique<runtime::AutoHbwMalloc>(
          *options.placement, policy_tiers, unwinder, translator,
          options.runtime_options);
      framework = fw.get();
      policy = std::move(fw);
      break;
    }
    case Condition::kDynamic: {
      HMEM_ASSERT_MSG(
          options.schedule != nullptr && !options.schedule->phases.empty(),
          "dynamic condition requires a PlacementSchedule");
      HMEM_ASSERT(policy_tiers.size() >= 2);
      auto fw = std::make_unique<runtime::AutoHbwMalloc>(
          options.schedule->phases.front().placement, policy_tiers, unwinder,
          translator, options.runtime_options);
      framework = fw.get();
      policy = std::move(fw);
      break;
    }
  }

  // ---- Profiler & site database -----------------------------------------
  // An external SiteDb (streamed-shard runs, shared multi-rank databases)
  // is aliased without ownership; otherwise the run owns a fresh one.
  auto sites = options.sites != nullptr
                   ? std::shared_ptr<callstack::SiteDb>(
                         options.sites, [](callstack::SiteDb*) {})
                   : std::make_shared<callstack::SiteDb>();
  std::optional<profiler::Profiler> prof;
  if (options.profile) {
    profiler::ProfilerConfig pcfg;
    pcfg.min_alloc_bytes = options.min_alloc_bytes;
    pcfg.sampler = options.sampler;
    pcfg.sampler.seed ^= options.seed;
    prof.emplace(pcfg, options.trace_sink);
  }

  const std::size_t n_objects = app.objects.size();
  std::vector<callstack::SiteId> site_ids(n_objects);
  std::vector<callstack::SymbolicCallStack> stacks(n_objects);
  for (std::size_t i = 0; i < n_objects; ++i) {
    const ObjectSpec& obj = app.objects[i];
    if (obj.is_static) {
      callstack::SymbolicCallStack st;
      st.frames.push_back(callstack::CodeLocation{
          app.name + ".x", "static_" + obj.name,
          static_cast<std::uint32_t>(1000 + i)});
      stacks[i] = st;
      site_ids[i] = sites->intern(obj.name, st, /*is_dynamic=*/false);
    } else {
      stacks[i] = app.alloc_stack(i);
      site_ids[i] = sites->intern(obj.name, stacks[i], /*is_dynamic=*/true);
    }
  }

  std::vector<ObjectState> state(n_objects);
  for (std::size_t i = 0; i < n_objects; ++i) {
    state[i].generator = std::make_unique<apps::AccessGenerator>(
        app.objects[i], options.seed ^ (0x51ed2700ULL + i * 0x9e3779b9ULL));
  }

  Xoshiro256 rng(options.seed ^ 0xace5500dULL);

  double now_ns = 0;
  double interpose_ns = 0;
  std::uint64_t alloc_calls = 0;

  // Live-set epoch: bumped whenever any object transitions between live and
  // dead. The per-phase sampling tables are valid for one epoch — steady
  // iterations (no churn, no transients) never rebuild them.
  std::uint64_t live_epoch = 0;
  // Address epoch: bumped when a migration moves a live instance without
  // touching the live set (dynamic-condition phase transitions). Compiled
  // kernels bake instance addresses, so they key on BOTH epochs.
  std::uint64_t addr_epoch = 0;

  auto do_alloc = [&](std::size_t i) {
    const ObjectSpec& obj = app.objects[i];
    if (state[i].instances.empty()) ++live_epoch;
    for (int inst = 0; inst < obj.instances; ++inst) {
      runtime::AllocOutcome out =
          obj.is_static ? policy->allocate_static(obj.size_bytes)
                        : policy->allocate(obj.size_bytes, stacks[i]);
      HMEM_ASSERT_MSG(out.addr != 0, "simulated out of memory");
      state[i].instances.push_back(out.addr);
      state[i].tiers.push_back(out.tier);
      now_ns += out.cost_ns;
      interpose_ns += out.cost_ns;
      if (!obj.is_static) ++alloc_calls;
      if (prof) prof->on_alloc(now_ns, site_ids[i], out.addr, obj.size_bytes);
    }
  };
  auto do_free = [&](std::size_t i) {
    if (!state[i].instances.empty()) ++live_epoch;
    for (Address addr : state[i].instances) {
      if (prof) prof->on_free(now_ns, addr);
      const double cost = policy->deallocate(addr);
      now_ns += cost;
      interpose_ns += cost;
    }
    state[i].instances.clear();
    state[i].tiers.clear();
  };

  // ---- Process image: stack first, then statics, then persistent heap.
  // The stack is *not* registered with the profiler: references to automatic
  // variables stay unattributed, exactly as in the paper.
  const runtime::AllocOutcome stack_region =
      policy->allocate_static(app.stack_bytes);
  HMEM_ASSERT(stack_region.addr != 0);
  now_ns += stack_region.cost_ns;

  for (std::size_t i = 0; i < n_objects; ++i) {
    if (app.objects[i].is_static) do_alloc(i);
  }
  for (std::size_t i = 0; i < n_objects; ++i) {
    const ObjectSpec& obj = app.objects[i];
    if (!obj.is_static && !obj.churn && obj.transient_phase < 0) do_alloc(i);
  }

  // ---- Derived rates -----------------------------------------------------
  const double eff_cores =
      std::min(static_cast<double>(app.threads_per_rank),
               static_cast<double>(options.node.cores) / ranks);
  const double freq_hz = cfg.freq_ghz * 1e9;
  const double instr_rate = eff_cores * cfg.ipc * freq_hz;  // instr/s
  auto rank_bw_gbs = [&](const memsim::TierSpec& tier) {
    return std::min(static_cast<double>(app.threads_per_rank) *
                        tier.per_core_bw_gbs,
                    tier.peak_bw_gbs / ranks);
  };
  // Per-rank achievable bandwidth of every tier; cache mode derates the
  // front tier (tag/fill/writeback traffic rides on the memory side).
  std::vector<double> tier_bw(n_tiers);
  for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
    tier_bw[t] = rank_bw_gbs(options.node.tiers[t]) *
                 (cache_mode && t == cache_front
                      ? options.node.cache_mode_bw_derate
                      : 1.0);
  }
  const double scale = app.access_scale;

  std::unique_ptr<CacheModeModel> mc_model;
  if (cache_mode) {
    std::vector<double> footprints(n_objects + 1, 0.0);
    for (std::size_t i = 0; i < n_objects; ++i) {
      footprints[i] = static_cast<double>(app.objects[i].total_bytes());
    }
    footprints[n_objects] = static_cast<double>(app.stack_bytes);
    mc_model = std::make_unique<CacheModeModel>(
        static_cast<double>(cfg.tiers[cache_front].capacity_bytes),
        std::move(footprints),
        static_cast<double>(memsim::kCacheLineBytes) * scale,
        options.node.cache_mode_conflict_k);
  }

  // ---- Phase-aware schedule (dynamic condition) --------------------------
  // With more than one schedule phase, every phase boundary swaps the
  // runtime's placement and migrates live objects whose tier assignment
  // changed. Migration is charged through the memory model: each moved
  // region costs its live size as a source-tier read plus a destination-tier
  // write at the per-rank roofline bandwidths, serialized at the boundary
  // (a real migration stalls the ranks the same way). A single-phase
  // schedule never transitions, making the run bit-identical to kFramework
  // on the same placement.
  const advisor::PlacementSchedule* schedule = options.schedule;
  const bool has_hook = static_cast<bool>(options.advisor_hook);
  // A hook keeps the dynamic machinery armed even on a single-phase
  // schedule: the advisor may still grow the schedule mid-run.
  const bool dynamic_on =
      options.condition == Condition::kDynamic &&
      (has_hook || schedule->phases.size() > 1);
  const std::size_t slow_policy_tier = policy_tiers.size() - 1;
  std::vector<std::size_t> sched_of_phase;          // app phase -> schedule
  std::vector<std::vector<std::size_t>> desired_tier;  // [sched][object]
  std::pmr::vector<std::uint64_t> migration_real(n_tiers, 0,
                                                 scratch);  // real bytes/tier
  std::pmr::vector<std::uint64_t> mig_scratch(n_tiers, 0, scratch);
  std::uint64_t migration_bytes_total = 0;
  std::uint64_t migration_moves = 0;
  double migration_cost_ns = 0;
  // The placement currently applied to the runtime. Identity (not index)
  // so a hook swapping in a refreshed schedule mid-run forces the next
  // transition to re-apply; nullptr marks exactly that state. Compared,
  // never dereferenced — and reset whenever the schedule is re-adopted, so
  // it never outlives the storage it points into.
  const advisor::Placement* applied =
      dynamic_on ? &schedule->phases.front().placement : nullptr;
  // Content version of the adopted schedule. A hook may mutate one schedule
  // object in place (IncrementalAdvisor::refresh does) and return the same
  // pointer, so pointer inequality alone cannot detect a refresh.
  std::uint64_t adopted_generation = dynamic_on ? schedule->generation : 0;
  // Per schedule phase, the policy tier every object belongs in — matched
  // by allocation call-stack, the same identity auto-hbwmalloc uses.
  // Rebuilt whenever the hook swaps or refreshes the schedule.
  auto build_desired = [&](const advisor::PlacementSchedule& sched) {
    const std::size_t promotable =
        std::min(sched.phases.front().placement.tiers.size() - 1,
                 slow_policy_tier);
    desired_tier.assign(
        sched.phases.size(),
        std::vector<std::size_t>(n_objects, slow_policy_tier));
    for (std::size_t sp = 0; sp < sched.phases.size(); ++sp) {
      const advisor::Placement& pl = sched.phases[sp].placement;
      std::unordered_map<callstack::SymbolicCallStack, std::size_t> tier_of;
      for (std::size_t t = 0; t + 1 < pl.tiers.size(); ++t) {
        for (const auto& obj : pl.tiers[t].objects) {
          tier_of.emplace(obj.stack, t);
        }
      }
      for (std::size_t i = 0; i < n_objects; ++i) {
        if (app.objects[i].is_static) continue;
        const auto it = tier_of.find(stacks[i]);
        if (it != tier_of.end() && it->second < promotable) {
          desired_tier[sp][i] = it->second;
        }
      }
    }
  };
  if (dynamic_on) {
    if (!has_hook) {
      // Static schedule: resolve every app phase upfront and insist on
      // full coverage. With a hook, coverage is allowed to grow mid-run
      // and phases are resolved by name at each boundary instead.
      sched_of_phase.resize(app.phases.size());
      for (std::size_t p = 0; p < app.phases.size(); ++p) {
        std::size_t found = schedule->phases.size();
        for (std::size_t sp = 0; sp < schedule->phases.size(); ++sp) {
          if (schedule->phases[sp].phase == app.phases[p].name) {
            found = sp;
            break;
          }
        }
        HMEM_ASSERT_MSG(found < schedule->phases.size(),
                        "schedule is missing a placement for an app phase");
        sched_of_phase[p] = found;
      }
    }
    build_desired(*schedule);
  }
  auto schedule_transition = [&](std::size_t sp) {
    // Fail fast if the adopted schedule changed shape without the engine
    // noticing (a hook mutating in place without bumping `generation`):
    // desired_tier is rebuilt on every adoption, so a mismatch here means
    // the contract was violated and indexing would read out of bounds.
    HMEM_ASSERT_MSG(
        desired_tier.size() == schedule->phases.size() &&
            sp < desired_tier.size(),
        "schedule mutated in place without a generation bump (see "
        "RunOptions::advisor_hook contract)");
    if (&schedule->phases[sp].placement == applied) return;
    applied = &schedule->phases[sp].placement;
    framework->set_placement(schedule->phases[sp].placement);
    std::fill(mig_scratch.begin(), mig_scratch.end(), 0);
    double alloc_ns = 0;
    // Demotions first so the fast tiers drain before they refill; the
    // policy cascades FCFS toward slower tiers when a target is full.
    for (const bool demotion_pass : {true, false}) {
      for (std::size_t i = 0; i < n_objects; ++i) {
        if (app.objects[i].is_static) continue;
        const std::size_t desired = desired_tier[sp][i];
        ObjectState& os = state[i];
        for (std::size_t j = 0; j < os.instances.size(); ++j) {
          const std::size_t cur = os.tiers[j];
          if (cur == desired) continue;
          if ((desired > cur) != demotion_pass) continue;
          const runtime::AllocOutcome out =
              policy->retarget(os.instances[j], desired);
          if (out.addr == 0 || out.addr == os.instances[j]) continue;
          const std::uint64_t moved = app.objects[i].size_bytes;
          mig_scratch[perf[cur]] += moved;       // source-tier read
          mig_scratch[perf[out.tier]] += moved;  // destination-tier write
          migration_bytes_total += moved;
          ++migration_moves;
          alloc_ns += out.cost_ns;
          os.instances[j] = out.addr;
          os.tiers[j] = out.tier;
          ++addr_epoch;
        }
      }
    }
    double mig_s = 0;
    for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
      migration_real[t] += mig_scratch[t];
      mig_s += static_cast<double>(mig_scratch[t]) / (tier_bw[t] * 1e9);
    }
    const double mig_ns = mig_s * 1e9 + alloc_ns;
    now_ns += mig_ns;
    interpose_ns += alloc_ns;
    migration_cost_ns += mig_ns;
  };
  // One schedule decision: consult the hook (which may swap in a refreshed
  // schedule), then transition to this app phase's placement. A phase the
  // schedule does not name yet keeps the last applied placement — the
  // advisor simply has not seen it; the next refresh will. A refresh is
  // detected by pointer OR generation change: an IncrementalAdvisor mutates
  // its one schedule object in place and bumps `generation`, so the hook
  // returns the same pointer for every answer.
  auto consult_schedule = [&](std::size_t p, std::uint64_t iteration) {
    if (has_hook) {
      const advisor::PlacementSchedule* next =
          options.advisor_hook(app.phases[p].name, iteration);
      if (next != nullptr &&
          (next != schedule || next->generation != adopted_generation)) {
        HMEM_ASSERT_MSG(!next->phases.empty(),
                        "advisor hook returned an empty schedule");
        schedule = next;
        adopted_generation = next->generation;
        build_desired(*schedule);
        applied = nullptr;  // force re-apply from the refreshed schedule
      }
      std::size_t found = schedule->phases.size();
      for (std::size_t sp = 0; sp < schedule->phases.size(); ++sp) {
        if (schedule->phases[sp].phase == app.phases[p].name) {
          found = sp;
          break;
        }
      }
      if (found < schedule->phases.size()) schedule_transition(found);
      return;
    }
    schedule_transition(sched_of_phase[p]);
  };

  // ---- Main loop ---------------------------------------------------------
  std::pmr::vector<std::uint64_t> total_tier_sim(n_tiers, 0, scratch);
  std::uint64_t total_misses_sim = 0;
  double cumulative_instructions = 0;
  std::pmr::vector<MissRecord> miss_records(scratch);
  if (prof) {
    // Worst case: every access of the longest phase misses.
    std::uint64_t max_accesses = 0;
    for (const auto& phase : app.phases) {
      max_accesses = std::max(
          max_accesses, static_cast<std::uint64_t>(std::llround(
                            static_cast<double>(app.accesses_per_iteration) *
                            phase.access_share)));
    }
    miss_records.reserve(max_accesses);
  }
  std::vector<PhaseTable> tables(app.phases.size());

  // ---- Kernel selection ---------------------------------------------------
  // The interpreter loop below is the oracle; the compiled kernels
  // (engine/kernel) execute the identical per-access semantics from a
  // flattened program and are bit-identical on every result field. The
  // request resolves through the fallback ladder (cache mode -> interp,
  // profiled native -> bytecode, no native support -> bytecode).
  const kernel::KernelKind kern = kernel::resolve_kernel(
      options.kernel, cache_mode, options.profile);
  const bool use_kernel = kern != kernel::KernelKind::kInterp;
  std::vector<std::unique_ptr<PhaseKernel>> kprograms;
  if (use_kernel) kprograms.resize(app.phases.size());

  const std::uint64_t miss_count_per_sim =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(scale)));
  // Hoisted per-phase scratch (re-zeroed each phase, never reallocated).
  std::pmr::vector<std::uint64_t> phase_tier_sim(n_tiers, 0, scratch);
  std::pmr::vector<double> tier_seconds(n_tiers, 0.0, scratch);

  for (std::uint64_t iter = 0; iter < app.iterations; ++iter) {
    // The wrap-around transition happens before the churn reallocations so
    // churned objects are born under the placement of the phase about to
    // run instead of being migrated right after allocation.
    if (dynamic_on) consult_schedule(0, iter);
    for (std::size_t i = 0; i < n_objects; ++i) {
      if (app.objects[i].churn) {
        if (!state[i].instances.empty()) do_free(i);
        do_alloc(i);
      }
    }

    for (std::size_t p = 0; p < app.phases.size(); ++p) {
      const apps::PhaseSpec& phase = app.phases[p];
      if (dynamic_on) consult_schedule(p, iter);
      for (std::size_t i = 0; i < n_objects; ++i) {
        if (app.objects[i].transient_phase == static_cast<int>(p))
          do_alloc(i);
      }
      if (prof) prof->on_phase(now_ns, phase.name, /*begin=*/true);

      // O(1) target sampling table, reused across iterations until an
      // alloc/free changes the live set.
      PhaseTable& table = tables[p];
      if (table.epoch != live_epoch) {
        rebuild_phase_table(table, phase, state, live_epoch);
      }

      // Compiled-kernel program for this phase, regenerated exactly when
      // the live-set or address epoch moves (steady phases reuse it).
      if (use_kernel) {
        if (!kprograms[p]) kprograms[p] = std::make_unique<PhaseKernel>();
        PhaseKernel& kp = *kprograms[p];
        if (kp.live_epoch != live_epoch || kp.addr_epoch != addr_epoch) {
          std::vector<kernel::SlotTarget> targets;
          targets.reserve(table.target.size());
          for (const std::size_t obj : table.target) {
            kernel::SlotTarget t;
            if (obj == SIZE_MAX) {
              t.is_stack = true;
              t.stack_base = stack_region.addr;
              t.stack_lines = app.stack_bytes / memsim::kCacheLineBytes;
            } else {
              t.instances = &state[obj].instances;
              t.gen = state[obj].generator.get();
              t.size_bytes = app.objects[obj].size_bytes;
            }
            targets.push_back(t);
          }
          // Shared-cache lookup: compilation is deterministic, so any run
          // with the same cache prefix would emit this exact program.
          // Cached entries carry no generator bindings (those are
          // run-local) — re-bind from this run's targets in the order
          // compile_program builds them, then re-verify.
          bool from_cache = false;
          std::string cache_key;
          if (options.program_cache != nullptr) {
            cache_key = options.program_cache_prefix;
            cache_key += "|p";
            cache_key += std::to_string(p);
            cache_key += "|e";
            cache_key += std::to_string(live_epoch);
            cache_key += "|a";
            cache_key += std::to_string(addr_epoch);
            if (const auto hit = options.program_cache->find(cache_key)) {
              kp.program = *hit;
              std::size_t g = 0;
              for (const kernel::SlotTarget& t : targets) {
                if (!t.is_stack) {
                  HMEM_ASSERT(g < kp.program.gens.size());
                  kp.program.gens[g++] = t.gen;
                }
              }
              HMEM_ASSERT(g == kp.program.gens.size());
              HMEM_ASSERT(kernel::verify_program(kp.program).empty());
              from_cache = true;
            }
          }
          if (!from_cache) {
            kp.program =
                kernel::compile_program(table.alias, table.write_threshold,
                                        kWriteCoinShift, targets, machine);
            if (options.program_cache != nullptr) {
              options.program_cache->insert(cache_key, kp.program);
            }
          }
          kp.program.live_epoch = live_epoch;
          kp.program.addr_epoch = addr_epoch;
          kp.live_epoch = live_epoch;
          kp.addr_epoch = addr_epoch;
          kp.use_native = false;
          if (kern == kernel::KernelKind::kNative) {
            const memsim::Cache::Tables llc = machine.llc().tables();
            // An injected compile fault behaves exactly like compile()
            // returning false: this phase runs on bytecode instead.
            kp.use_native =
                !fault::inject(fault::Site::kKernelCompile) &&
                kp.native.compile(kp.program, llc.ways, llc.line_shift,
                                  llc.set_mask);
          }
        }
      }

      const auto n_accesses = static_cast<std::uint64_t>(std::llround(
          static_cast<double>(app.accesses_per_iteration) *
          phase.access_share));
      std::fill(phase_tier_sim.begin(), phase_tier_sim.end(), 0);
      double phase_latency_ns = 0;
      miss_records.clear();

      if (use_kernel) {
        // Compiled path: hand the burst to the kernel. The frame aliases
        // the live LLC way state (the kernel mutates tags/LRU in place,
        // exactly as Cache::access would) and the phase accumulators.
        PhaseKernel& kp = *kprograms[p];
        const memsim::Cache::Tables llc = machine.llc().tables();
        kernel::Frame frame;
        frame.tags = llc.tags;
        frame.lru = llc.lru;
        frame.ways = llc.ways;
        frame.line_shift = llc.line_shift;
        frame.set_mask = llc.set_mask;
        frame.tick = *llc.tick;
        frame.n_accesses = n_accesses;
        frame.tier_sim = phase_tier_sim.data();
        if (kp.use_native) {
          rng.save_state(frame.rng_state);
          kp.native.run(frame);
          rng.restore_state(frame.rng_state);
        } else {
          kernel::run_bytecode(kp.program, frame, rng,
                               prof ? &miss_records : nullptr);
        }
        *llc.tick = frame.tick;
        phase_latency_ns = frame.latency_ns;
        total_misses_sim += frame.misses;
      } else {
        // Interpreter (oracle) path: semantics mirrored insn-for-insn by
        // the compiled kernels above.
        for (std::uint64_t k = 0; k < n_accesses; ++k) {
          // One structured draw per access: target column + alias coin +
          // write coin (field layout documented at kAliasCoinBits above).
          const std::uint64_t draw = rng.next();
          const std::size_t idx = table.target[table.alias.sample(draw)];
          const bool is_write =
              (draw >> kWriteCoinShift) < table.write_threshold;

          Address addr = 0;
          if (idx == SIZE_MAX) {
            const std::uint64_t lines =
                app.stack_bytes / memsim::kCacheLineBytes;
            addr = stack_region.addr + rng.below(lines) *
                                           memsim::kCacheLineBytes;
          } else {
            const ObjectState& os = state[idx];
            const Address base =
                os.instances.size() == 1
                    ? os.instances[0]
                    : os.instances[rng.below(os.instances.size())];
            std::uint64_t offset = os.generator->next_offset();
            if (offset >= app.objects[idx].size_bytes) offset = 0;
            addr = base + offset;
          }
          const memsim::AccessResult res = machine.access(addr, is_write);
          double latency_ns = res.latency_ns;
          memsim::TierIndex serve_tier = res.tier;
          std::uint64_t serve_bytes = res.tier_bytes;
          std::uint64_t fill_bytes = 0;
          if (!res.llc_hit && cache_mode) {
            // Analytic memory-side cache decision (see CacheModeModel). The
            // flat-mode routing above served the backing tier; rewrite it.
            const std::size_t mc_target = idx == SIZE_MAX ? n_objects : idx;
            if (rng.uniform() < mc_model->hit_probability(mc_target)) {
              latency_ns = options.node.tiers[cache_front].latency_ns +
                           options.node.mem_cache_tag_ns;
              serve_tier = cache_front;
              serve_bytes = memsim::kCacheLineBytes;
            } else {
              mc_model->on_miss(mc_target);
              latency_ns = options.node.tiers[cache_backing].latency_ns +
                           options.node.mem_cache_tag_ns;
              serve_tier = cache_backing;
              serve_bytes = memsim::kCacheLineBytes;
              fill_bytes = memsim::kCacheLineBytes;  // memory-side fill
            }
          }
          phase_latency_ns += latency_ns;
          phase_tier_sim[serve_tier] += serve_bytes;
          if (fill_bytes != 0) phase_tier_sim[cache_front] += fill_bytes;
          if (!res.llc_hit) {
            ++total_misses_sim;
            if (prof) miss_records.push_back({k, addr, is_write});
          }
        }
      }

      // Roofline phase duration (seconds).
      const double real_instr = static_cast<double>(n_accesses) * scale *
                                phase.insts_per_access;
      const double compute_s = real_instr / instr_rate;
      // Tiers stream in parallel, but the shared mesh/controllers keep the
      // combination short of perfect overlap: the slowest tier dominates
      // and every other tier's time is charged at tier_mix_penalty.
      double dominant_s = 0;
      std::size_t dominant_tier = 0;
      for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
        tier_seconds[t] = static_cast<double>(phase_tier_sim[t]) * scale /
                          (tier_bw[t] * 1e9);
        if (tier_seconds[t] > dominant_s) {
          dominant_s = tier_seconds[t];
          dominant_tier = t;
        }
      }
      double overlapped_s = 0;
      for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
        if (t != dominant_tier) overlapped_s += tier_seconds[t];
      }
      const double latency_s =
          phase_latency_ns * scale * 1e-9 / (eff_cores * options.mlp);
      const double tier_s =
          dominant_s + options.tier_mix_penalty * overlapped_s;
      const double memory_s = std::max(latency_s, tier_s);
      const double phase_s =
          std::max(compute_s, memory_s) +
          options.overlap_beta * std::min(compute_s, memory_s);
      const double phase_ns = phase_s * 1e9;

      if (prof) {
        for (const MissRecord& rec : miss_records) {
          const double t =
              now_ns + phase_ns * static_cast<double>(rec.order) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, n_accesses));
          prof->on_llc_miss(t, rec.addr, rec.is_write, miss_count_per_sim);
        }
      }
      cumulative_instructions += real_instr;
      now_ns += phase_ns;
      if (prof) {
        prof->on_counter(now_ns, "instructions", cumulative_instructions);
        prof->on_phase(now_ns, phase.name, /*begin=*/false);
      }

      for (memsim::TierIndex t = 0; t < n_tiers; ++t) {
        total_tier_sim[t] += phase_tier_sim[t];
      }

      for (std::size_t i = 0; i < n_objects; ++i) {
        if (app.objects[i].transient_phase == static_cast<int>(p))
          do_free(i);
      }
    }
  }

  if (prof) now_ns += prof->overhead_ns();

  // ---- Result ------------------------------------------------------------
  RunResult result;
  result.app = app.name;
  result.condition = condition_name(options.condition);
  result.fom_unit = app.fom_unit;
  result.time_s = now_ns * 1e-9;
  HMEM_ASSERT(result.time_s > 0);
  result.fom = app.work_per_iteration * static_cast<double>(app.iterations) *
               ranks / result.time_s;

  // Per-tier traffic, fastest tier first (the order callers reason in).
  // Migration traffic is real (not sampled), so it joins after scaling.
  result.tier_traffic.reserve(n_tiers);
  for (const memsim::TierIndex t : perf) {
    TierTraffic traffic;
    traffic.name = cfg.tiers[t].name;
    traffic.bytes = static_cast<std::uint64_t>(
                        static_cast<double>(total_tier_sim[t]) * scale) +
                    migration_real[t];
    traffic.migration_bytes = migration_real[t];
    result.tier_traffic.push_back(std::move(traffic));
  }
  result.migration_bytes = migration_bytes_total;
  result.migration_count = migration_moves;
  result.migration_cost_s = migration_cost_ns * 1e-9;
  result.achieved_bw_gbs =
      static_cast<double>(result.dram_bytes()) / result.time_s / 1e9;
  result.llc_misses = total_misses_sim * miss_count_per_sim;
  result.alloc_calls = alloc_calls;
  result.allocs_per_second = static_cast<double>(alloc_calls) / result.time_s;
  result.interposition_overhead_ns = interpose_ns;

  result.total_hwm_bytes = 0;
  for (const auto& a : tier_allocs) {
    if (a != nullptr) result.total_hwm_bytes += a->stats().high_water_mark;
  }
  if (framework != nullptr) {
    result.autohbw = framework->stats();
    result.fast_hwm_bytes = framework->stats().fast_hwm;
  } else if (options.condition == Condition::kNumactl ||
             options.condition == Condition::kAutoHbw) {
    result.fast_hwm_bytes = tier_allocs[perf.front()]->stats().high_water_mark;
  }

  if (prof) {
    result.samples = prof->sampler().samples_taken();
    result.monitoring_overhead = prof->overhead_ns() / now_ns;
    if (options.trace_sink == nullptr) {
      result.trace =
          std::make_shared<trace::TraceBuffer>(prof->take_trace());
    }
    result.sites = sites;
  }
  return result;
}

}  // namespace hmem::engine
