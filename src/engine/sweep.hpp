// Fleet-scale sweep engine.
//
// The paper's evaluation is a grid — apps × machines × budgets ×
// conditions/strategies — and every cell is an independent simulation. This
// engine enumerates the grid deterministically and executes it on the
// work-queue thread pool with three layers the per-row Fig4Runner lacked:
//
//  1. Shared immutable state. App specs and machine presets live in the
//     SweepSpec; each (app, machine) pair's stage-1 profile is computed at
//     most once (std::call_once) and reused by every budget/strategy cell;
//     and compiled kernel Programs are cached in a read-mostly ProgramCache
//     keyed by (app, machine, condition, seed, placement digest, phase,
//     epochs) — any two cells that would compile the same byte stream share
//     one compile.
//  2. Per-cell arenas. Each worker owns a bump Arena (common/arena.hpp)
//     threaded into RunOptions::scratch and reset between cells, so
//     steady-state sweeping does no global-allocator traffic for the
//     engine's scratch state. Cells are bit-identical to the non-arena
//     path (tests/test_sweep.cpp asserts it on every bundled workload).
//  3. Multi-process sharding. shard_index/shard_count partition the cell
//     space by index modulo; each process appends its shard's results to
//     its own SweepStore, and merge_sweep_stores combines the shard stores
//     into one file byte-identical to an unsharded run's store.
//
// Determinism contract: cells(), sweep_cell_key() and the store record
// order depend only on the SweepSpec, never on --jobs, scheduling, or which
// shard computed a cell. Store appends are committed in enumeration order
// (a completed cell waits for its predecessors before flushing), so a clean
// unsharded store is always sorted by cell index — which is what makes the
// k-way merge's sorted rewrite byte-identical to it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "engine/kernel/kernel.hpp"
#include "engine/sweep_store.hpp"

namespace hmem {
class Arena;
}

namespace hmem::engine {

enum class CellKind {
  kBaseline,   ///< one execution condition, no advisor (ddr/numactl/...)
  kFramework,  ///< profile -> advise(strategy, budget) -> framework run
  kDynamic,    ///< profile -> static + per-phase schedule -> both runs
};

const char* cell_kind_name(CellKind kind);

/// One grid coordinate, fully determined by the SweepSpec and its index.
struct SweepCell {
  std::size_t index = 0;    ///< position in enumeration order
  std::size_t app = 0;      ///< index into SweepSpec::apps
  std::size_t machine = 0;  ///< index into SweepSpec::machines
  CellKind kind = CellKind::kBaseline;
  Condition baseline = Condition::kDdr;  ///< kBaseline only
  std::size_t strategy = 0;              ///< kFramework only
  std::uint64_t budget_bytes = 0;        ///< per rank; framework/dynamic
};

/// Everything a cell persists. One schema for all kinds: baseline and
/// framework cells leave the dynamic-only fields zero.
struct SweepCellResult {
  double fom = 0;
  std::uint64_t fast_hwm_bytes = 0;
  bool any_overflow = false;
  // kDynamic extras: `fom` is the dynamic run's, `static_fom` the static
  // placement's on the same profile.
  double static_fom = 0;
  std::size_t phases = 0;
  std::uint64_t migration_bytes = 0;  ///< per rank
  double migration_cost_s = 0;
};

struct SweepOutcome {
  SweepCell cell;
  SweepCellResult result;
  bool computed = false;  ///< simulated by this process
  bool resumed = false;   ///< loaded from the store
  bool has_result() const { return computed || resumed; }
};

struct SweepSpec {
  std::vector<apps::AppSpec> apps;
  std::vector<memsim::MachineConfig> machines;
  /// Baseline conditions per (app, machine); kFramework/kDynamic rejected.
  std::vector<Condition> baselines;
  /// Advisor strategies; one framework cell per strategy × budget.
  std::vector<StrategyConfig> strategies;
  /// Per-rank budget points for an app's framework/dynamic cells. Null
  /// means the paper ladder (default_budgets). Must be a pure function of
  /// the app — it is re-evaluated during enumeration, resume and merge.
  std::function<std::vector<std::uint64_t>(const apps::AppSpec&)> budgets_for;
  /// Add one kDynamic cell per (app, machine, budget).
  bool dynamic_cells = false;
  /// Seeds, sampler, advisor pass-through, runtime options and kernel for
  /// every cell. `node` is ignored — `machines` drives the per-cell
  /// machine. profile_ranks must stay 1 (profiles are shared per cell
  /// grid point, not sharded).
  PipelineOptions base;
  int jobs = 1;
  /// This process computes cells with index % shard_count == shard_index.
  int shard_index = 0;
  int shard_count = 1;
};

/// The paper's budget ladder for one app: the node-wide OpenMP sweep when
/// ranks == 1, the per-rank MPI sweep otherwise.
std::vector<std::uint64_t> default_budgets(const apps::AppSpec& app);

struct SweepStats {
  std::size_t cells_total = 0;     ///< full grid
  std::size_t cells_in_shard = 0;  ///< owned by this process
  std::size_t cells_computed = 0;
  std::size_t cells_resumed = 0;
  /// Stage-1 profile reuse: a miss computes the (app, machine) profile, a
  /// hit reuses it. Counted once per framework/dynamic cell.
  std::uint64_t profile_hits = 0;
  std::uint64_t profile_misses = 0;
  /// Compiled-kernel Program cache (lifetime totals of the engine).
  std::uint64_t program_hits = 0;
  std::uint64_t program_misses = 0;
  std::size_t program_cache_entries = 0;
  /// Largest per-cell scratch high-water mark across all cells, and the
  /// largest arena reservation any worker ended up holding.
  std::size_t arena_peak_cell_bytes = 0;
  std::size_t arena_reserved_bytes = 0;
  double wall_seconds = 0;
  double cells_per_second = 0;  ///< computed cells / wall_seconds

  double profile_hit_rate() const {
    const double total =
        static_cast<double>(profile_hits) + static_cast<double>(profile_misses);
    return total > 0 ? static_cast<double>(profile_hits) / total : 0.0;
  }
  double program_hit_rate() const {
    const double total =
        static_cast<double>(program_hits) + static_cast<double>(program_misses);
    return total > 0 ? static_cast<double>(program_hits) / total : 0.0;
  }
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepSpec spec);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  const SweepSpec& spec() const { return spec_; }
  /// The full deterministic cell enumeration (all shards).
  const std::vector<SweepCell>& cells() const { return cells_; }

  /// Executes this shard's cells under spec().jobs workers. With a store,
  /// every computed cell is durably appended in enumeration order; with
  /// resume, cells already in the store are loaded instead of re-run.
  /// Outcomes cover the full grid; cells outside this shard (and not
  /// resumed) come back empty. Shared state (profiles, compiled programs)
  /// survives across run() calls, so a second run on the same engine is a
  /// warm-cache run.
  std::vector<SweepOutcome> run(SweepStore* store = nullptr,
                                bool resume = false);

  const SweepStats& stats() const { return stats_; }

  /// The shared stage-2 report of one grid point (computed on demand).
  const analysis::AggregateResult& profile_report(std::size_t app,
                                                  std::size_t machine);

 private:
  struct ProfileEntry;

  const analysis::AggregateResult& profile_for(std::size_t app,
                                               std::size_t machine,
                                               bool count_reuse);
  SweepCellResult run_cell(const SweepCell& cell, Arena* arena);

  SweepSpec spec_;
  std::vector<SweepCell> cells_;
  std::vector<std::unique_ptr<ProfileEntry>> profiles_;
  kernel::ProgramCache programs_;
  std::atomic<std::uint64_t> profile_hits_{0};
  std::atomic<std::uint64_t> profile_misses_{0};
  SweepStats stats_;
};

/// Store key of a cell: a zero-padded global index (which makes
/// lexicographic key order equal enumeration order — the merge relies on
/// it) followed by the human-readable coordinates.
std::string sweep_cell_key(const SweepSpec& spec, const SweepCell& cell);

/// %.17g value serialization: a resumed or merged sweep reproduces the
/// original outcomes bit for bit.
std::string serialize_sweep_result(const SweepCellResult& result);
bool parse_sweep_result(const std::string& value, SweepCellResult& result);

/// Combines shard stores into `out_path` (replaced if present), rewriting
/// the union of records in key order. Because keys embed the enumeration
/// index and a clean unsharded run commits in enumeration order, the merged
/// file is byte-identical to that unsharded store — even when a shard's
/// input store was torn and resumed out of order. Later inputs win on
/// duplicate keys (shards are disjoint, so duplicates only arise from
/// re-merges). Throws IoError on unreadable inputs or unwritable output.
void merge_sweep_stores(const std::vector<std::string>& inputs,
                        const std::string& out_path);

}  // namespace hmem::engine
