#include "engine/sweep_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"

namespace hmem::engine {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case ' ': out += "\\s"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 's': out.push_back(' '); break;
      default: return false;
    }
  }
  return true;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

/// Parses "<crc8> <key> <value>" and verifies the checksum.
bool parse_record(const std::string& line, std::string& key,
                  std::string& value) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 != 8) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  char* end = nullptr;
  const std::string crc_field = line.substr(0, sp1);
  const std::uint32_t stored =
      static_cast<std::uint32_t>(std::strtoul(crc_field.c_str(), &end, 16));
  if (end != crc_field.c_str() + 8) return false;
  if (!unescape(line.substr(sp1 + 1, sp2 - sp1 - 1), key)) return false;
  if (!unescape(line.substr(sp2 + 1), value)) return false;
  return crc32(key + '\t' + value) == stored;
}

}  // namespace

SweepStore::SweepStore(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // no store yet — empty is fine
  std::string line, key, value;
  while (std::getline(in, line)) {
    if (!parse_record(line, key, value)) {
      // A damaged record invalidates everything after it too: the file is
      // append-only, so a tear mid-record means the tail was never
      // completely written. Count what we drop and stop.
      ++dropped_;
      while (std::getline(in, line)) ++dropped_;
      log_warn("sweep store ", path_, ": dropping ", dropped_,
               " damaged trailing record(s); will recompute");
      break;
    }
    records_[key] = value;
    valid_bytes_ += static_cast<long long>(line.size()) + 1;
  }
}

SweepStore::~SweepStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<std::string> SweepStore::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool SweepStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.count(key) != 0;
}

std::size_t SweepStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::map<std::string, std::string> SweepStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {records_.begin(), records_.end()};
}

void SweepStore::open_for_append_locked() {
  if (fd_ >= 0) return;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw IoError("cannot open sweep store " + path_ + ": " +
                  std::strerror(errno));
  }
  // Cut off the torn tail (if any) so appends extend the verified prefix.
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes_)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    throw IoError("cannot truncate sweep store " + path_ + ": " +
                  std::strerror(errno));
  }
}

void SweepStore::put(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault::inject(fault::Site::kIoWrite)) {
    throw IoError("injected io_write fault appending to sweep store " +
                  path_);
  }
  open_for_append_locked();
  const std::string line = crc_hex(crc32(key + '\t' + value)) + ' ' +
                           escape(key) + ' ' + escape(value) + '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("write to sweep store " + path_ + " failed: " +
                    std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw IoError("fsync of sweep store " + path_ + " failed: " +
                  std::strerror(errno));
  }
  records_[key] = value;
  valid_bytes_ += static_cast<long long>(line.size());
}

}  // namespace hmem::engine
