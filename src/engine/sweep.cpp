#include "engine/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "advisor/schedule_report.hpp"
#include "common/arena.hpp"
#include "common/assert.hpp"
#include "common/parallel.hpp"

namespace hmem::engine {

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kBaseline:
      return "baseline";
    case CellKind::kFramework:
      return "framework";
    case CellKind::kDynamic:
      return "dynamic";
  }
  return "?";
}

std::vector<std::uint64_t> default_budgets(const apps::AppSpec& app) {
  return app.ranks == 1 ? paper_budgets_openmp() : paper_budgets_mpi();
}

namespace {

std::vector<std::uint64_t> budgets_of(const SweepSpec& spec,
                                      const apps::AppSpec& app) {
  return spec.budgets_for ? spec.budgets_for(app) : default_budgets(app);
}

/// FNV-1a digest of a placement/schedule report. Two cells whose reports
/// print identically share compiled programs; the length rider makes an
/// accidental collision need both a hash and a size match.
std::string report_digest(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%016llx-%zu",
                static_cast<unsigned long long>(h), text.size());
  return buf;
}

/// Program-cache key prefix of one execution. Everything the compiled
/// stream can depend on is named: the grid point (app, machine), the
/// condition, the seed (allocation and generator state), and the digest of
/// the placement/schedule text when one drives the run. run_app appends
/// the per-phase epoch suffix.
std::string cache_prefix(std::size_t app, std::size_t machine,
                         const char* what, std::uint64_t seed,
                         const std::string& report_text) {
  std::string prefix = "a";
  prefix += std::to_string(app);
  prefix += "|m";
  prefix += std::to_string(machine);
  prefix += '|';
  prefix += what;
  prefix += "|s";
  prefix += std::to_string(seed);
  if (!report_text.empty()) {
    prefix += "|d";
    prefix += report_digest(report_text);
  }
  return prefix;
}

}  // namespace

struct SweepEngine::ProfileEntry {
  std::once_flag once;
  analysis::AggregateResult report;
};

SweepEngine::SweepEngine(SweepSpec spec) : spec_(std::move(spec)) {
  HMEM_ASSERT_MSG(!spec_.apps.empty(), "sweep needs at least one app");
  HMEM_ASSERT_MSG(!spec_.machines.empty(),
                  "sweep needs at least one machine");
  HMEM_ASSERT_MSG(spec_.shard_count >= 1 && spec_.shard_index >= 0 &&
                      spec_.shard_index < spec_.shard_count,
                  "shard index out of range");
  HMEM_ASSERT_MSG(spec_.base.profile_ranks <= 1,
                  "sweep profiles are shared per cell, not rank-sharded");
  for (const Condition condition : spec_.baselines) {
    HMEM_ASSERT_MSG(condition != Condition::kFramework &&
                        condition != Condition::kDynamic,
                    "advisor-driven conditions are cells, not baselines");
  }

  // Deterministic enumeration: app-major, machine, then baselines in
  // listed order, framework cells strategy-major budget-minor, and the
  // dynamic cells last. Everything downstream (shard partition, store
  // keys, the merge) leans on this order.
  std::size_t index = 0;
  for (std::size_t a = 0; a < spec_.apps.size(); ++a) {
    const std::vector<std::uint64_t> budgets =
        budgets_of(spec_, spec_.apps[a]);
    for (std::size_t m = 0; m < spec_.machines.size(); ++m) {
      for (const Condition condition : spec_.baselines) {
        SweepCell cell;
        cell.index = index++;
        cell.app = a;
        cell.machine = m;
        cell.kind = CellKind::kBaseline;
        cell.baseline = condition;
        cells_.push_back(cell);
      }
      for (std::size_t s = 0; s < spec_.strategies.size(); ++s) {
        for (const std::uint64_t budget : budgets) {
          SweepCell cell;
          cell.index = index++;
          cell.app = a;
          cell.machine = m;
          cell.kind = CellKind::kFramework;
          cell.strategy = s;
          cell.budget_bytes = budget;
          cells_.push_back(cell);
        }
      }
      if (spec_.dynamic_cells) {
        for (const std::uint64_t budget : budgets) {
          SweepCell cell;
          cell.index = index++;
          cell.app = a;
          cell.machine = m;
          cell.kind = CellKind::kDynamic;
          cell.budget_bytes = budget;
          cells_.push_back(cell);
        }
      }
    }
  }

  profiles_.resize(spec_.apps.size() * spec_.machines.size());
  for (auto& entry : profiles_) entry = std::make_unique<ProfileEntry>();
}

SweepEngine::~SweepEngine() = default;

const analysis::AggregateResult& SweepEngine::profile_report(
    std::size_t app, std::size_t machine) {
  return profile_for(app, machine, /*count_reuse=*/false);
}

const analysis::AggregateResult& SweepEngine::profile_for(std::size_t app,
                                                          std::size_t machine,
                                                          bool count_reuse) {
  ProfileEntry& entry = *profiles_[app * spec_.machines.size() + machine];
  bool computed_here = false;
  std::call_once(entry.once, [&] {
    // Stage 1 + 2, identical to Fig4Runner's historical flow: profile the
    // app in its default (DDR) placement, aggregate the trace. The profile
    // deliberately runs on the default memory resource — its artefacts
    // (trace, sites, report) outlive the cell that happened to compute it,
    // so they must not live in a worker's reset-between-cells arena.
    RunOptions po;
    po.condition = Condition::kDdr;
    po.profile = true;
    po.sampler = spec_.base.sampler;
    po.min_alloc_bytes = spec_.base.min_alloc_bytes;
    po.seed = spec_.base.profile_seed;
    po.node = spec_.machines[machine];
    po.kernel = spec_.base.kernel;
    po.program_cache = &programs_;
    po.program_cache_prefix =
        cache_prefix(app, machine, "profile", po.seed, "");
    const RunResult profile = run_app(spec_.apps[app], po);
    HMEM_ASSERT(profile.trace != nullptr);
    entry.report = analysis::aggregate_trace(*profile.trace, *profile.sites);
    computed_here = true;
  });
  if (count_reuse) {
    // Waiters blocked on the call_once count as hits too: they reused a
    // profile another cell was computing.
    (computed_here ? profile_misses_ : profile_hits_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  return entry.report;
}

SweepCellResult SweepEngine::run_cell(const SweepCell& cell, Arena* arena) {
  const apps::AppSpec& app = spec_.apps[cell.app];
  const memsim::MachineConfig& node = spec_.machines[cell.machine];
  SweepCellResult result;

  switch (cell.kind) {
    case CellKind::kBaseline: {
      RunOptions opts;
      opts.condition = cell.baseline;
      opts.seed = spec_.base.production_seed;
      opts.node = node;
      opts.kernel = spec_.base.kernel;
      opts.scratch = arena;
      opts.program_cache = &programs_;
      opts.program_cache_prefix =
          cache_prefix(cell.app, cell.machine, condition_name(cell.baseline),
                       opts.seed, "");
      const RunResult r = run_app(app, opts);
      result.fom = r.fom;
      result.fast_hwm_bytes = r.fast_hwm_bytes;
      break;
    }
    case CellKind::kFramework: {
      const analysis::AggregateResult& report =
          profile_for(cell.app, cell.machine, /*count_reuse=*/true);
      const advisor::MemorySpec spec =
          machine_memory_spec(node, cell.budget_bytes, app.ranks);
      advisor::Options adv_options =
          spec_.strategies[cell.strategy].options;
      if (spec_.base.advisor.virtual_budget_bytes > 0) {
        adv_options.virtual_budget_bytes =
            spec_.base.advisor.virtual_budget_bytes;
      }
      advisor::HmemAdvisor adv(spec, adv_options);
      const advisor::Placement placement = adv.advise(report.objects);
      const std::string text = advisor::write_placement_report(placement);
      const advisor::Placement parsed = advisor::read_placement_report(text);

      RunOptions opts;
      opts.condition = Condition::kFramework;
      opts.placement = &parsed;
      opts.runtime_options = spec_.base.runtime_options;
      opts.seed = spec_.base.production_seed;
      opts.node = node;
      opts.kernel = spec_.base.kernel;
      opts.scratch = arena;
      opts.program_cache = &programs_;
      opts.program_cache_prefix = cache_prefix(
          cell.app, cell.machine, "framework", opts.seed, text);
      const RunResult r = run_app(app, opts);
      result.fom = r.fom;
      result.fast_hwm_bytes = r.fast_hwm_bytes;
      result.any_overflow = r.autohbw.has_value() && r.autohbw->any_overflow;
      break;
    }
    case CellKind::kDynamic: {
      // The full static-vs-dynamic comparison on the shared profile: the
      // same stages run_pipeline(per_phase=true) performs, minus its
      // private profile run.
      const analysis::AggregateResult& report =
          profile_for(cell.app, cell.machine, /*count_reuse=*/true);
      const advisor::MemorySpec spec =
          machine_memory_spec(node, cell.budget_bytes, app.ranks);
      advisor::HmemAdvisor adv(spec, spec_.base.advisor);
      const advisor::Placement placement = adv.advise(report.objects);
      const std::string text = advisor::write_placement_report(placement);
      const advisor::Placement parsed = advisor::read_placement_report(text);

      RunOptions static_opts;
      static_opts.condition = Condition::kFramework;
      static_opts.placement = &parsed;
      static_opts.runtime_options = spec_.base.runtime_options;
      static_opts.seed = spec_.base.production_seed;
      static_opts.node = node;
      static_opts.kernel = spec_.base.kernel;
      static_opts.scratch = arena;
      static_opts.program_cache = &programs_;
      static_opts.program_cache_prefix = cache_prefix(
          cell.app, cell.machine, "framework", static_opts.seed, text);
      const RunResult static_run = run_app(app, static_opts);

      advisor::PhaseAdvisor phase_adv(spec, spec_.base.advisor);
      const advisor::PlacementSchedule schedule =
          phase_adv.advise(report.phases);
      const std::string sched_text =
          advisor::write_schedule_report(schedule);
      const advisor::PlacementSchedule parsed_schedule =
          advisor::read_schedule_report(sched_text);

      RunOptions dynamic_opts;
      dynamic_opts.condition = Condition::kDynamic;
      dynamic_opts.schedule = &parsed_schedule;
      dynamic_opts.runtime_options = spec_.base.runtime_options;
      dynamic_opts.seed = spec_.base.production_seed;
      dynamic_opts.node = node;
      dynamic_opts.kernel = spec_.base.kernel;
      dynamic_opts.scratch = arena;
      dynamic_opts.program_cache = &programs_;
      dynamic_opts.program_cache_prefix = cache_prefix(
          cell.app, cell.machine, "dynamic", dynamic_opts.seed, sched_text);
      const RunResult dynamic_run = run_app(app, dynamic_opts);

      result.fom = dynamic_run.fom;
      result.fast_hwm_bytes = dynamic_run.fast_hwm_bytes;
      result.static_fom = static_run.fom;
      result.phases = schedule.phases.size();
      result.migration_bytes = dynamic_run.migration_bytes;
      result.migration_cost_s = dynamic_run.migration_cost_s;
      break;
    }
  }
  return result;
}

std::vector<SweepOutcome> SweepEngine::run(SweepStore* store, bool resume) {
  const auto t0 = std::chrono::steady_clock::now();
  HMEM_ASSERT_MSG(!resume || store != nullptr, "resume requires a store");

  std::vector<SweepOutcome> outcomes(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) outcomes[i].cell = cells_[i];

  // This shard's slice, in enumeration order.
  std::vector<std::size_t> shard_cells;
  for (const SweepCell& cell : cells_) {
    if (cell.index % static_cast<std::size_t>(spec_.shard_count) ==
        static_cast<std::size_t>(spec_.shard_index)) {
      shard_cells.push_back(cell.index);
    }
  }

  std::size_t resumed = 0;
  if (store != nullptr && resume) {
    for (const std::size_t idx : shard_cells) {
      const auto value = store->find(sweep_cell_key(spec_, cells_[idx]));
      if (!value.has_value()) continue;
      SweepCellResult r;
      if (!parse_sweep_result(*value, r)) continue;  // damaged: recompute
      outcomes[idx].result = r;
      outcomes[idx].resumed = true;
      ++resumed;
    }
  }

  std::vector<std::size_t> work;
  work.reserve(shard_cells.size());
  for (const std::size_t idx : shard_cells) {
    if (!outcomes[idx].resumed) work.push_back(idx);
  }

  // Ordered commit: a finished cell's record is appended only once every
  // earlier shard cell has finished (resumed cells count as flushed).
  // Store order is therefore pure enumeration order regardless of --jobs,
  // at the cost of buffering at most the in-flight window of values.
  std::mutex commit_mutex;
  std::size_t commit_pos = 0;
  std::vector<std::string> values(cells_.size());
  std::vector<char> finished(cells_.size(), 0);
  for (const std::size_t idx : shard_cells) {
    if (outcomes[idx].resumed) finished[idx] = 1;
  }
  std::size_t arena_peak_cell = 0;
  std::size_t arena_reserved = 0;

  parallel_for(spec_.jobs, work.size(), [&](std::size_t w) {
    const std::size_t idx = work[w];
    // One arena per worker thread, reset between cells: every chunk the
    // biggest cell so far forced is reused by all later cells.
    thread_local Arena arena;
    arena.reset();
    outcomes[idx].result = run_cell(cells_[idx], &arena);
    outcomes[idx].computed = true;
    std::string value = serialize_sweep_result(outcomes[idx].result);

    std::lock_guard<std::mutex> lock(commit_mutex);
    arena_peak_cell = std::max(arena_peak_cell, arena.peak_since_reset());
    arena_reserved = std::max(arena_reserved, arena.reserved_bytes());
    values[idx] = std::move(value);
    finished[idx] = 1;
    if (store != nullptr) {
      while (commit_pos < shard_cells.size() &&
             finished[shard_cells[commit_pos]] != 0) {
        const std::size_t c = shard_cells[commit_pos];
        if (!outcomes[c].resumed) {
          store->put(sweep_cell_key(spec_, cells_[c]), values[c]);
        }
        ++commit_pos;
      }
    }
  });

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats_.cells_total = cells_.size();
  stats_.cells_in_shard = shard_cells.size();
  stats_.cells_computed = work.size();
  stats_.cells_resumed = resumed;
  stats_.profile_hits = profile_hits_.load(std::memory_order_relaxed);
  stats_.profile_misses = profile_misses_.load(std::memory_order_relaxed);
  stats_.program_hits = programs_.hits();
  stats_.program_misses = programs_.misses();
  stats_.program_cache_entries = programs_.size();
  stats_.arena_peak_cell_bytes =
      std::max(stats_.arena_peak_cell_bytes, arena_peak_cell);
  stats_.arena_reserved_bytes =
      std::max(stats_.arena_reserved_bytes, arena_reserved);
  stats_.wall_seconds = wall;
  stats_.cells_per_second =
      wall > 0 ? static_cast<double>(work.size()) / wall : 0.0;
  return outcomes;
}

std::string sweep_cell_key(const SweepSpec& spec, const SweepCell& cell) {
  char head[16];
  std::snprintf(head, sizeof(head), "%06zu", cell.index);
  std::string key = head;
  key += '|';
  key += spec.apps[cell.app].name;
  key += '|';
  key += spec.machines[cell.machine].name;
  key += '|';
  key += cell_kind_name(cell.kind);
  switch (cell.kind) {
    case CellKind::kBaseline:
      key += '|';
      key += condition_name(cell.baseline);
      break;
    case CellKind::kFramework:
      key += '|';
      key += spec.strategies[cell.strategy].label;
      key += '|';
      key += std::to_string(cell.budget_bytes);
      break;
    case CellKind::kDynamic:
      key += '|';
      key += std::to_string(cell.budget_bytes);
      break;
  }
  return key;
}

std::string serialize_sweep_result(const SweepCellResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.17g|%llu|%d|%.17g|%zu|%llu|%.17g",
                result.fom,
                static_cast<unsigned long long>(result.fast_hwm_bytes),
                result.any_overflow ? 1 : 0, result.static_fom, result.phases,
                static_cast<unsigned long long>(result.migration_bytes),
                result.migration_cost_s);
  return buf;
}

bool parse_sweep_result(const std::string& value, SweepCellResult& result) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == '|') {
      parts.push_back(value.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() != 7) return false;
  char* end = nullptr;
  result.fom = std::strtod(parts[0].c_str(), &end);
  result.fast_hwm_bytes = std::strtoull(parts[1].c_str(), &end, 10);
  result.any_overflow = parts[2] == "1";
  result.static_fom = std::strtod(parts[3].c_str(), &end);
  result.phases = std::strtoull(parts[4].c_str(), &end, 10);
  result.migration_bytes = std::strtoull(parts[5].c_str(), &end, 10);
  result.migration_cost_s = std::strtod(parts[6].c_str(), &end);
  return true;
}

void merge_sweep_stores(const std::vector<std::string>& inputs,
                        const std::string& out_path) {
  std::map<std::string, std::string> merged;
  for (const std::string& path : inputs) {
    const SweepStore in(path);
    for (auto& [key, value] : in.snapshot()) {
      merged[key] = value;  // later inputs win
    }
  }
  std::remove(out_path.c_str());
  SweepStore out(out_path);
  for (const auto& [key, value] : merged) out.put(key, value);
}

}  // namespace hmem::engine
