// Pipeline — the four-stage framework of Figure 2, end to end:
//
//   1. profile run (Extrae substitute): trace of allocations + PEBS samples;
//   2. aggregation (Paramedir substitute): per-object misses and sizes;
//   3. hmem_advisor: placement for a given memory spec and strategy;
//   4. production run with auto-hbwmalloc honouring the placement.
//
// The placement report round-trips through its text form between stages 3
// and 4 — the production run consumes exactly what a user would read —
// and the production run uses a different ASLR seed than the profiling run,
// so the symbolic matching is exercised the way the paper describes.
//
// With profile_ranks > 1 the pipeline models the paper's MPI reality: one
// profiled execution per simulated rank (each with its own ASLR image),
// each streaming its trace into a compact serialized shard as it runs
// (events are never materialized as in-memory event objects; the shards —
// ~12 bytes/event in format v2 — are held as byte strings by this
// in-process driver, where hmem_profile writes them to disk), and stage 2
// consuming the k-way timestamp merge of all shards as one ordered stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/aggregator.hpp"
#include "engine/execution.hpp"
#include "trace/format.hpp"

namespace hmem::engine {

/// Seed stride between simulated ranks: each rank gets its own ASLR image
/// and sampling phase, as distinct MPI processes would. Shared by
/// run_pipeline and the hmem_profile --ranks flow so both produce the same
/// per-rank executions.
inline constexpr std::uint64_t kRankSeedStride = 7919;

/// Builds the advisor's memory spec from a machine description: tiers in
/// descending performance, the fastest capped at `fast_budget_per_rank`
/// (Figure 4's x-axis), every other tier at its per-rank capacity share,
/// names lowercased to match the historical report format. The slowest tier
/// doubles as the advisor's unbounded fallback.
advisor::MemorySpec machine_memory_spec(const memsim::MachineConfig& node,
                                        std::uint64_t fast_budget_per_rank,
                                        int ranks);

/// Clamps a requested fast-tier budget to what the machine can physically
/// provide (the fastest tier's full capacity). A budget above that would
/// make the advisor select a working set the runtime can never host —
/// callers should warn the user when `*clamped` comes back true.
std::uint64_t clamp_fast_budget(const memsim::MachineConfig& node,
                                std::uint64_t requested_bytes,
                                bool* clamped = nullptr);

struct PipelineOptions {
  /// Per-rank fast-tier budget for the advisor (Figure 4's x-axis).
  std::uint64_t fast_budget_per_rank = 256ULL << 20;
  advisor::Options advisor;
  runtime::AutoHbwOptions runtime_options;
  pebs::SamplerConfig sampler;
  std::uint64_t min_alloc_bytes = 4096;
  std::uint64_t profile_seed = 42;
  std::uint64_t production_seed = 1042;  ///< different ASLR image
  memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
  /// Stage-1 shard count. 1 profiles once into a buffer (the classic
  /// single-process flow); k > 1 profiles k simulated ranks, serializes one
  /// trace shard per rank and aggregates their k-way merge.
  int profile_ranks = 1;
  /// Worker threads for independent simulations (the per-rank profiled
  /// executions here; baseline/cell sweeps in Fig4Runner). Each rank owns
  /// its machine, allocators, RNG streams, SiteDb and shard buffer, and
  /// results land in per-rank slots — so any jobs value, 1 or N, produces
  /// bit-identical output.
  int jobs = 1;
  /// Serialization format of the per-rank shards.
  trace::TraceFormat shard_format = trace::TraceFormat::kBinary;
  /// Access-loop backend for every stage's runs (bit-identical results;
  /// see RunOptions::kernel for the fallback ladder).
  kernel::KernelKind kernel = kernel::KernelKind::kAuto;
  /// Phase-aware mode: additionally run the PhaseAdvisor over the folded
  /// per-phase profiles (stage 3) and a second production run under the
  /// dynamic condition, filling PipelineResult::schedule / dynamic_run.
  /// The static placement and production run are always produced, so
  /// per_phase gives the static-vs-dynamic comparison in one call.
  bool per_phase = false;
};

struct PipelineResult {
  RunResult profile_run;             ///< stage 1 (rank 0 when sharded)
  analysis::AggregateResult report;  ///< stage 2
  advisor::Placement placement;      ///< stage 3
  std::string placement_report_text;
  RunResult production_run;          ///< stage 4

  /// Phase-aware artefacts (per_phase only). The schedule round-trips
  /// through its text report exactly like the static placement does.
  advisor::PlacementSchedule schedule;
  std::string schedule_report_text;
  RunResult dynamic_run;

  /// Multi-rank stage-1 artefacts (profile_ranks > 1 only).
  std::vector<RunResult> rank_profile_runs;  ///< one per rank
  /// The serialized per-rank shards themselves. They are alive for the
  /// stage-2 merge anyway; keeping them lets callers (and the determinism
  /// suite) compare parallel and serial profiling byte for byte.
  std::vector<std::string> shards;
  std::vector<std::size_t> shard_bytes;      ///< serialized shard sizes
  std::size_t merged_events = 0;  ///< events seen by the merged aggregation
};

/// Runs all four stages for one application.
PipelineResult run_pipeline(const apps::AppSpec& app,
                            const PipelineOptions& options);

}  // namespace hmem::engine
