// Pipeline — the four-stage framework of Figure 2, end to end:
//
//   1. profile run (Extrae substitute): trace of allocations + PEBS samples;
//   2. aggregation (Paramedir substitute): per-object misses and sizes;
//   3. hmem_advisor: placement for a given memory spec and strategy;
//   4. production run with auto-hbwmalloc honouring the placement.
//
// The placement report round-trips through its text form between stages 3
// and 4 — the production run consumes exactly what a user would read —
// and the production run uses a different ASLR seed than the profiling run,
// so the symbolic matching is exercised the way the paper describes.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/aggregator.hpp"
#include "engine/execution.hpp"

namespace hmem::engine {

struct PipelineOptions {
  /// Per-rank fast-tier budget for the advisor (Figure 4's x-axis).
  std::uint64_t fast_budget_per_rank = 256ULL << 20;
  advisor::Options advisor;
  runtime::AutoHbwOptions runtime_options;
  pebs::SamplerConfig sampler;
  std::uint64_t min_alloc_bytes = 4096;
  std::uint64_t profile_seed = 42;
  std::uint64_t production_seed = 1042;  ///< different ASLR image
  memsim::MachineConfig node =
      memsim::MachineConfig::knl7250(memsim::MemMode::kFlat);
};

struct PipelineResult {
  RunResult profile_run;             ///< stage 1
  analysis::AggregateResult report;  ///< stage 2
  advisor::Placement placement;      ///< stage 3
  std::string placement_report_text;
  RunResult production_run;          ///< stage 4
};

/// Runs all four stages for one application.
PipelineResult run_pipeline(const apps::AppSpec& app,
                            const PipelineOptions& options);

}  // namespace hmem::engine
