// Allocator interface for the simulated address space.
//
// auto-hbwmalloc forwards allocations to one of several backing allocators
// (glibc malloc for DDR, memkind for MCDRAM) and must keep per-allocator
// bookkeeping because "memory allocations and deallocations need to be
// handled by their specific memory allocation package and cannot be mixed".
// This interface is what the interposer programs against; the paper's
// extensibility claim (swap memkind for another mechanism) is this seam.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "memsim/address.hpp"

namespace hmem::alloc {

using memsim::Address;

struct AllocStats {
  std::uint64_t alloc_calls = 0;
  std::uint64_t free_calls = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t bytes_in_use = 0;
  std::uint64_t high_water_mark = 0;  ///< peak bytes_in_use (the HWM plots)
  std::uint64_t total_bytes_allocated = 0;

  double average_alloc_size() const {
    const std::uint64_t ok = alloc_calls - failed_allocs;
    return ok > 0 ? static_cast<double>(total_bytes_allocated) /
                        static_cast<double>(ok)
                  : 0.0;
  }
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Returns the simulated address, or nullopt when the allocator cannot
  /// satisfy the request (capacity exhausted / fragmentation).
  virtual std::optional<Address> allocate(std::uint64_t size) = 0;

  /// Returns false when the address is not owned by this allocator (the
  /// caller then routes the free elsewhere — mixing is a usage error the
  /// interposer must prevent).
  virtual bool deallocate(Address addr) = 0;

  virtual bool owns(Address addr) const = 0;

  /// Size recorded for a live allocation; nullopt when not live here.
  virtual std::optional<std::uint64_t> allocation_size(Address addr) const = 0;

  /// Simulated CPU cost of an allocate() call of `size` bytes, charged to
  /// execution time by the engine.
  virtual double alloc_cost_ns(std::uint64_t size) const = 0;
  virtual double free_cost_ns() const = 0;

  virtual const std::string& name() const = 0;
  virtual std::uint64_t capacity() const = 0;
  virtual const AllocStats& stats() const = 0;

  /// Would an allocation of `size` succeed right now? (the FITS check in
  /// Algorithm 1, line 12)
  virtual bool fits(std::uint64_t size) const = 0;
};

}  // namespace hmem::alloc
