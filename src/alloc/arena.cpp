#include "alloc/arena.hpp"

#include "common/assert.hpp"

namespace hmem::alloc {

Arena::Arena(Address base, std::uint64_t capacity, std::uint64_t alignment,
             std::pmr::memory_resource* mem)
    : base_(base), capacity_(capacity), alignment_(alignment), free_(mem),
      live_(mem) {
  HMEM_ASSERT(alignment_ != 0 && (alignment_ & (alignment_ - 1)) == 0);
  HMEM_ASSERT(capacity_ >= alignment_);
  HMEM_ASSERT(base_ % alignment_ == 0);
  free_[base_] = capacity_;
}

std::optional<Address> Arena::allocate(std::uint64_t size) {
  if (size == 0) size = 1;
  const std::uint64_t need = align_up(size);
  // First fit in address order: keeps low addresses dense, which mirrors
  // glibc-ish behaviour and makes test expectations stable.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    const Address addr = it->first;
    const std::uint64_t remaining = it->second - need;
    free_.erase(it);
    if (remaining > 0) free_[addr + need] = remaining;
    live_[addr] = need;
    in_use_ += need;
    return addr;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Arena::deallocate(Address addr) {
  const auto it = live_.find(addr);
  if (it == live_.end()) return std::nullopt;
  const std::uint64_t len = it->second;
  live_.erase(it);
  in_use_ -= len;

  // Insert into the free list and coalesce with both neighbours.
  auto [pos, inserted] = free_.emplace(addr, len);
  HMEM_ASSERT(inserted);
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  return len;
}

std::optional<std::uint64_t> Arena::allocation_size(Address addr) const {
  const auto it = live_.find(addr);
  if (it == live_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Arena::largest_free_block() const {
  std::uint64_t best = 0;
  for (const auto& [addr, len] : free_) {
    (void)addr;
    if (len > best) best = len;
  }
  return best;
}

bool Arena::check_invariants() const {
  std::uint64_t free_total = 0;
  Address prev_end = 0;
  bool first = true;
  for (const auto& [addr, len] : free_) {
    if (len == 0) return false;
    if (addr < base_ || addr + len > base_ + capacity_) return false;
    if (!first) {
      if (addr < prev_end) return false;   // overlap
      if (addr == prev_end) return false;  // not coalesced
    }
    prev_end = addr + len;
    free_total += len;
    first = false;
  }
  std::uint64_t live_total = 0;
  for (const auto& [addr, len] : live_) {
    if (addr < base_ || addr + len > base_ + capacity_) return false;
    live_total += len;
  }
  if (live_total != in_use_) return false;
  return free_total + live_total == capacity_;
}

}  // namespace hmem::alloc
