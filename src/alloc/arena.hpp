// First-fit free-list arena over a contiguous simulated address range.
//
// This is the common engine under both backing allocators. It is a real
// allocator (address-ordered free list, coalescing on free, 64-byte
// alignment) rather than a bump pointer, because the Lulesh experiment
// depends on allocate/free churn behaving realistically — fragmentation and
// reuse of freed ranges are part of the story.
#pragma once

#include <cstdint>
#include <map>
#include <memory_resource>
#include <optional>

#include "alloc/allocator.hpp"

namespace hmem::alloc {

class Arena {
 public:
  /// Manages [base, base + capacity). Alignment must be a power of two.
  /// `mem` backs the free/live bookkeeping maps — the sweep engine points it
  /// at a per-cell bump arena so allocate/free churn does no global heap
  /// traffic; the allocator's observable behaviour is identical either way.
  Arena(Address base, std::uint64_t capacity, std::uint64_t alignment = 64,
        std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  std::optional<Address> allocate(std::uint64_t size);
  /// Returns the size freed, or nullopt when addr is not a live allocation.
  std::optional<std::uint64_t> deallocate(Address addr);

  bool owns(Address addr) const {
    return addr >= base_ && addr < base_ + capacity_;
  }
  std::optional<std::uint64_t> allocation_size(Address addr) const;

  Address base() const { return base_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t bytes_in_use() const { return in_use_; }
  /// Largest single allocation that could currently succeed.
  std::uint64_t largest_free_block() const;
  std::size_t live_allocations() const { return live_.size(); }
  std::size_t free_blocks() const { return free_.size(); }

  /// Internal-consistency check (free list sorted, disjoint, coalesced,
  /// accounting matches); used by tests and the property suite.
  bool check_invariants() const;

 private:
  std::uint64_t align_up(std::uint64_t v) const {
    return (v + alignment_ - 1) & ~(alignment_ - 1);
  }

  Address base_;
  std::uint64_t capacity_;
  std::uint64_t alignment_;
  std::uint64_t in_use_ = 0;
  std::pmr::map<Address, std::uint64_t> free_;  ///< start -> length, coalesced
  std::pmr::map<Address, std::uint64_t> live_;  ///< start -> aligned length
};

}  // namespace hmem::alloc
