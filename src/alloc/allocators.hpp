// Concrete backing allocators.
//
//  * PosixAllocator   — stands in for glibc malloc over the DDR range.
//  * MemkindAllocator — stands in for memkind's hbw_malloc over the MCDRAM
//    range. It reproduces the cost anomaly the paper observed ("allocations
//    ranging from 1 to 2 Mbytes through memkind are more expensive than
//    regular allocations"), which is half of the explanation for autohbw
//    slowing Lulesh down by 8%.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <string>

#include "alloc/allocator.hpp"
#include "alloc/arena.hpp"

namespace hmem::alloc {

/// Arena-backed allocator with a flat cost model.
class ArenaAllocator : public Allocator {
 public:
  ArenaAllocator(std::string name, Address base, std::uint64_t capacity,
                 double alloc_base_ns, double alloc_per_kib_ns, double free_ns,
                 std::pmr::memory_resource* mem =
                     std::pmr::get_default_resource());

  std::optional<Address> allocate(std::uint64_t size) override;
  bool deallocate(Address addr) override;
  bool owns(Address addr) const override { return arena_.owns(addr); }
  std::optional<std::uint64_t> allocation_size(Address addr) const override {
    return arena_.allocation_size(addr);
  }
  double alloc_cost_ns(std::uint64_t size) const override;
  double free_cost_ns() const override { return free_ns_; }
  const std::string& name() const override { return name_; }
  std::uint64_t capacity() const override { return arena_.capacity(); }
  const AllocStats& stats() const override { return stats_; }
  bool fits(std::uint64_t size) const override;

  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }
  void reset_stats() { stats_ = AllocStats{}; }

 protected:
  std::string name_;
  Arena arena_;
  double alloc_base_ns_;
  double alloc_per_kib_ns_;
  double free_ns_;
  AllocStats stats_;
};

/// glibc-malloc stand-in over a DDR range.
class PosixAllocator final : public ArenaAllocator {
 public:
  PosixAllocator(Address base, std::uint64_t capacity,
                 std::pmr::memory_resource* mem =
                     std::pmr::get_default_resource());
};

/// memkind hbw_malloc stand-in over an MCDRAM range.
class MemkindAllocator final : public ArenaAllocator {
 public:
  MemkindAllocator(Address base, std::uint64_t capacity,
                   std::pmr::memory_resource* mem =
                       std::pmr::get_default_resource());

  /// Paper-observed anomaly: 1–2 MiB requests pay a large extra cost.
  double alloc_cost_ns(std::uint64_t size) const override;

  static constexpr std::uint64_t kAnomalyLo = 1ULL << 20;
  static constexpr std::uint64_t kAnomalyHi = 2ULL << 20;
  static constexpr double kAnomalyExtraNs = 100000.0;
};

}  // namespace hmem::alloc
