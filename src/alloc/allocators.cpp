#include "alloc/allocators.hpp"

#include <algorithm>

namespace hmem::alloc {

ArenaAllocator::ArenaAllocator(std::string name, Address base,
                               std::uint64_t capacity, double alloc_base_ns,
                               double alloc_per_kib_ns, double free_ns,
                               std::pmr::memory_resource* mem)
    : name_(std::move(name)),
      arena_(base, capacity, /*alignment=*/64, mem),
      alloc_base_ns_(alloc_base_ns),
      alloc_per_kib_ns_(alloc_per_kib_ns),
      free_ns_(free_ns) {}

std::optional<Address> ArenaAllocator::allocate(std::uint64_t size) {
  ++stats_.alloc_calls;
  const auto addr = arena_.allocate(size);
  if (!addr) {
    ++stats_.failed_allocs;
    return std::nullopt;
  }
  stats_.total_bytes_allocated += size;
  stats_.bytes_in_use = arena_.bytes_in_use();
  stats_.high_water_mark =
      std::max(stats_.high_water_mark, stats_.bytes_in_use);
  return addr;
}

bool ArenaAllocator::deallocate(Address addr) {
  const auto freed = arena_.deallocate(addr);
  if (!freed) return false;
  ++stats_.free_calls;
  stats_.bytes_in_use = arena_.bytes_in_use();
  return true;
}

double ArenaAllocator::alloc_cost_ns(std::uint64_t size) const {
  return alloc_base_ns_ +
         alloc_per_kib_ns_ * static_cast<double>(size) / 1024.0;
}

bool ArenaAllocator::fits(std::uint64_t size) const {
  return arena_.largest_free_block() >= std::max<std::uint64_t>(size, 1);
}

PosixAllocator::PosixAllocator(Address base, std::uint64_t capacity,
                               std::pmr::memory_resource* mem)
    : ArenaAllocator("posix", base, capacity,
                     /*alloc_base_ns=*/120.0,
                     /*alloc_per_kib_ns=*/0.02,
                     /*free_ns=*/90.0, mem) {}

MemkindAllocator::MemkindAllocator(Address base, std::uint64_t capacity,
                                   std::pmr::memory_resource* mem)
    : ArenaAllocator("memkind_hbw", base, capacity,
                     /*alloc_base_ns=*/260.0,
                     /*alloc_per_kib_ns=*/0.03,
                     /*free_ns=*/140.0, mem) {}

double MemkindAllocator::alloc_cost_ns(std::uint64_t size) const {
  double cost = ArenaAllocator::alloc_cost_ns(size);
  if (size >= kAnomalyLo && size <= kAnomalyHi) cost += kAnomalyExtraNs;
  return cost;
}

}  // namespace hmem::alloc
