// Crash-safe file output: write to a temp file in the target directory,
// fsync it, then rename over the destination. A crash (or injected
// io_write fault) at any point leaves either the old file or no file —
// never a torn half-write. Used by every shard, report, and BENCH-JSON
// writer in the pipeline.
#pragma once

#include <fstream>
#include <string>

namespace hmem {

class AtomicFile {
 public:
  /// Opens `<path>.tmp.<pid>.<seq>` for writing. Throws IoError if the
  /// temp file cannot be created.
  explicit AtomicFile(std::string path);

  /// Removes the temp file if commit() was never reached.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The stream to write payload into. Valid until commit().
  std::ostream& stream() { return out_; }

  /// Flushes, fsyncs, and renames the temp file onto the target path.
  /// Throws IoError on any failure (including an injected io_write fault),
  /// leaving the target untouched.
  void commit();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// One-shot convenience: atomically replace `path` with `contents`.
/// Returns false and fills `*error` (if non-null) instead of throwing.
bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string* error = nullptr);

}  // namespace hmem
