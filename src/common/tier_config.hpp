// Shared scanning/validation of `[tier <name>]` config sections.
//
// Two parsers consume tier lists — the advisor's MemorySpec (capacity +
// relative performance per tier) and memsim's MachineConfig (those plus
// latency/bandwidth) — and both must reject the same degenerate inputs:
// no tiers at all, duplicate tier names, zero capacities, non-positive
// relative performance. Keeping the scan and the checks here means a new
// validation rule lands in both parsers at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace hmem {

struct TierSection {
  std::string name;     ///< trimmed tier name ("[tier  a]" -> "a")
  std::string section;  ///< raw section key, for reading further keys
  std::uint64_t capacity_bytes = 0;
  double relative_performance = 1.0;
};

/// Scans `config` for `[tier <name>]` sections in appearance order and
/// validates the common fields. Throws std::runtime_error prefixed with
/// `context` ("machine config", "memory spec", ...) on degenerate input.
std::vector<TierSection> parse_tier_sections(const Config& config,
                                             const std::string& context);

}  // namespace hmem
