#include "common/alias.hpp"

#include <cmath>

namespace hmem {

AliasTable::AliasTable(const std::vector<double>& weights, int coin_bits) {
  HMEM_ASSERT(!weights.empty());
  HMEM_ASSERT(coin_bits > 0 && coin_bits <= 32);
  double total = 0;
  for (const double w : weights) {
    HMEM_ASSERT_MSG(w >= 0 && std::isfinite(w),
                    "alias weights must be finite and non-negative");
    total += w;
  }
  HMEM_ASSERT_MSG(total > 0, "alias weights must not all be zero");

  const std::size_t n = weights.size();
  n_ = n;
  coin_bits_ = coin_bits;
  coin_mask_ = (1ULL << coin_bits) - 1;
  const double scale = static_cast<double>(1ULL << coin_bits);
  slots_.resize(n);

  // Vose's construction: scaled probabilities p[i] = w[i] * n / total split
  // into "small" (< 1) and "large" (>= 1) work lists; each small column is
  // topped up by one large donor, whose residue re-enters a list.
  std::vector<double> p(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = weights[i] * static_cast<double>(n) / total;
    (p[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    const auto threshold =
        static_cast<std::uint64_t>(std::llround(p[s] * scale));
    slots_[s].threshold = std::min<std::uint64_t>(threshold, 1ULL << coin_bits);
    slots_[s].alias = l;
    p[l] = (p[l] + p[s]) - 1.0;
    (p[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are (up to round-off) exactly 1: always accept the column.
  // The threshold 2^coin_bits is strictly above every possible coin, so the
  // default alias of 0 is unreachable.
  for (const auto& rest : {large, small}) {
    for (const std::uint32_t i : rest) {
      slots_[i].threshold = 1ULL << coin_bits;
      slots_[i].alias = static_cast<std::uint32_t>(i);
    }
  }
}

}  // namespace hmem
