#include "common/alias.hpp"

#include <cmath>

namespace hmem {

AliasTable::AliasTable(const std::vector<double>& weights, int coin_bits) {
  HMEM_ASSERT(!weights.empty());
  HMEM_ASSERT(coin_bits > 0 && coin_bits <= 32);
  double total = 0;
  for (const double w : weights) {
    HMEM_ASSERT_MSG(w >= 0 && std::isfinite(w),
                    "alias weights must be finite and non-negative");
    total += w;
  }
  HMEM_ASSERT_MSG(total > 0, "alias weights must not all be zero");

  const std::size_t n = weights.size();
  n_ = n;
  coin_bits_ = coin_bits;
  coin_mask_ = (1ULL << coin_bits) - 1;
  const double scale = static_cast<double>(1ULL << coin_bits);
  slots_.resize(n);

  // Vose's construction: scaled probabilities p[i] = w[i] * n / total split
  // into "small" (< 1) and "large" (>= 1) work lists; each small column is
  // topped up by one large donor, whose residue re-enters a list.
  std::vector<double> p(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = weights[i] * static_cast<double>(n) / total;
    (p[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    const auto threshold =
        static_cast<std::uint64_t>(std::llround(p[s] * scale));
    slots_[s].threshold = std::min<std::uint64_t>(threshold, 1ULL << coin_bits);
    slots_[s].alias = l;
    p[l] = (p[l] + p[s]) - 1.0;
    (p[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are (up to round-off) exactly 1: always accept the column.
  // The threshold 2^coin_bits is strictly above every possible coin, so the
  // default alias of 0 is unreachable.
  for (const auto& rest : {large, small}) {
    for (const std::uint32_t i : rest) {
      slots_[i].threshold = 1ULL << coin_bits;
      slots_[i].alias = static_cast<std::uint32_t>(i);
    }
  }
}

double AliasTable::implied_probability(std::size_t slot) const {
  HMEM_ASSERT(slot < slots_.size());
  const std::uint64_t n = n_;
  const std::uint64_t full_coin = 1ULL << coin_bits_;
  // Column c is picked by exactly ceil((c+1)*2^32/n) - ceil(c*2^32/n) of
  // the 2^32 column values (the multiply-shift is monotone), and its coin
  // accepts `threshold` of the 2^coin_bits coin values. Products reach
  // 2^64 (n = 1), so accumulate in long double: every intermediate is an
  // integer <= 2^64, exactly representable with a 64-bit mantissa.
  long double accepted = 0;
  for (std::size_t c = 0; c < slots_.size(); ++c) {
    const auto lo = static_cast<std::uint64_t>(
        ((static_cast<unsigned long long>(c) << 32) + n - 1) / n);
    const auto hi = static_cast<std::uint64_t>(
        (((static_cast<unsigned long long>(c) + 1) << 32) + n - 1) / n);
    const std::uint64_t count = hi - lo;
    if (count == 0) continue;
    std::uint64_t coins = 0;
    if (c == slot) coins += slots_[c].threshold;
    if (slots_[c].alias == slot) coins += full_coin - slots_[c].threshold;
    accepted += static_cast<long double>(count) *
                static_cast<long double>(coins);
  }
  const long double total = static_cast<long double>(1ULL << 32) *
                            static_cast<long double>(full_coin);
  return static_cast<double>(accepted / total);
}

}  // namespace hmem
