// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding
// binary-v2 event chunks and sweep-store records. Table-driven, byte at a
// time; integrity checking is off the hot path (once per 4096-event chunk
// or per sweep cell), so simplicity wins over slicing tricks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hmem {

/// One-shot CRC over a buffer. `seed` chains incremental computations:
/// crc32(b, crc32(a)) == crc32(a + b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace hmem
