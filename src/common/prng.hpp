// Deterministic pseudo-random number generation.
//
// All stochastic elements of the simulation (access streams, sampling phase,
// ASLR slides) draw from these generators so that every experiment is
// reproducible bit-for-bit from its seed. We implement SplitMix64 (for seed
// expansion) and xoshiro256** (the workhorse) rather than use <random>
// engines because their output is specified exactly and is stable across
// standard-library implementations.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace hmem {

/// SplitMix64: tiny, high-quality 64-bit generator used to expand a single
/// user seed into the larger state of xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast all-purpose generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    HMEM_ASSERT(bound > 0);
    // 128-bit multiply keeps the distribution exactly uniform.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(next()) *
            static_cast<unsigned __int128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Raw state access for compiled kernels that inline the generator and
  /// must leave the stream exactly where an interpreted run would (the
  /// native access kernel keeps the state in registers for a phase burst
  /// and writes it back afterwards).
  void save_state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void restore_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hmem
