#include "common/crc32.hpp"

#include <array>

namespace hmem {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace hmem
