#include "common/error.hpp"

#include <new>
#include <sstream>

namespace hmem {

std::string ErrorContext::to_string() const {
  if (empty()) return "";
  std::ostringstream os;
  os << " (";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  if (!file.empty()) {
    sep();
    os << file;
  }
  if (shard) {
    sep();
    os << "shard " << *shard;
  }
  if (chunk) {
    sep();
    os << "chunk " << *chunk;
  }
  os << ")";
  return os.str();
}

Error::Error(Kind kind, const std::string& what, ErrorContext context)
    : std::runtime_error(what + context.to_string()),
      kind_(kind),
      context_(std::move(context)) {}

int Error::exit_code() const {
  switch (kind_) {
    case Kind::kConfig:
      return kExitUsage;
    case Kind::kFormat:
    case Kind::kIo:
      return kExitData;
    case Kind::kResource:
      return kExitResource;
  }
  return kExitData;
}

int exit_code_for(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) {
    return err->exit_code();
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return kExitResource;
  }
  return kExitData;
}

}  // namespace hmem
