// Bump arena for per-cell scratch memory (host memory — not to be confused
// with alloc/arena.hpp, the *simulated* address-range allocator).
//
// A sweep runs thousands of independent cells, each of which churns through
// the same kinds of short-lived scratch: LLC-miss records, per-tier
// accumulators, and the free-list/live maps of the simulated tier
// allocators. Allocating those from the global heap makes every cell pay
// malloc/free traffic (and, under --jobs, allocator lock contention) for
// memory whose lifetime is exactly one cell. The Arena is a chunked bump
// allocator exposed as a std::pmr::memory_resource: allocation is a pointer
// bump, deallocation is a no-op, and reset() rewinds to empty while keeping
// every chunk — so after the first cell has sized the arena, steady-state
// sweeping performs zero global-allocator traffic for the routed
// containers.
//
// Values never depend on where they live: a cell run on an arena is
// bit-identical to the same cell on the global allocator (asserted across
// every bundled workload in tests/test_sweep.cpp).
//
// Not thread-safe by design: one arena per worker thread, reset between
// cells. Containers allocated from an arena must be destroyed before
// reset() is called.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <vector>

namespace hmem {

class Arena final : public std::pmr::memory_resource {
 public:
  /// `first_chunk_bytes` sizes the initial chunk; subsequent chunks double
  /// up to kMaxChunkBytes. Requests larger than the growth cap get a
  /// dedicated chunk of exactly their size.
  explicit Arena(std::size_t first_chunk_bytes = 1 << 20);
  ~Arena() override;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds the arena to empty. Every chunk is kept for reuse, so a
  /// steady-state reset-allocate cycle touches the global allocator only
  /// when a cell outgrows every previous one.
  void reset();

  /// Live bytes since the last reset (including alignment padding).
  std::size_t bytes_in_use() const { return in_use_; }
  /// Largest bytes_in_use ever observed, across resets.
  std::size_t peak_bytes() const { return peak_; }
  /// Largest bytes_in_use since the last reset — the per-cell high-water
  /// mark when one cell runs per reset cycle.
  std::size_t peak_since_reset() const { return peak_since_reset_; }
  /// Total chunk capacity currently held (survives reset).
  std::size_t reserved_bytes() const { return reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  /// Allocations served since construction (never reset).
  std::uint64_t allocation_count() const { return allocations_; }

  static constexpr std::size_t kMaxChunkBytes = 8u << 20;

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void*, std::size_t, std::size_t) override {
    // Bump allocator: individual frees are no-ops; reset() reclaims.
  }
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  struct Chunk {
    char* data = nullptr;
    std::size_t capacity = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently being bumped
  std::size_t offset_ = 0;  ///< bump position within the active chunk
  std::size_t next_chunk_bytes_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t peak_since_reset_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace hmem
