#include "common/tier_config.hpp"

#include <stdexcept>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hmem {

std::vector<TierSection> parse_tier_sections(const Config& config,
                                             const std::string& context) {
  const auto fail = [&context](const std::string& what) {
    throw ConfigError(context + ": " + what);
  };
  std::vector<TierSection> tiers;
  for (const auto& section : config.sections()) {
    if (!starts_with(section, "tier")) continue;
    TierSection tier;
    tier.section = section;
    tier.name = trim(section.substr(4));
    if (tier.name.empty()) tier.name = "tier" + std::to_string(tiers.size());
    for (const auto& prior : tiers) {
      if (prior.name == tier.name)
        fail("duplicate tier name '" + tier.name + "'");
    }
    tier.capacity_bytes = config.get_bytes(section, "capacity", 0);
    if (tier.capacity_bytes == 0)
      fail("tier '" + tier.name + "' capacity missing or zero");
    tier.relative_performance =
        config.get_double(section, "relative_performance", 1.0);
    if (tier.relative_performance <= 0)
      fail("tier '" + tier.name + "' relative_performance must be positive");
    tiers.push_back(std::move(tier));
  }
  if (tiers.empty()) fail("no [tier <name>] sections");
  return tiers;
}

}  // namespace hmem
