// W^X executable-memory allocator for the native access kernel.
//
// Pages are handed out writable (never executable), the generated code is
// copied in, and seal() flips the whole region to read+execute — the region
// is never writable and executable at the same time, so the allocator works
// under strict W^X kernels and keeps the JIT surface small. Each region is
// page-granular and owned by exactly one compiled program; release()/the
// destructor unmap it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmem {

class ExecutableAllocator {
 public:
  ExecutableAllocator() = default;
  ~ExecutableAllocator();

  ExecutableAllocator(const ExecutableAllocator&) = delete;
  ExecutableAllocator& operator=(const ExecutableAllocator&) = delete;

  /// True when this platform can map anonymous memory and re-protect it to
  /// read+execute at all (POSIX mmap/mprotect). A true here does not
  /// guarantee seal() succeeds — hardened kernels may refuse PROT_EXEC at
  /// runtime, which is exactly the failure the kernel ladder falls back on.
  static bool supported();

  /// Maps a fresh anonymous read+write region of at least n bytes (rounded
  /// up to whole pages). Returns nullptr on failure or n == 0.
  void* allocate(std::size_t n);

  /// Flips the region holding p (as returned by allocate) from read+write
  /// to read+execute. Returns false if the re-protection is refused; the
  /// region stays valid (and writable) so the caller can release() it.
  bool seal(void* p);

  /// Unmaps the region holding p. No-op for pointers this allocator does
  /// not own.
  void release(void* p);

  std::size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    void* base = nullptr;
    std::size_t size = 0;
  };

  std::vector<Region> regions_;
};

}  // namespace hmem
