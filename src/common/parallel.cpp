#include "common/parallel.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace hmem {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
  ThreadPool pool(workers);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hmem
