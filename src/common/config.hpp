// INI-style configuration files.
//
// The paper's framework components (hmem_advisor, auto-hbwmalloc) are driven
// by small configuration files describing the memory tiers and the runtime
// options (Figure 2 shows a `config` input on every stage). We mirror that
// with a simple `[section]` + `key = value` format, '#' and ';' comments.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hmem {

/// Parsed configuration: section -> key -> raw string value.
/// Keys outside any section land in the "" section.
class Config {
 public:
  static Config parse(const std::string& text);

  /// Raw lookup; nullopt when section/key absent.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;

  /// Typed lookups with defaults. Byte sizes accept unit suffixes via
  /// parse_bytes (e.g. "16G", "256M").
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const;
  long long get_int(const std::string& section, const std::string& key,
                    long long fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;
  unsigned long long get_bytes(const std::string& section,
                               const std::string& key,
                               unsigned long long fallback) const;

  /// All section names, in first-appearance order.
  const std::vector<std::string>& sections() const { return section_order_; }

  /// All keys of one section, in first-appearance order.
  std::vector<std::string> keys(const std::string& section) const;

  void set(const std::string& section, const std::string& key,
           const std::string& value);

 private:
  std::map<std::string, std::map<std::string, std::string>> values_;
  std::map<std::string, std::vector<std::string>> key_order_;
  std::vector<std::string> section_order_;
};

}  // namespace hmem
