// Deterministic fault injection for the trace -> advise -> run pipeline.
//
// Named injection sites sit on the pipeline's failure-prone edges:
//
//   io_read        — trace readers, one check per chunk / line batch
//   io_write       — trace writers and atomic-file commits
//   alloc          — fast-tier simulated heap allocations (the slowest,
//                    catch-all tier is never injected, so the allocator
//                    cascade always terminates)
//   kernel_compile — compiled-kernel ladder rungs (native -> bytecode ->
//                    interp; results stay bit-identical, only the backend
//                    degrades)
//
// Schedules come from the HMEM_FAULTS environment variable or a tool's
// --faults flag. Grammar (entries separated by ';'):
//
//   io_read:p=0.01,seed=42     probabilistic: each hit fires with
//                              probability p, deterministically derived
//                              from (seed, hit index)
//   alloc:nth=3                scripted: fire exactly on the 3rd hit
//   io_write:every=100         scripted: fire on every 100th hit
//
// When no schedule is armed, inject() is a single relaxed atomic load and
// a branch — cheap enough to leave compiled into release builds (the
// engine-throughput bench gates this). Hit/fire counters are atomic, so
// concurrent simulations share one global schedule; a hit index is
// assigned atomically, which keeps the *set* of firing hit indices
// deterministic regardless of thread interleaving.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace hmem::fault {

enum class Site : int {
  kIoRead = 0,
  kIoWrite,
  kAlloc,
  kKernelCompile,
};
inline constexpr int kSiteCount = 4;

const char* site_name(Site site);
std::optional<Site> parse_site(const std::string& name);

namespace detail {
// 0 = env not consulted yet, 1 = disarmed, 2 = armed.
extern std::atomic<int> g_state;
bool armed_slow();
bool should_fire(Site site);
}  // namespace detail

/// True when any site has an active schedule. First call consults
/// HMEM_FAULTS; afterwards this is one atomic load.
inline bool armed() {
  const int s = detail::g_state.load(std::memory_order_acquire);
  if (s == 0) return detail::armed_slow();
  return s == 2;
}

/// The injection-site check: true means "fail here, now". Free when no
/// schedule is armed.
inline bool inject(Site site) {
  return armed() && detail::should_fire(site);
}

/// Installs a schedule from a spec string (see grammar above). Returns ""
/// on success or a human-readable parse error (the previous schedule is
/// kept on error). An empty spec disarms every site. Overrides HMEM_FAULTS.
std::string configure(const std::string& spec);

/// Re-reads HMEM_FAULTS, replacing any programmatic schedule. An unset or
/// empty variable disarms. Returns the configure() error string.
std::string configure_from_env();

/// Disarms every site and zeroes the counters.
void disarm();

struct SiteCounters {
  std::uint64_t hits = 0;   ///< times the site was reached while armed
  std::uint64_t fires = 0;  ///< times it was made to fail
};
SiteCounters counters(Site site);
void reset_counters();

/// One-line description of the active schedule ("io_read:p=0.01,seed=42; "
/// ...), empty when disarmed. For logs and --verbose output.
std::string describe();

}  // namespace hmem::fault
