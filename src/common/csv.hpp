// CSV writer/reader.
//
// Paramedir (stage 2 of the paper's framework) communicates with
// hmem_advisor through comma-separated-value reports; the benches also emit
// CSV so that plots can be regenerated. The dialect is deliberately small:
// RFC-4180 quoting for fields containing comma/quote/newline, '\n' line
// endings, header row optional and owned by the caller.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace hmem {

/// Serialises rows of string fields as CSV into any std::ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields are quoted only when required by the dialect.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: quotes a single field per the dialect.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

/// Parses CSV text into rows of fields. Handles quoted fields, embedded
/// quotes ("" escaping), and both \n and \r\n line endings. Empty trailing
/// line is ignored.
class CsvReader {
 public:
  static std::vector<std::vector<std::string>> parse(const std::string& text);
};

}  // namespace hmem
