#include "common/arena.hpp"

#include <algorithm>
#include <new>

#include "common/assert.hpp"

namespace hmem {

namespace {

std::size_t align_up(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes)
    : next_chunk_bytes_(std::max<std::size_t>(first_chunk_bytes, 4096)) {}

Arena::~Arena() {
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.data, std::align_val_t{alignof(std::max_align_t)});
  }
}

void Arena::reset() {
  active_ = 0;
  offset_ = 0;
  in_use_ = 0;
  peak_since_reset_ = 0;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  HMEM_ASSERT_MSG((alignment & (alignment - 1)) == 0,
                  "arena alignment must be a power of two");
  ++allocations_;
  // Chunks are max_align_t-aligned, so any alignment up to that is met by
  // padding within the chunk. Over-aligned requests (rare; none in the
  // routed containers) reserve alignment-1 extra bytes and align the
  // resulting pointer manually.
  if (alignment > alignof(std::max_align_t)) {
    char* raw = static_cast<char*>(
        do_allocate(bytes + alignment - 1, alignof(std::max_align_t)));
    --allocations_;  // the recursive call counted itself
    return reinterpret_cast<char*>(
        align_up(reinterpret_cast<std::uintptr_t>(raw), alignment));
  }
  while (active_ < chunks_.size()) {
    const std::size_t at = align_up(offset_, alignment);
    if (at + bytes <= chunks_[active_].capacity) {
      void* p = chunks_[active_].data + at;
      in_use_ += (at - offset_) + bytes;
      peak_ = std::max(peak_, in_use_);
      peak_since_reset_ = std::max(peak_since_reset_, in_use_);
      offset_ = at + bytes;
      return p;
    }
    // The rest of this chunk is too small; charge it as padding and move
    // on. Chunks retain their capacity for the next reset.
    in_use_ += chunks_[active_].capacity - offset_;
    ++active_;
    offset_ = 0;
  }

  // No existing chunk fits: grow. Oversized requests get an exact chunk so
  // a single huge vector does not balloon the doubling sequence.
  const std::size_t want = std::max(bytes, next_chunk_bytes_);
  if (bytes < kMaxChunkBytes) {
    next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
  }
  Chunk chunk;
  chunk.capacity = want;
  chunk.data = static_cast<char*>(
      ::operator new(want, std::align_val_t{alignof(std::max_align_t)}));
  chunks_.push_back(chunk);
  reserved_ += want;
  active_ = chunks_.size() - 1;
  offset_ = bytes;
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  peak_since_reset_ = std::max(peak_since_reset_, in_use_);
  return chunk.data;
}

}  // namespace hmem
