#include "common/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

namespace hmem::fault {

namespace {

// Per-site schedule. Exactly one of {p, nth, every} is active.
struct Schedule {
  bool active = false;
  double p = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t nth = 0;    // fire on exactly this 1-based hit
  std::uint64_t every = 0;  // fire on every multiple of this hit count
};

struct SiteState {
  Schedule schedule;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

SiteState g_sites[kSiteCount];
std::mutex g_config_mutex;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D4A885398931EBull;
  return x ^ (x >> 31);
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses one "site:key=val[,key=val]" entry into `out`. Returns "" or an
// error message.
std::string parse_entry(const std::string& entry, Site* site_out,
                        Schedule* out) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string::npos) {
    return "fault entry '" + entry + "' is missing ':' (want site:key=val)";
  }
  const std::string name = trim(entry.substr(0, colon));
  const auto site = parse_site(name);
  if (!site) {
    return "unknown fault site '" + name +
           "' (want io_read, io_write, alloc, or kernel_compile)";
  }
  Schedule sched;
  bool have_trigger = false;
  std::stringstream kvs(entry.substr(colon + 1));
  std::string kv;
  while (std::getline(kvs, kv, ',')) {
    kv = trim(kv);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return "fault option '" + kv + "' is missing '=' in entry '" + entry +
             "'";
    }
    const std::string key = trim(kv.substr(0, eq));
    const std::string val = trim(kv.substr(eq + 1));
    char* end = nullptr;
    if (key == "p") {
      const double p = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return "fault probability '" + val + "' must be a number in [0, 1]";
      }
      sched.p = p;
      have_trigger = true;
    } else if (key == "seed") {
      sched.seed = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0') {
        return "fault seed '" + val + "' is not an integer";
      }
    } else if (key == "nth") {
      sched.nth = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0' || sched.nth == 0) {
        return "fault nth '" + val + "' must be a positive integer";
      }
      have_trigger = true;
    } else if (key == "every") {
      sched.every = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0' || sched.every == 0) {
        return "fault every '" + val + "' must be a positive integer";
      }
      have_trigger = true;
    } else {
      return "unknown fault option '" + key +
             "' (want p, seed, nth, or every)";
    }
  }
  if (!have_trigger) {
    return "fault entry '" + entry + "' needs one of p=, nth=, or every=";
  }
  if ((sched.nth != 0) + (sched.every != 0) + (sched.p > 0.0) > 1) {
    return "fault entry '" + entry + "' mixes p/nth/every; pick one";
  }
  sched.active = true;
  *site_out = *site;
  *out = sched;
  return "";
}

std::string configure_locked(const std::string& spec) {
  Schedule parsed[kSiteCount];
  bool any = false;
  std::stringstream entries(spec);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    Site site{};
    Schedule sched;
    const std::string err = parse_entry(entry, &site, &sched);
    if (!err.empty()) return err;
    parsed[static_cast<int>(site)] = sched;
    any = true;
  }
  for (int i = 0; i < kSiteCount; ++i) {
    g_sites[i].schedule = parsed[i];
    g_sites[i].hits.store(0, std::memory_order_relaxed);
    g_sites[i].fires.store(0, std::memory_order_relaxed);
  }
  detail::g_state.store(any ? 2 : 1, std::memory_order_release);
  return "";
}

}  // namespace

namespace detail {

std::atomic<int> g_state{0};

bool armed_slow() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  if (g_state.load(std::memory_order_acquire) == 0) {
    const char* env = std::getenv("HMEM_FAULTS");
    // A malformed env spec disarms rather than throwing: library code must
    // not fail to start because of a typo in an observability knob. Tools
    // re-validate via configure_from_env() and report the error.
    configure_locked(env != nullptr ? env : "");
  }
  return g_state.load(std::memory_order_acquire) == 2;
}

bool should_fire(Site site) {
  SiteState& s = g_sites[static_cast<int>(site)];
  const Schedule& sched = s.schedule;
  if (!sched.active) return false;
  const std::uint64_t hit =
      s.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  bool fire = false;
  if (sched.nth != 0) {
    fire = hit == sched.nth;
  } else if (sched.every != 0) {
    fire = hit % sched.every == 0;
  } else if (sched.p > 0.0) {
    const std::uint64_t r = splitmix64(sched.seed ^ (hit * 0x9E3779B97F4A7C15ull));
    fire = static_cast<double>(r >> 11) * 0x1.0p-53 < sched.p;
  }
  if (fire) s.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace detail

const char* site_name(Site site) {
  switch (site) {
    case Site::kIoRead:
      return "io_read";
    case Site::kIoWrite:
      return "io_write";
    case Site::kAlloc:
      return "alloc";
    case Site::kKernelCompile:
      return "kernel_compile";
  }
  return "?";
}

std::optional<Site> parse_site(const std::string& name) {
  if (name == "io_read") return Site::kIoRead;
  if (name == "io_write") return Site::kIoWrite;
  if (name == "alloc") return Site::kAlloc;
  if (name == "kernel_compile") return Site::kKernelCompile;
  return std::nullopt;
}

std::string configure(const std::string& spec) {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  return configure_locked(spec);
}

std::string configure_from_env() {
  const char* env = std::getenv("HMEM_FAULTS");
  return configure(env != nullptr ? env : "");
}

void disarm() { configure(""); }

SiteCounters counters(Site site) {
  const SiteState& s = g_sites[static_cast<int>(site)];
  SiteCounters c;
  c.hits = s.hits.load(std::memory_order_relaxed);
  c.fires = s.fires.load(std::memory_order_relaxed);
  return c;
}

void reset_counters() {
  for (auto& s : g_sites) {
    s.hits.store(0, std::memory_order_relaxed);
    s.fires.store(0, std::memory_order_relaxed);
  }
}

std::string describe() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  std::ostringstream os;
  bool first = true;
  for (int i = 0; i < kSiteCount; ++i) {
    const Schedule& sched = g_sites[i].schedule;
    if (!sched.active) continue;
    if (!first) os << "; ";
    first = false;
    os << site_name(static_cast<Site>(i)) << ':';
    if (sched.nth != 0) {
      os << "nth=" << sched.nth;
    } else if (sched.every != 0) {
      os << "every=" << sched.every;
    } else {
      os << "p=" << sched.p << ",seed=" << sched.seed;
    }
  }
  return os.str();
}

}  // namespace hmem::fault
