#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace hmem {

namespace {

std::atomic<unsigned> g_tmp_seq{0};

std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

// fsync a path opened read-only; directories need this after rename so the
// new directory entry itself is durable.
bool fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  tmp_path_ = path_ + ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(g_tmp_seq.fetch_add(1));
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw IoError("cannot create temp file " + tmp_path_ + errno_suffix());
  }
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  if (fault::inject(fault::Site::kIoWrite)) {
    throw IoError("injected io_write fault committing " + path_,
                  ErrorContext{tmp_path_, std::nullopt, std::nullopt});
  }
  out_.flush();
  if (!out_) {
    throw IoError("write to temp file " + tmp_path_ + " failed");
  }
  out_.close();
  if (out_.fail()) {
    throw IoError("closing temp file " + tmp_path_ + " failed");
  }
  if (!fsync_path(tmp_path_, /*directory=*/false)) {
    throw IoError("fsync of temp file " + tmp_path_ + " failed" +
                  errno_suffix());
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw IoError("rename " + tmp_path_ + " -> " + path_ + " failed" +
                  errno_suffix());
  }
  committed_ = true;
  // Durability of the rename itself; best-effort (some filesystems refuse
  // to open directories).
  fsync_path(parent_dir(path_), /*directory=*/true);
}

bool write_file_atomic(const std::string& path, const std::string& contents,
                       std::string* error) {
  try {
    AtomicFile file(path);
    file.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
    file.commit();
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace hmem
