// Walker alias method: O(1) sampling from a discrete distribution.
//
// Replaces the per-access binary search over cumulative weights in the
// engine's inner loop. One table build is O(n) (Vose's stable two-stack
// construction); every sample afterwards consumes exactly one uniform
// 64-bit draw and two array reads, independent of n.
//
// The draw is consumed as structured bit fields so one generator call can
// feed several decisions (see sample()): bits [0,32) pick the column via a
// multiply-shift, the next `coin_bits` flip the alias coin against the
// column's fixed-point threshold, and the remaining high bits are left for
// the caller (the engine packs the write/read decision there). Quantizing
// the coin to `coin_bits` bits biases each slot's probability by at most
// 2^-coin_bits — for the default 32, below double round-off of the weight
// normalization itself; for the engine's 21, ~5e-7, far below the sampling
// noise of any simulated stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace hmem {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table for the given non-negative weights (at least one must
  /// be positive). Zero-weight slots are never returned by sample().
  explicit AliasTable(const std::vector<double>& weights, int coin_bits = 32);

  /// Maps one uniform 64-bit draw to a slot index:
  ///   bits [0,32)            -> column  (multiply-shift, no modulo bias)
  ///   bits [32,32+coin_bits) -> alias coin
  /// Bits [32+coin_bits, 64) are ignored and free for the caller.
  std::size_t sample(std::uint64_t u) const {
    HMEM_ASSERT(!slots_.empty());
    const std::size_t col = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) * n_) >>
        32);
    const std::uint64_t coin = (u >> 32) & coin_mask_;
    const Slot& slot = slots_[col];
    return coin < slot.threshold ? col : slot.alias;
  }

  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  int coin_bits() const { return coin_bits_; }
  std::uint64_t coin_mask() const { return coin_mask_; }

  /// Baked per-column constants for kernel compilers that flatten the table
  /// into their own instruction stream (engine/kernel): the accept-the-
  /// column threshold and the alias column of slot `col`.
  std::uint64_t slot_threshold(std::size_t col) const {
    return slots_[col].threshold;
  }
  std::uint32_t slot_alias(std::size_t col) const {
    return slots_[col].alias;
  }

  /// Exact probability that sample() returns `slot` over uniform 64-bit
  /// draws, derived by counting the 32-bit column values mapping to each
  /// column and the coin values its threshold accepts. This is the table's
  /// *implemented* distribution — quantization included — so a test can
  /// assert |implied_probability(i) - w[i]/total| <= n * 2^-coin_bits
  /// without sampling noise (the fuzz harness's oracle).
  double implied_probability(std::size_t slot) const;

 private:
  struct Slot {
    /// Accept-the-column threshold in [0, 2^coin_bits]; the top value means
    /// "always the column" and is unreachable by any coin, so full-weight
    /// slots never divert to their (arbitrary) alias.
    std::uint64_t threshold = 0;
    std::uint32_t alias = 0;
  };

  std::vector<Slot> slots_;
  std::uint64_t n_ = 0;
  std::uint64_t coin_mask_ = 0;
  int coin_bits_ = 0;
};

}  // namespace hmem
