#include "common/strings.hpp"

#include <cctype>

namespace hmem {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0)
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
    --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace hmem
