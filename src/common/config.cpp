#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/units.hpp"

namespace hmem {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::string section;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = trim(raw_line);
    // Strip comments ('#' or ';') that are not inside a value; values never
    // legitimately contain those characters in our configs.
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      if (std::find(cfg.section_order_.begin(), cfg.section_order_.end(),
                    section) == cfg.section_order_.end()) {
        cfg.section_order_.push_back(section);
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;  // tolerate malformed lines
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) continue;
    cfg.set(section, key, value);
  }
  return cfg;
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  auto& sec = values_[section];
  if (sec.find(key) == sec.end()) key_order_[section].push_back(key);
  sec[key] = value;
  if (std::find(section_order_.begin(), section_order_.end(), section) ==
      section_order_.end()) {
    section_order_.push_back(section);
  }
}

std::optional<std::string> Config::get(const std::string& section,
                                       const std::string& key) const {
  const auto sec = values_.find(section);
  if (sec == values_.end()) return std::nullopt;
  const auto it = sec->second.find(key);
  if (it == sec->second.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& section,
                               const std::string& key,
                               const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

long long Config::get_int(const std::string& section, const std::string& key,
                          long long fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

bool Config::get_bool(const std::string& section, const std::string& key,
                      bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string lower = to_lower(*v);
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1")
    return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0")
    return false;
  return fallback;
}

unsigned long long Config::get_bytes(const std::string& section,
                                     const std::string& key,
                                     unsigned long long fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_bytes(*v);
  return parsed ? *parsed : fallback;
}

std::vector<std::string> Config::keys(const std::string& section) const {
  const auto it = key_order_.find(section);
  if (it == key_order_.end()) return {};
  return it->second;
}

}  // namespace hmem
