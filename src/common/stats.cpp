#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hmem {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  HMEM_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  HMEM_ASSERT(hi > lo);
  HMEM_ASSERT(bins > 0);
}

std::size_t Histogram::bin_for(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double x, double weight) {
  counts_[bin_for(x)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace hmem
