// Work-queue thread pool for running independent simulations concurrently.
//
// The engine's unit of parallelism is one whole simulation (a profiled rank,
// a Figure-4 cell, a baseline condition): coarse tasks, each owning its
// Machine/allocators/profiler/RNG state, with results written to
// caller-preallocated slots. Scheduling therefore never influences results —
// parallel runs are bit-identical to serial ones — and the pool can stay
// deliberately simple: one locked deque, a condition variable, no work
// stealing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmem {

/// Fixed-size pool of workers draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks must not throw (wrap with parallel_for for
  /// exception transport).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void wait();

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// std::thread::hardware_concurrency with a floor of 1 (the standard allows
/// it to return 0 when unknown).
int hardware_jobs();

/// Runs fn(0) .. fn(n-1), at most `jobs` at a time. jobs <= 1 (or n <= 1)
/// runs inline on the caller's thread with no pool at all, so the serial
/// path is exactly the plain loop. Results must be written to per-index
/// slots; the first exception thrown by any task is rethrown here after all
/// tasks have finished.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hmem
