// Minimal leveled logger.
//
// The library is deterministic and single-threaded per experiment, but bench
// binaries run several experiments back to back, so the logger is guarded by
// a mutex to keep interleaved output readable if callers ever thread it.
#pragma once

#include <sstream>
#include <string>

namespace hmem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kWarn so
/// tests and benches stay quiet unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level prefix. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void log_error(const Args&... args) {
  log_message(LogLevel::kError, detail::concat(args...));
}

}  // namespace hmem
