// Error taxonomy of the trace -> advise -> run pipeline.
//
// Every failure the library reports falls into one of four kinds, each
// carrying a context chain (file, shard index, chunk index) so a message
// like "malformed binary trace: truncated varint" can also say *which*
// shard and *which* chunk:
//
//   ConfigError   — the user asked for something invalid (app config,
//                   machine config, flag combinations).       exit code 2
//   FormatError   — on-disk data is malformed (trace shards,
//                   placement/schedule reports).              exit code 3
//   IoError       — the operating system failed us (open, read,
//                   write, fsync, rename).                    exit code 3
//   ResourceError — a resource limit was hit (memory, file
//                   descriptors).                             exit code 4
//
// All four derive from std::runtime_error, so pre-taxonomy call sites
// (and the fuzz harness's reader contract) keep working unchanged; new
// call sites can catch hmem::Error and map to an exit code via
// exit_code() / exit_code_for().
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace hmem {

/// CLI exit-code convention shared by every hmem_* tool:
///   0 success, 2 usage/config, 3 data/IO, 4 resource exhaustion.
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitResource = 4;

/// Where in the pipeline's data an error happened. Fields are optional so
/// the chain grows as the error climbs: the binary reader knows the chunk,
/// the replay front adds the shard path and index.
struct ErrorContext {
  std::string file;                  ///< path or label of the stream
  std::optional<std::size_t> shard;  ///< shard index in a multi-rank set
  std::optional<std::size_t> chunk;  ///< binary v2 chunk index (0-based)

  bool empty() const { return file.empty() && !shard && !chunk; }
  /// " (shard.bin, shard 2, chunk 7)" — or "" when nothing is known.
  std::string to_string() const;
};

class Error : public std::runtime_error {
 public:
  enum class Kind { kConfig, kFormat, kIo, kResource };

  Error(Kind kind, const std::string& what, ErrorContext context = {});

  Kind kind() const { return kind_; }
  const ErrorContext& context() const { return context_; }
  /// Maps the kind to the CLI exit-code convention above.
  int exit_code() const;

 private:
  Kind kind_;
  ErrorContext context_;
};

class ConfigError final : public Error {
 public:
  explicit ConfigError(const std::string& what, ErrorContext context = {})
      : Error(Kind::kConfig, what, std::move(context)) {}
};

class FormatError final : public Error {
 public:
  explicit FormatError(const std::string& what, ErrorContext context = {})
      : Error(Kind::kFormat, what, std::move(context)) {}
};

class IoError final : public Error {
 public:
  explicit IoError(const std::string& what, ErrorContext context = {})
      : Error(Kind::kIo, what, std::move(context)) {}
};

class ResourceError final : public Error {
 public:
  explicit ResourceError(const std::string& what, ErrorContext context = {})
      : Error(Kind::kResource, what, std::move(context)) {}
};

/// Exit code for an arbitrary in-flight exception: hmem::Error maps through
/// its kind, std::bad_alloc is a resource failure, anything else is treated
/// as a data error (every remaining runtime_error in the codebase is a
/// parse/validation failure).
int exit_code_for(const std::exception& e);

}  // namespace hmem
