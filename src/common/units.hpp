// Byte-size parsing and formatting ("16G" <-> 17179869184).
//
// Memory-tier capacities and advisor budgets appear throughout configs and
// reports; keeping one parser avoids KB-vs-KiB drift. All suffixes are
// binary (K = 1024) because that is what memkind and numactl use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hmem {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Parses "4096", "4K", "256M", "16G", "1.5G" (case-insensitive, optional
/// trailing 'B' / "iB"). Returns nullopt on malformed input.
std::optional<std::uint64_t> parse_bytes(const std::string& text);

/// Renders bytes with the largest exact-ish unit: "256 MiB", "16 GiB",
/// "1.5 GiB", "512 B". Two decimals maximum, trailing zeros trimmed.
std::string format_bytes(std::uint64_t bytes);

}  // namespace hmem
