// Small descriptive-statistics helpers used by the profiler, the benches and
// the tests. Everything operates on plain vectors of doubles; the data sets
// involved (per-object metrics, per-run FOMs) are tiny so clarity beats
// streaming cleverness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmem {

/// Running accumulator for mean/variance (Welford) plus min/max.
/// Suitable for long access streams where storing samples is not an option.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile via sorting a copy (linear interpolation between ranks).
/// p in [0, 100]. Empty input returns 0.
double percentile(std::vector<double> values, double p);

double mean(const std::vector<double>& values);
double stddev(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket. Used by the folding
/// analysis to bin samples over time.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  std::size_t bin_for(double x) const;

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace hmem
