#include "common/csv.hpp"

namespace hmem {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> CsvReader::parse(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // next field exists even if empty
        break;
      case '\r':
        break;  // swallowed; \n terminates the row
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  // Final row without trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace hmem
