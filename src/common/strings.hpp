// String helpers shared across modules. Kept deliberately tiny — only what
// the config/CSV/report parsers actually need.
#pragma once

#include <string>
#include <vector>

namespace hmem {

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Splits on a single character; keeps empty pieces.
std::vector<std::string> split(const std::string& s, char sep);

/// Lowercases ASCII characters only.
std::string to_lower(std::string s);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

}  // namespace hmem
