#include "common/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace hmem {

std::optional<std::uint64_t> parse_bytes(const std::string& text) {
  const std::string s = trim(text);
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || value < 0) return std::nullopt;
  std::string suffix = to_lower(trim(std::string(end)));
  // Accept "", "b", "k", "kb", "kib", ... .
  if (!suffix.empty() && suffix.back() == 'b') suffix.pop_back();
  if (!suffix.empty() && suffix.back() == 'i') suffix.pop_back();
  double multiplier = 1.0;
  if (suffix.empty()) {
    multiplier = 1.0;
  } else if (suffix == "k") {
    multiplier = static_cast<double>(kKiB);
  } else if (suffix == "m") {
    multiplier = static_cast<double>(kMiB);
  } else if (suffix == "g") {
    multiplier = static_cast<double>(kGiB);
  } else if (suffix == "t") {
    multiplier = static_cast<double>(kGiB) * 1024.0;
  } else {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(std::llround(value * multiplier));
}

std::string format_bytes(std::uint64_t bytes) {
  const char* unit = "B";
  double value = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    value /= static_cast<double>(kGiB);
    unit = "GiB";
  } else if (bytes >= kMiB) {
    value /= static_cast<double>(kMiB);
    unit = "MiB";
  } else if (bytes >= kKiB) {
    value /= static_cast<double>(kKiB);
    unit = "KiB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  std::string num(buf);
  // Trim trailing zeros and a dangling dot: "16.00" -> "16", "1.50" -> "1.5".
  while (!num.empty() && num.back() == '0') num.pop_back();
  if (!num.empty() && num.back() == '.') num.pop_back();
  return num + " " + unit;
}

}  // namespace hmem
