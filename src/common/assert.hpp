// Lightweight always-on assertion macros for the hmem library.
//
// Simulation code is full of invariants whose violation indicates a logic
// error rather than a recoverable condition, so we abort with a message
// instead of throwing. HMEM_ASSERT stays enabled in Release builds: the
// simulator is the measurement instrument and silent corruption would
// invalidate every experiment built on top of it.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hmem {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "hmem assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hmem

#define HMEM_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::hmem::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HMEM_ASSERT_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr)) ::hmem::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
