#include "common/exec_alloc.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define HMEM_EXEC_ALLOC_POSIX 1
#endif

namespace hmem {

#ifdef HMEM_EXEC_ALLOC_POSIX

namespace {

std::size_t round_to_pages(std::size_t n) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return (n + page - 1) / page * page;
}

}  // namespace

ExecutableAllocator::~ExecutableAllocator() {
  for (const Region& region : regions_) {
    if (region.base != nullptr) ::munmap(region.base, region.size);
  }
}

bool ExecutableAllocator::supported() { return true; }

void* ExecutableAllocator::allocate(std::size_t n) {
  if (n == 0) return nullptr;
  const std::size_t size = round_to_pages(n);
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) return nullptr;
  regions_.push_back(Region{base, size});
  return base;
}

bool ExecutableAllocator::seal(void* p) {
  for (const Region& region : regions_) {
    if (region.base == p) {
      return ::mprotect(region.base, region.size, PROT_READ | PROT_EXEC) == 0;
    }
  }
  return false;
}

void ExecutableAllocator::release(void* p) {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].base == p) {
      ::munmap(regions_[i].base, regions_[i].size);
      regions_.erase(regions_.begin() +
                     static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

#else  // !HMEM_EXEC_ALLOC_POSIX

ExecutableAllocator::~ExecutableAllocator() = default;
bool ExecutableAllocator::supported() { return false; }
void* ExecutableAllocator::allocate(std::size_t) { return nullptr; }
bool ExecutableAllocator::seal(void*) { return false; }
void ExecutableAllocator::release(void*) {}

#endif

}  // namespace hmem
