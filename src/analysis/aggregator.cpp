#include "analysis/aggregator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/logging.hpp"

namespace hmem::analysis {

AggregateVisitor::AggregateVisitor(const callstack::SiteDb& sites)
    : sites_(&sites) {
  accum_.resize(sites.size());
}

void AggregateVisitor::check_order(double t) {
  HMEM_ASSERT_MSG(t >= last_time_, "trace events out of time order");
  last_time_ = t;
}

AggregateVisitor::SiteAccum& AggregateVisitor::accum_for(
    callstack::SiteId site) {
  HMEM_ASSERT_MSG(site < sites_->size(),
                  "event references a site missing from the SiteDb");
  if (site >= accum_.size()) accum_.resize(sites_->size());
  return accum_[site];
}

void AggregateVisitor::on_alloc(const trace::AllocEvent& e) {
  check_order(e.time_ns);
  SiteAccum& sa = accum_for(e.site);
  sa.seen = true;
  sa.max_size = std::max(sa.max_size, e.size);
  registry_.on_alloc(e.addr, e.size, e.site);
}

void AggregateVisitor::on_free(const trace::FreeEvent& e) {
  check_order(e.time_ns);
  registry_.on_free(e.addr);
}

std::size_t AggregateVisitor::phase_accum_for(const std::string& name) {
  for (std::size_t i = 0; i < phase_accum_.size(); ++i) {
    if (phase_accum_[i].name == name) return i;
  }
  phase_accum_.push_back(PhaseAccum{name, {}});
  return phase_accum_.size() - 1;
}

void AggregateVisitor::on_sample(const trace::SampleEvent& e) {
  check_order(e.time_ns);
  ++result_.total_samples;
  result_.total_weighted_misses += e.weight;
  const auto obj = registry_.lookup(e.addr);
  if (obj) {
    accum_for(obj->site).misses += e.weight;
    if (!open_phases_.empty()) {
      PhaseAccum& pa = phase_accum_[open_phases_.back()];
      if (obj->site >= pa.misses.size()) pa.misses.resize(sites_->size(), 0);
      pa.misses[obj->site] += e.weight;
    }
  } else {
    ++result_.unattributed_samples;
    result_.unattributed_misses += e.weight;
  }
}

// Phase events drive the per-phase profile slicing; counter events are a
// folding concern. Both participate in the time-order invariant.
void AggregateVisitor::on_phase(const trace::PhaseEvent& e) {
  check_order(e.time_ns);
  const std::size_t idx = phase_accum_for(e.name);
  if (e.begin) {
    open_phases_.push_back(idx);
    return;
  }
  // Close the most recent begin of this name (merged multi-rank streams may
  // deliver ends out of stack order); an unmatched end is ignored.
  for (std::size_t i = open_phases_.size(); i-- > 0;) {
    if (open_phases_[i] == idx) {
      open_phases_.erase(open_phases_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void AggregateVisitor::on_counter(const trace::CounterEvent& e) {
  check_order(e.time_ns);
}

AggregateResult AggregateVisitor::finish() {
  const auto by_misses = [](const advisor::ObjectInfo& a,
                            const advisor::ObjectInfo& b) {
    if (a.llc_misses != b.llc_misses) return a.llc_misses > b.llc_misses;
    return a.site < b.site;
  };
  for (callstack::SiteId id = 0; id < accum_.size(); ++id) {
    if (!accum_[id].seen) continue;
    const auto& info = sites_->get(id);
    advisor::ObjectInfo obj;
    obj.site = id;
    obj.name = info.object_name;
    obj.stack = info.stack;
    obj.max_size_bytes = accum_[id].max_size;
    obj.llc_misses = accum_[id].misses;
    obj.is_dynamic = info.is_dynamic;
    result_.objects.push_back(std::move(obj));
  }
  // Descending misses — the order every consumer wants.
  std::sort(result_.objects.begin(), result_.objects.end(), by_misses);

  // Per-phase slices: every whole-run site appears in every phase (objects
  // a phase never touches simply carry zero misses and are never selected),
  // so a single-phase trace reproduces `objects` exactly.
  for (const PhaseAccum& pa : phase_accum_) {
    advisor::PhaseObjects phase;
    phase.name = pa.name;
    phase.objects.reserve(result_.objects.size());
    for (const advisor::ObjectInfo& whole : result_.objects) {
      advisor::ObjectInfo obj = whole;
      obj.llc_misses =
          whole.site < pa.misses.size() ? pa.misses[whole.site] : 0;
      phase.objects.push_back(std::move(obj));
    }
    std::sort(phase.objects.begin(), phase.objects.end(), by_misses);
    result_.phases.push_back(std::move(phase));
  }
  return std::move(result_);
}

AggregateResult aggregate_trace(const trace::TraceBuffer& trace,
                                const callstack::SiteDb& sites) {
  AggregateVisitor visitor(sites);
  trace::visit_buffer(trace, visitor);
  return visitor.finish();
}

AggregateResult aggregate_stream(trace::TraceReader& reader,
                                 const callstack::SiteDb& sites) {
  AggregateVisitor visitor(sites);
  trace::pump(reader, visitor);
  return visitor.finish();
}

std::string objects_to_csv(const std::vector<advisor::ObjectInfo>& objects) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(
      {"name", "site", "dynamic", "max_size_bytes", "llc_misses",
       "misses_per_kib"});
  for (const auto& obj : objects) {
    const double per_kib =
        obj.max_size_bytes > 0
            ? static_cast<double>(obj.llc_misses) * 1024.0 /
                  static_cast<double>(obj.max_size_bytes)
            : 0.0;
    char density[32];
    std::snprintf(density, sizeof(density), "%.3f", per_kib);
    writer.write_row({obj.name, std::to_string(obj.site),
                      obj.is_dynamic ? "1" : "0",
                      std::to_string(obj.max_size_bytes),
                      std::to_string(obj.llc_misses), density});
  }
  return os.str();
}

namespace {

/// Strict non-negative integer parse: the whole field, no sign, no
/// whitespace, no overflow. std::stoull would accept "12junk" and throw on
/// "junk" — neither is acceptable for a file a user may have truncated or
/// hand-edited.
std::optional<std::uint64_t> parse_u64_field(const std::string& field) {
  // Digits only: strtoull alone would skip leading whitespace and accept a
  // sign (" -4096" wraps to ~2^64) or trailing junk ("12tail").
  if (field.empty()) return std::nullopt;
  for (const char c : field) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno == ERANGE || end != field.c_str() + field.size()) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::vector<advisor::ObjectInfo> objects_from_csv(const std::string& text) {
  // Defensive by design: this is the one ingest path fed by files from
  // outside the process (hmem_advise --csv output, possibly truncated or
  // edited). Malformed rows are skipped with a warning, never thrown on.
  static const std::vector<std::string> kHeader = {
      "name", "site", "dynamic", "max_size_bytes", "llc_misses",
      "misses_per_kib"};
  std::vector<advisor::ObjectInfo> objects;
  const auto rows = CsvReader::parse(text);
  if (rows.empty()) return objects;
  std::size_t start = 0;
  if (rows[0] == kHeader) {
    start = 1;
  } else {
    // No (or an unexpected) header: warn and try every row as data — a
    // variant header row then simply fails the numeric checks below.
    log_warn("objects CSV: missing or unexpected header row (expected ",
             kHeader.size(), " columns name,site,...)");
  }
  for (std::size_t r = start; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() < 5) {
      log_warn("objects CSV: skipping row ", r + 1, " (", row.size(),
               " columns, need at least 5)");
      continue;
    }
    const auto site = parse_u64_field(row[1]);
    const auto size = parse_u64_field(row[3]);
    const auto misses = parse_u64_field(row[4]);
    if (!site || *site > callstack::kInvalidSite || !size || !misses) {
      log_warn("objects CSV: skipping malformed row ", r + 1, " (\"",
               row[0], "\")");
      continue;
    }
    advisor::ObjectInfo obj;
    obj.name = row[0];
    obj.site = static_cast<callstack::SiteId>(*site);
    obj.is_dynamic = row[2] == "1";
    obj.max_size_bytes = *size;
    obj.llc_misses = *misses;
    objects.push_back(std::move(obj));
  }
  return objects;
}

}  // namespace hmem::analysis
