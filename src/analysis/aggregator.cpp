#include "analysis/aggregator.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "profiler/object_registry.hpp"

namespace hmem::analysis {

AggregateResult aggregate_trace(const trace::TraceBuffer& trace,
                                const callstack::SiteDb& sites) {
  AggregateResult result;

  // Per-site accumulators, indexed by SiteId.
  struct SiteAccum {
    std::uint64_t max_size = 0;
    std::uint64_t misses = 0;
    bool seen = false;
  };
  std::vector<SiteAccum> accum(sites.size());

  profiler::ObjectRegistry registry;
  double last_time = -1.0;

  for (const auto& event : trace.events()) {
    const double t = trace::event_time_ns(event);
    HMEM_ASSERT_MSG(t >= last_time, "trace events out of time order");
    last_time = t;

    if (const auto* alloc = std::get_if<trace::AllocEvent>(&event)) {
      HMEM_ASSERT(alloc->site < accum.size());
      SiteAccum& sa = accum[alloc->site];
      sa.seen = true;
      sa.max_size = std::max(sa.max_size, alloc->size);
      registry.on_alloc(alloc->addr, alloc->size, alloc->site);
    } else if (const auto* free_ev = std::get_if<trace::FreeEvent>(&event)) {
      registry.on_free(free_ev->addr);
    } else if (const auto* sample = std::get_if<trace::SampleEvent>(&event)) {
      ++result.total_samples;
      result.total_weighted_misses += sample->weight;
      const auto obj = registry.lookup(sample->addr);
      if (obj) {
        accum[obj->site].misses += sample->weight;
      } else {
        ++result.unattributed_samples;
        result.unattributed_misses += sample->weight;
      }
    }
    // Phase/counter events are folding concerns, not aggregation ones.
  }

  for (callstack::SiteId id = 0; id < accum.size(); ++id) {
    if (!accum[id].seen) continue;
    const auto& info = sites.get(id);
    advisor::ObjectInfo obj;
    obj.site = id;
    obj.name = info.object_name;
    obj.stack = info.stack;
    obj.max_size_bytes = accum[id].max_size;
    obj.llc_misses = accum[id].misses;
    obj.is_dynamic = info.is_dynamic;
    result.objects.push_back(std::move(obj));
  }
  // Descending misses — the order every consumer wants.
  std::sort(result.objects.begin(), result.objects.end(),
            [](const advisor::ObjectInfo& a, const advisor::ObjectInfo& b) {
              if (a.llc_misses != b.llc_misses)
                return a.llc_misses > b.llc_misses;
              return a.site < b.site;
            });
  return result;
}

std::string objects_to_csv(const std::vector<advisor::ObjectInfo>& objects) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row(
      {"name", "site", "dynamic", "max_size_bytes", "llc_misses",
       "misses_per_kib"});
  for (const auto& obj : objects) {
    const double per_kib =
        obj.max_size_bytes > 0
            ? static_cast<double>(obj.llc_misses) * 1024.0 /
                  static_cast<double>(obj.max_size_bytes)
            : 0.0;
    char density[32];
    std::snprintf(density, sizeof(density), "%.3f", per_kib);
    writer.write_row({obj.name, std::to_string(obj.site),
                      obj.is_dynamic ? "1" : "0",
                      std::to_string(obj.max_size_bytes),
                      std::to_string(obj.llc_misses), density});
  }
  return os.str();
}

std::vector<advisor::ObjectInfo> objects_from_csv(const std::string& text) {
  std::vector<advisor::ObjectInfo> objects;
  const auto rows = CsvReader::parse(text);
  for (std::size_t r = 1; r < rows.size(); ++r) {  // skip header
    const auto& row = rows[r];
    if (row.size() < 5) continue;
    advisor::ObjectInfo obj;
    obj.name = row[0];
    obj.site = static_cast<callstack::SiteId>(std::stoul(row[1]));
    obj.is_dynamic = row[2] == "1";
    obj.max_size_bytes = std::stoull(row[3]);
    obj.llc_misses = std::stoull(row[4]);
    objects.push_back(std::move(obj));
  }
  return objects;
}

}  // namespace hmem::analysis
