#include "analysis/folding.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace hmem::analysis {

FoldingResult fold(const trace::TraceBuffer& trace, double t_begin_ns,
                   double t_end_ns, std::size_t bins,
                   const std::string& counter_name) {
  HMEM_ASSERT(t_end_ns > t_begin_ns);
  HMEM_ASSERT(bins > 0);

  FoldingResult result;
  result.t_begin_ns = t_begin_ns;
  result.t_end_ns = t_end_ns;
  result.bins.resize(bins);
  const double bin_width = (t_end_ns - t_begin_ns) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    result.bins[i].t_begin_ns = t_begin_ns + bin_width * static_cast<double>(i);
    result.bins[i].t_end_ns = result.bins[i].t_begin_ns + bin_width;
  }

  auto bin_of = [&](double t) -> std::size_t {
    const double frac = (t - t_begin_ns) / (t_end_ns - t_begin_ns);
    const auto b = static_cast<std::size_t>(
        frac * static_cast<double>(bins));
    return std::min(b, bins - 1);
  };

  // Phase coverage per bin: phase name -> covered ns. Phases may span bins.
  std::vector<std::map<std::string, double>> phase_cover(bins);
  std::map<std::string, double> open_phases;  // name -> begin time

  // Cumulative instruction counter: distribute deltas over the bins each
  // interval overlaps.
  double last_counter_time = t_begin_ns;
  double last_counter_value = 0;
  bool have_counter = false;

  auto spread_phase = [&](const std::string& name, double begin, double end) {
    const double lo = std::max(begin, t_begin_ns);
    const double hi = std::min(end, t_end_ns);
    if (hi <= lo) return;
    for (std::size_t b = bin_of(lo); b <= bin_of(hi - 1e-9); ++b) {
      const double cover_lo = std::max(lo, result.bins[b].t_begin_ns);
      const double cover_hi = std::min(hi, result.bins[b].t_end_ns);
      if (cover_hi > cover_lo) phase_cover[b][name] += cover_hi - cover_lo;
    }
  };

  auto spread_instructions = [&](double begin, double end, double count) {
    const double lo = std::max(begin, t_begin_ns);
    const double hi = std::min(end, t_end_ns);
    if (hi <= lo || count <= 0 || end <= begin) return;
    const double rate = count / (end - begin);
    for (std::size_t b = bin_of(lo); b <= bin_of(hi - 1e-9); ++b) {
      const double cover_lo = std::max(lo, result.bins[b].t_begin_ns);
      const double cover_hi = std::min(hi, result.bins[b].t_end_ns);
      if (cover_hi > cover_lo)
        result.bins[b].instructions += rate * (cover_hi - cover_lo);
    }
  };

  for (const auto& event : trace.events()) {
    const double t = trace::event_time_ns(event);
    if (const auto* phase = std::get_if<trace::PhaseEvent>(&event)) {
      if (phase->begin) {
        open_phases[phase->name] = t;
      } else {
        const auto it = open_phases.find(phase->name);
        if (it != open_phases.end()) {
          spread_phase(phase->name, it->second, t);
          open_phases.erase(it);
        }
      }
    } else if (const auto* sample = std::get_if<trace::SampleEvent>(&event)) {
      if (t < t_begin_ns || t >= t_end_ns) continue;
      FoldingBin& bin = result.bins[bin_of(t)];
      if (bin.sample_count == 0) {
        bin.min_addr = sample->addr;
        bin.max_addr = sample->addr;
      } else {
        bin.min_addr = std::min(bin.min_addr, sample->addr);
        bin.max_addr = std::max(bin.max_addr, sample->addr);
      }
      ++bin.sample_count;
    } else if (const auto* counter = std::get_if<trace::CounterEvent>(&event)) {
      if (counter->name != counter_name) continue;
      if (have_counter) {
        spread_instructions(last_counter_time, t,
                            counter->value - last_counter_value);
      }
      last_counter_time = t;
      last_counter_value = counter->value;
      have_counter = true;
    }
  }
  // Close any phase still open at the window end.
  for (const auto& [name, begin] : open_phases)
    spread_phase(name, begin, t_end_ns);

  for (std::size_t b = 0; b < bins; ++b) {
    double best_cover = 0;
    for (const auto& [name, cover] : phase_cover[b]) {
      if (cover > best_cover) {
        best_cover = cover;
        result.bins[b].dominant_phase = name;
      }
    }
    const double width_s = (result.bins[b].t_end_ns -
                            result.bins[b].t_begin_ns) * 1e-9;
    result.bins[b].mips =
        width_s > 0 ? result.bins[b].instructions / width_s / 1e6 : 0;
  }
  return result;
}

std::string folding_to_csv(const FoldingResult& result) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"bin", "t_mid_ms", "phase", "samples", "min_addr",
                    "max_addr", "mips"});
  for (std::size_t b = 0; b < result.bins.size(); ++b) {
    const auto& bin = result.bins[b];
    char t_mid[32], lo[32], hi[32], mips[32];
    std::snprintf(t_mid, sizeof(t_mid), "%.3f",
                  (bin.t_begin_ns + bin.t_end_ns) / 2.0 * 1e-6);
    std::snprintf(lo, sizeof(lo), "%" PRIx64, bin.min_addr);
    std::snprintf(hi, sizeof(hi), "%" PRIx64, bin.max_addr);
    std::snprintf(mips, sizeof(mips), "%.1f", bin.mips);
    writer.write_row({std::to_string(b), t_mid, bin.dominant_phase,
                      std::to_string(bin.sample_count), lo, hi, mips});
  }
  return os.str();
}

}  // namespace hmem::analysis
