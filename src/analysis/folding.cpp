#include "analysis/folding.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "common/csv.hpp"

namespace hmem::analysis {

FoldingVisitor::FoldingVisitor(double t_begin_ns, double t_end_ns,
                               std::size_t bins, std::string counter_name)
    : counter_name_(std::move(counter_name)), last_counter_time_(t_begin_ns) {
  HMEM_ASSERT(t_end_ns > t_begin_ns);
  HMEM_ASSERT(bins > 0);
  result_.t_begin_ns = t_begin_ns;
  result_.t_end_ns = t_end_ns;
  result_.bins.resize(bins);
  phase_cover_.resize(bins);
  const double bin_width =
      (t_end_ns - t_begin_ns) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    result_.bins[i].t_begin_ns =
        t_begin_ns + bin_width * static_cast<double>(i);
    result_.bins[i].t_end_ns = result_.bins[i].t_begin_ns + bin_width;
  }
}

std::size_t FoldingVisitor::bin_of(double t) const {
  const double frac =
      (t - result_.t_begin_ns) / (result_.t_end_ns - result_.t_begin_ns);
  const auto b = static_cast<std::size_t>(
      frac * static_cast<double>(result_.bins.size()));
  return std::min(b, result_.bins.size() - 1);
}

void FoldingVisitor::spread_phase(const std::string& name, double begin,
                                  double end) {
  const double lo = std::max(begin, result_.t_begin_ns);
  const double hi = std::min(end, result_.t_end_ns);
  if (hi <= lo) return;
  for (std::size_t b = bin_of(lo); b <= bin_of(hi - 1e-9); ++b) {
    const double cover_lo = std::max(lo, result_.bins[b].t_begin_ns);
    const double cover_hi = std::min(hi, result_.bins[b].t_end_ns);
    if (cover_hi > cover_lo) phase_cover_[b][name] += cover_hi - cover_lo;
  }
}

void FoldingVisitor::spread_instructions(double begin, double end,
                                         double count) {
  const double lo = std::max(begin, result_.t_begin_ns);
  const double hi = std::min(end, result_.t_end_ns);
  if (hi <= lo || count <= 0 || end <= begin) return;
  const double rate = count / (end - begin);
  for (std::size_t b = bin_of(lo); b <= bin_of(hi - 1e-9); ++b) {
    const double cover_lo = std::max(lo, result_.bins[b].t_begin_ns);
    const double cover_hi = std::min(hi, result_.bins[b].t_end_ns);
    if (cover_hi > cover_lo)
      result_.bins[b].instructions += rate * (cover_hi - cover_lo);
  }
}

void FoldingVisitor::on_sample(const trace::SampleEvent& e) {
  const double t = e.time_ns;
  if (t < result_.t_begin_ns || t >= result_.t_end_ns) return;
  FoldingBin& bin = result_.bins[bin_of(t)];
  if (bin.sample_count == 0) {
    bin.min_addr = e.addr;
    bin.max_addr = e.addr;
  } else {
    bin.min_addr = std::min(bin.min_addr, e.addr);
    bin.max_addr = std::max(bin.max_addr, e.addr);
  }
  ++bin.sample_count;
}

void FoldingVisitor::on_phase(const trace::PhaseEvent& e) {
  if (e.begin) {
    open_phases_[e.name] = e.time_ns;
    return;
  }
  const auto it = open_phases_.find(e.name);
  if (it != open_phases_.end()) {
    spread_phase(e.name, it->second, e.time_ns);
    open_phases_.erase(it);
  }
}

void FoldingVisitor::on_counter(const trace::CounterEvent& e) {
  if (e.name != counter_name_) return;
  if (have_counter_) {
    spread_instructions(last_counter_time_, e.time_ns,
                        e.value - last_counter_value_);
  }
  last_counter_time_ = e.time_ns;
  last_counter_value_ = e.value;
  have_counter_ = true;
}

FoldingResult FoldingVisitor::finish() {
  // Close any phase still open at the window end.
  for (const auto& [name, begin] : open_phases_)
    spread_phase(name, begin, result_.t_end_ns);
  open_phases_.clear();

  for (std::size_t b = 0; b < result_.bins.size(); ++b) {
    double best_cover = 0;
    for (const auto& [name, cover] : phase_cover_[b]) {
      if (cover > best_cover) {
        best_cover = cover;
        result_.bins[b].dominant_phase = name;
      }
    }
    const double width_s = (result_.bins[b].t_end_ns -
                            result_.bins[b].t_begin_ns) * 1e-9;
    result_.bins[b].mips =
        width_s > 0 ? result_.bins[b].instructions / width_s / 1e6 : 0;
  }
  return std::move(result_);
}

FoldingResult fold(const trace::TraceBuffer& trace, double t_begin_ns,
                   double t_end_ns, std::size_t bins,
                   const std::string& counter_name) {
  FoldingVisitor visitor(t_begin_ns, t_end_ns, bins, counter_name);
  trace::visit_buffer(trace, visitor);
  return visitor.finish();
}

FoldingResult fold_stream(trace::TraceReader& reader, double t_begin_ns,
                          double t_end_ns, std::size_t bins,
                          const std::string& counter_name) {
  FoldingVisitor visitor(t_begin_ns, t_end_ns, bins, counter_name);
  trace::pump(reader, visitor);
  return visitor.finish();
}

std::string folding_to_csv(const FoldingResult& result) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"bin", "t_mid_ms", "phase", "samples", "min_addr",
                    "max_addr", "mips"});
  for (std::size_t b = 0; b < result.bins.size(); ++b) {
    const auto& bin = result.bins[b];
    char t_mid[32], lo[32], hi[32], mips[32];
    std::snprintf(t_mid, sizeof(t_mid), "%.3f",
                  (bin.t_begin_ns + bin.t_end_ns) / 2.0 * 1e-6);
    std::snprintf(lo, sizeof(lo), "%" PRIx64, bin.min_addr);
    std::snprintf(hi, sizeof(hi), "%" PRIx64, bin.max_addr);
    std::snprintf(mips, sizeof(mips), "%.1f", bin.mips);
    writer.write_row({std::to_string(b), t_mid, bin.dominant_phase,
                      std::to_string(bin.sample_count), lo, hi, mips});
  }
  return os.str();
}

}  // namespace hmem::analysis
