// Incremental trace aggregation — the streaming counterpart of
// AggregateVisitor (ROADMAP #2, the ingestion core of hmem_served).
//
// AggregateVisitor is single-shot: feed the whole stream, call finish()
// once, the accumulators are consumed. IncrementalAggregator keeps the
// identical accumulator semantics — per-site miss counters, live max-size
// tracking, the open-phase binning stack — but exposes a non-destructive
// snapshot() that can be taken at ANY point mid-stream, any number of
// times, concurrently with the writer feeding events. The contract that
// makes the batch path a usable oracle:
//
//   snapshot() after the first k events  ==  AggregateVisitor fed the same
//                                            k events, then finish()
//
// field for field, bit for bit (asserted by tests/test_incremental.cpp and
// the prefix property in tests/test_fuzz.cpp). The implementations are
// deliberately independent — sharing the accumulator code would make the
// differential suite test nothing.
//
// On top of the exact counters, the aggregator maintains an optional
// exponentially *decayed* per-site miss view (half-life in sample events)
// and per-site live-byte tracking. These never influence snapshot() — they
// are the recency signal a serving advisor can rank by — so the exact
// convergence guarantee is unconditional.
//
// Thread safety: all mutating visitor callbacks and all readers
// (snapshot(), the version counters, the views) synchronize on one
// internal mutex, so one writer thread may stream events while other
// threads take snapshots — the serving pattern. The writer must still be a
// single thread (events must arrive in time order, as in the batch path).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/aggregator.hpp"
#include "callstack/sitedb.hpp"
#include "profiler/object_registry.hpp"
#include "trace/visitor.hpp"

namespace hmem::analysis {

struct IncrementalOptions {
  /// Half-life, in attributed sample events, of the decayed per-site miss
  /// view (decayed_misses()). Zero disables the decayed counters; the exact
  /// cumulative counters behind snapshot() are maintained regardless.
  double decay_half_life_samples = 0.0;
};

/// Atomic (single-lock) read of the whole-run object profile plus the
/// version counters that were current when it was taken — what
/// IncrementalAdvisor stores per solve so a concurrent writer can never
/// make a solved state look fresher than its input.
struct ObjectsView {
  std::vector<advisor::ObjectInfo> objects;  ///< == snapshot().objects
  std::uint64_t profile_version = 0;
  std::uint64_t version = 0;  ///< whole-run change counter at read time
  std::uint64_t attributed_misses = 0;
};

/// Same idea for one phase slice: == snapshot().phases[index].
struct PhaseView {
  advisor::PhaseObjects objects;
  std::uint64_t profile_version = 0;
  std::uint64_t version = 0;  ///< this phase's change counter at read time
  std::uint64_t misses = 0;   ///< weighted misses binned into this phase
};

class IncrementalAggregator : public trace::EventVisitor {
 public:
  explicit IncrementalAggregator(const callstack::SiteDb& sites,
                                 IncrementalOptions options = {});

  void on_alloc(const trace::AllocEvent& e) override;
  void on_free(const trace::FreeEvent& e) override;
  void on_sample(const trace::SampleEvent& e) override;
  void on_phase(const trace::PhaseEvent& e) override;
  void on_counter(const trace::CounterEvent& e) override;

  /// The batch-equivalent view of everything seen so far. Non-destructive;
  /// equals AggregateVisitor::finish() over the same event prefix exactly.
  AggregateResult snapshot() const;

  /// O(sites log sites) single-phase / whole-run reads for the amortized
  /// re-solve path (snapshot() is O(phases * sites log sites)).
  ObjectsView objects_view() const;
  PhaseView phase_view(std::size_t phase) const;

  // ---- Dirty-tracking counters -----------------------------------------
  // profile_version() moves when the *shape* of the profile changes — a new
  // site is seen or a site's max observed size grows — which invalidates
  // every phase slice (max_size/is_dynamic are whole-run properties).
  // version() moves with every whole-run-visible change (profile shape or
  // an attributed sample); phase_version(p) moves only when a sample is
  // binned into phase p. A reader that stored the counters alongside its
  // last consumed view can decide staleness without touching the profile.
  std::uint64_t profile_version() const;
  std::uint64_t version() const;
  std::size_t phase_count() const;
  std::string phase_name(std::size_t phase) const;
  std::uint64_t phase_version(std::size_t phase) const;
  std::uint64_t phase_misses(std::size_t phase) const;

  std::uint64_t events_seen() const;
  std::uint64_t samples_seen() const;
  std::uint64_t attributed_misses() const;

  // ---- Windowed/decayed + live views (never feed snapshot()) -----------
  /// Exponentially decayed weighted misses for a site, decayed to "now"
  /// (the current attributed-sample count). Zero when the option is off.
  double decayed_misses(callstack::SiteId site) const;
  /// Bytes currently live (allocated and not yet freed) at a site.
  std::uint64_t live_bytes(callstack::SiteId site) const;

 private:
  struct SiteAccum {
    std::uint64_t max_size = 0;
    std::uint64_t misses = 0;
    bool seen = false;
    std::uint64_t live_bytes = 0;
    double decayed = 0.0;
    std::uint64_t decayed_at = 0;  ///< attributed-sample clock of last touch
  };
  struct PhaseAccum {
    std::string name;
    std::vector<std::uint64_t> misses;  ///< indexed by SiteId
    std::uint64_t total = 0;
    std::uint64_t version = 0;
  };

  void check_order(double t);
  SiteAccum& accum_for(callstack::SiteId site);
  std::size_t phase_accum_for(const std::string& name);
  std::vector<advisor::ObjectInfo> build_objects() const;  // caller holds mu_
  advisor::PhaseObjects build_phase(
      const PhaseAccum& pa, const std::vector<advisor::ObjectInfo>& whole)
      const;

  mutable std::mutex mu_;
  const callstack::SiteDb* sites_;
  IncrementalOptions options_;
  std::vector<SiteAccum> accum_;
  std::vector<PhaseAccum> phase_accum_;   ///< first-seen phase-name order
  std::vector<std::size_t> open_phases_;  ///< indices into phase_accum_
  profiler::ObjectRegistry registry_;
  double last_time_ = -1.0;

  std::uint64_t events_ = 0;
  std::uint64_t samples_ = 0;  ///< attributed-sample clock for decay
  std::uint64_t total_samples_ = 0;
  std::uint64_t total_weighted_misses_ = 0;
  std::uint64_t unattributed_samples_ = 0;
  std::uint64_t unattributed_misses_ = 0;
  std::uint64_t profile_version_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace hmem::analysis
