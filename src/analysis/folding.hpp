// Folding — time-evolution analysis (the paper's Figure 5).
//
// The BSC Folding technique combines coarse-grained samples from many
// iterations into a detailed time-evolution view. Our trace already carries
// everything needed for the three Figure 5 panels: phase events (which
// routine executes), sampled references (which addresses are touched) and
// instruction counters (MIPS). fold() bins a time window into N slots and
// reports, per slot, the dominant routine, the sampled address extremes and
// the achieved MIPS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace hmem::analysis {

struct FoldingBin {
  double t_begin_ns = 0;
  double t_end_ns = 0;
  /// Routine (phase name) covering the largest share of the bin.
  std::string dominant_phase;
  /// Sampled referenced addresses falling in the bin.
  std::uint64_t sample_count = 0;
  trace::Address min_addr = 0;
  trace::Address max_addr = 0;
  /// Instructions retired in the bin (from the "instructions" counter) and
  /// the derived MIPS rate.
  double instructions = 0;
  double mips = 0;
};

struct FoldingResult {
  std::vector<FoldingBin> bins;
  double t_begin_ns = 0;
  double t_end_ns = 0;
};

/// Folds the [t_begin, t_end) window of a trace into `bins` slots. The
/// instruction counter must be cumulative readings named `counter_name`.
FoldingResult fold(const trace::TraceBuffer& trace, double t_begin_ns,
                   double t_end_ns, std::size_t bins,
                   const std::string& counter_name = "instructions");

/// Renders the three-panel view as CSV: bin, t_mid_ms, phase, samples,
/// min_addr, max_addr, mips.
std::string folding_to_csv(const FoldingResult& result);

}  // namespace hmem::analysis
