// Folding — time-evolution analysis (the paper's Figure 5).
//
// The BSC Folding technique combines coarse-grained samples from many
// iterations into a detailed time-evolution view. Our trace already carries
// everything needed for the three Figure 5 panels: phase events (which
// routine executes), sampled references (which addresses are touched) and
// instruction counters (MIPS). The analysis bins a time window into N slots
// and reports, per slot, the dominant routine, the sampled address extremes
// and the achieved MIPS.
//
// FoldingVisitor is the single-pass streaming form: per-bin state only,
// never the trace. fold() is the buffered adapter, fold_stream() the
// TraceReader one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/visitor.hpp"

namespace hmem::analysis {

struct FoldingBin {
  double t_begin_ns = 0;
  double t_end_ns = 0;
  /// Routine (phase name) covering the largest share of the bin.
  std::string dominant_phase;
  /// Sampled referenced addresses falling in the bin.
  std::uint64_t sample_count = 0;
  trace::Address min_addr = 0;
  trace::Address max_addr = 0;
  /// Instructions retired in the bin (from the "instructions" counter) and
  /// the derived MIPS rate.
  double instructions = 0;
  double mips = 0;
};

struct FoldingResult {
  std::vector<FoldingBin> bins;
  double t_begin_ns = 0;
  double t_end_ns = 0;
};

/// Streams events once and folds the [t_begin, t_end) window into `bins`
/// slots. The instruction counter must be cumulative readings named
/// `counter_name`. Call finish() exactly once after the last event.
class FoldingVisitor : public trace::EventVisitor {
 public:
  FoldingVisitor(double t_begin_ns, double t_end_ns, std::size_t bins,
                 std::string counter_name = "instructions");

  void on_sample(const trace::SampleEvent& e) override;
  void on_phase(const trace::PhaseEvent& e) override;
  void on_counter(const trace::CounterEvent& e) override;

  FoldingResult finish();

 private:
  std::size_t bin_of(double t) const;
  void spread_phase(const std::string& name, double begin, double end);
  void spread_instructions(double begin, double end, double count);

  std::string counter_name_;
  FoldingResult result_;
  /// Phase coverage per bin: phase name -> covered ns. Phases may span bins.
  std::vector<std::map<std::string, double>> phase_cover_;
  std::map<std::string, double> open_phases_;  ///< name -> begin time
  double last_counter_time_;
  double last_counter_value_ = 0;
  bool have_counter_ = false;
};

/// Folds the [t_begin, t_end) window of a buffered trace (adapter over
/// FoldingVisitor).
FoldingResult fold(const trace::TraceBuffer& trace, double t_begin_ns,
                   double t_end_ns, std::size_t bins,
                   const std::string& counter_name = "instructions");

/// Same, pulling from a TraceReader in one pass.
FoldingResult fold_stream(trace::TraceReader& reader, double t_begin_ns,
                          double t_end_ns, std::size_t bins,
                          const std::string& counter_name = "instructions");

/// Renders the three-panel view as CSV: bin, t_mid_ms, phase, samples,
/// min_addr, max_addr, mips.
std::string folding_to_csv(const FoldingResult& result);

}  // namespace hmem::analysis
