// Trace aggregation — the Paramedir substitute (stage 2).
//
// Replays a trace in time order, maintaining the live-object map, and
// produces one ObjectInfo row per allocation site: the access cost
// (weighted sampled LLC misses attributed to live ranges) and the object's
// size. "If an application loops over a data allocation, the call-stack will
// be the same for each iteration ... we report the maximum requested size
// observed for each repeated allocation site."
//
// The aggregation is a single-pass streaming visitor: it holds per-site
// accumulators and the live-range map, never the trace itself, so it scales
// to arbitrarily long event streams (feed it from a TraceReader — possibly
// a k-way merge over per-rank shards — or straight from the profiler via a
// VisitorSink). aggregate_trace() is the buffered-path adapter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/object_info.hpp"
#include "advisor/phase_advisor.hpp"
#include "callstack/sitedb.hpp"
#include "profiler/object_registry.hpp"
#include "trace/format.hpp"
#include "trace/visitor.hpp"

namespace hmem::analysis {

struct AggregateResult {
  std::vector<advisor::ObjectInfo> objects;
  /// Per-phase slices of `objects`, in first-seen phase order: the same
  /// sites (same max_size/is_dynamic, same descending-miss sort) with
  /// llc_misses restricted to samples taken while that phase was open.
  /// Single-phase traces therefore yield phases[0].objects == objects,
  /// which is what makes a single-phase PlacementSchedule bit-identical to
  /// the static placement. Input for advisor::PhaseAdvisor.
  std::vector<advisor::PhaseObjects> phases;
  /// Samples whose address matched no live object (stack/static traffic the
  /// allocation instrumentation never saw; BT/CGPOP before the paper's
  /// hand modification are the canonical case).
  std::uint64_t unattributed_samples = 0;
  std::uint64_t unattributed_misses = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t total_weighted_misses = 0;

  double unattributed_fraction() const {
    return total_samples > 0 ? static_cast<double>(unattributed_samples) /
                                   static_cast<double>(total_samples)
                             : 0.0;
  }
};

/// Single-pass streaming aggregation. Feed events (in non-decreasing time
/// order — asserted), then call finish() exactly once. The SiteDb may still
/// be growing while events stream in (the format readers intern sites
/// lazily); it is only consulted per referenced site and at finish().
class AggregateVisitor : public trace::EventVisitor {
 public:
  explicit AggregateVisitor(const callstack::SiteDb& sites);

  void on_alloc(const trace::AllocEvent& e) override;
  void on_free(const trace::FreeEvent& e) override;
  void on_sample(const trace::SampleEvent& e) override;
  void on_phase(const trace::PhaseEvent& e) override;
  void on_counter(const trace::CounterEvent& e) override;

  /// Finalizes: one ObjectInfo per seen site, sorted by descending misses.
  AggregateResult finish();

 private:
  struct SiteAccum {
    std::uint64_t max_size = 0;
    std::uint64_t misses = 0;
    bool seen = false;
  };
  /// Per-phase miss accumulator (max_size/is_dynamic stay whole-run).
  struct PhaseAccum {
    std::string name;
    std::vector<std::uint64_t> misses;  ///< indexed by SiteId
  };

  void check_order(double t);
  SiteAccum& accum_for(callstack::SiteId site);
  std::size_t phase_accum_for(const std::string& name);

  const callstack::SiteDb* sites_;
  std::vector<SiteAccum> accum_;
  std::vector<PhaseAccum> phase_accum_;  ///< first-seen phase-name order
  /// Open-phase tracking. A single-rank trace opens/closes phases strictly
  /// sequentially; a k-way *merged* multi-rank stream interleaves the same
  /// phase names across ranks (phase events carry no rank id), so begins
  /// are stacked and a sample is binned into the most recently begun phase
  /// still open — deterministic, exact for single-rank traces, and at worst
  /// a boundary smear for merged ones.
  std::vector<std::size_t> open_phases_;  ///< indices into phase_accum_
  profiler::ObjectRegistry registry_;
  double last_time_ = -1.0;
  AggregateResult result_;
};

/// Aggregates a buffered trace against the site database that produced it.
/// Thin adapter over AggregateVisitor; kept for tests and small traces.
AggregateResult aggregate_trace(const trace::TraceBuffer& trace,
                                const callstack::SiteDb& sites);

/// Aggregates a pull stream (single shard or k-way merge) in one pass.
/// `sites` must be the database the reader interns into.
AggregateResult aggregate_stream(trace::TraceReader& reader,
                                 const callstack::SiteDb& sites);

/// Paramedir's CSV view of the aggregation: one row per object, sorted by
/// descending misses. Columns: name, site, dynamic, max_size, llc_misses,
/// density(misses/KiB).
std::string objects_to_csv(const std::vector<advisor::ObjectInfo>& objects);

/// Parses the CSV back (tests + tool interop). Call-stacks are not part of
/// the CSV, so the result carries name/size/misses only; full round-trip
/// object identity flows through the placement report instead.
std::vector<advisor::ObjectInfo> objects_from_csv(const std::string& text);

}  // namespace hmem::analysis
