// Trace aggregation — the Paramedir substitute (stage 2).
//
// Replays a trace in time order, maintaining the live-object map, and
// produces one ObjectInfo row per allocation site: the access cost
// (weighted sampled LLC misses attributed to live ranges) and the object's
// size. "If an application loops over a data allocation, the call-stack will
// be the same for each iteration ... we report the maximum requested size
// observed for each repeated allocation site."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/object_info.hpp"
#include "callstack/sitedb.hpp"
#include "trace/event.hpp"

namespace hmem::analysis {

struct AggregateResult {
  std::vector<advisor::ObjectInfo> objects;
  /// Samples whose address matched no live object (stack/static traffic the
  /// allocation instrumentation never saw; BT/CGPOP before the paper's
  /// hand modification are the canonical case).
  std::uint64_t unattributed_samples = 0;
  std::uint64_t unattributed_misses = 0;
  std::uint64_t total_samples = 0;
  std::uint64_t total_weighted_misses = 0;

  double unattributed_fraction() const {
    return total_samples > 0 ? static_cast<double>(unattributed_samples) /
                                   static_cast<double>(total_samples)
                             : 0.0;
  }
};

/// Aggregates a trace against the site database that produced it.
/// Events must be in non-decreasing time order (asserted).
AggregateResult aggregate_trace(const trace::TraceBuffer& trace,
                                const callstack::SiteDb& sites);

/// Paramedir's CSV view of the aggregation: one row per object, sorted by
/// descending misses. Columns: name, site, dynamic, max_size, llc_misses,
/// density(misses/KiB).
std::string objects_to_csv(const std::vector<advisor::ObjectInfo>& objects);

/// Parses the CSV back (tests + tool interop). Call-stacks are not part of
/// the CSV, so the result carries name/size/misses only; full round-trip
/// object identity flows through the placement report instead.
std::vector<advisor::ObjectInfo> objects_from_csv(const std::string& text);

}  // namespace hmem::analysis
