#include "analysis/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hmem::analysis {

namespace {

/// The one ordering every profile consumer sees: descending misses, site id
/// as the total tie-break. Identical to AggregateVisitor::finish() — the
/// comparator is a strict total order, so sorted output is independent of
/// input order and bit-comparable across the two implementations.
bool by_misses(const advisor::ObjectInfo& a, const advisor::ObjectInfo& b) {
  if (a.llc_misses != b.llc_misses) return a.llc_misses > b.llc_misses;
  return a.site < b.site;
}

}  // namespace

IncrementalAggregator::IncrementalAggregator(const callstack::SiteDb& sites,
                                             IncrementalOptions options)
    : sites_(&sites), options_(options) {
  accum_.resize(sites.size());
}

void IncrementalAggregator::check_order(double t) {
  HMEM_ASSERT_MSG(t >= last_time_, "trace events out of time order");
  last_time_ = t;
}

IncrementalAggregator::SiteAccum& IncrementalAggregator::accum_for(
    callstack::SiteId site) {
  HMEM_ASSERT_MSG(site < sites_->size(),
                  "event references a site missing from the SiteDb");
  if (site >= accum_.size()) accum_.resize(sites_->size());
  return accum_[site];
}

void IncrementalAggregator::on_alloc(const trace::AllocEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  check_order(e.time_ns);
  ++events_;
  SiteAccum& sa = accum_for(e.site);
  if (!sa.seen || e.size > sa.max_size) {
    // A new site or a grown max-size reshapes every phase slice (max_size
    // is a whole-run property carried into each phase), so this is the
    // profile-wide invalidation signal.
    ++profile_version_;
    ++version_;
  }
  sa.seen = true;
  sa.max_size = std::max(sa.max_size, e.size);
  sa.live_bytes += e.size;
  registry_.on_alloc(e.addr, e.size, e.site);
}

void IncrementalAggregator::on_free(const trace::FreeEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  check_order(e.time_ns);
  ++events_;
  const auto obj = registry_.on_free(e.addr);
  if (obj) {
    SiteAccum& sa = accum_for(obj->site);
    sa.live_bytes -= std::min(sa.live_bytes, obj->size);
  }
}

void IncrementalAggregator::on_sample(const trace::SampleEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  check_order(e.time_ns);
  ++events_;
  ++total_samples_;
  total_weighted_misses_ += e.weight;
  const auto obj = registry_.lookup(e.addr);
  if (!obj) {
    ++unattributed_samples_;
    unattributed_misses_ += e.weight;
    return;
  }
  ++samples_;
  ++version_;
  SiteAccum& sa = accum_for(obj->site);
  sa.misses += e.weight;
  if (options_.decay_half_life_samples > 0) {
    // Lazy decay: only the touched site pays the pow(); every other site's
    // value decays arithmetically at read time from its stored clock.
    const double elapsed = static_cast<double>(samples_ - sa.decayed_at);
    sa.decayed *= std::exp2(-elapsed / options_.decay_half_life_samples);
    sa.decayed += static_cast<double>(e.weight);
    sa.decayed_at = samples_;
  }
  if (!open_phases_.empty()) {
    PhaseAccum& pa = phase_accum_[open_phases_.back()];
    if (obj->site >= pa.misses.size()) pa.misses.resize(sites_->size(), 0);
    pa.misses[obj->site] += e.weight;
    pa.total += e.weight;
    ++pa.version;
  }
}

std::size_t IncrementalAggregator::phase_accum_for(const std::string& name) {
  for (std::size_t i = 0; i < phase_accum_.size(); ++i) {
    if (phase_accum_[i].name == name) return i;
  }
  phase_accum_.push_back(PhaseAccum{name, {}, 0, 0});
  return phase_accum_.size() - 1;
}

void IncrementalAggregator::on_phase(const trace::PhaseEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  check_order(e.time_ns);
  ++events_;
  const std::size_t idx = phase_accum_for(e.name);
  if (e.begin) {
    open_phases_.push_back(idx);
    return;
  }
  // Close the most recent begin of this name (merged multi-rank streams may
  // deliver ends out of stack order); an unmatched end is ignored — the
  // same rules as the batch aggregator.
  for (std::size_t i = open_phases_.size(); i-- > 0;) {
    if (open_phases_[i] == idx) {
      open_phases_.erase(open_phases_.begin() +
                         static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void IncrementalAggregator::on_counter(const trace::CounterEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  check_order(e.time_ns);
  ++events_;
}

std::vector<advisor::ObjectInfo> IncrementalAggregator::build_objects()
    const {
  std::vector<advisor::ObjectInfo> objects;
  for (callstack::SiteId id = 0; id < accum_.size(); ++id) {
    if (!accum_[id].seen) continue;
    const auto& info = sites_->get(id);
    advisor::ObjectInfo obj;
    obj.site = id;
    obj.name = info.object_name;
    obj.stack = info.stack;
    obj.max_size_bytes = accum_[id].max_size;
    obj.llc_misses = accum_[id].misses;
    obj.is_dynamic = info.is_dynamic;
    objects.push_back(std::move(obj));
  }
  std::sort(objects.begin(), objects.end(), by_misses);
  return objects;
}

advisor::PhaseObjects IncrementalAggregator::build_phase(
    const PhaseAccum& pa,
    const std::vector<advisor::ObjectInfo>& whole) const {
  advisor::PhaseObjects phase;
  phase.name = pa.name;
  phase.objects.reserve(whole.size());
  for (const advisor::ObjectInfo& whole_obj : whole) {
    advisor::ObjectInfo obj = whole_obj;
    obj.llc_misses =
        whole_obj.site < pa.misses.size() ? pa.misses[whole_obj.site] : 0;
    phase.objects.push_back(std::move(obj));
  }
  std::sort(phase.objects.begin(), phase.objects.end(), by_misses);
  return phase;
}

AggregateResult IncrementalAggregator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AggregateResult out;
  out.objects = build_objects();
  out.phases.reserve(phase_accum_.size());
  for (const PhaseAccum& pa : phase_accum_) {
    out.phases.push_back(build_phase(pa, out.objects));
  }
  out.unattributed_samples = unattributed_samples_;
  out.unattributed_misses = unattributed_misses_;
  out.total_samples = total_samples_;
  out.total_weighted_misses = total_weighted_misses_;
  return out;
}

ObjectsView IncrementalAggregator::objects_view() const {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectsView view;
  view.objects = build_objects();
  view.profile_version = profile_version_;
  view.version = version_;
  view.attributed_misses = total_weighted_misses_ - unattributed_misses_;
  return view;
}

PhaseView IncrementalAggregator::phase_view(std::size_t phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  HMEM_ASSERT_MSG(phase < phase_accum_.size(), "phase index out of range");
  const PhaseAccum& pa = phase_accum_[phase];
  PhaseView view;
  view.objects = build_phase(pa, build_objects());
  view.profile_version = profile_version_;
  view.version = pa.version;
  view.misses = pa.total;
  return view;
}

std::uint64_t IncrementalAggregator::profile_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_version_;
}

std::uint64_t IncrementalAggregator::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::size_t IncrementalAggregator::phase_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase_accum_.size();
}

std::string IncrementalAggregator::phase_name(std::size_t phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  HMEM_ASSERT_MSG(phase < phase_accum_.size(), "phase index out of range");
  return phase_accum_[phase].name;
}

std::uint64_t IncrementalAggregator::phase_version(std::size_t phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  HMEM_ASSERT_MSG(phase < phase_accum_.size(), "phase index out of range");
  return phase_accum_[phase].version;
}

std::uint64_t IncrementalAggregator::phase_misses(std::size_t phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  HMEM_ASSERT_MSG(phase < phase_accum_.size(), "phase index out of range");
  return phase_accum_[phase].total;
}

std::uint64_t IncrementalAggregator::events_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t IncrementalAggregator::samples_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

std::uint64_t IncrementalAggregator::attributed_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_weighted_misses_ - unattributed_misses_;
}

double IncrementalAggregator::decayed_misses(callstack::SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.decay_half_life_samples <= 0 || site >= accum_.size()) {
    return 0.0;
  }
  const SiteAccum& sa = accum_[site];
  const double elapsed = static_cast<double>(samples_ - sa.decayed_at);
  return sa.decayed * std::exp2(-elapsed / options_.decay_half_life_samples);
}

std::uint64_t IncrementalAggregator::live_bytes(
    callstack::SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site < accum_.size() ? accum_[site].live_bytes : 0;
}

}  // namespace hmem::analysis
