// PEBS-style hardware sampling of LLC misses.
//
// The paper samples one out of every 37,589 L2 (LLC) cache misses via PEBS,
// capturing the referenced address. We reproduce the mechanism exactly: a
// down-counter armed with the period fires on overflow and records the
// triggering access. The reset value can be randomised within a small
// jitter window — real PMU drivers do this to avoid phase-locking onto
// loop structures — and both the period and the jitter are configurable so
// the sampling-accuracy ablation can sweep them.
//
// On Xeon Phi, PEBS reports only the address for L2 events; on Xeon it adds
// load latency and the serving memory level. SampleRecord carries the
// optional fields so the richer infrastructure is representable (the paper
// calls this out as a future refinement), but the KNL-profile pipeline only
// consumes the address.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/prng.hpp"
#include "memsim/address.hpp"

namespace hmem::pebs {

using memsim::Address;

struct SampleRecord {
  double time_ns = 0;
  Address addr = 0;
  bool is_write = false;
  std::uint64_t weight = 1;  ///< sampling period at the time of capture
  /// Xeon-only extras (unused on the KNL profile, see header comment).
  std::optional<double> latency_ns;
  std::optional<int> mem_level;
};

struct SamplerConfig {
  /// Paper value: one sample every 37,589 LLC misses.
  std::uint64_t period = 37589;
  /// Fractional jitter applied to each re-arm (0 = strictly periodic).
  double jitter = 0.05;
  std::uint64_t seed = 0x5eb5;
};

class PebsSampler {
 public:
  explicit PebsSampler(SamplerConfig config);

  /// Feed one LLC miss; returns a record when the counter overflowed.
  std::optional<SampleRecord> on_llc_miss(double time_ns, Address addr,
                                          bool is_write);

  /// Feed `count` misses sharing one representative address (the execution
  /// engine simulates sampled access streams where each simulated miss
  /// stands for many real ones). Returns the number of overflows fired;
  /// each fire represents `period` misses.
  std::uint64_t on_llc_misses(double time_ns, Address addr, bool is_write,
                              std::uint64_t count);

  std::uint64_t misses_seen() const { return misses_seen_; }
  std::uint64_t samples_taken() const { return samples_taken_; }
  const SamplerConfig& config() const { return config_; }

  void reset();

 private:
  void arm();

  SamplerConfig config_;
  hmem::Xoshiro256 rng_;
  std::uint64_t countdown_ = 0;
  std::uint64_t misses_seen_ = 0;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace hmem::pebs
