#include "pebs/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hmem::pebs {

PebsSampler::PebsSampler(SamplerConfig config)
    : config_(config), rng_(config.seed) {
  HMEM_ASSERT(config_.period > 0);
  HMEM_ASSERT(config_.jitter >= 0.0 && config_.jitter < 1.0);
  arm();
}

void PebsSampler::arm() {
  if (config_.jitter == 0.0) {
    countdown_ = config_.period;
    return;
  }
  const auto p = static_cast<double>(config_.period);
  const double lo = p * (1.0 - config_.jitter);
  const double hi = p * (1.0 + config_.jitter);
  const double v = lo + (hi - lo) * rng_.uniform();
  countdown_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(v)));
}

std::optional<SampleRecord> PebsSampler::on_llc_miss(double time_ns,
                                                     Address addr,
                                                     bool is_write) {
  ++misses_seen_;
  HMEM_ASSERT(countdown_ > 0);
  if (--countdown_ > 0) return std::nullopt;
  ++samples_taken_;
  arm();
  SampleRecord rec;
  rec.time_ns = time_ns;
  rec.addr = addr;
  rec.is_write = is_write;
  rec.weight = config_.period;
  return rec;
}

std::uint64_t PebsSampler::on_llc_misses(double time_ns, Address addr,
                                         bool is_write, std::uint64_t count) {
  (void)time_ns;
  (void)addr;
  (void)is_write;
  misses_seen_ += count;
  std::uint64_t fires = 0;
  std::uint64_t remaining = count;
  while (remaining >= countdown_) {
    remaining -= countdown_;
    ++fires;
    ++samples_taken_;
    arm();
  }
  countdown_ -= remaining;
  return fires;
}

void PebsSampler::reset() {
  misses_seen_ = 0;
  samples_taken_ = 0;
  arm();
}

}  // namespace hmem::pebs
