// Call-stack representation.
//
// The paper identifies dynamically-allocated objects by their allocation
// call-stack (glibc backtrace() + binutils translation). We keep the same
// two views:
//  * CallStack        — the raw, run-specific return addresses (what
//                       backtrace() yields; shifted by ASLR every run);
//  * SymbolicCallStack — module!function:line frames (what binutils
//                       translation yields; stable across runs and the form
//                       stored in advisor reports).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/address.hpp"

namespace hmem::callstack {

using memsim::Address;

/// One translated frame: module, function and source line.
struct CodeLocation {
  std::string module;
  std::string function;
  std::uint32_t line = 0;

  bool operator==(const CodeLocation&) const = default;

  /// Canonical text form: "module!function:line".
  std::string to_string() const;
  /// Parses the canonical form; returns false on malformed input.
  static bool from_string(const std::string& text, CodeLocation& out);
};

/// Raw (runtime) call-stack: innermost frame first.
struct CallStack {
  std::vector<Address> frames;

  bool operator==(const CallStack&) const = default;
  std::size_t depth() const { return frames.size(); }

  /// 64-bit mixing hash; used as the key of the interposer's decision cache
  /// (the paper's "small cache indexed by the unwound addresses").
  std::uint64_t hash() const;
};

/// Symbolic (translated) call-stack: innermost frame first.
struct SymbolicCallStack {
  std::vector<CodeLocation> frames;

  bool operator==(const SymbolicCallStack&) const = default;
  std::size_t depth() const { return frames.size(); }

  /// Canonical text form: frames joined by " < " (innermost first), the
  /// format used in placement reports.
  std::string to_string() const;
  static bool from_string(const std::string& text, SymbolicCallStack& out);

  std::uint64_t hash() const;
};

}  // namespace hmem::callstack

template <>
struct std::hash<hmem::callstack::CallStack> {
  std::size_t operator()(const hmem::callstack::CallStack& cs) const {
    return static_cast<std::size_t>(cs.hash());
  }
};

template <>
struct std::hash<hmem::callstack::SymbolicCallStack> {
  std::size_t operator()(const hmem::callstack::SymbolicCallStack& cs) const {
    return static_cast<std::size_t>(cs.hash());
  }
};
