#include "callstack/sitedb.hpp"

#include "common/assert.hpp"

namespace hmem::callstack {

SiteId SiteDb::intern(const std::string& object_name,
                      const SymbolicCallStack& stack, bool is_dynamic) {
  const auto it = by_stack_.find(stack);
  if (it != by_stack_.end()) return it->second;
  const auto id = static_cast<SiteId>(sites_.size());
  HMEM_ASSERT(id != kInvalidSite);
  sites_.push_back(SiteInfo{id, object_name, stack, is_dynamic});
  by_stack_[stack] = id;
  return id;
}

const SiteInfo& SiteDb::get(SiteId id) const {
  HMEM_ASSERT(id < sites_.size());
  return sites_[id];
}

std::optional<SiteId> SiteDb::find(const SymbolicCallStack& stack) const {
  const auto it = by_stack_.find(stack);
  if (it == by_stack_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hmem::callstack
