// Allocation-site registry.
//
// Every distinct allocation call-stack is one "site" — the unit at which the
// paper's whole pipeline operates: Paramedir aggregates LLC misses per site,
// hmem_advisor selects sites, and auto-hbwmalloc matches intercepted
// call-stacks against the selected sites. Sites are interned to small dense
// ids so the hot paths index vectors instead of hashing strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "callstack/callstack.hpp"

namespace hmem::callstack {

using SiteId = std::uint32_t;
inline constexpr SiteId kInvalidSite = 0xffffffffu;

struct SiteInfo {
  SiteId id = kInvalidSite;
  /// Human-readable object name ("matrix A", "x_overlap", ...). Static
  /// variables are referenced by name in the paper; dynamic ones get the
  /// name the app declared for readability of reports.
  std::string object_name;
  SymbolicCallStack stack;
  /// Static/automatic variables cannot be retargeted by the interposer
  /// (paper: "statically allocated objects cannot be migrated ... without
  /// modifying the application code").
  bool is_dynamic = true;
};

class SiteDb {
 public:
  /// Interns a site; returns the existing id when the call-stack was seen
  /// before (name/is_dynamic of the first registration win).
  SiteId intern(const std::string& object_name,
                const SymbolicCallStack& stack, bool is_dynamic = true);

  const SiteInfo& get(SiteId id) const;
  std::optional<SiteId> find(const SymbolicCallStack& stack) const;

  std::size_t size() const { return sites_.size(); }
  const std::vector<SiteInfo>& all() const { return sites_; }

 private:
  std::vector<SiteInfo> sites_;
  std::unordered_map<SymbolicCallStack, SiteId> by_stack_;
};

}  // namespace hmem::callstack
