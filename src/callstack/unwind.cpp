#include "callstack/unwind.hpp"

namespace hmem::callstack {

CallStack Unwinder::unwind(const SymbolicCallStack& context) {
  ++calls_;
  total_cost_ns_ += cost_.unwind_ns(context.depth());
  return modules_->materialize(context);
}

std::optional<SymbolicCallStack> Translator::translate(
    const CallStack& stack) {
  ++calls_;
  total_cost_ns_ += cost_.translate_ns(stack.depth());
  return modules_->translate(stack);
}

}  // namespace hmem::callstack
