// Module map with per-run ASLR slides.
//
// The paper stresses that ASLR forces auto-hbwmalloc to *translate* unwound
// addresses at run time — raw addresses from the profiling run do not match
// the production run. We model a process image as a set of modules, each
// with a link-time base and a per-run random slide. Code locations are
// materialised to runtime addresses on first use (each location gets a
// stable offset inside its module), and the reverse mapping implements the
// binutils-style translation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "callstack/callstack.hpp"

namespace hmem::callstack {

struct ModuleInfo {
  std::string name;
  Address link_base = 0;   ///< address the module was linked at
  std::uint64_t size = 0;  ///< code-range size
  Address slide = 0;       ///< per-run ASLR displacement (multiple of a page)
};

class ModuleMap {
 public:
  /// Registers a module. Ranges (after any slide) must not overlap; callers
  /// use well-separated link bases. Returns the module index.
  std::size_t add_module(const std::string& name, Address link_base,
                         std::uint64_t size);

  /// Re-randomises every module's slide — "a new process execution".
  /// Deterministic in the seed. Slides are page-aligned and bounded so
  /// modules never overlap.
  void randomize_slides(std::uint64_t seed);

  /// Runtime (slid) address for a code location; assigns and memoises an
  /// offset inside the module on first use. The module must exist.
  Address runtime_address(const CodeLocation& loc);

  /// binutils-style reverse translation: runtime address -> code location.
  /// nullopt when the address does not fall in any known module or has no
  /// assigned location.
  std::optional<CodeLocation> translate(Address runtime_addr) const;

  /// Translates a whole raw stack; returns nullopt if any frame fails.
  std::optional<SymbolicCallStack> translate(const CallStack& stack) const;

  /// Materialises a symbolic stack to raw runtime addresses (what the
  /// unwinder would return for this process image).
  CallStack materialize(const SymbolicCallStack& stack);

  const std::vector<ModuleInfo>& modules() const { return modules_; }
  std::optional<std::size_t> find_module(const std::string& name) const;

 private:
  struct LocationKey {
    std::string function;
    std::uint32_t line;
    bool operator==(const LocationKey&) const = default;
  };
  struct LocationKeyHash {
    std::size_t operator()(const LocationKey& k) const {
      std::size_t h = std::hash<std::string>{}(k.function);
      return h ^ (std::hash<std::uint32_t>{}(k.line) + 0x9e3779b9 + (h << 6));
    }
  };
  struct ModuleState {
    std::unordered_map<LocationKey, std::uint64_t, LocationKeyHash> offsets;
    std::vector<CodeLocation> by_slot;  ///< slot index -> location
  };

  /// Bytes reserved per code location inside a module.
  static constexpr std::uint64_t kSlotBytes = 16;

  std::vector<ModuleInfo> modules_;
  std::vector<ModuleState> states_;
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace hmem::callstack
