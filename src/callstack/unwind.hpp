// Unwinder and translator with the paper's Figure 3 cost model.
//
// auto-hbwmalloc pays two costs on every intercepted allocation: unwinding
// the call-stack (glibc backtrace) and translating its frames (binutils,
// needed because ASLR invalidates raw addresses across runs). Figure 3
// measures both against call-stack depth on the Xeon Phi 7250: unwinding a
// short stack costs more than translating it, but translation cost grows
// faster per frame and overtakes unwinding past depth ~6. We implement the
// actual mechanics (materialisation / reverse lookup through ModuleMap) and
// attach a calibrated nanosecond cost model so the execution engine can
// charge interposition overhead to simulated time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "callstack/callstack.hpp"
#include "callstack/modulemap.hpp"

namespace hmem::callstack {

/// Calibrated to reproduce Figure 3's shape: cost(depth) = base + slope *
/// depth, translate slope > unwind slope, crossover at depth 6.
struct CostModel {
  double unwind_base_ns = 10800.0;
  double unwind_per_frame_ns = 1300.0;
  double translate_base_ns = 3600.0;
  double translate_per_frame_ns = 2500.0;

  double unwind_ns(std::size_t depth) const {
    return unwind_base_ns + unwind_per_frame_ns * static_cast<double>(depth);
  }
  double translate_ns(std::size_t depth) const {
    return translate_base_ns +
           translate_per_frame_ns * static_cast<double>(depth);
  }
  /// Depth above which translation becomes the dominant cost.
  double crossover_depth() const {
    return (unwind_base_ns - translate_base_ns) /
           (translate_per_frame_ns - unwind_per_frame_ns);
  }
};

/// Simulated backtrace(): produces the raw runtime stack for the current
/// allocation context and accounts the unwind cost.
class Unwinder {
 public:
  explicit Unwinder(ModuleMap& modules, CostModel cost = {})
      : modules_(&modules), cost_(cost) {}

  /// `context` is the symbolic truth of where the program currently is; the
  /// result is what backtrace() would return in this process image.
  CallStack unwind(const SymbolicCallStack& context);

  double total_cost_ns() const { return total_cost_ns_; }
  std::uint64_t calls() const { return calls_; }
  const CostModel& cost_model() const { return cost_; }
  void reset_stats() {
    total_cost_ns_ = 0;
    calls_ = 0;
  }

 private:
  ModuleMap* modules_;
  CostModel cost_;
  double total_cost_ns_ = 0;
  std::uint64_t calls_ = 0;
};

/// Simulated binutils translation: raw runtime stack -> symbolic stack.
class Translator {
 public:
  explicit Translator(const ModuleMap& modules, CostModel cost = {})
      : modules_(&modules), cost_(cost) {}

  std::optional<SymbolicCallStack> translate(const CallStack& stack);

  double total_cost_ns() const { return total_cost_ns_; }
  std::uint64_t calls() const { return calls_; }
  const CostModel& cost_model() const { return cost_; }
  void reset_stats() {
    total_cost_ns_ = 0;
    calls_ = 0;
  }

 private:
  const ModuleMap* modules_;
  CostModel cost_;
  double total_cost_ns_ = 0;
  std::uint64_t calls_ = 0;
};

}  // namespace hmem::callstack
