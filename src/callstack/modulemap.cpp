#include "callstack/modulemap.hpp"

#include "common/assert.hpp"
#include "common/prng.hpp"

namespace hmem::callstack {

std::size_t ModuleMap::add_module(const std::string& name, Address link_base,
                                  std::uint64_t size) {
  HMEM_ASSERT_MSG(by_name_.find(name) == by_name_.end(),
                  "duplicate module name");
  HMEM_ASSERT(size >= kSlotBytes);
  const std::size_t index = modules_.size();
  modules_.push_back(ModuleInfo{name, link_base, size, 0});
  states_.emplace_back();
  by_name_[name] = index;
  return index;
}

void ModuleMap::randomize_slides(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (auto& module : modules_) {
    // Page-aligned slide within 64 MiB: large enough that profiling-run
    // addresses are useless at production time, small enough that modules
    // with well-separated link bases stay disjoint.
    module.slide = rng.below(64ULL * 1024) * memsim::kPageBytes;
  }
}

Address ModuleMap::runtime_address(const CodeLocation& loc) {
  const auto mod = find_module(loc.module);
  HMEM_ASSERT_MSG(mod.has_value(), "unknown module in code location");
  ModuleState& state = states_[*mod];
  const LocationKey key{loc.function, loc.line};
  auto it = state.offsets.find(key);
  if (it == state.offsets.end()) {
    const std::uint64_t slot = state.by_slot.size();
    HMEM_ASSERT_MSG((slot + 1) * kSlotBytes <= modules_[*mod].size,
                    "module code range exhausted");
    state.by_slot.push_back(loc);
    it = state.offsets.emplace(key, slot).first;
  }
  const ModuleInfo& info = modules_[*mod];
  return info.link_base + info.slide + it->second * kSlotBytes;
}

std::optional<CodeLocation> ModuleMap::translate(Address runtime_addr) const {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const ModuleInfo& info = modules_[i];
    const Address lo = info.link_base + info.slide;
    if (runtime_addr < lo || runtime_addr >= lo + info.size) continue;
    const std::uint64_t slot = (runtime_addr - lo) / kSlotBytes;
    const ModuleState& state = states_[i];
    if (slot >= state.by_slot.size()) return std::nullopt;
    return state.by_slot[slot];
  }
  return std::nullopt;
}

std::optional<SymbolicCallStack> ModuleMap::translate(
    const CallStack& stack) const {
  SymbolicCallStack out;
  out.frames.reserve(stack.frames.size());
  for (Address addr : stack.frames) {
    auto loc = translate(addr);
    if (!loc) return std::nullopt;
    out.frames.push_back(std::move(*loc));
  }
  return out;
}

CallStack ModuleMap::materialize(const SymbolicCallStack& stack) {
  CallStack out;
  out.frames.reserve(stack.frames.size());
  for (const auto& frame : stack.frames) {
    out.frames.push_back(runtime_address(frame));
  }
  return out;
}

std::optional<std::size_t> ModuleMap::find_module(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hmem::callstack
