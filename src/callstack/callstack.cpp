#include "callstack/callstack.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace hmem::callstack {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_string(const std::string& s, std::uint64_t seed) {
  // FNV-1a folded through mix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace

std::string CodeLocation::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":%u", line);
  return module + "!" + function + buf;
}

bool CodeLocation::from_string(const std::string& text, CodeLocation& out) {
  const auto bang = text.find('!');
  const auto colon = text.rfind(':');
  if (bang == std::string::npos || colon == std::string::npos ||
      colon <= bang) {
    return false;
  }
  out.module = text.substr(0, bang);
  out.function = text.substr(bang + 1, colon - bang - 1);
  if (out.module.empty() || out.function.empty()) return false;
  char* end = nullptr;
  const unsigned long line = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out.line = static_cast<std::uint32_t>(line);
  return true;
}

std::uint64_t CallStack::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (Address a : frames) h = mix64(h ^ a);
  return h;
}

std::string SymbolicCallStack::to_string() const {
  std::vector<std::string> parts;
  parts.reserve(frames.size());
  for (const auto& f : frames) parts.push_back(f.to_string());
  return join(parts, " < ");
}

bool SymbolicCallStack::from_string(const std::string& text,
                                    SymbolicCallStack& out) {
  out.frames.clear();
  if (trim(text).empty()) return false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto next = text.find(" < ", pos);
    const std::string piece =
        trim(next == std::string::npos ? text.substr(pos)
                                       : text.substr(pos, next - pos));
    CodeLocation loc;
    if (!CodeLocation::from_string(piece, loc)) return false;
    out.frames.push_back(std::move(loc));
    if (next == std::string::npos) break;
    pos = next + 3;
  }
  return !out.frames.empty();
}

std::uint64_t SymbolicCallStack::hash() const {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const auto& f : frames) {
    h = mix64(h ^ hash_string(f.module, 1));
    h = mix64(h ^ hash_string(f.function, 2));
    h = mix64(h ^ f.line);
  }
  return h;
}

}  // namespace hmem::callstack
