#include "profiler/profiler.hpp"

namespace hmem::profiler {

Profiler::Profiler(ProfilerConfig config, trace::EventSink* sink)
    : config_(config), sink_(sink != nullptr ? sink : &trace_),
      sampler_(config.sampler) {}

void Profiler::on_alloc(double time_ns, callstack::SiteId site, Address addr,
                        std::uint64_t size) {
  if (size < config_.min_alloc_bytes) {
    ++skipped_small_allocs_;
    return;
  }
  ++monitored_allocs_;
  overhead_ns_ += config_.alloc_event_cost_ns;
  registry_.on_alloc(addr, size, site);
  sink_->on_event(trace::AllocEvent{time_ns, site, addr, size});
}

void Profiler::on_free(double time_ns, Address addr) {
  const auto removed = registry_.on_free(addr);
  if (!removed) return;  // unmonitored (small) allocation
  overhead_ns_ += config_.alloc_event_cost_ns * 0.5;  // free is cheaper
  sink_->on_event(trace::FreeEvent{time_ns, addr});
}

void Profiler::on_llc_miss(double time_ns, Address addr, bool is_write,
                           std::uint64_t count) {
  const std::uint64_t fires =
      sampler_.on_llc_misses(time_ns, addr, is_write, count);
  if (fires == 0) return;
  overhead_ns_ += config_.sample_cost_ns * static_cast<double>(fires);
  sink_->on_event(trace::SampleEvent{time_ns, addr, is_write,
                                     fires * sampler_.config().period});
}

void Profiler::on_phase(double time_ns, const std::string& name, bool begin) {
  sink_->on_event(trace::PhaseEvent{time_ns, name, begin});
}

void Profiler::on_counter(double time_ns, const std::string& name,
                          double value) {
  sink_->on_event(trace::CounterEvent{time_ns, name, value});
}

}  // namespace hmem::profiler
