// Profiler — the Extrae substitute (stage 1).
//
// Hooks the simulated application's allocation calls and the machine's
// LLC-miss stream, and produces the trace the rest of the pipeline consumes.
// Two fidelity details from the paper are preserved:
//  * only allocations of at least `min_alloc_bytes` are monitored (the paper
//    uses 4 KiB "to avoid small (and possibly frequent) allocations such as
//    those related to I/O");
//  * LLC misses are sampled with a PEBS-style period (default 37,589), not
//    recorded exhaustively.
// The profiler also accounts its own cost (per monitored allocation event
// and per captured sample) so the engine can report the monitoring overhead
// column of Table I.
#pragma once

#include <cstdint>

#include "callstack/sitedb.hpp"
#include "pebs/sampler.hpp"
#include "profiler/object_registry.hpp"
#include "trace/event.hpp"

namespace hmem::profiler {

struct ProfilerConfig {
  /// Allocations below this size are not monitored (paper: 4 KiB).
  std::uint64_t min_alloc_bytes = 4096;
  pebs::SamplerConfig sampler;
  /// Cost charged per monitored allocation event (unwind + record).
  double alloc_event_cost_ns = 16000.0;
  /// Cost charged per captured PEBS sample (interrupt + record).
  double sample_cost_ns = 1500.0;
};

class Profiler {
 public:
  /// With the default (null) sink, events accumulate in an internal
  /// TraceBuffer reachable via trace()/take_trace(). With an external sink
  /// — a format writer streaming to disk, a VisitorSink feeding an analysis
  /// — events are pushed there as they happen and nothing is buffered; the
  /// sink must outlive the profiler.
  explicit Profiler(ProfilerConfig config, trace::EventSink* sink = nullptr);

  /// Allocation hook. Records the event and registers the live range when
  /// size >= min_alloc_bytes; smaller allocations pass through unmonitored.
  void on_alloc(double time_ns, callstack::SiteId site, Address addr,
                std::uint64_t size);

  void on_free(double time_ns, Address addr);

  /// LLC-miss hook; feeds the PEBS sampler and records fired samples.
  /// `count` is the number of real misses this (simulated) miss represents;
  /// a fired sample's weight is count-aware.
  void on_llc_miss(double time_ns, Address addr, bool is_write,
                   std::uint64_t count = 1);

  void on_phase(double time_ns, const std::string& name, bool begin);
  void on_counter(double time_ns, const std::string& name, double value);

  /// The internal buffer; empty when an external sink was supplied.
  const trace::TraceBuffer& trace() const { return trace_; }
  trace::TraceBuffer take_trace() { return std::move(trace_); }
  const ObjectRegistry& registry() const { return registry_; }
  const pebs::PebsSampler& sampler() const { return sampler_; }
  const ProfilerConfig& config() const { return config_; }

  /// Accumulated simulated cost of monitoring — the source of the
  /// "monitoring overhead" percentages in Table I.
  double overhead_ns() const { return overhead_ns_; }

  std::uint64_t monitored_allocs() const { return monitored_allocs_; }
  std::uint64_t skipped_small_allocs() const { return skipped_small_allocs_; }

 private:
  ProfilerConfig config_;
  trace::TraceBuffer trace_;
  trace::EventSink* sink_;  ///< &trace_ unless an external sink was given
  ObjectRegistry registry_;
  pebs::PebsSampler sampler_;
  double overhead_ns_ = 0;
  std::uint64_t monitored_allocs_ = 0;
  std::uint64_t skipped_small_allocs_ = 0;
};

}  // namespace hmem::profiler
