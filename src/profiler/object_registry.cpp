#include "profiler/object_registry.hpp"

#include "common/assert.hpp"

namespace hmem::profiler {

void ObjectRegistry::on_alloc(Address addr, std::uint64_t size, SiteId site) {
  HMEM_ASSERT(size > 0);
  // Disjointness check against neighbours only — ranges are disjoint by
  // induction, so overlap can only involve the immediate neighbours.
  auto next = objects_.lower_bound(addr);
  if (next != objects_.end()) {
    HMEM_ASSERT_MSG(addr + size <= next->second.addr,
                    "allocation overlaps a live object");
  }
  if (next != objects_.begin()) {
    const auto& prev = std::prev(next)->second;
    HMEM_ASSERT_MSG(prev.addr + prev.size <= addr,
                    "allocation overlaps a live object");
  }
  objects_[addr] = LiveObject{addr, size, site};
  live_bytes_ += size;
}

std::optional<LiveObject> ObjectRegistry::on_free(Address addr) {
  const auto it = objects_.find(addr);
  if (it == objects_.end()) return std::nullopt;
  const LiveObject obj = it->second;
  objects_.erase(it);
  live_bytes_ -= obj.size;
  return obj;
}

std::optional<LiveObject> ObjectRegistry::lookup(Address addr) const {
  auto it = objects_.upper_bound(addr);
  if (it == objects_.begin()) return std::nullopt;
  const LiveObject& candidate = std::prev(it)->second;
  if (addr >= candidate.addr && addr < candidate.addr + candidate.size) {
    return candidate;
  }
  return std::nullopt;
}

void ObjectRegistry::clear() {
  objects_.clear();
  live_bytes_ = 0;
}

}  // namespace hmem::profiler
