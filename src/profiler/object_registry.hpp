// Live-object interval map: address -> owning allocation site.
//
// Extrae "registers the allocated address range through the returned pointer
// and the size of the allocation" and attributes each sampled reference "by
// matching the accessed address against the previously allocated object's
// address ranges". This is that matcher: an ordered map of disjoint live
// ranges supporting O(log n) point lookup.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "callstack/sitedb.hpp"
#include "memsim/address.hpp"

namespace hmem::profiler {

using callstack::SiteId;
using memsim::Address;

struct LiveObject {
  Address addr = 0;
  std::uint64_t size = 0;
  SiteId site = callstack::kInvalidSite;
};

class ObjectRegistry {
 public:
  /// Registers a live range. Overlapping an existing live range is a logic
  /// error (allocators hand out disjoint memory) and asserts.
  void on_alloc(Address addr, std::uint64_t size, SiteId site);

  /// Removes a live range; returns the removed record, nullopt when addr is
  /// not the base of a live object (e.g. free of an unmonitored small
  /// allocation — the caller decides whether that is expected).
  std::optional<LiveObject> on_free(Address addr);

  /// Object whose range contains addr, if any.
  std::optional<LiveObject> lookup(Address addr) const;

  std::size_t live_count() const { return objects_.size(); }
  std::uint64_t live_bytes() const { return live_bytes_; }

  void clear();

 private:
  std::map<Address, LiveObject> objects_;  ///< keyed by base address
  std::uint64_t live_bytes_ = 0;
};

}  // namespace hmem::profiler
