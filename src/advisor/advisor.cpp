#include "advisor/advisor.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace hmem::advisor {

const char* strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kMisses:
      return "misses";
    case Strategy::kDensity:
      return "density";
    case Strategy::kExact:
      return "exact";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(const std::string& name) {
  if (name == "misses") return Strategy::kMisses;
  if (name == "density") return Strategy::kDensity;
  if (name == "exact") return Strategy::kExact;
  return std::nullopt;
}

std::optional<std::size_t> Placement::tier_of(callstack::SiteId site) const {
  for (std::size_t t = 0; t + 1 < tiers.size(); ++t) {
    for (const auto& obj : tiers[t].objects) {
      if (obj.site == site) return t;
    }
  }
  return std::nullopt;
}

HmemAdvisor::HmemAdvisor(MemorySpec spec, Options options)
    : spec_(std::move(spec)), options_(options) {
  HMEM_ASSERT(spec_.tier_count() >= 1);
}

Selection HmemAdvisor::run_strategy(const std::vector<ObjectInfo>& objects,
                                    std::uint64_t budget) const {
  switch (options_.strategy) {
    case Strategy::kMisses:
      return greedy_misses(objects, budget, options_.threshold_pct);
    case Strategy::kDensity:
      return greedy_density(objects, budget);
    case Strategy::kExact:
      return exact_knapsack(objects, budget);
  }
  return {};
}

Placement HmemAdvisor::advise(const std::vector<ObjectInfo>& objects) const {
  Placement placement;
  placement.strategy = options_.strategy;
  placement.threshold_pct = options_.threshold_pct;

  // Split the profile: only dynamic objects are placeable by the runtime.
  std::vector<ObjectInfo> pool;
  std::vector<ObjectInfo> static_pool;
  pool.reserve(objects.size());
  for (const auto& obj : objects) {
    (obj.is_dynamic ? pool : static_pool).push_back(obj);
  }

  const auto& tiers = spec_.tiers();
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    TierPlacement tp;
    tp.tier_name = tiers[t].name;
    tp.budget_bytes = tiers[t].capacity_bytes;

    const bool is_fallback = (t + 1 == tiers.size());
    if (is_fallback) {
      // Everything left belongs to the slowest tier.
      tp.objects = pool;
      for (const auto& obj : tp.objects) {
        tp.footprint_bytes += obj.footprint_bytes();
        tp.profit_misses += obj.llc_misses;
      }
      placement.tiers.push_back(std::move(tp));
      break;
    }

    std::uint64_t selection_budget = tiers[t].capacity_bytes;
    if (t == 0 && options_.virtual_budget_bytes > 0) {
      selection_budget = options_.virtual_budget_bytes;
    }
    const Selection sel = run_strategy(pool, selection_budget);
    tp.footprint_bytes = sel.footprint_bytes;
    tp.profit_misses = sel.profit_misses;

    std::vector<bool> taken(pool.size(), false);
    for (const std::size_t i : sel.chosen) {
      taken[i] = true;
      tp.objects.push_back(pool[i]);
    }
    std::vector<ObjectInfo> rest;
    rest.reserve(pool.size() - sel.chosen.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!taken[i]) rest.push_back(pool[i]);
    }
    pool = std::move(rest);
    placement.tiers.push_back(std::move(tp));
  }

  // Surface static objects the strategy would have promoted into the fast
  // tier, so a developer can migrate them in source.
  if (!static_pool.empty()) {
    const Selection sel =
        run_strategy(static_pool, spec_.fastest().capacity_bytes);
    for (const std::size_t i : sel.chosen) {
      placement.static_recommendations.push_back(static_pool[i]);
    }
  }

  // Size pre-filter bounds over every non-fallback selection: with more
  // than two tiers the runtime promotes into each of them, so the filter
  // must not reject a middle-tier object.
  std::uint64_t lb = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t ub = 0;
  for (std::size_t t = 0; t + 1 < placement.tiers.size(); ++t) {
    for (const auto& obj : placement.tiers[t].objects) {
      lb = std::min(lb, obj.max_size_bytes);
      ub = std::max(ub, obj.max_size_bytes);
    }
  }
  if (ub == 0) lb = 0;  // nothing selected
  placement.lb_size = lb;
  placement.ub_size = ub;
  placement.enforced_fast_budget_bytes = spec_.fastest().capacity_bytes;
  return placement;
}

}  // namespace hmem::advisor
