// Per-object input record for hmem_advisor.
//
// This is the hand-off format between Paramedir (stage 2) and the advisor
// (stage 3): one row per allocation site with its access cost — approximated
// by weighted LLC misses, as in the paper — and the maximum requested size
// observed for that site (loops over an allocation share one call-stack, so
// the maximum is the conservative footprint estimate).
#pragma once

#include <cstdint>
#include <string>

#include "callstack/sitedb.hpp"

namespace hmem::advisor {

struct ObjectInfo {
  callstack::SiteId site = callstack::kInvalidSite;
  std::string name;
  callstack::SymbolicCallStack stack;
  /// Maximum requested size observed across all allocations at this site.
  std::uint64_t max_size_bytes = 0;
  /// Weighted sampled LLC misses attributed to this object (each PEBS
  /// sample counts `period` misses).
  std::uint64_t llc_misses = 0;
  /// Static/automatic objects appear in the profile but cannot be retargeted
  /// by the interposition library.
  bool is_dynamic = true;

  /// Profit density: misses per byte of page-rounded footprint.
  double density() const;
  /// Page-rounded footprint charged against a tier budget.
  std::uint64_t footprint_bytes() const;
};

}  // namespace hmem::advisor
