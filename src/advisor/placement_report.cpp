#include "advisor/placement_report.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hmem::advisor {

namespace {

void write_object_line(std::ostringstream& os, const ObjectInfo& obj) {
  os << obj.name << " | " << obj.max_size_bytes << " | " << obj.llc_misses
     << " | " << obj.stack.to_string() << '\n';
}

[[noreturn]] void malformed(const std::string& line) {
  throw FormatError("malformed placement report line: " + line);
}

ObjectInfo parse_object_line(const std::string& line, bool is_dynamic) {
  const auto fields = split(line, '|');
  if (fields.size() != 4) malformed(line);
  ObjectInfo obj;
  obj.name = trim(fields[0]);
  // The trimmed strings must outlive the *end check: strtoull's end pointer
  // aims into them.
  char* end = nullptr;
  const std::string size_field = trim(fields[1]);
  obj.max_size_bytes = std::strtoull(size_field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') malformed(line);
  const std::string misses_field = trim(fields[2]);
  obj.llc_misses = std::strtoull(misses_field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') malformed(line);
  if (!callstack::SymbolicCallStack::from_string(trim(fields[3]), obj.stack))
    malformed(line);
  obj.is_dynamic = is_dynamic;
  return obj;
}

std::uint64_t parse_u64_value(const std::string& value,
                              const std::string& line) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') malformed(line);
  return v;
}

}  // namespace

std::string write_placement_report(const Placement& placement) {
  std::ostringstream os;
  os << "# hmem_advisor placement report\n";
  os << "strategy = " << strategy_name(placement.strategy) << '\n';
  os << "threshold_pct = " << placement.threshold_pct << '\n';
  os << "enforced_fast_budget = " << placement.enforced_fast_budget_bytes
     << '\n';
  os << "lb_size = " << placement.lb_size << '\n';
  os << "ub_size = " << placement.ub_size << '\n';
  for (const auto& tier : placement.tiers) {
    os << "[tier " << tier.tier_name << " budget=" << tier.budget_bytes
       << "]\n";
    for (const auto& obj : tier.objects) write_object_line(os, obj);
  }
  if (!placement.static_recommendations.empty()) {
    os << "[static recommendations]\n";
    for (const auto& obj : placement.static_recommendations)
      write_object_line(os, obj);
  }
  return os.str();
}

Placement read_placement_report(const std::string& text) {
  Placement placement;
  bool in_static = false;
  TierPlacement* current_tier = nullptr;

  for (const std::string& raw : split(text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    if (line.front() == '[' && line.back() == ']') {
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header == "static recommendations") {
        in_static = true;
        current_tier = nullptr;
        continue;
      }
      if (!starts_with(header, "tier ")) malformed(line);
      in_static = false;
      TierPlacement tp;
      std::string rest = trim(header.substr(5));
      const auto budget_pos = rest.find("budget=");
      if (budget_pos == std::string::npos) malformed(line);
      tp.tier_name = trim(rest.substr(0, budget_pos));
      tp.budget_bytes =
          parse_u64_value(trim(rest.substr(budget_pos + 7)), line);
      placement.tiers.push_back(std::move(tp));
      current_tier = &placement.tiers.back();
      continue;
    }

    const auto eq = line.find('=');
    if (eq != std::string::npos && line.find('|') == std::string::npos) {
      const std::string key = trim(line.substr(0, eq));
      const std::string value = trim(line.substr(eq + 1));
      if (key == "strategy") {
        const auto s = parse_strategy(value);
        if (!s) malformed(line);
        placement.strategy = *s;
      } else if (key == "threshold_pct") {
        placement.threshold_pct = std::strtod(value.c_str(), nullptr);
      } else if (key == "enforced_fast_budget") {
        placement.enforced_fast_budget_bytes = parse_u64_value(value, line);
      } else if (key == "lb_size") {
        placement.lb_size = parse_u64_value(value, line);
      } else if (key == "ub_size") {
        placement.ub_size = parse_u64_value(value, line);
      }
      // Unknown keys are ignored for forward compatibility.
      continue;
    }

    // Object line.
    if (in_static) {
      placement.static_recommendations.push_back(
          parse_object_line(line, /*is_dynamic=*/false));
    } else {
      if (current_tier == nullptr) malformed(line);
      ObjectInfo obj = parse_object_line(line, /*is_dynamic=*/true);
      current_tier->footprint_bytes += obj.footprint_bytes();
      current_tier->profit_misses += obj.llc_misses;
      current_tier->objects.push_back(std::move(obj));
    }
  }
  if (placement.tiers.empty())
    throw FormatError("placement report contains no tiers");
  return placement;
}

}  // namespace hmem::advisor
