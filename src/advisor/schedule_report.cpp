#include "advisor/schedule_report.hpp"

#include <sstream>
#include <stdexcept>

#include "advisor/placement_report.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace hmem::advisor {

bool is_schedule_report(const std::string& text) {
  for (const std::string& raw : split(text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    return line == kScheduleReportHeader;
  }
  return false;
}

std::string write_schedule_report(const PlacementSchedule& schedule) {
  std::ostringstream os;
  os << kScheduleReportHeader << '\n';
  os << "phases = " << schedule.phases.size() << '\n';
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    const PhasePlacement& pp = schedule.phases[p];
    os << "[phase " << pp.phase << "]\n";
    if (p < schedule.migrations.size() && !schedule.migrations[p].empty()) {
      // For the human reader only; the parser recomputes the diff.
      std::uint64_t bytes = 0;
      for (const Migration& m : schedule.migrations[p]) bytes += m.bytes;
      os << "# entering this phase migrates " << schedule.migrations[p].size()
         << " object(s), " << bytes << " bytes\n";
    }
    os << write_placement_report(pp.placement);
  }
  return os.str();
}

PlacementSchedule read_schedule_report(const std::string& text) {
  if (!is_schedule_report(text)) {
    throw FormatError(
        "not a placement schedule (missing '# hmem_advisor placement "
        "schedule' header)");
  }
  PlacementSchedule schedule;
  std::string current_phase;
  std::ostringstream chunk;
  bool in_phase = false;
  auto flush = [&]() {
    if (!in_phase) return;
    PhasePlacement pp;
    pp.phase = current_phase;
    pp.placement = read_placement_report(chunk.str());
    schedule.phases.push_back(std::move(pp));
    chunk.str({});
    chunk.clear();
  };
  for (const std::string& raw : split(text, '\n')) {
    const std::string line = trim(raw);
    if (starts_with(line, "[phase ") && line.back() == ']') {
      flush();
      in_phase = true;
      current_phase = trim(line.substr(7, line.size() - 8));
      continue;
    }
    if (in_phase) chunk << raw << '\n';
    // Header lines ("phases = N", comments) before the first [phase] are
    // informational; the phase sections are the source of truth.
  }
  flush();
  if (schedule.phases.empty()) {
    throw FormatError("placement schedule contains no phases");
  }
  compute_migrations(schedule);
  return schedule;
}

}  // namespace hmem::advisor
