// Knapsack solvers for object placement.
//
// The paper frames placement as a relaxation of the 0/1 multiple knapsack
// problem and ships two greedy, linear-cost relaxations because the exact
// pseudo-polynomial DP "has proven to be impractical":
//  * Misses(t%)  — descending LLC misses; an optional threshold t filters
//    out objects contributing less than t% of the total misses ("preventing
//    that rarely referenced objects ... are promoted to fast-memory").
//  * Density     — descending misses/footprint ratio.
// We additionally implement the exact DP as a correctness oracle and for the
// ablation bench that quantifies what the relaxations give up.
//
// All solvers charge page-rounded footprints against the capacity, matching
// the paper's "memory page granularity".
#pragma once

#include <cstdint>
#include <vector>

#include "advisor/object_info.hpp"

namespace hmem::advisor {

/// Indices (into the input vector) of the selected objects, in selection
/// order, plus the summed footprint and profit of the selection.
struct Selection {
  std::vector<std::size_t> chosen;
  std::uint64_t footprint_bytes = 0;
  std::uint64_t profit_misses = 0;
};

/// Greedy by descending misses. Objects whose misses are strictly below
/// threshold_pct% of the total miss count are never promoted. Objects that
/// do not fit in the remaining budget are skipped (later, smaller objects
/// may still fit).
Selection greedy_misses(const std::vector<ObjectInfo>& objects,
                        std::uint64_t capacity_bytes,
                        double threshold_pct = 0.0);

/// Greedy by descending misses-per-byte density.
Selection greedy_density(const std::vector<ObjectInfo>& objects,
                         std::uint64_t capacity_bytes);

/// Exact 0/1 knapsack via dynamic programming at page granularity.
/// O(n * capacity_pages) time and memory — the "impractical" baseline; the
/// caller is expected to keep capacity_pages modest (tests/ablation).
Selection exact_knapsack(const std::vector<ObjectInfo>& objects,
                         std::uint64_t capacity_bytes);

}  // namespace hmem::advisor
