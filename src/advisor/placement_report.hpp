// Human-readable placement report — the hand-off between hmem_advisor and
// auto-hbwmalloc.
//
// The paper makes the report human-readable on purpose: static objects can
// only be migrated by editing the source, and developers may prefer to apply
// the suggested placement by hand. The format round-trips: the runtime
// parses exactly what the advisor writes.
//
//   # hmem_advisor placement report
//   strategy = misses
//   threshold_pct = 1
//   enforced_fast_budget = 268435456
//   lb_size = 4096
//   ub_size = 209715200
//   [tier mcdram budget=268435456]
//   <name> | <max_size> | <llc_misses> | <callstack>
//   ...
//   [static recommendations]
//   <name> | <max_size> | <llc_misses> | <callstack>
#pragma once

#include <string>

#include "advisor/advisor.hpp"

namespace hmem::advisor {

std::string write_placement_report(const Placement& placement);

/// Parses a report produced by write_placement_report. Site ids are not
/// preserved across the text round-trip (the runtime matches by symbolic
/// call-stack); parsed ObjectInfo::site is kInvalidSite. Throws
/// std::runtime_error on malformed input.
Placement read_placement_report(const std::string& text);

}  // namespace hmem::advisor
