#include "advisor/incremental_advisor.hpp"

#include <algorithm>

namespace hmem::advisor {

IncrementalAdvisor::IncrementalAdvisor(MemorySpec spec, Options options,
                                       IncrementalAdvisorOptions incremental)
    : advisor_(std::move(spec), options), incremental_(incremental) {}

bool IncrementalAdvisor::drifted(std::uint64_t now, std::uint64_t solved,
                                 double threshold) {
  const std::uint64_t delta = now > solved ? now - solved : solved - now;
  const double base =
      static_cast<double>(std::max<std::uint64_t>(1, solved));
  return static_cast<double>(delta) > threshold * base;
}

RefreshStats IncrementalAdvisor::refresh(
    const analysis::IncrementalAggregator& profile, bool finalize) {
  RefreshStats stats;

  // ---- Whole-run placement (the static advisor's answer) -----------------
  {
    const std::uint64_t pv = profile.profile_version();
    const std::uint64_t v = profile.version();
    const bool dirty = !whole_run_.solved ||
                       whole_run_.profile_version != pv ||
                       whole_run_.version != v;
    const bool shape = !whole_run_.solved || whole_run_.profile_version != pv;
    if (dirty &&
        (finalize || shape ||
         drifted(profile.attributed_misses(), whole_run_.solved_misses,
                 incremental_.resolve_threshold))) {
      const analysis::ObjectsView view = profile.objects_view();
      placement_ = advisor_.advise(view.objects);
      whole_run_.solved = true;
      whole_run_.profile_version = view.profile_version;
      whole_run_.version = view.version;
      whole_run_.solved_misses = view.attributed_misses;
      ++resolves_;
      stats.whole_run_resolved = true;
    }
  }

  // ---- Per-phase placements ----------------------------------------------
  const std::size_t phases = profile.phase_count();
  bool placements_changed = false;
  if (phases > schedule_.phases.size()) {
    schedule_.phases.resize(phases);
    phase_states_.resize(phases);
    placements_changed = true;  // the cycle shape changed
  }
  for (std::size_t p = 0; p < phases; ++p) {
    ++stats.phases_seen;
    SolveState& st = phase_states_[p];
    const std::uint64_t pv = profile.profile_version();
    const std::uint64_t v = profile.phase_version(p);
    const bool dirty =
        !st.solved || st.profile_version != pv || st.version != v;
    if (!dirty) continue;
    ++stats.phases_dirty;
    const bool shape = !st.solved || st.profile_version != pv;
    if (!finalize && !shape &&
        !drifted(profile.phase_misses(p), st.solved_misses,
                 incremental_.resolve_threshold)) {
      continue;  // below the drift threshold: amortize, solve later
    }
    // One atomic slice read: the stored versions are exactly the ones the
    // solved input carried, so a concurrent writer can only make the state
    // look staler than it is, never fresher.
    const analysis::PhaseView view = profile.phase_view(p);
    schedule_.phases[p].phase = view.objects.name;
    schedule_.phases[p].placement = advisor_.advise(view.objects.objects);
    st.solved = true;
    st.profile_version = view.profile_version;
    st.version = view.version;
    st.solved_misses = view.misses;
    ++resolves_;
    ++stats.phases_resolved;
    placements_changed = true;
  }
  if (placements_changed && phases > 0) {
    compute_migrations(schedule_);
    // Consumers holding a pointer to schedule_ across refreshes (the
    // engine's advisor_hook) detect this mutation by the generation bump;
    // when nothing changed, schedule_ was not touched at all and every
    // pointer into it stays valid.
    ++schedule_.generation;
    stats.schedule_changed = true;
  }
  return stats;
}

}  // namespace hmem::advisor
