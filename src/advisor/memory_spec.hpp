// Memory-tier specification consumed by hmem_advisor.
//
// "Each memory subsystem is defined by a given size and a relative
// performance in a configuration file, ensuring that we can extend this
// mechanism in the future for different memory architectures." A spec is an
// ordered list of tiers; the advisor fills knapsacks in descending relative
// performance and the slowest tier is the unbounded fallback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace hmem::advisor {

struct TierBudget {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double relative_performance = 1.0;
};

class MemorySpec {
 public:
  MemorySpec() = default;
  explicit MemorySpec(std::vector<TierBudget> tiers);

  /// Parses a config of the form:
  ///   [tier mcdram]
  ///   capacity = 16G
  ///   relative_performance = 5.0
  ///   [tier ddr]
  ///   capacity = 96G
  ///   relative_performance = 1.0
  /// Section order is irrelevant; tiers are sorted by performance. Throws
  /// std::runtime_error on degenerate input: no tiers, duplicate tier
  /// names, zero capacities or non-positive relative performance.
  static MemorySpec from_config(const Config& config);

  /// Convenience two-tier spec: fast budget + slow fallback.
  static MemorySpec two_tier(std::uint64_t fast_bytes,
                             std::uint64_t slow_bytes,
                             double fast_performance = 5.0);

  /// Tiers in descending relative performance (fill order).
  const std::vector<TierBudget>& tiers() const { return tiers_; }
  std::size_t tier_count() const { return tiers_.size(); }
  const TierBudget& fastest() const { return tiers_.front(); }
  const TierBudget& slowest() const { return tiers_.back(); }

  std::string to_config_text() const;

 private:
  std::vector<TierBudget> tiers_;
};

}  // namespace hmem::advisor
