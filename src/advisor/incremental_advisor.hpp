// Incremental placement advisor — the amortized re-solve wrapper around the
// per-phase knapsack cascade (ROADMAP #2, the solve core of hmem_served).
//
// PhaseAdvisor::advise is batch: every phase's knapsack re-runs on every
// call, whether or not that phase's profile moved. IncrementalAdvisor keeps
// one solved Placement per phase (plus the whole-run placement) together
// with the IncrementalAggregator version counters its inputs carried, and
// on refresh() re-solves ONLY:
//
//   * phases never solved before (or newly appeared in the stream),
//   * phases whose profile shape changed (new site / grown max-size —
//     profile_version moved), and
//   * phases whose binned miss mass drifted by more than
//     resolve_threshold since their last solve.
//
// A clean phase costs two integer compares; a dirty one costs one
// O(sites log sites) slice build plus the knapsack cascade — the target
// refresh cost from the roadmap. Migration lists are recomputed (a pure
// function of the placements) only when some placement actually changed.
//
// Convergence contract, asserted by tests/test_incremental.cpp: after the
// stream ends, refresh(agg, /*finalize=*/true) re-solves every phase with
// ANY unconsumed change (the drift threshold is an amortization device for
// mid-stream refreshes, never a correctness trade), making schedule()
// bit-identical to PhaseAdvisor::advise on the batch aggregation — a clean
// phase's last solve already consumed the final accumulator state, and the
// knapsack is a pure function of its input.
#pragma once

#include <cstdint>
#include <vector>

#include "advisor/phase_advisor.hpp"
#include "analysis/incremental.hpp"

namespace hmem::advisor {

struct IncrementalAdvisorOptions {
  /// Fraction of a phase's last-solved miss mass that must drift before a
  /// mid-stream refresh re-runs its knapsack. Profile-shape changes and
  /// never-solved phases re-solve regardless; finalize ignores the
  /// threshold entirely.
  double resolve_threshold = 0.05;
};

/// What one refresh() did — the bench and the tool's progress line.
struct RefreshStats {
  std::size_t phases_seen = 0;      ///< phases in the stream so far
  std::size_t phases_dirty = 0;     ///< had unconsumed changes
  std::size_t phases_resolved = 0;  ///< knapsacks actually re-run
  bool whole_run_resolved = false;
  bool schedule_changed = false;    ///< migrations were recomputed
};

class IncrementalAdvisor {
 public:
  IncrementalAdvisor(MemorySpec spec, Options options,
                     IncrementalAdvisorOptions incremental = {});

  /// Brings the schedule and the whole-run placement up to date with the
  /// aggregator. Safe to call while another thread is still feeding the
  /// aggregator (each slice is read atomically with its version counters);
  /// the finalize pass must run after the stream has been fully fed for
  /// the convergence contract to hold.
  RefreshStats refresh(const analysis::IncrementalAggregator& profile,
                       bool finalize = false);

  /// Per-phase schedule over everything consumed so far; empty (no phases)
  /// until the stream carries phase events. The object is mutated in place
  /// by refresh(): its `generation` counter moves whenever the contents
  /// changed, which is how a consumer holding this reference across
  /// refreshes (the engine's advisor_hook) tells a refreshed answer from
  /// the unchanged one. A refresh that changed nothing leaves the object —
  /// and every pointer into it — untouched.
  const PlacementSchedule& schedule() const { return schedule_; }
  bool has_phases() const { return !schedule_.phases.empty(); }
  /// Whole-run (static) placement over everything consumed so far.
  const Placement& placement() const { return placement_; }

  /// Lifetime knapsack-solve count (phases + whole-run) — what the
  /// amortization tests and the refresh bench measure.
  std::uint64_t total_resolves() const { return resolves_; }

  const MemorySpec& spec() const { return advisor_.spec(); }
  const Options& options() const { return advisor_.options(); }

 private:
  struct SolveState {
    bool solved = false;
    std::uint64_t profile_version = 0;  ///< consumed at last solve
    std::uint64_t version = 0;          ///< consumed at last solve
    std::uint64_t solved_misses = 0;    ///< drift baseline
  };

  static bool drifted(std::uint64_t now, std::uint64_t solved,
                      double threshold);

  HmemAdvisor advisor_;
  IncrementalAdvisorOptions incremental_;
  PlacementSchedule schedule_;
  Placement placement_;
  std::vector<SolveState> phase_states_;  ///< parallel to schedule_.phases
  SolveState whole_run_;
  std::uint64_t resolves_ = 0;
};

}  // namespace hmem::advisor
