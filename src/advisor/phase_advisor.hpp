// Phase-aware placement — the dynamic extension of hmem_advisor.
//
// The static advisor assumes every object is live (and equally hot) for the
// whole run; the folding stage exists precisely because that is not true.
// PhaseAdvisor closes the loop: it solves the same knapsack cascade once per
// folded phase and emits a PlacementSchedule — one Placement per phase plus,
// for every phase transition, the list of live objects whose tier assignment
// changes (the migrations the runtime must perform, and whose traffic the
// engine charges through the memory model: bytes moved = live size, served
// at source-tier read + destination-tier write cost).
//
// A single-phase profile degenerates to the static advisor exactly: the
// schedule holds one placement, bit-identical to HmemAdvisor::advise on the
// whole-run profile, and an empty migration list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"

namespace hmem::advisor {

/// Per-phase slice of the profile: the same ObjectInfo records as the
/// whole-run aggregation, with llc_misses restricted to samples taken while
/// the phase was open (max_size/is_dynamic stay whole-run properties).
/// Produced by analysis::AggregateVisitor, consumed here.
struct PhaseObjects {
  std::string name;
  std::vector<ObjectInfo> objects;
};

/// One object whose tier assignment changes at a phase boundary. Tier ids
/// are placement-tier indices (0 = fastest; tiers-1 = the fallback).
struct Migration {
  std::string object_name;
  callstack::SymbolicCallStack stack;
  std::uint64_t bytes = 0;  ///< live size moved (per instance)
  std::size_t from_tier = 0;
  std::size_t to_tier = 0;

  bool is_demotion() const { return to_tier > from_tier; }
};

struct PhasePlacement {
  std::string phase;
  Placement placement;
};

/// The dynamic advisor's output: per-phase placements plus the migration
/// diff between consecutive phases.
struct PlacementSchedule {
  std::vector<PhasePlacement> phases;
  /// Monotonic content version. A producer that mutates one schedule object
  /// in place (IncrementalAdvisor::refresh) bumps this whenever anything —
  /// phase set, a placement, the migration lists — changes, so a consumer
  /// holding the same pointer across refreshes (engine::RunOptions::
  /// advisor_hook) can detect the change without comparing contents.
  /// Producers that build a fresh schedule per answer may leave it 0.
  std::uint64_t generation = 0;
  /// migrations[p] is applied on *entering* phase p from the previous phase
  /// in cycle order ((p - 1 + P) % P) — migrations[0] is the wrap-around
  /// applied at each iteration boundary. Demotions are listed before
  /// promotions so a full fast tier drains before it refills. Empty lists
  /// everywhere when the schedule has a single phase.
  std::vector<std::vector<Migration>> migrations;

  /// Placement for a phase name; nullptr when the name is unknown.
  const Placement* placement_for(const std::string& phase) const;
  /// Total bytes moved over one full phase cycle (all transitions).
  std::uint64_t migration_bytes_per_cycle() const;
};

/// Recomputes the migration lists from the per-phase placements (the diff is
/// a pure function of them; the schedule report does not serialize it).
void compute_migrations(PlacementSchedule& schedule);

/// Runs the static advisor once per phase over the same memory spec.
class PhaseAdvisor {
 public:
  PhaseAdvisor(MemorySpec spec, Options options);

  PlacementSchedule advise(const std::vector<PhaseObjects>& phases) const;

  const MemorySpec& spec() const { return advisor_.spec(); }
  const Options& options() const { return advisor_.options(); }

 private:
  HmemAdvisor advisor_;
};

}  // namespace hmem::advisor
