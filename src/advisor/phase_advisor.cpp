#include "advisor/phase_advisor.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"

namespace hmem::advisor {

const Placement* PlacementSchedule::placement_for(
    const std::string& phase) const {
  for (const PhasePlacement& pp : phases) {
    if (pp.phase == phase) return &pp.placement;
  }
  return nullptr;
}

std::uint64_t PlacementSchedule::migration_bytes_per_cycle() const {
  std::uint64_t total = 0;
  for (const auto& list : migrations) {
    for (const Migration& m : list) total += m.bytes;
  }
  return total;
}

namespace {

/// Object identity across phases is the allocation call-stack — the same
/// identity auto-hbwmalloc matches at run time (site ids do not survive the
/// report round-trip).
struct TierOf {
  std::unordered_map<callstack::SymbolicCallStack, std::size_t> by_stack;
  std::size_t fallback = 0;

  explicit TierOf(const Placement& placement) {
    fallback = placement.tiers.empty() ? 0 : placement.tiers.size() - 1;
    for (std::size_t t = 0; t + 1 < placement.tiers.size(); ++t) {
      for (const ObjectInfo& obj : placement.tiers[t].objects) {
        by_stack.emplace(obj.stack, t);
      }
    }
  }

  std::size_t tier(const callstack::SymbolicCallStack& stack) const {
    const auto it = by_stack.find(stack);
    return it == by_stack.end() ? fallback : it->second;
  }
};

std::vector<Migration> diff_placements(const Placement& prev,
                                       const Placement& next) {
  const TierOf prev_tiers(prev);
  const TierOf next_tiers(next);

  // The object universe: everything either placement knows about. Objects
  // appearing in neither's non-fallback tiers sit in the fallback on both
  // sides and never move.
  std::vector<Migration> moves;
  std::unordered_map<callstack::SymbolicCallStack, bool> seen;
  auto consider = [&](const ObjectInfo& obj) {
    if (!obj.is_dynamic) return;  // statics cannot be retargeted
    if (!seen.emplace(obj.stack, true).second) return;
    const std::size_t from = prev_tiers.tier(obj.stack);
    const std::size_t to = next_tiers.tier(obj.stack);
    if (from == to) return;
    Migration m;
    m.object_name = obj.name;
    m.stack = obj.stack;
    m.bytes = obj.max_size_bytes;
    m.from_tier = from;
    m.to_tier = to;
    moves.push_back(std::move(m));
  };
  for (const TierPlacement& tier : prev.tiers) {
    for (const ObjectInfo& obj : tier.objects) consider(obj);
  }
  for (const TierPlacement& tier : next.tiers) {
    for (const ObjectInfo& obj : tier.objects) consider(obj);
  }

  // Demotions first: a full fast tier must drain before it refills (the
  // runtime applies the list in order and cascades FCFS when it cannot).
  std::stable_sort(moves.begin(), moves.end(),
                   [](const Migration& a, const Migration& b) {
                     return a.is_demotion() && !b.is_demotion();
                   });
  return moves;
}

}  // namespace

void compute_migrations(PlacementSchedule& schedule) {
  const std::size_t n = schedule.phases.size();
  schedule.migrations.assign(n, {});
  if (n < 2) return;
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t prev = (p + n - 1) % n;
    schedule.migrations[p] = diff_placements(
        schedule.phases[prev].placement, schedule.phases[p].placement);
  }
}

PhaseAdvisor::PhaseAdvisor(MemorySpec spec, Options options)
    : advisor_(std::move(spec), options) {}

PlacementSchedule PhaseAdvisor::advise(
    const std::vector<PhaseObjects>& phases) const {
  HMEM_ASSERT_MSG(!phases.empty(), "phase advisor needs at least one phase");
  PlacementSchedule schedule;
  schedule.phases.reserve(phases.size());
  for (const PhaseObjects& phase : phases) {
    PhasePlacement pp;
    pp.phase = phase.name;
    pp.placement = advisor_.advise(phase.objects);
    schedule.phases.push_back(std::move(pp));
  }
  compute_migrations(schedule);
  return schedule;
}

}  // namespace hmem::advisor
