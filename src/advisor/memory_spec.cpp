#include "advisor/memory_spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/tier_config.hpp"
#include "common/units.hpp"

namespace hmem::advisor {

MemorySpec::MemorySpec(std::vector<TierBudget> tiers)
    : tiers_(std::move(tiers)) {
  HMEM_ASSERT_MSG(!tiers_.empty(), "memory spec needs at least one tier");
  std::stable_sort(tiers_.begin(), tiers_.end(),
                   [](const TierBudget& a, const TierBudget& b) {
                     return a.relative_performance > b.relative_performance;
                   });
}

MemorySpec MemorySpec::from_config(const Config& config) {
  std::vector<TierBudget> tiers;
  for (const TierSection& section :
       parse_tier_sections(config, "memory spec")) {
    tiers.push_back(TierBudget{section.name, section.capacity_bytes,
                               section.relative_performance});
  }
  return MemorySpec(std::move(tiers));
}

MemorySpec MemorySpec::two_tier(std::uint64_t fast_bytes,
                                std::uint64_t slow_bytes,
                                double fast_performance) {
  return MemorySpec({
      TierBudget{"mcdram", fast_bytes, fast_performance},
      TierBudget{"ddr", slow_bytes, 1.0},
  });
}

std::string MemorySpec::to_config_text() const {
  std::ostringstream os;
  for (const auto& tier : tiers_) {
    os << "[tier " << tier.name << "]\n"
       << "capacity = " << tier.capacity_bytes << "\n"
       << "relative_performance = " << tier.relative_performance << "\n";
  }
  return os.str();
}

}  // namespace hmem::advisor
