// hmem_advisor — stage 3 of the framework.
//
// Takes the per-object report from the trace analysis and a memory
// specification, and computes which objects to host in which tier. Solves
// "separate knapsacks in descending order of memory performance at memory
// page granularity": the fastest tier picks first with the configured
// strategy, unchosen objects cascade to the next tier, and the slowest tier
// is the unbounded fallback.
//
// The advisor assumes a static application address space (all objects alive
// the whole run). That assumption is part of the paper — it is what misleads
// the framework on Lulesh — and the paper's mitigation ("force hmem_advisor
// to consider it has 512 Mbytes ... but still limit auto-hbwmalloc to 256")
// is exposed as Options::virtual_budget_bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "advisor/knapsack.hpp"
#include "advisor/memory_spec.hpp"
#include "advisor/object_info.hpp"

namespace hmem::advisor {

enum class Strategy { kMisses, kDensity, kExact };

const char* strategy_name(Strategy strategy);
std::optional<Strategy> parse_strategy(const std::string& name);

struct Options {
  Strategy strategy = Strategy::kMisses;
  /// Misses(t%): objects below t% of total misses are never promoted.
  double threshold_pct = 0.0;
  /// When non-zero, the *selection* for the fastest tier pretends to have
  /// this budget while the runtime still enforces the tier's real capacity.
  std::uint64_t virtual_budget_bytes = 0;
};

/// One tier's share of the placement.
struct TierPlacement {
  std::string tier_name;
  /// Real tier capacity — what the runtime enforces for this tier. (The
  /// *selection* for the fastest tier may have run with a virtual budget;
  /// see Options::virtual_budget_bytes.)
  std::uint64_t budget_bytes = 0;
  std::vector<ObjectInfo> objects;
  std::uint64_t footprint_bytes = 0;
  std::uint64_t profit_misses = 0;
};

struct Placement {
  /// Fast-to-slow, same order as the MemorySpec; the last tier is the
  /// fallback holding everything unselected.
  std::vector<TierPlacement> tiers;
  /// Static objects the strategy *would* have promoted — reported for the
  /// developer (the interposer cannot retarget them; the paper modified BT
  /// and CGPOP by hand for exactly this reason).
  std::vector<ObjectInfo> static_recommendations;
  /// Size pre-filter bounds for auto-hbwmalloc (Algorithm 1, line 3):
  /// smallest and largest max-size across *all* non-fallback selections —
  /// an allocation outside [lb, ub] cannot belong to any promoted tier.
  std::uint64_t lb_size = 0;
  std::uint64_t ub_size = 0;
  /// Real fast-tier budget the runtime must enforce (line 12's FITS is
  /// checked against this, not against the virtual selection budget).
  std::uint64_t enforced_fast_budget_bytes = 0;
  Strategy strategy = Strategy::kMisses;
  double threshold_pct = 0.0;

  /// Tier index hosting this site, if any non-fallback tier does.
  std::optional<std::size_t> tier_of(callstack::SiteId site) const;
  const TierPlacement& fast() const { return tiers.front(); }
};

class HmemAdvisor {
 public:
  HmemAdvisor(MemorySpec spec, Options options);

  /// Computes the placement for the given profile. Only dynamic objects are
  /// placed into non-fallback tiers; static objects that the strategy would
  /// pick are surfaced in static_recommendations.
  Placement advise(const std::vector<ObjectInfo>& objects) const;

  const MemorySpec& spec() const { return spec_; }
  const Options& options() const { return options_; }

 private:
  Selection run_strategy(const std::vector<ObjectInfo>& objects,
                         std::uint64_t budget) const;

  MemorySpec spec_;
  Options options_;
};

}  // namespace hmem::advisor
