#include "advisor/knapsack.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "memsim/address.hpp"

namespace hmem::advisor {

double ObjectInfo::density() const {
  const std::uint64_t fp = footprint_bytes();
  return fp > 0 ? static_cast<double>(llc_misses) / static_cast<double>(fp)
                : 0.0;
}

std::uint64_t ObjectInfo::footprint_bytes() const {
  return memsim::round_up_pages(max_size_bytes);
}

namespace {

/// Shared greedy core: walk indices in the given priority order, take what
/// fits. Ties in the comparator are broken by original index so results are
/// deterministic regardless of input order.
Selection greedy_take(const std::vector<ObjectInfo>& objects,
                      std::vector<std::size_t> order,
                      std::uint64_t capacity_bytes) {
  Selection sel;
  for (const std::size_t i : order) {
    const std::uint64_t fp = objects[i].footprint_bytes();
    if (fp == 0) continue;  // never-observed object: nothing to place
    if (sel.footprint_bytes + fp > capacity_bytes) continue;
    sel.chosen.push_back(i);
    sel.footprint_bytes += fp;
    sel.profit_misses += objects[i].llc_misses;
  }
  return sel;
}

}  // namespace

Selection greedy_misses(const std::vector<ObjectInfo>& objects,
                        std::uint64_t capacity_bytes, double threshold_pct) {
  HMEM_ASSERT(threshold_pct >= 0.0 && threshold_pct <= 100.0);
  std::uint64_t total_misses = 0;
  for (const auto& o : objects) total_misses += o.llc_misses;
  const double cutoff =
      static_cast<double>(total_misses) * threshold_pct / 100.0;

  std::vector<std::size_t> order;
  order.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].llc_misses == 0) continue;
    if (static_cast<double>(objects[i].llc_misses) < cutoff) continue;
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (objects[a].llc_misses != objects[b].llc_misses)
      return objects[a].llc_misses > objects[b].llc_misses;
    return a < b;
  });
  return greedy_take(objects, std::move(order), capacity_bytes);
}

Selection greedy_density(const std::vector<ObjectInfo>& objects,
                         std::uint64_t capacity_bytes) {
  std::vector<std::size_t> order;
  order.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].llc_misses == 0) continue;
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = objects[a].density();
    const double db = objects[b].density();
    if (da != db) return da > db;
    return a < b;
  });
  return greedy_take(objects, std::move(order), capacity_bytes);
}

Selection exact_knapsack(const std::vector<ObjectInfo>& objects,
                         std::uint64_t capacity_bytes) {
  const std::uint64_t cap_pages = capacity_bytes / memsim::kPageBytes;
  // Guard against accidentally invoking the pseudo-polynomial DP with a
  // budget that would allocate gigabytes of DP table — the exact scenario
  // the paper calls impractical.
  HMEM_ASSERT_MSG(cap_pages <= (1ULL << 22),
                  "exact knapsack capacity too large; use a greedy strategy");
  const std::size_t n = objects.size();
  const auto width = static_cast<std::size_t>(cap_pages) + 1;

  // dp[c] = best profit using a prefix of objects within c pages;
  // take[i * width + c] records the decision for backtracking.
  std::vector<std::uint64_t> dp(width, 0);
  std::vector<std::uint8_t> take(n * width, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t w =
        objects[i].footprint_bytes() / memsim::kPageBytes;
    const std::uint64_t p = objects[i].llc_misses;
    if (w == 0 || w > cap_pages || p == 0) continue;
    for (std::size_t c = width; c-- > static_cast<std::size_t>(w);) {
      const std::uint64_t candidate = dp[c - static_cast<std::size_t>(w)] + p;
      if (candidate > dp[c]) {
        dp[c] = candidate;
        take[i * width + c] = 1;
      }
    }
  }

  Selection sel;
  sel.profit_misses = dp[width - 1];
  // Backtrack to recover the chosen set.
  std::size_t c = width - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i * width + c] == 0) continue;
    sel.chosen.push_back(i);
    sel.footprint_bytes += objects[i].footprint_bytes();
    c -= static_cast<std::size_t>(objects[i].footprint_bytes() /
                                  memsim::kPageBytes);
  }
  std::reverse(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

}  // namespace hmem::advisor
