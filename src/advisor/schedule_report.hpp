// Human-readable placement *schedule* report — the hand-off between
// `hmem_advise --per-phase` and the engine's dynamic condition.
//
// The format nests one placement report per phase under `[phase <name>]`
// headers, so each phase section round-trips through the existing placement
// report parser. Migration lists are NOT serialized: they are a pure
// function of the per-phase placements and are recomputed on read
// (compute_migrations), which keeps the file hand-editable — change a
// phase's object list and the migrations follow.
//
//   # hmem_advisor placement schedule
//   phases = 2
//   [phase calc_forces]
//   strategy = misses
//   ...
//   [tier mcdram budget=268435456]
//   <name> | <max_size> | <llc_misses> | <callstack>
//   [phase advance_elements]
//   ...
#pragma once

#include <string>

#include "advisor/phase_advisor.hpp"

namespace hmem::advisor {

/// First line of every schedule report; sniffed by consumers that accept
/// either a placement or a schedule file (hmem_run --placement).
inline constexpr const char* kScheduleReportHeader =
    "# hmem_advisor placement schedule";

/// True when `text` starts with the schedule header (leading whitespace
/// tolerated) — cheap format sniffing.
bool is_schedule_report(const std::string& text);

std::string write_schedule_report(const PlacementSchedule& schedule);

/// Parses a report produced by write_schedule_report and recomputes the
/// migration lists. Throws std::runtime_error on malformed input.
PlacementSchedule read_schedule_report(const std::string& text);

}  // namespace hmem::advisor
