#include "trace/salvage.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hmem::trace {

void SalvageReport::add_incident(std::string what, std::string file,
                                 std::optional<std::size_t> shard,
                                 std::optional<std::size_t> chunk) {
  ++incidents_total;
  if (incidents.size() < kMaxIncidents) {
    incidents.push_back(
        SalvageIncident{std::move(what), std::move(file), shard, chunk});
  }
}

void SalvageReport::merge_from(const SalvageReport& other) {
  chunks_dropped += other.chunks_dropped;
  events_dropped += other.events_dropped;
  bytes_dropped += other.bytes_dropped;
  tails_abandoned += other.tails_abandoned;
  shards_dropped += other.shards_dropped;
  incidents_total += other.incidents_total;
  for (const auto& inc : other.incidents) {
    if (incidents.size() >= kMaxIncidents) break;
    incidents.push_back(inc);
  }
}

std::string SalvageReport::summary() const {
  if (clean()) return "salvage: clean";
  std::ostringstream os;
  os << "salvage: dropped " << chunks_dropped << " chunk"
     << (chunks_dropped == 1 ? "" : "s") << " (" << events_dropped
     << " events, " << bytes_dropped << " bytes)";
  if (tails_abandoned > 0) {
    os << ", " << tails_abandoned << " tail"
       << (tails_abandoned == 1 ? "" : "s") << " abandoned";
  }
  if (shards_dropped > 0) {
    os << ", " << shards_dropped << " shard"
       << (shards_dropped == 1 ? "" : "s") << " dropped";
  }
  os << "; " << incidents_total << " incident"
     << (incidents_total == 1 ? "" : "s");
  return os.str();
}

RecoveringTraceReader::RecoveringTraceReader(std::istream& in,
                                             callstack::SiteDb& sites,
                                             ReaderOptions options)
    : report_(options.report != nullptr ? options.report : &own_report_),
      source_(options.source),
      shard_(options.shard) {
  options.salvage = true;
  options.report = report_;
  try {
    inner_ = open_trace_reader(in, sites, options);
  } catch (const std::exception& e) {
    // Header damage (bad magic, unsupported version, unreadable stream):
    // the shard yields nothing.
    report_->add_incident(e.what(), source_, shard_);
    ++report_->shards_dropped;
    log_warn(std::string("trace salvage: dropping shard") +
             (source_.empty() ? "" : " " + source_) + ": " + e.what());
    dead_ = true;
  }
}

bool RecoveringTraceReader::next(Event& out) {
  if (dead_) return false;
  try {
    if (inner_->next(out)) return true;
    dead_ = true;
    return false;
  } catch (const std::exception& e) {
    // The salvaging back ends only throw for non-data failures (e.g. an
    // exception from the SiteDb); treat it like framing damage and end
    // the stream.
    report_->add_incident(e.what(), source_, shard_);
    ++report_->tails_abandoned;
    log_warn(std::string("trace salvage: abandoning stream") +
             (source_.empty() ? "" : " " + source_) + ": " + e.what());
    dead_ = true;
    return false;
  }
}

}  // namespace hmem::trace
