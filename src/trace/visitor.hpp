// EventVisitor — the typed pull/dispatch side of the streaming trace
// pipeline.
//
// Consumers that care about event kinds (the aggregator, the folding
// analysis) implement EventVisitor and receive one typed callback per
// event; dispatch_event() does the variant dispatch once, centrally.
// VisitorSink adapts a visitor into an EventSink so a producer (the
// profiler) can stream straight into an analysis without any intermediate
// buffer or file.
#pragma once

#include "trace/event.hpp"

namespace hmem::trace {

class EventVisitor {
 public:
  virtual ~EventVisitor() = default;
  virtual void on_alloc(const AllocEvent&) {}
  virtual void on_free(const FreeEvent&) {}
  virtual void on_sample(const SampleEvent&) {}
  virtual void on_phase(const PhaseEvent&) {}
  virtual void on_counter(const CounterEvent&) {}
};

inline void dispatch_event(const Event& event, EventVisitor& visitor) {
  std::visit(
      [&](const auto& e) {
        using T = std::decay_t<decltype(e)>;
        if constexpr (std::is_same_v<T, AllocEvent>) {
          visitor.on_alloc(e);
        } else if constexpr (std::is_same_v<T, FreeEvent>) {
          visitor.on_free(e);
        } else if constexpr (std::is_same_v<T, SampleEvent>) {
          visitor.on_sample(e);
        } else if constexpr (std::is_same_v<T, PhaseEvent>) {
          visitor.on_phase(e);
        } else if constexpr (std::is_same_v<T, CounterEvent>) {
          visitor.on_counter(e);
        }
      },
      event);
}

/// Replays a buffered trace through a visitor (the buffered-path adapter).
inline void visit_buffer(const TraceBuffer& buffer, EventVisitor& visitor) {
  for (const Event& event : buffer.events()) dispatch_event(event, visitor);
}

/// EventSink facade over an EventVisitor: lets the profiler stream directly
/// into an analysis with no trace materialized anywhere.
class VisitorSink : public EventSink {
 public:
  explicit VisitorSink(EventVisitor& visitor) : visitor_(&visitor) {}
  void on_event(const Event& event) override {
    dispatch_event(event, *visitor_);
  }

 private:
  EventVisitor* visitor_;
};

}  // namespace hmem::trace
