#include "trace/format.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "trace/salvage.hpp"

namespace hmem::trace {

namespace {

[[noreturn]] void malformed(const std::string& line,
                            const ErrorContext& ctx = {}) {
  throw FormatError("malformed trace line: " + line, ctx);
}

std::string fmt_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

double parse_time(const std::string& s, const std::string& line,
                  const ErrorContext& ctx = {}) {
  char* end = nullptr;
  const double t = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || s.empty()) malformed(line, ctx);
  return t;
}

std::uint64_t parse_u64(const std::string& s, const std::string& line,
                        const ErrorContext& ctx = {}, int base = 10) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, base);
  if (end == nullptr || *end != '\0' || s.empty()) malformed(line, ctx);
  return v;
}

// ---- text back end --------------------------------------------------------

class TextTraceWriter final : public TraceWriter {
 public:
  TextTraceWriter(std::ostream& out, const callstack::SiteDb& sites)
      : out_(&out), sites_(&sites) {}
  ~TextTraceWriter() override {
    // finish() can throw (stream failure, injected io_write fault); a
    // destructor must swallow that — callers who care call finish().
    try {
      finish();
    } catch (...) {
    }
  }

  void on_event(const Event& event) override {
    emit_new_sites();
    std::visit(
        [&](const auto& e) {
          using T = std::decay_t<decltype(e)>;
          char buf[128];
          if constexpr (std::is_same_v<T, AllocEvent>) {
            std::snprintf(buf, sizeof(buf), "A|%s|%u|%" PRIx64 "|%" PRIu64,
                          fmt_time(e.time_ns).c_str(), e.site, e.addr,
                          e.size);
            *out_ << buf << '\n';
          } else if constexpr (std::is_same_v<T, FreeEvent>) {
            std::snprintf(buf, sizeof(buf), "F|%s|%" PRIx64,
                          fmt_time(e.time_ns).c_str(), e.addr);
            *out_ << buf << '\n';
          } else if constexpr (std::is_same_v<T, SampleEvent>) {
            std::snprintf(buf, sizeof(buf), "M|%s|%" PRIx64 "|%d|%" PRIu64,
                          fmt_time(e.time_ns).c_str(), e.addr,
                          e.is_write ? 1 : 0, e.weight);
            *out_ << buf << '\n';
          } else if constexpr (std::is_same_v<T, PhaseEvent>) {
            *out_ << "P|" << fmt_time(e.time_ns) << '|'
                  << (e.begin ? 'B' : 'E') << '|' << escape_field(e.name)
                  << '\n';
          } else if constexpr (std::is_same_v<T, CounterEvent>) {
            // %.17g keeps the value lossless across a round trip.
            std::snprintf(buf, sizeof(buf), "%.17g", e.value);
            *out_ << "C|" << fmt_time(e.time_ns) << '|'
                  << escape_field(e.name) << '|' << buf << '\n';
          }
          (void)buf;
        },
        event);
    ++events_;
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    if (fault::inject(fault::Site::kIoWrite)) {
      throw IoError("injected io_write fault finishing text trace");
    }
    emit_new_sites();
    out_->flush();
    if (!*out_) throw IoError("trace write failed");
  }

  std::size_t events_written() const override { return events_; }

 private:
  void emit_new_sites() {
    while (emitted_sites_ < sites_->size()) {
      const auto& site = sites_->all()[emitted_sites_];
      *out_ << "S|" << site.id << '|' << escape_field(site.object_name) << '|'
            << (site.is_dynamic ? 1 : 0) << '|'
            << escape_field(site.stack.to_string()) << '\n';
      ++emitted_sites_;
    }
  }

  std::ostream* out_;
  const callstack::SiteDb* sites_;
  std::size_t emitted_sites_ = 0;
  std::size_t events_ = 0;
  bool finished_ = false;
};

class TextTraceReader final : public TraceReader {
 public:
  TextTraceReader(std::istream& in, callstack::SiteDb& sites,
                  ReaderOptions options = {})
      : in_(&in),
        sites_(&sites),
        salvage_(options.salvage),
        report_(options.report != nullptr ? options.report : &own_report_),
        ctx_{std::move(options.source), options.shard, std::nullopt} {}

  bool next(Event& out) override {
    if (abandoned_) return false;
    if (fault::inject(fault::Site::kIoRead)) {
      if (!salvage_) throw IoError("injected io_read fault", ctx_);
      report_->add_incident("injected io_read fault", ctx_.file, ctx_.shard);
      ++report_->tails_abandoned;
      abandoned_ = true;
      return false;
    }
    while (std::getline(*in_, line_)) {
      if (line_.empty() || line_[0] == '#') continue;
      if (!salvage_) {
        if (parse_line(line_, out)) return true;
        continue;
      }
      // Text damage is line-local: skip the bad line, count it as one
      // lost event, keep reading.
      try {
        if (parse_line(line_, out)) return true;
      } catch (const std::exception& e) {
        report_->add_incident(e.what(), ctx_.file, ctx_.shard);
        ++report_->events_dropped;
        report_->bytes_dropped += line_.size() + 1;
      }
    }
    return false;
  }

 private:
  /// Returns true when the line carried an event ('S' lines only update the
  /// site database and yield no event).
  bool parse_line(const std::string& line, Event& out) {
    const auto fields = split(line, '|');
    if (fields.size() < 2) malformed(line, ctx_);
    const char kind = fields[0].size() == 1 ? fields[0][0] : '\0';
    switch (kind) {
      case 'S': {
        if (fields.size() != 5) malformed(line, ctx_);
        const auto old_id =
            static_cast<callstack::SiteId>(parse_u64(fields[1], line));
        callstack::SymbolicCallStack stack;
        if (!callstack::SymbolicCallStack::from_string(
                unescape_field(fields[4]), stack))
          malformed(line, ctx_);
        const bool dynamic = fields[3] == "1";
        remap_[old_id] =
            sites_->intern(unescape_field(fields[2]), stack, dynamic);
        return false;
      }
      case 'A': {
        if (fields.size() != 5) malformed(line, ctx_);
        AllocEvent e;
        e.time_ns = parse_time(fields[1], line, ctx_);
        const auto old_id =
            static_cast<callstack::SiteId>(parse_u64(fields[2], line));
        const auto it = remap_.find(old_id);
        if (it == remap_.end()) malformed(line, ctx_);
        e.site = it->second;
        e.addr = parse_u64(fields[3], line, ctx_, 16);
        e.size = parse_u64(fields[4], line, ctx_);
        out = e;
        return true;
      }
      case 'F': {
        if (fields.size() != 3) malformed(line, ctx_);
        FreeEvent e;
        e.time_ns = parse_time(fields[1], line, ctx_);
        e.addr = parse_u64(fields[2], line, ctx_, 16);
        out = e;
        return true;
      }
      case 'M': {
        if (fields.size() != 5) malformed(line, ctx_);
        SampleEvent e;
        e.time_ns = parse_time(fields[1], line, ctx_);
        e.addr = parse_u64(fields[2], line, ctx_, 16);
        e.is_write = fields[3] == "1";
        e.weight = parse_u64(fields[4], line, ctx_);
        out = e;
        return true;
      }
      case 'P': {
        if (fields.size() != 4) malformed(line, ctx_);
        PhaseEvent e;
        e.time_ns = parse_time(fields[1], line, ctx_);
        if (fields[2] != "B" && fields[2] != "E") malformed(line, ctx_);
        e.begin = fields[2] == "B";
        e.name = unescape_field(fields[3]);
        out = e;
        return true;
      }
      case 'C': {
        if (fields.size() != 4) malformed(line, ctx_);
        CounterEvent e;
        e.time_ns = parse_time(fields[1], line, ctx_);
        e.name = unescape_field(fields[2]);
        e.value = parse_time(fields[3], line, ctx_);
        out = e;
        return true;
      }
      default:
        malformed(line, ctx_);
    }
  }

  std::istream* in_;
  callstack::SiteDb* sites_;
  bool salvage_ = false;
  SalvageReport own_report_;
  SalvageReport* report_;
  ErrorContext ctx_;
  bool abandoned_ = false;
  std::unordered_map<callstack::SiteId, callstack::SiteId> remap_;
  std::string line_;  ///< reused across next() calls — capacity amortizes
};

}  // namespace

// ---- field quoting --------------------------------------------------------

std::string escape_field(const std::string& name) {
  bool needs_quoting = name.empty();
  for (const char c : name) {
    if (c == '|' || c == '"' || c == '\\' || c == ' ' || c == '\n' ||
        c == '\t' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return name;
  std::string out = "\"";
  for (const char c : name) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '|': out += "\\p"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string unescape_field(const std::string& field) {
  if (field.empty() || field[0] != '"') return field;  // unquoted: verbatim
  if (field.size() < 2 || field.back() != '"')
    throw std::runtime_error("unterminated quoted field: " + field);
  std::string out;
  out.reserve(field.size() - 2);
  for (std::size_t i = 1; i + 1 < field.size(); ++i) {
    const char c = field[i];
    if (c == '"')
      throw std::runtime_error("stray quote inside quoted field: " + field);
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= field.size())  // the backslash escapes the closing quote
      throw std::runtime_error("unterminated quoted field: " + field);
    switch (field[++i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'p': out.push_back('|'); break;
      default:
        throw std::runtime_error("unknown escape in quoted field: " + field);
    }
  }
  return out;
}

// ---- front-door factories -------------------------------------------------

const char* trace_format_name(TraceFormat format) {
  return format == TraceFormat::kBinary ? "binary" : "text";
}

std::optional<TraceFormat> parse_trace_format(const std::string& name) {
  if (name == "text") return TraceFormat::kText;
  if (name == "binary") return TraceFormat::kBinary;
  return std::nullopt;
}

namespace detail {

std::unique_ptr<TraceWriter> make_text_writer(std::ostream& out,
                                              const callstack::SiteDb& sites) {
  return std::make_unique<TextTraceWriter>(out, sites);
}

std::unique_ptr<TraceReader> open_text_reader(std::istream& in,
                                              callstack::SiteDb& sites) {
  return std::make_unique<TextTraceReader>(in, sites);
}

std::unique_ptr<TraceReader> open_text_reader(std::istream& in,
                                              callstack::SiteDb& sites,
                                              const ReaderOptions& options) {
  return std::make_unique<TextTraceReader>(in, sites, options);
}

}  // namespace detail

std::unique_ptr<TraceWriter> make_trace_writer(std::ostream& out,
                                               const callstack::SiteDb& sites,
                                               TraceFormat format) {
  return format == TraceFormat::kBinary ? detail::make_binary_writer(out, sites)
                                        : detail::make_text_writer(out, sites);
}

std::unique_ptr<TraceWriter> make_trace_writer(std::ostream& out,
                                               const callstack::SiteDb& sites,
                                               TraceFormat format,
                                               const WriterOptions& options) {
  // Checksums are a binary-v2 concept; the text format ignores them.
  return format == TraceFormat::kBinary
             ? detail::make_binary_writer(out, sites, options)
             : detail::make_text_writer(out, sites);
}

TraceFormat sniff_trace_format(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  if (start == std::istream::pos_type(-1)) {
    // Non-seekable stream (a pipe, /dev/stdin): a one-byte peek decides —
    // no text trace line starts with the magic's 'H'.
    return in.peek() == kBinaryMagic[0] ? TraceFormat::kBinary
                                        : TraceFormat::kText;
  }
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  const bool is_binary = in.gcount() == sizeof(magic) &&
                         std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
  in.clear();
  in.seekg(start);
  if (!in)
    throw std::runtime_error("trace stream is not seekable; cannot sniff");
  return is_binary ? TraceFormat::kBinary : TraceFormat::kText;
}

std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               TraceFormat format) {
  return format == TraceFormat::kBinary ? detail::open_binary_reader(in, sites)
                                        : detail::open_text_reader(in, sites);
}

std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites) {
  return open_trace_reader(in, sites, sniff_trace_format(in));
}

std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               TraceFormat format,
                                               const ReaderOptions& options) {
  return format == TraceFormat::kBinary
             ? detail::open_binary_reader(in, sites, options)
             : detail::open_text_reader(in, sites, options);
}

std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               const ReaderOptions& options) {
  return open_trace_reader(in, sites, sniff_trace_format(in), options);
}

std::size_t pump(TraceReader& reader, EventSink& sink) {
  Event event;
  std::size_t n = 0;
  while (reader.next(event)) {
    sink.on_event(event);
    ++n;
  }
  return n;
}

std::size_t pump(TraceReader& reader, EventVisitor& visitor) {
  Event event;
  std::size_t n = 0;
  while (reader.next(event)) {
    dispatch_event(event, visitor);
    ++n;
  }
  return n;
}

}  // namespace hmem::trace
