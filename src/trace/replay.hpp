// Replay front-end over recorded trace shards.
//
// A profiled run leaves one shard per rank on disk (text v1 or chunked
// binary v2). ReplayReader owns everything needed to read such a recording
// back as one ordered event stream: the open files, a per-shard format
// reader (format sniffed independently per shard), per-rank address
// rebasing by kRankAddressStride so live ranges never collide, a k-way
// timestamp merge, and the shared SiteDb every shard's sites are
// re-interned into. hmem_advise aggregates through it; the engine's
// replay_run drives a simulation from it (hmem_run --replay).
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "callstack/sitedb.hpp"
#include "trace/format.hpp"
#include "trace/merge.hpp"
#include "trace/salvage.hpp"

namespace hmem::trace {

/// Damage-tolerance knob for ReplayReader (distinct from the engine's
/// ReplayOptions, which configures the simulated machine).
struct ReplayReaderOptions {
  /// Read every shard through chunk-level salvage: damaged chunks are
  /// skipped, dead shards dropped with a warning, and the losses
  /// accumulate in salvage_report(). Default is the strict contract —
  /// throw on the first malformed byte, naming the shard and chunk.
  bool salvage = false;
};

class ReplayReader {
 public:
  /// Opens every shard (rank order = argument order). Throws an
  /// hmem::Error (a std::runtime_error) naming the offending path when a
  /// shard cannot be opened or its header does not sniff as a known trace
  /// format — unless options.salvage is set, in which case the shard is
  /// dropped and recorded instead.
  explicit ReplayReader(const std::vector<std::string>& paths);
  ReplayReader(const std::vector<std::string>& paths,
               const ReplayReaderOptions& options);

  /// The merged, time-ordered event stream (single pass; not rewindable).
  TraceReader& reader() { return *merged_; }

  /// Allocation sites of all shards, re-interned into one database.
  callstack::SiteDb& sites() { return sites_; }
  const callstack::SiteDb& sites() const { return sites_; }

  std::size_t shard_count() const { return shard_count_; }

  /// What salvage had to drop (meaningful when options.salvage was set;
  /// clean() otherwise). Populated lazily as the stream is consumed.
  const SalvageReport& salvage_report() const { return report_; }

 private:
  callstack::SiteDb sites_;
  std::vector<std::unique_ptr<std::ifstream>> files_;
  std::unique_ptr<MergeTraceReader> merged_;
  std::size_t shard_count_ = 0;
  SalvageReport report_;
};

}  // namespace hmem::trace
