// Replay front-end over recorded trace shards.
//
// A profiled run leaves one shard per rank on disk (text v1 or chunked
// binary v2). ReplayReader owns everything needed to read such a recording
// back as one ordered event stream: the open files, a per-shard format
// reader (format sniffed independently per shard), per-rank address
// rebasing by kRankAddressStride so live ranges never collide, a k-way
// timestamp merge, and the shared SiteDb every shard's sites are
// re-interned into. hmem_advise aggregates through it; the engine's
// replay_run drives a simulation from it (hmem_run --replay).
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "callstack/sitedb.hpp"
#include "trace/format.hpp"
#include "trace/merge.hpp"

namespace hmem::trace {

class ReplayReader {
 public:
  /// Opens every shard (rank order = argument order). Throws
  /// std::runtime_error naming the offending path when a shard cannot be
  /// opened or its header does not sniff as a known trace format.
  explicit ReplayReader(const std::vector<std::string>& paths);

  /// The merged, time-ordered event stream (single pass; not rewindable).
  TraceReader& reader() { return *merged_; }

  /// Allocation sites of all shards, re-interned into one database.
  callstack::SiteDb& sites() { return sites_; }
  const callstack::SiteDb& sites() const { return sites_; }

  std::size_t shard_count() const { return shard_count_; }

 private:
  callstack::SiteDb sites_;
  std::vector<std::unique_ptr<std::ifstream>> files_;
  std::unique_ptr<MergeTraceReader> merged_;
  std::size_t shard_count_ = 0;
};

}  // namespace hmem::trace
