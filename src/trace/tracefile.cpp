#include "trace/tracefile.hpp"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "common/strings.hpp"

namespace hmem::trace {

namespace {

double event_time(const Event& e) { return event_time_ns(e); }

std::string fmt_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t);
  return buf;
}

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("malformed trace line: " + line);
}

double parse_time(const std::string& s, const std::string& line) {
  char* end = nullptr;
  const double t = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') malformed(line);
  return t;
}

std::uint64_t parse_u64(const std::string& s, const std::string& line,
                        int base = 10) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, base);
  if (end == nullptr || *end != '\0') malformed(line);
  return v;
}

}  // namespace

double event_time_ns(const Event& event) {
  return std::visit([](const auto& e) { return e.time_ns; }, event);
}

std::size_t write_trace(std::ostream& out, const callstack::SiteDb& sites,
                        const TraceBuffer& trace) {
  for (const auto& site : sites.all()) {
    out << "S|" << site.id << '|' << site.object_name << '|'
        << (site.is_dynamic ? 1 : 0) << '|' << site.stack.to_string() << '\n';
  }
  std::size_t lines = 0;
  for (const auto& event : trace.events()) {
    std::visit(
        [&](const auto& e) {
          using T = std::decay_t<decltype(e)>;
          char buf[128];
          if constexpr (std::is_same_v<T, AllocEvent>) {
            std::snprintf(buf, sizeof(buf), "A|%s|%u|%" PRIx64 "|%" PRIu64,
                          fmt_time(e.time_ns).c_str(), e.site, e.addr,
                          e.size);
            out << buf << '\n';
          } else if constexpr (std::is_same_v<T, FreeEvent>) {
            std::snprintf(buf, sizeof(buf), "F|%s|%" PRIx64,
                          fmt_time(e.time_ns).c_str(), e.addr);
            out << buf << '\n';
          } else if constexpr (std::is_same_v<T, SampleEvent>) {
            std::snprintf(buf, sizeof(buf), "M|%s|%" PRIx64 "|%d|%" PRIu64,
                          fmt_time(e.time_ns).c_str(), e.addr,
                          e.is_write ? 1 : 0, e.weight);
            out << buf << '\n';
          } else if constexpr (std::is_same_v<T, PhaseEvent>) {
            out << "P|" << fmt_time(e.time_ns) << '|'
                << (e.begin ? 'B' : 'E') << '|' << e.name << '\n';
          } else if constexpr (std::is_same_v<T, CounterEvent>) {
            // Counter names may contain anything but '|'.
            out << "C|" << fmt_time(e.time_ns) << '|' << e.name << '|'
                << e.value << '\n';
          }
          (void)buf;
        },
        event);
    ++lines;
  }
  (void)event_time;  // silence unused in some configurations
  return lines;
}

void read_trace(std::istream& in, callstack::SiteDb& sites,
                TraceBuffer& trace) {
  std::unordered_map<callstack::SiteId, callstack::SiteId> remap;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, '|');
    if (fields.size() < 2) malformed(line);
    const char kind = fields[0].size() == 1 ? fields[0][0] : '\0';
    switch (kind) {
      case 'S': {
        if (fields.size() != 5) malformed(line);
        const auto old_id =
            static_cast<callstack::SiteId>(parse_u64(fields[1], line));
        callstack::SymbolicCallStack stack;
        if (!callstack::SymbolicCallStack::from_string(fields[4], stack))
          malformed(line);
        const bool dynamic = fields[3] == "1";
        remap[old_id] = sites.intern(fields[2], stack, dynamic);
        break;
      }
      case 'A': {
        if (fields.size() != 5) malformed(line);
        AllocEvent e;
        e.time_ns = parse_time(fields[1], line);
        const auto old_id =
            static_cast<callstack::SiteId>(parse_u64(fields[2], line));
        const auto it = remap.find(old_id);
        if (it == remap.end()) malformed(line);
        e.site = it->second;
        e.addr = parse_u64(fields[3], line, 16);
        e.size = parse_u64(fields[4], line);
        trace.add(e);
        break;
      }
      case 'F': {
        if (fields.size() != 3) malformed(line);
        FreeEvent e;
        e.time_ns = parse_time(fields[1], line);
        e.addr = parse_u64(fields[2], line, 16);
        trace.add(e);
        break;
      }
      case 'M': {
        if (fields.size() != 5) malformed(line);
        SampleEvent e;
        e.time_ns = parse_time(fields[1], line);
        e.addr = parse_u64(fields[2], line, 16);
        e.is_write = fields[3] == "1";
        e.weight = parse_u64(fields[4], line);
        trace.add(e);
        break;
      }
      case 'P': {
        if (fields.size() != 4) malformed(line);
        PhaseEvent e;
        e.time_ns = parse_time(fields[1], line);
        if (fields[2] != "B" && fields[2] != "E") malformed(line);
        e.begin = fields[2] == "B";
        e.name = fields[3];
        trace.add(e);
        break;
      }
      case 'C': {
        if (fields.size() != 4) malformed(line);
        CounterEvent e;
        e.time_ns = parse_time(fields[1], line);
        e.name = fields[2];
        e.value = parse_time(fields[3], line);
        trace.add(e);
        break;
      }
      default:
        malformed(line);
    }
  }
}

}  // namespace hmem::trace
