#include "trace/tracefile.hpp"

#include "trace/format.hpp"

namespace hmem::trace {

double event_time_ns(const Event& event) {
  return std::visit([](const auto& e) { return e.time_ns; }, event);
}

void TraceBuffer::on_event(const Event& event) { events_.push_back(event); }

std::size_t write_trace(std::ostream& out, const callstack::SiteDb& sites,
                        const TraceBuffer& trace) {
  const auto writer = make_trace_writer(out, sites, TraceFormat::kText);
  for (const Event& event : trace.events()) writer->on_event(event);
  writer->finish();
  return writer->events_written();
}

void read_trace(std::istream& in, callstack::SiteDb& sites,
                TraceBuffer& trace) {
  const auto reader = open_trace_reader(in, sites);
  pump(*reader, trace);
}

}  // namespace hmem::trace
