// Trace events — the substitute for Extrae's Paraver trace-file contents.
//
// The paper's stage 1 records exactly two things the rest of the pipeline
// needs: dynamic-memory (de)allocations (pointer, size, call-stack) and
// PEBS-sampled LLC-miss references (address). We also keep phase markers and
// named counters, which the Folding analysis (Figure 5) consumes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "callstack/sitedb.hpp"
#include "memsim/address.hpp"

namespace hmem::trace {

using memsim::Address;
using callstack::SiteId;

struct AllocEvent {
  double time_ns = 0;
  SiteId site = callstack::kInvalidSite;
  Address addr = 0;
  std::uint64_t size = 0;
};

struct FreeEvent {
  double time_ns = 0;
  Address addr = 0;
};

/// One PEBS sample: an LLC miss whose referenced address was captured.
/// `weight` is the sampling period — each sample statistically represents
/// `weight` misses.
struct SampleEvent {
  double time_ns = 0;
  Address addr = 0;
  bool is_write = false;
  std::uint64_t weight = 1;
};

struct PhaseEvent {
  double time_ns = 0;
  std::string name;
  bool begin = true;
};

/// Periodic named counter reading (e.g. instructions retired), used by the
/// Folding analysis to reconstruct MIPS-over-time.
struct CounterEvent {
  double time_ns = 0;
  std::string name;
  double value = 0;
};

using Event =
    std::variant<AllocEvent, FreeEvent, SampleEvent, PhaseEvent, CounterEvent>;

double event_time_ns(const Event& event);

/// Append-only in-memory trace. Events are expected (and verified by the
/// reader/aggregator) to be in non-decreasing time order.
class TraceBuffer {
 public:
  void add(Event event) { events_.push_back(std::move(event)); }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace hmem::trace
