// Trace events — the substitute for Extrae's Paraver trace-file contents.
//
// The paper's stage 1 records exactly two things the rest of the pipeline
// needs: dynamic-memory (de)allocations (pointer, size, call-stack) and
// PEBS-sampled LLC-miss references (address). We also keep phase markers and
// named counters, which the Folding analysis (Figure 5) consumes.
//
// The trace is a *stream*, not a container: producers push events into an
// EventSink one at a time, and consumers either pull from a TraceReader
// (trace/format.hpp) or receive typed dispatch through an EventVisitor
// (trace/visitor.hpp). TraceBuffer — an in-memory vector of events — is just
// one sink implementation, kept for tests and for callers that genuinely
// need random access.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "callstack/sitedb.hpp"
#include "memsim/address.hpp"

namespace hmem::trace {

using memsim::Address;
using callstack::SiteId;

struct AllocEvent {
  double time_ns = 0;
  SiteId site = callstack::kInvalidSite;
  Address addr = 0;
  std::uint64_t size = 0;

  bool operator==(const AllocEvent&) const = default;
};

struct FreeEvent {
  double time_ns = 0;
  Address addr = 0;

  bool operator==(const FreeEvent&) const = default;
};

/// One PEBS sample: an LLC miss whose referenced address was captured.
/// `weight` is the sampling period — each sample statistically represents
/// `weight` misses.
struct SampleEvent {
  double time_ns = 0;
  Address addr = 0;
  bool is_write = false;
  std::uint64_t weight = 1;

  bool operator==(const SampleEvent&) const = default;
};

struct PhaseEvent {
  double time_ns = 0;
  std::string name;
  bool begin = true;

  bool operator==(const PhaseEvent&) const = default;
};

/// Periodic named counter reading (e.g. instructions retired), used by the
/// Folding analysis to reconstruct MIPS-over-time.
struct CounterEvent {
  double time_ns = 0;
  std::string name;
  double value = 0;

  bool operator==(const CounterEvent&) const = default;
};

using Event =
    std::variant<AllocEvent, FreeEvent, SampleEvent, PhaseEvent, CounterEvent>;

double event_time_ns(const Event& event);

/// Push interface of the streaming trace pipeline. The profiler emits into
/// an EventSink; implementations include TraceBuffer (below), the format
/// writers (trace/format.hpp) and the visitor adapter (trace/visitor.hpp).
/// Producers are expected to emit events in non-decreasing time order.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Append-only in-memory trace: the buffering EventSink. Events are expected
/// (and verified by the reader/aggregator) to be in non-decreasing time
/// order.
class TraceBuffer : public EventSink {
 public:
  // Defined out of line (tracefile.cpp): inlining the variant copy where
  // the active alternative is statically known trips a GCC-12
  // -Wmaybe-uninitialized false positive on the inactive alternatives.
  void on_event(const Event& event) override;
  void add(Event event) { events_.push_back(std::move(event)); }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace hmem::trace
