// Wire-level primitives of the binary trace format v2: LEB128 varints and
// zigzag signed mapping. Header-only so the writer, the reader and the
// tests share one definition of the encoding.
#pragma once

#include <cstdint>
#include <string>

namespace hmem::trace::wire {

/// Appends an unsigned LEB128 varint (7 bits per byte, MSB = continuation).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Reads a varint from [p, end); advances p. Returns false on truncation
/// or on an encoding longer than 10 bytes (u64 overflow).
inline bool get_varint(const char*& p, const char* end, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (p != end && shift < 64) {
    const auto byte = static_cast<unsigned char>(*p++);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

/// Zigzag: maps small-magnitude signed deltas to small unsigned varints.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace hmem::trace::wire
