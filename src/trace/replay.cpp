#include "trace/replay.hpp"

#include <stdexcept>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace hmem::trace {

ReplayReader::ReplayReader(const std::vector<std::string>& paths)
    : ReplayReader(paths, ReplayReaderOptions{}) {}

ReplayReader::ReplayReader(const std::vector<std::string>& paths,
                           const ReplayReaderOptions& options) {
  if (paths.empty()) throw ConfigError("no trace shards given");
  std::vector<std::unique_ptr<TraceReader>> readers;
  MergeOptions merge_options;
  merge_options.drop_failed_inputs = options.salvage;
  merge_options.report = &report_;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto in = std::make_unique<std::ifstream>(paths[i], std::ios::binary);
    if (!*in) {
      if (!options.salvage) {
        throw IoError("cannot open " + paths[i],
                      ErrorContext{paths[i], i, std::nullopt});
      }
      log_warn("trace salvage: cannot open " + paths[i] + "; dropping shard");
      report_.add_incident("cannot open " + paths[i], paths[i], i);
      ++report_.shards_dropped;
      continue;
    }
    ReaderOptions reader_options;
    reader_options.salvage = options.salvage;
    reader_options.report = &report_;
    reader_options.source = paths[i];
    reader_options.shard = i;
    if (options.salvage) {
      // RecoveringTraceReader absorbs header damage (the shard is dropped,
      // not fatal) and residual read errors.
      readers.push_back(std::make_unique<OffsetTraceReader>(
          std::make_unique<RecoveringTraceReader>(*in, sites_,
                                                  reader_options),
          static_cast<Address>(i) * kRankAddressStride));
    } else {
      try {
        readers.push_back(std::make_unique<OffsetTraceReader>(
            open_trace_reader(*in, sites_, reader_options),
            static_cast<Address>(i) * kRankAddressStride));
      } catch (const Error&) {
        throw;  // already carries the shard path and index
      } catch (const std::exception& e) {
        throw FormatError(paths[i] + ": " + e.what(),
                          ErrorContext{paths[i], i, std::nullopt});
      }
    }
    merge_options.labels.push_back(paths[i]);
    files_.push_back(std::move(in));
  }
  // Salvage keeps going past individual dead shards, but an input set with
  // *nothing* readable must not degrade into an empty (and plausible-
  // looking) trace: that is a hard error in both modes.
  if (readers.empty()) {
    throw IoError("all " + std::to_string(paths.size()) +
                  " trace shard(s) unreadable");
  }
  shard_count_ = paths.size();
  merged_ = std::make_unique<MergeTraceReader>(std::move(readers),
                                               std::move(merge_options));
}

}  // namespace hmem::trace
