#include "trace/replay.hpp"

#include <stdexcept>

namespace hmem::trace {

ReplayReader::ReplayReader(const std::vector<std::string>& paths) {
  if (paths.empty()) throw std::runtime_error("no trace shards given");
  std::vector<std::unique_ptr<TraceReader>> readers;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    auto in = std::make_unique<std::ifstream>(paths[i], std::ios::binary);
    if (!*in) throw std::runtime_error("cannot open " + paths[i]);
    try {
      readers.push_back(std::make_unique<OffsetTraceReader>(
          open_trace_reader(*in, sites_),
          static_cast<Address>(i) * kRankAddressStride));
    } catch (const std::exception& e) {
      throw std::runtime_error(paths[i] + ": " + e.what());
    }
    files_.push_back(std::move(in));
  }
  shard_count_ = paths.size();
  merged_ = std::make_unique<MergeTraceReader>(std::move(readers));
}

}  // namespace hmem::trace
