// Chunk-level trace salvage: read as much of a damaged shard as the
// format's framing allows, and account for exactly what was lost.
//
// Binary v2 was designed for this — every event chunk carries its event
// count and payload size, and delta state resets at chunk boundaries — so
// a chunk whose payload fails its CRC (or decodes to garbage) can be
// dropped without desynchronizing the rest of the stream. Damage to the
// framing itself (a truncated header, an unknown tag) makes everything
// after it unreadable; salvage then keeps the events already decoded and
// abandons the tail. Text traces degrade line-by-line: malformed lines
// are skipped and counted.
//
// The strict contract (throw FormatError on the first malformed byte) is
// still the default everywhere; salvage is opt-in via
// ReaderOptions::salvage or the RecoveringTraceReader below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace hmem::trace {

/// One recorded salvage event: what went wrong and where.
struct SalvageIncident {
  std::string what;                  ///< the error the strict reader threw
  std::string file;                  ///< shard path/label, if known
  std::optional<std::size_t> shard;  ///< shard index, if known
  std::optional<std::size_t> chunk;  ///< binary chunk index, if known
};

/// Accumulated damage accounting. One report may be shared by several
/// readers (a whole multi-shard replay front writes into one).
struct SalvageReport {
  std::uint64_t chunks_dropped = 0;   ///< event chunks skipped (whole/part)
  std::uint64_t events_dropped = 0;   ///< events lost with those chunks
  std::uint64_t bytes_dropped = 0;    ///< payload bytes not decoded
  std::uint64_t tails_abandoned = 0;  ///< streams cut short by framing damage
  std::uint64_t shards_dropped = 0;   ///< whole shards given up on

  /// First kMaxIncidents incidents, verbatim; incidents_total keeps the
  /// real count when the cap is hit.
  static constexpr std::size_t kMaxIncidents = 64;
  std::vector<SalvageIncident> incidents;
  std::uint64_t incidents_total = 0;

  bool clean() const { return incidents_total == 0 && shards_dropped == 0; }

  void add_incident(std::string what, std::string file = "",
                    std::optional<std::size_t> shard = std::nullopt,
                    std::optional<std::size_t> chunk = std::nullopt);
  void merge_from(const SalvageReport& other);

  /// "salvage: dropped 1 chunk (4096 events, 12345 bytes), 1 tail" — or
  /// "salvage: clean".
  std::string summary() const;
};

/// A TraceReader that never throws for data damage: it opens the
/// underlying stream with salvage forced on, absorbs any residual error
/// into the report, and simply ends the stream early when nothing more
/// can be read. Construction itself does not throw on a damaged header —
/// the reader starts out exhausted and the report says why.
class RecoveringTraceReader final : public TraceReader {
 public:
  /// Sniffs the format. `options.salvage` is implied; if `options.report`
  /// is null the reader's own report is used.
  RecoveringTraceReader(std::istream& in, callstack::SiteDb& sites,
                        ReaderOptions options = {});

  bool next(Event& out) override;

  const SalvageReport& report() const { return *report_; }
  /// True once the stream was abandoned (header damage or a stream-level
  /// read failure). Remaining events, if any already decoded, were
  /// delivered before this flipped.
  bool dead() const { return dead_; }

 private:
  std::unique_ptr<TraceReader> inner_;
  SalvageReport own_report_;
  SalvageReport* report_;
  std::string source_;
  std::optional<std::size_t> shard_;
  bool dead_ = false;
};

}  // namespace hmem::trace
