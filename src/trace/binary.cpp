// Binary trace format v2 (layout documented in trace/format.hpp).
//
// Design goals, in order: (1) streamable — the writer is an EventSink and
// never holds more than one chunk; (2) compact — timestamps and addresses
// are zigzag-varint deltas, names go through a string table; (3) seekable
// in the large — every event chunk carries its event count and payload byte
// size, so a reader can skip whole chunks without decoding them. Delta
// state resets at chunk boundaries for exactly that reason.
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "trace/format.hpp"
#include "trace/salvage.hpp"
#include "trace/wire.hpp"

namespace hmem::trace {

namespace {

constexpr std::size_t kChunkEvents = 4096;

// Reader-side sanity caps on corruption-controlled sizes, far above
// anything the writer produces (chunks hold <= kChunkEvents events of a
// few dozen bytes each): reject before allocating, so malformed input
// yields the documented std::runtime_error rather than bad_alloc.
constexpr std::uint64_t kMaxChunkPayloadBytes = 1ULL << 24;  // 16 MiB
constexpr std::uint64_t kMaxStringBytes = 1ULL << 20;        // 1 MiB
constexpr std::uint64_t kMaxChunkEventCount = 1ULL << 20;
constexpr std::uint64_t kMaxStackFrames = 1ULL << 10;

// Chunk tags.
constexpr char kStringChunk = 'T';
constexpr char kSiteChunk = 'S';
constexpr char kEventChunk = 'E';
constexpr char kChecksumChunk = 'K';  // CRC-32 of the next event chunk

// Event kinds.
enum : std::uint8_t {
  kAlloc = 0,
  kFree = 1,
  kSampleLoad = 2,
  kSampleStore = 3,
  kPhaseBegin = 4,
  kPhaseEnd = 5,
  kCounter = 6,
};

/// Timestamps are stored in picosecond ticks — the precision of the text
/// format's %.3f nanoseconds — so both formats round-trip identically.
/// llrint (ties-to-even under the default rounding mode) matches printf's
/// correctly-rounded %.3f on exact .5 ps ties, where llround would not.
std::int64_t time_to_ticks(double time_ns) {
  return std::llrint(time_ns * 1000.0);
}

double ticks_to_time(std::int64_t ticks) {
  return static_cast<double>(ticks) / 1000.0;
}

void put_string(std::string& out, const std::string& s) {
  wire::put_varint(out, s.size());
  out.append(s);
}

void put_double(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

class BinaryTraceWriter final : public TraceWriter {
 public:
  BinaryTraceWriter(std::ostream& out, const callstack::SiteDb& sites,
                    WriterOptions options = {})
      : out_(&out), sites_(&sites), options_(options) {}
  ~BinaryTraceWriter() override {
    // finish() can throw (stream failure, injected io_write fault); a
    // destructor must swallow that — callers who care call finish().
    try {
      finish();
    } catch (...) {
    }
  }

  void on_event(const Event& event) override {
    std::visit(
        [&](const auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, AllocEvent>) {
            payload_.push_back(kAlloc);
            put_time(e.time_ns);
            wire::put_varint(payload_, e.site);
            put_addr(e.addr);
            wire::put_varint(payload_, e.size);
          } else if constexpr (std::is_same_v<T, FreeEvent>) {
            payload_.push_back(kFree);
            put_time(e.time_ns);
            put_addr(e.addr);
          } else if constexpr (std::is_same_v<T, SampleEvent>) {
            payload_.push_back(e.is_write ? kSampleStore : kSampleLoad);
            put_time(e.time_ns);
            put_addr(e.addr);
            wire::put_varint(payload_, e.weight);
          } else if constexpr (std::is_same_v<T, PhaseEvent>) {
            payload_.push_back(e.begin ? kPhaseBegin : kPhaseEnd);
            put_time(e.time_ns);
            wire::put_varint(payload_, string_id(e.name));
          } else if constexpr (std::is_same_v<T, CounterEvent>) {
            payload_.push_back(kCounter);
            put_time(e.time_ns);
            wire::put_varint(payload_, string_id(e.name));
            put_double(payload_, e.value);
          }
        },
        event);
    ++chunk_events_;
    ++events_;
    if (chunk_events_ >= kChunkEvents) flush_chunk();
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    flush_chunk();
    out_->flush();
  }

  std::size_t events_written() const override { return events_; }

 private:
  void put_time(double time_ns) {
    const std::int64_t ticks = time_to_ticks(time_ns);
    wire::put_varint(payload_, wire::zigzag(ticks - prev_ticks_));
    prev_ticks_ = ticks;
  }

  void put_addr(Address addr) {
    wire::put_varint(
        payload_, wire::zigzag(static_cast<std::int64_t>(addr - prev_addr_)));
    prev_addr_ = addr;
  }

  std::uint64_t string_id(const std::string& s) {
    const auto it = string_ids_.find(s);
    if (it != string_ids_.end()) return it->second;
    const std::uint64_t id = string_ids_.size();
    string_ids_.emplace(s, id);
    pending_strings_.push_back(s);
    return id;
  }

  /// Serializes sites interned since the last flush. Interning their names
  /// may grow pending_strings_, which is why the string chunk is written
  /// after this runs but before the site chunk hits the stream.
  std::string collect_new_sites(std::uint64_t& count) {
    std::string payload;
    count = 0;
    while (emitted_sites_ < sites_->size()) {
      const auto& site = sites_->all()[emitted_sites_];
      wire::put_varint(payload, site.id);
      wire::put_varint(payload, string_id(site.object_name));
      payload.push_back(site.is_dynamic ? 1 : 0);
      wire::put_varint(payload, site.stack.frames.size());
      for (const auto& frame : site.stack.frames) {
        wire::put_varint(payload, string_id(frame.module));
        wire::put_varint(payload, string_id(frame.function));
        wire::put_varint(payload, frame.line);
      }
      ++emitted_sites_;
      ++count;
    }
    return payload;
  }

  void flush_chunk() {
    write_header();
    std::uint64_t site_count = 0;
    const std::string site_payload = collect_new_sites(site_count);
    if (!pending_strings_.empty()) {
      std::string chunk;
      chunk.push_back(kStringChunk);
      wire::put_varint(chunk, pending_strings_.size());
      for (const auto& s : pending_strings_) put_string(chunk, s);
      out_->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      pending_strings_.clear();
    }
    if (site_count > 0) {
      std::string chunk;
      chunk.push_back(kSiteChunk);
      wire::put_varint(chunk, site_count);
      chunk.append(site_payload);
      out_->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    }
    if (chunk_events_ > 0) {
      if (fault::inject(fault::Site::kIoWrite)) {
        throw IoError("injected io_write fault flushing event chunk");
      }
      if (options_.checksums) {
        const std::uint32_t crc = crc32(payload_.data(), payload_.size());
        char kchunk[5];
        kchunk[0] = kChecksumChunk;
        for (int i = 0; i < 4; ++i)
          kchunk[1 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
        out_->write(kchunk, sizeof(kchunk));
      }
      std::string header;
      header.push_back(kEventChunk);
      wire::put_varint(header, chunk_events_);
      wire::put_varint(header, payload_.size());
      out_->write(header.data(), static_cast<std::streamsize>(header.size()));
      out_->write(payload_.data(),
                  static_cast<std::streamsize>(payload_.size()));
      payload_.clear();
      chunk_events_ = 0;
      prev_ticks_ = 0;
      prev_addr_ = 0;
    }
    if (!*out_) throw IoError("trace write failed");
  }

  void write_header() {
    if (wrote_header_) return;
    wrote_header_ = true;
    out_->write(kBinaryMagic, sizeof(kBinaryMagic));
    out_->put(static_cast<char>(kBinaryVersion));
  }

  std::ostream* out_;
  const callstack::SiteDb* sites_;
  WriterOptions options_;
  std::unordered_map<std::string, std::uint64_t> string_ids_;
  std::vector<std::string> pending_strings_;
  std::size_t emitted_sites_ = 0;
  std::string payload_;
  std::uint64_t chunk_events_ = 0;
  std::int64_t prev_ticks_ = 0;
  Address prev_addr_ = 0;
  std::size_t events_ = 0;
  bool wrote_header_ = false;
  bool finished_ = false;
};

class BinaryTraceReader final : public TraceReader {
 public:
  BinaryTraceReader(std::istream& in, callstack::SiteDb& sites,
                    ReaderOptions options = {})
      : in_(&in),
        sites_(&sites),
        salvage_(options.salvage),
        report_(options.report != nullptr ? options.report : &own_report_),
        source_(std::move(options.source)),
        shard_(options.shard) {
    char magic[4] = {};
    in_->read(magic, sizeof(magic));
    if (in_->gcount() != sizeof(magic) ||
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
      corrupt("bad magic");
    const int version = in_->get();
    if (version != kBinaryVersion) corrupt("unsupported version");
  }

  bool next(Event& out) override {
    for (;;) {
      if (abandoned_) return false;
      if (chunk_remaining_ == 0) {
        if (!advance_chunk()) return false;
        continue;  // string/site/checksum chunks carry no events
      }
      if (!salvage_) {
        decode_event(out);
        --chunk_remaining_;
        if (chunk_remaining_ == 0 && cursor_ != end_)
          corrupt("event chunk has trailing bytes");
        return true;
      }
      try {
        decode_event(out);
      } catch (const std::exception& e) {
        // Damage inside a chunk: the chunk's remaining events are
        // undecodable (delta state is per-chunk), but the framing still
        // points at the next chunk. Drop the rest and keep going.
        report_->add_incident(e.what(), source_, shard_, chunk_index_);
        ++report_->chunks_dropped;
        report_->events_dropped += chunk_remaining_;
        report_->bytes_dropped += static_cast<std::uint64_t>(end_ - cursor_);
        chunk_remaining_ = 0;
        cursor_ = end_;
        continue;
      }
      --chunk_remaining_;
      if (chunk_remaining_ == 0 && cursor_ != end_) {
        report_->add_incident("event chunk has trailing bytes", source_,
                              shard_, chunk_index_);
        report_->bytes_dropped += static_cast<std::uint64_t>(end_ - cursor_);
        cursor_ = end_;
      }
      return true;
    }
  }

 private:
  [[noreturn]] void corrupt(const char* what) const {
    throw FormatError(std::string("malformed binary trace: ") + what,
                      ErrorContext{source_, shard_, chunk_index_});
  }

  /// read_chunk, plus salvage handling of stream-level damage: once the
  /// framing itself is unreadable everything after it is lost, so the
  /// remaining tail is abandoned and the stream ends early.
  bool advance_chunk() {
    if (!salvage_) return read_chunk();
    try {
      return read_chunk();
    } catch (const std::exception& e) {
      report_->add_incident(e.what(), source_, shard_, chunk_index_);
      ++report_->tails_abandoned;
      abandoned_ = true;
      return false;
    }
  }

  /// Reads one chunk; string and site chunks are absorbed internally.
  /// Returns false on a clean end of stream.
  bool read_chunk() {
    if (fault::inject(fault::Site::kIoRead)) {
      throw IoError("injected io_read fault",
                    ErrorContext{source_, shard_, chunk_index_});
    }
    const int tag = in_->get();
    if (tag == std::istream::traits_type::eof()) return false;
    switch (tag) {
      case kStringChunk: {
        const std::uint64_t n = read_varint();
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t len = read_varint();
          if (len > kMaxStringBytes) corrupt("oversized string-table entry");
          std::string s(len, '\0');
          in_->read(s.data(), static_cast<std::streamsize>(len));
          if (static_cast<std::uint64_t>(in_->gcount()) != len)
            corrupt("truncated string table");
          strings_.push_back(std::move(s));
        }
        return true;
      }
      case kSiteChunk: {
        const std::uint64_t n = read_varint();
        for (std::uint64_t i = 0; i < n; ++i) read_site();
        return true;
      }
      case kChecksumChunk: {
        char raw[4] = {};
        in_->read(raw, sizeof(raw));
        if (in_->gcount() != sizeof(raw)) corrupt("truncated checksum chunk");
        std::uint32_t crc = 0;
        for (int i = 0; i < 4; ++i)
          crc |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(raw[i]))
                 << (8 * i);
        expected_crc_ = crc;
        return true;
      }
      case kEventChunk: {
        chunk_index_ = chunk_index_ ? *chunk_index_ + 1 : 0;
        chunk_remaining_ = read_varint();
        if (chunk_remaining_ > kMaxChunkEventCount)
          corrupt("oversized event chunk count");
        const std::uint64_t bytes = read_varint();
        if (bytes > kMaxChunkPayloadBytes)
          corrupt("oversized event chunk payload");
        chunk_.resize(bytes);
        in_->read(chunk_.data(), static_cast<std::streamsize>(bytes));
        if (static_cast<std::uint64_t>(in_->gcount()) != bytes)
          corrupt("truncated event chunk");
        const std::optional<std::uint32_t> expected = expected_crc_;
        expected_crc_.reset();
        if (expected &&
            crc32(chunk_.data(), chunk_.size()) != *expected) {
          if (!salvage_) corrupt("event chunk checksum mismatch");
          // The framing survived (count and size were intact), only the
          // payload is damaged: skip exactly this chunk.
          report_->add_incident("event chunk checksum mismatch", source_,
                                shard_, chunk_index_);
          ++report_->chunks_dropped;
          report_->events_dropped += chunk_remaining_;
          report_->bytes_dropped += bytes;
          chunk_remaining_ = 0;
          cursor_ = end_ = nullptr;
          return true;
        }
        cursor_ = chunk_.data();
        end_ = chunk_.data() + chunk_.size();
        prev_ticks_ = 0;
        prev_addr_ = 0;
        if (chunk_remaining_ == 0 && bytes != 0)
          corrupt("empty event chunk with payload");
        return true;
      }
      default:
        corrupt("unknown chunk tag");
    }
  }

  void read_site() {
    const std::uint64_t file_id = read_varint();
    const std::string& name = string_at(read_varint());
    const int dynamic = in_->get();
    if (dynamic != 0 && dynamic != 1) corrupt("bad site dynamic flag");
    const std::uint64_t nframes = read_varint();
    // A corrupt varint must not turn into a giant reserve: the contract is
    // std::runtime_error on malformed input, never bad_alloc/length_error.
    if (nframes > kMaxStackFrames) corrupt("oversized call-stack");
    callstack::SymbolicCallStack stack;
    stack.frames.reserve(nframes);
    for (std::uint64_t f = 0; f < nframes; ++f) {
      callstack::CodeLocation loc;
      loc.module = string_at(read_varint());
      loc.function = string_at(read_varint());
      loc.line = static_cast<std::uint32_t>(read_varint());
      stack.frames.push_back(std::move(loc));
    }
    remap_[file_id] = sites_->intern(name, stack, dynamic == 1);
  }

  void decode_event(Event& out) {
    if (cursor_ == end_) corrupt("truncated event");
    const auto kind = static_cast<std::uint8_t>(*cursor_++);
    const double t = take_time();
    switch (kind) {
      case kAlloc: {
        AllocEvent e;
        e.time_ns = t;
        const std::uint64_t file_site = take_varint();
        const auto it = remap_.find(file_site);
        if (it == remap_.end()) corrupt("event references undefined site");
        e.site = it->second;
        e.addr = take_addr();
        e.size = take_varint();
        out = e;
        break;
      }
      case kFree: {
        FreeEvent e;
        e.time_ns = t;
        e.addr = take_addr();
        out = e;
        break;
      }
      case kSampleLoad:
      case kSampleStore: {
        SampleEvent e;
        e.time_ns = t;
        e.is_write = kind == kSampleStore;
        e.addr = take_addr();
        e.weight = take_varint();
        out = e;
        break;
      }
      case kPhaseBegin:
      case kPhaseEnd: {
        PhaseEvent e;
        e.time_ns = t;
        e.begin = kind == kPhaseBegin;
        e.name = string_at(take_varint());
        out = e;
        break;
      }
      case kCounter: {
        CounterEvent e;
        e.time_ns = t;
        e.name = string_at(take_varint());
        if (end_ - cursor_ < 8) corrupt("truncated counter value");
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
          bits |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(cursor_[i]))
                  << (8 * i);
        cursor_ += 8;
        std::memcpy(&e.value, &bits, sizeof(e.value));
        out = e;
        break;
      }
      default:
        corrupt("unknown event kind");
    }
  }

  std::uint64_t take_varint() {
    std::uint64_t v = 0;
    if (!wire::get_varint(cursor_, end_, v)) corrupt("truncated varint");
    return v;
  }

  double take_time() {
    prev_ticks_ += wire::unzigzag(take_varint());
    return ticks_to_time(prev_ticks_);
  }

  Address take_addr() {
    prev_addr_ += static_cast<Address>(wire::unzigzag(take_varint()));
    return prev_addr_;
  }

  const std::string& string_at(std::uint64_t id) {
    if (id >= strings_.size()) corrupt("string id out of range");
    return strings_[id];
  }

  /// Stream-level varint (chunk headers, string/site chunks).
  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (shift < 64) {
      const int byte = in_->get();
      if (byte == std::istream::traits_type::eof())
        corrupt("truncated varint");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    corrupt("oversized varint");
  }

  std::istream* in_;
  callstack::SiteDb* sites_;
  bool salvage_ = false;
  SalvageReport own_report_;
  SalvageReport* report_;
  std::string source_;
  std::optional<std::size_t> shard_;
  std::optional<std::size_t> chunk_index_;  ///< current event chunk (0-based)
  std::optional<std::uint32_t> expected_crc_;
  bool abandoned_ = false;
  std::vector<std::string> strings_;
  std::unordered_map<std::uint64_t, callstack::SiteId> remap_;
  std::string chunk_;
  const char* cursor_ = nullptr;
  const char* end_ = nullptr;
  std::uint64_t chunk_remaining_ = 0;
  std::int64_t prev_ticks_ = 0;
  Address prev_addr_ = 0;
};

}  // namespace

namespace detail {

std::unique_ptr<TraceWriter> make_binary_writer(
    std::ostream& out, const callstack::SiteDb& sites) {
  return std::make_unique<BinaryTraceWriter>(out, sites);
}

std::unique_ptr<TraceWriter> make_binary_writer(
    std::ostream& out, const callstack::SiteDb& sites,
    const WriterOptions& options) {
  return std::make_unique<BinaryTraceWriter>(out, sites, options);
}

std::unique_ptr<TraceReader> open_binary_reader(std::istream& in,
                                                callstack::SiteDb& sites) {
  return std::make_unique<BinaryTraceReader>(in, sites);
}

std::unique_ptr<TraceReader> open_binary_reader(
    std::istream& in, callstack::SiteDb& sites,
    const ReaderOptions& options) {
  return std::make_unique<BinaryTraceReader>(in, sites, options);
}

}  // namespace detail

}  // namespace hmem::trace
