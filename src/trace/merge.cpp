#include "trace/merge.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "trace/salvage.hpp"

namespace hmem::trace {

bool OffsetTraceReader::next(Event& out) {
  if (!inner_->next(out)) return false;
  if (offset_ == 0) return true;
  if (auto* alloc = std::get_if<AllocEvent>(&out)) {
    alloc->addr += offset_;
  } else if (auto* free_ev = std::get_if<FreeEvent>(&out)) {
    free_ev->addr += offset_;
  } else if (auto* sample = std::get_if<SampleEvent>(&out)) {
    sample->addr += offset_;
  }
  return true;
}

MergeTraceReader::MergeTraceReader(
    std::vector<std::unique_ptr<TraceReader>> inputs)
    : MergeTraceReader(std::move(inputs), MergeOptions{}) {}

MergeTraceReader::MergeTraceReader(
    std::vector<std::unique_ptr<TraceReader>> inputs, MergeOptions options)
    : inputs_(std::move(inputs)), options_(std::move(options)) {
  heap_.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) refill(i);
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

bool MergeTraceReader::refill(std::size_t source) {
  Head head;
  head.source = source;
  if (options_.drop_failed_inputs) {
    try {
      if (!inputs_[source]->next(head.event)) return false;
    } catch (const std::exception& e) {
      // The shard died mid-stream: its remaining events are gone, but the
      // other inputs still merge — a degraded aggregate beats no aggregate.
      const std::string label = source < options_.labels.size()
                                    ? options_.labels[source]
                                    : "input " + std::to_string(source);
      log_warn("trace merge: dropping " + label + ": " + e.what());
      if (options_.report != nullptr) {
        options_.report->add_incident(e.what(), label, source);
        ++options_.report->shards_dropped;
      }
      return false;
    }
  } else {
    if (!inputs_[source]->next(head.event)) return false;  // input exhausted
  }
  head.time_ns = event_time_ns(head.event);
  heap_.push_back(std::move(head));
  return true;
}

bool MergeTraceReader::next(Event& out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  Head head = std::move(heap_.back());
  heap_.pop_back();
  out = std::move(head.event);
  if (refill(head.source))
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  return true;
}

}  // namespace hmem::trace
