// Trace (de)serialisation.
//
// A trace file is self-contained: a header of site definitions (id, object
// name, dynamic flag, symbolic call-stack) followed by one line per event.
// The format is line-oriented text — the volumes are small (the paper
// stresses that sampling keeps traces tiny, up to ~38 K samples per process)
// and a human-inspectable trace is worth far more than a compact one.
//
//   S|<id>|<name>|<dyn>|<stack>          site definition
//   A|<t>|<site>|<addr>|<size>           allocation
//   F|<t>|<addr>                         deallocation
//   M|<t>|<addr>|<w>|<weight>            sampled LLC miss (w: 0 load 1 store)
//   P|<t>|<B or E>|<name>                phase begin/end
//   C|<t>|<name>|<value>                 counter reading
#pragma once

#include <iosfwd>
#include <string>

#include "callstack/sitedb.hpp"
#include "trace/event.hpp"

namespace hmem::trace {

/// Writes sites then events. Returns the number of event lines written.
std::size_t write_trace(std::ostream& out, const callstack::SiteDb& sites,
                        const TraceBuffer& trace);

/// Parses a trace written by write_trace. Site ids are re-interned into
/// `sites` and event site references remapped accordingly, so a reader can
/// merge several traces into one SiteDb. Throws std::runtime_error on
/// malformed input.
void read_trace(std::istream& in, callstack::SiteDb& sites,
                TraceBuffer& trace);

}  // namespace hmem::trace
