// Whole-trace (de)serialisation — buffered adapters over the streaming
// TraceWriter/TraceReader front (trace/format.hpp).
//
// The text format remains the human-inspectable default:
//
//   S|<id>|<name>|<dyn>|<stack>          site definition
//   A|<t>|<site>|<addr>|<size>           allocation
//   F|<t>|<addr>                         deallocation
//   M|<t>|<addr>|<w>|<weight>            sampled LLC miss (w: 0 load 1 store)
//   P|<t>|<B or E>|<name>                phase begin/end
//   C|<t>|<name>|<value>                 counter reading
//
// Names (and the stack field) are quoted/escaped when they contain '|',
// quotes, backslashes or whitespace — see escape_field in trace/format.hpp.
// The compact binary format v2 lives behind the same front; production-scale
// traces should prefer it (see make_trace_writer / open_trace_reader).
#pragma once

#include <iosfwd>
#include <string>

#include "callstack/sitedb.hpp"
#include "trace/event.hpp"

namespace hmem::trace {

/// Writes sites then events in text format. Returns the number of events
/// written.
std::size_t write_trace(std::ostream& out, const callstack::SiteDb& sites,
                        const TraceBuffer& trace);

/// Parses a trace written by any TraceWriter (text or binary; the format is
/// sniffed). Site ids are re-interned into `sites` and event site references
/// remapped accordingly, so a reader can merge several traces into one
/// SiteDb. Throws std::runtime_error on malformed input.
void read_trace(std::istream& in, callstack::SiteDb& sites,
                TraceBuffer& trace);

}  // namespace hmem::trace
