// TraceWriter / TraceReader — the common serialization front of the trace
// layer. Two on-disk formats sit behind it:
//
//  * text (format v1): the original line-oriented format of
//    trace/tracefile.hpp — one `kind|field|...` line per event, site
//    definitions on `S|` lines. Human-inspectable; names are quoted and
//    escaped so arbitrary phase/counter/object names survive (see
//    escape_field below).
//
//  * binary (format v2): a compact chunked stream,
//
//        magic "HMT2" | u8 version(2) | chunk*
//        chunk := 'T' string-table | 'S' site-table | 'K' checksum
//                 | 'E' events
//        'K': 4 raw little-endian bytes — CRC-32 (IEEE) of the *next*
//             event chunk's payload. Emitted only when the writer was
//             opened with WriterOptions::checksums; readers accept shards
//             with or without them (and with them interleaved).
//        'T': varint n, then n x { varint len, bytes } — appended to the
//             file-global string table, referenced by index;
//        'S': varint n, then n x { varint file_site_id, varint name_str,
//             u8 dynamic, varint nframes, nframes x { varint module_str,
//             varint function_str, varint line } };
//        'E': varint event_count, varint payload_bytes (so readers can
//             skip whole chunks), then event_count packed events. Per
//             event: u8 kind (0 alloc, 1 free, 2 sample-load,
//             3 sample-store, 4 phase-begin, 5 phase-end, 6 counter),
//             zigzag-varint timestamp delta in picosecond ticks, then
//             kind-specific fields; addresses are zigzag-varint deltas.
//             Delta state (previous timestamp/address) resets at each
//             chunk boundary so skipped chunks never desynchronize.
//
//    Timestamps are quantized to 1 ps — exactly the precision of the text
//    format's %.3f nanoseconds — so the two formats round-trip identically.
//
// Writers are EventSinks: the profiler can stream straight to disk without
// ever materializing the trace. Readers are pull-based and remap site ids
// into the SiteDb supplied at open time, so several shards can be read
// (or k-way merged, trace/merge.hpp) into one site database.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "callstack/sitedb.hpp"
#include "trace/event.hpp"
#include "trace/visitor.hpp"

namespace hmem::trace {

struct SalvageReport;  // trace/salvage.hpp

enum class TraceFormat { kText, kBinary };

const char* trace_format_name(TraceFormat format);
/// Parses "text" / "binary" (the --format flag values).
std::optional<TraceFormat> parse_trace_format(const std::string& name);

inline constexpr char kBinaryMagic[4] = {'H', 'M', 'T', '2'};
inline constexpr std::uint8_t kBinaryVersion = 2;

/// Writer-side knobs. Checksums are opt-in so that existing shards (and
/// golden byte-identity tests) are unchanged by default.
struct WriterOptions {
  /// Binary v2 only: guard every event chunk with a CRC-32 ('K' chunk
  /// immediately preceding it). Readers accept shards with or without.
  bool checksums = false;
};

/// Reader-side knobs. The default is the historical strict contract:
/// throw on the first malformed byte. With `salvage` set, damaged event
/// chunks are skipped and accounted in a SalvageReport instead.
struct ReaderOptions {
  bool salvage = false;
  /// Where salvage incidents accumulate; may be shared by several readers.
  /// Null means the reader keeps a private report (open_trace_reader) —
  /// use RecoveringTraceReader when you want to inspect it afterwards.
  SalvageReport* report = nullptr;
  std::string source;                ///< path/label for error context
  std::optional<std::size_t> shard;  ///< shard index for error context
};

/// Streaming serializer. Site definitions are read from the SiteDb bound at
/// construction and emitted incrementally: every site interned before an
/// event is serialized ahead of that event, so the producer may keep
/// interning while it streams. finish() flushes buffered chunks and any
/// sites not yet written (it runs from the destructor too, but call it
/// explicitly when you want to check the stream state afterwards).
class TraceWriter : public EventSink {
 public:
  virtual void finish() = 0;
  virtual std::size_t events_written() const = 0;
};

/// Pull side: yields events one at a time, false at end of stream. Site
/// references in returned events are already remapped into the SiteDb given
/// at open time. Throws std::runtime_error on malformed input.
class TraceReader {
 public:
  virtual ~TraceReader() = default;
  virtual bool next(Event& out) = 0;
};

std::unique_ptr<TraceWriter> make_trace_writer(std::ostream& out,
                                               const callstack::SiteDb& sites,
                                               TraceFormat format);
std::unique_ptr<TraceWriter> make_trace_writer(std::ostream& out,
                                               const callstack::SiteDb& sites,
                                               TraceFormat format,
                                               const WriterOptions& options);

/// Sniffs the format from the first bytes of a seekable stream (binary
/// traces start with the "HMT2" magic; no text line does).
TraceFormat sniff_trace_format(std::istream& in);

/// Opens a reader for either format, sniffing the magic.
std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites);
std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               TraceFormat format);
std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               const ReaderOptions& options);
std::unique_ptr<TraceReader> open_trace_reader(std::istream& in,
                                               callstack::SiteDb& sites,
                                               TraceFormat format,
                                               const ReaderOptions& options);

/// Drains a reader into a sink / visitor; returns the number of events.
std::size_t pump(TraceReader& reader, EventSink& sink);
std::size_t pump(TraceReader& reader, EventVisitor& visitor);

/// Text-format field quoting. Plain names pass through verbatim (so v1
/// traces are unchanged); names containing '|', '"', '\\' or whitespace are
/// written as "..." with C-style escapes (\" \\ \n \t \r) plus \p for '|',
/// keeping the escaped field free of separator and newline bytes.
std::string escape_field(const std::string& name);
/// Inverse of escape_field. Throws std::runtime_error on an unterminated
/// quote or an unknown escape sequence.
std::string unescape_field(const std::string& field);

namespace detail {
// Per-format back ends (format.cpp: text; binary.cpp: format v2). Prefer
// the front-door factories above.
std::unique_ptr<TraceWriter> make_text_writer(std::ostream& out,
                                              const callstack::SiteDb& sites);
std::unique_ptr<TraceWriter> make_binary_writer(
    std::ostream& out, const callstack::SiteDb& sites);
std::unique_ptr<TraceWriter> make_binary_writer(std::ostream& out,
                                                const callstack::SiteDb& sites,
                                                const WriterOptions& options);
std::unique_ptr<TraceReader> open_text_reader(std::istream& in,
                                              callstack::SiteDb& sites);
std::unique_ptr<TraceReader> open_text_reader(std::istream& in,
                                              callstack::SiteDb& sites,
                                              const ReaderOptions& options);
std::unique_ptr<TraceReader> open_binary_reader(std::istream& in,
                                                callstack::SiteDb& sites);
std::unique_ptr<TraceReader> open_binary_reader(std::istream& in,
                                                callstack::SiteDb& sites,
                                                const ReaderOptions& options);
}  // namespace detail

}  // namespace hmem::trace
