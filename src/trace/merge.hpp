// Multi-rank trace readers.
//
// A profiled multi-rank run produces one trace shard per rank. The
// aggregator wants a single time-ordered stream, so MergeTraceReader
// performs a k-way merge over any set of TraceReaders by event timestamp
// (stable: ties go to the lower input index). Combined with the format
// readers' site remapping into one shared SiteDb, k shards read exactly
// like one trace — this is what makes Figure 4's per-rank fast-tier
// budgets meaningful at scale.
//
// BufferTraceReader adapts an in-memory TraceBuffer to the pull interface
// so buffered and streamed paths can share every downstream consumer.
#pragma once

#include <memory>
#include <vector>

#include "trace/format.hpp"

namespace hmem::trace {

/// Shard address-space separation. Every simulated rank reuses the same
/// physical layout (DDR at 4 GiB, MCDRAM at 256 GiB), so two ranks' traces
/// contain colliding addresses; rebasing shard k by k * kRankAddressStride
/// keeps the merged stream's live ranges disjoint, which the aggregator's
/// address->object map requires. The stride clears any per-rank tier
/// capacity by orders of magnitude.
inline constexpr Address kRankAddressStride = 1ULL << 42;

/// Decorator that shifts every address-carrying event (alloc/free/sample)
/// of an input by a fixed offset; phase and counter events pass through.
class OffsetTraceReader final : public TraceReader {
 public:
  OffsetTraceReader(std::unique_ptr<TraceReader> inner, Address offset)
      : inner_(std::move(inner)), offset_(offset) {}

  bool next(Event& out) override;

 private:
  std::unique_ptr<TraceReader> inner_;
  Address offset_;
};

/// Pull-reads a TraceBuffer. Site ids are *not* remapped: the buffer must
/// already reference the SiteDb the consumer uses.
class BufferTraceReader final : public TraceReader {
 public:
  explicit BufferTraceReader(const TraceBuffer& buffer) : buffer_(&buffer) {}

  bool next(Event& out) override {
    if (pos_ >= buffer_->size()) return false;
    out = buffer_->events()[pos_++];
    return true;
  }

 private:
  const TraceBuffer* buffer_;
  std::size_t pos_ = 0;
};

/// Degraded-mode knobs for MergeTraceReader.
struct MergeOptions {
  /// An input that throws (or was already dead at construction) is treated
  /// as exhausted — its remaining events are lost, the merge continues with
  /// the surviving inputs — instead of propagating the exception.
  bool drop_failed_inputs = false;
  SalvageReport* report = nullptr;  ///< where dropped inputs are recorded
  /// Optional per-input labels (shard paths) for warnings and the report.
  std::vector<std::string> labels;
};

/// K-way timestamp merge over any number of readers. Each input must itself
/// be in non-decreasing time order (the writers guarantee this); the merged
/// stream then is too.
class MergeTraceReader final : public TraceReader {
 public:
  explicit MergeTraceReader(std::vector<std::unique_ptr<TraceReader>> inputs);
  MergeTraceReader(std::vector<std::unique_ptr<TraceReader>> inputs,
                   MergeOptions options);

  bool next(Event& out) override;

 private:
  struct Head {
    double time_ns = 0;
    std::size_t source = 0;
    Event event;
  };

  /// Min-heap ordering on (time, source index) via std::push_heap's
  /// max-heap convention.
  static bool heap_after(const Head& a, const Head& b) {
    if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
    return a.source > b.source;
  }

  bool refill(std::size_t source);

  std::vector<std::unique_ptr<TraceReader>> inputs_;
  std::vector<Head> heap_;
  MergeOptions options_;
};

}  // namespace hmem::trace
