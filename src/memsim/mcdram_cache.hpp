// Direct-mapped memory-side cache: MCDRAM in *cache mode*.
//
// In cache mode the 16 GiB MCDRAM fronts the whole DDR space as a
// direct-mapped cache. Direct mapping is the crucial property — the paper
// attributes cache mode's shortfall versus conscious flat-mode placement to
// conflict misses ("especially for those workloads where the lack of
// associativity is a problem"), and conflicts only emerge when the model is
// actually direct-mapped. Tags are tracked at a configurable block size
// (default one page) to bound tag-array memory while preserving the conflict
// behaviour at the granularity applications lay out their data.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/address.hpp"

namespace hmem::memsim {

struct MemCacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t conflict_evictions = 0;

  double hit_rate() const {
    return accesses > 0
               ? static_cast<double>(hits) / static_cast<double>(accesses)
               : 0.0;
  }
};

class DirectMappedMemCache {
 public:
  /// capacity must be a multiple of block_bytes; both powers of two.
  DirectMappedMemCache(std::uint64_t capacity_bytes,
                       std::uint64_t block_bytes);

  /// Simulates a memory-side lookup for a DDR address. Returns true on hit;
  /// a miss installs the block (evicting whatever aliased there before).
  bool access(Address addr);

  bool contains(Address addr) const;
  void flush();

  const MemCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemCacheStats{}; }

  std::uint64_t num_blocks() const { return tags_.size(); }
  std::uint64_t block_bytes() const { return block_bytes_; }

 private:
  std::uint64_t index_of(Address addr) const;

  std::uint64_t block_bytes_;
  std::vector<Address> tags_;  ///< block tag + 1; 0 = invalid
  MemCacheStats stats_;
};

}  // namespace hmem::memsim
