#include "memsim/machine.hpp"

#include "common/assert.hpp"
#include "common/units.hpp"

namespace hmem::memsim {

const char* mem_mode_name(MemMode mode) {
  switch (mode) {
    case MemMode::kFlat:
      return "flat";
    case MemMode::kCache:
      return "cache";
  }
  return "?";
}

const char* served_by_name(ServedBy served) {
  switch (served) {
    case ServedBy::kLlc:
      return "LLC";
    case ServedBy::kDdr:
      return "DDR";
    case ServedBy::kMcdram:
      return "MCDRAM";
    case ServedBy::kMcdramCacheHit:
      return "MCDRAM$hit";
    case ServedBy::kMcdramCacheMiss:
      return "MCDRAM$miss";
  }
  return "?";
}

MachineConfig MachineConfig::knl7250(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "knl7250";
  cfg.cores = 68;
  cfg.freq_ghz = 1.40;
  cfg.ipc = 2.0;  // two-wide out-of-order silvermont-derived core
  // 34 tiles x 1 MiB L2, modelled as one aggregate LLC; rounded to 32 MiB to
  // keep the set count a power of two.
  cfg.llc = CacheConfig{32ULL * kMiB, 64, 16};
  cfg.ddr = TierSpec{
      .name = "DDR",
      .kind = TierKind::kDdr,
      .capacity_bytes = 96ULL * kGiB,
      .latency_ns = 130.0,
      .per_core_bw_gbs = 6.5,
      .peak_bw_gbs = 90.0,
      .relative_performance = 1.0,
  };
  // MCDRAM: higher idle latency than DDR on KNL but ~5x the bandwidth.
  cfg.mcdram = TierSpec{
      .name = "MCDRAM",
      .kind = TierKind::kMcdram,
      .capacity_bytes = 16ULL * kGiB,
      .latency_ns = 155.0,
      .per_core_bw_gbs = 9.5,
      .peak_bw_gbs = 480.0,
      .relative_performance = 5.0,
  };
  cfg.mode = mode;
  cfg.llc_latency_ns = 12.0;
  cfg.mem_cache_tag_ns = 12.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::test_node(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "test_node";
  cfg.cores = 4;
  cfg.freq_ghz = 1.0;
  cfg.ipc = 1.0;
  cfg.llc = CacheConfig{16ULL * kKiB, 64, 4};
  cfg.ddr = TierSpec{
      .name = "DDR",
      .kind = TierKind::kDdr,
      .capacity_bytes = 64ULL * kMiB,
      .latency_ns = 100.0,
      .per_core_bw_gbs = 5.0,
      .peak_bw_gbs = 10.0,
      .relative_performance = 1.0,
  };
  cfg.mcdram = TierSpec{
      .name = "MCDRAM",
      .kind = TierKind::kMcdram,
      .capacity_bytes = 8ULL * kMiB,
      .latency_ns = 120.0,
      .per_core_bw_gbs = 10.0,
      .peak_bw_gbs = 40.0,
      .relative_performance = 5.0,
  };
  cfg.mode = mode;
  cfg.llc_latency_ns = 5.0;
  cfg.mem_cache_tag_ns = 10.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      llc_(config_.llc),
      ddr_(config_.ddr),
      mcdram_(config_.mcdram) {
  if (config_.mode == MemMode::kCache) {
    mem_cache_ = std::make_unique<DirectMappedMemCache>(
        config_.mcdram.capacity_bytes, config_.mem_cache_block_bytes);
  }
}

bool Machine::in_mcdram(Address addr) const {
  return addr >= kMcdramBase &&
         addr < kMcdramBase + config_.mcdram.capacity_bytes;
}

bool Machine::in_ddr(Address addr) const {
  return addr >= kDdrBase && addr < kDdrBase + config_.ddr.capacity_bytes;
}

TierKind Machine::owning_tier(Address addr) const {
  return in_mcdram(addr) ? TierKind::kMcdram : TierKind::kDdr;
}

AccessResult Machine::access(Address addr, bool is_write) {
  AccessResult result;
  result.llc_hit = llc_.access(addr);
  if (result.llc_hit) {
    result.served_by = ServedBy::kLlc;
    result.latency_ns = config_.llc_latency_ns;
    return result;
  }

  if (config_.mode == MemMode::kFlat) {
    if (in_mcdram(addr)) {
      result.served_by = ServedBy::kMcdram;
      result.latency_ns = config_.mcdram.latency_ns;
      result.mcdram_bytes = kCacheLineBytes;
      if (is_write)
        mcdram_.record_write(kCacheLineBytes);
      else
        mcdram_.record_read(kCacheLineBytes);
    } else {
      result.served_by = ServedBy::kDdr;
      result.latency_ns = config_.ddr.latency_ns;
      result.ddr_bytes = kCacheLineBytes;
      if (is_write)
        ddr_.record_write(kCacheLineBytes);
      else
        ddr_.record_read(kCacheLineBytes);
    }
    return result;
  }

  // Cache mode: every LLC miss consults the memory-side tag directory.
  HMEM_ASSERT(mem_cache_ != nullptr);
  const bool mc_hit = mem_cache_->access(addr);
  if (mc_hit) {
    result.served_by = ServedBy::kMcdramCacheHit;
    result.latency_ns = config_.mcdram.latency_ns + config_.mem_cache_tag_ns;
    result.mcdram_bytes = kCacheLineBytes;
    if (is_write)
      mcdram_.record_write(kCacheLineBytes);
    else
      mcdram_.record_read(kCacheLineBytes);
  } else {
    // Served by DDR; the line is also filled into MCDRAM (extra write
    // traffic on the MCDRAM side — the cost of the memory-side fill).
    result.served_by = ServedBy::kMcdramCacheMiss;
    result.latency_ns = config_.ddr.latency_ns + config_.mem_cache_tag_ns;
    result.ddr_bytes = kCacheLineBytes;
    result.mcdram_bytes = kCacheLineBytes;
    if (is_write)
      ddr_.record_write(kCacheLineBytes);
    else
      ddr_.record_read(kCacheLineBytes);
    mcdram_.record_write(kCacheLineBytes);
  }
  return result;
}

void Machine::reset() {
  llc_.flush();
  llc_.reset_stats();
  ddr_.reset_stats();
  mcdram_.reset_stats();
  if (mem_cache_ != nullptr) {
    mem_cache_->flush();
    mem_cache_->reset_stats();
  }
}

}  // namespace hmem::memsim
