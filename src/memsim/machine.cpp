#include "memsim/machine.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/tier_config.hpp"
#include "common/units.hpp"

namespace hmem::memsim {

const char* mem_mode_name(MemMode mode) {
  switch (mode) {
    case MemMode::kFlat:
      return "flat";
    case MemMode::kCache:
      return "cache";
  }
  return "?";
}

std::optional<MemMode> parse_mem_mode(const std::string& name) {
  if (name == "flat") return MemMode::kFlat;
  if (name == "cache") return MemMode::kCache;
  return std::nullopt;
}

const char* served_by_name(ServedBy served) {
  switch (served) {
    case ServedBy::kLlc:
      return "LLC";
    case ServedBy::kTier:
      return "tier";
    case ServedBy::kMemCacheHit:
      return "mem$hit";
    case ServedBy::kMemCacheMiss:
      return "mem$miss";
  }
  return "?";
}

MachineConfig MachineConfig::knl7250(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "knl7250";
  cfg.cores = 68;
  cfg.freq_ghz = 1.40;
  cfg.ipc = 2.0;  // two-wide out-of-order silvermont-derived core
  // 34 tiles x 1 MiB L2, modelled as one aggregate LLC; rounded to 32 MiB to
  // keep the set count a power of two.
  cfg.llc = CacheConfig{32ULL * kMiB, 64, 16};
  cfg.tiers = {
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 96ULL * kGiB,
          .latency_ns = 130.0,
          .per_core_bw_gbs = 6.5,
          .peak_bw_gbs = 90.0,
          .relative_performance = 1.0,
      },
      // MCDRAM: higher idle latency than DDR on KNL but ~5x the bandwidth.
      TierSpec{
          .name = "MCDRAM",
          .capacity_bytes = 16ULL * kGiB,
          .latency_ns = 155.0,
          .per_core_bw_gbs = 9.5,
          .peak_bw_gbs = 480.0,
          .relative_performance = 5.0,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 12.0;
  cfg.mem_cache_tag_ns = 12.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::spr_hbm(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "spr-hbm";
  cfg.cores = 56;
  cfg.freq_ghz = 2.0;
  cfg.ipc = 4.0;  // golden-cove class core
  cfg.llc = CacheConfig{64ULL * kMiB, 64, 16};
  cfg.tiers = {
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 512ULL * kGiB,
          .latency_ns = 110.0,
          .per_core_bw_gbs = 12.0,
          .peak_bw_gbs = 300.0,
          .relative_performance = 1.0,
      },
      TierSpec{
          .name = "HBM",
          .capacity_bytes = 64ULL * kGiB,
          .latency_ns = 140.0,
          .per_core_bw_gbs = 30.0,
          .peak_bw_gbs = 1200.0,
          .relative_performance = 4.0,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 20.0;
  cfg.mem_cache_tag_ns = 10.0;
  // SPR HBM caching mode streams closer to flat than KNL's did.
  cfg.cache_mode_bw_derate = 0.80;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::ddr_cxl(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "ddr-cxl";
  cfg.cores = 32;
  cfg.freq_ghz = 2.5;
  cfg.ipc = 3.0;
  cfg.llc = CacheConfig{32ULL * kMiB, 64, 16};
  cfg.tiers = {
      // CXL type-3 expander: capacity play, link-limited bandwidth and an
      // extra controller hop on every access. The slow unbounded fallback.
      TierSpec{
          .name = "CXL",
          .capacity_bytes = 512ULL * kGiB,
          .latency_ns = 250.0,
          .per_core_bw_gbs = 6.0,
          .peak_bw_gbs = 64.0,
          .relative_performance = 1.0,
      },
      // Local DDR is the *fast* tier on this machine.
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 128ULL * kGiB,
          .latency_ns = 100.0,
          .per_core_bw_gbs = 10.0,
          .peak_bw_gbs = 200.0,
          .relative_performance = 2.5,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 15.0;
  cfg.mem_cache_tag_ns = 15.0;
  cfg.cache_mode_bw_derate = 0.85;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::hbm_ddr_pmem(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "hbm-ddr-pmem";
  cfg.cores = 48;
  cfg.freq_ghz = 2.2;
  cfg.ipc = 3.0;
  cfg.llc = CacheConfig{32ULL * kMiB, 64, 16};
  cfg.tiers = {
      // Persistent memory: huge, slow, asymmetric in reality — modelled
      // with its sustained read bandwidth. The unbounded fallback.
      TierSpec{
          .name = "PMEM",
          .capacity_bytes = 512ULL * kGiB,
          .latency_ns = 350.0,
          .per_core_bw_gbs = 2.0,
          .peak_bw_gbs = 40.0,
          .relative_performance = 1.0,
      },
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 128ULL * kGiB,
          .latency_ns = 100.0,
          .per_core_bw_gbs = 10.0,
          .peak_bw_gbs = 200.0,
          .relative_performance = 3.0,
      },
      TierSpec{
          .name = "HBM",
          .capacity_bytes = 16ULL * kGiB,
          .latency_ns = 130.0,
          .per_core_bw_gbs = 20.0,
          .peak_bw_gbs = 600.0,
          .relative_performance = 6.0,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 15.0;
  cfg.mem_cache_tag_ns = 12.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::test_node(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "test_node";
  cfg.cores = 4;
  cfg.freq_ghz = 1.0;
  cfg.ipc = 1.0;
  cfg.llc = CacheConfig{16ULL * kKiB, 64, 4};
  cfg.tiers = {
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 64ULL * kMiB,
          .latency_ns = 100.0,
          .per_core_bw_gbs = 5.0,
          .peak_bw_gbs = 10.0,
          .relative_performance = 1.0,
      },
      TierSpec{
          .name = "MCDRAM",
          .capacity_bytes = 8ULL * kMiB,
          .latency_ns = 120.0,
          .per_core_bw_gbs = 10.0,
          .peak_bw_gbs = 40.0,
          .relative_performance = 5.0,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 5.0;
  cfg.mem_cache_tag_ns = 10.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

MachineConfig MachineConfig::test_node3(MemMode mode) {
  MachineConfig cfg;
  cfg.name = "test_node3";
  cfg.cores = 4;
  cfg.freq_ghz = 1.0;
  cfg.ipc = 1.0;
  cfg.llc = CacheConfig{16ULL * kKiB, 64, 4};
  cfg.tiers = {
      TierSpec{
          .name = "PMEM",
          .capacity_bytes = 64ULL * kMiB,
          .latency_ns = 300.0,
          .per_core_bw_gbs = 1.0,
          .peak_bw_gbs = 4.0,
          .relative_performance = 1.0,
      },
      TierSpec{
          .name = "DDR",
          .capacity_bytes = 16ULL * kMiB,
          .latency_ns = 100.0,
          .per_core_bw_gbs = 5.0,
          .peak_bw_gbs = 10.0,
          .relative_performance = 3.0,
      },
      TierSpec{
          .name = "HBM",
          .capacity_bytes = 8ULL * kMiB,
          .latency_ns = 120.0,
          .per_core_bw_gbs = 10.0,
          .peak_bw_gbs = 40.0,
          .relative_performance = 6.0,
      },
  };
  assign_tier_bases(cfg.tiers);
  cfg.mode = mode;
  cfg.llc_latency_ns = 5.0;
  cfg.mem_cache_tag_ns = 10.0;
  cfg.mem_cache_block_bytes = kPageBytes;
  return cfg;
}

std::optional<MachineConfig> MachineConfig::preset(const std::string& name,
                                                   MemMode mode) {
  if (name == "knl" || name == "knl7250") return knl7250(mode);
  if (name == "spr-hbm") return spr_hbm(mode);
  if (name == "ddr-cxl") return ddr_cxl(mode);
  if (name == "hbm-ddr-pmem") return hbm_ddr_pmem(mode);
  if (name == "test-node" || name == "test_node") return test_node(mode);
  if (name == "test-node3" || name == "test_node3") return test_node3(mode);
  return std::nullopt;
}

std::vector<std::string> MachineConfig::preset_names() {
  return {"knl", "spr-hbm", "ddr-cxl", "hbm-ddr-pmem"};
}

namespace {

[[noreturn]] void bad_machine(const std::string& what) {
  throw ConfigError("machine config: " + what);
}

}  // namespace

MachineConfig MachineConfig::from_config(const Config& config) {
  MachineConfig cfg;
  cfg.name = config.get_string("machine", "name", "custom");
  cfg.cores = static_cast<int>(config.get_int("machine", "cores", 1));
  if (cfg.cores < 1) bad_machine("cores must be >= 1");
  cfg.freq_ghz = config.get_double("machine", "freq_ghz", 1.0);
  cfg.ipc = config.get_double("machine", "ipc", 1.0);
  if (cfg.freq_ghz <= 0 || cfg.ipc <= 0)
    bad_machine("freq_ghz and ipc must be positive");
  const std::string mode = config.get_string("machine", "mode", "flat");
  const auto parsed_mode = parse_mem_mode(mode);
  if (!parsed_mode) bad_machine("unknown mode '" + mode + "'");
  cfg.mode = *parsed_mode;
  cfg.llc_latency_ns =
      config.get_double("machine", "llc_latency_ns", cfg.llc_latency_ns);
  cfg.mem_cache_tag_ns =
      config.get_double("machine", "mem_cache_tag_ns", cfg.mem_cache_tag_ns);
  cfg.cache_mode_bw_derate = config.get_double(
      "machine", "cache_mode_bw_derate", cfg.cache_mode_bw_derate);
  cfg.cache_mode_conflict_k = config.get_double(
      "machine", "cache_mode_conflict_k", cfg.cache_mode_conflict_k);
  cfg.mem_cache_block_bytes = config.get_bytes(
      "machine", "mem_cache_block", cfg.mem_cache_block_bytes);

  cfg.llc.size_bytes = config.get_bytes("llc", "size", 32ULL * kMiB);
  cfg.llc.line_bytes =
      static_cast<std::uint32_t>(config.get_bytes("llc", "line", 64));
  cfg.llc.ways =
      static_cast<std::uint32_t>(config.get_int("llc", "ways", 16));
  cfg.llc_latency_ns =
      config.get_double("llc", "latency_ns", cfg.llc_latency_ns);

  for (const TierSection& section :
       parse_tier_sections(config, "machine config")) {
    TierSpec tier;
    tier.name = section.name;
    tier.capacity_bytes = section.capacity_bytes;
    tier.relative_performance = section.relative_performance;
    tier.latency_ns = config.get_double(section.section, "latency_ns", 100.0);
    tier.per_core_bw_gbs =
        config.get_double(section.section, "per_core_bw_gbs", 5.0);
    tier.peak_bw_gbs = config.get_double(section.section, "peak_bw_gbs", 50.0);
    cfg.tiers.push_back(std::move(tier));
  }
  assign_tier_bases(cfg.tiers);
  return cfg;
}

std::string machine_preset_list() {
  std::string list;
  for (const auto& name : MachineConfig::preset_names()) {
    if (!list.empty()) list += ", ";
    list += name;
  }
  return list;
}

std::optional<MachineConfig> load_machine_config(const std::string& arg,
                                                 std::string* error) {
  if (auto preset = MachineConfig::preset(arg)) return preset;
  std::ifstream in(arg);
  if (!in) {
    if (error != nullptr) {
      *error = "'" + arg + "' is neither a machine preset (" +
               machine_preset_list() + ") nor a readable config file";
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return MachineConfig::from_config(Config::parse(text.str()));
  } catch (const std::exception& e) {
    if (error != nullptr) *error = arg + ": " + e.what();
    return std::nullopt;
  }
}

TierIndex MachineConfig::fastest_tier() const {
  HMEM_ASSERT(!tiers.empty());
  TierIndex best = 0;
  for (TierIndex i = 1; i < tiers.size(); ++i) {
    if (tiers[i].relative_performance >
        tiers[best].relative_performance) {
      best = i;
    }
  }
  return best;
}

TierIndex MachineConfig::slowest_tier() const {
  HMEM_ASSERT(!tiers.empty());
  TierIndex worst = 0;
  for (TierIndex i = 1; i < tiers.size(); ++i) {
    if (tiers[i].relative_performance <
        tiers[worst].relative_performance) {
      worst = i;
    }
  }
  return worst;
}

std::vector<TierIndex> MachineConfig::tiers_by_performance() const {
  std::vector<TierIndex> order(tiers.size());
  for (TierIndex i = 0; i < tiers.size(); ++i) order[i] = i;
  // Ties keep address-map order, matching the advisor's stable fill order.
  std::stable_sort(order.begin(), order.end(),
                   [this](TierIndex a, TierIndex b) {
                     return tiers[a].relative_performance >
                            tiers[b].relative_performance;
                   });
  return order;
}

TierIndex MachineConfig::resolved_cache_front() const {
  return cache_front_tier == kAutoTier ? fastest_tier() : cache_front_tier;
}

TierIndex MachineConfig::resolved_cache_backing() const {
  return cache_backing_tier == kAutoTier ? slowest_tier()
                                         : cache_backing_tier;
}

Machine::Machine(MachineConfig config) : config_(std::move(config)),
                                         llc_(config_.llc) {
  HMEM_ASSERT_MSG(!config_.tiers.empty(), "machine needs at least one tier");
  assign_tier_bases(config_.tiers);  // no-op for already-assigned tiers
  tiers_.reserve(config_.tiers.size());
  ranges_.reserve(config_.tiers.size());
  for (const TierSpec& spec : config_.tiers) {
    tiers_.emplace_back(spec);
    ranges_.push_back(TierRange{spec.base, spec.base + spec.capacity_bytes,
                                spec.latency_ns});
  }
  fastest_ = config_.fastest_tier();
  slowest_ = config_.slowest_tier();
  cache_front_ = config_.resolved_cache_front();
  cache_backing_ = config_.resolved_cache_backing();
  if (config_.mode == MemMode::kCache) {
    HMEM_ASSERT_MSG(cache_front_ != cache_backing_,
                    "cache mode needs two distinct tiers");
    mem_cache_ = std::make_unique<DirectMappedMemCache>(
        config_.tiers[cache_front_].capacity_bytes,
        config_.mem_cache_block_bytes);
  }
}

bool Machine::in_tier(Address addr, TierIndex tier) const {
  return tiers_[tier].contains(addr);
}

TierIndex Machine::owning_tier(Address addr) const {
  for (TierIndex i = 0; i < ranges_.size(); ++i) {
    if (addr >= ranges_[i].base && addr < ranges_[i].end) return i;
  }
  return slowest_;
}

AccessResult Machine::access(Address addr, bool is_write) {
  AccessResult result;
  result.llc_hit = llc_.access(addr);
  if (result.llc_hit) {
    result.served_by = ServedBy::kLlc;
    result.latency_ns = config_.llc_latency_ns;
    return result;
  }

  if (config_.mode == MemMode::kFlat) {
    const TierIndex t = owning_tier(addr);
    result.served_by = ServedBy::kTier;
    result.tier = t;
    result.latency_ns = ranges_[t].latency_ns;
    result.tier_bytes = kCacheLineBytes;
    if (is_write)
      tiers_[t].record_write(kCacheLineBytes);
    else
      tiers_[t].record_read(kCacheLineBytes);
    return result;
  }

  // Cache mode: every LLC miss consults the memory-side tag directory of
  // the front tier; misses are served by the backing tier plus a fill.
  HMEM_ASSERT(mem_cache_ != nullptr);
  MemoryTier& front = tiers_[cache_front_];
  MemoryTier& backing = tiers_[cache_backing_];
  const bool mc_hit = mem_cache_->access(addr);
  if (mc_hit) {
    result.served_by = ServedBy::kMemCacheHit;
    result.tier = cache_front_;
    result.latency_ns =
        front.spec().latency_ns + config_.mem_cache_tag_ns;
    result.tier_bytes = kCacheLineBytes;
    if (is_write)
      front.record_write(kCacheLineBytes);
    else
      front.record_read(kCacheLineBytes);
  } else {
    // Served by the backing tier; the line is also filled into the front
    // tier (extra write traffic — the cost of the memory-side fill).
    result.served_by = ServedBy::kMemCacheMiss;
    result.tier = cache_backing_;
    result.latency_ns =
        backing.spec().latency_ns + config_.mem_cache_tag_ns;
    result.tier_bytes = kCacheLineBytes;
    result.fill_tier = cache_front_;
    result.fill_bytes = kCacheLineBytes;
    if (is_write)
      backing.record_write(kCacheLineBytes);
    else
      backing.record_read(kCacheLineBytes);
    front.record_write(kCacheLineBytes);
  }
  return result;
}

void Machine::reset() {
  llc_.flush();
  llc_.reset_stats();
  for (MemoryTier& tier : tiers_) tier.reset_stats();
  if (mem_cache_ != nullptr) {
    mem_cache_->flush();
    mem_cache_->reset_stats();
  }
}

}  // namespace hmem::memsim
