// The simulated hybrid-memory node.
//
// Machine glues the LLC model, an ordered list of N memory tiers and (in
// cache mode) the direct-mapped memory-side cache into a single `access()`
// entry point: given a physical address, it classifies where the access was
// served and what DRAM traffic it generated. The execution engine aggregates
// these classifications into phase timings; the PEBS sampler taps the
// LLC-miss stream.
//
// Two operating modes mirror the paper's platform:
//  * kFlat  — every tier is addressable memory (its own range); placement
//             decides which tier serves a miss.
//  * kCache — one designated tier (the cache *front*) fronts another (the
//             *backing* tier) as a direct-mapped memory-side cache, conflict
//             misses and all. All data lives in the backing tier's range.
//             On KNL: MCDRAM fronting DDR.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "memsim/address.hpp"
#include "memsim/cache.hpp"
#include "memsim/mcdram_cache.hpp"
#include "memsim/tier.hpp"

namespace hmem::memsim {

enum class MemMode { kFlat, kCache };

const char* mem_mode_name(MemMode mode);
std::optional<MemMode> parse_mem_mode(const std::string& name);

/// Where an access was ultimately served from.
enum class ServedBy {
  kLlc,           ///< hit in the last-level cache
  kTier,          ///< flat mode, served by the tier owning the range
  kMemCacheHit,   ///< cache mode, memory-side cache hit (front tier)
  kMemCacheMiss,  ///< cache mode, served by the backing tier + front fill
};

const char* served_by_name(ServedBy served);

struct AccessResult {
  bool llc_hit = false;
  ServedBy served_by = ServedBy::kLlc;
  /// Tier that served the access (meaningless on an LLC hit).
  TierIndex tier = 0;
  double latency_ns = 0.0;
  /// DRAM traffic this access generated on the serving tier (line fill /
  /// writeback) ...
  std::uint64_t tier_bytes = 0;
  /// ... plus, in cache mode, the memory-side fill traffic on the front
  /// tier (fill_bytes is zero everywhere else).
  TierIndex fill_tier = 0;
  std::uint64_t fill_bytes = 0;
};

struct MachineConfig {
  /// Sentinel for "pick the default tier" in the cache-pair selectors.
  static constexpr std::size_t kAutoTier = ~std::size_t{0};

  std::string name = "machine";
  int cores = 1;
  double freq_ghz = 1.0;
  /// Instructions one core retires per cycle when not memory-stalled.
  double ipc = 1.0;
  CacheConfig llc;
  /// Ordered tier list (address-map order). Identity is the index; the
  /// advisor's fill order is derived from relative_performance instead.
  std::vector<TierSpec> tiers;
  MemMode mode = MemMode::kFlat;
  /// Cache-mode pair: tier `cache_front_tier` fronts `cache_backing_tier`.
  /// kAutoTier resolves to the fastest / slowest tier respectively.
  std::size_t cache_front_tier = kAutoTier;
  std::size_t cache_backing_tier = kAutoTier;
  double llc_latency_ns = 10.0;
  /// Tag-directory lookup added to every cache-mode DRAM access.
  double mem_cache_tag_ns = 12.0;
  /// Cache mode cannot stream at the front tier's flat-mode bandwidth:
  /// every access also moves tag/fill/writeback traffic on the memory side.
  /// Measured STREAM on KNL lands around 70% of flat; this derates the
  /// front-tier bandwidth the roofline model sees in cache mode.
  double cache_mode_bw_derate = 0.72;
  /// Direct-mapped conflict pressure coefficient: the cache-mode hit
  /// probability is derated by 1 / (1 + k * max(0, demand/capacity - 1)),
  /// so conflicts only bite when the working set oversubscribes the front
  /// tier ("the lack of associativity is a problem").
  double cache_mode_conflict_k = 0.05;
  /// Tag-tracking granularity of the memory-side cache.
  std::uint64_t mem_cache_block_bytes = kPageBytes;

  /// The paper's platform: Intel Xeon Phi 7250, 68 cores @ 1.40 GHz,
  /// 96 GiB DDR4 + 16 GiB MCDRAM, 32 MiB aggregate L2 (LLC).
  static MachineConfig knl7250(MemMode mode);

  /// Xeon Max style node: 512 GiB DDR5 + 64 GiB on-package HBM.
  static MachineConfig spr_hbm(MemMode mode);

  /// DDR plus a slower CXL memory expander (type-3 device).
  static MachineConfig ddr_cxl(MemMode mode);

  /// Three-tier node: 16 GiB HBM + 128 GiB DDR + 512 GiB PMem.
  static MachineConfig hbm_ddr_pmem(MemMode mode);

  /// Down-scaled node for unit tests: tiny LLC so misses are easy to force,
  /// small tiers so capacity edges are reachable.
  static MachineConfig test_node(MemMode mode);

  /// Three-tier sibling of test_node (HBM + DDR + PMem, a few MiB each).
  static MachineConfig test_node3(MemMode mode);

  /// Preset lookup by name ("knl", "spr-hbm", "ddr-cxl", "hbm-ddr-pmem",
  /// plus the test nodes); nullopt for unknown names.
  static std::optional<MachineConfig> preset(const std::string& name,
                                             MemMode mode = MemMode::kFlat);
  /// Preset names in lookup order, for --help texts.
  static std::vector<std::string> preset_names();

  /// Parses a machine description config:
  ///   [machine]             name/cores/freq_ghz/ipc/mode + model knobs
  ///   [llc]                 size, line, ways, latency_ns
  ///   [tier <name>]         capacity, latency_ns, per_core_bw_gbs,
  ///                         peak_bw_gbs, relative_performance
  /// Tier sections appear in address-map order. Throws std::runtime_error
  /// on invalid input (no tiers, duplicate names, zero capacity,
  /// non-positive relative performance).
  static MachineConfig from_config(const Config& config);

  std::size_t tier_count() const { return tiers.size(); }
  /// Index of the highest / lowest relative_performance tier (first wins
  /// ties, matching the advisor's stable fill order).
  TierIndex fastest_tier() const;
  TierIndex slowest_tier() const;
  /// Tier indices in descending relative_performance (stable).
  std::vector<TierIndex> tiers_by_performance() const;
  /// Resolved cache-mode pair (kAutoTier -> fastest / slowest).
  TierIndex resolved_cache_front() const;
  TierIndex resolved_cache_backing() const;
};

/// Comma-joined preset names ("knl, spr-hbm, ...") for usage texts.
std::string machine_preset_list();

/// Resolves a --machine style argument: a preset name first, then a
/// machine config file (MachineConfig::from_config). Returns nullopt and
/// fills *error (if non-null) on failure.
std::optional<MachineConfig> load_machine_config(const std::string& arg,
                                                 std::string* error);

class Machine {
 public:
  explicit Machine(MachineConfig config);

  /// Simulates one memory access at line granularity.
  AccessResult access(Address addr, bool is_write);

  /// Tier that owns the address range (flat-mode view); addresses outside
  /// every range fall back to the slowest tier.
  TierIndex owning_tier(Address addr) const;
  bool in_tier(Address addr, TierIndex tier) const;

  const MachineConfig& config() const { return config_; }
  MemMode mode() const { return config_.mode; }

  Cache& llc() { return llc_; }
  const Cache& llc() const { return llc_; }
  std::size_t tier_count() const { return tiers_.size(); }
  MemoryTier& tier(TierIndex i) { return tiers_[i]; }
  const MemoryTier& tier(TierIndex i) const { return tiers_[i]; }
  TierIndex fastest_tier() const { return fastest_; }
  TierIndex slowest_tier() const { return slowest_; }
  /// Null in flat mode.
  const DirectMappedMemCache* mem_cache() const { return mem_cache_.get(); }

  void reset();

 private:
  /// Compact copy of the tier ranges for the per-access routing scan (the
  /// full TierSpec drags a std::string through the cache).
  struct TierRange {
    Address base = 0;
    Address end = 0;
    double latency_ns = 0;
  };

  MachineConfig config_;
  Cache llc_;
  std::vector<MemoryTier> tiers_;
  std::vector<TierRange> ranges_;
  TierIndex fastest_ = 0;
  TierIndex slowest_ = 0;
  TierIndex cache_front_ = 0;
  TierIndex cache_backing_ = 0;
  std::unique_ptr<DirectMappedMemCache> mem_cache_;
};

}  // namespace hmem::memsim
