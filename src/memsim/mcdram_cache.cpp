#include "memsim/mcdram_cache.hpp"

#include "common/assert.hpp"

namespace hmem::memsim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

DirectMappedMemCache::DirectMappedMemCache(std::uint64_t capacity_bytes,
                                           std::uint64_t block_bytes)
    : block_bytes_(block_bytes) {
  HMEM_ASSERT(is_pow2(block_bytes));
  HMEM_ASSERT(capacity_bytes >= block_bytes);
  HMEM_ASSERT(capacity_bytes % block_bytes == 0);
  const std::uint64_t blocks = capacity_bytes / block_bytes;
  HMEM_ASSERT(is_pow2(blocks));
  tags_.assign(blocks, 0);
}

std::uint64_t DirectMappedMemCache::index_of(Address addr) const {
  return (addr / block_bytes_) & (tags_.size() - 1);
}

bool DirectMappedMemCache::access(Address addr) {
  ++stats_.accesses;
  const Address tag = addr / block_bytes_ + 1;  // +1 keeps 0 as "invalid"
  Address& slot = tags_[index_of(addr)];
  if (slot == tag) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  if (slot != 0) ++stats_.conflict_evictions;
  slot = tag;
  return false;
}

bool DirectMappedMemCache::contains(Address addr) const {
  const Address tag = addr / block_bytes_ + 1;
  return tags_[index_of(addr)] == tag;
}

void DirectMappedMemCache::flush() {
  for (auto& t : tags_) t = 0;
}

}  // namespace hmem::memsim
