// Memory-tier model.
//
// A tier is defined by capacity, idle latency and a two-parameter bandwidth
// curve: per-core achievable bandwidth (limited by outstanding-miss buffers)
// and an aggregate peak. min(cores * per_core, peak) reproduces the shape of
// the paper's Figure 1: DDR saturates around 90 GB/s after a handful of
// cores while flat MCDRAM keeps scaling to ~480 GB/s.
//
// A machine owns an *ordered list* of tiers ("each memory subsystem is
// defined by a given size and a relative performance ... ensuring that we
// can extend this mechanism in the future for different memory
// architectures"). Tiers are identified by their index in that list — the
// stable TierIndex used throughout memsim, the engine and the runtime — and
// by a human-readable name; the old two-value DDR/MCDRAM enum is gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/address.hpp"

namespace hmem::memsim {

/// Stable identifier of a tier: its index in the machine's tier list.
using TierIndex = std::size_t;

struct TierSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double latency_ns = 0.0;        ///< idle load-to-use latency
  double per_core_bw_gbs = 0.0;   ///< bandwidth one core can extract
  double peak_bw_gbs = 0.0;       ///< aggregate saturation bandwidth
  /// Relative performance weight used by the advisor's memory spec to order
  /// knapsacks (higher = faster tier, filled first).
  double relative_performance = 1.0;
  /// Start of the tier's simulated physical range (flat mode). Zero means
  /// "unassigned"; assign_tier_bases lays the tiers out.
  Address base = 0;
};

struct TierStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  std::uint64_t accesses() const { return reads + writes; }
  std::uint64_t bytes() const { return bytes_read + bytes_written; }
};

/// Achievable bandwidth (GB/s) with `cores` cores streaming concurrently.
double effective_bandwidth_gbs(const TierSpec& spec, int cores);

/// Assigns each tier a disjoint physical range: the first tier starts at
/// kTierFirstBase and every subsequent tier starts at the next
/// kTierBaseAlign boundary past the previous tier's end (the alignment gap
/// doubles as a guard band — out-of-range bugs trip range checks instead of
/// aliasing). For the KNL pair this reproduces the historical layout:
/// DDR at 4 GiB, MCDRAM at 256 GiB. Tiers with a non-zero base are left
/// untouched.
void assign_tier_bases(std::vector<TierSpec>& tiers);

class MemoryTier {
 public:
  explicit MemoryTier(TierSpec spec) : spec_(std::move(spec)) {}

  const TierSpec& spec() const { return spec_; }
  const TierStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TierStats{}; }

  /// True when addr falls in this tier's flat-mode range.
  bool contains(Address addr) const {
    return addr >= spec_.base && addr < spec_.base + spec_.capacity_bytes;
  }

  void record_read(std::uint64_t bytes) {
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  void record_write(std::uint64_t bytes) {
    ++stats_.writes;
    stats_.bytes_written += bytes;
  }

 private:
  TierSpec spec_;
  TierStats stats_;
};

}  // namespace hmem::memsim
