// Memory-tier model.
//
// A tier is defined by capacity, idle latency and a two-parameter bandwidth
// curve: per-core achievable bandwidth (limited by outstanding-miss buffers)
// and an aggregate peak. min(cores * per_core, peak) reproduces the shape of
// the paper's Figure 1: DDR saturates around 90 GB/s after a handful of
// cores while flat MCDRAM keeps scaling to ~480 GB/s.
#pragma once

#include <cstdint>
#include <string>

namespace hmem::memsim {

enum class TierKind { kDdr, kMcdram };

const char* tier_name(TierKind kind);

struct TierSpec {
  std::string name;
  TierKind kind = TierKind::kDdr;
  std::uint64_t capacity_bytes = 0;
  double latency_ns = 0.0;        ///< idle load-to-use latency
  double per_core_bw_gbs = 0.0;   ///< bandwidth one core can extract
  double peak_bw_gbs = 0.0;       ///< aggregate saturation bandwidth
  /// Relative performance weight used by the advisor's memory spec to order
  /// knapsacks (higher = faster tier, filled first).
  double relative_performance = 1.0;
};

struct TierStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  std::uint64_t accesses() const { return reads + writes; }
  std::uint64_t bytes() const { return bytes_read + bytes_written; }
};

/// Achievable bandwidth (GB/s) with `cores` cores streaming concurrently.
double effective_bandwidth_gbs(const TierSpec& spec, int cores);

class MemoryTier {
 public:
  explicit MemoryTier(TierSpec spec) : spec_(std::move(spec)) {}

  const TierSpec& spec() const { return spec_; }
  const TierStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TierStats{}; }

  void record_read(std::uint64_t bytes) {
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  void record_write(std::uint64_t bytes) {
    ++stats_.writes;
    stats_.bytes_written += bytes;
  }

 private:
  TierSpec spec_;
  TierStats stats_;
};

}  // namespace hmem::memsim
