// Set-associative cache with true-LRU replacement.
//
// Models the KNL L2 (the last-level cache on that part — the level whose
// misses PEBS samples in the paper). Associativity is small (16 ways on
// KNL), so a per-set linear scan with 64-bit LRU stamps is both simple and
// fast enough for the sampled access streams we simulate.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/address.hpp"

namespace hmem::memsim {

struct CacheConfig {
  std::uint64_t size_bytes = 1ULL << 20;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 16;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double miss_rate() const {
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
};

class Cache {
 public:
  /// Tag value marking an invalid way. Real tags are line addresses
  /// (addr >> log2(line_bytes)), so no simulated address reaches it.
  static constexpr Address kInvalidTag = ~Address{0};

  explicit Cache(const CacheConfig& config);

  /// Simulates one access; returns true on hit. Misses install the line,
  /// evicting the LRU way when the set is full.
  bool access(Address addr);

  /// Probe without modifying state (no LRU update, no fill).
  bool contains(Address addr) const;

  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  std::uint64_t num_sets() const { return sets_; }

  /// Raw way-state view for compiled access kernels (engine/kernel): the
  /// set/tag shift+mask constants and the tag/LRU arrays, so a kernel can
  /// bake the index math and mutate the cache in place. A kernel driving
  /// the cache through this view must replicate access() exactly (tick
  /// increment, hit stamp, first-minimal-stamp victim) — the differential
  /// tests assert it does. Hit/miss counters are interpreter-maintained
  /// only; kernels leave stats() untouched.
  struct Tables {
    Address* tags = nullptr;      ///< sets * ways, row-major by set
    std::uint64_t* lru = nullptr; ///< last-touch stamps, 0 = invalid
    std::uint64_t* tick = nullptr;
    std::uint32_t ways = 0;
    std::uint32_t line_shift = 0;
    std::uint64_t set_mask = 0;
  };
  Tables tables() {
    return Tables{tags_.data(), lru_.data(), &tick_,
                  config_.ways, line_shift_, set_mask_};
  }

  /// Line-address tag of addr: the line index, addr >> log2(line_bytes).
  Address tag_of(Address addr) const { return addr >> line_shift_; }
  /// Set index of addr (line_bytes and sets_ are powers of two, so this is
  /// a shift and a mask — no division on the per-access path).
  std::uint64_t set_of(Address addr) const {
    return tag_of(addr) & set_mask_;
  }

 private:
  CacheConfig config_;
  std::uint64_t sets_;
  std::uint32_t line_shift_;  ///< log2(line_bytes)
  std::uint64_t set_mask_;    ///< sets_ - 1
  std::uint64_t tick_ = 0;
  /// Way state as structure-of-arrays: the 16-way scan walks one compact
  /// tag array (and only touches the stamps on the matching/eviction way),
  /// instead of striding over interleaved {tag, lru} pairs.
  std::vector<Address> tags_;       ///< sets_ * ways, row-major by set
  std::vector<std::uint64_t> lru_;  ///< last-touch stamp; 0 = invalid
  CacheStats stats_;
};

}  // namespace hmem::memsim
