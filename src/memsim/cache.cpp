#include "memsim/cache.hpp"

#include "common/assert.hpp"

namespace hmem::memsim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  HMEM_ASSERT(is_pow2(config.line_bytes));
  HMEM_ASSERT(config.ways > 0);
  HMEM_ASSERT(config.size_bytes >=
              static_cast<std::uint64_t>(config.line_bytes) * config.ways);
  sets_ = config.size_bytes /
          (static_cast<std::uint64_t>(config.line_bytes) * config.ways);
  HMEM_ASSERT_MSG(is_pow2(sets_), "cache size must yield power-of-two sets");
  ways_.resize(sets_ * config.ways);
}

std::uint64_t Cache::set_of(Address addr) const {
  return (addr / config_.line_bytes) & (sets_ - 1);
}

bool Cache::access(Address addr) {
  ++stats_.accesses;
  ++tick_;
  const Address tag = addr / config_.line_bytes;
  Way* set = &ways_[set_of(addr) * config_.ways];

  Way* lru_way = set;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = set[w];
    if (way.lru != 0 && way.tag == tag) {
      way.lru = tick_;
      ++stats_.hits;
      return true;
    }
    if (way.lru < lru_way->lru) lru_way = &set[w];
  }
  ++stats_.misses;
  if (lru_way->lru != 0) ++stats_.evictions;
  lru_way->tag = tag;
  lru_way->lru = tick_;
  return false;
}

bool Cache::contains(Address addr) const {
  const Address tag = addr / config_.line_bytes;
  const Way* set = &ways_[set_of(addr) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (set[w].lru != 0 && set[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& way : ways_) way = Way{};
  tick_ = 0;
}

}  // namespace hmem::memsim
