#include "memsim/cache.hpp"

#include "common/assert.hpp"

namespace hmem::memsim {

namespace {
bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::uint32_t log2_pow2(std::uint64_t x) {
  std::uint32_t shift = 0;
  while ((1ULL << shift) < x) ++shift;
  return shift;
}
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  HMEM_ASSERT(is_pow2(config.line_bytes));
  HMEM_ASSERT(config.ways > 0);
  HMEM_ASSERT(config.size_bytes >=
              static_cast<std::uint64_t>(config.line_bytes) * config.ways);
  sets_ = config.size_bytes /
          (static_cast<std::uint64_t>(config.line_bytes) * config.ways);
  HMEM_ASSERT_MSG(is_pow2(sets_), "cache size must yield power-of-two sets");
  line_shift_ = log2_pow2(config.line_bytes);
  set_mask_ = sets_ - 1;
  tags_.resize(sets_ * config.ways, kInvalidTag);
  lru_.resize(sets_ * config.ways, 0);
}

bool Cache::access(Address addr) {
  ++stats_.accesses;
  ++tick_;
  const Address tag = tag_of(addr);
  const std::size_t base = set_of(addr) * config_.ways;
  const Address* tags = &tags_[base];
  std::uint64_t* lru = &lru_[base];

  // Hit scan first: pure tag compares against the compact SoA array (an
  // invalid way holds kInvalidTag, which no real address produces, so no
  // validity check is needed). A tag appears in at most one way, and the
  // LRU victim is only relevant on a miss — so the stamp array is not even
  // read on the hit path.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (tags[w] == tag) {
      lru[w] = tick_;
      ++stats_.hits;
      return true;
    }
  }
  // Miss: victim = first way with the minimal stamp (0 = invalid), exactly
  // the order-sensitive choice the AoS scan made. Ternary form so the
  // argmin compiles to conditional moves: the comparison outcome is
  // data-dependent noise, and mispredicted branches here cost ~3x the whole
  // scan (measured; see PR notes).
  std::uint32_t lru_way = 0;
  std::uint64_t best = lru[0];
  for (std::uint32_t w = 1; w < config_.ways; ++w) {
    const bool better = lru[w] < best;
    best = better ? lru[w] : best;
    lru_way = better ? w : lru_way;
  }
  ++stats_.misses;
  if (lru[lru_way] != 0) ++stats_.evictions;
  tags_[base + lru_way] = tag;
  lru[lru_way] = tick_;
  return false;
}

bool Cache::contains(Address addr) const {
  const Address tag = tag_of(addr);
  const std::size_t base = set_of(addr) * config_.ways;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (tags_[base + w] == tag) return true;
  }
  return false;
}

void Cache::flush() {
  tags_.assign(tags_.size(), kInvalidTag);
  lru_.assign(lru_.size(), 0);
  tick_ = 0;
}

}  // namespace hmem::memsim
