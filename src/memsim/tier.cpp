#include "memsim/tier.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hmem::memsim {

const char* tier_name(TierKind kind) {
  switch (kind) {
    case TierKind::kDdr:
      return "DDR";
    case TierKind::kMcdram:
      return "MCDRAM";
  }
  return "?";
}

double effective_bandwidth_gbs(const TierSpec& spec, int cores) {
  HMEM_ASSERT(cores > 0);
  return std::min(static_cast<double>(cores) * spec.per_core_bw_gbs,
                  spec.peak_bw_gbs);
}

}  // namespace hmem::memsim
