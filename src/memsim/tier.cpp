#include "memsim/tier.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hmem::memsim {

double effective_bandwidth_gbs(const TierSpec& spec, int cores) {
  HMEM_ASSERT(cores > 0);
  return std::min(static_cast<double>(cores) * spec.per_core_bw_gbs,
                  spec.peak_bw_gbs);
}

void assign_tier_bases(std::vector<TierSpec>& tiers) {
  Address next = kTierFirstBase;
  for (TierSpec& tier : tiers) {
    if (tier.base == 0) tier.base = next;
    const Address end = tier.base + tier.capacity_bytes;
    // Round the next candidate base up to the alignment boundary past this
    // tier's end; the gap is the guard band.
    next = (end + kTierBaseAlign) & ~(kTierBaseAlign - 1);
  }
}

}  // namespace hmem::memsim
