// Address-space model of the simulated Knights Landing node.
//
// Flat mode exposes DDR and MCDRAM as two disjoint physical ranges (two NUMA
// nodes on real hardware). We pin both ranges at fixed simulated physical
// bases so that "which tier owns this address" is a range check, exactly the
// property the real machine gives the OS.
#pragma once

#include <cstdint>

namespace hmem::memsim {

using Address = std::uint64_t;

inline constexpr std::uint64_t kCacheLineBytes = 64;
inline constexpr std::uint64_t kPageBytes = 4096;

/// Simulated physical layout. MCDRAM sits above DDR with a guard gap so
/// out-of-range bugs trip the range checks instead of aliasing.
inline constexpr Address kDdrBase = 0x0000'0001'0000'0000ULL;      // 4 GiB
inline constexpr Address kMcdramBase = 0x0000'0040'0000'0000ULL;   // 256 GiB

constexpr Address line_of(Address addr) {
  return addr & ~(kCacheLineBytes - 1);
}

constexpr Address page_of(Address addr) { return addr & ~(kPageBytes - 1); }

/// Rounds a byte count up to whole pages — the granularity at which the
/// advisor's knapsack charges objects against a tier budget.
constexpr std::uint64_t round_up_pages(std::uint64_t bytes) {
  return (bytes + kPageBytes - 1) & ~(kPageBytes - 1);
}

constexpr std::uint64_t round_up_lines(std::uint64_t bytes) {
  return (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
}

}  // namespace hmem::memsim
