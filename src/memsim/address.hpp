// Address-space model of the simulated hybrid-memory node.
//
// Flat mode exposes every memory tier as its own disjoint physical range
// (one NUMA node per tier on real hardware). We pin the ranges at fixed
// simulated physical bases so that "which tier owns this address" is a range
// check, exactly the property the real machine gives the OS.
#pragma once

#include <cstdint>

namespace hmem::memsim {

using Address = std::uint64_t;

inline constexpr std::uint64_t kCacheLineBytes = 64;
inline constexpr std::uint64_t kPageBytes = 4096;

/// Simulated physical layout: the first tier starts at kTierFirstBase and
/// each further tier starts at the next kTierBaseAlign boundary past the
/// previous tier's end (see assign_tier_bases), leaving guard gaps so
/// out-of-range bugs trip the range checks instead of aliasing.
inline constexpr Address kTierFirstBase = 0x0000'0001'0000'0000ULL;  // 4 GiB
inline constexpr Address kTierBaseAlign = 0x0000'0040'0000'0000ULL;  // 256 GiB

/// The layout this scheme produces for the KNL pair (DDR first, MCDRAM
/// second) — kept named because tests and docs refer to the paper platform.
inline constexpr Address kDdrBase = kTierFirstBase;                // 4 GiB
inline constexpr Address kMcdramBase = kTierBaseAlign;             // 256 GiB

constexpr Address line_of(Address addr) {
  return addr & ~(kCacheLineBytes - 1);
}

constexpr Address page_of(Address addr) { return addr & ~(kPageBytes - 1); }

/// Rounds a byte count up to whole pages — the granularity at which the
/// advisor's knapsack charges objects against a tier budget.
constexpr std::uint64_t round_up_pages(std::uint64_t bytes) {
  return (bytes + kPageBytes - 1) & ~(kPageBytes - 1);
}

constexpr std::uint64_t round_up_lines(std::uint64_t bytes) {
  return (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
}

}  // namespace hmem::memsim
